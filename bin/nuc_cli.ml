(* nuc_cli — command-line driver for the nonuniform-consensus
   reproduction.

   Subcommands:
     run          one consensus run (a_nuc | mr_majority | mr_sigma | stack)
     experiments  the E-table of theorem validations (see DESIGN.md)
     check        generate an oracle history and validate it
     scenario     the proof scenarios (contamination | separation)
     mc           exhaustive bounded model checking (lib/mc)
     fuzz         randomized schedule exploration (lib/explore)
     serve        closed-loop replicated-log serving (lib/smr Load driver)

   Every subcommand that consumes randomness takes --seed (default 0,
   deterministic); mc and scenario are fully deterministic, and fuzz
   is deterministic in --seed. *)

open Procset


let pf = Format.printf

(* ---------------------------------------------------------------- *)
(* run                                                               *)
(* ---------------------------------------------------------------- *)

let parse_algo = function
  | "a_nuc" -> Ok Experiments.Anuc
  | "mr_majority" -> Ok Experiments.Mr_majority
  | "mr_sigma" -> Ok Experiments.Mr_sigma
  | "stack" -> Ok Experiments.Stack
  | "ct" -> Ok Experiments.Ct
  | s ->
    Error
      (`Msg
         (Printf.sprintf
            "unknown algorithm %S (expected a_nuc | mr_majority | mr_sigma \
             | stack | ct)"
            s))

let algo_conv =
  Cmdliner.Arg.conv
    ( parse_algo,
      fun fmt a ->
        Format.pp_print_string fmt
          (match a with
          | Experiments.Anuc -> "a_nuc"
          | Experiments.Mr_majority -> "mr_majority"
          | Experiments.Mr_sigma -> "mr_sigma"
          | Experiments.Stack -> "stack"
          | Experiments.Ct -> "ct") )

(* --partition 20-60:0,1|2,3 — window FROM-UNTIL, then '|'-separated
   connectivity groups of ','-separated pids. *)
let partition_conv =
  let parse s =
    let err =
      `Msg
        (Printf.sprintf
           "bad partition %S (expected FROM-UNTIL:G|G|... e.g. 20-60:0,1|2,3)"
           s)
    in
    try
      match String.split_on_char ':' s with
      | [ window; gs ] -> (
        match String.split_on_char '-' window with
        | [ a; b ] ->
          let groups =
            String.split_on_char '|' gs
            |> List.map (fun g ->
                   Pset.of_list
                     (List.map
                        (fun x -> int_of_string (String.trim x))
                        (String.split_on_char ',' g)))
          in
          Ok
            {
              Sim.Faults.from_t = int_of_string (String.trim a);
              until_t = int_of_string (String.trim b);
              groups;
            }
        | _ -> Error err)
      | _ -> Error err
    with Failure _ -> Error err
  in
  Cmdliner.Arg.conv (parse, Sim.Faults.pp_partition)

let quorum_conv =
  Cmdliner.Arg.conv
    ( (fun s ->
        Result.map_error (fun e -> `Msg e) (Quorum_family.of_string s)),
      Quorum_family.pp )

(* Surfaces Quorum_family's typed errors (bad shape for this n, or no
   quorum at all) instead of letting them escape as exceptions. *)
let require_family_fits fam ~n =
  match Quorum_family.validate fam ~n ~live:(Pset.full ~n) with
  | Ok () -> ()
  | Error e ->
    pf "error: %s@." (Quorum_family.error_to_string e);
    exit 1

let run_consensus algo quorum n t seed drop dup reorder partitions =
  if t >= n then (
    pf "error: need t < n@.";
    exit 1);
  if quorum = None
     && (algo = Experiments.Mr_majority || algo = Experiments.Ct)
     && 2 * t >= n
  then (
    pf "error: this algorithm requires t < n/2 (got n=%d t=%d)@." n t;
    exit 1);
  let faults =
    try Sim.Faults.make ~drop ~dup ~reorder ~partitions ~seed ()
    with Invalid_argument m ->
      pf "error: %s@." m;
      exit 1
  in
  if not (Sim.Faults.is_none faults) then
    pf "fault spec: %a@." Sim.Faults.pp faults;
  let r =
    match quorum with
    | None -> Experiments.latency ~faults algo ~n ~t ~seeds:[ seed ]
    | Some fam ->
      require_family_fits fam ~n;
      let res = Quorum_family.resilience fam ~n in
      if res < t then
        pf "note: %s at n=%d has structural resilience %d < t=%d — a \
            crash pattern can leave no live quorum, and such runs \
            (honestly) never decide@."
          (Quorum_family.name fam) n res t;
      Experiments.latency_family ~faults fam ~n ~t ~seeds:[ seed ]
  in
  pf "%s, n=%d, E_%d, seed %d:@."  r.Experiments.algorithm n t seed;
  pf "  all correct processes decided: %b@."
    (r.Experiments.decided = r.Experiments.runs);
  pf "  decision round (avg): %.1f@." r.Experiments.avg_rounds;
  pf "  simulation steps:     %.0f@." r.Experiments.avg_steps;
  pf "  messages sent:        %.0f@." r.Experiments.avg_msgs;
  pf "  mailbox depth (hwm):  %.0f@." r.Experiments.avg_hwm

(* ---------------------------------------------------------------- *)
(* experiments                                                       *)
(* ---------------------------------------------------------------- *)

let run_ablation quick seed =
  pf "%s@." Experiments.ablation_header;
  List.iter
    (fun r -> pf "%a@." Experiments.pp_ablation_row r)
    (Experiments.ablation ~quick ~seed_base:seed ())

let run_experiments quick only seed =
  let rows =
    match only with
    | None -> Experiments.all ~quick ~seed_base:seed ()
    | Some id -> (
      let pick =
        [
          ("e1", fun ~quick -> Experiments.e1_extract_sigma_nu ~quick ~seed_base:seed);
          ("e2", fun ~quick -> Experiments.e2_extract_sigma ~quick ~seed_base:seed);
          ("e3", fun ~quick -> Experiments.e3_boost ~quick ~seed_base:seed);
          ("e4", fun ~quick -> Experiments.e4_anuc ~quick ~seed_base:seed);
          ("e5", fun ~quick -> Experiments.e5_stack ~quick ~seed_base:seed);
          ("e6", fun ~quick -> Experiments.e6_contamination ~quick ~seed_base:seed);
          ("e7", fun ~quick -> Experiments.e7_sigma_scratch ~quick ~seed_base:seed);
          ("e8", fun ~quick -> Experiments.e8_attack ~quick);
          ("e9", fun ~quick -> Experiments.e9_merge ~quick ?step_budget:None);
          ("e10", fun ~quick -> Experiments.e10_not_uniform ~quick);
          ("e11", fun ~quick -> Experiments.e11_model_check ~quick);
          ("e12", fun ~quick -> Experiments.e12_faults ~quick ~seed_base:seed);
          ("e13", fun ~quick -> Experiments.e13_fuzz ~quick ~seed_base:seed);
          ("e14", fun ~quick -> Experiments.e14_dpor ~quick);
          ("e16", fun ~quick -> Experiments.e16_quorum ~quick ~seed_base:seed);
        ]
      in
      match List.assoc_opt (String.lowercase_ascii id) pick with
      | Some f -> [ f ~quick () ]
      | None ->
        pf "unknown experiment %S (expected e1..e14 | e16)@." id;
        exit 1)
  in
  List.iter (fun r -> pf "%a@.@." Experiments.pp_row r) rows;
  if List.for_all (fun r -> r.Experiments.pass) rows then pf "ALL PASS@."
  else begin
    pf "SOME EXPERIMENTS FAILED@.";
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* check                                                             *)
(* ---------------------------------------------------------------- *)

let run_check detector n t seed horizon =
  let env = Sim.Env.make ~n ~max_faulty:t in
  let rng = Random.State.make [| seed |] in
  let pattern = Sim.Env.random_pattern rng ~crash_window:(horizon / 3) env in
  pf "pattern: %a@." Sim.Failure_pattern.pp pattern;
  let stab = (2 * horizon) / 3 in
  let check name oracle checker =
    let h = Fd.Oracle.history ~horizon ~n oracle in
    match checker h with
    | Ok () -> pf "%s: history of %d samples conforms@." name ((horizon + 1) * n)
    | Error v -> pf "%s: VIOLATION %a@." name Fd.Check.pp_violation v
  in
  match detector with
  | "omega" ->
    check "Omega"
      (Fd.Oracle.omega ~seed ~stab_time:stab pattern)
      (Fd.Check.omega ~max_stab:stab pattern)
  | "sigma" ->
    check "Sigma"
      (Fd.Oracle.sigma ~seed ~stab_time:stab pattern)
      (Fd.Check.sigma ~max_stab:stab pattern)
  | "sigma_nu" ->
    check "Sigma-nu"
      (Fd.Oracle.sigma_nu ~seed ~stab_time:stab pattern)
      (Fd.Check.sigma_nu ~max_stab:stab pattern)
  | "sigma_nu_plus" ->
    check "Sigma-nu+"
      (Fd.Oracle.sigma_nu_plus ~seed ~stab_time:stab pattern)
      (Fd.Check.sigma_nu_plus ~max_stab:stab pattern)
  | "eventually_strong" ->
    check "<>S"
      (Fd.Oracle.eventually_strong ~seed ~stab_time:stab pattern)
      (Fd.Check.eventually_strong ~max_stab:stab pattern)
  | s ->
    pf "unknown detector %S (omega | sigma | sigma_nu | sigma_nu_plus | \
        eventually_strong)@."
      s;
    exit 1

(* ---------------------------------------------------------------- *)
(* scenario                                                          *)
(* ---------------------------------------------------------------- *)

let run_scenario name =
  let report o =
    List.iter (fun line -> pf "%s@." line) o.Core.Scenario.trace;
    pf "agreement violated: %b; adversary history legal: %b@."
      o.Core.Scenario.agreement_violated
      (Result.is_ok o.Core.Scenario.history_valid)
  in
  match name with
  | "contamination" -> report (Core.Scenario.contamination_naive_mr ())
  | "contamination_unsafe_anuc" ->
    report (Core.Scenario.contamination_anuc_unsafe ())
  | "separation" ->
    let module Atk = Core.Separation.Attack (Core.Separation.Sigma_scratch) in
    List.iter
      (fun (n, t) ->
        pf "--- n=%d t=%d ---@." n t;
        match Atk.run ~n ~t ~inputs:(fun _ -> t) () with
        | Ok o -> pf "%a@." Atk.pp_outcome o
        | Error e -> pf "%s@." e)
      [ (4, 1); (4, 2); (6, 3) ]
  | s ->
    pf "unknown scenario %S (contamination | contamination_unsafe_anuc | \
        separation)@."
      s;
    exit 1

(* ---------------------------------------------------------------- *)
(* mc                                                                *)
(* ---------------------------------------------------------------- *)

(* One model-checking drive, shared by every algorithm. The faulty
   processes of the pattern crash past the depth bound, so the clauses
   of the detector class treat them as faulty while every schedule up
   to the bound may still step them. *)
module Mc_drive (A : sig
  include Sim.Automaton.S with type input = Consensus.Value.t

  val decision : state -> Consensus.Value.t option
end) =
struct
  module M = Mc.Make (A)

  (* [corrupt] (--selftest-corrupt-cx) deliberately damages a found
     counterexample before certification — the negative-path selftest
     for the certification machinery and its nonzero exit code. *)
  let go ~algo ~n ~faulty ~menu ~depth ~flavour ~max_states ~max_drops
      ~delivery ~jobs ~reduction ~json ~corrupt ~checkpoint ~resume
      ~spill_dir =
    let proposals p = if Pset.mem p faulty then 1 else 0 in
    let crashes = Pset.fold (fun p l -> (p, depth + 1) :: l) faulty [] in
    let pattern = Sim.Failure_pattern.make ~n ~crashes in
    (match Mc.Menu.validate ~pattern menu with
    | Ok () -> pf "menu %s: admissible@." menu.Mc.Menu.name
    | Error e ->
      pf "menu %s: INADMISSIBLE (%s)@." menu.Mc.Menu.name e;
      exit 1);
    let props =
      M.consensus_props ~decision:A.decision ~proposals ~flavour ~pattern
    in
    (* The stop scope must match the agreement flavour: uniform
       agreement/validity constrain faulty processes' decisions too
       (they keep stepping until depth + 1), so for uniform checks a
       state only counts as a goal once *every* process decided —
       stopping when the correct ones decided would prune
       continuations in which a faulty process decides a conflicting
       or unproposed value. *)
    let stop_scope =
      match flavour with
      | Consensus.Spec.Uniform -> Pset.full ~n
      | Consensus.Spec.Nonuniform -> Sim.Failure_pattern.correct pattern
    in
    let stop = M.decided_stop ~decision:A.decision ~scope:stop_scope in
    let r =
      try
        M.run ~reduction ~n ~menu ~depth ~inputs:proposals ~props ~stop
          ~max_states ?max_drops ~delivery ~jobs ?checkpoint ?resume
          ?spill_dir ()
      with Mc.Resume_rejected e ->
        pf "checkpoint rejected: %s@." (Mc.Codec.error_to_string e);
        exit 1
    in
    pf "%a@." Mc.pp_stats r.M.stats;
    (match json with
    | None -> ()
    | Some path ->
      (* One b11_dpor row for this run; [pass] records only that the
         verdict is conclusive (not truncated) — a found violation is
         the expected outcome for the naive baseline. *)
      let outcome =
        if r.M.stats.Mc.truncated then "TRUNCATED"
        else
          match r.M.violation with
          | None -> "exhausted"
          | Some cx -> "VIOLATION: " ^ cx.M.cx_property
      in
      let row =
        Experiments.b11_row_of_stats ~algorithm:algo ~reduction ~depth
          ~outcome
          ~pass:(not r.M.stats.Mc.truncated)
          r.M.stats
      in
      let oc = open_out path in
      Report.to_channel oc
        (Report.Obj [ ("b11_dpor", Experiments.json_of_b11_rows [ row ]) ]);
      close_out oc;
      pf "wrote %s@." path);
    match r.M.violation with
    | None ->
      if r.M.stats.Mc.truncated then begin
        pf "exploration TRUNCATED at %d states — verdict inconclusive@."
          max_states;
        exit 1
      end
      else pf "exhausted: no violation within depth %d@." depth
    | Some cx ->
      let cx =
        if not corrupt then cx
        else
          {
            cx with
            M.cx_steps =
              List.map
                (fun (s : M.R.replay_step) ->
                  match s.r_received with
                  | None -> s
                  | Some env ->
                    {
                      s with
                      r_received =
                        Some { env with Sim.Envelope.seq = env.seq + 1000 };
                    })
                cx.M.cx_steps;
          }
      in
      if corrupt then pf "selftest: corrupted counterexample receives@.";
      pf "%a@." M.pp_counterexample cx;
      let ok_replay =
        match M.replay_counterexample ~n ~inputs:proposals cx with
        | Ok _ ->
          pf "replay: accepted by Runner.replay@.";
          true
        | Error e ->
          pf "replay: REJECTED (%s)@." e;
          false
      in
      let ok_hist =
        match
          Mc.history_legal ~kind:menu.Mc.Menu.kind ~pattern cx.M.cx_samples
        with
        | Ok () ->
          pf "detector history: perpetual clauses hold@.";
          true
        | Error e ->
          pf "detector history: ILLEGAL (%s)@." e;
          false
      in
      if not (ok_replay && ok_hist) then exit 1

  let default_go ~algo ~n ~faulty ~max_states ~max_drops ~delivery ~jobs
      ~reduction ~json ~flavour ~corrupt ~checkpoint ~resume ~spill_dir
      ~default_depth ~menu depth_opt =
    let depth = Option.value depth_opt ~default:default_depth in
    go ~algo ~n ~faulty ~menu ~depth ~flavour ~max_states ~max_drops
      ~delivery ~jobs ~reduction ~json ~corrupt ~checkpoint ~resume
      ~spill_dir
end

module Mc_anuc_drive = Mc_drive (Core.Anuc)
module Mc_naive_drive = Mc_drive (Consensus.Mr.With_quorum)
module Mc_maj_drive = Mc_drive (Consensus.Mr.Majority)
module Mc_ct_drive = Mc_drive (Consensus.Ct)

(* --selftest-corrupt-checkpoint: flip one byte of the --resume file
   and resume from the damaged copy — the digest check must reject it
   with a typed error and a nonzero exit, never a Marshal crash. *)
let corrupt_checkpoint_copy path =
  let b =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        let b = Bytes.create len in
        really_input ic b 0 len;
        b)
  in
  let len = Bytes.length b in
  if len = 0 then (
    pf "error: checkpoint %s is empty@." path;
    exit 1);
  Bytes.set b (len - 1) (Char.chr (Char.code (Bytes.get b (len - 1)) lxor 1));
  let path' = path ^ ".corrupt" in
  let oc = open_out_bin path' in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc b);
  pf "selftest: flipped last byte of %s into %s@." path path';
  path'

let run_mc algo n t depth_opt family quorum max_states max_drops delivery
    jobs reduction json corrupt checkpoint_path ckpt_every resume spill_dir
    corrupt_ckpt =
  if t >= n || t < 1 then (
    pf "error: need 1 <= t < n@.";
    exit 1);
  if jobs < 1 then (
    pf "error: --jobs must be >= 1@.";
    exit 1);
  if ckpt_every < 1 then (
    pf "error: --ckpt-every must be >= 1@.";
    exit 1);
  let resume =
    match (resume, corrupt_ckpt) with
    | Some path, true -> Some (corrupt_checkpoint_copy path)
    | None, true ->
      pf "error: --selftest-corrupt-checkpoint requires --resume@.";
      exit 1
    | r, false -> r
  in
  let checkpoint =
    Option.map (fun p -> (p, ckpt_every)) checkpoint_path
  in
  let reduction =
    match String.lowercase_ascii reduction with
    | "dpor" -> Mc.Dpor
    | "sleep" -> Mc.Sleep_sets
    | "none" -> Mc.No_reduction
    | s ->
      pf "unknown reduction %S (dpor | sleep | none)@." s;
      exit 1
  in
  let delivery =
    match String.lowercase_ascii delivery with
    | "fifo" -> `Fifo
    | "any" -> `Any
    | s ->
      pf "unknown delivery model %S (fifo | any)@." s;
      exit 1
  in
  let family =
    match String.lowercase_ascii family with
    | "contamination" -> `Contamination
    | "lossy" -> `Lossy
    | "full" -> `Full
    | s ->
      pf "unknown menu family %S (contamination | lossy | full)@." s;
      exit 1
  in
  let faulty = Pset.of_list (List.init t (fun i -> n - 1 - i)) in
  (match quorum with
  | None -> ()
  | Some fam ->
    require_family_fits fam ~n;
    if family = `Full then (
      pf "error: --quorum shapes the contamination/lossy menus only \
          (the 'full' class menus quantify over every legal value)@.";
      exit 1));
  let need_majority () =
    if 2 * t >= n then (
      pf "error: this algorithm requires t < n/2 (got n=%d t=%d)@." n t;
      exit 1)
  in
  let no_quorum () =
    if quorum <> None then (
      pf "error: --quorum only applies to the Sigma-nu algorithms \
          (anuc | naive-sn)@.";
      exit 1)
  in
  match String.lowercase_ascii algo with
  | "anuc" ->
    Mc_anuc_drive.default_go ~algo ~n ~faulty ~max_states
      ~max_drops ~delivery ~jobs ~reduction ~json ~corrupt ~checkpoint
      ~resume ~spill_dir ~flavour:Consensus.Spec.Nonuniform ~default_depth:11
      ~menu:
        (match family with
        | `Contamination ->
          Mc.Menu.contamination ~plus:true ?quorum ~n ~faulty ()
        | `Lossy -> Mc.Menu.lossy ~plus:true ?quorum ~n ~faulty ()
        | `Full -> Mc.Menu.omega_sigma_nu_plus ~n ~faulty)
      depth_opt
  | "naive-sn" ->
    Mc_naive_drive.default_go ~algo ~n ~faulty ~max_states
      ~max_drops ~delivery ~jobs ~reduction ~json ~corrupt ~checkpoint
      ~resume ~spill_dir ~flavour:Consensus.Spec.Nonuniform ~default_depth:34
      ~menu:
        (match family with
        | `Contamination -> Mc.Menu.contamination ?quorum ~n ~faulty ()
        | `Lossy -> Mc.Menu.lossy ?quorum ~n ~faulty ()
        | `Full -> Mc.Menu.omega_sigma_nu ~n ~faulty)
      depth_opt
  | "mr-sigma" ->
    no_quorum ();
    Mc_naive_drive.default_go ~algo ~n ~faulty ~max_states
      ~max_drops ~delivery ~jobs ~reduction ~json ~corrupt ~checkpoint
      ~resume ~spill_dir ~flavour:Consensus.Spec.Uniform ~default_depth:10
      ~menu:(Mc.Menu.omega_sigma ~n ~faulty)
      depth_opt
  | "mr-majority" ->
    no_quorum ();
    need_majority ();
    Mc_maj_drive.default_go ~algo ~n ~faulty ~max_states
      ~max_drops ~delivery ~jobs ~reduction ~json ~corrupt ~checkpoint
      ~resume ~spill_dir ~flavour:Consensus.Spec.Uniform ~default_depth:11
      ~menu:(Mc.Menu.leader_only ~n ~faulty)
      depth_opt
  | "ct" ->
    no_quorum ();
    need_majority ();
    Mc_ct_drive.default_go ~algo ~n ~faulty ~max_states
      ~max_drops ~delivery ~jobs ~reduction ~json ~corrupt ~checkpoint
      ~resume ~spill_dir ~flavour:Consensus.Spec.Uniform ~default_depth:13
      ~menu:(Mc.Menu.suspects ~n ~faulty)
      depth_opt
  | s ->
    pf "unknown algorithm %S (anuc | naive-sn | mr-majority | mr-sigma | \
        ct)@."
      s;
    exit 1

(* ---------------------------------------------------------------- *)
(* fuzz                                                              *)
(* ---------------------------------------------------------------- *)

(* One fuzzing drive, shared by every algorithm; mirrors [Mc_drive]
   but samples schedules ([Explore]) instead of enumerating them. The
   faulty processes crash past the step bound, exactly as in mc. *)
module Fuzz_drive (A : sig
  include Sim.Automaton.S with type input = Consensus.Value.t

  val decision : state -> Consensus.Value.t option
end) =
struct
  module E = Explore.Make (A)
  module M = E.M

  let go ~algo ~n ~faulty ~menu ~swarm_menus ~flavour ~runs ~sampler ~swarm
      ~shrink ~seed ~delivery ~max_steps ~max_drops ~batch ~jobs ~json
      ~checkpoint ~resume ~max_batches =
    let proposals p = if Pset.mem p faulty then 1 else 0 in
    let crashes = Pset.fold (fun p l -> (p, max_steps + 1) :: l) faulty [] in
    let pattern = Sim.Failure_pattern.make ~n ~crashes in
    List.iter
      (fun (m : Mc.Menu.t) ->
        match Mc.Menu.validate ~pattern m with
        | Ok () -> pf "menu %s: admissible@." m.name
        | Error e ->
          pf "menu %s: INADMISSIBLE (%s)@." m.name e;
          exit 1)
      (menu :: if swarm then swarm_menus else []);
    let props =
      M.consensus_props ~decision:A.decision ~proposals ~flavour ~pattern
    in
    let stop_scope =
      match flavour with
      | Consensus.Spec.Uniform -> Pset.full ~n
      | Consensus.Spec.Nonuniform -> Sim.Failure_pattern.correct pattern
    in
    let stop = M.decided_stop ~decision:A.decision ~scope:stop_scope in
    let decided st = A.decision st <> None in
    let swarm_cfg =
      if not swarm then None
      else
        Some
          {
            Explore.sw_menus = menu :: swarm_menus;
            sw_budgets = [ 0; 1; 2 ];
            sw_stabs = [ max_steps / 3; (2 * max_steps) / 3; max_steps ];
            sw_samplers = [ Explore.Uniform; Pct 2; Pct 3; Pct 4 ];
          }
    in
    let report =
      try
        E.fuzz ~algo ~sampler ?swarm:swarm_cfg ~batch_size:batch ~delivery
          ~max_steps ~max_drops ~shrink ~jobs ?checkpoint ?resume
          ?max_batches ~stop ~decided ~seed ~runs ~n ~menu ~pattern
          ~inputs:proposals ~props ()
      with Mc.Resume_rejected e ->
        pf "checkpoint rejected: %s@." (Mc.Codec.error_to_string e);
        exit 1
    in
    pf "%a@." E.pp_report report;
    (match json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Report.to_channel oc (E.json_of_report report);
      close_out oc;
      pf "wrote %s@." path);
    match report.E.violation with
    | None -> ()
    | Some v ->
      if not (v.E.v_replay_ok && v.E.v_history_ok) then (
        pf "violation NOT CERTIFIED — failing@.";
        exit 1)
end

module Fuzz_anuc_drive = Fuzz_drive (Core.Anuc)
module Fuzz_naive_drive = Fuzz_drive (Consensus.Mr.With_quorum)
module Fuzz_maj_drive = Fuzz_drive (Consensus.Mr.Majority)
module Fuzz_ct_drive = Fuzz_drive (Consensus.Ct)

let parse_sampler s =
  match String.lowercase_ascii s with
  | "uniform" -> Ok Explore.Uniform
  | "pct" -> Ok (Explore.Pct 3)
  | s when String.length s > 3 && String.sub s 0 3 = "pct" -> (
    match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
    | Some d when d >= 1 -> Ok (Explore.Pct d)
    | _ -> Error (Printf.sprintf "bad PCT depth in %S" s))
  | s -> Error (Printf.sprintf "unknown sampler %S (uniform | pct | pctD)" s)

let run_fuzz algo n t runs sampler_s swarm shrink seed delivery_s max_steps_opt
    max_drops batch family quorum jobs json checkpoint_path ckpt_every resume
    max_batches =
  if t >= n || t < 1 then (
    pf "error: need 1 <= t < n@.";
    exit 1);
  if jobs < 1 then (
    pf "error: --jobs must be >= 1@.";
    exit 1);
  if ckpt_every < 1 then (
    pf "error: --ckpt-every must be >= 1@.";
    exit 1);
  let checkpoint =
    Option.map (fun p -> (p, ckpt_every)) checkpoint_path
  in
  let sampler =
    match parse_sampler sampler_s with
    | Ok s -> s
    | Error e ->
      pf "error: %s@." e;
      exit 1
  in
  let delivery =
    match String.lowercase_ascii delivery_s with
    | "fifo" -> `Fifo
    | "any" -> `Any
    | s ->
      pf "unknown delivery model %S (fifo | any)@." s;
      exit 1
  in
  let max_steps = Option.value max_steps_opt ~default:(18 * n) in
  let faulty = Pset.of_list (List.init t (fun i -> n - 1 - i)) in
  (match quorum with
  | None -> ()
  | Some fam ->
    require_family_fits fam ~n;
    if String.lowercase_ascii family = "full" then (
      pf "error: --quorum shapes the contamination/lossy menus only \
          (the 'full' class menus quantify over every legal value)@.";
      exit 1));
  let no_quorum () =
    if quorum <> None then (
      pf "error: --quorum only applies to the Sigma-nu algorithms \
          (anuc | naive-sn)@.";
      exit 1)
  in
  let need_majority () =
    if 2 * t >= n then (
      pf "error: this algorithm requires t < n/2 (got n=%d t=%d)@." n t;
      exit 1)
  in
  let pick_family ~contamination ~lossy ~full =
    match String.lowercase_ascii family with
    | "contamination" -> contamination ()
    | "lossy" -> lossy ()
    | "full" -> full ()
    | s ->
      pf "unknown menu family %S (contamination | lossy | full)@." s;
      exit 1
  in
  match String.lowercase_ascii algo with
  | "anuc" ->
    Fuzz_anuc_drive.go ~algo ~n ~faulty ~flavour:Consensus.Spec.Nonuniform
      ~menu:
        (pick_family
           ~contamination:(fun () ->
             Mc.Menu.contamination ~plus:true ?quorum ~n ~faulty ())
           ~lossy:(fun () -> Mc.Menu.lossy ~plus:true ?quorum ~n ~faulty ())
           ~full:(fun () -> Mc.Menu.omega_sigma_nu_plus ~n ~faulty))
      ~swarm_menus:
        [
          Mc.Menu.lossy ~plus:true ?quorum ~n ~faulty ();
          Mc.Menu.omega_sigma_nu_plus ~n ~faulty;
        ]
      ~runs ~sampler ~swarm ~shrink ~seed ~delivery ~max_steps ~max_drops
      ~batch ~jobs ~json ~checkpoint ~resume ~max_batches
  | "naive-sn" ->
    Fuzz_naive_drive.go ~algo ~n ~faulty ~flavour:Consensus.Spec.Nonuniform
      ~menu:
        (pick_family
           ~contamination:(fun () ->
             Mc.Menu.contamination ?quorum ~n ~faulty ())
           ~lossy:(fun () -> Mc.Menu.lossy ?quorum ~n ~faulty ())
           ~full:(fun () -> Mc.Menu.omega_sigma_nu ~n ~faulty))
      ~swarm_menus:
        [
          Mc.Menu.lossy ?quorum ~n ~faulty ();
          Mc.Menu.omega_sigma_nu ~n ~faulty;
        ]
      ~runs ~sampler ~swarm ~shrink ~seed ~delivery ~max_steps ~max_drops
      ~batch ~jobs ~json ~checkpoint ~resume ~max_batches
  | "mr-sigma" ->
    no_quorum ();
    Fuzz_naive_drive.go ~algo ~n ~faulty ~flavour:Consensus.Spec.Uniform
      ~menu:(Mc.Menu.omega_sigma ~n ~faulty)
      ~swarm_menus:[] ~runs ~sampler ~swarm ~shrink ~seed ~delivery
      ~max_steps ~max_drops ~batch ~jobs ~json ~checkpoint ~resume ~max_batches
  | "mr-majority" ->
    no_quorum ();
    need_majority ();
    Fuzz_maj_drive.go ~algo ~n ~faulty ~flavour:Consensus.Spec.Uniform
      ~menu:(Mc.Menu.leader_only ~n ~faulty)
      ~swarm_menus:[] ~runs ~sampler ~swarm ~shrink ~seed ~delivery
      ~max_steps ~max_drops ~batch ~jobs ~json ~checkpoint ~resume ~max_batches
  | "ct" ->
    no_quorum ();
    need_majority ();
    Fuzz_ct_drive.go ~algo ~n ~faulty ~flavour:Consensus.Spec.Uniform
      ~menu:(Mc.Menu.suspects ~n ~faulty)
      ~swarm_menus:[] ~runs ~sampler ~swarm ~shrink ~seed ~delivery
      ~max_steps ~max_drops ~batch ~jobs ~json ~checkpoint ~resume ~max_batches
  | s ->
    pf "unknown algorithm %S (anuc | naive-sn | mr-majority | mr-sigma | \
        ct)@."
      s;
    exit 1

(* ---------------------------------------------------------------- *)
(* serve                                                             *)
(* ---------------------------------------------------------------- *)

(* Closed-loop clients over the replicated log: always one run on the
   deterministic simulator (the replayable reference), plus one on the
   concurrent executor when --jobs > 1, --transport ring, or a read
   workload is requested. Exits 1 if any run shows divergent
   live-replica logs, misses its slot target, or serves a snapshot
   read staler than the declared bound — the same gates the
   serve-smoke CI job relies on. *)
let run_serve n clients slots batch window pipeline compaction jobs seed
    transport reads read_mode publish_every max_steps json =
  if n < 2 then (
    pf "serve: n must be >= 2@.";
    exit 2);
  if clients < 1 || slots < 1 then (
    pf "serve: clients and slots must be >= 1@.";
    exit 2);
  if reads < 0 || publish_every < 1 then (
    pf "serve: --reads must be >= 0 and --publish-every >= 1@.";
    exit 2);
  let commands_per_client =
    max 2 (((2 * batch * slots) + clients - 1) / clients)
  in
  let cfg =
    {
      Load.default with
      n;
      clients;
      commands_per_client;
      batch;
      pipeline;
      window;
      retain = compaction;
      horizon = max pipeline compaction;
      target_slots = slots;
      max_steps;
      seed;
      continuous_check = true;
      transport;
      reads;
      read_mode;
      publish_every;
    }
  in
  pf "serve: n=%d clients=%d slots=%d batch=%d window=%d pipeline=%d \
      compaction=%d seed=%d transport=%s reads=%d read-mode=%s \
      publish-every=%d@."
    n clients slots batch window pipeline compaction seed
    (Sim.Executor.transport_name transport)
    reads
    (Load.read_mode_name read_mode)
    publish_every;
  pf "%s@." Experiments.b10_header;
  let sim_out = Load.run_sim cfg in
  let rows = ref [ Experiments.b10_row ~substrate:"sim" cfg sim_out ] in
  pf "%a@." Experiments.pp_b10_row (List.hd !rows);
  let outcomes = ref [ sim_out ] in
  let b14_rows = ref [] in
  if jobs > 1 || transport <> Sim.Executor.Mutex || reads > 0 then begin
    let exec_out = Load.run_exec ~jobs cfg in
    let row =
      Experiments.b10_row
        ~substrate:
          (Printf.sprintf "exec(j=%d,%s)" jobs
             (Sim.Executor.transport_name transport))
        cfg exec_out
    in
    pf "%a@." Experiments.pp_b10_row row;
    rows := !rows @ [ row ];
    outcomes := !outcomes @ [ exec_out ];
    if reads > 0 then b14_rows := [ Experiments.b14_row ~jobs cfg exec_out ]
  end;
  if !b14_rows <> [] then begin
    pf "%s@." Experiments.b14_header;
    List.iter (fun r -> pf "%a@." Experiments.pp_b14_row r) !b14_rows
  end;
  (match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let fragments =
      ("b10_serve", Experiments.json_of_b10_rows !rows)
      ::
      (if !b14_rows = [] then []
       else [ ("b14_ring", Experiments.json_of_b14_rows !b14_rows) ])
    in
    Report.to_channel oc (Report.Obj fragments);
    close_out oc;
    pf "wrote %s@." path);
  let divergent = List.exists (fun o -> o.Load.o_divergent) !outcomes in
  let unreached = List.exists (fun o -> not o.Load.o_reached) !outcomes in
  let stale =
    List.exists (fun o -> o.Load.o_stale_max > o.Load.o_stale_bound) !outcomes
  in
  if divergent then pf "FAILED: live replica logs diverged@.";
  if unreached then
    pf "FAILED: slot target not reached within --max-steps@.";
  if stale then
    pf "FAILED: snapshot read staleness exceeded the declared bound@.";
  if divergent || unreached || stale then exit 1

(* ---------------------------------------------------------------- *)
(* cmdliner plumbing                                                 *)
(* ---------------------------------------------------------------- *)

open Cmdliner

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let t_arg =
  Arg.(
    value & opt int 2
    & info [ "t" ] ~docv:"T" ~doc:"Maximum number of faulty processes.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* Shared by mc and fuzz. Both engines are deterministic in their
   arguments *excluding* jobs for mc (verdict and distinct-states
   agree with the sequential run; interleaving-dependent counters may
   differ) and *including* jobs for fuzz (byte-identical JSON for any
   job count). *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"J"
        ~doc:
          "Explore with $(docv) parallel domains (default 1 = the \
           sequential engine). mc: same verdict and distinct-states \
           count as --jobs 1; fuzz: byte-identical report for any \
           $(docv).")

let quorum_arg =
  Arg.(
    value
    & opt (some quorum_conv) None
    & info [ "quorum" ] ~docv:"FAMILY"
        ~doc:
          "Quorum family: majority | super:F | weighted:W0,W1,... | \
           grid[:RxC]. run: execute MR parameterized by the family \
           (overrides --algo; detector reduced to Omega). mc / fuzz: \
           shape the contamination and lossy Sigma-nu(+) menus around \
           the family's minimal quorums instead of the built-in \
           majority-style menus (anuc and naive-sn only). Ill-fitting \
           families (e.g. grid on a non-tiling n) are rejected with a \
           typed error.")

let run_cmd =
  let algo =
    Arg.(
      value
      & opt algo_conv Experiments.Anuc
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"Algorithm: a_nuc | mr_majority | mr_sigma | stack | ct.")
  in
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"P"
          ~doc:
            "Drop each cross-process message with probability $(docv) \
             (deterministic in --seed).")
  in
  let dup =
    Arg.(
      value & opt float 0.0
      & info [ "dup" ] ~docv:"P"
          ~doc:
            "Deliver each surviving cross-process message twice with \
             probability $(docv).")
  in
  let reorder =
    Arg.(
      value & opt int 0
      & info [ "reorder" ] ~docv:"W"
          ~doc:
            "Let a delivered message jump ahead of up to $(docv) queued \
             messages at its destination.")
  in
  let partition =
    Arg.(
      value
      & opt_all partition_conv []
      & info [ "partition" ] ~docv:"SPEC"
          ~doc:
            "Sever cross-group links during a window; $(docv) is \
             FROM-UNTIL:G|G|... with comma-separated pids per group, e.g. \
             20-60:0,1|2,3. Repeatable.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one consensus instance in a simulated system")
    Term.(
      const run_consensus $ algo $ quorum_arg $ n_arg $ t_arg $ seed_arg
      $ drop $ dup $ reorder $ partition)

let experiments_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweeps (faster).")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"ID" ~doc:"Run a single experiment (e1..e14 | e16).")
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Validate the paper's theorems (the E-table of DESIGN.md)")
    Term.(const run_experiments $ quick $ only $ seed_arg)

let check_cmd =
  let detector =
    Arg.(
      value & opt string "sigma_nu_plus"
      & info [ "detector" ] ~docv:"D"
          ~doc:"omega | sigma | sigma_nu | sigma_nu_plus | eventually_strong.")
  in
  let horizon =
    Arg.(
      value & opt int 300
      & info [ "horizon" ] ~docv:"H" ~doc:"Sampled history length.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Generate a failure-detector history and validate it")
    Term.(const run_check $ detector $ n_arg $ t_arg $ seed_arg $ horizon)

let ablation_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweeps (faster).")
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"The A_nuc mechanism-necessity study (distrust / awareness)")
    Term.(const run_ablation $ quick $ seed_arg)

let scenario_cmd =
  let scenario_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"contamination | separation.")
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a proof scenario from the paper")
    Term.(const run_scenario $ scenario_arg)

let mc_cmd =
  let algo =
    Arg.(
      value & opt string "anuc"
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"anuc | naive-sn | mr-majority | mr-sigma | ct.")
  in
  let n =
    Arg.(
      value & opt int 3
      & info [ "n" ] ~docv:"N" ~doc:"Number of processes (small: n <= 4).")
  in
  let t =
    Arg.(
      value & opt int 1
      & info [ "t" ] ~docv:"T"
          ~doc:
            "Maximum number of faulty processes; the last $(docv) pids are \
             the faulty set of the explored environment.")
  in
  let depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "depth" ] ~docv:"D"
          ~doc:
            "Exploration depth bound (default: a per-algorithm depth at \
             which the interesting behaviour is reachable).")
  in
  let family =
    Arg.(
      value & opt string "contamination"
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Detector-menu family: the focused Section 6.3 'contamination' \
             sub-family, the same family over 'lossy' links (the network \
             may drop any deliverable message), or the 'full' class menu \
             (much larger state \
             space).")
  in
  let max_states =
    Arg.(
      value & opt int 2_000_000
      & info [ "max-states" ] ~docv:"S"
          ~doc:"Abort (inconclusively) after exploring $(docv) states.")
  in
  let max_drops =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-drops" ] ~docv:"K"
          ~doc:
            "With --family lossy: bound the network to at most $(docv) \
             dropped messages per schedule (default: unlimited). The \
             exploration is then exhaustive for every schedule with at \
             most $(docv) losses — the loss-bounded analogue of --depth, \
             which keeps deep lossy explorations tractable.")
  in
  let delivery =
    Arg.(
      value & opt string "fifo"
      & info [ "delivery" ] ~docv:"MODEL"
          ~doc:
            "Channel model: 'fifo' (per-channel send order; exhaustive for \
             FIFO links) or 'any' (every per-channel reordering).")
  in
  let reduction =
    Arg.(
      value & opt string "sleep"
      & info [ "reduction" ] ~docv:"R"
          ~doc:
            "Partial-order reduction: 'dpor' (sleep sets refined by the \
             happens-before independence relation — processes racing on a \
             channel, or drops against their channel's consumers, wake \
             slept siblings back up as backtrack points), 'sleep' (same-pid \
             sleep sets only), or 'none'. All three are state-preserving: \
             verdict and distinct-state count are identical, only the \
             transitions taken differ.")
  in
  let json =
    Arg.(
      value
      & opt ~vopt:(Some "MC.json") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the run's statistics as a one-row b11_dpor document \
             fragment to $(docv) (the same row shape as bench --json; its \
             pass field records only that the verdict was conclusive, i.e. \
             not truncated).")
  in
  let corrupt =
    Arg.(
      value & flag
      & info [ "selftest-corrupt-cx" ]
          ~doc:
            "Deliberately corrupt a found counterexample's receives before \
             certification (selftest of the replay/history checks and the \
             nonzero exit path; a corrupted counterexample must be \
             rejected).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a versioned campaign snapshot (packed visited set, \
             frontier cursor, counters) to $(docv) at exploration-chunk \
             boundaries, roughly every --ckpt-every newly interned states; \
             a killed campaign resumed with --resume reproduces the \
             uninterrupted verdict and distinct-state count exactly.")
  in
  let ckpt_every =
    Arg.(
      value & opt int 50_000
      & info [ "ckpt-every" ] ~docv:"S"
          ~doc:
            "With --checkpoint: snapshot after at least $(docv) new \
             distinct states since the previous snapshot.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume a checkpointed campaign from $(docv). The file's \
             magic, schema version, payload digest, campaign fingerprint \
             and stored state hashes are all re-validated before any state \
             is trusted; a mismatch exits 1 with a typed error. \
             --max-states counts cumulatively across the resumed \
             segments.")
  in
  let spill_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "spill-dir" ] ~docv:"DIR"
          ~doc:
            "Spill cold shards of the visited set to $(docv) at chunk \
             boundaries, keeping only hash prefilters in memory \
             (existing $(docv) required); shards reload transparently on \
             collision.")
  in
  let corrupt_ckpt =
    Arg.(
      value & flag
      & info [ "selftest-corrupt-checkpoint" ]
          ~doc:
            "With --resume: flip one byte of the checkpoint file (into \
             FILE.corrupt) and resume from the damaged copy — the digest \
             validation must reject it with a typed error and exit 1 \
             (negative-path selftest, like --selftest-corrupt-cx).")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Exhaustively model-check an algorithm over every admissible \
          schedule of a small universe")
    Term.(
      const run_mc $ algo $ n $ t $ depth $ family $ quorum_arg
      $ max_states $ max_drops $ delivery $ jobs_arg $ reduction $ json
      $ corrupt $ checkpoint $ ckpt_every $ resume $ spill_dir
      $ corrupt_ckpt)

let fuzz_cmd =
  let algo =
    Arg.(
      value & opt string "naive-sn"
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"anuc | naive-sn | mr-majority | mr-sigma | ct.")
  in
  let n =
    Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")
  in
  let t =
    Arg.(
      value & opt int 2
      & info [ "t" ] ~docv:"T"
          ~doc:
            "Maximum number of faulty processes; the last $(docv) pids are \
             the faulty set.")
  in
  let runs =
    Arg.(
      value & opt int 10_000
      & info [ "runs" ] ~docv:"R"
          ~doc:"Sample at most $(docv) schedules (stops at first violation).")
  in
  let sampler =
    Arg.(
      value & opt string "uniform"
      & info [ "sampler" ] ~docv:"S"
          ~doc:
            "Schedule sampler: 'uniform' or 'pctD' (PCT with D-1 \
             priority-change points, e.g. pct3).")
  in
  let swarm =
    Arg.(
      value & flag
      & info [ "swarm" ]
          ~doc:
            "Resample menu family, loss budget, stabilization step and \
             sampler once per batch.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Report the raw violating schedule without delta-debugging.")
  in
  let delivery =
    Arg.(
      value & opt string "fifo"
      & info [ "delivery" ] ~docv:"MODEL"
          ~doc:
            "Channel model runs sample from: 'fifo' (channel heads \
             only; small branching factor, best find rate — default) \
             or 'any' (any pending message, the paper's set-shaped \
             buffer). The shrinker always works in the 'any' space: \
             its drain-skipping pass frees FIFO-found schedules from \
             channel-prefix draining.")
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"K"
          ~doc:"Steps per sampled run (default 18*n).")
  in
  let max_drops =
    Arg.(
      value & opt int 1
      & info [ "max-drops" ] ~docv:"D"
          ~doc:
            "Loss budget per run when the menu family is lossy (swarm may \
             override per batch).")
  in
  let batch =
    Arg.(
      value & opt int 1000
      & info [ "batch" ] ~docv:"B"
          ~doc:"Runs per coverage batch (and per swarm draw).")
  in
  let family =
    Arg.(
      value & opt string "contamination"
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Detector-menu family, as for mc: contamination | lossy | full \
             (ignored by the uniform algorithms, which have one menu).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the fuzz report as JSON to $(docv) (byte-deterministic \
             in --seed).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a versioned campaign snapshot (coverage sets, curve, \
             counters, batch cursor) to $(docv) at batch-chunk \
             boundaries; an interrupted campaign resumed with --resume \
             produces a byte-identical report to the straight-through \
             run, at any --jobs.")
  in
  let ckpt_every =
    Arg.(
      value & opt int 10
      & info [ "ckpt-every" ] ~docv:"B"
          ~doc:
            "With --checkpoint: snapshot after at least $(docv) batches \
             since the previous snapshot.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume a checkpointed fuzz campaign from $(docv); magic, \
             schema version, digest and campaign fingerprint are \
             validated before anything is trusted (mismatch exits 1).")
  in
  let max_batches =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-batches" ] ~docv:"B"
          ~doc:
            "Stop this segment after $(docv) batches (the deterministic \
             interruption hook for checkpoint testing; the partial \
             segment still checkpoints).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Randomly sample admissible schedules (PCT / uniform / swarm), \
          track coverage, and shrink+certify any violation found")
    Term.(
      const run_fuzz $ algo $ n $ t $ runs $ sampler $ swarm
      $ Term.app (const not) no_shrink
      $ seed_arg $ delivery $ max_steps $ max_drops $ batch $ family
      $ quorum_arg $ jobs_arg $ json $ checkpoint $ ckpt_every $ resume
      $ max_batches)

let serve_cmd =
  let clients =
    Arg.(
      value & opt int 50
      & info [ "clients" ] ~docv:"C"
          ~doc:"Closed-loop clients, homed round-robin on the replicas.")
  in
  let slots =
    Arg.(
      value & opt int 200
      & info [ "slots" ] ~docv:"S"
          ~doc:"Stop once every correct replica has decided $(docv) slots.")
  in
  let batch =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"B"
          ~doc:"Commands packed per slot proposal (1-4).")
  in
  let window =
    Arg.(
      value & opt int 8
      & info [ "window" ] ~docv:"W"
          ~doc:"Per-replica in-flight command cap (the client window).")
  in
  let pipeline =
    Arg.(
      value & opt int 2
      & info [ "pipeline" ] ~docv:"P"
          ~doc:"Consensus instances kept open ahead of the first undecided \
                slot.")
  in
  let compaction =
    Arg.(
      value & opt int 128
      & info [ "compaction" ] ~docv:"K"
          ~doc:
            "Retention bound: applied-log slots kept before compaction, \
             and the instance-retirement horizon.")
  in
  let serve_n =
    Arg.(
      value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Number of replicas.")
  in
  let max_steps =
    Arg.(
      value & opt int 2_000_000
      & info [ "max-steps" ] ~docv:"K" ~doc:"Step budget per run.")
  in
  let serve_jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"J"
          ~doc:
            "With $(docv) > 1, additionally run the workload on the \
             concurrent executor with that many domains (the simulator \
             reference always runs).")
  in
  let transport =
    Arg.(
      value
      & opt
          (enum [ ("mutex", Sim.Executor.Mutex); ("ring", Sim.Executor.Ring) ])
          Sim.Executor.Mutex
      & info [ "transport" ] ~docv:"T"
          ~doc:
            "Executor transport: $(b,mutex) (a lock per mailbox — the \
             differential oracle) or $(b,ring) (lock-free bounded MPSC \
             rings with an overflow side-queue). Any value other than \
             $(b,mutex) forces an executor run even at --jobs 1.")
  in
  let reads =
    Arg.(
      value & opt int 0
      & info [ "reads" ] ~docv:"R"
          ~doc:
            "Serve $(docv) read-only queries alongside the write \
             workload, paced by decided-slot progress (forces an \
             executor run).")
  in
  let read_mode =
    Arg.(
      value
      & opt
          (enum
             [
               ("log", Load.Read_log);
               ("snapshot", Load.Read_snapshot);
               ("snap", Load.Read_snapshot);
             ])
          Load.Read_log
      & info [ "read-mode" ] ~docv:"M"
          ~doc:
            "$(b,log) recomputes the full-log digest from live replica \
             state per read; $(b,snapshot) reads the newest published \
             snapshot — one atomic load, staleness bounded by \
             --publish-every - 1 decided slots (the run fails if the \
             bound is ever exceeded).")
  in
  let publish_every =
    Arg.(
      value & opt int 8
      & info [ "publish-every" ] ~docv:"K"
          ~doc:
            "Republish the read snapshot every $(docv) decided slots \
             (snapshot mode).")
  in
  let json =
    Arg.(
      value
      & opt ~vopt:(Some "SERVE.json") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the B10-shaped rows (plus B14-shaped read-path rows \
             when --reads > 0) as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a closed-loop client workload over the replicated log \
          (state-machine replication on nonuniform consensus)")
    Term.(
      const run_serve $ serve_n $ clients $ slots $ batch $ window $ pipeline
      $ compaction $ serve_jobs $ seed_arg $ transport $ reads $ read_mode
      $ publish_every $ max_steps $ json)

let main_cmd =
  Cmd.group
    (Cmd.info "nuc_cli" ~version:"1.0.0"
       ~doc:
         "The weakest failure detector to solve nonuniform consensus — \
          executable reproduction")
    [
      run_cmd;
      experiments_cmd;
      check_cmd;
      scenario_cmd;
      ablation_cmd;
      mc_cmd;
      fuzz_cmd;
      serve_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
