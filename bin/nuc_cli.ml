(* nuc_cli — command-line driver for the nonuniform-consensus
   reproduction.

   Subcommands:
     run          one consensus run (a_nuc | mr_majority | mr_sigma | stack)
     experiments  the E-table of theorem validations (see DESIGN.md)
     check        generate an oracle history and validate it
     scenario     the proof scenarios (contamination | separation) *)


let pf = Format.printf

(* ---------------------------------------------------------------- *)
(* run                                                               *)
(* ---------------------------------------------------------------- *)

let parse_algo = function
  | "a_nuc" -> Ok Experiments.Anuc
  | "mr_majority" -> Ok Experiments.Mr_majority
  | "mr_sigma" -> Ok Experiments.Mr_sigma
  | "stack" -> Ok Experiments.Stack
  | "ct" -> Ok Experiments.Ct
  | s ->
    Error
      (`Msg
         (Printf.sprintf
            "unknown algorithm %S (expected a_nuc | mr_majority | mr_sigma \
             | stack | ct)"
            s))

let algo_conv =
  Cmdliner.Arg.conv
    ( parse_algo,
      fun fmt a ->
        Format.pp_print_string fmt
          (match a with
          | Experiments.Anuc -> "a_nuc"
          | Experiments.Mr_majority -> "mr_majority"
          | Experiments.Mr_sigma -> "mr_sigma"
          | Experiments.Stack -> "stack"
          | Experiments.Ct -> "ct") )

let run_consensus algo n t seed =
  if t >= n then (
    pf "error: need t < n@.";
    exit 1);
  if (algo = Experiments.Mr_majority || algo = Experiments.Ct) && 2 * t >= n
  then (
    pf "error: this algorithm requires t < n/2 (got n=%d t=%d)@." n t;
    exit 1);
  let r = Experiments.latency algo ~n ~t ~seeds:[ seed ] in
  pf "%s, n=%d, E_%d, seed %d:@."  r.Experiments.algorithm n t seed;
  pf "  all correct processes decided: %b@."
    (r.Experiments.decided = r.Experiments.runs);
  pf "  decision round (avg): %.1f@." r.Experiments.avg_rounds;
  pf "  simulation steps:     %.0f@." r.Experiments.avg_steps;
  pf "  messages sent:        %.0f@." r.Experiments.avg_msgs;
  pf "  mailbox depth (hwm):  %.0f@." r.Experiments.avg_hwm

(* ---------------------------------------------------------------- *)
(* experiments                                                       *)
(* ---------------------------------------------------------------- *)

let run_ablation quick =
  pf "%s@." Experiments.ablation_header;
  List.iter
    (fun r -> pf "%a@." Experiments.pp_ablation_row r)
    (Experiments.ablation ~quick ())

let run_experiments quick only =
  let rows =
    match only with
    | None -> Experiments.all ~quick ()
    | Some id -> (
      let pick =
        [
          ("e1", Experiments.e1_extract_sigma_nu);
          ("e2", Experiments.e2_extract_sigma);
          ("e3", Experiments.e3_boost);
          ("e4", Experiments.e4_anuc);
          ("e5", Experiments.e5_stack);
          ("e6", Experiments.e6_contamination);
          ("e7", Experiments.e7_sigma_scratch);
          ("e8", Experiments.e8_attack);
          ("e9", Experiments.e9_merge);
          ("e10", Experiments.e10_not_uniform);
        ]
      in
      match List.assoc_opt (String.lowercase_ascii id) pick with
      | Some f -> [ f ~quick () ]
      | None ->
        pf "unknown experiment %S (expected e1..e9)@." id;
        exit 1)
  in
  List.iter (fun r -> pf "%a@.@." Experiments.pp_row r) rows;
  if List.for_all (fun r -> r.Experiments.pass) rows then pf "ALL PASS@."
  else begin
    pf "SOME EXPERIMENTS FAILED@.";
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* check                                                             *)
(* ---------------------------------------------------------------- *)

let run_check detector n t seed horizon =
  let env = Sim.Env.make ~n ~max_faulty:t in
  let rng = Random.State.make [| seed |] in
  let pattern = Sim.Env.random_pattern rng ~crash_window:(horizon / 3) env in
  pf "pattern: %a@." Sim.Failure_pattern.pp pattern;
  let stab = (2 * horizon) / 3 in
  let check name oracle checker =
    let h = Fd.Oracle.history ~horizon ~n oracle in
    match checker h with
    | Ok () -> pf "%s: history of %d samples conforms@." name ((horizon + 1) * n)
    | Error v -> pf "%s: VIOLATION %a@." name Fd.Check.pp_violation v
  in
  match detector with
  | "omega" ->
    check "Omega"
      (Fd.Oracle.omega ~seed ~stab_time:stab pattern)
      (Fd.Check.omega ~max_stab:stab pattern)
  | "sigma" ->
    check "Sigma"
      (Fd.Oracle.sigma ~seed ~stab_time:stab pattern)
      (Fd.Check.sigma ~max_stab:stab pattern)
  | "sigma_nu" ->
    check "Sigma-nu"
      (Fd.Oracle.sigma_nu ~seed ~stab_time:stab pattern)
      (Fd.Check.sigma_nu ~max_stab:stab pattern)
  | "sigma_nu_plus" ->
    check "Sigma-nu+"
      (Fd.Oracle.sigma_nu_plus ~seed ~stab_time:stab pattern)
      (Fd.Check.sigma_nu_plus ~max_stab:stab pattern)
  | "eventually_strong" ->
    check "<>S"
      (Fd.Oracle.eventually_strong ~seed ~stab_time:stab pattern)
      (Fd.Check.eventually_strong ~max_stab:stab pattern)
  | s ->
    pf "unknown detector %S (omega | sigma | sigma_nu | sigma_nu_plus | \
        eventually_strong)@."
      s;
    exit 1

(* ---------------------------------------------------------------- *)
(* scenario                                                          *)
(* ---------------------------------------------------------------- *)

let run_scenario name =
  let report o =
    List.iter (fun line -> pf "%s@." line) o.Core.Scenario.trace;
    pf "agreement violated: %b; adversary history legal: %b@."
      o.Core.Scenario.agreement_violated
      (Result.is_ok o.Core.Scenario.history_valid)
  in
  match name with
  | "contamination" -> report (Core.Scenario.contamination_naive_mr ())
  | "contamination_unsafe_anuc" ->
    report (Core.Scenario.contamination_anuc_unsafe ())
  | "separation" ->
    let module Atk = Core.Separation.Attack (Core.Separation.Sigma_scratch) in
    List.iter
      (fun (n, t) ->
        pf "--- n=%d t=%d ---@." n t;
        match Atk.run ~n ~t ~inputs:(fun _ -> t) () with
        | Ok o -> pf "%a@." Atk.pp_outcome o
        | Error e -> pf "%s@." e)
      [ (4, 1); (4, 2); (6, 3) ]
  | s ->
    pf "unknown scenario %S (contamination | contamination_unsafe_anuc | \
        separation)@."
      s;
    exit 1

(* ---------------------------------------------------------------- *)
(* cmdliner plumbing                                                 *)
(* ---------------------------------------------------------------- *)

open Cmdliner

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let t_arg =
  Arg.(
    value & opt int 2
    & info [ "t" ] ~docv:"T" ~doc:"Maximum number of faulty processes.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let run_cmd =
  let algo =
    Arg.(
      value
      & opt algo_conv Experiments.Anuc
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"Algorithm: a_nuc | mr_majority | mr_sigma | stack | ct.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one consensus instance in a simulated system")
    Term.(const run_consensus $ algo $ n_arg $ t_arg $ seed_arg)

let experiments_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweeps (faster).")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"ID" ~doc:"Run a single experiment (e1..e10).")
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Validate the paper's theorems (the E-table of DESIGN.md)")
    Term.(const run_experiments $ quick $ only)

let check_cmd =
  let detector =
    Arg.(
      value & opt string "sigma_nu_plus"
      & info [ "detector" ] ~docv:"D"
          ~doc:"omega | sigma | sigma_nu | sigma_nu_plus | eventually_strong.")
  in
  let horizon =
    Arg.(
      value & opt int 300
      & info [ "horizon" ] ~docv:"H" ~doc:"Sampled history length.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Generate a failure-detector history and validate it")
    Term.(const run_check $ detector $ n_arg $ t_arg $ seed_arg $ horizon)

let ablation_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweeps (faster).")
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"The A_nuc mechanism-necessity study (distrust / awareness)")
    Term.(const run_ablation $ quick)

let scenario_cmd =
  let scenario_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"contamination | separation.")
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a proof scenario from the paper")
    Term.(const run_scenario $ scenario_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "nuc_cli" ~version:"1.0.0"
       ~doc:
         "The weakest failure detector to solve nonuniform consensus — \
          executable reproduction")
    [ run_cmd; experiments_cmd; check_cmd; scenario_cmd; ablation_cmd ]

let () = exit (Cmd.eval main_cmd)
