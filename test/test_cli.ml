(* Determinism of the seeded entry points: the same seed must produce
   byte-identical output, at the library level and through the
   nuc_cli binary itself. *)

let read_all ic =
  let b = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  Buffer.contents b

(* Resolve the binary relative to this test executable, so the test
   works both under `dune runtest` (cwd = test dir) and `dune exec`
   (cwd = workspace root). *)
let nuc_cli =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name
       (Filename.concat "bin" "nuc_cli.exe"))

(* Runs the CLI and returns (exit code, combined output) — for the
   tests that pin the exit-code contract itself. *)
let run_cli_status args =
  let cmd = Filename.quote_command nuc_cli args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let out = read_all ic in
  match Unix.close_process_in ic with
  | Unix.WEXITED c -> (c, out)
  | _ -> Alcotest.failf "%s killed" cmd

let run_cli args =
  match run_cli_status args with
  | 0, out -> out
  | c, out ->
    Alcotest.failf "%s exited with %d:\n%s"
      (Filename.quote_command nuc_cli args)
      c out

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_cli_run_same_seed () =
  let args = [ "run"; "--algo"; "a_nuc"; "-n"; "4"; "-t"; "1"; "--seed"; "7" ] in
  let out1 = run_cli args in
  let out2 = run_cli args in
  Alcotest.(check bool) "produced output" true (String.length out1 > 0);
  Alcotest.(check string) "identical output for identical seed" out1 out2

let test_cli_experiments_same_seed () =
  let args = [ "experiments"; "--quick"; "--only"; "e1"; "--seed"; "3" ] in
  let out1 = run_cli args in
  let out2 = run_cli args in
  Alcotest.(check string) "identical output for identical seed" out1 out2

let test_library_rows_same_seed () =
  let r1 = Experiments.e1_extract_sigma_nu ~quick:true ~seed_base:5 () in
  let r2 = Experiments.e1_extract_sigma_nu ~quick:true ~seed_base:5 () in
  Alcotest.(check bool) "identical E1 rows" true (r1 = r2);
  let a1 = Experiments.ablation ~quick:true ~seed_base:2 () in
  let a2 = Experiments.ablation ~quick:true ~seed_base:2 () in
  Alcotest.(check bool) "identical ablation tables" true (a1 = a2)

(* A starved E9 (step budget too small for either side to decide)
   reports a failed row instead of escaping as an exception — the
   regression this pins once surfaced as a bare [Failure] through
   the CLI. *)
let test_e9_budget_failure_is_a_row () =
  let row = Experiments.e9_merge ~quick:true ~step_budget:1 () in
  Alcotest.(check bool) "row fails" false row.Experiments.pass;
  let mentions_budget = contains row.Experiments.measured "no merge attempted" in
  Alcotest.(check bool)
    (Printf.sprintf "measured explains the starved budget: %s"
       row.Experiments.measured)
    true mentions_budget

(* The run subcommand with an adversarial network: deterministic for
   a fixed seed, and a different fault seed perturbs the run. *)
let test_cli_faulty_run_same_seed () =
  let args =
    [
      "run"; "--algo"; "a_nuc"; "-n"; "4"; "-t"; "1"; "--seed"; "7";
      "--drop"; "0.1"; "--dup"; "0.05"; "--reorder"; "2";
      "--partition"; "20-60:0,1|2,3";
    ]
  in
  let out1 = run_cli args in
  let out2 = run_cli args in
  Alcotest.(check bool) "produced output" true (String.length out1 > 0);
  Alcotest.(check string) "identical output for identical seed" out1 out2

(* ---------------------------------------------------------------- *)
(* Exit-code contract of the verification subcommands.

   `mc` and `fuzz` are meant to be CI gates, so their exit codes are
   interface, not detail: 0 means "verdict established" (exhausted
   with no violation, or a violation whose counterexample the
   independent certificates accept); 1 means "no trustworthy
   verdict" (state-budget truncation, or a counterexample that fails
   replay/history certification). These tests pin all four corners
   on the E_1(3) universe, where each run is fractions of a
   second. *)
(* ---------------------------------------------------------------- *)

let mc_naive_args =
  [ "mc"; "--algo"; "naive-sn"; "-n"; "3"; "-t"; "1"; "--depth"; "32" ]

(* A state budget far below the depth-20 space: the checker must
   refuse to claim anything (exit 1, "TRUNCATED"), not report "no
   violation" for a space it never finished. *)
let test_mc_truncation_exit () =
  let code, out =
    run_cli_status
      [
        "mc"; "--algo"; "naive-sn"; "-n"; "3"; "-t"; "1"; "--depth"; "20";
        "--max-states"; "500";
      ]
  in
  Alcotest.(check int) "truncated exploration exits 1" 1 code;
  Alcotest.(check bool)
    "output says TRUNCATED" true
    (contains out "TRUNCATED")

(* The same universe, deep enough for the Section 6.3 counterexample:
   a *certified* violation is a successful verdict (exit 0) with both
   certificates printed. *)
let test_mc_certified_cx_exit () =
  let code, out = run_cli_status mc_naive_args in
  Alcotest.(check int) "certified counterexample exits 0" 0 code;
  Alcotest.(check bool)
    "replay certificate printed" true
    (contains out "replay: accepted by Runner.replay");
  Alcotest.(check bool)
    "history certificate printed" true
    (contains out "detector history: perpetual clauses hold")

(* The negative path of the certificate: --selftest-corrupt-cx bumps
   every received envelope's sequence number before certification, so
   Runner.replay must reject and the exit code must flip to 1. This
   is the only way to regression-test that certification actually
   *can* fail — a bug that made replay vacuously accept would pass
   every positive test. *)
let test_mc_uncertified_cx_exit () =
  let code, out =
    run_cli_status (mc_naive_args @ [ "--selftest-corrupt-cx" ])
  in
  Alcotest.(check int) "uncertified counterexample exits 1" 1 code;
  Alcotest.(check bool)
    "replay rejected" true
    (contains out "replay: REJECTED")

(* fuzz: a certified violation exits 0, and the JSON report is
   byte-deterministic in the seed (wall-clock is deliberately not
   serialized). *)
let test_fuzz_json_deterministic () =
  let file suffix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nuc_fuzz_det_%d_%s.json" (Unix.getpid ()) suffix)
  in
  let f1 = file "a" and f2 = file "b" in
  let args json =
    [
      "fuzz"; "--algo"; "naive-sn"; "-n"; "3"; "-t"; "1"; "--runs"; "100";
      "--seed"; "1"; "--json"; json;
    ]
  in
  let read f =
    let ic = open_in_bin f in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ f1; f2 ])
    (fun () ->
      let code1, out1 = run_cli_status (args f1) in
      let code2, _ = run_cli_status (args f2) in
      Alcotest.(check int) "certified fuzz violation exits 0" 0 code1;
      Alcotest.(check int) "second run exits 0" 0 code2;
      Alcotest.(check bool)
        "violation found and certified" true
        (contains out1 "replay OK; history OK");
      Alcotest.(check string) "byte-identical JSON for identical seed"
        (read f1) (read f2))

(* ---------------------------------------------------------------- *)
(* --jobs: the parallel engines behind the same interface.

   The contract the flag ships with: fuzz output (and its JSON file)
   is byte-identical for any job count; mc agrees with the sequential
   run on the verdict and the distinct-state count (its
   interleaving-dependent counters may differ, so the comparison is
   on the parsed figures, not the bytes). *)
(* ---------------------------------------------------------------- *)

let test_fuzz_jobs_json_identical () =
  let file suffix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nuc_fuzz_jobs_%d_%s.json" (Unix.getpid ()) suffix)
  in
  let f1 = file "j1" and f4 = file "j4" in
  let args jobs json =
    [
      "fuzz"; "--algo"; "naive-sn"; "-n"; "3"; "-t"; "1"; "--runs"; "100";
      "--seed"; "1"; "--jobs"; jobs; "--json"; json;
    ]
  in
  let read f =
    let ic = open_in_bin f in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ f1; f4 ])
    (fun () ->
      let code1, _ = run_cli_status (args "1" f1) in
      let code4, _ = run_cli_status (args "4" f4) in
      Alcotest.(check int) "--jobs 1 exits 0" 0 code1;
      Alcotest.(check int) "--jobs 4 exits 0" 0 code4;
      Alcotest.(check string) "byte-identical JSON across job counts"
        (read f1) (read f4))

(* Pulls "<N> distinct states" out of the mc stats line. *)
let distinct_states_of out =
  let marker = " distinct states" in
  let nh = String.length out and nm = String.length marker in
  let rec find i =
    if i + nm > nh then Alcotest.failf "no distinct-states figure in:\n%s" out
    else if String.sub out i nm = marker then i
    else find (i + 1)
  in
  let stop = find 0 in
  let rec start i =
    if i > 0 && (match out.[i - 1] with '0' .. '9' -> true | _ -> false)
    then start (i - 1)
    else i
  in
  let b = start stop in
  int_of_string (String.sub out b (stop - b))

let test_mc_jobs_equivalent () =
  let args jobs =
    [
      "mc"; "--algo"; "naive-sn"; "-n"; "3"; "-t"; "1"; "--depth"; "9";
      "--jobs"; jobs;
    ]
  in
  let out1 = run_cli (args "1") in
  let out2 = run_cli (args "2") in
  Alcotest.(check bool) "sequential run exhausts" true
    (contains out1 "exhausted: no violation");
  Alcotest.(check bool) "parallel run reaches the same verdict" true
    (contains out2 "exhausted: no violation");
  Alcotest.(check int) "same distinct-state count"
    (distinct_states_of out1) (distinct_states_of out2)

(* ---------------------------------------------------------------- *)
(* Checkpoint / resume: a truncated mc segment exits 1 (no
   trustworthy verdict yet), and resuming its checkpoint under a full
   budget reproduces the uninterrupted run's verdict and
   distinct-state count exactly. The corrupt-checkpoint selftest pins
   the negative path: a damaged file is a typed rejection and exit 1,
   never a crash or a silent fresh start. *)
(* ---------------------------------------------------------------- *)

let ckpt_file suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nuc_mc_ckpt_%d_%s.bin" (Unix.getpid ()) suffix)

let mc_ckpt_base =
  [ "mc"; "--algo"; "naive-sn"; "-n"; "3"; "-t"; "1"; "--depth"; "9" ]

let test_mc_checkpoint_resume () =
  let path = ckpt_file "resume" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let out_straight = run_cli mc_ckpt_base in
      let code_t, out_t =
        run_cli_status
          (mc_ckpt_base
          @ [ "--max-states"; "500"; "--checkpoint"; path; "--ckpt-every"; "100" ])
      in
      Alcotest.(check int) "truncated segment exits 1" 1 code_t;
      Alcotest.(check bool) "segment says TRUNCATED" true
        (contains out_t "TRUNCATED");
      Alcotest.(check bool) "checkpoint file written" true
        (Sys.file_exists path);
      let code_r, out_r =
        run_cli_status (mc_ckpt_base @ [ "--resume"; path ])
      in
      Alcotest.(check int) "resumed campaign exits 0" 0 code_r;
      Alcotest.(check bool) "resumed campaign exhausts" true
        (contains out_r "exhausted: no violation");
      Alcotest.(check int)
        "resumed distinct states match the uninterrupted run"
        (distinct_states_of out_straight)
        (distinct_states_of out_r))

let test_mc_corrupt_checkpoint_rejected () =
  let path = ckpt_file "corrupt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ path; path ^ ".corrupt" ])
    (fun () ->
      let _ =
        run_cli_status
          (mc_ckpt_base
          @ [ "--max-states"; "500"; "--checkpoint"; path; "--ckpt-every"; "100" ])
      in
      let code, out =
        run_cli_status
          (mc_ckpt_base @ [ "--resume"; path; "--selftest-corrupt-checkpoint" ])
      in
      Alcotest.(check int) "corrupt checkpoint exits 1" 1 code;
      Alcotest.(check bool) "typed rejection printed" true
        (contains out "checkpoint rejected"))

let test_mc_corrupt_selftest_requires_resume () =
  let code, out =
    run_cli_status (mc_ckpt_base @ [ "--selftest-corrupt-checkpoint" ])
  in
  Alcotest.(check int) "selftest without --resume exits 1" 1 code;
  Alcotest.(check bool) "explains the missing flag" true
    (contains out "requires --resume")

(* serve with the ring transport and snapshot-served reads: exits 0,
   prints a B14 row, and the JSON gains the b14_ring fragment next to
   b10_serve — the same invocation shape the serve-smoke CI step
   drives. *)
let test_serve_ring_snapshot_reads () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve_ring_%d.json" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let code, out =
        run_cli_status
          [
            "serve"; "--clients"; "10"; "--slots"; "30"; "--jobs"; "1";
            "--transport"; "ring"; "--reads"; "200"; "--read-mode";
            "snapshot"; "--publish-every"; "4"; "--json"; path;
          ]
      in
      Alcotest.(check int) "serve ring/snapshot exits 0" 0 code;
      Alcotest.(check bool) "prints a ring B14 row" true
        (contains out "ring   snapshot");
      let ic = open_in path in
      let json = read_all ic in
      close_in ic;
      Alcotest.(check bool) "b10_serve fragment" true
        (contains json "\"b10_serve\"");
      Alcotest.(check bool) "b14_ring fragment" true
        (contains json "\"b14_ring\"");
      Alcotest.(check bool) "stale_ok is true" true
        (contains json "\"stale_ok\": true"))

let () =
  Alcotest.run "cli"
    [
      ( "determinism",
        [
          Alcotest.test_case "run subcommand" `Quick test_cli_run_same_seed;
          Alcotest.test_case "faulty run subcommand" `Quick
            test_cli_faulty_run_same_seed;
          Alcotest.test_case "experiments subcommand" `Quick
            test_cli_experiments_same_seed;
          Alcotest.test_case "library rows" `Quick
            test_library_rows_same_seed;
        ] );
      ( "failure-rows",
        [
          Alcotest.test_case "starved E9 yields a failed row" `Quick
            test_e9_budget_failure_is_a_row;
        ] );
      ( "exit-codes",
        [
          Alcotest.test_case "mc truncation exits 1" `Quick
            test_mc_truncation_exit;
          Alcotest.test_case "mc certified cx exits 0" `Quick
            test_mc_certified_cx_exit;
          Alcotest.test_case "mc corrupted cx exits 1" `Quick
            test_mc_uncertified_cx_exit;
          Alcotest.test_case "fuzz JSON byte-deterministic" `Quick
            test_fuzz_json_deterministic;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "fuzz --jobs JSON byte-identical" `Quick
            test_fuzz_jobs_json_identical;
          Alcotest.test_case "mc --jobs verdict equivalent" `Quick
            test_mc_jobs_equivalent;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "mc kill/resume reproduces verdict" `Quick
            test_mc_checkpoint_resume;
          Alcotest.test_case "corrupt checkpoint exits 1" `Quick
            test_mc_corrupt_checkpoint_rejected;
          Alcotest.test_case "corrupt selftest requires --resume" `Quick
            test_mc_corrupt_selftest_requires_resume;
        ] );
      ( "serve",
        [
          Alcotest.test_case "ring + snapshot reads" `Quick
            test_serve_ring_snapshot_reads;
        ] );
    ]
