(* Determinism of the seeded entry points: the same seed must produce
   byte-identical output, at the library level and through the
   nuc_cli binary itself. *)

let read_all ic =
  let b = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  Buffer.contents b

(* Resolve the binary relative to this test executable, so the test
   works both under `dune runtest` (cwd = test dir) and `dune exec`
   (cwd = workspace root). *)
let nuc_cli =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name
       (Filename.concat "bin" "nuc_cli.exe"))

let run_cli args =
  let cmd = Filename.quote_command nuc_cli args in
  let ic = Unix.open_process_in cmd in
  let out = read_all ic in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> out
  | Unix.WEXITED c -> Alcotest.failf "%s exited with %d:\n%s" cmd c out
  | _ -> Alcotest.failf "%s killed" cmd

let test_cli_run_same_seed () =
  let args = [ "run"; "--algo"; "a_nuc"; "-n"; "4"; "-t"; "1"; "--seed"; "7" ] in
  let out1 = run_cli args in
  let out2 = run_cli args in
  Alcotest.(check bool) "produced output" true (String.length out1 > 0);
  Alcotest.(check string) "identical output for identical seed" out1 out2

let test_cli_experiments_same_seed () =
  let args = [ "experiments"; "--quick"; "--only"; "e1"; "--seed"; "3" ] in
  let out1 = run_cli args in
  let out2 = run_cli args in
  Alcotest.(check string) "identical output for identical seed" out1 out2

let test_library_rows_same_seed () =
  let r1 = Experiments.e1_extract_sigma_nu ~quick:true ~seed_base:5 () in
  let r2 = Experiments.e1_extract_sigma_nu ~quick:true ~seed_base:5 () in
  Alcotest.(check bool) "identical E1 rows" true (r1 = r2);
  let a1 = Experiments.ablation ~quick:true ~seed_base:2 () in
  let a2 = Experiments.ablation ~quick:true ~seed_base:2 () in
  Alcotest.(check bool) "identical ablation tables" true (a1 = a2)

(* A starved E9 (step budget too small for either side to decide)
   reports a failed row instead of escaping as an exception — the
   regression this pins once surfaced as a bare [Failure] through
   the CLI. *)
let test_e9_budget_failure_is_a_row () =
  let row = Experiments.e9_merge ~quick:true ~step_budget:1 () in
  Alcotest.(check bool) "row fails" false row.Experiments.pass;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let mentions_budget = contains row.Experiments.measured "no merge attempted" in
  Alcotest.(check bool)
    (Printf.sprintf "measured explains the starved budget: %s"
       row.Experiments.measured)
    true mentions_budget

(* The run subcommand with an adversarial network: deterministic for
   a fixed seed, and a different fault seed perturbs the run. *)
let test_cli_faulty_run_same_seed () =
  let args =
    [
      "run"; "--algo"; "a_nuc"; "-n"; "4"; "-t"; "1"; "--seed"; "7";
      "--drop"; "0.1"; "--dup"; "0.05"; "--reorder"; "2";
      "--partition"; "20-60:0,1|2,3";
    ]
  in
  let out1 = run_cli args in
  let out2 = run_cli args in
  Alcotest.(check bool) "produced output" true (String.length out1 > 0);
  Alcotest.(check string) "identical output for identical seed" out1 out2

let () =
  Alcotest.run "cli"
    [
      ( "determinism",
        [
          Alcotest.test_case "run subcommand" `Quick test_cli_run_same_seed;
          Alcotest.test_case "faulty run subcommand" `Quick
            test_cli_faulty_run_same_seed;
          Alcotest.test_case "experiments subcommand" `Quick
            test_cli_experiments_same_seed;
          Alcotest.test_case "library rows" `Quick
            test_library_rows_same_seed;
        ] );
      ( "failure-rows",
        [
          Alcotest.test_case "starved E9 yields a failed row" `Quick
            test_e9_budget_failure_is_a_row;
        ] );
    ]
