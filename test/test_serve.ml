(* Tests for the closed-loop load driver: the same served workload on
   the deterministic simulator and the concurrent executor. *)

(* With a single client homed at the pivot (the stable Omega leader
   from tick 1 in a failure-free run), batch = window = pipeline = 1,
   the leader is the only replica with commands and its re-queue
   discipline retries a lost command before submitting the next, so
   the non-noop subsequence of every log is a prefix of the client's
   stream, in submission order, on any interleaving. (Individual
   slots still race: a non-leader's noop proposal can win a slot —
   the leader adopts quorum-reported values — which costs a retry
   slot but never reorders, loses, or duplicates a command.) Given
   enough slots for the retries, both substrates therefore apply
   exactly the same log prefix: the full stream. *)
let deterministic_cfg =
  {
    Load.default with
    n = 3;
    clients = 1;
    commands_per_client = 12;
    batch = 1;
    pipeline = 1;
    window = 1;
    target_slots = 32;
    max_steps = 300_000;
    seed = 3;
  }

let applied_commands (o : Load.outcome) =
  List.filter (fun v -> not (Consensus.Value.equal v Smr.noop)) o.o_log

let test_sim_exec_equivalence () =
  let stream = Load.commands_for deterministic_cfg 0 in
  Alcotest.(check (list int))
    "workload is the client's stream"
    (List.init 12 (fun i -> i + 1))
    stream;
  let s = Load.run_sim deterministic_cfg in
  let e = Load.run_exec ~jobs:2 deterministic_cfg in
  List.iter
    (fun (name, (o : Load.outcome)) ->
      Alcotest.(check bool) (name ^ " reached the target") true o.o_reached;
      Alcotest.(check bool) (name ^ " not divergent") false o.o_divergent;
      Alcotest.(check int) (name ^ " uncompacted") 0 o.o_log_base;
      Alcotest.(check (list int))
        (name ^ " applied exactly the submitted stream, in order")
        stream (applied_commands o))
    [ ("sim", s); ("exec", e) ]

let test_sim_deterministic () =
  (* the simulator side of the driver is a pure function of the
     config — byte-equal observables across invocations *)
  let a = Load.run_sim deterministic_cfg in
  let b = Load.run_sim deterministic_cfg in
  Alcotest.(check (list int)) "same log" a.Load.o_log b.Load.o_log;
  Alcotest.(check int) "same steps" a.Load.o_steps b.Load.o_steps;
  Alcotest.(check int) "same ticks" a.Load.o_ticks b.Load.o_ticks

(* The paper's nonuniform guarantee at the served layer: under
   injected crashes, no two live replicas' retained logs ever
   disagree — checked pairwise at every round boundary
   (continuous_check), on both substrates. *)
let no_divergence_cfg =
  {
    Load.default with
    n = 4;
    clients = 12;
    commands_per_client = 6;
    batch = 2;
    pipeline = 2;
    window = 4;
    retain = 8;
    horizon = 16;
    target_slots = 25;
    max_steps = 400_000;
    seed = 7;
    crashes = [ (3, 400) ];
    continuous_check = true;
  }

let test_no_divergence_under_crashes () =
  List.iter
    (fun seed ->
      let cfg = { no_divergence_cfg with seed } in
      let o = Load.run_sim cfg in
      Alcotest.(check bool)
        (Printf.sprintf "sim seed %d reached the target" seed)
        true o.Load.o_reached;
      Alcotest.(check bool)
        (Printf.sprintf "sim seed %d never divergent" seed)
        false o.Load.o_divergent)
    [ 0; 1; 7 ]

let test_no_divergence_executor () =
  let o = Load.run_exec ~jobs:2 no_divergence_cfg in
  (* liveness depends on the interleaving budget, but safety must
     hold on every interleaving — divergence is the hard failure *)
  Alcotest.(check bool) "exec never divergent" false o.Load.o_divergent;
  Alcotest.(check bool) "exec made progress" true (o.Load.o_slots > 0)

let test_executor_under_faults () =
  (* lossy links on both substrates: a dropped message can stall an
     instance for good (the consensus layer does not retransmit), so
     this is a safety-only check — however far each run gets, live
     logs never diverge *)
  let cfg =
    {
      no_divergence_cfg with
      faults = Sim.Faults.make ~drop:0.02 ~dup:0.02 ~reorder:2 ~seed:5 ();
      crashes = [];
      target_slots = 15;
      max_steps = 150_000;
    }
  in
  let s = Load.run_sim cfg in
  Alcotest.(check bool) "sim under faults never divergent" false
    s.Load.o_divergent;
  let e = Load.run_exec ~jobs:2 cfg in
  Alcotest.(check bool) "exec under faults never divergent" false
    e.Load.o_divergent

let test_instances_bounded () =
  let o = Load.run_sim no_divergence_cfg in
  let bound =
    no_divergence_cfg.Load.horizon + no_divergence_cfg.Load.pipeline
    + no_divergence_cfg.Load.n + 1
  in
  Alcotest.(check bool)
    (Printf.sprintf "open instances bounded (%d <= %d)" o.Load.o_max_open
       bound)
    true
    (o.Load.o_max_open <= bound)

let () =
  Alcotest.run "serve"
    [
      ( "load-driver",
        [
          Alcotest.test_case "sim/exec equivalence" `Quick
            test_sim_exec_equivalence;
          Alcotest.test_case "sim determinism" `Quick test_sim_deterministic;
          Alcotest.test_case "no divergence under crashes" `Quick
            test_no_divergence_under_crashes;
          Alcotest.test_case "executor no divergence" `Quick
            test_no_divergence_executor;
          Alcotest.test_case "executor under faults" `Slow
            test_executor_under_faults;
          Alcotest.test_case "bounded instances under load" `Quick
            test_instances_bounded;
        ] );
    ]
