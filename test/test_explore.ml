(* Tests for the randomized schedule explorer (lib/explore): split-seed
   determinism, swarm rotation, coverage accounting, and the certified
   shrinker — the library-level half of the fuzz contract the CLI
   tests pin end to end. *)
open Procset

module Ex = Explore.Make (Consensus.Mr.With_quorum)

(* The E_1(3) fuzz universe, exactly as `nuc_cli fuzz -n 3 -t 1`
   builds it: pid 2 faulty, crash scheduled past the step budget,
   contaminating proposal 1. *)
let n = 3
let max_steps = 18 * n
let faulty = Pset.singleton 2
let proposals p = if Pset.mem p faulty then 1 else 0
let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (2, max_steps + 1) ]
let menu = Mc.Menu.contamination ~n ~faulty ()

let props =
  Ex.M.consensus_props ~decision:Consensus.Mr.With_quorum.decision ~proposals
    ~flavour:Consensus.Spec.Nonuniform ~pattern

let stop =
  Ex.M.decided_stop ~decision:Consensus.Mr.With_quorum.decision
    ~scope:(Sim.Failure_pattern.correct pattern)

let fuzz ?sampler ?swarm ?batch_size ?(shrink = true) ?jobs ~seed ~runs () =
  Ex.fuzz ~algo:"naive-sn" ?sampler ?swarm ?batch_size ~shrink ?jobs
    ~max_steps ~stop
    ~decided:(fun st -> Consensus.Mr.With_quorum.decision st <> None)
    ~seed ~runs ~n ~menu ~pattern ~inputs:proposals ~props ()

(* ---------------------------------------------------------------- *)
(* Determinism                                                      *)
(* ---------------------------------------------------------------- *)

(* Same seed, same bytes — at the library level, through the JSON
   serializer (which deliberately excludes wall-clock). *)
let test_json_byte_deterministic () =
  let r1 = fuzz ~seed:1 ~runs:100 () in
  let r2 = fuzz ~seed:1 ~runs:100 () in
  Alcotest.(check string) "byte-identical JSON for identical seed"
    (Report.to_string (Ex.json_of_report r1))
    (Report.to_string (Ex.json_of_report r2))

(* Parallel batch sharding must not move a byte: the report is
   deterministic in the arguments *including* [jobs] — per-batch
   trackers merged in batch order replay the sequential tracker
   exactly, and the earliest violating batch wins regardless of which
   domain ran it. Pinned on both report shapes: a campaign that stops
   at a violation (batch cutoff in play) and one that runs to
   completion (full curve merge). *)
let test_jobs_byte_identical_violation () =
  let bytes ~jobs =
    Report.to_string (Ex.json_of_report (fuzz ~jobs ~seed:1 ~runs:150 ()))
  in
  let base = bytes ~jobs:1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d matches jobs=1 (violation case)" jobs)
        base (bytes ~jobs))
    [ 2; 4 ]

let test_jobs_byte_identical_full_campaign () =
  let run ~jobs =
    Ex.fuzz ~algo:"naive-sn" ~batch_size:50 ~jobs ~max_steps ~stop
      ~decided:(fun st -> Consensus.Mr.With_quorum.decision st <> None)
      ~seed:4 ~runs:300 ~n ~menu ~pattern ~inputs:proposals ~props:[] ()
  in
  let bytes ~jobs = Report.to_string (Ex.json_of_report (run ~jobs)) in
  let base = bytes ~jobs:1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d matches jobs=1 (no-violation case)" jobs)
        base (bytes ~jobs))
    [ 2; 4 ]

(* Swarm draws are per batch — exactly the sharding unit — so the
   rotation must also be invariant under the job count. *)
let test_jobs_byte_identical_swarm () =
  let swarm =
    {
      Explore.sw_menus = [ menu; Mc.Menu.lossy ~n ~faulty () ];
      sw_budgets = [ 0; 1 ];
      sw_stabs = [ max_steps / 2; max_steps ];
      sw_samplers = [ Explore.Uniform; Pct 2; Pct 3 ];
    }
  in
  let run ~jobs =
    Ex.fuzz ~algo:"naive-sn" ~swarm ~batch_size:20 ~jobs ~max_steps ~stop
      ~decided:(fun st -> Consensus.Mr.With_quorum.decision st <> None)
      ~seed:5 ~runs:200 ~n ~menu ~pattern ~inputs:proposals ~props:[] ()
  in
  let bytes ~jobs = Report.to_string (Ex.json_of_report (run ~jobs)) in
  Alcotest.(check string) "jobs=3 matches jobs=1 (swarm case)"
    (bytes ~jobs:1) (bytes ~jobs:3)

(* Different seeds genuinely decorrelate the streams: the violating
   run index (or the coverage totals, when neither seed violates)
   must not coincide by construction. *)
let test_seeds_decorrelated () =
  let r1 = fuzz ~shrink:false ~seed:1 ~runs:50 () in
  let r2 = fuzz ~shrink:false ~seed:2 ~runs:50 () in
  let sig_of (r : Ex.report) =
    ( (match r.Ex.violation with Some v -> v.Ex.v_run | None -> -1),
      r.Ex.steps_total )
  in
  Alcotest.(check bool) "seed 1 and seed 2 runs differ" true
    (sig_of r1 <> sig_of r2)

(* PCT and uniform sample different schedule distributions from the
   same root seed. *)
let test_samplers_differ () =
  let ru = fuzz ~shrink:false ~sampler:Explore.Uniform ~seed:3 ~runs:50 () in
  let rp = fuzz ~shrink:false ~sampler:(Explore.Pct 3) ~seed:3 ~runs:50 () in
  Alcotest.(check string) "uniform labeled" "uniform" ru.Ex.sampler;
  Alcotest.(check string) "pct labeled" "pct3" rp.Ex.sampler;
  Alcotest.(check bool) "distinct schedule streams" true
    (ru.Ex.steps_total <> rp.Ex.steps_total
    || ru.Ex.totals.Explore.distinct_states
       <> rp.Ex.totals.Explore.distinct_states)

(* ---------------------------------------------------------------- *)
(* Swarm rotation and the coverage curve                            *)
(* ---------------------------------------------------------------- *)

let test_swarm_rotates_configurations () =
  let swarm =
    {
      Explore.sw_menus = [ menu; Mc.Menu.lossy ~n ~faulty () ];
      sw_budgets = [ 0; 1 ];
      sw_stabs = [ max_steps / 2; max_steps ];
      sw_samplers = [ Explore.Uniform; Pct 2; Pct 3 ];
    }
  in
  (* no properties: the naive algorithm violates within a few runs,
     and a violation stops the campaign — rotation needs all batches *)
  let r =
    Ex.fuzz ~algo:"naive-sn" ~swarm ~batch_size:20 ~max_steps ~stop
      ~decided:(fun st -> Consensus.Mr.With_quorum.decision st <> None)
      ~seed:5 ~runs:400 ~n ~menu ~pattern ~inputs:proposals ~props:[] ()
  in
  let distinct proj =
    List.sort_uniq compare (List.map proj r.Ex.curve) |> List.length
  in
  Alcotest.(check bool) "ran all batches" true (List.length r.Ex.curve >= 10);
  Alcotest.(check bool) "menus rotate" true
    (distinct (fun bp -> bp.Explore.bp_menu) >= 2);
  Alcotest.(check bool) "samplers rotate" true
    (distinct (fun bp -> bp.Explore.bp_sampler) >= 2);
  Alcotest.(check bool) "stabilization points rotate" true
    (distinct (fun bp -> bp.Explore.bp_stab) >= 2)

(* The saturation curve is an honest account of the totals: cumulative
   state counts never decrease, per-batch novelty sums to the final
   cumulative count, and the last point agrees with [totals]. *)
let test_curve_consistent_with_totals () =
  let r = fuzz ~shrink:false ~seed:4 ~runs:300 ~batch_size:50 () in
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Explore.bp_states <= b.Explore.bp_states && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative states monotone" true (monotone r.Ex.curve);
  let new_sum =
    List.fold_left (fun acc bp -> acc + bp.Explore.bp_new_states) 0 r.Ex.curve
  in
  let last = List.nth r.Ex.curve (List.length r.Ex.curve - 1) in
  Alcotest.(check int) "novelty sums to the cumulative count"
    last.Explore.bp_states new_sum;
  Alcotest.(check int) "last curve point agrees with totals"
    r.Ex.totals.Explore.distinct_states last.Explore.bp_states

(* ---------------------------------------------------------------- *)
(* The certified shrinker                                           *)
(* ---------------------------------------------------------------- *)

(* At n = 3 the uniform sampler lands the Section 6.3 contamination
   violation within a few runs; the shrunk schedule must still
   violate, be strictly shorter, and carry both certificates. *)
let find_violation () =
  let r = fuzz ~seed:1 ~runs:200 () in
  match r.Ex.violation with
  | Some v -> v
  | None -> Alcotest.fail "seed 1 must find the n = 3 violation"

let test_shrunk_violation_certified () =
  let v = find_violation () in
  Alcotest.(check string) "property" "nonuniform agreement" v.Ex.v_property;
  Alcotest.(check bool) "strictly shorter than the sampled schedule" true
    (List.length v.Ex.v_shrunk < List.length v.Ex.v_moves);
  Alcotest.(check bool) "replay certificate" true v.Ex.v_replay_ok;
  Alcotest.(check bool) "history certificate" true v.Ex.v_history_ok;
  Alcotest.(check bool) "shrinker spent candidates" true (v.Ex.v_candidates > 0)

(* Shrinking is a fixpoint in practice: re-shrinking an already-shrunk
   schedule cannot grow it. *)
let test_shrink_does_not_grow () =
  let v = find_violation () in
  match
    Ex.shrink_schedule ~n ~inputs:proposals ~props v.Ex.v_shrunk
  with
  | Error e -> Alcotest.failf "shrunk schedule must still violate: %s" e
  | Ok (again, _) ->
    Alcotest.(check bool) "no growth on re-shrink" true
      (List.length again <= List.length v.Ex.v_shrunk)

(* ---------------------------------------------------------------- *)
(* Checkpoint / resume                                              *)
(* ---------------------------------------------------------------- *)

(* An interrupted-and-resumed campaign serializes byte-identically to
   the straight-through run: batch results are pure functions of
   (seed, batch index) and the merge is in batch order, so neither the
   interruption point nor the job count of either segment can move a
   byte of the report. [max_batches] is the deterministic interruption
   hook the CI smoke kills through. *)
let ckpt_run ?checkpoint ?resume ?max_batches ~jobs () =
  Ex.fuzz ~algo:"naive-sn" ~batch_size:50 ~jobs ?checkpoint ?resume
    ?max_batches ~max_steps ~stop
    ~decided:(fun st -> Consensus.Mr.With_quorum.decision st <> None)
    ~seed:4 ~runs:300 ~n ~menu ~pattern ~inputs:proposals ~props:[] ()

let with_ckpt_file f =
  let path = Filename.temp_file "nuc_fuzz_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_checkpoint_resume_byte_identical () =
  let straight = Report.to_string (Ex.json_of_report (ckpt_run ~jobs:1 ())) in
  List.iter
    (fun (j1, j2) ->
      with_ckpt_file (fun path ->
          let seg1 =
            ckpt_run ~jobs:j1 ~checkpoint:(path, 2) ~max_batches:3 ()
          in
          Alcotest.(check int)
            (Printf.sprintf "segment stopped at the batch cap (jobs=%d)" j1)
            150 seg1.Ex.runs;
          let resumed =
            ckpt_run ~jobs:j2 ~checkpoint:(path, 2) ~resume:path ()
          in
          Alcotest.(check string)
            (Printf.sprintf
               "interrupted(jobs=%d)+resumed(jobs=%d) matches straight-through"
               j1 j2)
            straight
            (Report.to_string (Ex.json_of_report resumed))))
    [ (1, 1); (1, 2); (2, 1); (2, 2) ]

(* The fuzz and mc checkpoints share the container but not the schema
   version, so resuming across kinds is a typed rejection, never a
   misinterpretation of the payload. *)
let test_checkpoint_wrong_kind_rejected () =
  with_ckpt_file (fun path ->
      (* version 1 is the mc checkpoint schema *)
      Mc.Codec.write_file ~path ~version:1 "not a fuzz checkpoint";
      match ckpt_run ~jobs:1 ~resume:path () with
      | exception Mc.Resume_rejected (Mc.Codec.Bad_version 1) -> ()
      | exception Mc.Resume_rejected e ->
        Alcotest.failf "wrong rejection: %s" (Mc.Codec.error_to_string e)
      | _ -> Alcotest.fail "mc checkpoint accepted by fuzz")

(* A schedule that never violates is a shrinker error, not a bogus
   one-move "counterexample". *)
let test_shrink_rejects_benign_schedule () =
  let v = find_violation () in
  (* the violating schedule minus its last move stops short of the
     violation whenever properties are checked after every move; the
     empty schedule certainly does *)
  match Ex.shrink_schedule ~n ~inputs:proposals ~props [] with
  | Error _ -> ()
  | Ok (moves, _) ->
    Alcotest.failf "empty schedule shrank to %d moves (raw %d)"
      (List.length moves)
      (List.length v.Ex.v_shrunk)

let () =
  Alcotest.run "explore"
    [
      ( "determinism",
        [
          Alcotest.test_case "JSON byte-deterministic in the seed" `Quick
            test_json_byte_deterministic;
          Alcotest.test_case "JSON byte-identical across jobs (violation)"
            `Quick test_jobs_byte_identical_violation;
          Alcotest.test_case "JSON byte-identical across jobs (full)" `Quick
            test_jobs_byte_identical_full_campaign;
          Alcotest.test_case "JSON byte-identical across jobs (swarm)" `Quick
            test_jobs_byte_identical_swarm;
          Alcotest.test_case "seeds decorrelated" `Quick test_seeds_decorrelated;
          Alcotest.test_case "samplers sample differently" `Quick
            test_samplers_differ;
        ] );
      ( "swarm-coverage",
        [
          Alcotest.test_case "swarm rotates configurations" `Quick
            test_swarm_rotates_configurations;
          Alcotest.test_case "curve consistent with totals" `Quick
            test_curve_consistent_with_totals;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "interrupted+resumed JSON byte-identical" `Quick
            test_checkpoint_resume_byte_identical;
          Alcotest.test_case "mc checkpoint rejected by fuzz" `Quick
            test_checkpoint_wrong_kind_rejected;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "shrunk violation certified" `Quick
            test_shrunk_violation_certified;
          Alcotest.test_case "re-shrink does not grow" `Quick
            test_shrink_does_not_grow;
          Alcotest.test_case "benign schedule rejected" `Quick
            test_shrink_rejects_benign_schedule;
        ] );
    ]
