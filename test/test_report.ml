(* Golden test for the BENCH_*.json printer (lib/report): the exact
   serialized form of an awkward document — non-finite floats, quotes
   and control characters inside strings, empty containers — is
   pinned, re-parsed with a minimal in-test JSON reader, and the
   documented schema key list is checked. *)

(* -------------------------------------------------------------- *)
(* A minimal JSON reader (for this test only)                     *)
(* -------------------------------------------------------------- *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JList of json list
  | JObj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let i = ref 0 in
  let len = String.length s in
  let peek () = if !i < len then Some s.[!i] else None in
  let advance () = incr i in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !i))
  in
  let literal word v =
    if !i + String.length word <= len && String.sub s !i (String.length word) = word
    then begin
      i := !i + String.length word;
      v
    end
    else raise (Bad ("bad literal at " ^ string_of_int !i))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Bad "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 'u' ->
          advance ();
          if !i + 4 > len then raise (Bad "bad \\u escape");
          let code = int_of_string ("0x" ^ String.sub s !i 4) in
          i := !i + 4;
          if code < 128 then Buffer.add_char b (Char.chr code)
          else raise (Bad "non-ascii \\u escape")
        | _ -> raise (Bad "unknown escape"));
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !i in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    JNum (float_of_string (String.sub s start (!i - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" JNull
    | Some 't' -> literal "true" (JBool true)
    | Some 'f' -> literal "false" (JBool false)
    | Some '"' -> JStr (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        JList []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> raise (Bad "expected , or ]")
        in
        JList (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        JObj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> raise (Bad "expected , or }")
        in
        JObj (members [])
      end
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !i <> len then raise (Bad "trailing garbage");
  v

(* -------------------------------------------------------------- *)
(* The pinned document                                             *)
(* -------------------------------------------------------------- *)

let awkward_doc =
  Report.Obj
    [
      ("schema_version", Report.Int 1);
      ("not_a_number", Report.Float Float.nan);
      ("too_big", Report.Float Float.infinity);
      ("too_small", Report.Float Float.neg_infinity);
      ("quoted", Report.Str {|he said "hi" \ bye|});
      ("control", Report.Str "tab\there\nline\x01end");
      ("empty_list", Report.List []);
      ("empty_obj", Report.Obj []);
      ( "rows",
        Report.List
          [ Report.Obj [ ("pass", Report.Bool true) ]; Report.Null ] );
      ("avg", Report.Float 1.5);
    ]

let golden =
  "{\n\
  \  \"schema_version\": 1,\n\
  \  \"not_a_number\": null,\n\
  \  \"too_big\": null,\n\
  \  \"too_small\": null,\n\
  \  \"quoted\": \"he said \\\"hi\\\" \\\\ bye\",\n\
  \  \"control\": \"tab\\there\\nline\\u0001end\",\n\
  \  \"empty_list\": [],\n\
  \  \"empty_obj\": {},\n\
  \  \"rows\": [\n\
  \    {\n\
  \      \"pass\": true\n\
  \    },\n\
  \    null\n\
  \  ],\n\
  \  \"avg\": 1.5\n\
   }\n"

let test_golden_exact () =
  Alcotest.(check string)
    "serialized form is pinned" golden
    (Report.to_string awkward_doc)

let test_reparse () =
  match parse (Report.to_string awkward_doc) with
  | JObj kvs ->
    let get k = List.assoc k kvs in
    (* non-finite floats became null *)
    List.iter
      (fun k ->
        match get k with
        | JNull -> ()
        | _ -> Alcotest.failf "%s must serialize as null" k)
      [ "not_a_number"; "too_big"; "too_small" ];
    (* escaped strings round-trip *)
    (match get "quoted" with
    | JStr s ->
      Alcotest.(check string) "quotes round-trip" {|he said "hi" \ bye|} s
    | _ -> Alcotest.fail "quoted: not a string");
    (match get "control" with
    | JStr s ->
      Alcotest.(check string) "control chars round-trip" "tab\there\nline\x01end" s
    | _ -> Alcotest.fail "control: not a string");
    (match get "rows" with
    | JList [ JObj [ ("pass", JBool true) ]; JNull ] -> ()
    | _ -> Alcotest.fail "rows: wrong structure");
    (match get "avg" with
    | JNum f -> Alcotest.(check (float 1e-9)) "number round-trips" 1.5 f
    | _ -> Alcotest.fail "avg: not a number")
  | _ -> Alcotest.fail "top level must be an object"

(* The documented schema: the bench document is built from this very
   list (List.map2 in bench/main.ml), so pinning it here means the
   printer, DESIGN.md and the document cannot drift independently. *)
let test_schema_keys () =
  Alcotest.(check (list string))
    "documented top-level keys"
    [
      "schema_version";
      "generated_at_unix";
      "e_table";
      "b1_latency";
      "b2_stabilization";
      "b3_dag_growth";
      "b5_ablation";
      "b6_model_check";
      "b7_fault_latency";
      "b8_fuzz";
      "b9_parallel";
      "b10_serve";
      "b11_dpor";
      "b12_codec";
      "b13_quorum";
      "b14_ring";
      "b4_micro";
      "run_metrics";
    ]
    Report.schema_keys

(* One b9_parallel row exactly as bench/main.ml emits it (keys and
   value kinds pinned): the scaling table rides the same printer, so
   a drift in the row shape shows up here before it shows up in a
   consumer. *)
let b9_row_doc =
  Report.Obj
    [
      ("workload", Report.Str "mc A_nuc E_1(3) depth 9");
      ("jobs", Report.Int 4);
      ("wall_seconds", Report.Float 0.25);
      ("throughput", Report.Float 120000.);
      ("speedup", Report.Float 2.5);
      ("sequential_equivalent", Report.Bool true);
    ]

let b9_golden =
  "{\n\
  \  \"workload\": \"mc A_nuc E_1(3) depth 9\",\n\
  \  \"jobs\": 4,\n\
  \  \"wall_seconds\": 0.25,\n\
  \  \"throughput\": 120000,\n\
  \  \"speedup\": 2.5,\n\
  \  \"sequential_equivalent\": true\n\
   }\n"

let test_b9_row_golden () =
  Alcotest.(check string)
    "b9 row serialized form is pinned" b9_golden
    (Report.to_string b9_row_doc);
  match parse (Report.to_string b9_row_doc) with
  | JObj kvs ->
    Alcotest.(check (list string))
      "b9 row keys"
      [
        "workload"; "jobs"; "wall_seconds"; "throughput"; "speedup";
        "sequential_equivalent";
      ]
      (List.map fst kvs);
    (match List.assoc "sequential_equivalent" kvs with
    | JBool true -> ()
    | _ -> Alcotest.fail "sequential_equivalent: not true")
  | _ -> Alcotest.fail "b9 row must re-parse as an object"

(* One b10_serve row through the real emitter
   (Experiments.json_of_b10_rows — shared by bench/main.ml and
   nuc_cli serve), so the row shape both producers emit is pinned
   byte for byte. *)
let b10_row : Experiments.b10_row =
  {
    b10_substrate = "exec(j=2)";
    b10_clients = 50;
    b10_batch = 4;
    b10_window = 16;
    b10_slots = 200;
    b10_ops = 780;
    b10_steps = 410000;
    b10_wall = 1.5;
    b10_ops_per_sec = 520.;
    b10_p50 = 96.;
    b10_p99 = 2048.;
    b10_divergent = false;
  }

let b10_golden =
  "[\n\
  \  {\n\
  \    \"substrate\": \"exec(j=2)\",\n\
  \    \"clients\": 50,\n\
  \    \"batch\": 4,\n\
  \    \"window\": 16,\n\
  \    \"slots\": 200,\n\
  \    \"ops\": 780,\n\
  \    \"steps\": 410000,\n\
  \    \"wall_seconds\": 1.5,\n\
  \    \"ops_per_sec\": 520,\n\
  \    \"p50_ticks\": 96,\n\
  \    \"p99_ticks\": 2048,\n\
  \    \"divergent\": false\n\
  \  }\n\
   ]\n"

let test_b10_row_golden () =
  let s = Report.to_string (Experiments.json_of_b10_rows [ b10_row ]) in
  Alcotest.(check string) "b10 row serialized form is pinned" b10_golden s;
  match parse s with
  | JList [ JObj kvs ] ->
    Alcotest.(check (list string))
      "b10 row keys"
      [
        "substrate"; "clients"; "batch"; "window"; "slots"; "ops"; "steps";
        "wall_seconds"; "ops_per_sec"; "p50_ticks"; "p99_ticks"; "divergent";
      ]
      (List.map fst kvs);
    (match List.assoc "divergent" kvs with
    | JBool false -> ()
    | _ -> Alcotest.fail "divergent: not false")
  | _ -> Alcotest.fail "b10 rows must re-parse as a one-object list"

(* One b14_ring row through the real emitter
   (Experiments.json_of_b14_rows — shared by bench/main.ml and
   nuc_cli serve), pinning the row shape byte for byte. *)
let b14_row : Experiments.b14_row =
  {
    b14_transport = "ring";
    b14_read_mode = "snapshot";
    b14_jobs = 2;
    b14_slots = 120;
    b14_ops = 120;
    b14_ops_per_sec = 64.;
    b14_reads = 20000;
    b14_reads_per_sec = 12000000.;
    b14_read_p50_us = 0.0625;
    b14_read_p99_us = 0.5;
    b14_stale_max = 7;
    b14_stale_bound = 7;
    b14_snapshots = 16;
    b14_lock_ops = 0;
    b14_cas_retries = 3;
    b14_sync_ops = 2523;
    b14_divergent = false;
    b14_stale_ok = true;
  }

let b14_golden =
  "[\n\
  \  {\n\
  \    \"transport\": \"ring\",\n\
  \    \"read_mode\": \"snapshot\",\n\
  \    \"jobs\": 2,\n\
  \    \"slots\": 120,\n\
  \    \"ops\": 120,\n\
  \    \"ops_per_sec\": 64,\n\
  \    \"reads\": 20000,\n\
  \    \"reads_per_sec\": 12000000,\n\
  \    \"read_p50_us\": 0.0625,\n\
  \    \"read_p99_us\": 0.5,\n\
  \    \"stale_max\": 7,\n\
  \    \"stale_bound\": 7,\n\
  \    \"snapshots\": 16,\n\
  \    \"lock_ops\": 0,\n\
  \    \"cas_retries\": 3,\n\
  \    \"sync_ops\": 2523,\n\
  \    \"divergent\": false,\n\
  \    \"stale_ok\": true\n\
  \  }\n\
   ]\n"

let test_b14_row_golden () =
  let s = Report.to_string (Experiments.json_of_b14_rows [ b14_row ]) in
  Alcotest.(check string) "b14 row serialized form is pinned" b14_golden s;
  match parse s with
  | JList [ JObj kvs ] ->
    Alcotest.(check (list string))
      "b14 row keys"
      [
        "transport"; "read_mode"; "jobs"; "slots"; "ops"; "ops_per_sec";
        "reads"; "reads_per_sec"; "read_p50_us"; "read_p99_us"; "stale_max";
        "stale_bound"; "snapshots"; "lock_ops"; "cas_retries"; "sync_ops";
        "divergent"; "stale_ok";
      ]
      (List.map fst kvs);
    (match List.assoc "stale_ok" kvs with
    | JBool true -> ()
    | _ -> Alcotest.fail "stale_ok: not true")
  | _ -> Alcotest.fail "b14 rows must re-parse as a one-object list"

let () =
  Alcotest.run "report"
    [
      ( "json-printer",
        [
          Alcotest.test_case "golden form" `Quick test_golden_exact;
          Alcotest.test_case "re-parses" `Quick test_reparse;
          Alcotest.test_case "schema keys" `Quick test_schema_keys;
          Alcotest.test_case "b9 row pinned" `Quick test_b9_row_golden;
          Alcotest.test_case "b10 row pinned" `Quick test_b10_row_golden;
          Alcotest.test_case "b14 row pinned" `Quick test_b14_row_golden;
        ] );
    ]
