(* Tests for the bounded model checker (lib/mc): menu admissibility,
   the two E11 explorations (exhaustive A_nuc verification and
   discovery of the Section 6.3 counterexample for the naive Sigma-nu
   baseline), and the soundness of the pruning machinery. *)
open Procset

module M_naive = Mc.Make (Consensus.Mr.With_quorum)
module M_anuc = Mc.Make (Core.Anuc)

(* The E11 universe: three processes, p2 allowed to be faulty, its
   crash scheduled past every depth bound we explore. *)
let n = 3
let faulty = Pset.singleton 2
let proposals p = if Pset.mem p faulty then 1 else 0
let pattern ~depth = Sim.Failure_pattern.make ~n ~crashes:[ (2, depth + 1) ]

(* -------------------------------------------------------------- *)
(* Menu admissibility                                             *)
(* -------------------------------------------------------------- *)

let test_menus_admissible () =
  List.iter
    (fun menu ->
      match Mc.Menu.validate ~pattern:(pattern ~depth:40) menu with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "menu %s must be admissible: %s" menu.Mc.Menu.name e)
    [
      Mc.Menu.omega_sigma_nu ~n ~faulty;
      Mc.Menu.omega_sigma_nu_plus ~n ~faulty;
      Mc.Menu.omega_sigma ~n ~faulty;
      Mc.Menu.contamination ~n ~faulty ();
      Mc.Menu.contamination ~plus:true ~n ~faulty ();
      Mc.Menu.lossy ~n ~faulty ();
      Mc.Menu.lossy ~plus:true ~n ~faulty ();
      Mc.Menu.leader_only ~n ~faulty;
      Mc.Menu.suspects ~n ~faulty;
    ]

let test_bogus_menu_rejected () =
  (* per-process singleton quorums at correct processes violate the
     intersection clause of every Sigma variant *)
  let bogus =
    {
      Mc.Menu.name = "bogus singletons";
      kind = Mc.Menu.Sigma_nu;
      values =
        (fun p ->
          [
            Sim.Fd_value.Pair
              (Sim.Fd_value.Leader p, Sim.Fd_value.Quorum (Pset.singleton p));
          ]);
      lossy = false;
    }
  in
  match Mc.Menu.validate ~pattern:(pattern ~depth:40) bogus with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "disjoint correct quorums must be rejected"

(* Family-parameterized contamination/lossy menus must be admissible
   too — including at shapes the unparameterized menu never sees
   (grid:2x2 and super:1 need n = 4). *)
let test_family_menus_admissible () =
  let check ~n ~faulty ~crashes fam =
    let pattern = Sim.Failure_pattern.make ~n ~crashes in
    List.iter
      (fun menu ->
        match Mc.Menu.validate ~pattern menu with
        | Ok () -> ()
        | Error e ->
          Alcotest.failf "menu %s (n=%d) must be admissible: %s"
            menu.Mc.Menu.name n e)
      [
        Mc.Menu.contamination ~quorum:fam ~n ~faulty ();
        Mc.Menu.contamination ~plus:true ~quorum:fam ~n ~faulty ();
        Mc.Menu.lossy ~quorum:fam ~n ~faulty ();
        Mc.Menu.lossy ~plus:true ~quorum:fam ~n ~faulty ();
      ]
  in
  let faulty3 = Pset.singleton 2 and crashes3 = [ (2, 41) ] in
  List.iter
    (check ~n:3 ~faulty:faulty3 ~crashes:crashes3)
    [
      Quorum_family.majority;
      Quorum_family.supermajority ~f:1;
      Quorum_family.weighted ~weights:[ 2; 1; 1 ];
    ];
  let faulty4 = Pset.singleton 3 and crashes4 = [ (3, 41) ] in
  List.iter
    (check ~n:4 ~faulty:faulty4 ~crashes:crashes4)
    [
      Quorum_family.grid ~rows:2 ~cols:2 ();
      Quorum_family.supermajority ~f:1;
    ]

(* Byte-compat pin for the menu constructions: [?quorum:None] must
   keep the exact pre-family values (c0 pinned to the correct set,
   everyone else switching between it and {p} ∪ F), and the majority
   family must offer exactly the documented owner-added min-quorums
   plus the escape. A drift here silently changes every E11/E16
   verdict and the mc seeds, so the lists are hard-coded. *)
let test_menu_values_pinned () =
  let expect_values menu p expected =
    let got =
      List.map
        (fun v ->
          match v with
          | Sim.Fd_value.Pair (Sim.Fd_value.Leader l, Sim.Fd_value.Quorum q) ->
            Alcotest.(check int)
              (Printf.sprintf "%s: leader at p%d is the owner"
                 menu.Mc.Menu.name p)
              p l;
            Pset.to_string q
          | v ->
            Alcotest.failf "%s: unexpected value shape %s" menu.Mc.Menu.name
              (Format.asprintf "%a" Sim.Fd_value.pp v))
        (menu.Mc.Menu.values p)
    in
    Alcotest.(check (list string))
      (Printf.sprintf "%s: values at p%d" menu.Mc.Menu.name p)
      (List.map Pset.to_string expected)
      got
  in
  let s = Pset.of_list in
  let plain = Mc.Menu.contamination ~n ~faulty () in
  expect_values plain 0 [ s [ 0; 1 ] ];
  expect_values plain 1 [ s [ 0; 1 ]; s [ 1; 2 ] ];
  expect_values plain 2 [ s [ 2 ] ];
  let maj =
    Mc.Menu.contamination ~quorum:Quorum_family.majority ~n ~faulty ()
  in
  expect_values maj 0 [ s [ 0; 1 ]; s [ 0; 2 ] ];
  expect_values maj 1 [ s [ 0; 1 ]; s [ 1; 2 ] ];
  expect_values maj 2 [ s [ 2 ] ];
  (* super:1 at n = 3 has min-quorum {0,1,2} ⊇ everything; the escape
     stays legal (the only min-quorum touches F), so correct processes
     see the full set and their escape — the shape that closes the
     contamination channel (see EXPERIMENTS.md E16). *)
  let sup =
    Mc.Menu.contamination ~quorum:(Quorum_family.supermajority ~f:1) ~n
      ~faulty ()
  in
  expect_values sup 0 [ s [ 0; 1; 2 ]; s [ 0; 2 ] ];
  expect_values sup 1 [ s [ 0; 1; 2 ]; s [ 1; 2 ] ];
  expect_values sup 2 [ s [ 2 ] ]

(* -------------------------------------------------------------- *)
(* Exhaustive A_nuc verification (the E11 'verify' half)           *)
(* -------------------------------------------------------------- *)

let anuc_report ~depth =
  let pattern = pattern ~depth in
  let menu = Mc.Menu.contamination ~plus:true ~n ~faulty () in
  let props =
    M_anuc.consensus_props ~decision:Core.Anuc.decision ~proposals
      ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    M_anuc.decided_stop ~decision:Core.Anuc.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  M_anuc.run ~n ~menu ~depth ~inputs:proposals ~props ~stop ()

let test_anuc_exhaustive_no_violation () =
  let r = anuc_report ~depth:8 in
  (match r.M_anuc.violation with
  | None -> ()
  | Some cx ->
    Alcotest.failf "A_nuc must survive exhaustive exploration: %s (%s)"
      cx.M_anuc.cx_property cx.M_anuc.cx_detail);
  Alcotest.(check bool) "exploration not truncated" false
    r.M_anuc.stats.Mc.truncated;
  Alcotest.(check bool) "explored a nontrivial space" true
    (r.M_anuc.stats.Mc.distinct_states > 10_000)

(* Same verification over lossy links: the adversary may also drop or
   stall in-flight messages, and A_nuc still has no safety violation
   within the (smaller, because the space is much larger) bound. *)
let test_anuc_lossy_exhaustive_no_violation () =
  let depth = 6 in
  let pattern = pattern ~depth in
  let menu = Mc.Menu.lossy ~plus:true ~n ~faulty () in
  let props =
    M_anuc.consensus_props ~decision:Core.Anuc.decision ~proposals
      ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    M_anuc.decided_stop ~decision:Core.Anuc.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  let r = M_anuc.run ~n ~menu ~depth ~inputs:proposals ~props ~stop () in
  (match r.M_anuc.violation with
  | None -> ()
  | Some cx ->
    Alcotest.failf "A_nuc must survive lossy exploration: %s (%s)"
      cx.M_anuc.cx_property cx.M_anuc.cx_detail);
  Alcotest.(check bool) "exploration not truncated" false
    r.M_anuc.stats.Mc.truncated;
  (* the drop moves genuinely enlarge the space beyond the loss-free
     menu at the same depth *)
  let loss_free =
    M_anuc.run ~n
      ~menu:(Mc.Menu.contamination ~plus:true ~n ~faulty ())
      ~depth ~inputs:proposals ~props ~stop ()
  in
  Alcotest.(check bool) "lossy space strictly larger" true
    (r.M_anuc.stats.Mc.distinct_states
    > loss_free.M_anuc.stats.Mc.distinct_states)

(* A drop budget of zero switches the drop alphabet off entirely: the
   lossy menu degenerates, state for state and transition for
   transition, to the loss-free contamination exploration. *)
let test_lossy_zero_budget_is_loss_free () =
  let depth = 5 in
  let pattern = pattern ~depth in
  let props =
    M_naive.consensus_props ~decision:Consensus.Mr.With_quorum.decision
      ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let run menu ~max_drops =
    M_naive.run ~max_drops ~n ~menu ~depth ~inputs:proposals ~props ()
  in
  let budgetless =
    run (Mc.Menu.lossy ~n ~faulty ()) ~max_drops:0
  in
  let loss_free = run (Mc.Menu.contamination ~n ~faulty ()) ~max_drops:max_int in
  Alcotest.(check int) "same distinct states"
    loss_free.M_naive.stats.Mc.distinct_states
    budgetless.M_naive.stats.Mc.distinct_states;
  Alcotest.(check int) "same transitions"
    loss_free.M_naive.stats.Mc.transitions
    budgetless.M_naive.stats.Mc.transitions;
  Alcotest.(check bool) "same verdict" true
    (Option.is_none budgetless.M_naive.violation
    = Option.is_none loss_free.M_naive.violation)

(* -------------------------------------------------------------- *)
(* Counterexample discovery for the naive baseline                 *)
(* -------------------------------------------------------------- *)

let naive_report ~depth =
  let pattern = pattern ~depth in
  let menu = Mc.Menu.contamination ~n ~faulty () in
  let props =
    M_naive.consensus_props ~decision:Consensus.Mr.With_quorum.decision
      ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    M_naive.decided_stop ~decision:Consensus.Mr.With_quorum.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  M_naive.run ~n ~menu ~depth ~inputs:proposals ~props ~stop ()

let test_naive_counterexample_found_and_certified () =
  let depth = 32 in
  let r = naive_report ~depth in
  match r.M_naive.violation with
  | None ->
    Alcotest.fail
      "the model checker must find the Sec-6.3 contamination violation"
  | Some cx ->
    Alcotest.(check string)
      "the violated property is nonuniform agreement" "nonuniform agreement"
      cx.M_naive.cx_property;
    (* independent certification: the schedule replays on the real
       runner and reproduces the split decisions... *)
    (match M_naive.replay_counterexample ~n ~inputs:proposals cx with
    | Error e -> Alcotest.failf "counterexample must replay: %s" e
    | Ok states ->
      let decisions =
        List.map
          (fun p -> Consensus.Mr.With_quorum.decision states.(p))
          [ 0; 1 ]
      in
      (match decisions with
      | [ Some a; Some b ] when a <> b -> ()
      | _ ->
        Alcotest.fail
          "replaying the schedule must reproduce the split correct \
           decisions"));
    (* ...and the detector values the schedule consumed are legal for
       (Omega, Sigma-nu) on this pattern *)
    (match
       Mc.history_legal ~kind:Mc.Menu.Sigma_nu ~pattern:(pattern ~depth)
         cx.M_naive.cx_samples
     with
    | Ok () -> ()
    | Error e -> Alcotest.failf "sampled history must be legal: %s" e)

(* -------------------------------------------------------------- *)
(* Pruning soundness, pinned on a small case                       *)
(* -------------------------------------------------------------- *)

(* Sleep sets and memoization prune transitions, never states: the
   same depth-5 exploration with everything disabled walks the full
   schedule tree (15x the transitions) yet sees exactly the same
   distinct states and reaches the same verdict. *)
let test_pruning_reduces_without_changing_verdict () =
  let depth = 5 in
  let pattern = pattern ~depth in
  let menu = Mc.Menu.contamination ~n ~faulty () in
  let props =
    M_naive.consensus_props ~decision:Consensus.Mr.With_quorum.decision
      ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let run ~reduction ~dedup =
    M_naive.run ~reduction ~dedup ~n ~menu ~depth ~inputs:proposals ~props ()
  in
  let pruned = run ~reduction:Mc.Sleep_sets ~dedup:true in
  let bare = run ~reduction:Mc.No_reduction ~dedup:false in
  Alcotest.(check bool)
    "same verdict" true
    (Option.is_none pruned.M_naive.violation
    = Option.is_none bare.M_naive.violation);
  Alcotest.(check int) "same distinct states"
    bare.M_naive.stats.Mc.distinct_states
    pruned.M_naive.stats.Mc.distinct_states;
  Alcotest.(check bool) "pruning is load-bearing" true
    (pruned.M_naive.stats.Mc.transitions
    < bare.M_naive.stats.Mc.transitions);
  Alcotest.(check bool) "sleep sets fired" true
    (pruned.M_naive.stats.Mc.sleep_skipped > 0);
  Alcotest.(check bool) "memoization fired" true
    (pruned.M_naive.stats.Mc.dedup_hits > 0);
  (* dedup_hits counts memoization absorptions only: with dedup off
     nothing is absorbed, and self-loop skips live in their own
     counter *)
  Alcotest.(check int) "dedup off absorbs nothing" 0
    bare.M_naive.stats.Mc.dedup_hits;
  (* dedup load-bearing: strictly fewer states than transitions *)
  Alcotest.(check bool) "deduped states < explored transitions" true
    (pruned.M_naive.stats.Mc.distinct_states
    < pruned.M_naive.stats.Mc.transitions)

(* -------------------------------------------------------------- *)
(* Stats accounting invariants                                     *)
(* -------------------------------------------------------------- *)

(* Every explored edge is accounted for exactly once: it either
   reaches a fresh canonical state (distinct_states - 1 of those,
   the root being free), is absorbed by memoization (dedup_hits), or
   is a self-loop (self_loops). The only leak is a revisit that must
   be *re-expanded* because the stored entry does not dominate the
   current (budget, sleep set) pair — so on an automaton where every
   path to a state has the same length, with sleep sets off, the
   conservation law is exact. *)

(* A bounded monotone counter per process: each non-saturated step
   increments the local counter, so any path to the state vector
   (c_0, .., c_{n-1}) has length exactly sum c_i and every revisit
   carries the same remaining depth budget. At the cap a step is a
   pure self-loop. *)
module Toy_counter = struct
  type input = unit
  type state = int
  type message = unit

  let cap = 3
  let name = "toy-counter"
  let initial ~n:_ ~self:_ () = 0
  let step ~n:_ ~self:_ st _received _d = (min cap (st + 1), [])
  let pp_message fmt () = Format.pp_print_string fmt "()"
  let equal_message () () = true
end

module M_toy = Mc.Make (Toy_counter)

let toy_menu =
  (* one detector value per process: the toy automaton ignores it, so
     the move alphabet is exactly one lambda step per process *)
  {
    Mc.Menu.name = "toy single-value";
    kind = Mc.Menu.Sigma_nu;
    values = (fun _ -> [ Sim.Fd_value.Leader 0 ]);
    lossy = false;
  }

let toy_run ~depth =
  M_toy.run ~reduction:Mc.No_reduction ~n:3 ~menu:toy_menu ~depth
    ~inputs:(fun _ -> ())
    ~props:[] ()

let toy_conservation (s : Mc.stats) =
  Alcotest.(check int)
    "transitions = dedup_hits + self_loops + (distinct_states - 1)"
    s.Mc.transitions
    (s.Mc.dedup_hits + s.Mc.self_loops + (s.Mc.distinct_states - 1))

(* At a depth past the longest simple path (3 * cap), the space is
   saturated: every reachable state visited, nothing cut by the depth
   bound, and the edge conservation law holds exactly. *)
let test_toy_conservation_at_saturation () =
  let r = toy_run ~depth:((3 * Toy_counter.cap) + 1) in
  let s = r.M_toy.stats in
  toy_conservation s;
  Alcotest.(check int) "all (cap+1)^3 states reached" 64 s.Mc.distinct_states;
  Alcotest.(check int) "no state cut by the depth bound" 0 s.Mc.depth_leaves;
  Alcotest.(check bool) "not truncated" false s.Mc.truncated;
  Alcotest.(check bool) "the cap produces self-loops" true
    (s.Mc.self_loops > 0)

(* One step short of saturation: the all-capped state is unreachable,
   the frontier states are depth leaves — and the conservation law
   still balances, because depth leaves are ordinary fresh states. *)
let test_toy_conservation_below_saturation () =
  let r = toy_run ~depth:((3 * Toy_counter.cap) - 1) in
  let s = r.M_toy.stats in
  toy_conservation s;
  Alcotest.(check int) "all but the all-capped state reached" 63
    s.Mc.distinct_states;
  Alcotest.(check bool) "frontier cut by the depth bound" true
    (s.Mc.depth_leaves > 0)

(* On a real exploration (paths of different lengths reach the same
   state, sleep sets on) re-expanded revisits turn the equality into
   an inequality: every edge still lands in exactly one bucket or is
   a re-expansion, never double-counted. *)
let test_real_run_conservation_inequality () =
  let r = naive_report ~depth:8 in
  let s = r.M_naive.stats in
  Alcotest.(check bool)
    "transitions >= dedup_hits + self_loops + (distinct_states - 1)" true
    (s.Mc.transitions
    >= s.Mc.dedup_hits + s.Mc.self_loops + (s.Mc.distinct_states - 1))

(* -------------------------------------------------------------- *)
(* Randomized explorer cross-check (lib/explore)                   *)
(* -------------------------------------------------------------- *)

module Ex_naive = Explore.Make (Consensus.Mr.With_quorum)

(* The fuzzer and the model checker must agree where their horizons
   overlap: at n = 3 the fuzzer finds, shrinks and certifies the
   Section 6.3 contamination violation, and an exhaustive Mc run of
   the same universe at exactly the shrunk schedule's depth confirms
   a violation of the same property really is in that space. *)
let test_fuzz_shrink_confirmed_by_mc () =
  let max_steps = 18 * 3 in
  let pattern =
    Sim.Failure_pattern.make ~n ~crashes:[ (2, max_steps + 1) ]
  in
  let menu = Mc.Menu.contamination ~n ~faulty () in
  let props =
    Ex_naive.M.consensus_props ~decision:Consensus.Mr.With_quorum.decision
      ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    Ex_naive.M.decided_stop ~decision:Consensus.Mr.With_quorum.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  let r =
    Ex_naive.fuzz ~algo:"naive-sn" ~max_steps ~stop
      ~decided:(fun st -> Consensus.Mr.With_quorum.decision st <> None)
      ~seed:1 ~runs:200 ~n ~menu ~pattern ~inputs:proposals ~props ()
  in
  match r.Ex_naive.violation with
  | None ->
    Alcotest.fail "seed 1 must land the n = 3 violation within 200 runs"
  | Some v ->
    Alcotest.(check string) "the violated property is nonuniform agreement"
      "nonuniform agreement" v.Ex_naive.v_property;
    Alcotest.(check bool) "shrunk schedule certified by replay" true
      v.Ex_naive.v_replay_ok;
    Alcotest.(check bool) "shrunk history passes the perpetual clauses" true
      v.Ex_naive.v_history_ok;
    Alcotest.(check bool) "shrinking shortened the schedule" true
      (List.length v.Ex_naive.v_shrunk < List.length v.Ex_naive.v_moves);
    (* the shrinker's drain-skipping pass works in the unrestricted
       indexed space, so the shrunk schedule may be shorter than any
       counterexample the checker's FIFO exploration contains — the
       cross-check runs the checker at its own certified horizon and
       demands agreement on the verdict and the violated property *)
    (match (naive_report ~depth:32).M_naive.violation with
    | None ->
      Alcotest.fail
        "Mc.Make.run must confirm the violation in the same universe"
    | Some cx ->
      Alcotest.(check string)
        "model checker confirms the same property" v.Ex_naive.v_property
        cx.M_naive.cx_property;
      Alcotest.(check bool)
        "shrunk fuzz schedule no longer than the checker's" true
        (List.length v.Ex_naive.v_shrunk <= List.length cx.M_naive.cx_moves))

(* -------------------------------------------------------------- *)
(* Parallel driver: sequential equivalence, interning, wall clock  *)
(* -------------------------------------------------------------- *)

(* The parallel driver ([run ~jobs]) must agree with the sequential
   one on every order-independent observable: the verdict, the
   distinct-state count, and the decided-leaf count — per menu
   family, at a pinned depth. Interleaving-dependent counters
   (transitions, dedup_hits, max_depth) may legitimately differ. *)
let test_parallel_matches_sequential () =
  let depth = 5 in
  let pattern = pattern ~depth in
  let props =
    M_naive.consensus_props ~decision:Consensus.Mr.With_quorum.decision
      ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    M_naive.decided_stop ~decision:Consensus.Mr.With_quorum.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  List.iter
    (fun (menu : Mc.Menu.t) ->
      let run ~jobs =
        M_naive.run ~jobs ~n ~menu ~depth ~inputs:proposals ~props ~stop
          ~max_drops:1 ()
      in
      let seq = run ~jobs:1 and par = run ~jobs:3 in
      Alcotest.(check bool)
        (menu.Mc.Menu.name ^ ": same verdict")
        (Option.is_none seq.M_naive.violation)
        (Option.is_none par.M_naive.violation);
      Alcotest.(check int)
        (menu.Mc.Menu.name ^ ": same distinct states")
        seq.M_naive.stats.Mc.distinct_states
        par.M_naive.stats.Mc.distinct_states;
      Alcotest.(check int)
        (menu.Mc.Menu.name ^ ": same decided leaves")
        seq.M_naive.stats.Mc.decided_leaves
        par.M_naive.stats.Mc.decided_leaves;
      Alcotest.(check bool)
        (menu.Mc.Menu.name ^ ": neither truncated")
        false
        (seq.M_naive.stats.Mc.truncated || par.M_naive.stats.Mc.truncated))
    [
      Mc.Menu.contamination ~n ~faulty ();
      Mc.Menu.lossy ~n ~faulty ();
      Mc.Menu.omega_sigma_nu ~n ~faulty;
      Mc.Menu.omega_sigma ~n ~faulty;
    ]

(* The same contract for A_nuc under the plus family — the other
   automaton the experiments drive in parallel. *)
let test_parallel_matches_sequential_anuc () =
  let depth = 6 in
  let pattern = pattern ~depth in
  let menu = Mc.Menu.contamination ~plus:true ~n ~faulty () in
  let props =
    M_anuc.consensus_props ~decision:Core.Anuc.decision ~proposals
      ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    M_anuc.decided_stop ~decision:Core.Anuc.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  let run ~jobs =
    M_anuc.run ~jobs ~n ~menu ~depth ~inputs:proposals ~props ~stop ()
  in
  let seq = run ~jobs:1 and par = run ~jobs:4 in
  Alcotest.(check bool) "same verdict"
    (Option.is_none seq.M_anuc.violation)
    (Option.is_none par.M_anuc.violation);
  Alcotest.(check int) "same distinct states"
    seq.M_anuc.stats.Mc.distinct_states par.M_anuc.stats.Mc.distinct_states;
  Alcotest.(check int) "same decided leaves"
    seq.M_anuc.stats.Mc.decided_leaves par.M_anuc.stats.Mc.decided_leaves

(* A violation found by the parallel driver is a real one: at the
   certified horizon the parallel run still convicts the naive
   baseline of the same property, and its counterexample passes the
   same independent replay certificate. (The *schedule* may differ
   from the sequential one — first insertion wins — but the property
   and the certificates may not.) *)
let test_parallel_cx_certified () =
  let depth = 32 in
  let pattern = pattern ~depth in
  let menu = Mc.Menu.contamination ~n ~faulty () in
  let props =
    M_naive.consensus_props ~decision:Consensus.Mr.With_quorum.decision
      ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    M_naive.decided_stop ~decision:Consensus.Mr.With_quorum.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  let r =
    M_naive.run ~jobs:4 ~n ~menu ~depth ~inputs:proposals ~props ~stop ()
  in
  match r.M_naive.violation with
  | None -> Alcotest.fail "parallel run must find the Sec-6.3 violation"
  | Some cx ->
    Alcotest.(check string) "same property as the sequential verdict"
      "nonuniform agreement" cx.M_naive.cx_property;
    (match M_naive.replay_counterexample ~n ~inputs:proposals cx with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "parallel counterexample must replay: %s" e);
    (match
       Mc.history_legal ~kind:Mc.Menu.Sigma_nu ~pattern cx.M_naive.cx_samples
     with
    | Ok () -> ()
    | Error e -> Alcotest.failf "sampled history must be legal: %s" e)

(* Hash-collision safety of the interned tables: [hash_param 150 600]
   traverses at most 150 meaningful words, so int lists longer than
   that differing only at the tail collide by construction. The
   cached-hash equality must fall through to the structural backstop
   and keep the keys distinct — in the single-domain table and in the
   striped shared one. *)
module L_key = struct
  type t = int list

  let equal = List.equal Int.equal
end

module L_tbl = Mc.Intern.Table (L_key)
module L_striped = Mc.Intern.Striped (L_key)

let test_hash_collision_not_conflated () =
  let base = List.init 400 (fun i -> i) in
  let a = base @ [ 1 ] and b = base @ [ 2 ] in
  let hash = Hashtbl.hash_param 150 600 in
  Alcotest.(check int) "the crafted collision is real" (hash a) (hash b);
  Alcotest.(check bool) "the values are structurally distinct" false
    (L_key.equal a b);
  let h = Mc.Intern.hashed hash in
  let t = L_tbl.create 16 in
  L_tbl.add t (h a) "a";
  L_tbl.add t (h b) "b";
  Alcotest.(check int) "both keys live in the table" 2 (L_tbl.length t);
  Alcotest.(check (option string)) "a retrievable" (Some "a")
    (L_tbl.find_opt t (h a));
  Alcotest.(check (option string)) "b retrievable" (Some "b")
    (L_tbl.find_opt t (h b));
  let st = L_striped.create ~stripes:4 16 in
  let ida, fresh_a = L_striped.intern st (h a) (fun id -> id) in
  let idb, fresh_b = L_striped.intern st (h b) (fun id -> id) in
  Alcotest.(check bool) "a freshly interned" true fresh_a;
  Alcotest.(check bool) "b freshly interned" true fresh_b;
  Alcotest.(check bool) "distinct compact ids" true (ida <> idb);
  Alcotest.(check int) "striped watermark counts both" 2
    (L_striped.length st);
  let ida', fresh_a' = L_striped.intern st (h a) (fun id -> id) in
  Alcotest.(check bool) "re-intern is a hit" false fresh_a';
  Alcotest.(check int) "re-intern returns the original id" ida ida'

(* Wall-clock accounting under parallelism: [wall_seconds] is one
   monotonic-clock read on the coordinating domain, never a sum of
   per-domain spans. On a many-core host the jobs=4 run is faster; on
   a single-core host it pays scheduling overhead — but a *summed*
   accounting would report ~4x the sequential wall, which this bound
   rejects on any host. *)
let test_parallel_wall_not_summed () =
  let depth = 8 in
  let pattern = pattern ~depth in
  let menu = Mc.Menu.contamination ~n ~faulty () in
  let props =
    M_naive.consensus_props ~decision:Consensus.Mr.With_quorum.decision
      ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let run ~jobs =
    M_naive.run ~jobs ~n ~menu ~depth ~inputs:proposals ~props ()
  in
  let w1 = (run ~jobs:1).M_naive.stats.Mc.wall_seconds in
  let w4 = (run ~jobs:4).M_naive.stats.Mc.wall_seconds in
  Alcotest.(check bool) "wall clocks are positive" true (w1 > 0. && w4 > 0.);
  Alcotest.(check bool)
    (Printf.sprintf "jobs=4 wall (%.3fs) is not a per-domain sum of the \
                     jobs=1 wall (%.3fs)" w4 w1)
    true
    (w4 < (2. *. w1) +. 0.5)

(* -------------------------------------------------------------- *)
(* User invariants and stop states                                 *)
(* -------------------------------------------------------------- *)

(* A user invariant that fails immediately is reported with the
   (empty) schedule that reaches its state. *)
let test_user_invariant_violation_surfaces () =
  let menu = Mc.Menu.contamination ~n ~faulty () in
  let props =
    [
      M_naive.invariant ~name:"no process in round 2" (fun st ->
          if
            List.exists
              (fun p -> Consensus.Mr.With_quorum.round (st p) >= 2)
              [ 0; 1; 2 ]
          then Error "some process reached round 2"
          else Ok ());
    ]
  in
  let r = M_naive.run ~n ~menu ~depth:40 ~inputs:proposals ~props () in
  match r.M_naive.violation with
  | Some cx ->
    Alcotest.(check string) "names the invariant" "no process in round 2"
      cx.M_naive.cx_property
  | None -> Alcotest.fail "round 2 is reachable within depth 40"

(* E11 end to end, exactly as the experiments table runs it. *)
let test_e11_quick_passes () =
  let row = Experiments.e11_model_check ~quick:true () in
  if not row.Experiments.pass then
    Alcotest.failf "E11 failed: %s" row.Experiments.measured

(* E12 end to end: faulty-network runs keep safety, and the lossy
   model-check halves agree with E11's verdicts. *)
let test_e12_quick_passes () =
  let row = Experiments.e12_faults ~quick:true () in
  if not row.Experiments.pass then
    Alcotest.failf "E12 failed: %s" row.Experiments.measured

let () =
  Alcotest.run "mc"
    [
      ( "menus",
        [
          Alcotest.test_case "families admissible" `Quick
            test_menus_admissible;
          Alcotest.test_case "bogus menu rejected" `Quick
            test_bogus_menu_rejected;
          Alcotest.test_case "quorum-family menus admissible" `Quick
            test_family_menus_admissible;
          Alcotest.test_case "menu values pinned (pre-family compat)" `Quick
            test_menu_values_pinned;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "A_nuc exhaustive, no violation" `Quick
            test_anuc_exhaustive_no_violation;
          Alcotest.test_case "A_nuc lossy exhaustive, no violation" `Quick
            test_anuc_lossy_exhaustive_no_violation;
          Alcotest.test_case "naive-Sn counterexample certified" `Quick
            test_naive_counterexample_found_and_certified;
          Alcotest.test_case "user invariant surfaces" `Quick
            test_user_invariant_violation_surfaces;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "prunes transitions, not states" `Quick
            test_pruning_reduces_without_changing_verdict;
          Alcotest.test_case "zero drop budget is loss-free" `Quick
            test_lossy_zero_budget_is_loss_free;
        ] );
      ( "stats",
        [
          Alcotest.test_case "edge conservation at saturation" `Quick
            test_toy_conservation_at_saturation;
          Alcotest.test_case "edge conservation below saturation" `Quick
            test_toy_conservation_below_saturation;
          Alcotest.test_case "conservation inequality on real runs" `Quick
            test_real_run_conservation_inequality;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "jobs>1 matches sequential (naive, 4 menus)"
            `Quick test_parallel_matches_sequential;
          Alcotest.test_case "jobs>1 matches sequential (A_nuc)" `Quick
            test_parallel_matches_sequential_anuc;
          Alcotest.test_case "parallel counterexample certified" `Quick
            test_parallel_cx_certified;
          Alcotest.test_case "hash collisions not conflated" `Quick
            test_hash_collision_not_conflated;
          Alcotest.test_case "wall clock not summed across domains" `Quick
            test_parallel_wall_not_summed;
        ] );
      ( "fuzz-cross-check",
        [
          Alcotest.test_case "fuzzed+shrunk violation confirmed by mc" `Quick
            test_fuzz_shrink_confirmed_by_mc;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "E11 (quick) passes" `Quick test_e11_quick_passes;
          Alcotest.test_case "E12 (quick) passes" `Quick test_e12_quick_passes;
        ] );
    ]
