(* Tests for the failure-detector framework: every oracle construction
   is re-validated against the independent property checkers, and the
   checkers themselves are exercised on hand-crafted invalid
   histories. *)
open Procset

let horizon = 150
let stab = 60

(* A pool of failure patterns covering every fault count, including
   the minority-correct regimes Sigma-nu was invented for. *)
let patterns =
  [
    Sim.Failure_pattern.make ~n:4 ~crashes:[];
    Sim.Failure_pattern.make ~n:4 ~crashes:[ (3, 20) ];
    Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 10); (3, 30) ];
    Sim.Failure_pattern.make ~n:4 ~crashes:[ (1, 5); (2, 10); (3, 30) ];
    Sim.Failure_pattern.make ~n:5 ~crashes:[ (0, 7); (4, 40) ];
    Sim.Failure_pattern.make ~n:6
      ~crashes:[ (1, 3); (2, 14); (4, 25); (5, 55) ];
  ]

let check_ok name = function
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "%s: %a" name Fd.Check.pp_violation v

let history_of oracle pattern =
  Fd.Oracle.history ~horizon ~n:(Sim.Failure_pattern.n pattern) oracle

(* -------------------------------------------------------------- *)
(* Oracles satisfy their specifications                            *)
(* -------------------------------------------------------------- *)

let over_patterns_and_seeds f =
  List.iteri
    (fun i pattern -> List.iter (fun seed -> f i pattern seed) [ 0; 1; 17 ])
    patterns

let test_omega_valid () =
  over_patterns_and_seeds (fun i pattern seed ->
      List.iter
        (fun prestab ->
          let o = Fd.Oracle.omega ~seed ~stab_time:stab ~prestab pattern in
          check_ok
            (Printf.sprintf "omega pattern %d seed %d" i seed)
            (Fd.Check.omega ~max_stab:o.Fd.Oracle.stab_time pattern
               (history_of o pattern)))
        [ Fd.Oracle.Omega_random; Fd.Oracle.Omega_faulty_first ])

let test_sigma_valid () =
  over_patterns_and_seeds (fun i pattern seed ->
      let o = Fd.Oracle.sigma ~seed ~stab_time:stab pattern in
      check_ok
        (Printf.sprintf "sigma pattern %d seed %d" i seed)
        (Fd.Check.sigma ~max_stab:o.Fd.Oracle.stab_time pattern
           (history_of o pattern)))

let test_sigma_majority_valid () =
  over_patterns_and_seeds (fun i pattern seed ->
      let n = Sim.Failure_pattern.n pattern in
      if Pset.is_majority ~n (Sim.Failure_pattern.correct pattern) then begin
        let o = Fd.Oracle.sigma_majority ~seed ~stab_time:stab pattern in
        check_ok
          (Printf.sprintf "sigma_majority pattern %d seed %d" i seed)
          (Fd.Check.sigma ~max_stab:o.Fd.Oracle.stab_time pattern
             (history_of o pattern))
      end)

let test_sigma_majority_guard () =
  let pattern =
    Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 10); (3, 30) ]
  in
  try
    ignore (Fd.Oracle.sigma_majority pattern);
    Alcotest.fail "sigma_majority should refuse a minority-correct pattern"
  with Invalid_argument _ -> ()

let test_sigma_nu_valid () =
  over_patterns_and_seeds (fun i pattern seed ->
      List.iter
        (fun mode ->
          let o =
            Fd.Oracle.sigma_nu ~seed ~stab_time:stab ~faulty_mode:mode pattern
          in
          check_ok
            (Printf.sprintf "sigma_nu pattern %d seed %d" i seed)
            (Fd.Check.sigma_nu ~max_stab:o.Fd.Oracle.stab_time pattern
               (history_of o pattern)))
        [ Fd.Oracle.Faulty_arbitrary; Fd.Oracle.Faulty_split ])

let test_sigma_nu_plus_valid () =
  over_patterns_and_seeds (fun i pattern seed ->
      List.iter
        (fun mode ->
          let o =
            Fd.Oracle.sigma_nu_plus ~seed ~stab_time:stab ~faulty_mode:mode
              pattern
          in
          check_ok
            (Printf.sprintf "sigma_nu_plus pattern %d seed %d" i seed)
            (Fd.Check.sigma_nu_plus ~max_stab:o.Fd.Oracle.stab_time pattern
               (history_of o pattern)))
        [ Fd.Oracle.Faulty_arbitrary; Fd.Oracle.Faulty_split ])

let test_perfect_valid () =
  List.iteri
    (fun i pattern ->
      let o = Fd.Oracle.perfect pattern in
      check_ok
        (Printf.sprintf "perfect pattern %d" i)
        (Fd.Check.sigma ~max_stab:o.Fd.Oracle.stab_time pattern
           (history_of o pattern));
      let o' = Fd.Oracle.perfect_plus pattern in
      check_ok
        (Printf.sprintf "perfect_plus pattern %d" i)
        (Fd.Check.sigma_nu_plus ~max_stab:o'.Fd.Oracle.stab_time pattern
           (history_of o' pattern)))
    patterns

let test_eventually_strong_valid () =
  over_patterns_and_seeds (fun i pattern seed ->
      let o = Fd.Oracle.eventually_strong ~seed ~stab_time:stab pattern in
      check_ok
        (Printf.sprintf "eventually_strong pattern %d seed %d" i seed)
        (Fd.Check.eventually_strong ~max_stab:o.Fd.Oracle.stab_time pattern
           (history_of o pattern)))

let test_eventually_strong_rejects () =
  let pattern = Sim.Failure_pattern.make ~n:3 ~crashes:[ (2, 5) ] in
  (* permanently suspecting every correct process breaks weak accuracy *)
  let h =
    Fd.History.of_fun ~n:3 ~horizon:40 (fun p _ ->
        Sim.Fd_value.Suspects (Pset.add 2 (Pset.singleton ((p + 1) mod 2))))
  in
  (match Fd.Check.eventually_strong ~max_stab:10 pattern h with
  | Error v ->
    Alcotest.(check string) "weak accuracy violated" "eventually-strong"
      v.Fd.Check.property
  | Ok () -> Alcotest.fail "must reject universal suspicion");
  (* never suspecting the crashed process breaks strong completeness *)
  let h' =
    Fd.History.of_fun ~n:3 ~horizon:40 (fun _ _ ->
        Sim.Fd_value.Suspects Pset.empty)
  in
  match Fd.Check.eventually_strong ~max_stab:10 pattern h' with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject missing suspicion of the crashed"

(* Sigma implies Sigma-nu: the pivot sigma histories also pass the
   nonuniform checker. *)
let test_sigma_is_sigma_nu () =
  List.iteri
    (fun i pattern ->
      let o = Fd.Oracle.sigma ~stab_time:stab pattern in
      check_ok
        (Printf.sprintf "sigma-as-sigma_nu pattern %d" i)
        (Fd.Check.sigma_nu ~max_stab:o.Fd.Oracle.stab_time pattern
           (history_of o pattern)))
    patterns

(* The split Sigma-nu oracle genuinely exploits the nonuniform
   weakening: with at least one faulty process whose quorums live on
   the faulty side, the full (uniform) Sigma intersection FAILS. *)
let test_split_sigma_nu_is_not_sigma () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 40); (3, 40) ] in
  let o =
    Fd.Oracle.sigma_nu ~stab_time:stab ~faulty_mode:Fd.Oracle.Faulty_split
      pattern
  in
  match Fd.Check.sigma ~max_stab:o.Fd.Oracle.stab_time pattern
          (history_of o pattern)
  with
  | Ok () ->
    Alcotest.fail "split sigma_nu unexpectedly satisfies uniform Sigma"
  | Error v ->
    Alcotest.(check string)
      "violation is about intersection" "intersection" v.Fd.Check.property

let test_pair_oracle () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[ (3, 20) ] in
  let o =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~stab_time:stab pattern)
      (Fd.Oracle.sigma_nu_plus ~stab_time:stab pattern)
  in
  let h = history_of o pattern in
  check_ok "pair fst is omega"
    (Fd.Check.omega ~max_stab:o.Fd.Oracle.stab_time pattern
       (Fd.History.project_fst h));
  check_ok "pair snd is sigma_nu_plus"
    (Fd.Check.sigma_nu_plus ~max_stab:o.Fd.Oracle.stab_time pattern
       (Fd.History.project_snd h))

(* -------------------------------------------------------------- *)
(* Checkers reject invalid histories                               *)
(* -------------------------------------------------------------- *)

let quorum l = Sim.Fd_value.Quorum (Pset.of_list l)

let expect_violation name property = function
  | Ok _ -> Alcotest.failf "%s: expected a %s violation" name property
  | Error v ->
    Alcotest.(check string)
      (name ^ ": violated property") property v.Fd.Check.property

let test_reject_wrong_leader () =
  let pattern = Sim.Failure_pattern.make ~n:3 ~crashes:[ (2, 5) ] in
  (* correct processes end up trusting the faulty process 2 *)
  let h =
    Fd.History.of_fun ~n:3 ~horizon:40 (fun _ _ -> Sim.Fd_value.Leader 2)
  in
  expect_violation "faulty leader" "omega" (Fd.Check.omega_settles pattern h)

let test_reject_split_leaders () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let h =
    Fd.History.of_fun ~n:4 ~horizon:40 (fun p _ ->
        Sim.Fd_value.Leader (p mod 2))
  in
  expect_violation "split leaders" "omega" (Fd.Check.omega_settles pattern h)

let test_reject_disjoint_quorums () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let h =
    Fd.History.of_fun ~n:4 ~horizon:20 (fun p _ ->
        if p < 2 then quorum [ 0; 1 ] else quorum [ 2; 3 ])
  in
  expect_violation "disjoint quorums" "intersection"
    (Fd.Check.intersection ~uniform:true pattern h);
  (* all four processes are correct here, so even the nonuniform
     checker rejects *)
  expect_violation "disjoint quorums (nonuniform)"
    "nonuniform-intersection"
    (Fd.Check.intersection ~uniform:false pattern h)

let test_nonuniform_accepts_faulty_disjoint () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 9); (3, 9) ] in
  let h =
    Fd.History.of_fun ~n:4 ~horizon:20 (fun p _ ->
        if p < 2 then quorum [ 0; 1 ] else quorum [ 2; 3 ])
  in
  (* the same history is fine for Sigma-nu once 2 and 3 are faulty *)
  check_ok "nonuniform ignores faulty quorums"
    (Fd.Check.intersection ~uniform:false pattern h);
  expect_violation "uniform still rejects" "intersection"
    (Fd.Check.intersection ~uniform:true pattern h)

let test_reject_incomplete () =
  let pattern = Sim.Failure_pattern.make ~n:3 ~crashes:[ (2, 5) ] in
  (* p0 keeps the faulty process in its quorum forever *)
  let h =
    Fd.History.of_fun ~n:3 ~horizon:50 (fun _ _ -> quorum [ 0; 1; 2 ])
  in
  match Fd.Check.completeness pattern h with
  | Ok s ->
    Alcotest.(check int) "violating until the end" 50 s;
    expect_violation "completeness bound" "completeness"
      (Fd.Check.sigma ~max_stab:40 pattern h)
  | Error v -> Alcotest.failf "unexpected error: %a" Fd.Check.pp_violation v

let test_reject_empty_quorum () =
  let pattern = Sim.Failure_pattern.make ~n:3 ~crashes:[] in
  let h = Fd.History.of_fun ~n:3 ~horizon:5 (fun _ _ -> quorum []) in
  expect_violation "empty quorum" "intersection"
    (Fd.Check.intersection ~uniform:true pattern h)

let test_reject_missing_self () =
  let pattern = Sim.Failure_pattern.make ~n:3 ~crashes:[] in
  ignore pattern;
  let h = Fd.History.of_fun ~n:3 ~horizon:5 (fun _ _ -> quorum [ 0 ]) in
  expect_violation "self-inclusion" "self-inclusion" (Fd.Check.self_inclusion h)

let test_reject_conditional_nonintersection () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[ (3, 5) ] in
  (* p3's quorum {2,3} misses p0's quorum {0,1}, yet contains the
     correct process 2 *)
  let h =
    Fd.History.of_fun ~n:4 ~horizon:10 (fun p _ ->
        if p = 3 then quorum [ 2; 3 ] else quorum [ 0; 1 ])
  in
  expect_violation "conditional nonintersection"
    "conditional-nonintersection"
    (Fd.Check.conditional_nonintersection pattern h)

let test_reject_wrong_range () =
  let pattern = Sim.Failure_pattern.make ~n:3 ~crashes:[] in
  let h = Fd.History.of_fun ~n:3 ~horizon:3 (fun _ _ -> Sim.Fd_value.Unit) in
  (match Fd.Check.intersection ~uniform:true pattern h with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-quorum values must be rejected");
  match Fd.Check.omega_settles pattern h with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-leader values must be rejected"

(* Exact stabilization-time accounting: the checkers report the last
   violating sample, not merely a boolean. *)
let test_exact_stab_times () =
  let pattern = Sim.Failure_pattern.make ~n:3 ~crashes:[ (2, 5) ] in
  (* leader wrong until time 12 inclusive, settled afterwards *)
  let h =
    Fd.History.of_fun ~n:3 ~horizon:40 (fun _ t ->
        Sim.Fd_value.Leader (if t <= 12 then 1 else 0))
  in
  (match Fd.Check.omega_settles pattern h with
  | Ok s -> Alcotest.(check int) "omega stab time" 12 s
  | Error v -> Alcotest.failf "unexpected: %a" Fd.Check.pp_violation v);
  (* quorums contain the faulty process until time 20 inclusive *)
  let h' =
    Fd.History.of_fun ~n:3 ~horizon:40 (fun _ t ->
        quorum (if t <= 20 then [ 0; 2 ] else [ 0; 1 ]))
  in
  match Fd.Check.completeness pattern h' with
  | Ok s -> Alcotest.(check int) "completeness stab time" 20 s
  | Error v -> Alcotest.failf "unexpected: %a" Fd.Check.pp_violation v

(* Oracles clamp their stabilization to after the last crash. *)
let test_oracle_stab_clamped () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[ (3, 90) ] in
  let o = Fd.Oracle.omega ~stab_time:5 pattern in
  Alcotest.(check bool) "clamped past the last crash" true
    (o.Fd.Oracle.stab_time > 90);
  check_ok "clamped oracle still valid"
    (Fd.Check.omega ~max_stab:o.Fd.Oracle.stab_time pattern
       (history_of o pattern))

(* Nested pairs project correctly. *)
let test_nested_pairs () =
  let pattern = Sim.Failure_pattern.make ~n:3 ~crashes:[] in
  let o =
    Fd.Oracle.pair
      (Fd.Oracle.pair
         (Fd.Oracle.omega ~stab_time:10 pattern)
         (Fd.Oracle.sigma ~stab_time:10 pattern))
      (Fd.Oracle.sigma_nu ~stab_time:10 pattern)
  in
  let h = history_of o pattern in
  let inner = Fd.History.project_fst h in
  check_ok "fst.fst is omega"
    (Fd.Check.omega ~max_stab:15 pattern (Fd.History.project_fst inner));
  check_ok "fst.snd is sigma"
    (Fd.Check.sigma ~max_stab:15 pattern (Fd.History.project_snd inner));
  check_ok "snd is sigma_nu"
    (Fd.Check.sigma_nu ~max_stab:15 pattern (Fd.History.project_snd h))

(* -------------------------------------------------------------- *)
(* History container                                               *)
(* -------------------------------------------------------------- *)

let test_history_container () =
  let samples =
    [ (0, 3, quorum [ 0 ]); (0, 1, quorum [ 0; 1 ]); (1, 2, quorum [ 1 ]) ]
  in
  let h = Fd.History.of_samples ~n:2 samples in
  Alcotest.(check int) "last time" 3 (Fd.History.last_time h);
  (match Fd.History.samples_of h 0 with
  | [ (1, _); (3, _) ] -> ()
  | _ -> Alcotest.fail "samples of p0 should be time-sorted");
  (* duplicate agreeing samples collapse *)
  let h' =
    Fd.History.of_samples ~n:2
      [ (0, 1, quorum [ 0 ]); (0, 1, quorum [ 0 ]) ]
  in
  Alcotest.(check int) "dedup" 1 (List.length (Fd.History.samples_of h' 0));
  (* conflicting duplicates are rejected *)
  (try
     ignore
       (Fd.History.of_samples ~n:2
          [ (0, 1, quorum [ 0 ]); (0, 1, quorum [ 1 ]) ]);
     Alcotest.fail "conflicting samples must raise"
   with Invalid_argument _ -> ());
  (* projections *)
  let hp =
    Fd.History.of_samples ~n:2
      [ (0, 0, Sim.Fd_value.Pair (Sim.Fd_value.Leader 1, quorum [ 0 ])) ]
  in
  (match Fd.History.samples_of (Fd.History.project_fst hp) 0 with
  | [ (0, Sim.Fd_value.Leader 1) ] -> ()
  | _ -> Alcotest.fail "project_fst");
  match Fd.History.samples_of (Fd.History.project_snd hp) 0 with
  | [ (0, Sim.Fd_value.Quorum _) ] -> ()
  | _ -> Alcotest.fail "project_snd"

let prop_oracle_deterministic =
  (* patterns from the shared Tutil generator, not one pinned schedule *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"oracles are deterministic in (pattern, seed, p, t)" ~count:200
       QCheck.(
         pair
           (Tutil.arb_universe ~max_n:6 ~crash_window:50 ())
           (triple int small_nat (int_bound 100)))
       (fun (u, (seed, p, t)) ->
         let pattern = Tutil.universe_pattern u in
         let p = p mod u.Tutil.u_n in
         let o1 = Fd.Oracle.sigma_nu_plus ~seed ~stab_time:stab pattern in
         let o2 = Fd.Oracle.sigma_nu_plus ~seed ~stab_time:stab pattern in
         Sim.Fd_value.equal (o1.Fd.Oracle.query p t) (o2.Fd.Oracle.query p t)))

(* -------------------------------------------------------------- *)
(* Family-parameterized oracles                                    *)
(* -------------------------------------------------------------- *)

(* The families exercised against each pattern of the pool: the
   built-ins at every size that fits, via the shared tutil spec
   generator's instances. A family participates in a pattern only
   when [validate] accepts it for the pattern's correct set — the
   same gate the oracles themselves apply. *)
let families_for ~n =
  [
    Quorum_family.majority;
    Quorum_family.supermajority ~f:1;
    Quorum_family.weighted ~weights:(List.init n (fun i -> 1 + (i mod 2)));
    Quorum_family.grid ();
  ]

let test_family_oracles_valid () =
  over_patterns_and_seeds (fun i pattern seed ->
      let n = Sim.Failure_pattern.n pattern in
      let correct = Sim.Failure_pattern.correct pattern in
      List.iter
        (fun fam ->
          let fits =
            Result.is_ok (Quorum_family.validate fam ~n ~live:correct)
          in
          let expect_oracle mk check_name checker =
            match mk () with
            | Ok o ->
              if not fits then
                Alcotest.failf "%s pattern %d: oracle accepted a family \
                                validate rejects"
                  check_name i;
              check_ok
                (Printf.sprintf "%s[%s] pattern %d seed %d" check_name
                   (Quorum_family.name fam) i seed)
                (checker ~max_stab:o.Fd.Oracle.stab_time pattern
                   (history_of o pattern))
            | Error _ ->
              if fits then
                Alcotest.failf "%s[%s] pattern %d: typed error on a \
                                family validate accepts"
                  check_name (Quorum_family.name fam) i
          in
          expect_oracle
            (fun () -> Fd.Oracle.sigma_family ~seed ~stab_time:stab fam pattern)
            "sigma_family" Fd.Check.sigma;
          expect_oracle
            (fun () ->
              Fd.Oracle.sigma_nu_family ~seed ~stab_time:stab fam pattern)
            "sigma_nu_family" Fd.Check.sigma_nu;
          expect_oracle
            (fun () ->
              Fd.Oracle.sigma_nu_plus_family ~seed ~stab_time:stab fam pattern)
            "sigma_nu_plus_family" Fd.Check.sigma_nu_plus)
        (families_for ~n))

(* sigma_majority IS sigma_family majority: identical histories,
   sample for sample, under every pattern and seed — the byte-identity
   that keeps pre-family seeded runs reproducible. *)
let test_sigma_majority_is_family_majority () =
  over_patterns_and_seeds (fun i pattern seed ->
      let n = Sim.Failure_pattern.n pattern in
      if Pset.is_majority ~n (Sim.Failure_pattern.correct pattern) then begin
        let o = Fd.Oracle.sigma_majority ~seed ~stab_time:stab pattern in
        let o' =
          match
            Fd.Oracle.sigma_family ~seed ~stab_time:stab
              Quorum_family.majority pattern
          with
          | Ok o' -> o'
          | Error e ->
            Alcotest.failf "pattern %d: sigma_family majority: %s" i
              (Quorum_family.error_to_string e)
        in
        let s = Fd.History.all_samples (history_of o pattern) in
        let s' = Fd.History.all_samples (history_of o' pattern) in
        List.iter2
          (fun (p, t, v) (p', t', v') ->
            if not (p = p' && t = t' && Sim.Fd_value.equal v v') then
              Alcotest.failf
                "pattern %d seed %d: sigma_majority and sigma_family \
                 majority disagree at (p%d, t=%d)"
                i seed p t)
          s s'
      end)

let test_family_oracle_typed_errors () =
  let minority =
    Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 10); (3, 30) ]
  in
  (match Fd.Oracle.sigma_family Quorum_family.majority minority with
  | Error (Quorum_family.No_live_quorum _) -> ()
  | Ok _ -> Alcotest.fail "majority family must reject minority-correct"
  | Error (Quorum_family.Bad_shape _) ->
    Alcotest.fail "expected No_live_quorum, got Bad_shape");
  let n5 = Sim.Failure_pattern.make ~n:5 ~crashes:[] in
  match Fd.Oracle.sigma_family (Quorum_family.grid ~rows:2 ~cols:2 ()) n5 with
  | Error (Quorum_family.Bad_shape _) -> ()
  | Ok _ -> Alcotest.fail "2x2 grid must reject n=5"
  | Error (Quorum_family.No_live_quorum _) ->
    Alcotest.fail "expected Bad_shape, got No_live_quorum"

let () =
  Alcotest.run "fd"
    [
      ( "oracles-satisfy-specs",
        [
          Alcotest.test_case "omega" `Quick test_omega_valid;
          Alcotest.test_case "sigma (pivot)" `Quick test_sigma_valid;
          Alcotest.test_case "sigma (majority)" `Quick
            test_sigma_majority_valid;
          Alcotest.test_case "sigma majority guard" `Quick
            test_sigma_majority_guard;
          Alcotest.test_case "sigma_nu (both faulty modes)" `Quick
            test_sigma_nu_valid;
          Alcotest.test_case "sigma_nu_plus (both faulty modes)" `Quick
            test_sigma_nu_plus_valid;
          Alcotest.test_case "perfect and perfect_plus" `Quick
            test_perfect_valid;
          Alcotest.test_case "eventually strong (<>S)" `Quick
            test_eventually_strong_valid;
          Alcotest.test_case "eventually strong rejections" `Quick
            test_eventually_strong_rejects;
          Alcotest.test_case "sigma implies sigma_nu" `Quick
            test_sigma_is_sigma_nu;
          Alcotest.test_case "split sigma_nu is not sigma" `Quick
            test_split_sigma_nu_is_not_sigma;
          Alcotest.test_case "pair projections" `Quick test_pair_oracle;
          prop_oracle_deterministic;
        ] );
      ( "family-oracles",
        [
          Alcotest.test_case "families satisfy their class specs" `Quick
            test_family_oracles_valid;
          Alcotest.test_case "sigma_majority = sigma_family majority" `Quick
            test_sigma_majority_is_family_majority;
          Alcotest.test_case "typed errors" `Quick
            test_family_oracle_typed_errors;
        ] );
      ( "checkers-reject-invalid",
        [
          Alcotest.test_case "faulty eventual leader" `Quick
            test_reject_wrong_leader;
          Alcotest.test_case "split leaders" `Quick test_reject_split_leaders;
          Alcotest.test_case "disjoint quorums" `Quick
            test_reject_disjoint_quorums;
          Alcotest.test_case "nonuniform tolerates faulty disjoint" `Quick
            test_nonuniform_accepts_faulty_disjoint;
          Alcotest.test_case "incomplete quorums" `Quick test_reject_incomplete;
          Alcotest.test_case "empty quorum" `Quick test_reject_empty_quorum;
          Alcotest.test_case "missing self" `Quick test_reject_missing_self;
          Alcotest.test_case "conditional nonintersection" `Quick
            test_reject_conditional_nonintersection;
          Alcotest.test_case "wrong range" `Quick test_reject_wrong_range;
        ] );
      ( "checker-precision",
        [
          Alcotest.test_case "exact stabilization times" `Quick
            test_exact_stab_times;
          Alcotest.test_case "oracle stab clamping" `Quick
            test_oracle_stab_clamped;
          Alcotest.test_case "nested pairs" `Quick test_nested_pairs;
        ] );
      ( "history",
        [ Alcotest.test_case "container semantics" `Quick test_history_container ] );
    ]
