(* Tests for the packed canonical-state codec (lib/mc/codec.ml +
   Mc.Make.Packed) and the campaign checkpoint machinery: varint and
   container round-trips, pool interning, packed encode/decode as
   verified inverses over sampled reachable configs, crafted hash
   collisions through the packed striped table (spill included), and
   kill/resume equality of checkpointed mc campaigns. *)
open Procset

module M_anuc = Mc.Make (Core.Anuc)

(* -------------------------------------------------------------- *)
(* Varints                                                        *)
(* -------------------------------------------------------------- *)

let varint_round_trip n =
  let buf = Buffer.create 16 in
  Mc.Codec.write_varint buf n;
  let b = Buffer.to_bytes buf in
  let pos = ref 0 in
  let n' = Mc.Codec.read_varint b pos in
  n' = n && !pos = Bytes.length b

let test_varint_units () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "varint %d round-trips" n)
        true (varint_round_trip n))
    [ 0; 1; 127; 128; 129; 16383; 16384; 1 lsl 30; max_int ];
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Codec.write_varint: negative") (fun () ->
      Mc.Codec.write_varint (Buffer.create 4) (-1))

let test_varint_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"varint round-trip" ~count:500
       QCheck.(int_bound max_int)
       varint_round_trip)

let test_varint_concatenation () =
  (* several varints written back to back read out in order — the
     packed encoding is one long varint sequence *)
  let ns = [ 0; 300; 7; 128; 99999; 1 ] in
  let buf = Buffer.create 32 in
  List.iter (Mc.Codec.write_varint buf) ns;
  let b = Buffer.to_bytes buf in
  let pos = ref 0 in
  let ns' = List.map (fun _ -> Mc.Codec.read_varint b pos) ns in
  Alcotest.(check (list int)) "sequence round-trips" ns ns';
  Alcotest.(check int) "all bytes consumed" (Bytes.length b) !pos

(* -------------------------------------------------------------- *)
(* Hashing                                                        *)
(* -------------------------------------------------------------- *)

let test_bytes_hash () =
  let b = Bytes.of_string "packed state" in
  Alcotest.(check int)
    "deterministic" (Mc.Codec.bytes_hash b) (Mc.Codec.bytes_hash b);
  Alcotest.(check bool) "nonnegative" true (Mc.Codec.bytes_hash b >= 0);
  let b' = Bytes.copy b in
  Bytes.set b' (Bytes.length b' - 1) 'f';
  Alcotest.(check bool)
    "last byte matters" false
    (Mc.Codec.bytes_hash b = Mc.Codec.bytes_hash b')

(* -------------------------------------------------------------- *)
(* Pools                                                          *)
(* -------------------------------------------------------------- *)

let test_pool () =
  let p = Mc.Codec.Pool.create () in
  let i0 = Mc.Codec.Pool.intern p "a" in
  let i1 = Mc.Codec.Pool.intern p "b" in
  let i0' = Mc.Codec.Pool.intern p "a" in
  Alcotest.(check int) "first index 0" 0 i0;
  Alcotest.(check int) "second index 1" 1 i1;
  Alcotest.(check int) "re-intern returns the same index" i0 i0';
  Alcotest.(check int) "length counts distinct" 2 (Mc.Codec.Pool.length p);
  Alcotest.(check string) "get inverts" "b" (Mc.Codec.Pool.get p i1);
  let q = Mc.Codec.Pool.import (Mc.Codec.Pool.export p) in
  Alcotest.(check int) "import preserves length" 2 (Mc.Codec.Pool.length q);
  Alcotest.(check string) "import preserves indices" "a"
    (Mc.Codec.Pool.get q 0);
  Alcotest.(check int) "import preserves forward map" 1
    (Mc.Codec.Pool.intern q "b");
  Alcotest.check_raises "bad index rejected"
    (Invalid_argument "Codec.Pool.get: bad index") (fun () ->
      ignore (Mc.Codec.Pool.get p 2))

(* -------------------------------------------------------------- *)
(* Container                                                      *)
(* -------------------------------------------------------------- *)

let with_temp f =
  let path = Filename.temp_file "nuc_codec" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_container_round_trip () =
  with_temp (fun path ->
      let v = ([ 1; 2; 3 ], "payload", Some 4.5) in
      Mc.Codec.write_file ~path ~version:3 v;
      match Mc.Codec.read_file ~path ~version:3 with
      | Ok v' ->
        Alcotest.(check bool) "value round-trips" true (v = v')
      | Error e -> Alcotest.failf "read: %s" (Mc.Codec.error_to_string e))

let test_container_bad_magic () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOTACKPT and then some bytes";
      close_out oc;
      match Mc.Codec.read_file ~path ~version:1 with
      | Error Mc.Codec.Bad_magic -> ()
      | Ok _ -> Alcotest.fail "bad magic accepted"
      | Error e -> Alcotest.failf "wrong error: %s" (Mc.Codec.error_to_string e))

let test_container_bad_version () =
  with_temp (fun path ->
      Mc.Codec.write_file ~path ~version:7 "x";
      match Mc.Codec.read_file ~path ~version:8 with
      | Error (Mc.Codec.Bad_version 7) -> ()
      | Ok _ -> Alcotest.fail "wrong version accepted"
      | Error e -> Alcotest.failf "wrong error: %s" (Mc.Codec.error_to_string e))

let flip_byte path i =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let i = if i < 0 then len + i else i in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_container_corrupt_payload () =
  with_temp (fun path ->
      Mc.Codec.write_file ~path ~version:1 [ "some"; "payload"; "value" ];
      flip_byte path (-1);
      match Mc.Codec.read_file ~path ~version:1 with
      | Error (Mc.Codec.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "corrupt payload accepted"
      | Error e -> Alcotest.failf "wrong error: %s" (Mc.Codec.error_to_string e))

let test_container_truncated () =
  with_temp (fun path ->
      Mc.Codec.write_file ~path ~version:1 (Array.init 100 string_of_int);
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let b = Bytes.create (len / 2) in
      really_input ic b 0 (len / 2);
      close_in ic;
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      match Mc.Codec.read_file ~path ~version:1 with
      | Error (Mc.Codec.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "truncated file accepted"
      | Error e -> Alcotest.failf "wrong error: %s" (Mc.Codec.error_to_string e))

(* -------------------------------------------------------------- *)
(* Packed encode/decode round-trip over reachable configs          *)
(* -------------------------------------------------------------- *)

(* The E11 universe (see test_mc.ml), plus its lossy variant so the
   round-trip battery covers drop-perturbed channels and every
   detector-menu value in the family. *)
let n = 3
let faulty = Pset.singleton 2
let proposals p = if Pset.mem p faulty then 1 else 0

(* A deterministic random walk of [steps] moves from the initial
   config, collecting every config on the way. *)
let walk_configs ~menu ~lossy ~steps seed =
  let menus = Array.init n (fun p -> menu.Mc.Menu.values p) in
  let rng = Random.State.make [| seed |] in
  let cfg = ref (M_anuc.Space.initial ~n ~inputs:proposals) in
  let acc = ref [ !cfg ] in
  (try
     for _ = 1 to steps do
       match M_anuc.Space.enabled ~n ~delivery:`Fifo ~lossy ~menus !cfg with
       | [] -> raise Exit
       | moves ->
         let mv = List.nth moves (Random.State.int rng (List.length moves)) in
         cfg := M_anuc.Space.apply ~n !cfg mv;
         acc := !cfg :: !acc
     done
   with Exit -> ());
  !acc

let round_trip_walk ~menu ~lossy seed =
  let pool = M_anuc.Packed.create ~n in
  List.for_all
    (fun cfg ->
      let b = M_anuc.Packed.encode pool cfg in
      let cfg' = M_anuc.Packed.decode pool b in
      M_anuc.Space.equal cfg cfg'
      (* hash stability: re-encoding yields the same bytes, hence the
         same FNV hash — the memo key is reproducible *)
      && Bytes.equal b (M_anuc.Packed.encode pool cfg)
      && Mc.Codec.bytes_hash b
         = Mc.Codec.bytes_hash (M_anuc.Packed.encode pool cfg'))
    (walk_configs ~menu ~lossy ~steps:25 seed)

let test_packed_round_trip_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"decode∘encode = id on walks (contamination)"
       ~count:60 QCheck.small_nat
       (round_trip_walk
          ~menu:(Mc.Menu.contamination ~plus:true ~n ~faulty ())
          ~lossy:false))

let test_packed_round_trip_lossy_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"decode∘encode = id on lossy walks" ~count:60
       QCheck.small_nat
       (round_trip_walk ~menu:(Mc.Menu.lossy ~plus:true ~n ~faulty ()) ~lossy:true))

let test_packed_injective () =
  (* distinct configs (by Space.equal) pack to distinct bytes, equal
     configs to equal bytes — Bytes.equal on packed = config equality *)
  let menu = Mc.Menu.contamination ~plus:true ~n ~faulty () in
  let pool = M_anuc.Packed.create ~n in
  let configs = walk_configs ~menu ~lossy:false ~steps:40 11 in
  let packed = List.map (fun c -> (c, M_anuc.Packed.encode pool c)) configs in
  List.iter
    (fun (c1, b1) ->
      List.iter
        (fun (c2, b2) ->
          Alcotest.(check bool)
            "Bytes.equal iff Space.equal"
            (M_anuc.Space.equal c1 c2)
            (Bytes.equal b1 b2))
        packed)
    packed

let test_packed_decode_rejects_garbage () =
  let pool = M_anuc.Packed.create ~n in
  (* any index is out of range for an empty pool *)
  let buf = Buffer.create 8 in
  List.iter (Mc.Codec.write_varint buf) [ 5; 0; 0 ];
  match M_anuc.Packed.decode pool (Buffer.to_bytes buf) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "garbage bytes decoded"

(* -------------------------------------------------------------- *)
(* Crafted hash collisions through the packed striped table        *)
(* -------------------------------------------------------------- *)

module Bkey = struct
  type t = Bytes.t

  let equal = Bytes.equal
end

module Striped_bytes = Mc.Intern.Striped (Bkey)

let collide b = Mc.Intern.hashed (fun (_ : Bytes.t) -> 42) b

let test_striped_collisions_distinct () =
  let t = Striped_bytes.create 16 in
  let k1 = collide (Bytes.of_string "state one") in
  let k2 = collide (Bytes.of_string "state two") in
  let _, fresh1 = Striped_bytes.intern t k1 (fun id -> id) in
  let v2, fresh2 = Striped_bytes.intern t k2 (fun id -> id) in
  let v1, fresh1' = Striped_bytes.intern t k1 (fun id -> id) in
  Alcotest.(check bool) "first insert fresh" true fresh1;
  Alcotest.(check bool) "collider still fresh" true fresh2;
  Alcotest.(check bool) "re-probe not fresh" false fresh1';
  Alcotest.(check bool) "distinct ids" true (v1 <> v2);
  Alcotest.(check int) "both counted" 2 (Striped_bytes.length t)

let test_striped_collisions_through_spill () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nuc_spill_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let t = Striped_bytes.create 16 in
      Striped_bytes.set_spill_dir t dir;
      let k1 = collide (Bytes.of_string "spilled state") in
      let k2 = collide (Bytes.of_string "colliding probe") in
      ignore (Striped_bytes.intern t k1 (fun id -> id));
      Striped_bytes.spill t;
      (* a collision against a spilled key must reload, not conflate *)
      let _, fresh2 = Striped_bytes.intern t k2 (fun id -> id) in
      let _, fresh1 = Striped_bytes.intern t k1 (fun id -> id) in
      Alcotest.(check bool) "collider fresh after spill" true fresh2;
      Alcotest.(check bool) "spilled key found again" false fresh1;
      Alcotest.(check int) "both counted" 2 (Striped_bytes.length t);
      let exported = Striped_bytes.export t in
      Alcotest.(check int) "export sees both" 2 (Array.length exported))

(* -------------------------------------------------------------- *)
(* Checkpoint / resume of mc campaigns                             *)
(* -------------------------------------------------------------- *)

let run_anuc ?max_states ?checkpoint ?resume ~depth () =
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (2, depth + 1) ] in
  let menu = Mc.Menu.contamination ~plus:true ~n ~faulty () in
  let props =
    M_anuc.consensus_props ~decision:Core.Anuc.decision ~proposals
      ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    M_anuc.decided_stop ~decision:Core.Anuc.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  M_anuc.run ~n ~menu ~depth ~inputs:proposals ~props ~stop ?max_states
    ?checkpoint ?resume ()

let test_checkpoint_resume_equality () =
  with_temp (fun path ->
      let depth = 8 in
      let straight = run_anuc ~depth () in
      let truncated =
        run_anuc ~depth ~max_states:500 ~checkpoint:(path, 100) ()
      in
      Alcotest.(check bool)
        "segment truncated" true truncated.M_anuc.stats.Mc.truncated;
      Alcotest.(check bool)
        "segment saw fewer states" true
        (truncated.M_anuc.stats.Mc.distinct_states
        < straight.M_anuc.stats.Mc.distinct_states);
      let resumed = run_anuc ~depth ~resume:path ~checkpoint:(path, 100) () in
      Alcotest.(check bool)
        "resumed not truncated" false resumed.M_anuc.stats.Mc.truncated;
      Alcotest.(check bool)
        "resumed verdict matches straight" true
        (resumed.M_anuc.violation = None && straight.M_anuc.violation = None);
      Alcotest.(check int)
        "resumed distinct states match straight"
        straight.M_anuc.stats.Mc.distinct_states
        resumed.M_anuc.stats.Mc.distinct_states)

let test_checkpoint_max_states_cumulative () =
  with_temp (fun path ->
      let depth = 8 in
      let seg1 = run_anuc ~depth ~max_states:500 ~checkpoint:(path, 100) () in
      Alcotest.(check bool)
        "first segment truncated" true seg1.M_anuc.stats.Mc.truncated;
      (* resuming under the same budget must truncate immediately:
         the imported watermark already exceeds it *)
      let seg2 =
        run_anuc ~depth ~max_states:500 ~resume:path ~checkpoint:(path, 100) ()
      in
      Alcotest.(check bool)
        "resumed segment still truncated" true seg2.M_anuc.stats.Mc.truncated;
      Alcotest.(check int)
        "no fresh exploration under an exhausted budget"
        seg1.M_anuc.stats.Mc.distinct_states
        seg2.M_anuc.stats.Mc.distinct_states)

let test_checkpoint_corrupt_rejected () =
  with_temp (fun path ->
      let depth = 8 in
      ignore (run_anuc ~depth ~max_states:500 ~checkpoint:(path, 100) ());
      flip_byte path (-1);
      match run_anuc ~depth ~resume:path () with
      | exception Mc.Resume_rejected (Mc.Codec.Corrupt _) -> ()
      | exception Mc.Resume_rejected e ->
        Alcotest.failf "wrong rejection: %s" (Mc.Codec.error_to_string e)
      | _ -> Alcotest.fail "corrupt checkpoint accepted")

let test_checkpoint_params_mismatch () =
  with_temp (fun path ->
      ignore (run_anuc ~depth:8 ~max_states:500 ~checkpoint:(path, 100) ());
      match run_anuc ~depth:7 ~resume:path () with
      | exception Mc.Resume_rejected (Mc.Codec.Params_mismatch _) -> ()
      | exception Mc.Resume_rejected e ->
        Alcotest.failf "wrong rejection: %s" (Mc.Codec.error_to_string e)
      | _ -> Alcotest.fail "campaign fingerprint mismatch accepted")

let test_checkpoint_completed_campaign () =
  with_temp (fun path ->
      let depth = 7 in
      let straight = run_anuc ~depth () in
      (* a campaign that completes writes a final checkpoint; resuming
         it finds no pending work and reproduces the verdict *)
      let finished = run_anuc ~depth ~checkpoint:(path, 1_000) () in
      Alcotest.(check int)
        "checkpointed run matches straight"
        straight.M_anuc.stats.Mc.distinct_states
        finished.M_anuc.stats.Mc.distinct_states;
      let resumed = run_anuc ~depth ~resume:path () in
      Alcotest.(check int)
        "resumed completed campaign reproduces distinct states"
        straight.M_anuc.stats.Mc.distinct_states
        resumed.M_anuc.stats.Mc.distinct_states;
      Alcotest.(check bool)
        "no violation on resume" true (resumed.M_anuc.violation = None))

let () =
  Alcotest.run "codec"
    [
      ( "varint",
        [
          Alcotest.test_case "unit round-trips" `Quick test_varint_units;
          test_varint_qcheck;
          Alcotest.test_case "concatenated sequence" `Quick
            test_varint_concatenation;
        ] );
      ( "hash",
        [ Alcotest.test_case "FNV over all bytes" `Quick test_bytes_hash ] );
      ("pool", [ Alcotest.test_case "intern/get/export/import" `Quick test_pool ]);
      ( "container",
        [
          Alcotest.test_case "round-trip" `Quick test_container_round_trip;
          Alcotest.test_case "bad magic" `Quick test_container_bad_magic;
          Alcotest.test_case "bad version" `Quick test_container_bad_version;
          Alcotest.test_case "corrupt payload" `Quick
            test_container_corrupt_payload;
          Alcotest.test_case "truncated file" `Quick test_container_truncated;
        ] );
      ( "packed",
        [
          test_packed_round_trip_qcheck;
          test_packed_round_trip_lossy_qcheck;
          Alcotest.test_case "injective wrt Space.equal" `Quick
            test_packed_injective;
          Alcotest.test_case "garbage bytes rejected" `Quick
            test_packed_decode_rejects_garbage;
        ] );
      ( "collisions",
        [
          Alcotest.test_case "crafted collisions stay distinct" `Quick
            test_striped_collisions_distinct;
          Alcotest.test_case "collisions through spill" `Quick
            test_striped_collisions_through_spill;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "kill/resume reproduces straight run" `Quick
            test_checkpoint_resume_equality;
          Alcotest.test_case "max-states cumulative across segments" `Quick
            test_checkpoint_max_states_cumulative;
          Alcotest.test_case "corrupt checkpoint rejected" `Quick
            test_checkpoint_corrupt_rejected;
          Alcotest.test_case "campaign fingerprint mismatch rejected" `Quick
            test_checkpoint_params_mismatch;
          Alcotest.test_case "completed campaign resumable" `Quick
            test_checkpoint_completed_campaign;
        ] );
    ]
