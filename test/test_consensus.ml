(* Tests for the consensus problem spec and the Mostéfaoui–Raynal
   baselines. *)
open Procset
module Mr = Consensus.Mr

(* -------------------------------------------------------------- *)
(* Problem spec                                                    *)
(* -------------------------------------------------------------- *)

let mk_outcome ~crashes ~proposals ~decisions =
  let n = Array.length proposals in
  let pattern = Sim.Failure_pattern.make ~n ~crashes in
  Consensus.Spec.outcome ~pattern
    ~proposals:(fun p -> proposals.(p))
    ~decisions:(fun p -> decisions.(p))

let test_spec_termination () =
  let o =
    mk_outcome ~crashes:[ (2, 5) ] ~proposals:[| 0; 1; 1 |]
      ~decisions:[| Some 1; None; None |]
  in
  (match Consensus.Spec.check_termination o with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undecided correct p1 must fail termination");
  let o' =
    mk_outcome ~crashes:[ (2, 5) ] ~proposals:[| 0; 1; 1 |]
      ~decisions:[| Some 1; Some 1; None |]
  in
  match Consensus.Spec.check_termination o' with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_spec_agreement_flavours () =
  (* faulty p2 decides differently: nonuniform OK, uniform violated *)
  let o =
    mk_outcome ~crashes:[ (2, 50) ] ~proposals:[| 0; 1; 1 |]
      ~decisions:[| Some 0; Some 0; Some 1 |]
  in
  (match Consensus.Spec.check_agreement Consensus.Spec.Nonuniform o with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("nonuniform should tolerate: " ^ e));
  match Consensus.Spec.check_agreement Consensus.Spec.Uniform o with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "uniform must reject a divergent faulty decision"

let test_spec_validity () =
  let o =
    mk_outcome ~crashes:[] ~proposals:[| 0; 0; 0 |]
      ~decisions:[| Some 1; None; None |]
  in
  match Consensus.Spec.check_validity o with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "deciding an unproposed value must fail validity"

(* -------------------------------------------------------------- *)
(* MR sweeps                                                       *)
(* -------------------------------------------------------------- *)

let seeds = [ 0; 1; 2; 3; 4; 5; 6; 7 ]
let mr_majority = (module Mr.Majority : Tutil.CONSENSUS)
let mr_quorum = (module Mr.With_quorum : Tutil.CONSENSUS)

(* MR with majorities solves uniform consensus when a majority of
   processes is correct [MR01]. *)
let test_mr_majority_minority_failures () =
  List.iter
    (fun n ->
      let t_max = (n - 1) / 2 in
      if t_max >= 1 then begin
        let r =
          Tutil.sweep mr_majority ~family:Tutil.benign_sigma
            ~flavour:Consensus.Spec.Uniform ~n
            ~t_range:(List.init t_max (fun i -> i + 1))
            ~seeds ()
        in
        Alcotest.(check bool) "ran" true (r.Tutil.runs > 0)
      end)
    [ 3; 4; 5; 7 ]

(* MR with Sigma quorums solves uniform consensus in any environment
   (footnote 5 of the paper). *)
let test_mr_sigma_any_failures () =
  List.iter
    (fun n ->
      let r =
        Tutil.sweep mr_quorum ~family:Tutil.benign_sigma
          ~flavour:Consensus.Spec.Uniform ~n
          ~t_range:(List.init (n - 1) (fun i -> i + 1))
          ~seeds ()
      in
      Alcotest.(check bool) "ran" true (r.Tutil.runs > 0))
    [ 3; 4; 5; 6 ]

(* All-same proposals decide that value (validity end to end). *)
let test_mr_validity_unanimous () =
  let n = 4 in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (3, 25) ] in
  let oracle = Tutil.benign_sigma.Tutil.make ~seed:3 pattern in
  let module R = Sim.Runner.Make (Mr.With_quorum) in
  List.iter
    (fun v ->
      let run =
        R.exec ~seed:3 ~pattern ~fd:oracle.Fd.Oracle.query
          ~inputs:(fun _ -> v)
          ~max_steps:4000
          ~stop:(fun st _ ->
            Pset.for_all
              (fun p -> Mr.With_quorum.decision (st p) <> None)
              (Sim.Failure_pattern.correct pattern))
          ()
      in
      Pset.iter
        (fun p ->
          Alcotest.(check (option int))
            (Printf.sprintf "p%d decides the unanimous value %d" p v)
            (Some v)
            (Mr.With_quorum.decision run.R.states.(p)))
        (Sim.Failure_pattern.correct pattern))
    [ 0; 1 ]

(* Deterministic phase walk of one round with two processes, driven
   step by step through a session. *)
let test_mr_phase_walk () =
  let n = 2 in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[] in
  let fd _ _ =
    Sim.Fd_value.Pair
      (Sim.Fd_value.Leader 0, Sim.Fd_value.Quorum (Pset.of_list [ 0; 1 ]))
  in
  let module R = Sim.Runner.Make (Mr.With_quorum) in
  let s = R.Session.create ~pattern ~fd ~inputs:(fun p -> p) () in
  let state p = R.Session.state s p in
  (* first steps broadcast LEAD(1) and wait for the leader's LEAD *)
  R.Session.step ~choice:R.Lambda s 0;
  R.Session.step ~choice:R.Lambda s 1;
  Alcotest.(check bool) "p0 waiting for lead" true
    (Mr.With_quorum.phase (state 0) = Mr.Phase_lead);
  (* deliver p0's LEAD to both; they adopt 0 and move to REP wait *)
  R.Session.step ~choice:(R.Oldest_from 0) s 0;
  R.Session.step ~choice:(R.Oldest_from 0) s 1;
  Alcotest.(check int) "p1 adopted leader estimate" 0
    (Mr.With_quorum.estimate (state 1));
  Alcotest.(check bool) "p1 waiting for reports" true
    (Mr.With_quorum.phase (state 1) = Mr.Phase_rep);
  (* drive to completion with alternating fair steps *)
  let rec drain i =
    if i > 200 then Alcotest.fail "round did not complete"
    else if
      Mr.With_quorum.decision (state 0) <> None
      && Mr.With_quorum.decision (state 1) <> None
    then ()
    else begin
      R.Session.step s (i mod 2);
      drain (i + 1)
    end
  in
  drain 0;
  Alcotest.(check (option int)) "p0 decided leader's value" (Some 0)
    (Mr.With_quorum.decision (state 0));
  Alcotest.(check (option int)) "p1 decided leader's value" (Some 0)
    (Mr.With_quorum.decision (state 1));
  Alcotest.(check (option int)) "decided in round 1" (Some 1)
    (Mr.With_quorum.decision_round (state 0))

(* Crash of the initial leader mid-run: the survivors still decide
   once Omega settles on a live process. *)
let test_mr_leader_crash () =
  let n = 4 in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (0, 40) ] in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~seed:1 ~stab_time:80 pattern)
      (Fd.Oracle.sigma ~seed:1 ~stab_time:80 pattern)
  in
  let module R = Sim.Runner.Make (Mr.With_quorum) in
  let run =
    R.exec ~seed:1 ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:(fun p -> p mod 2)
      ~max_steps:6000
      ~stop:(fun st _ ->
        Pset.for_all
          (fun p -> Mr.With_quorum.decision (st p) <> None)
          (Sim.Failure_pattern.correct pattern))
      ()
  in
  Alcotest.(check bool) "decided despite leader crash" true run.R.stopped_early

(* The minimum system: two processes, one may crash. *)
let test_mr_n2 () =
  let r =
    Tutil.sweep mr_quorum ~family:Tutil.benign_sigma
      ~flavour:Consensus.Spec.Uniform ~n:2 ~t_range:[ 1 ] ~seeds ()
  in
  Alcotest.(check bool) "ran" true (r.Tutil.runs > 0)

(* Round-number sanity: with an immediately-stable detector the
   algorithm decides in the first round. *)
let test_mr_one_round_when_stable () =
  let n = 5 in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[] in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~stab_time:0 pattern)
      (Fd.Oracle.sigma ~stab_time:0 pattern)
  in
  let module R = Sim.Runner.Make (Mr.With_quorum) in
  let run =
    R.exec ~seed:0 ~lambda_prob:0.0 ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:(fun _ -> 1)
      ~max_steps:4000
      ~stop:(fun st _ ->
        Pset.for_all (fun p -> Mr.With_quorum.decision (st p) <> None)
          (Pset.full ~n))
      ()
  in
  Array.iter
    (fun st ->
      match Mr.With_quorum.decision_round st with
      | Some r ->
        Alcotest.(check bool) "decided within two rounds" true (r <= 2)
      | None -> Alcotest.fail "undecided")
    run.R.states

(* -------------------------------------------------------------- *)
(* Chandra-Toueg <>S consensus                                     *)
(* -------------------------------------------------------------- *)

let ct_family = Tutil.eventually_strong
let ct = (module Consensus.Ct : Tutil.CONSENSUS)

(* CT solves uniform consensus whenever a majority is correct. *)
let test_ct_uniform_minority_failures () =
  List.iter
    (fun n ->
      let t_max = (n - 1) / 2 in
      if t_max >= 1 then begin
        let r =
          Tutil.sweep ct ~family:ct_family ~flavour:Consensus.Spec.Uniform ~n
            ~t_range:(List.init t_max (fun i -> i + 1))
            ~seeds ()
        in
        Alcotest.(check bool) "ran" true (r.Tutil.runs > 0)
      end)
    [ 3; 4; 5; 7 ]

(* With a late-stabilizing detector the rotation visits bad
   coordinators first; the algorithm still decides afterwards. *)
let test_ct_late_stabilization () =
  let n = 5 in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (0, 20); (4, 60) ] in
  let oracle = Fd.Oracle.eventually_strong ~seed:3 ~stab_time:200 pattern in
  let module R = Sim.Runner.Make (Consensus.Ct) in
  let run =
    R.exec ~seed:3 ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:(fun p -> p mod 2)
      ~max_steps:8000
      ~stop:(fun st _ ->
        Pset.for_all
          (fun p -> Consensus.Ct.decision (st p) <> None)
          (Sim.Failure_pattern.correct pattern))
      ()
  in
  Alcotest.(check bool) "decided" true run.R.stopped_early;
  let outcome =
    Consensus.Spec.outcome ~pattern
      ~proposals:(fun p -> p mod 2)
      ~decisions:(fun p -> Consensus.Ct.decision run.R.states.(p))
  in
  match Consensus.Spec.check Consensus.Spec.Uniform outcome with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* -------------------------------------------------------------- *)
(* Section 6.3 contamination, on every `dune runtest`              *)
(* -------------------------------------------------------------- *)

(* The naive substitution of Sigma-nu quorums into MR is unsafe: the
   scripted Section 6.3 adversary drives two correct processes to
   different decisions under a detector history that provably
   satisfies (Omega, Sigma-nu). *)
let test_contamination_naive_violates () =
  let o = Core.Scenario.contamination_naive_mr () in
  Alcotest.(check bool)
    "nonuniform agreement violated among correct processes" true
    o.Core.Scenario.agreement_violated;
  (match o.Core.Scenario.history_valid with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "the adversary's history must be legal: %a"
      Fd.Check.pp_violation v);
  (* the violation is the one of the paper: p0 and p1 are both
     correct yet decide the two different proposed values *)
  match (o.Core.Scenario.decisions.(0), o.Core.Scenario.decisions.(1)) with
  | Some d0, Some d1 when d0 <> d1 -> ()
  | d0, d1 ->
    Alcotest.failf "expected split correct decisions, got %a / %a"
      Consensus.Value.pp_opt d0 Consensus.Value.pp_opt d1

(* A_nuc does not fall to the same script: some scripted wait never
   completes (a safety mechanism refuses the step), or the script
   runs to completion without an agreement violation. *)
let test_contamination_anuc_resists () =
  let module C = Core.Scenario.Contaminate (Core.Anuc) in
  match C.run () with
  | Error _ -> (* blocked: distrust or quorum-awareness engaged *) ()
  | Ok o ->
    Alcotest.(check bool)
      "A_nuc kept nonuniform agreement under the Sec-6.3 script" false
      o.Core.Scenario.agreement_violated

(* ... while the doubly-ablated skeleton demonstrably falls,
   pinning that the mechanisms (not the script) are what resist. *)
let test_contamination_ablated_falls () =
  let o = Core.Scenario.contamination_anuc_unsafe () in
  Alcotest.(check bool)
    "A_nuc without distrust+awareness violates NU agreement" true
    o.Core.Scenario.agreement_violated;
  match o.Core.Scenario.history_valid with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "the adversary's history must be legal: %a"
      Fd.Check.pp_violation v

(* MR-Sigma solves uniform consensus on universes drawn from the
   shared generator (shrinking lands on a minimal crash schedule). *)
let prop_mr_sigma_generated_universes =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"MR-Sigma uniform on generated universes"
       ~count:25
       (QCheck.pair
          (Tutil.arb_universe ~min_n:2 ~max_n:6 ~crash_window:100 ())
          QCheck.(int_range 0 10_000))
       (fun (u, seed) ->
         let pattern = Tutil.universe_pattern u in
         let _, _, check, _ =
           Tutil.run_once
             (module Consensus.Mr.With_quorum)
             ~family:Tutil.benign_sigma ~flavour:Consensus.Spec.Uniform
             ~pattern ~seed ~max_steps:6000 ()
         in
         Result.is_ok check))

let () =
  Alcotest.run "consensus"
    [
      ( "spec",
        [
          Alcotest.test_case "termination" `Quick test_spec_termination;
          Alcotest.test_case "agreement flavours" `Quick
            test_spec_agreement_flavours;
          Alcotest.test_case "validity" `Quick test_spec_validity;
        ] );
      ( "contamination",
        [
          Alcotest.test_case "naive MR+Sigma-nu violates (Sec 6.3)" `Quick
            test_contamination_naive_violates;
          Alcotest.test_case "A_nuc resists the script" `Quick
            test_contamination_anuc_resists;
          Alcotest.test_case "doubly-ablated skeleton falls" `Quick
            test_contamination_ablated_falls;
        ] );
      ( "chandra-toueg",
        [
          Alcotest.test_case "uniform, minority failures" `Slow
            test_ct_uniform_minority_failures;
          Alcotest.test_case "late stabilization" `Quick
            test_ct_late_stabilization;
        ] );
      ( "mostefaoui-raynal",
        [
          Alcotest.test_case "majority mode, minority failures" `Slow
            test_mr_majority_minority_failures;
          Alcotest.test_case "sigma mode, any failures" `Slow
            test_mr_sigma_any_failures;
          Alcotest.test_case "unanimous validity" `Quick
            test_mr_validity_unanimous;
          Alcotest.test_case "phase walk (scripted)" `Quick test_mr_phase_walk;
          Alcotest.test_case "leader crash" `Quick test_mr_leader_crash;
          Alcotest.test_case "n = 2" `Quick test_mr_n2;
          Alcotest.test_case "fast decision when stable" `Quick
            test_mr_one_round_when_stable;
          prop_mr_sigma_generated_universes;
        ] );
    ]
