(* Shared helpers for the consensus and core test suites: run a
   consensus automaton under a given oracle family over randomized
   patterns and seeds, evaluate the problem's properties, and the one
   shared definition of a randomly generated environment/failure
   pattern for qcheck properties. *)
open Procset

module type CONSENSUS = sig
  include Sim.Automaton.S with type input = Consensus.Value.t

  val decision : state -> Consensus.Value.t option
end

(* Which (Omega, quorum) oracle pair drives a run. *)
type oracle_family = {
  family_name : string;
  make : seed:int -> Sim.Failure_pattern.t -> Fd.Oracle.t;
}

let benign_nu_plus =
  {
    family_name = "benign (omega-random, sigma-nu+-arbitrary)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed pattern)
          (Fd.Oracle.sigma_nu_plus ~seed pattern));
  }

let adversarial_nu_plus =
  {
    family_name = "adversarial (omega-faulty-first, sigma-nu+-split)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed ~prestab:Fd.Oracle.Omega_faulty_first pattern)
          (Fd.Oracle.sigma_nu_plus ~seed ~faulty_mode:Fd.Oracle.Faulty_split
             pattern));
  }

let benign_sigma =
  {
    family_name = "benign (omega-random, sigma-pivot)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed pattern)
          (Fd.Oracle.sigma ~seed pattern));
  }

let benign_nu =
  {
    family_name = "benign (omega-random, sigma-nu-arbitrary)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed pattern)
          (Fd.Oracle.sigma_nu ~seed pattern));
  }

let adversarial_nu =
  {
    family_name = "adversarial (omega-faulty-first, sigma-nu-split)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed ~prestab:Fd.Oracle.Omega_faulty_first pattern)
          (Fd.Oracle.sigma_nu ~seed ~faulty_mode:Fd.Oracle.Faulty_split
             pattern));
  }

let eventually_strong =
  {
    family_name = "<>S";
    make = (fun ~seed pattern -> Fd.Oracle.eventually_strong ~seed pattern);
  }

type sweep_result = {
  runs : int;
  undecided_runs : int;  (** runs where some correct process never decided *)
  steps_total : int;
}

(* Run [A] once; return Ok (steps, outcome-check result). *)
let run_once (type st) (module A : CONSENSUS with type state = st) ~family
    ~flavour ~pattern ~seed ~max_steps () =
  let module R = Sim.Runner.Make (A) in
  let proposals p = (p + seed) mod 2 in
  let oracle = family.make ~seed pattern in
  let correct = Sim.Failure_pattern.correct pattern in
  let run =
    R.exec ~seed ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:proposals ~max_steps
      ~stop:(fun st _ ->
        Pset.for_all (fun p -> A.decision (st p) <> None) correct)
      ()
  in
  let outcome =
    Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
        A.decision run.R.states.(p))
  in
  let agreement_validity =
    (* check agreement and validity even on runs that timed out *)
    Result.bind (Consensus.Spec.check_validity outcome) (fun () ->
        Consensus.Spec.check_agreement flavour outcome)
  in
  (run.R.step_count, run.R.stopped_early, agreement_validity, outcome)

(* Sweep a consensus algorithm over patterns of E_t for every t in
   [t_range] and all [seeds]; fails the alcotest on any violation of
   agreement or validity, and on missed termination. *)
let sweep (module A : CONSENSUS) ~family ~flavour ~n ~t_range ~seeds
    ?(max_steps = 6000) () =
  let runs = ref 0 and undecided = ref 0 and steps = ref 0 in
  List.iter
    (fun t ->
      let env = Sim.Env.make ~n ~max_faulty:t in
      List.iter
        (fun seed ->
          let rng = Random.State.make [| seed; n; t |] in
          let pattern = Sim.Env.random_pattern rng ~crash_window:120 env in
          let step_count, decided, check, _ =
            run_once (module A) ~family ~flavour ~pattern ~seed ~max_steps ()
          in
          incr runs;
          steps := !steps + step_count;
          (match check with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s / %s / n=%d t=%d seed=%d (%a): %s" A.name
              family.family_name n t seed Sim.Failure_pattern.pp pattern e);
          if not decided then begin
            incr undecided;
            Alcotest.failf "%s / %s / n=%d t=%d seed=%d (%a): timed out \
                            after %d steps without full decision"
              A.name family.family_name n t seed Sim.Failure_pattern.pp
              pattern step_count
          end)
        seeds)
    t_range;
  { runs = !runs; undecided_runs = !undecided; steps_total = !steps }

(* -------------------------------------------------------------- *)
(* QCheck generators for environments and failure patterns        *)
(* -------------------------------------------------------------- *)

(* A randomly generated universe: an environment E_t(n) together with
   the crash times of one admissible pattern (distinct pids, at most
   t of them, never everybody). The sim, fd and consensus suites all
   generate their patterns through this one definition, so they agree
   on what "a random admissible pattern" means — and share its
   shrinker: counterexamples lose crashes first, then crash times
   shrink toward 0 (the harshest schedule), which keeps the universe
   in the same environment while it shrinks. *)
type universe = {
  u_n : int;
  u_t : int;  (* the bound of the environment E_t *)
  u_crashes : (Pid.t * int) list;  (* (pid, crash time); pids distinct *)
}

let universe_env u = Sim.Env.make ~n:u.u_n ~max_faulty:u.u_t
let universe_pattern u = Sim.Failure_pattern.make ~n:u.u_n ~crashes:u.u_crashes

let print_universe u =
  Printf.sprintf "{n=%d; t=%d; crashes=[%s]}" u.u_n u.u_t
    (String.concat "; "
       (List.map (fun (p, t) -> Printf.sprintf "p%d@%d" p t) u.u_crashes))

let universe_gen ?(min_n = 2) ?(max_n = 8) ?(majority_correct = false)
    ?(crash_window = 120) () =
  let open QCheck.Gen in
  int_range min_n max_n >>= fun n ->
  let t_max = if majority_correct then (n - 1) / 2 else n - 1 in
  int_range 0 t_max >>= fun t ->
  (* one independent coin and crash time per process, keeping the
     first t heads: every crash set of size <= t is reachable *)
  list_repeat n (pair bool (int_bound crash_window)) >>= fun coins ->
  let picked = ref 0 in
  let crashes =
    List.concat
      (List.mapi
         (fun p (heads, time) ->
           if heads && !picked < t then begin
             incr picked;
             [ (p, time) ]
           end
           else [])
         coins)
  in
  return { u_n = n; u_t = t; u_crashes = crashes }

let shrink_universe u =
  let open QCheck.Iter in
  QCheck.Shrink.list
    ~shrink:(fun (p, t) -> QCheck.Shrink.int t >|= fun t' -> (p, t'))
    u.u_crashes
  >|= fun crashes -> { u with u_crashes = crashes }

let arb_universe ?min_n ?max_n ?majority_correct ?crash_window () =
  QCheck.make ~print:print_universe ~shrink:shrink_universe
    (universe_gen ?min_n ?max_n ?majority_correct ?crash_window ())

(* -------------------------------------------------------------- *)
(* Replay round-trips                                             *)
(* -------------------------------------------------------------- *)

(* Execute one recorded run of [A] and round-trip it through
   [Runner.replay]: true iff the run decided, the recorded trace is
   applicable, and the replayed states reproduce every final
   decision (vacuously true if the run hit [max_steps] undecided —
   the generators can produce patterns too harsh for the budget). *)
let replay_roundtrips (type st) (module A : CONSENSUS with type state = st)
    ~family ~seed ~pattern ?(max_steps = 6000) () =
  let module R = Sim.Runner.Make (A) in
  let n = Sim.Failure_pattern.n pattern in
  let correct = Sim.Failure_pattern.correct pattern in
  let inputs p = (p + seed) mod 2 in
  let oracle = family.make ~seed pattern in
  let run =
    R.exec ~seed ~pattern ~fd:oracle.Fd.Oracle.query ~inputs ~max_steps
      ~stop:(fun st _ ->
        Pset.for_all (fun p -> A.decision (st p) <> None) correct)
      ()
  in
  (not run.R.stopped_early)
  ||
  match R.replay ~n ~inputs (R.to_replay (Array.to_list run.R.steps)) with
  | Error _ -> false
  | Ok states ->
    List.for_all
      (fun p -> A.decision states.(p) = A.decision run.R.states.(p))
      (List.init n Fun.id)
