(* Shared helpers for the consensus and core test suites: run a
   consensus automaton under a given oracle family over randomized
   patterns and seeds, evaluate the problem's properties, and the one
   shared definition of a randomly generated environment/failure
   pattern for qcheck properties. *)
open Procset

module type CONSENSUS = sig
  include Sim.Automaton.S with type input = Consensus.Value.t

  val decision : state -> Consensus.Value.t option
end

(* Which (Omega, quorum) oracle pair drives a run. *)
type oracle_family = {
  family_name : string;
  make : seed:int -> Sim.Failure_pattern.t -> Fd.Oracle.t;
}

let benign_nu_plus =
  {
    family_name = "benign (omega-random, sigma-nu+-arbitrary)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed pattern)
          (Fd.Oracle.sigma_nu_plus ~seed pattern));
  }

let adversarial_nu_plus =
  {
    family_name = "adversarial (omega-faulty-first, sigma-nu+-split)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed ~prestab:Fd.Oracle.Omega_faulty_first pattern)
          (Fd.Oracle.sigma_nu_plus ~seed ~faulty_mode:Fd.Oracle.Faulty_split
             pattern));
  }

let benign_sigma =
  {
    family_name = "benign (omega-random, sigma-pivot)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed pattern)
          (Fd.Oracle.sigma ~seed pattern));
  }

let benign_nu =
  {
    family_name = "benign (omega-random, sigma-nu-arbitrary)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed pattern)
          (Fd.Oracle.sigma_nu ~seed pattern));
  }

let adversarial_nu =
  {
    family_name = "adversarial (omega-faulty-first, sigma-nu-split)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed ~prestab:Fd.Oracle.Omega_faulty_first pattern)
          (Fd.Oracle.sigma_nu ~seed ~faulty_mode:Fd.Oracle.Faulty_split
             pattern));
  }

let eventually_strong =
  {
    family_name = "<>S";
    make = (fun ~seed pattern -> Fd.Oracle.eventually_strong ~seed pattern);
  }

type sweep_result = {
  runs : int;
  undecided_runs : int;  (** runs where some correct process never decided *)
  steps_total : int;
}

(* Run [A] once; return Ok (steps, outcome-check result). *)
let run_once (type st) (module A : CONSENSUS with type state = st) ~family
    ~flavour ~pattern ~seed ~max_steps () =
  let module R = Sim.Runner.Make (A) in
  let proposals p = (p + seed) mod 2 in
  let oracle = family.make ~seed pattern in
  let correct = Sim.Failure_pattern.correct pattern in
  let run =
    R.exec ~seed ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:proposals ~max_steps
      ~stop:(fun st _ ->
        Pset.for_all (fun p -> A.decision (st p) <> None) correct)
      ()
  in
  let outcome =
    Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
        A.decision run.R.states.(p))
  in
  let agreement_validity =
    (* check agreement and validity even on runs that timed out *)
    Result.bind (Consensus.Spec.check_validity outcome) (fun () ->
        Consensus.Spec.check_agreement flavour outcome)
  in
  (run.R.step_count, run.R.stopped_early, agreement_validity, outcome)

(* Sweep a consensus algorithm over patterns of E_t for every t in
   [t_range] and all [seeds]; fails the alcotest on any violation of
   agreement or validity, and on missed termination. *)
let sweep (module A : CONSENSUS) ~family ~flavour ~n ~t_range ~seeds
    ?(max_steps = 6000) () =
  let runs = ref 0 and undecided = ref 0 and steps = ref 0 in
  List.iter
    (fun t ->
      let env = Sim.Env.make ~n ~max_faulty:t in
      List.iter
        (fun seed ->
          let rng = Random.State.make [| seed; n; t |] in
          let pattern = Sim.Env.random_pattern rng ~crash_window:120 env in
          let step_count, decided, check, _ =
            run_once (module A) ~family ~flavour ~pattern ~seed ~max_steps ()
          in
          incr runs;
          steps := !steps + step_count;
          (match check with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s / %s / n=%d t=%d seed=%d (%a): %s" A.name
              family.family_name n t seed Sim.Failure_pattern.pp pattern e);
          if not decided then begin
            incr undecided;
            Alcotest.failf "%s / %s / n=%d t=%d seed=%d (%a): timed out \
                            after %d steps without full decision"
              A.name family.family_name n t seed Sim.Failure_pattern.pp
              pattern step_count
          end)
        seeds)
    t_range;
  { runs = !runs; undecided_runs = !undecided; steps_total = !steps }

(* -------------------------------------------------------------- *)
(* QCheck generators for environments and failure patterns        *)
(* -------------------------------------------------------------- *)

(* A randomly generated universe: an environment E_t(n) together with
   the crash times of one admissible pattern (distinct pids, at most
   t of them, never everybody). The sim, fd and consensus suites all
   generate their patterns through this one definition, so they agree
   on what "a random admissible pattern" means — and share its
   shrinker: counterexamples lose crashes first, then crash times
   shrink toward 0 (the harshest schedule), which keeps the universe
   in the same environment while it shrinks. *)
type universe = {
  u_n : int;
  u_t : int;  (* the bound of the environment E_t *)
  u_crashes : (Pid.t * int) list;  (* (pid, crash time); pids distinct *)
}

let universe_env u = Sim.Env.make ~n:u.u_n ~max_faulty:u.u_t
let universe_pattern u = Sim.Failure_pattern.make ~n:u.u_n ~crashes:u.u_crashes

let print_universe u =
  Printf.sprintf "{n=%d; t=%d; crashes=[%s]}" u.u_n u.u_t
    (String.concat "; "
       (List.map (fun (p, t) -> Printf.sprintf "p%d@%d" p t) u.u_crashes))

let universe_gen ?(min_n = 2) ?(max_n = 8) ?(majority_correct = false)
    ?(crash_window = 120) () =
  let open QCheck.Gen in
  int_range min_n max_n >>= fun n ->
  let t_max = if majority_correct then (n - 1) / 2 else n - 1 in
  int_range 0 t_max >>= fun t ->
  (* one independent coin and crash time per process, keeping the
     first t heads: every crash set of size <= t is reachable *)
  list_repeat n (pair bool (int_bound crash_window)) >>= fun coins ->
  let picked = ref 0 in
  let crashes =
    List.concat
      (List.mapi
         (fun p (heads, time) ->
           if heads && !picked < t then begin
             incr picked;
             [ (p, time) ]
           end
           else [])
         coins)
  in
  return { u_n = n; u_t = t; u_crashes = crashes }

(* Shrinking order matters for readable counterexamples: first fewer
   crashes / earlier crash times (the harshest schedule in the same
   universe), then fewer processes (dropping the tail pids and any of
   their crashes), then a tighter environment bound. Every shrunk
   value stays admissible: pids < n, |crashes| <= t <= n - 1. *)
let shrink_universe u =
  let open QCheck.Iter in
  let crashes_iter =
    QCheck.Shrink.list
      ~shrink:(fun (p, t) -> QCheck.Shrink.int t >|= fun t' -> (p, t'))
      u.u_crashes
    >|= fun crashes -> { u with u_crashes = crashes }
  in
  let n_iter =
    QCheck.Shrink.int u.u_n
    |> filter (fun n' -> n' >= 2)
    >|= fun n' ->
    let crashes = List.filter (fun (p, _) -> p < n') u.u_crashes in
    { u_n = n'; u_t = min u.u_t (n' - 1); u_crashes = crashes }
  in
  let t_iter =
    QCheck.Shrink.int u.u_t
    |> filter (fun t' -> t' >= List.length u.u_crashes)
    >|= fun t' -> { u with u_t = t' }
  in
  crashes_iter <+> n_iter <+> t_iter

let arb_universe ?min_n ?max_n ?majority_correct ?crash_window () =
  QCheck.make ~print:print_universe ~shrink:shrink_universe
    (universe_gen ?min_n ?max_n ?majority_correct ?crash_window ())

(* -------------------------------------------------------------- *)
(* Replay round-trips                                             *)
(* -------------------------------------------------------------- *)

(* Execute one recorded run of [A] and round-trip it through
   [Runner.replay]: true iff the run decided, the recorded trace is
   applicable, and the replayed states reproduce every final
   decision (vacuously true if the run hit [max_steps] undecided —
   the generators can produce patterns too harsh for the budget). *)
let replay_roundtrips (type st) (module A : CONSENSUS with type state = st)
    ~family ~seed ~pattern ?(max_steps = 6000) () =
  let module R = Sim.Runner.Make (A) in
  let n = Sim.Failure_pattern.n pattern in
  let correct = Sim.Failure_pattern.correct pattern in
  let inputs p = (p + seed) mod 2 in
  let oracle = family.make ~seed pattern in
  let run =
    R.exec ~seed ~pattern ~fd:oracle.Fd.Oracle.query ~inputs ~max_steps
      ~stop:(fun st _ ->
        Pset.for_all (fun p -> A.decision (st p) <> None) correct)
      ()
  in
  (not run.R.stopped_early)
  ||
  match R.replay ~n ~inputs (R.to_replay (Array.to_list run.R.steps)) with
  | Error _ -> false
  | Ok states ->
    List.for_all
      (fun p -> A.decision states.(p) = A.decision run.R.states.(p))
      (List.init n Fun.id)

(* -------------------------------------------------------------- *)
(* QCheck generators for fault specs and schedule prefixes        *)
(* -------------------------------------------------------------- *)

(* A random fault spec over n processes: rates on a coarse grid (so
   counterexamples print as round numbers), a small reorder window,
   and up to two partition windows whose groups 2-color the pid
   space (uncolored pids belong to no group and are cut off from
   everyone while the window is active). *)
let partition_gen ~n =
  let open QCheck.Gen in
  int_bound 80 >>= fun from_t ->
  int_bound 40 >>= fun width ->
  list_repeat n (int_bound 2) >>= fun colors ->
  let group c =
    Pset.of_list
      (List.concat
         (List.mapi (fun p cp -> if cp = c then [ p ] else []) colors))
  in
  let groups =
    List.filter (fun g -> not (Pset.is_empty g)) [ group 0; group 1 ]
  in
  return { Sim.Faults.from_t; until_t = from_t + width; groups }

let faults_gen ~n =
  let open QCheck.Gen in
  int_bound 4 >>= fun drop20 ->
  int_bound 4 >>= fun dup20 ->
  int_bound 3 >>= fun reorder ->
  int_bound 1000 >>= fun seed ->
  list_size (int_bound 2) (partition_gen ~n) >>= fun partitions ->
  return
    (Sim.Faults.make
       ~drop:(float_of_int drop20 /. 20.0)
       ~dup:(float_of_int dup20 /. 20.0)
       ~reorder ~partitions ~seed ())

let print_faults f = Format.asprintf "%a" Sim.Faults.pp f

(* Remove whole fault dimensions first (no partitions, no drops, no
   dups, no reordering), then shrink partition windows: drop a
   window, then narrow one toward its start time. A counterexample
   that survives this is minimal in a useful sense: every remaining
   fault dimension and every remaining window-step is load-bearing. *)
let shrink_faults (f : Sim.Faults.t) =
  let open QCheck.Iter in
  let rebuild ?(drop = f.Sim.Faults.drop) ?(dup = f.Sim.Faults.dup)
      ?(reorder = f.Sim.Faults.reorder)
      ?(partitions = f.Sim.Faults.partitions) () =
    Sim.Faults.make ~drop ~dup ~reorder ~partitions ~seed:f.Sim.Faults.seed ()
  in
  let zero_dims =
    append_l
      [
        (if f.Sim.Faults.partitions <> [] then
           return (rebuild ~partitions:[] ())
         else empty);
        (if f.Sim.Faults.drop > 0.0 then return (rebuild ~drop:0.0 ())
         else empty);
        (if f.Sim.Faults.dup > 0.0 then return (rebuild ~dup:0.0 ())
         else empty);
        (if f.Sim.Faults.reorder > 0 then return (rebuild ~reorder:0 ())
         else empty);
      ]
  in
  let shrink_partition (pt : Sim.Faults.partition) =
    QCheck.Shrink.int (pt.Sim.Faults.until_t - pt.Sim.Faults.from_t)
    >|= fun width ->
    { pt with Sim.Faults.until_t = pt.Sim.Faults.from_t + width }
  in
  let narrowed =
    QCheck.Shrink.list ~shrink:shrink_partition f.Sim.Faults.partitions
    >|= fun partitions -> rebuild ~partitions ()
  in
  zero_dims <+> narrowed

let arb_faults ~n =
  QCheck.make ~print:print_faults ~shrink:shrink_faults (faults_gen ~n)

(* A schedule prefix: which process is scheduled at each slot.
   Shrinks by dropping slots, then by lowering pids — so a failing
   scheduling property reports the shortest, lowest-numbered
   activation sequence that still fails. *)
let schedule_gen ~n ~len =
  QCheck.Gen.(list_size (int_bound len) (int_bound (n - 1)))

let print_schedule s =
  String.concat " " (List.map (Printf.sprintf "p%d") s)

let shrink_schedule s = QCheck.Shrink.list ~shrink:QCheck.Shrink.int s

let arb_schedule ~n ~len =
  QCheck.make ~print:print_schedule ~shrink:shrink_schedule
    (schedule_gen ~n ~len)

(* -------------------------------------------------------------- *)
(* Meta-test support: run a qcheck cell and hand back the shrunk   *)
(* counterexample, so a test can assert on the *reporting* itself  *)
(* -------------------------------------------------------------- *)

(* Runs [prop] over [arb] with a fixed RNG and returns the fully
   shrunk counterexample, or [None] if the property never failed.
   This is how the shrinkers above are themselves tested: seed a
   property that must fail, then pin what the report shows. *)
let shrunk_counterexample ?(count = 200) ~seed arb prop =
  let cell = QCheck.Test.make_cell ~count arb prop in
  let res =
    QCheck.Test.check_cell ~rand:(Random.State.make [| seed |]) cell
  in
  match QCheck.TestResult.get_state res with
  | QCheck.TestResult.Failed { instances = cx :: _ } ->
    Some cx.QCheck.TestResult.instance
  | _ -> None

(* -------------------------------------------------------------- *)
(* QCheck generators for quorum families and weight vectors       *)
(* -------------------------------------------------------------- *)

(* A generated quorum family, kept as a data spec so counterexamples
   print and shrink structurally; [spec_family] instantiates the
   first-class module. Every generated spec fits its universe: the
   instantiated family always passes [Quorum_family.validate]'s shape
   check at the [n] it was generated for. *)
type family_spec =
  | Sp_majority
  | Sp_super of int  (* f, with the threshold fitting the universe *)
  | Sp_weighted of int list  (* length n, nonnegative, total > 0 *)
  | Sp_grid of int * int  (* rows x cols = n exactly *)

let spec_family = function
  | Sp_majority -> Quorum_family.majority
  | Sp_super f -> Quorum_family.supermajority ~f
  | Sp_weighted ws -> Quorum_family.weighted ~weights:ws
  | Sp_grid (r, c) -> Quorum_family.grid ~rows:r ~cols:c ()

let print_family_spec s = Quorum_family.name (spec_family s)

(* Weight vectors for the weighted-vote family: [n] entries in
   [0, 4] with the first forced positive, so the total is always
   positive and the spec always fits. Shrinks pointwise toward 1 —
   the all-ones vector is the degenerate case that must behave
   exactly like majority, so a surviving counterexample shows which
   weight asymmetry is load-bearing. *)
let weights_gen ~n =
  QCheck.Gen.(
    map2
      (fun w0 rest -> (1 + w0) :: rest)
      (int_bound 3)
      (list_repeat (n - 1) (int_bound 4)))

let shrink_weights ws =
  let open QCheck.Iter in
  QCheck.Shrink.list_elems
    (fun w -> if w > 1 then return 1 else empty)
    ws
  |> filter (fun ws' -> List.exists (fun w -> w > 0) ws')

let arb_weights ~n =
  QCheck.make
    ~print:(fun ws -> String.concat "," (List.map string_of_int ws))
    ~shrink:shrink_weights (weights_gen ~n)

(* All family specs that fit a universe of size [n]: majority,
   every supermajority whose threshold fits, every exact grid
   tiling, and random weight vectors. *)
let family_spec_gen ~n =
  let open QCheck.Gen in
  let supers = List.init (max 1 (n - 1)) (fun f -> Sp_super f) in
  let grids =
    List.concat
      (List.init n (fun i ->
           let r = i + 1 in
           if n mod r = 0 then [ Sp_grid (r, n / r) ] else []))
  in
  frequency
    [
      (1, return Sp_majority);
      (2, oneofl supers);
      (2, oneofl grids);
      (3, weights_gen ~n >|= fun ws -> Sp_weighted ws);
    ]

(* Shrink toward majority — the reference family every law treats as
   the degenerate case — then shrink the parameters themselves
   (smaller f, flatter weights). *)
let shrink_family_spec s =
  let open QCheck.Iter in
  match s with
  | Sp_majority -> empty
  | Sp_super f ->
    return Sp_majority <+> (QCheck.Shrink.int f >|= fun f' -> Sp_super f')
  | Sp_weighted ws ->
    return Sp_majority <+> (shrink_weights ws >|= fun ws' -> Sp_weighted ws')
  | Sp_grid _ -> return Sp_majority

let arb_family_spec ~n =
  QCheck.make ~print:print_family_spec ~shrink:shrink_family_spec
    (family_spec_gen ~n)
