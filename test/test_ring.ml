(* The lock-free mailbox and everything stacked on it: Sim.Ring unit
   and model tests, the mutex-vs-ring transport differential battery,
   the Load-level decided-log equivalence at jobs = 1, the snapshot
   store, and the executor's idle/backoff behavior. *)

(* ---------------------------------------------------------------- *)
(* Sim.Ring: unit tests                                              *)
(* ---------------------------------------------------------------- *)

let test_capacity_rounding () =
  Alcotest.(check int) "5 rounds to 8" 8 Sim.Ring.(capacity (create ~capacity:5));
  Alcotest.(check int) "8 stays 8" 8 Sim.Ring.(capacity (create ~capacity:8));
  Alcotest.(check int) "1 clamps to 2" 2 Sim.Ring.(capacity (create ~capacity:1));
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity must be > 0") (fun () ->
      ignore (Sim.Ring.create ~capacity:0))

let drain r =
  let rec go acc =
    match Sim.Ring.pop r with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []

let test_fifo_within_capacity () =
  let r = Sim.Ring.create ~capacity:8 in
  for i = 1 to 8 do
    Sim.Ring.push r i
  done;
  Alcotest.(check int) "length" 8 (Sim.Ring.length r);
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3; 4; 5; 6; 7; 8 ] (drain r);
  Alcotest.(check (option int)) "empty after drain" None (Sim.Ring.pop r);
  Alcotest.(check int) "no overflow" 0 (Sim.Ring.overflows r);
  Alcotest.(check int) "no locks on the fast path" 0 (Sim.Ring.lock_ops r)

let test_overflow_preserves_fifo () =
  let r = Sim.Ring.create ~capacity:2 in
  for i = 1 to 20 do
    Sim.Ring.push r i
  done;
  Alcotest.(check bool) "pushes spilled" true (Sim.Ring.overflows r > 0);
  Alcotest.(check bool) "spills took the lock" true (Sim.Ring.lock_ops r > 0);
  Alcotest.(check (list int))
    "global FIFO across the spill boundary"
    (List.init 20 (fun i -> i + 1))
    (drain r)

let test_wraparound_laps () =
  (* a push/pop cadence that laps the ring many times over, mixing
     ring-resident and overflow phases *)
  let r = Sim.Ring.create ~capacity:4 in
  let next = ref 0 and expect = ref 0 in
  for round = 1 to 50 do
    for _ = 1 to 1 + (round mod 7) do
      incr next;
      Sim.Ring.push r !next
    done;
    for _ = 1 to round mod 5 do
      match Sim.Ring.pop r with
      | None -> ()
      | Some v ->
        incr expect;
        Alcotest.(check int) "in-order across laps" !expect v
    done
  done;
  List.iter
    (fun v ->
      incr expect;
      Alcotest.(check int) "tail in order" !expect v)
    (drain r);
  Alcotest.(check int) "conservation: all pushed were popped" !next !expect

let test_to_list_nondestructive () =
  let r = Sim.Ring.create ~capacity:4 in
  for i = 1 to 6 do
    Sim.Ring.push r i
  done;
  Alcotest.(check (list int))
    "to_list sees ring then overflow, oldest first"
    [ 1; 2; 3; 4; 5; 6 ] (Sim.Ring.to_list r);
  Alcotest.(check (list int)) "contents untouched" [ 1; 2; 3; 4; 5; 6 ] (drain r)

(* Sequential model check: any interleaving of pushes and pops agrees
   with a plain FIFO queue, for any capacity — the overflow fallback
   must be unobservable through the push/pop interface. *)
let test_qcheck_queue_model =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"ring = FIFO queue (sequential, any capacity)"
       ~count:300
       QCheck.(pair (int_range 1 9) (small_list bool))
       (fun (capacity, script) ->
         let r = Sim.Ring.create ~capacity in
         let q = Queue.create () in
         let next = ref 0 in
         List.for_all
           (fun is_push ->
             if is_push then (
               incr next;
               Sim.Ring.push r !next;
               Queue.push !next q;
               true)
             else
               match (Sim.Ring.pop r, Queue.take_opt q) with
               | None, None -> true
               | Some a, Some b -> a = b
               | _ -> false)
           script
         && drain r = List.of_seq (Queue.to_seq q)))

(* Two producer domains, one consumer: every message arrives exactly
   once and each producer's stream stays in order — the MPSC contract
   under real parallelism, with a capacity small enough to exercise
   the CAS race and the overflow path together. *)
let test_two_producer_stress () =
  let per_producer = 5_000 in
  let r = Sim.Ring.create ~capacity:8 in
  let producer id =
    Domain.spawn (fun () ->
        for i = 0 to per_producer - 1 do
          Sim.Ring.push r ((id * per_producer) + i)
        done)
  in
  let d0 = producer 0 and d1 = producer 1 in
  let seen = Array.make (2 * per_producer) false in
  let last = [| -1; -1 |] in
  let received = ref 0 in
  while !received < 2 * per_producer do
    match Sim.Ring.pop r with
    | None -> Domain.cpu_relax ()
    | Some v ->
      incr received;
      Alcotest.(check bool) "no duplicate" false seen.(v);
      seen.(v) <- true;
      let id = v / per_producer in
      Alcotest.(check bool)
        (Printf.sprintf "producer %d in order" id)
        true
        (v > last.(id));
      last.(id) <- v
  done;
  Domain.join d0;
  Domain.join d1;
  Alcotest.(check (option int)) "nothing left" None (Sim.Ring.pop r)

(* ---------------------------------------------------------------- *)
(* Transport differential: mutex oracle vs ring                      *)
(* ---------------------------------------------------------------- *)

type op = Send of int * int * int | Tick | Recv of int

module Drive (T : Sim.Transport.CONCURRENT) = struct
  (* Replays a single-domain script and returns every observable:
     the receive sequence, the post-run undelivered set, and the
     conservation counters. *)
  let run ~faults ~capacity script =
    let t = T.create ~capacity ~n:3 ~faults () in
    let recvs = ref [] in
    List.iter
      (function
        | Send (src, dst, v) -> T.send t ~src [ (dst, v) ]
        | Tick -> ignore (T.tick t)
        | Recv p -> (
          match T.recv t p with
          | None -> recvs := (p, None) :: !recvs
          | Some e ->
            T.note_delivered t;
            recvs :=
              (p, Some (e.Sim.Envelope.src, e.Sim.Envelope.seq, e.Sim.Envelope.payload))
              :: !recvs))
      script;
    let undelivered =
      List.sort compare
        (List.map
           (fun e ->
             ( e.Sim.Envelope.dst,
               e.Sim.Envelope.src,
               e.Sim.Envelope.seq,
               e.Sim.Envelope.payload ))
           (T.undelivered t))
    in
    (List.rev !recvs, undelivered, T.stats t)
end

module Drive_mutex = Drive (Sim.Transport.Concurrent)
module Drive_ring = Drive (Sim.Transport.Ring)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun s d v -> Send (s, d, v)) (int_bound 2) (int_bound 2) nat);
        (2, return Tick);
        (4, map (fun p -> Recv p) (int_bound 2));
      ])

let op_print = function
  | Send (s, d, v) -> Printf.sprintf "Send(%d,%d,%d)" s d v
  | Tick -> "Tick"
  | Recv p -> Printf.sprintf "Recv %d" p

let script_arb =
  QCheck.make
    ~print:(fun (cap, drop, dup, ops) ->
      Printf.sprintf "cap=%d drop=%b dup=%b [%s]" cap drop dup
        (String.concat "; " (List.map op_print ops)))
    QCheck.Gen.(
      quad (int_range 1 4) bool bool (list_size (int_bound 60) op_gen))

let conservation (s : Sim.Transport.stats) undelivered_len =
  s.Sim.Transport.sent - s.Sim.Transport.dropped + s.Sim.Transport.duplicated
  = s.Sim.Transport.delivered + undelivered_len

(* The pin: on any fault spec both backends support (no reordering),
   a single-domain script is observationally identical on the mutex
   and ring transports — same receive sequence envelope by envelope,
   same leftover messages, same fault verdicts — and both satisfy the
   conservation law. A tiny ring capacity keeps the overflow path in
   constant use. *)
let test_qcheck_transport_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"mutex and ring transports are equivalent"
       ~count:300 script_arb
       (fun (capacity, drop, dup, script) ->
         let faults =
           if not (drop || dup) then Sim.Faults.none
           else
             Sim.Faults.make
               ~drop:(if drop then 0.2 else 0.)
               ~dup:(if dup then 0.2 else 0.)
               ~seed:7 ()
         in
         let m_recvs, m_left, m_stats =
           Drive_mutex.run ~faults ~capacity script
         in
         let r_recvs, r_left, r_stats = Drive_ring.run ~faults ~capacity script in
         m_recvs = r_recvs && m_left = r_left
         && m_stats.Sim.Transport.sent = r_stats.Sim.Transport.sent
         && m_stats.Sim.Transport.dropped = r_stats.Sim.Transport.dropped
         && m_stats.Sim.Transport.duplicated = r_stats.Sim.Transport.duplicated
         && m_stats.Sim.Transport.delivered = r_stats.Sim.Transport.delivered
         && conservation m_stats (List.length m_left)
         && conservation r_stats (List.length r_left)))

let test_ring_rejects_reorder () =
  let faults = Sim.Faults.make ~reorder:2 ~seed:1 () in
  Alcotest.check_raises "reorder spec rejected"
    (Invalid_argument
       "ring: reorder faults need indexed mailbox insertion; use the mutex \
        transport") (fun () ->
      ignore (Sim.Transport.Ring.create ~n:3 ~faults ()))

(* ---------------------------------------------------------------- *)
(* Load-level differential: same decided log at jobs = 1             *)
(* ---------------------------------------------------------------- *)

let serve_cfg =
  {
    Load.default with
    n = 3;
    clients = 6;
    commands_per_client = 4;
    window = 4;
    target_slots = 20;
    max_steps = 300_000;
    seed = 11;
    continuous_check = true;
    reads = 200;
    read_mode = Load.Read_snapshot;
    publish_every = 4;
  }

(* At jobs = 1 the executor's schedule is fully sequential and
   identical for both transports, so the runs must agree on every
   deterministic observable — including the read digest, which folds
   each served read's (digest, version). *)
let test_load_jobs1_transport_equivalence () =
  let run transport = Load.run_exec ~jobs:1 { serve_cfg with transport } in
  let m = run Sim.Executor.Mutex in
  let r = run Sim.Executor.Ring in
  Alcotest.(check bool) "mutex reached" true m.Load.o_reached;
  Alcotest.(check (list int)) "same decided log" m.Load.o_log r.Load.o_log;
  Alcotest.(check int) "same log base" m.Load.o_log_base r.Load.o_log_base;
  Alcotest.(check int) "same step count" m.Load.o_steps r.Load.o_steps;
  Alcotest.(check int) "same sends" m.Load.o_sent r.Load.o_sent;
  Alcotest.(check int) "same reads served" m.Load.o_reads r.Load.o_reads;
  Alcotest.(check int) "same read digest" m.Load.o_read_digest
    r.Load.o_read_digest;
  Alcotest.(check int) "sequential run needs no pool syncs" 0
    (m.Load.o_sync_ops + r.Load.o_sync_ops);
  (* the contention headline at any job count: the mutex backend locks
     on every send/recv probe, the ring only on overflow spills *)
  Alcotest.(check bool)
    (Printf.sprintf "ring lock_ops (%d) << mutex lock_ops (%d)"
       r.Load.o_lock_ops m.Load.o_lock_ops)
    true
    (r.Load.o_lock_ops * 10 < m.Load.o_lock_ops)

let test_load_jobs1_equivalence_under_faults () =
  let faults = Sim.Faults.make ~drop:0.03 ~dup:0.03 ~seed:5 () in
  let cfg =
    { serve_cfg with faults; target_slots = 10; max_steps = 120_000 }
  in
  let run transport = Load.run_exec ~jobs:1 { cfg with transport } in
  let m = run Sim.Executor.Mutex in
  let r = run Sim.Executor.Ring in
  Alcotest.(check (list int)) "same log under drop/dup" m.Load.o_log
    r.Load.o_log;
  Alcotest.(check int) "same steps under drop/dup" m.Load.o_steps
    r.Load.o_steps;
  Alcotest.(check bool) "mutex not divergent" false m.Load.o_divergent;
  Alcotest.(check bool) "ring not divergent" false r.Load.o_divergent

(* Safety across real interleavings: the ring transport at jobs = 2
   under injected crashes must never let live logs diverge, and the
   staleness bound must hold on every interleaving. *)
let test_load_ring_parallel_safety () =
  let cfg =
    {
      serve_cfg with
      n = 4;
      transport = Sim.Executor.Ring;
      crashes = [ (3, 400) ];
      target_slots = 15;
      ring_capacity = 8;
    }
  in
  let o = Load.run_exec ~jobs:2 cfg in
  Alcotest.(check bool) "ring exec never divergent" false o.Load.o_divergent;
  Alcotest.(check bool) "made progress" true (o.Load.o_slots > 0);
  Alcotest.(check bool)
    (Printf.sprintf "staleness %d within bound %d" o.Load.o_stale_max
       o.Load.o_stale_bound)
    true
    (o.Load.o_stale_max <= o.Load.o_stale_bound)

(* ---------------------------------------------------------------- *)
(* Snapshot: digests, the store, staleness                           *)
(* ---------------------------------------------------------------- *)

let test_snapshot_digest () =
  let mix = Snapshot.mix in
  Alcotest.(check int) "digest folds batches in order"
    (mix (mix (mix 17 1) 2) 3)
    (Snapshot.digest_of ~prefix_digest:17 [ [ 1; 2 ]; [ 3 ] ]);
  let s =
    Snapshot.build ~version:5 ~base:2 ~ops:4 ~prefix_digest:17
      ~batches:[ [ 1; 2 ]; [ 3 ] ] ~tick:99
  in
  Alcotest.(check int) "build digest = digest_of"
    (Snapshot.digest_of ~prefix_digest:17 [ [ 1; 2 ]; [ 3 ] ])
    s.Snapshot.digest;
  Alcotest.(check int) "log_len counts batches" 2 s.Snapshot.log_len;
  Alcotest.(check int) "built_at" 99 s.Snapshot.built_at

let snap v =
  Snapshot.build ~version:v ~base:0 ~ops:v ~prefix_digest:0 ~batches:[]
    ~tick:v

let test_store_keep_newest () =
  let st = Snapshot.Store.make () in
  Alcotest.(check bool) "empty store" true (Snapshot.Store.current st = None);
  Alcotest.(check bool) "first publish" true (Snapshot.Store.publish st (snap 3));
  Alcotest.(check bool) "older rejected" false
    (Snapshot.Store.publish st (snap 2));
  Alcotest.(check bool) "equal rejected" false
    (Snapshot.Store.publish st (snap 3));
  Alcotest.(check bool) "newer accepted" true
    (Snapshot.Store.publish st (snap 7));
  (match Snapshot.Store.current st with
  | Some s -> Alcotest.(check int) "newest wins" 7 s.Snapshot.version
  | None -> Alcotest.fail "store emptied");
  Alcotest.(check int) "two successful publishes" 2
    (Snapshot.Store.published st)

let test_store_concurrent_publish () =
  let st = Snapshot.Store.make () in
  let dom k =
    Domain.spawn (fun () ->
        for v = 1 to 200 do
          ignore (Snapshot.Store.publish st (snap ((v * 4) + k)))
        done)
  in
  let ds = List.map dom [ 0; 1; 2; 3 ] in
  List.iter Domain.join ds;
  match Snapshot.Store.current st with
  | Some s ->
    Alcotest.(check int) "store converged to the global max" 803
      s.Snapshot.version
  | None -> Alcotest.fail "no snapshot after concurrent publishes"

let test_snapshot_reads_bounded_staleness () =
  let o = Load.run_exec ~jobs:1 serve_cfg in
  Alcotest.(check int) "all reads served" serve_cfg.Load.reads o.Load.o_reads;
  Alcotest.(check bool) "snapshots published" true (o.Load.o_snapshots > 0);
  Alcotest.(check int) "declared bound" (serve_cfg.Load.publish_every - 1)
    o.Load.o_stale_bound;
  Alcotest.(check bool)
    (Printf.sprintf "staleness %d within bound %d" o.Load.o_stale_max
       o.Load.o_stale_bound)
    true
    (o.Load.o_stale_max <= o.Load.o_stale_bound)

let test_log_reads_exact () =
  let o =
    Load.run_exec ~jobs:1 { serve_cfg with read_mode = Load.Read_log }
  in
  Alcotest.(check int) "all reads served" serve_cfg.Load.reads o.Load.o_reads;
  Alcotest.(check int) "log reads are never stale" (-1) o.Load.o_stale_max;
  Alcotest.(check int) "no staleness budget needed" 0 o.Load.o_stale_bound

(* ---------------------------------------------------------------- *)
(* Executor: idle exactness                                          *)
(* ---------------------------------------------------------------- *)

module Ex = Sim.Executor.Make (Core.Anuc)

(* Every process crashed from tick 0: the executor must conclude the
   system is dead after its bounded rechecks — terminating long
   before the step budget — and report exactly zero steps. *)
let test_idle_executor_exact () =
  let pattern =
    Sim.Failure_pattern.make ~n:3 ~crashes:[ (0, 0); (1, 0); (2, 0) ]
  in
  List.iter
    (fun transport ->
      let out =
        Ex.exec ~jobs:2 ~transport ~pattern
          ~fd:(fun _ _ -> Sim.Fd_value.Unit)
          ~inputs:(fun p -> p mod 2)
          ~max_steps:1_000_000 ()
      in
      let name = Sim.Executor.transport_name transport in
      Alcotest.(check int) (name ^ ": zero steps when all crashed") 0
        out.Ex.step_count;
      (* the run ends by idle detection, not the stop predicate — and
         within the test's own timeout, i.e. long before a 1M-step
         budget could be burned by a busy spin *)
      Alcotest.(check bool) (name ^ ": no stop fired") false
        out.Ex.stopped_early)
    [ Sim.Executor.Mutex; Sim.Executor.Ring ]

let () =
  Alcotest.run "ring"
    [
      ( "ring-queue",
        [
          Alcotest.test_case "capacity rounding" `Quick test_capacity_rounding;
          Alcotest.test_case "FIFO within capacity" `Quick
            test_fifo_within_capacity;
          Alcotest.test_case "overflow preserves FIFO" `Quick
            test_overflow_preserves_fifo;
          Alcotest.test_case "wraparound laps" `Quick test_wraparound_laps;
          Alcotest.test_case "to_list nondestructive" `Quick
            test_to_list_nondestructive;
          test_qcheck_queue_model;
          Alcotest.test_case "two-producer stress" `Quick
            test_two_producer_stress;
        ] );
      ( "transport-differential",
        [
          test_qcheck_transport_differential;
          Alcotest.test_case "ring rejects reorder specs" `Quick
            test_ring_rejects_reorder;
          Alcotest.test_case "jobs=1 transport equivalence" `Quick
            test_load_jobs1_transport_equivalence;
          Alcotest.test_case "jobs=1 equivalence under faults" `Quick
            test_load_jobs1_equivalence_under_faults;
          Alcotest.test_case "ring parallel safety" `Quick
            test_load_ring_parallel_safety;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "digest fold" `Quick test_snapshot_digest;
          Alcotest.test_case "store keeps newest" `Quick test_store_keep_newest;
          Alcotest.test_case "concurrent publish" `Quick
            test_store_concurrent_publish;
          Alcotest.test_case "snapshot reads bounded staleness" `Quick
            test_snapshot_reads_bounded_staleness;
          Alcotest.test_case "log reads exact" `Quick test_log_reads_exact;
        ] );
      ( "executor-idle",
        [
          Alcotest.test_case "idle executor exact" `Quick
            test_idle_executor_exact;
        ] );
    ]
