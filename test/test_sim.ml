(* Tests for the asynchronous-system simulator: failure patterns,
   environments, and the runner's conformance to the run properties of
   Section 2.6 of the paper. *)
open Procset

let pset = Alcotest.testable Pset.pp Pset.equal

(* -------------------------------------------------------------- *)
(* Failure patterns                                               *)
(* -------------------------------------------------------------- *)

let test_pattern_basics () =
  let f = Sim.Failure_pattern.make ~n:5 ~crashes:[ (1, 3); (4, 10) ] in
  Alcotest.(check int) "n" 5 (Sim.Failure_pattern.n f);
  Alcotest.(check pset) "faulty" (Pset.of_list [ 1; 4 ])
    (Sim.Failure_pattern.faulty f);
  Alcotest.(check pset) "correct"
    (Pset.of_list [ 0; 2; 3 ])
    (Sim.Failure_pattern.correct f);
  Alcotest.(check bool) "p1 alive at 2" false
    (Sim.Failure_pattern.crashed f 1 2);
  Alcotest.(check bool) "p1 crashed at 3" true
    (Sim.Failure_pattern.crashed f 1 3);
  Alcotest.(check int) "last crash" 10 (Sim.Failure_pattern.last_crash_time f);
  Alcotest.(check pset) "F(5)" (Pset.singleton 1)
    (Sim.Failure_pattern.crashed_set f 5)

let test_pattern_monotone () =
  let f = Sim.Failure_pattern.make ~n:6 ~crashes:[ (0, 2); (3, 7); (5, 7) ] in
  let rec check t prev =
    if t > 12 then ()
    else begin
      let now = Sim.Failure_pattern.crashed_set f t in
      Alcotest.(check bool)
        (Printf.sprintf "F(%d) includes F(%d)" t (t - 1))
        true (Pset.subset prev now);
      check (t + 1) now
    end
  in
  check 1 (Sim.Failure_pattern.crashed_set f 0)

let test_pattern_invalid () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Failure_pattern.make: need n >= 2") (fun () ->
      ignore (Sim.Failure_pattern.make ~n:1 ~crashes:[]));
  Alcotest.check_raises "duplicate pid"
    (Invalid_argument "Failure_pattern.make: duplicate pid 1") (fun () ->
      ignore (Sim.Failure_pattern.make ~n:3 ~crashes:[ (1, 2); (1, 5) ]));
  Alcotest.check_raises "negative time"
    (Invalid_argument "Failure_pattern.make: negative crash time") (fun () ->
      ignore (Sim.Failure_pattern.make ~n:3 ~crashes:[ (1, -2) ]))

let test_env () =
  let e = Sim.Env.make ~n:5 ~max_faulty:2 in
  Alcotest.(check bool) "majority correct" true (Sim.Env.majority_correct e);
  let e' = Sim.Env.make ~n:4 ~max_faulty:2 in
  Alcotest.(check bool)
    "half faulty is not majority-correct" false
    (Sim.Env.majority_correct e');
  let f2 = Sim.Failure_pattern.make ~n:5 ~crashes:[ (0, 1); (1, 1) ] in
  let f3 = Sim.Failure_pattern.make ~n:5 ~crashes:[ (0, 1); (1, 1); (2, 1) ] in
  Alcotest.(check bool) "two faults in E_2" true (Sim.Env.mem e f2);
  Alcotest.(check bool) "three faults not in E_2" false (Sim.Env.mem e f3)

let prop_random_pattern =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random_pattern stays in the environment"
       ~count:300
       QCheck.(pair (int_range 2 10) int)
       (fun (n, seed) ->
         let max_faulty = (n - 1) / 2 in
         let e = Sim.Env.make ~n ~max_faulty in
         let rng = Random.State.make [| seed |] in
         let f = Sim.Env.random_pattern rng e in
         Sim.Env.mem e f
         && not (Pset.is_empty (Sim.Failure_pattern.correct f))))

(* -------------------------------------------------------------- *)
(* Mailbox: the O(1)-per-step message buffer                       *)
(* -------------------------------------------------------------- *)

let test_mailbox_fifo () =
  let mb = Sim.Mailbox.create () in
  Alcotest.(check bool) "fresh is empty" true (Sim.Mailbox.is_empty mb);
  List.iter (Sim.Mailbox.enqueue mb) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length tracked" 5 (Sim.Mailbox.length mb);
  Alcotest.(check (option int)) "peek oldest" (Some 1)
    (Sim.Mailbox.peek_oldest mb);
  Alcotest.(check int) "peek does not remove" 5 (Sim.Mailbox.length mb);
  Alcotest.(check (list int)) "to_list oldest-first" [ 1; 2; 3; 4; 5 ]
    (Sim.Mailbox.to_list mb);
  (* interleave dequeues and enqueues across the front/back split *)
  Alcotest.(check (option int)) "dequeue 1" (Some 1)
    (Sim.Mailbox.dequeue_oldest mb);
  Alcotest.(check (option int)) "dequeue 2" (Some 2)
    (Sim.Mailbox.dequeue_oldest mb);
  Sim.Mailbox.enqueue mb 6;
  Alcotest.(check (list int)) "order across split" [ 3; 4; 5; 6 ]
    (Sim.Mailbox.to_list mb);
  let drained = List.init 4 (fun _ -> Sim.Mailbox.dequeue_oldest mb) in
  Alcotest.(check (list (option int)))
    "drain in FIFO order"
    [ Some 3; Some 4; Some 5; Some 6 ]
    drained;
  Alcotest.(check (option int)) "empty dequeues None" None
    (Sim.Mailbox.dequeue_oldest mb);
  Alcotest.(check int) "size back to zero" 0 (Sim.Mailbox.length mb)

let test_mailbox_remove_nth () =
  let mb = Sim.Mailbox.of_list [ 10; 11; 12; 13 ] in
  Sim.Mailbox.enqueue mb 14;
  (* index counts from the oldest, across the front/back split *)
  Alcotest.(check int) "remove middle" 12 (Sim.Mailbox.remove_nth mb 2);
  Alcotest.(check (list int)) "order preserved" [ 10; 11; 13; 14 ]
    (Sim.Mailbox.to_list mb);
  Alcotest.(check int) "remove oldest" 10 (Sim.Mailbox.remove_nth mb 0);
  Alcotest.(check int) "remove newest" 14 (Sim.Mailbox.remove_nth mb 2);
  Alcotest.(check (list int)) "leftovers" [ 11; 13 ] (Sim.Mailbox.to_list mb);
  Alcotest.(check int) "length tracked" 2 (Sim.Mailbox.length mb);
  (try
     ignore (Sim.Mailbox.remove_nth mb 2);
     Alcotest.fail "out-of-bounds index must raise"
   with Invalid_argument _ -> ());
  try
    ignore (Sim.Mailbox.remove_nth mb (-1));
    Alcotest.fail "negative index must raise"
  with Invalid_argument _ -> ()

let test_mailbox_remove_first () =
  let mb = Sim.Mailbox.create () in
  List.iter (Sim.Mailbox.enqueue mb) [ 1; 2; 3; 4 ];
  ignore (Sim.Mailbox.dequeue_oldest mb);
  Sim.Mailbox.enqueue mb 5;
  (* mailbox is [2;3;4;5] with elements on both sides of the split *)
  Alcotest.(check (option int)) "first even from the oldest end" (Some 2)
    (Sim.Mailbox.remove_first mb (fun x -> x mod 2 = 0));
  Alcotest.(check (option int)) "match inside the back half" (Some 5)
    (Sim.Mailbox.remove_first mb (fun x -> x > 4));
  Alcotest.(check (option int)) "no match" None
    (Sim.Mailbox.remove_first mb (fun x -> x > 100));
  Alcotest.(check (list int)) "misses leave contents intact" [ 3; 4 ]
    (Sim.Mailbox.to_list mb);
  Alcotest.(check int) "length tracked" 2 (Sim.Mailbox.length mb)

let test_mailbox_insert_nth () =
  let mb = Sim.Mailbox.of_list [ 10; 11; 12 ] in
  ignore (Sim.Mailbox.dequeue_oldest mb);
  Sim.Mailbox.enqueue mb 13;
  (* mailbox is [11;12;13] split across front and back *)
  Sim.Mailbox.insert_nth mb 0 1;
  Alcotest.(check (list int)) "insert at the oldest end" [ 1; 11; 12; 13 ]
    (Sim.Mailbox.to_list mb);
  Sim.Mailbox.insert_nth mb 2 2;
  Alcotest.(check (list int)) "insert in the middle" [ 1; 11; 2; 12; 13 ]
    (Sim.Mailbox.to_list mb);
  Sim.Mailbox.insert_nth mb 5 3;
  Alcotest.(check (list int)) "insert at the newest end"
    [ 1; 11; 2; 12; 13; 3 ]
    (Sim.Mailbox.to_list mb);
  Alcotest.(check int) "length tracked" 6 (Sim.Mailbox.length mb);
  (try
     Sim.Mailbox.insert_nth mb 7 99;
     Alcotest.fail "out-of-bounds index must raise"
   with Invalid_argument _ -> ());
  try
    Sim.Mailbox.insert_nth mb (-1) 99;
    Alcotest.fail "negative index must raise"
  with Invalid_argument _ -> ()

let prop_mailbox_insert_model =
  (* insert_nth agrees with list insertion at random positions over
     random mailbox shapes (the split position varies with the
     enqueue/dequeue prefix) *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"insert_nth agrees with a list model" ~count:300
       QCheck.(pair (list small_nat) (list (pair small_nat small_nat)))
       (fun (init, inserts) ->
         let mb = Sim.Mailbox.of_list init in
         let model = ref init in
         List.for_all
           (fun (pos, x) ->
             let i = pos mod (List.length !model + 1) in
             Sim.Mailbox.insert_nth mb i x;
             (model :=
                List.filteri (fun j _ -> j < i) !model
                @ [ x ]
                @ List.filteri (fun j _ -> j >= i) !model);
             Sim.Mailbox.to_list mb = !model)
           inserts))

let prop_mailbox_model =
  (* the mailbox agrees with a plain-list model under random
     enqueue / dequeue / remove_nth sequences *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"mailbox agrees with a list model" ~count:300
       QCheck.(list (pair (int_range 0 2) small_nat))
       (fun ops ->
         let mb = Sim.Mailbox.create () in
         let model = ref [] in
         List.for_all
           (fun (op, x) ->
             match op with
             | 0 ->
               Sim.Mailbox.enqueue mb x;
               model := !model @ [ x ];
               true
             | 1 ->
               let got = Sim.Mailbox.dequeue_oldest mb in
               let want =
                 match !model with
                 | [] -> None
                 | y :: rest ->
                   model := rest;
                   Some y
               in
               got = want
             | _ ->
               if !model = [] then true
               else begin
                 let i = x mod List.length !model in
                 let got = Sim.Mailbox.remove_nth mb i in
                 let want = List.nth !model i in
                 model := List.filteri (fun j _ -> j <> i) !model;
                 got = want
               end)
           ops
         && Sim.Mailbox.to_list mb = !model
         && Sim.Mailbox.length mb = List.length !model))

(* -------------------------------------------------------------- *)
(* A tiny deterministic automaton for exercising the runner        *)
(* -------------------------------------------------------------- *)

(* Each step, sends its step counter to the next process around the
   ring and remembers everything it received. *)
module Ring = struct
  type input = unit
  type message = int

  type state = {
    steps : int;
    inbox : (Pid.t * int) list;  (** (sender, counter), newest first *)
  }

  let name = "ring-counter"
  let initial ~n:_ ~self:_ () = { steps = 0; inbox = [] }

  let step ~n ~self st received _d =
    let inbox =
      match received with
      | None -> st.inbox
      | Some e -> (e.Sim.Envelope.src, e.Sim.Envelope.payload) :: st.inbox
    in
    let st = { steps = st.steps + 1; inbox } in
    (st, [ ((self + 1) mod n, st.steps) ])

  let pp_message = Format.pp_print_int
  let equal_message = Int.equal
end

module R = Sim.Runner.Make (Ring)

let fd_unit _ _ = Sim.Fd_value.Unit

let run_ring ?seed ?(crashes = []) ?(max_steps = 300) ?lambda_prob ?faults ()
    =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes in
  R.exec ?seed ?lambda_prob ?faults ~pattern ~fd:fd_unit
    ~inputs:(fun _ -> ())
    ~max_steps ()

let test_runner_fairness () =
  let run = run_ring () in
  (* with no crashes and 300 steps in rounds of 4, everybody takes 75 *)
  Array.iter
    (fun st -> Alcotest.(check int) "steps per process" 75 st.Ring.steps)
    run.R.states

let test_runner_crash_respected () =
  let run = run_ring ~crashes:[ (2, 50) ] () in
  Array.iter
    (fun step ->
      if step.R.pid = 2 then
        Alcotest.(check bool)
          (Printf.sprintf "p2 stepped at %d before crash" step.R.time)
          true (step.R.time < 50))
    run.R.steps;
  (* other processes keep running *)
  Alcotest.(check bool)
    "p0 ran past the crash" true
    (run.R.states.(0).Ring.steps > 60)

let test_runner_no_step_after_crash_all_patterns () =
  List.iter
    (fun seed ->
      let run = run_ring ~seed ~crashes:[ (1, 17); (3, 42) ] () in
      Array.iter
        (fun step ->
          Alcotest.(check bool)
            "no step at or after crash time" true
            (not
               (Sim.Failure_pattern.crashed run.R.pattern step.R.pid
                  step.R.time)))
        run.R.steps)
    [ 0; 1; 2; 3; 4 ]

let test_runner_times_strictly_increasing () =
  let run = run_ring ~seed:7 () in
  let ok = ref true in
  Array.iteri
    (fun i step ->
      if i > 0 then ok := !ok && step.R.time > run.R.steps.(i - 1).R.time)
    run.R.steps;
  Alcotest.(check bool) "times strictly increase" true !ok

let test_runner_delivery_bound () =
  (* with lambda_prob = 0 and max_msg_age = 1 every step drains the
     oldest pending message, so delivery delay is bounded by the
     scheduling round plus the (bounded) per-destination backlog *)
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let run =
    R.exec ~seed:3 ~max_msg_age:1 ~lambda_prob:0.0 ~pattern ~fd:fd_unit
      ~inputs:(fun _ -> ())
      ~max_steps:400 ()
  in
  Array.iter
    (fun step ->
      match step.R.received with
      | None -> ()
      | Some e ->
        Alcotest.(check bool)
          "prompt delivery when forced" true
          (step.R.time - e.Sim.Envelope.sent_at <= 2 * 4))
    run.R.steps

let test_runner_eventual_delivery () =
  (* property-(7) surrogate: under the default policy, nothing stays
     undelivered for long — at the end of a long run every pending
     message for a correct process is recent *)
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let run =
    R.exec ~seed:9 ~pattern ~fd:fd_unit
      ~inputs:(fun _ -> ())
      ~max_steps:600 ()
  in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        "undelivered messages are recent" true
        (e.Sim.Envelope.sent_at > 600 - 150))
    run.R.undelivered

let test_runner_deterministic () =
  let r1 = run_ring ~seed:11 () and r2 = run_ring ~seed:11 () in
  Alcotest.(check int) "same step count" r1.R.step_count r2.R.step_count;
  Array.iteri
    (fun i s ->
      let s' = r2.R.steps.(i) in
      Alcotest.(check int) "same pid" s.R.pid s'.R.pid;
      Alcotest.(check bool)
        "same received" true
        (Option.equal Sim.Envelope.same_identity s.R.received s'.R.received))
    r1.R.steps

let test_runner_stop_predicate () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let run =
    R.exec ~pattern ~fd:fd_unit
      ~inputs:(fun _ -> ())
      ~max_steps:1000
      ~stop:(fun st _ -> (st 0).Ring.steps >= 10)
      ()
  in
  Alcotest.(check bool) "stopped early" true run.R.stopped_early;
  Alcotest.(check bool) "well before the cap" true (run.R.step_count < 100)

(* -------------------------------------------------------------- *)
(* Scripted execution                                              *)
(* -------------------------------------------------------------- *)

let test_script_exact_sequence () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let script =
    [
      { R.actor = 0; choice = R.Lambda };
      { R.actor = 1; choice = R.Oldest_from 0 };
      { R.actor = 1; choice = R.Lambda };
      { R.actor = 2; choice = R.Oldest };
    ]
  in
  let run =
    R.exec_script ~pattern ~fd:fd_unit ~inputs:(fun _ -> ()) ~script ()
  in
  Alcotest.(check int) "four steps" 4 run.R.step_count;
  Alcotest.(check (list int))
    "actors in order" [ 0; 1; 1; 2 ]
    (Array.to_list (Array.map (fun s -> s.R.pid) run.R.steps));
  (* step 2: p1 received p0's first message *)
  match run.R.steps.(1).R.received with
  | Some e ->
    Alcotest.(check int) "from p0" 0 e.Sim.Envelope.src;
    Alcotest.(check int) "payload 1" 1 e.Sim.Envelope.payload
  | None -> Alcotest.fail "p1 should have received p0's message"

let test_script_errors () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 1) ] in
  let exec script =
    ignore
      (R.exec_script ~pattern ~fd:fd_unit ~inputs:(fun _ -> ()) ~script ())
  in
  (* crashed actor *)
  (try
     exec [ { R.actor = 2; choice = R.Lambda } ];
     Alcotest.fail "expected Script_error (crashed actor)"
   with R.Script_error _ -> ());
  (* no pending message *)
  try
    exec [ { R.actor = 0; choice = R.Oldest } ];
    Alcotest.fail "expected Script_error (no message)"
  with R.Script_error _ -> ()

let test_session_feedback () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let s = R.Session.create ~pattern ~fd:fd_unit ~inputs:(fun _ -> ()) () in
  R.Session.step s 0;
  R.Session.step s 0;
  Alcotest.(check int) "p0 took two steps" 2 (R.Session.state s 0).Ring.steps;
  Alcotest.(check int) "time advanced" 3 (R.Session.time s);
  Alcotest.(check int) "p1 has two pending" 2
    (List.length (R.Session.pending s 1))

let test_worst_pattern () =
  let e = Sim.Env.make ~n:6 ~max_faulty:3 in
  let f = Sim.Env.worst_pattern e in
  Alcotest.(check bool) "in the environment" true (Sim.Env.mem e f);
  Alcotest.(check int) "exactly t faulty" 3 (Sim.Failure_pattern.num_faulty f)

let test_session_crash_enforced () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[ (1, 3) ] in
  let s = R.Session.create ~pattern ~fd:fd_unit ~inputs:(fun _ -> ()) () in
  R.Session.step s 1;
  (* p1 can step at times 1 and 2 *)
  R.Session.step s 1;
  (* time is now 3: p1 is crashed *)
  try
    R.Session.step s 1;
    Alcotest.fail "expected Script_error for a crashed actor"
  with R.Script_error _ -> ()

let test_scripted_run_replays () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let script =
    [
      { R.actor = 0; choice = R.Lambda };
      { R.actor = 1; choice = R.Oldest_from 0 };
      { R.actor = 2; choice = R.Lambda };
      { R.actor = 3; choice = R.Oldest_from 2 };
      { R.actor = 0; choice = R.Oldest };
    ]
  in
  let run =
    R.exec_script ~pattern ~fd:fd_unit ~inputs:(fun _ -> ()) ~script ()
  in
  match
    R.replay ~n:4
      ~inputs:(fun _ -> ())
      (R.to_replay (Array.to_list run.R.steps))
  with
  | Error e -> Alcotest.fail e
  | Ok states ->
    Array.iteri
      (fun p st ->
        Alcotest.(check int)
          (Printf.sprintf "p%d state matches" p)
          run.R.states.(p).Ring.steps st.Ring.steps)
      states

(* -------------------------------------------------------------- *)
(* Replay and merging (the executable core of Lemma 2.2)           *)
(* -------------------------------------------------------------- *)

let test_replay_reproduces_run () =
  let run = run_ring ~seed:5 ~max_steps:200 () in
  let steps = R.to_replay (Array.to_list run.R.steps) in
  match R.replay ~n:4 ~inputs:(fun _ -> ()) steps with
  | Error e -> Alcotest.fail e
  | Ok states ->
    Array.iteri
      (fun p st ->
        Alcotest.(check int)
          (Printf.sprintf "p%d steps" p)
          run.R.states.(p).Ring.steps st.Ring.steps;
        Alcotest.(check bool)
          (Printf.sprintf "p%d inbox" p)
          true
          (run.R.states.(p).Ring.inbox = st.Ring.inbox))
      states

let test_replay_rejects_unsent_message () =
  let bogus =
    { Sim.Envelope.src = 0; dst = 1; seq = 99; sent_at = 1; payload = 42 }
  in
  let steps =
    [ { R.r_pid = 1; r_received = Some bogus; r_fd = Sim.Fd_value.Unit } ]
  in
  match R.replay ~n:4 ~inputs:(fun _ -> ()) steps with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replay should reject a message never sent"

(* Two scripted runs with disjoint participants merge into a single
   run in which each participant ends in the same state (Lemma 2.2). *)
let test_merge_disjoint_runs () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let script01 =
    [
      { R.actor = 0; choice = R.Lambda };
      { R.actor = 1; choice = R.Oldest_from 0 };
      { R.actor = 0; choice = R.Lambda };
      { R.actor = 1; choice = R.Oldest_from 0 };
    ]
  in
  let script23 =
    [
      { R.actor = 2; choice = R.Lambda };
      { R.actor = 3; choice = R.Oldest_from 2 };
      { R.actor = 3; choice = R.Lambda };
      { R.actor = 2; choice = R.Lambda };
    ]
  in
  let run0 =
    R.exec_script ~pattern ~fd:fd_unit ~inputs:(fun _ -> ()) ~script:script01
      ()
  in
  let run1 =
    R.exec_script ~pattern ~fd:fd_unit ~inputs:(fun _ -> ()) ~script:script23
      ()
  in
  let merged =
    R.merge_traces (Array.to_list run0.R.steps) (Array.to_list run1.R.steps)
  in
  match R.replay ~n:4 ~inputs:(fun _ -> ()) merged with
  | Error e -> Alcotest.fail ("merged run not applicable: " ^ e)
  | Ok states ->
    List.iter
      (fun p ->
        let reference =
          if p < 2 then run0.R.states.(p) else run1.R.states.(p)
        in
        Alcotest.(check int)
          (Printf.sprintf "p%d same steps as sub-run" p)
          reference.Ring.steps states.(p).Ring.steps;
        Alcotest.(check bool)
          (Printf.sprintf "p%d same inbox as sub-run" p)
          true
          (reference.Ring.inbox = states.(p).Ring.inbox))
      [ 0; 1; 2; 3 ]

(* The runner validates against its own model checker: a fair run
   satisfies every run property of Section 2.6. *)
let test_conformance_fair_run () =
  List.iter
    (fun seed ->
      let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 40) ] in
      let run =
        R.exec ~seed ~pattern ~fd:fd_unit
          ~inputs:(fun _ -> ())
          ~max_steps:300 ()
      in
      match R.conformance ~fd:fd_unit ~inputs:(fun _ -> ()) run with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d: %s" seed e)
    [ 0; 1; 2 ]

(* A scripted, deliberately unfair run fails the fairness surrogate
   but passes the hard model constraints with the window disabled. *)
let test_conformance_unfair_script () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let script =
    List.concat_map
      (fun _ -> [ { R.actor = 0; choice = R.Lambda } ])
      (List.init 40 (fun i -> i))
    @ [ { R.actor = 1; choice = R.Lambda } ]
  in
  let run =
    R.exec_script ~pattern ~fd:fd_unit ~inputs:(fun _ -> ()) ~script ()
  in
  (match R.conformance ~fd:fd_unit ~inputs:(fun _ -> ()) run with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unfair script should fail fairness");
  match
    R.conformance ~fairness_window:10_000 ~delivery_bound:10_000 ~fd:fd_unit
      ~inputs:(fun _ -> ())
      run
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "hard constraints should pass: %s" e

(* A run validated against the wrong detector history is rejected. *)
let test_conformance_wrong_fd () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let run =
    R.exec ~pattern ~fd:fd_unit ~inputs:(fun _ -> ()) ~max_steps:50 ()
  in
  match
    R.conformance
      ~fd:(fun p _ -> Sim.Fd_value.Leader p)
      ~inputs:(fun _ -> ())
      run
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong history must be rejected"

(* Conformance must not pass vacuously: an empty run is a documented
   Ok, a non-empty run executed with ~record:false is an explicit
   error (there is nothing to validate). *)
let test_conformance_empty_run () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let run =
    R.exec ~pattern ~fd:fd_unit ~inputs:(fun _ -> ()) ~max_steps:0 ()
  in
  Alcotest.(check int) "no steps" 0 run.R.step_count;
  match R.conformance ~fd:fd_unit ~inputs:(fun _ -> ()) run with
  | Ok () -> ()
  | Error e -> Alcotest.failf "empty run must conform trivially: %s" e

let test_conformance_unrecorded_run () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let run =
    R.exec ~record:false ~pattern ~fd:fd_unit
      ~inputs:(fun _ -> ())
      ~max_steps:50 ()
  in
  Alcotest.(check int) "steps taken" 50 run.R.step_count;
  match R.conformance ~fd:fd_unit ~inputs:(fun _ -> ()) run with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unrecorded non-empty run must not pass vacuously"

(* -------------------------------------------------------------- *)
(* Run metrics                                                     *)
(* -------------------------------------------------------------- *)

let test_runner_metrics () =
  let run = run_ring ~seed:4 () in
  let m = run.R.metrics in
  Alcotest.(check int) "per-process steps sum to step_count"
    run.R.step_count
    (Array.fold_left ( + ) 0 m.Sim.Runner.steps_per_process);
  Alcotest.(check int) "sent mirrors messages_sent" run.R.messages_sent
    m.Sim.Runner.sent;
  Alcotest.(check int) "every send is delivered or still buffered"
    m.Sim.Runner.sent
    (m.Sim.Runner.delivered + m.Sim.Runner.undelivered_at_stop);
  Alcotest.(check int) "undelivered_at_stop counts the leftovers"
    (List.length run.R.undelivered)
    m.Sim.Runner.undelivered_at_stop;
  Alcotest.(check int) "no faults: nothing dropped" 0 m.Sim.Runner.dropped;
  Alcotest.(check int) "no faults: nothing duplicated" 0
    m.Sim.Runner.duplicated;
  Alcotest.(check int) "no faults: nothing reordered" 0
    m.Sim.Runner.reordered;
  Alcotest.(check bool) "mailbox high-water mark observed" true
    (m.Sim.Runner.mailbox_hwm >= 1);
  Alcotest.(check bool) "wall clock nonnegative" true
    (m.Sim.Runner.wall_seconds >= 0.0)

(* -------------------------------------------------------------- *)
(* Network faults (Sim.Faults)                                     *)
(* -------------------------------------------------------------- *)

(* Everything observable except the wall clock. *)
let run_equal r1 r2 =
  r1.R.states = r2.R.states
  && r1.R.steps = r2.R.steps
  && r1.R.step_count = r2.R.step_count
  && r1.R.messages_sent = r2.R.messages_sent
  && r1.R.undelivered = r2.R.undelivered
  && r1.R.stopped_early = r2.R.stopped_early
  && { r1.R.metrics with Sim.Runner.wall_seconds = 0.0 }
     = { r2.R.metrics with Sim.Runner.wall_seconds = 0.0 }

(* Random fault specs as printable/shrinkable tuples:
   (drop, dup in tenths; reorder window; spec seed). *)
let arb_fault_quad =
  QCheck.quad
    QCheck.(int_bound 9)
    QCheck.(int_bound 9)
    QCheck.(int_bound 4)
    QCheck.small_nat

let spec_of (drop10, dup10, reorder, fseed) =
  Sim.Faults.make
    ~drop:(float_of_int drop10 /. 10.0)
    ~dup:(float_of_int dup10 /. 10.0)
    ~reorder ~seed:fseed ()

let prop_faulty_run_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"same seed + same fault spec => identical run"
       ~count:40
       QCheck.(pair arb_fault_quad (int_range 0 10_000))
       (fun (fq, seed) ->
         let faults = spec_of fq in
         run_equal (run_ring ~seed ~faults ()) (run_ring ~seed ~faults ())))

let prop_faulty_run_conforms =
  (* a faulty recorded run round-trips: conformance replays it under
     the run's own spec and re-derives the exact verdicts — and the
     message-accounting conservation law holds *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"faulty runs replay and conform" ~count:40
       QCheck.(pair arb_fault_quad (int_range 0 10_000))
       (fun (fq, seed) ->
         let faults = spec_of fq in
         let run = run_ring ~seed ~faults () in
         let m = run.R.metrics in
         let conserved =
           m.Sim.Runner.sent - m.Sim.Runner.dropped
           + m.Sim.Runner.duplicated
           = m.Sim.Runner.delivered + m.Sim.Runner.undelivered_at_stop
         in
         match R.conformance ~fd:fd_unit ~inputs:(fun _ -> ()) run with
         | Ok () -> conserved
         | Error e -> QCheck.Test.fail_reportf "conformance: %s" e))

let prop_zero_rate_spec_is_identity =
  (* a zero-rate spec (whatever its seed) leaves seeded runs
     byte-identical to runs executed with no spec at all *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"zero-rate fault spec changes nothing" ~count:40
       QCheck.(int_range 0 10_000)
       (fun seed ->
         let zero = Sim.Faults.make ~seed:(seed + 77) () in
         run_equal (run_ring ~seed ()) (run_ring ~seed ~faults:zero ())))

(* A total partition between {0,1} and {2,3} severs the two
   cross-group ring links (1->2 and 3->0) for the whole run: the cut
   destinations hear nothing, the in-group link still works, and
   every severed send is counted as dropped. *)
let test_partition_severs_links () =
  let faults =
    Sim.Faults.make
      ~partitions:
        [
          {
            Sim.Faults.from_t = 0;
            until_t = max_int;
            groups = [ Pset.of_list [ 0; 1 ]; Pset.of_list [ 2; 3 ] ];
          };
        ]
      ()
  in
  let run = run_ring ~seed:11 ~faults ~max_steps:100 () in
  Alcotest.(check (list (pair int int)))
    "p2 heard nothing across the cut" []
    run.R.states.(2).Ring.inbox;
  Alcotest.(check (list (pair int int)))
    "p0 heard nothing across the cut" []
    run.R.states.(0).Ring.inbox;
  Alcotest.(check bool) "p1 still hears p0" true
    (run.R.states.(1).Ring.inbox <> []);
  let m = run.R.metrics in
  Alcotest.(check int) "every cross-group send was dropped"
    (run.R.states.(1).Ring.steps + run.R.states.(3).Ring.steps)
    m.Sim.Runner.dropped;
  (* the faulty run still validates end to end *)
  match R.conformance ~fd:fd_unit ~inputs:(fun _ -> ()) run with
  | Ok () -> ()
  | Error e -> Alcotest.failf "partitioned run must conform: %s" e

let test_partition_heals () =
  let faults =
    Sim.Faults.make
      ~partitions:
        [
          {
            Sim.Faults.from_t = 0;
            until_t = 10;
            groups = [ Pset.of_list [ 0; 1 ]; Pset.of_list [ 2; 3 ] ];
          };
        ]
      ()
  in
  let run = run_ring ~seed:11 ~faults ~max_steps:200 () in
  Alcotest.(check bool) "p2 hears p1 again after the heal" true
    (List.exists (fun (src, _) -> src = 1) run.R.states.(2).Ring.inbox);
  Alcotest.(check bool) "only window-time sends were lost" true
    (run.R.metrics.Sim.Runner.dropped < run.R.metrics.Sim.Runner.sent / 4)

let test_duplication_counted () =
  let faults = Sim.Faults.make ~dup:1.0 () in
  let run = run_ring ~seed:3 ~faults ~max_steps:120 () in
  let m = run.R.metrics in
  (* the ring only sends cross-process messages, so every send
     duplicates *)
  Alcotest.(check int) "every send duplicated" m.Sim.Runner.sent
    m.Sim.Runner.duplicated;
  Alcotest.(check int) "conservation law"
    (m.Sim.Runner.sent + m.Sim.Runner.duplicated)
    (m.Sim.Runner.delivered + m.Sim.Runner.undelivered_at_stop)

(* -------------------------------------------------------------- *)
(* Partition-window boundary semantics (pinned)                    *)
(* -------------------------------------------------------------- *)

(* The window semantics the .mli documents, pinned move by move:
   [from_t, until_t] is inclusive at BOTH ends, overlapping windows
   compose conjunctively (every active window must connect the
   pair), self-sends are exempt from everything, and severing beats
   the probabilistic dimensions (a severed message is dropped even
   with drop = 0 and dup = 1). Changing any of these silently
   reinterprets every recorded faulty trace, so they get their own
   tests rather than riding along inside runner scenarios. *)

let split_01_23 =
  [ Pset.of_list [ 0; 1 ]; Pset.of_list [ 2; 3 ] ]

let window from_t until_t =
  { Sim.Faults.from_t; until_t; groups = split_01_23 }

let test_partition_window_inclusive () =
  let faults = Sim.Faults.make ~partitions:[ window 10 20 ] () in
  let cut time = Sim.Faults.severed faults ~src:1 ~dst:2 ~time in
  Alcotest.(check bool) "t = from_t - 1 open" false (cut 9);
  Alcotest.(check bool) "t = from_t cut (inclusive)" true (cut 10);
  Alcotest.(check bool) "t = until_t cut (inclusive)" true (cut 20);
  Alcotest.(check bool) "t = until_t + 1 open" false (cut 21);
  (* the in-group link is never cut, at any time *)
  List.iter
    (fun time ->
      Alcotest.(check bool) "in-group link open" false
        (Sim.Faults.severed faults ~src:0 ~dst:1 ~time))
    [ 9; 10; 15; 20; 21 ]

let test_partition_windows_conjoin () =
  (* Two overlapping windows with different splits: in the overlap a
     pair must be co-grouped in BOTH to communicate; where only one
     window is active, only that window's split matters. *)
  let w1 = window 0 20 (* {0,1} | {2,3} *) in
  let w2 =
    {
      Sim.Faults.from_t = 10;
      until_t = 30;
      groups = [ Pset.of_list [ 0; 2 ]; Pset.of_list [ 1; 3 ] ];
    }
  in
  let faults = Sim.Faults.make ~partitions:[ w1; w2 ] () in
  let cut ~src ~dst time = Sim.Faults.severed faults ~src ~dst ~time in
  (* 0-1: co-grouped in w1, split by w2 *)
  Alcotest.(check bool) "0-1 open while only w1 active" false
    (cut ~src:0 ~dst:1 5);
  Alcotest.(check bool) "0-1 cut in the overlap (w2 splits it)" true
    (cut ~src:0 ~dst:1 15);
  Alcotest.(check bool) "0-1 cut while only w2 active" true
    (cut ~src:0 ~dst:1 25);
  (* 0-2: split by w1, co-grouped in w2 *)
  Alcotest.(check bool) "0-2 cut in the overlap (w1 splits it)" true
    (cut ~src:0 ~dst:2 15);
  Alcotest.(check bool) "0-2 open while only w2 active" false
    (cut ~src:0 ~dst:2 25);
  (* 0-3: split by both — cut across the union of the windows *)
  List.iter
    (fun time ->
      Alcotest.(check bool) "0-3 cut" true (cut ~src:0 ~dst:3 time))
    [ 0; 10; 20; 30 ];
  Alcotest.(check bool) "0-3 open after both heal" false
    (cut ~src:0 ~dst:3 31)

(* A pid in no group of an active window is cut off from everyone
   (including co-excluded pids): only co-membership connects. *)
let test_partition_ungrouped_pid_isolated () =
  let faults =
    Sim.Faults.make
      ~partitions:
        [ { Sim.Faults.from_t = 0; until_t = 10; groups = [ Pset.of_list [ 0; 1 ] ] } ]
      ()
  in
  Alcotest.(check bool) "2 -> 0 cut" true
    (Sim.Faults.severed faults ~src:2 ~dst:0 ~time:5);
  Alcotest.(check bool) "2 -> 3 cut (both ungrouped)" true
    (Sim.Faults.severed faults ~src:2 ~dst:3 ~time:5)

let prop_partition_self_send_exempt =
  (* self-sends model local delivery: no generated spec may ever
     sever or touch one, whatever its windows and rates *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"self-sends exempt from every fault spec"
       ~count:200
       (QCheck.triple (Tutil.arb_faults ~n:4)
          QCheck.(int_bound 3)
          QCheck.(int_bound 200))
       (fun (faults, p, time) ->
         (not (Sim.Faults.severed faults ~src:p ~dst:p ~time))
         && Sim.Faults.verdict faults ~src:p ~dst:p ~seq:0 ~time
            = { Sim.Faults.copies = 1; displace = 0 }))

let prop_severed_beats_rates =
  (* inside a total partition the verdict is a drop — even with
     drop = 0 and dup = 1, which would otherwise force duplication *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"severed links drop regardless of dup/drop"
       ~count:100
       (QCheck.triple
          QCheck.(int_bound 3)
          QCheck.(int_bound 3)
          QCheck.(int_bound 100))
       (fun (src, dst, time) ->
         QCheck.assume (src <> dst);
         let faults =
           Sim.Faults.make ~dup:1.0
             ~partitions:[ { Sim.Faults.from_t = 0; until_t = 200; groups = [] } ]
             ()
         in
         Sim.Faults.verdict faults ~src ~dst ~seq:0 ~time
         = { Sim.Faults.copies = 0; displace = 0 }))

(* -------------------------------------------------------------- *)
(* Meta: the shared shrinkers must themselves report minimal       *)
(* counterexamples                                                 *)
(* -------------------------------------------------------------- *)

(* Seed a property that must fail ("no process ever crashes") and pin
   what the universe shrinker reports: one crash, at time 0, in the
   smallest universe that can still contain it. If this test breaks,
   every property test built on [Tutil.arb_universe] still *fails*
   on bugs — but reports noisy, oversized counterexamples. *)
let test_universe_shrinks_to_minimal () =
  match
    Tutil.shrunk_counterexample ~count:500 ~seed:42
      (Tutil.arb_universe ~min_n:2 ~max_n:8 ())
      (fun u -> u.Tutil.u_crashes = [])
  with
  | None -> Alcotest.fail "the seeded property never failed"
  | Some u ->
    (match u.Tutil.u_crashes with
    | [ (p, time) ] ->
      Alcotest.(check int) "crash time shrunk to 0" 0 time;
      Alcotest.(check int)
        "no smaller universe can hold the crash (n = max 2 (pid + 1))"
        (max 2 (p + 1))
        u.Tutil.u_n;
      Alcotest.(check int) "environment bound shrunk to one crash" 1
        u.Tutil.u_t
    | crashes ->
      Alcotest.failf "expected exactly one shrunk crash, got %d"
        (List.length crashes))

let test_faults_shrink_to_empty_dimensions () =
  (* "no spec has partitions" must fail, and shrink to a spec whose
     every OTHER dimension is zeroed and whose single window has
     width 0 — only the load-bearing fault survives shrinking *)
  match
    Tutil.shrunk_counterexample ~count:500 ~seed:7 (Tutil.arb_faults ~n:4)
      (fun f -> f.Sim.Faults.partitions = [])
  with
  | None -> Alcotest.fail "the seeded property never failed"
  | Some f ->
    Alcotest.(check (float 0.0)) "drop shrunk away" 0.0 f.Sim.Faults.drop;
    Alcotest.(check (float 0.0)) "dup shrunk away" 0.0 f.Sim.Faults.dup;
    Alcotest.(check int) "reorder shrunk away" 0 f.Sim.Faults.reorder;
    (match f.Sim.Faults.partitions with
    | [ pt ] ->
      Alcotest.(check int) "window narrowed to width 0" pt.Sim.Faults.from_t
        pt.Sim.Faults.until_t
    | ps ->
      Alcotest.failf "expected exactly one shrunk window, got %d"
        (List.length ps))

(* -------------------------------------------------------------- *)
(* Replay round-trips on the real automata                         *)
(* -------------------------------------------------------------- *)

(* Replay of a recorded randomized run must be applicable and
   reproduce each automaton's final decision (Lemma 2.2 exercised on
   the actual consensus algorithms, not just the ring probe). The
   patterns come from the shared generator in Tutil, so failures
   shrink to a minimal crash schedule. *)
let arb_replay_universe =
  QCheck.pair
    (Tutil.arb_universe ~min_n:3 ~max_n:5 ~crash_window:60 ())
    QCheck.(int_range 0 10_000)

let prop_replay_roundtrip_anuc =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"replay round-trips A_nuc runs" ~count:12
       arb_replay_universe
       (fun (u, seed) ->
         Tutil.replay_roundtrips
           (module Core.Anuc)
           ~family:Tutil.benign_nu_plus ~seed
           ~pattern:(Tutil.universe_pattern u) ()))

let prop_replay_roundtrip_mr =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"replay round-trips MR-Sigma runs" ~count:12
       arb_replay_universe
       (fun (u, seed) ->
         Tutil.replay_roundtrips
           (module Consensus.Mr.With_quorum)
           ~family:Tutil.benign_sigma ~seed
           ~pattern:(Tutil.universe_pattern u) ()))

let prop_replay_roundtrip_ct =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"replay round-trips CT runs" ~count:12
       (QCheck.pair
          (Tutil.arb_universe ~min_n:3 ~max_n:5 ~majority_correct:true
             ~crash_window:60 ())
          QCheck.(int_range 0 10_000))
       (fun (u, seed) ->
         Tutil.replay_roundtrips
           (module Consensus.Ct)
           ~family:Tutil.eventually_strong ~seed
           ~pattern:(Tutil.universe_pattern u) ()))

let () =
  Alcotest.run "sim"
    [
      ( "failure-patterns",
        [
          Alcotest.test_case "basics" `Quick test_pattern_basics;
          Alcotest.test_case "monotone" `Quick test_pattern_monotone;
          Alcotest.test_case "invalid args" `Quick test_pattern_invalid;
          Alcotest.test_case "environments" `Quick test_env;
          prop_random_pattern;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "FIFO order" `Quick test_mailbox_fifo;
          Alcotest.test_case "indexed removal" `Quick test_mailbox_remove_nth;
          Alcotest.test_case "predicate removal" `Quick
            test_mailbox_remove_first;
          Alcotest.test_case "indexed insertion" `Quick
            test_mailbox_insert_nth;
          prop_mailbox_insert_model;
          prop_mailbox_model;
        ] );
      ( "faults",
        [
          prop_faulty_run_deterministic;
          prop_faulty_run_conforms;
          prop_zero_rate_spec_is_identity;
          Alcotest.test_case "partition severs links" `Quick
            test_partition_severs_links;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
          Alcotest.test_case "duplication counted" `Quick
            test_duplication_counted;
        ] );
      ( "partition-windows",
        [
          Alcotest.test_case "window bounds inclusive" `Quick
            test_partition_window_inclusive;
          Alcotest.test_case "overlapping windows conjoin" `Quick
            test_partition_windows_conjoin;
          Alcotest.test_case "ungrouped pid isolated" `Quick
            test_partition_ungrouped_pid_isolated;
          prop_partition_self_send_exempt;
          prop_severed_beats_rates;
        ] );
      ( "shrinker-meta",
        [
          Alcotest.test_case "universe shrinks to minimal" `Quick
            test_universe_shrinks_to_minimal;
          Alcotest.test_case "fault spec shrinks to one dimension" `Quick
            test_faults_shrink_to_empty_dimensions;
        ] );
      ( "runner",
        [
          Alcotest.test_case "fairness" `Quick test_runner_fairness;
          Alcotest.test_case "metrics" `Quick test_runner_metrics;
          Alcotest.test_case "crash respected" `Quick
            test_runner_crash_respected;
          Alcotest.test_case "no step after crash (seeds)" `Quick
            test_runner_no_step_after_crash_all_patterns;
          Alcotest.test_case "times strictly increasing" `Quick
            test_runner_times_strictly_increasing;
          Alcotest.test_case "delivery bound" `Quick
            test_runner_delivery_bound;
          Alcotest.test_case "eventual delivery" `Quick
            test_runner_eventual_delivery;
          Alcotest.test_case "deterministic given seed" `Quick
            test_runner_deterministic;
          Alcotest.test_case "stop predicate" `Quick
            test_runner_stop_predicate;
        ] );
      ( "script-session",
        [
          Alcotest.test_case "exact sequence" `Quick
            test_script_exact_sequence;
          Alcotest.test_case "script errors" `Quick test_script_errors;
          Alcotest.test_case "session feedback" `Quick test_session_feedback;
          Alcotest.test_case "worst pattern" `Quick test_worst_pattern;
          Alcotest.test_case "session crash enforced" `Quick
            test_session_crash_enforced;
          Alcotest.test_case "scripted run replays" `Quick
            test_scripted_run_replays;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "fair runs conform" `Quick
            test_conformance_fair_run;
          Alcotest.test_case "unfair script detected" `Quick
            test_conformance_unfair_script;
          Alcotest.test_case "wrong detector history rejected" `Quick
            test_conformance_wrong_fd;
          Alcotest.test_case "empty run conforms trivially" `Quick
            test_conformance_empty_run;
          Alcotest.test_case "unrecorded run rejected" `Quick
            test_conformance_unrecorded_run;
        ] );
      ( "replay-merge",
        [
          Alcotest.test_case "replay reproduces run" `Quick
            test_replay_reproduces_run;
          Alcotest.test_case "replay rejects bogus message" `Quick
            test_replay_rejects_unsent_message;
          Alcotest.test_case "merge disjoint runs (Lemma 2.2)" `Quick
            test_merge_disjoint_runs;
          prop_replay_roundtrip_anuc;
          prop_replay_roundtrip_mr;
          prop_replay_roundtrip_ct;
        ] );
    ]
