(* Tests for the process-set kernel: bitset algebra and quorum sets. *)
open Procset

let pset = Alcotest.testable Pset.pp Pset.equal

(* -------------------------------------------------------------- *)
(* Unit tests                                                     *)
(* -------------------------------------------------------------- *)

let test_empty_full () =
  Alcotest.(check int) "empty cardinal" 0 (Pset.cardinal Pset.empty);
  Alcotest.(check int) "full 5 cardinal" 5 (Pset.cardinal (Pset.full ~n:5));
  Alcotest.(check bool) "empty is_empty" true (Pset.is_empty Pset.empty);
  Alcotest.(check bool)
    "full not empty" false
    (Pset.is_empty (Pset.full ~n:3));
  Alcotest.(check (list int)) "full 3 elements" [ 0; 1; 2 ]
    (Pset.elements (Pset.full ~n:3))

let test_add_remove_mem () =
  let s = Pset.of_list [ 1; 3; 5 ] in
  Alcotest.(check bool) "mem 3" true (Pset.mem 3 s);
  Alcotest.(check bool) "not mem 2" false (Pset.mem 2 s);
  Alcotest.(check pset) "remove 3" (Pset.of_list [ 1; 5 ]) (Pset.remove 3 s);
  Alcotest.(check pset) "add 2" (Pset.of_list [ 1; 2; 3; 5 ]) (Pset.add 2 s);
  Alcotest.(check pset) "add idempotent" s (Pset.add 3 s);
  Alcotest.(check pset) "remove absent" s (Pset.remove 2 s)

let test_set_algebra () =
  let a = Pset.of_list [ 0; 1; 2 ] and b = Pset.of_list [ 2; 3 ] in
  Alcotest.(check pset) "union" (Pset.of_list [ 0; 1; 2; 3 ]) (Pset.union a b);
  Alcotest.(check pset) "inter" (Pset.singleton 2) (Pset.inter a b);
  Alcotest.(check pset) "diff" (Pset.of_list [ 0; 1 ]) (Pset.diff a b);
  Alcotest.(check bool) "intersects" true (Pset.intersects a b);
  Alcotest.(check bool)
    "disjoint" true
    (Pset.disjoint (Pset.of_list [ 0; 1 ]) (Pset.of_list [ 2; 3 ]));
  Alcotest.(check bool) "subset" true (Pset.subset (Pset.singleton 1) a);
  Alcotest.(check bool) "not subset" false (Pset.subset b a)

let test_min_elt () =
  Alcotest.(check int) "min of {3,5,7}" 3
    (Pset.min_elt (Pset.of_list [ 5; 3; 7 ]));
  Alcotest.(check int) "min singleton" 0 (Pset.min_elt (Pset.singleton 0));
  Alcotest.check_raises "min of empty" Not_found (fun () ->
      ignore (Pset.min_elt Pset.empty))

let test_majority_complement () =
  Alcotest.(check bool)
    "3 of 5 is majority" true
    (Pset.is_majority ~n:5 (Pset.of_list [ 0; 1; 2 ]));
  Alcotest.(check bool)
    "2 of 4 is not majority" false
    (Pset.is_majority ~n:4 (Pset.of_list [ 0; 1 ]));
  Alcotest.(check pset) "complement"
    (Pset.of_list [ 2; 3 ])
    (Pset.complement ~n:4 (Pset.of_list [ 0; 1 ]))

let test_subsets () =
  let subs = Pset.subsets (Pset.of_list [ 0; 1; 2 ]) in
  Alcotest.(check int) "2^3 subsets" 8 (List.length subs);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        "subset of universe" true
        (Pset.subset s (Pset.of_list [ 0; 1; 2 ])))
    subs

let test_bounds () =
  Alcotest.check_raises "full too large"
    (Invalid_argument "Pset.full: n = 63 out of [0, 62]") (fun () ->
      ignore (Pset.full ~n:63));
  Alcotest.check_raises "singleton negative"
    (Invalid_argument "Pset: process id -1 out of [0, 62)") (fun () ->
      ignore (Pset.singleton (-1)))

let test_qset_basics () =
  let q1 = Pset.of_list [ 0; 1 ] and q2 = Pset.of_list [ 2; 3 ] in
  let s = Qset.of_list [ q1; q2; q1 ] in
  Alcotest.(check int) "dedup" 2 (Qset.cardinal s);
  Alcotest.(check bool) "mem" true (Qset.mem q1 s);
  Alcotest.(check bool)
    "disjoint pair found" true
    (Qset.exists_disjoint_pair (Qset.singleton q1) (Qset.singleton q2));
  Alcotest.(check bool)
    "no disjoint pair" false
    (Qset.exists_disjoint_pair (Qset.singleton q1)
       (Qset.singleton (Pset.of_list [ 1; 2 ])))

(* -------------------------------------------------------------- *)
(* Property tests                                                 *)
(* -------------------------------------------------------------- *)

let gen_pset n =
  QCheck.map
    ~rev:(fun s ->
      List.fold_left (fun acc p -> acc lor (1 lsl p)) 0 (Pset.elements s))
    (fun bits ->
      List.fold_left
        (fun acc p -> if bits land (1 lsl p) <> 0 then Pset.add p acc else acc)
        Pset.empty
        (List.init n (fun i -> i)))
    QCheck.(int_bound ((1 lsl n) - 1))

let n_univ = 10

let props =
  let ps = gen_pset n_univ in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"union commutative" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) -> Pset.equal (Pset.union a b) (Pset.union b a)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"inter commutative" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) -> Pset.equal (Pset.inter a b) (Pset.inter b a)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"union associative" ~count:500
         QCheck.(triple ps ps ps)
         (fun (a, b, c) ->
           Pset.equal
             (Pset.union a (Pset.union b c))
             (Pset.union (Pset.union a b) c)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"inter distributes over union" ~count:500
         QCheck.(triple ps ps ps)
         (fun (a, b, c) ->
           Pset.equal
             (Pset.inter a (Pset.union b c))
             (Pset.union (Pset.inter a b) (Pset.inter a c))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"diff is inter with complement" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) ->
           Pset.equal (Pset.diff a b)
             (Pset.inter a (Pset.complement ~n:n_univ b))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"intersects iff inter nonempty" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) ->
           Bool.equal (Pset.intersects a b)
             (not (Pset.is_empty (Pset.inter a b)))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"subset iff diff empty" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) ->
           Bool.equal (Pset.subset a b) (Pset.is_empty (Pset.diff a b))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"cardinal union + cardinal inter" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) ->
           Pset.cardinal (Pset.union a b) + Pset.cardinal (Pset.inter a b)
           = Pset.cardinal a + Pset.cardinal b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"elements sorted and roundtrip" ~count:500 ps
         (fun a ->
           let elts = Pset.elements a in
           List.sort Int.compare elts = elts
           && Pset.equal (Pset.of_list elts) a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"fold counts cardinal" ~count:500 ps (fun a ->
           Pset.fold (fun _ acc -> acc + 1) a 0 = Pset.cardinal a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random_nonempty_subset is nonempty subset"
         ~count:500
         QCheck.(pair ps int)
         (fun (a, seed) ->
           QCheck.assume (not (Pset.is_empty a));
           let rng = Random.State.make [| seed |] in
           let sub = Pset.random_nonempty_subset rng a in
           (not (Pset.is_empty sub)) && Pset.subset sub a));
  ]

(* -------------------------------------------------------------- *)
(* Quorum families: the intersection-algebra law suite             *)
(* -------------------------------------------------------------- *)

(* (n, family) pairs over small universes; subsets of the universe
   are enumerable (2^n), so the laws quantify exhaustively over
   quorums inside each sampled family. *)
let arb_sized_family =
  let gen =
    QCheck.Gen.(
      int_range 2 6 >>= fun n ->
      Tutil.family_spec_gen ~n >|= fun spec -> (n, spec))
  in
  let print (n, spec) =
    Printf.sprintf "n=%d %s" n (Tutil.print_family_spec spec)
  in
  let shrink (n, spec) =
    QCheck.Iter.(Tutil.shrink_family_spec spec >|= fun s -> (n, s))
  in
  QCheck.make ~print ~shrink gen

let quorums_of fam ~n ~within =
  List.filter (Quorum_family.is_quorum fam ~n) (Pset.subsets within)

let fam_props =
  let mk name count prop =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name ~count arb_sized_family prop)
  in
  [
    (* The law Sigma legality rests on: every shipped family is
       uniform, so any two quorums of the universe intersect. *)
    mk "any two quorums intersect" 150 (fun (n, spec) ->
        let fam = Tutil.spec_family spec in
        let qs = quorums_of fam ~n ~within:(Pset.full ~n) in
        List.for_all
          (fun q1 -> List.for_all (fun q2 -> Pset.intersects q1 q2) qs)
          qs);
    (* Monotonicity — what Sigma-nu+'s owner-addition and the A_nuc
       quorum guard lean on. *)
    mk "supersets of quorums are quorums" 300 (fun (n, spec) ->
        let fam = Tutil.spec_family spec in
        List.for_all
          (fun q ->
            if not (Quorum_family.is_quorum fam ~n q) then true
            else
              List.for_all
                (fun extra ->
                  Quorum_family.is_quorum fam ~n (Pset.union q extra))
                (Pset.subsets (Pset.full ~n)))
          (Pset.subsets (Pset.full ~n)));
    (* min_quorums is exactly the set of minimal quorums, each of
       which loses quorumhood on removing any single member. *)
    mk "min_quorums are exactly the minimal quorums" 150 (fun (n, spec) ->
        let fam = Tutil.spec_family spec in
        let mins = Quorum_family.min_quorums fam ~n ~within:(Pset.full ~n) in
        List.for_all (Quorum_family.is_min_quorum fam ~n) mins
        && List.for_all
             (fun q ->
               Bool.equal
                 (Quorum_family.is_min_quorum fam ~n q)
                 (List.exists (Pset.equal q) mins))
             (Pset.subsets (Pset.full ~n))
        && List.for_all
             (fun q ->
               Pset.fold
                 (fun p acc ->
                   acc
                   && not (Quorum_family.is_quorum fam ~n (Pset.remove p q)))
                 q true)
             mins);
    (* validate's liveness clause is is_quorum on the live set
       (monotonicity makes the two formulations coincide). *)
    mk "validate Ok iff live set is a quorum" 300 (fun (n, spec) ->
        let fam = Tutil.spec_family spec in
        List.for_all
          (fun live ->
            Bool.equal
              (Result.is_ok (Quorum_family.validate fam ~n ~live))
              (Quorum_family.is_quorum fam ~n live))
          (Pset.subsets (Pset.full ~n)));
    (* resilience = largest f with every f-crash surviving: pinned
       exhaustively against the definition. *)
    mk "resilience bound is exact" 100 (fun (n, spec) ->
        let fam = Tutil.spec_family spec in
        let res = Quorum_family.resilience fam ~n in
        let survives crashed =
          Quorum_family.is_quorum fam ~n
            (Pset.diff (Pset.full ~n) crashed)
        in
        let all_of_size k =
          List.filter
            (fun s -> Pset.cardinal s = k)
            (Pset.subsets (Pset.full ~n))
        in
        res >= 0
        && List.for_all survives (all_of_size res)
        && (res = n || not (List.for_all survives (all_of_size (res + 1)))));
    (* grow_quorum: a random grow either lands inside the pool on a
       real quorum, or proves the pool holds none. *)
    mk "grow_quorum sound and complete" 200 (fun (n, spec) ->
        let fam = Tutil.spec_family spec in
        List.for_all
          (fun pool ->
            let rng = Random.State.make [| n; Hashtbl.hash spec |] in
            match Quorum_family.grow_quorum fam ~n rng ~pool with
            | Some q ->
              Pset.subset q pool && Quorum_family.is_quorum fam ~n q
            | None -> not (Quorum_family.is_quorum fam ~n pool))
          (Pset.subsets (Pset.full ~n)));
    (* Satellite: Qset.exists_disjoint_pair is the exact negation of
       pairwise intersection, pinned over the quorums each shipped
       family induces on two random pools (and, for uniform
       families, equivalent to the intersection law above). *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"exists_disjoint_pair negates pairwise \
                               intersection (family quorums)"
         ~count:200
         QCheck.(pair arb_sized_family (pair (gen_pset 6) (gen_pset 6)))
         (fun ((n, spec), (pool_a, pool_b)) ->
           let fam = Tutil.spec_family spec in
           let clip pool = Pset.inter pool (Pset.full ~n) in
           let qs pool =
             Quorum_family.min_quorums fam ~n ~within:(clip pool)
           in
           let qa = qs pool_a and qb = qs pool_b in
           QCheck.assume (qa <> [] && qb <> []);
           Bool.equal
             (Qset.exists_disjoint_pair (Qset.of_list qa) (Qset.of_list qb))
             (not
                (List.for_all
                   (fun q1 ->
                     List.for_all (fun q2 -> Pset.intersects q1 q2) qb)
                   qa))));
    (* Same law over arbitrary (non-quorum) set collections — the
       negation is exact for any pair of Qsets, not just uniform
       families' (where the disjoint branch is unreachable). *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"exists_disjoint_pair negates pairwise \
                               intersection (arbitrary qsets)"
         ~count:500
         QCheck.(
           pair
             (small_list (gen_pset n_univ))
             (small_list (gen_pset n_univ)))
         (fun (la, lb) ->
           let a = Qset.of_list la and b = Qset.of_list lb in
           Bool.equal
             (Qset.exists_disjoint_pair a b)
             (not
                (List.for_all
                   (fun q1 -> List.for_all (Pset.intersects q1) lb)
                   la))));
    (* Degeneracy: all-ones weighted votes are exactly majority. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"all-ones weighted = majority" ~count:100
         QCheck.(int_range 1 8)
         (fun n ->
           let ones =
             Quorum_family.weighted ~weights:(List.init n (fun _ -> 1))
           in
           List.for_all
             (fun s ->
               Bool.equal
                 (Quorum_family.is_quorum ones ~n s)
                 (Quorum_family.is_quorum Quorum_family.majority ~n s))
             (Pset.subsets (Pset.full ~n))));
    (* Grid duality: transposing the tiling permutes the quorums. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"grid transpose duality" ~count:100
         QCheck.(pair (int_range 1 3) (int_range 1 3))
         (fun (r, c) ->
           let n = r * c in
           let g = Quorum_family.grid ~rows:r ~cols:c () in
           let gt = Quorum_family.grid ~rows:c ~cols:r () in
           let transpose s =
             Pset.fold
               (fun p acc -> Pset.add ((p mod c * r) + (p / c)) acc)
               s Pset.empty
           in
           List.for_all
             (fun s ->
               Bool.equal
                 (Quorum_family.is_quorum g ~n s)
                 (Quorum_family.is_quorum gt ~n (transpose s)))
             (Pset.subsets (Pset.full ~n))));
  ]

(* Typed errors and the --quorum spellings. *)
let test_family_errors () =
  (match
     Quorum_family.validate (Quorum_family.grid ~rows:2 ~cols:2 ()) ~n:5
       ~live:(Pset.full ~n:5)
   with
  | Error (Quorum_family.Bad_shape { family; n; _ }) ->
    Alcotest.(check string) "bad shape family" "grid:2x2" family;
    Alcotest.(check int) "bad shape n" 5 n
  | Ok () | Error (Quorum_family.No_live_quorum _) ->
    Alcotest.fail "ragged grid must be Bad_shape");
  (match
     Quorum_family.validate Quorum_family.majority ~n:5
       ~live:(Pset.of_list [ 0; 1 ])
   with
  | Error (Quorum_family.No_live_quorum { family; n; live }) ->
    Alcotest.(check string) "no live family" "majority" family;
    Alcotest.(check int) "no live n" 5 n;
    Alcotest.(check pset) "no live set" (Pset.of_list [ 0; 1 ]) live
  | Ok () | Error (Quorum_family.Bad_shape _) ->
    Alcotest.fail "minority live set must be No_live_quorum");
  Alcotest.(check bool)
    "error_to_string nonempty" true
    (String.length
       (Quorum_family.error_to_string
          (Quorum_family.Bad_shape { family = "x"; n = 1; reason = "r" }))
    > 0)

let test_family_spellings () =
  List.iter
    (fun (s, expect) ->
      match Quorum_family.of_string s with
      | Ok fam ->
        Alcotest.(check string)
          (Printf.sprintf "of_string %s" s)
          expect (Quorum_family.name fam)
      | Error e -> Alcotest.failf "of_string %s: %s" s e)
    [
      ("majority", "majority");
      ("super:1", "super:1");
      ("weighted:2,1,1", "weighted:2,1,1");
      ("grid:2x2", "grid:2x2");
      ("grid", "grid");
    ];
  (match Quorum_family.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus spelling must be rejected");
  match Quorum_family.of_string "super:x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "super:x must be rejected"

let () =
  Alcotest.run "procset"
    [
      ( "pset-unit",
        [
          Alcotest.test_case "empty and full" `Quick test_empty_full;
          Alcotest.test_case "add remove mem" `Quick test_add_remove_mem;
          Alcotest.test_case "set algebra" `Quick test_set_algebra;
          Alcotest.test_case "min_elt" `Quick test_min_elt;
          Alcotest.test_case "majority and complement" `Quick
            test_majority_complement;
          Alcotest.test_case "subsets" `Quick test_subsets;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "qset basics" `Quick test_qset_basics;
        ] );
      ("pset-properties", props);
      ( "quorum-family-unit",
        [
          Alcotest.test_case "typed errors" `Quick test_family_errors;
          Alcotest.test_case "--quorum spellings" `Quick
            test_family_spellings;
        ] );
      ("quorum-family-laws", fam_props);
    ]
