(* Tests for the happens-before DPOR layer of lib/mc: the differential
   battery pinning --reduction dpor to --reduction none (same verdict,
   same distinct states, same certified counterexamples, fewer
   transitions) across every menu family and depths 3-7; qcheck
   properties of the independence relation and of adjacent-swap
   commutation; the Cover memo-record unit tests (including the PR-2
   mixture-absorption regression); revisit-ordering properties of the
   Cover record under the Striped table; and dpor parallel
   equivalence. *)
open Procset

module M_naive = Mc.Make (Consensus.Mr.With_quorum)
module M_anuc = Mc.Make (Core.Anuc)
module M_maj = Mc.Make (Consensus.Mr.Majority)
module M_ct = Mc.Make (Consensus.Ct)

(* The E11 universe, as in test_mc. *)
let n = 3
let faulty = Pset.singleton 2
let proposals p = if Pset.mem p faulty then 1 else 0
let pattern ~depth = Sim.Failure_pattern.make ~n ~crashes:[ (2, depth + 1) ]

(* -------------------------------------------------------------- *)
(* Differential battery: dpor vs none, per family, depths 3-7     *)
(* -------------------------------------------------------------- *)

(* The reduction contract under test: DPOR prunes transitions only.
   Verdict, distinct-state count and decided-leaf count must equal
   the unreduced run's at every depth, on every menu family — with
   the loss budgets 0 and 1 exercising the drop alphabet (a drop's
   fault verdict is part of the move, so slept drops must commute
   with the budget accounting). [run] returns the order-independent
   observables: (violation is none, stats). *)
let check_differential ~name ~depths
    (run : reduction:Mc.reduction -> depth:int -> bool * Mc.stats) =
  List.iter
    (fun depth ->
      let tag s = Printf.sprintf "%s depth %d: %s" name depth s in
      let none_v, none = run ~reduction:Mc.No_reduction ~depth in
      let dpor_v, dpor = run ~reduction:Mc.Dpor ~depth in
      Alcotest.(check bool) (tag "same verdict") none_v dpor_v;
      Alcotest.(check int)
        (tag "same distinct states")
        none.Mc.distinct_states dpor.Mc.distinct_states;
      Alcotest.(check int)
        (tag "same decided leaves")
        none.Mc.decided_leaves dpor.Mc.decided_leaves;
      Alcotest.(check bool)
        (tag "dpor takes no more transitions")
        true
        (dpor.Mc.transitions <= none.Mc.transitions);
      Alcotest.(check bool)
        (tag "neither truncated")
        false
        (none.Mc.truncated || dpor.Mc.truncated))
    depths

let naive_run ~menu ?max_drops () ~reduction ~depth =
  let pattern = pattern ~depth in
  let props =
    M_naive.consensus_props ~decision:Consensus.Mr.With_quorum.decision
      ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    M_naive.decided_stop ~decision:Consensus.Mr.With_quorum.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  let r =
    M_naive.run ~reduction ?max_drops ~n ~menu ~depth ~inputs:proposals
      ~props ~stop ()
  in
  (Option.is_none r.M_naive.violation, r.M_naive.stats)

let depths = [ 3; 4; 5; 6; 7 ]

let test_differential_contamination () =
  check_differential ~name:"contamination" ~depths
    (naive_run ~menu:(Mc.Menu.contamination ~n ~faulty ()) ())

let test_differential_lossy_budget_0 () =
  check_differential ~name:"lossy/0" ~depths
    (naive_run ~menu:(Mc.Menu.lossy ~n ~faulty ()) ~max_drops:0 ())

let test_differential_lossy_budget_1 () =
  check_differential ~name:"lossy/1" ~depths
    (naive_run ~menu:(Mc.Menu.lossy ~n ~faulty ()) ~max_drops:1 ())

let test_differential_full_class () =
  check_differential ~name:"full" ~depths
    (naive_run ~menu:(Mc.Menu.omega_sigma_nu ~n ~faulty) ())

let test_differential_omega_sigma () =
  check_differential ~name:"omega-sigma" ~depths
    (naive_run ~menu:(Mc.Menu.omega_sigma ~n ~faulty) ())

let test_differential_anuc_plus () =
  check_differential ~name:"contamination+" ~depths
    (fun ~reduction ~depth ->
      let pattern = pattern ~depth in
      let props =
        M_anuc.consensus_props ~decision:Core.Anuc.decision ~proposals
          ~flavour:Consensus.Spec.Nonuniform ~pattern
      in
      let stop =
        M_anuc.decided_stop ~decision:Core.Anuc.decision
          ~scope:(Sim.Failure_pattern.correct pattern)
      in
      let r =
        M_anuc.run ~reduction ~n
          ~menu:(Mc.Menu.contamination ~plus:true ~n ~faulty ())
          ~depth ~inputs:proposals ~props ~stop ()
      in
      (Option.is_none r.M_anuc.violation, r.M_anuc.stats))

let test_differential_leader_only () =
  check_differential ~name:"leader-only" ~depths (fun ~reduction ~depth ->
      let pattern = pattern ~depth in
      let props =
        M_maj.consensus_props ~decision:Consensus.Mr.Majority.decision
          ~proposals ~flavour:Consensus.Spec.Uniform ~pattern
      in
      let r =
        M_maj.run ~reduction ~n
          ~menu:(Mc.Menu.leader_only ~n ~faulty)
          ~depth ~inputs:proposals ~props ()
      in
      (Option.is_none r.M_maj.violation, r.M_maj.stats))

let test_differential_suspects () =
  check_differential ~name:"suspects" ~depths (fun ~reduction ~depth ->
      let pattern = pattern ~depth in
      let props =
        M_ct.consensus_props ~decision:Consensus.Ct.decision ~proposals
          ~flavour:Consensus.Spec.Uniform ~pattern
      in
      let r =
        M_ct.run ~reduction ~n
          ~menu:(Mc.Menu.suspects ~n ~faulty)
          ~depth ~inputs:proposals ~props ()
      in
      (Option.is_none r.M_ct.violation, r.M_ct.stats))

(* -------------------------------------------------------------- *)
(* Family-parameterized menus: none vs sleep vs dpor               *)
(* -------------------------------------------------------------- *)

(* The family menus change the move alphabet (different quorum sets
   per process), so sleep-set and happens-before independence are
   re-exercised on shapes the majority battery above never produces
   — e.g. the full-set min-quorum of super:1, or the owner-added
   grid lines at n = 4. All three reductions must stay verdict- and
   distinct-state-equal; the two pruners must not take more
   transitions than the unreduced run. *)
let check_differential3 ~name ~depths
    (run : reduction:Mc.reduction -> depth:int -> bool * Mc.stats) =
  List.iter
    (fun depth ->
      let tag red s = Printf.sprintf "%s depth %d [%s]: %s" name depth red s in
      let none_v, none = run ~reduction:Mc.No_reduction ~depth in
      Alcotest.(check bool)
        (tag "none" "not truncated")
        false none.Mc.truncated;
      List.iter
        (fun (rname, red) ->
          let v, s = run ~reduction:red ~depth in
          Alcotest.(check bool) (tag rname "same verdict") none_v v;
          Alcotest.(check int)
            (tag rname "same distinct states")
            none.Mc.distinct_states s.Mc.distinct_states;
          Alcotest.(check int)
            (tag rname "same decided leaves")
            none.Mc.decided_leaves s.Mc.decided_leaves;
          Alcotest.(check bool)
            (tag rname "takes no more transitions")
            true
            (s.Mc.transitions <= none.Mc.transitions);
          Alcotest.(check bool) (tag rname "not truncated") false s.Mc.truncated)
        [ ("sleep", Mc.Sleep_sets); ("dpor", Mc.Dpor) ])
    depths

let test_differential_family_weighted () =
  check_differential3 ~name:"contamination[weighted:2,1,1]" ~depths
    (naive_run
       ~menu:
         (Mc.Menu.contamination
            ~quorum:(Quorum_family.weighted ~weights:[ 2; 1; 1 ])
            ~n ~faulty ())
       ())

let test_differential_family_super () =
  (* super:1 at n = 3: every offered family quorum contains the
     faulty side, so no contamination schedule exists — the verdict
     is clean at every depth, and all three reductions must agree. *)
  check_differential3 ~name:"contamination[super:1]" ~depths
    (naive_run
       ~menu:
         (Mc.Menu.contamination
            ~quorum:(Quorum_family.supermajority ~f:1)
            ~n ~faulty ())
       ())

let test_differential_family_grid () =
  (* grid:2x2 needs n = 4; shallower depths keep the unreduced
     baseline cheap (state count grows ~8x per extra process). *)
  let n = 4 in
  let faulty = Pset.singleton 3 in
  let proposals p = if Pset.mem p faulty then 1 else 0 in
  let menu =
    Mc.Menu.contamination
      ~quorum:(Quorum_family.grid ~rows:2 ~cols:2 ())
      ~n ~faulty ()
  in
  check_differential3 ~name:"contamination[grid:2x2]" ~depths:[ 3; 4; 5 ]
    (fun ~reduction ~depth ->
      let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (3, depth + 1) ] in
      let props =
        M_naive.consensus_props ~decision:Consensus.Mr.With_quorum.decision
          ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
      in
      let stop =
        M_naive.decided_stop ~decision:Consensus.Mr.With_quorum.decision
          ~scope:(Sim.Failure_pattern.correct pattern)
      in
      let r =
        M_naive.run ~reduction ~n ~menu ~depth ~inputs:proposals ~props ~stop
          ()
      in
      (Option.is_none r.M_naive.violation, r.M_naive.stats))

let test_differential_family_anuc_plus () =
  check_differential3 ~name:"contamination+[weighted:2,1,1]" ~depths
    (fun ~reduction ~depth ->
      let pattern = pattern ~depth in
      let props =
        M_anuc.consensus_props ~decision:Core.Anuc.decision ~proposals
          ~flavour:Consensus.Spec.Nonuniform ~pattern
      in
      let stop =
        M_anuc.decided_stop ~decision:Core.Anuc.decision
          ~scope:(Sim.Failure_pattern.correct pattern)
      in
      let r =
        M_anuc.run ~reduction ~n
          ~menu:
            (Mc.Menu.contamination ~plus:true
               ~quorum:(Quorum_family.weighted ~weights:[ 2; 1; 1 ])
               ~n ~faulty ())
          ~depth ~inputs:proposals ~props ~stop ()
      in
      (Option.is_none r.M_anuc.violation, r.M_anuc.stats))

(* Counterexample equality at depths where a violation exists: a
   user invariant violated early in the exploration. Both reductions
   must convict the same property, and both counterexamples must pass
   the independent replay certificate — DPOR may pick a different
   (commutation-equivalent) schedule, but never a bogus one. *)
let test_differential_cx_certified () =
  List.iter
    (fun depth ->
      let menu = Mc.Menu.contamination ~n ~faulty () in
      let props =
        [
          M_naive.invariant ~name:"nobody leaves round 1" (fun st ->
              if
                List.exists
                  (fun p -> Consensus.Mr.With_quorum.round (st p) >= 2)
                  [ 0; 1; 2 ]
              then Error "some process reached round 2"
              else Ok ());
        ]
      in
      let run reduction =
        M_naive.run ~reduction ~n ~menu ~depth ~inputs:proposals ~props ()
      in
      let none = run Mc.No_reduction and dpor = run Mc.Dpor in
      match (none.M_naive.violation, dpor.M_naive.violation) with
      | None, None -> ()
      | Some _, None | None, Some _ ->
        Alcotest.failf "depth %d: reductions disagree on the verdict" depth
      | Some cn, Some cd ->
        Alcotest.(check string)
          (Printf.sprintf "depth %d: same property convicted" depth)
          cn.M_naive.cx_property cd.M_naive.cx_property;
        List.iter
          (fun (cx : M_naive.counterexample) ->
            match M_naive.replay_counterexample ~n ~inputs:proposals cx with
            | Ok _ -> ()
            | Error e ->
              Alcotest.failf "depth %d: counterexample must replay: %s" depth
                e)
          [ cn; cd ])
    depths

(* The naive-Sigma-nu Section 6.3 counterexample survives the
   reduction at its certified horizon, with both certificates. *)
let test_naive_cx_under_dpor () =
  let depth = 32 in
  let pattern = pattern ~depth in
  let menu = Mc.Menu.contamination ~n ~faulty () in
  let props =
    M_naive.consensus_props ~decision:Consensus.Mr.With_quorum.decision
      ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    M_naive.decided_stop ~decision:Consensus.Mr.With_quorum.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  let r =
    M_naive.run ~reduction:Mc.Dpor ~n ~menu ~depth ~inputs:proposals ~props
      ~stop ()
  in
  match r.M_naive.violation with
  | None -> Alcotest.fail "dpor must still find the Sec-6.3 violation"
  | Some cx ->
    Alcotest.(check string) "the violated property is nonuniform agreement"
      "nonuniform agreement" cx.M_naive.cx_property;
    (match M_naive.replay_counterexample ~n ~inputs:proposals cx with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "counterexample must replay: %s" e);
    (match
       Mc.history_legal ~kind:Mc.Menu.Sigma_nu ~pattern cx.M_naive.cx_samples
     with
    | Ok () -> ()
    | Error e -> Alcotest.failf "sampled history must be legal: %s" e)

(* The reduction statistics are reduction-shaped: races and backtrack
   points exist only under dpor, and the dpor run is strictly cheaper
   than sleep sets alone on a space with commuting no-ops. *)
let test_reduction_stats_shape () =
  let depth = 6 in
  let pattern = pattern ~depth in
  let menu = Mc.Menu.contamination ~plus:true ~n ~faulty () in
  let props =
    M_anuc.consensus_props ~decision:Core.Anuc.decision ~proposals
      ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let run reduction =
    (M_anuc.run ~reduction ~n ~menu ~depth ~inputs:proposals ~props ())
      .M_anuc.stats
  in
  let none = run Mc.No_reduction in
  let sleep = run Mc.Sleep_sets in
  let dpor = run Mc.Dpor in
  Alcotest.(check int) "no races without dpor" 0 (none.Mc.races + sleep.Mc.races);
  Alcotest.(check int) "no backtracks without dpor" 0
    (none.Mc.backtracks + sleep.Mc.backtracks);
  Alcotest.(check bool) "dpor detects races" true (dpor.Mc.races > 0);
  Alcotest.(check bool) "races produce backtrack points" true
    (dpor.Mc.backtracks > 0);
  Alcotest.(check bool) "woken sleepers never exceed detected races" true
    (dpor.Mc.backtracks <= dpor.Mc.races);
  Alcotest.(check bool) "dpor < sleep transitions" true
    (dpor.Mc.transitions < sleep.Mc.transitions);
  Alcotest.(check bool) "sleep < none transitions" true
    (sleep.Mc.transitions < none.Mc.transitions)

(* -------------------------------------------------------------- *)
(* qcheck: the independence relation                               *)
(* -------------------------------------------------------------- *)

(* A generator over the real move shape: drops designate a pending
   message (m_recv = Some) and carry no detector value; lambda moves
   have no receive. *)
let fd_values =
  [
    Sim.Fd_value.Leader 0;
    Sim.Fd_value.Leader 1;
    Sim.Fd_value.Pair
      (Sim.Fd_value.Leader 0, Sim.Fd_value.Quorum (Pset.of_list [ 0; 1 ]));
  ]

let arb_move =
  QCheck.map
    (fun (pid, fd_ix, recv_ix, drop) ->
      let m_recv =
        if recv_ix = 0 then None
        else Some ((recv_ix - 1) mod 3, (recv_ix - 1) / 3)
      in
      let m_drop = drop && m_recv <> None in
      {
        M_naive.m_pid = pid;
        m_fd = (if m_drop then Sim.Fd_value.Unit else List.nth fd_values fd_ix);
        m_recv;
        m_drop;
      })
    QCheck.(quad (int_bound 2) (int_bound 2) (int_bound 9) bool)

let qtest_dependent_symmetric =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"move_dependent is symmetric" ~count:1000
       QCheck.(pair arb_move arb_move)
       (fun (a, b) ->
         M_naive.move_dependent a b = M_naive.move_dependent b a))

let qtest_dependent_reflexive =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"move_dependent is reflexive" ~count:500 arb_move
       (fun a -> M_naive.move_dependent a a))

(* Independence is irreflexive on same-channel pairs: two moves that
   both consume from the same (src, dst) channel — two drops of it,
   a drop and its delivery, or two deliveries — never commute. *)
let qtest_same_channel_dependent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"same-channel pairs are never independent"
       ~count:1000
       QCheck.(pair arb_move arb_move)
       (fun (a, b) ->
         match (a.M_naive.m_recv, b.M_naive.m_recv) with
         | Some (sa, _), Some (sb, _)
           when sa = sb && a.M_naive.m_pid = b.M_naive.m_pid ->
           M_naive.move_dependent a b
         | _ -> QCheck.assume_fail ()))

(* -------------------------------------------------------------- *)
(* qcheck: adjacent-swap commutation                               *)
(* -------------------------------------------------------------- *)

let lossy_menu = Mc.Menu.lossy ~n ~faulty ()
let menus = Array.init n (fun p -> lossy_menu.Mc.Menu.values p)

(* A random applicable schedule of the naive automaton under the
   lossy menu (so the walk can include drop moves). *)
let random_schedule rng ~len =
  let rec go cfg acc k =
    if k = 0 then List.rev acc
    else
      match
        M_naive.Space.enabled ~n ~delivery:`Fifo ~lossy:true ~menus cfg
      with
      | [] -> List.rev acc
      | moves ->
        let mv = List.nth moves (Random.State.int rng (List.length moves)) in
        go (M_naive.Space.apply ~n cfg mv) (mv :: acc) (k - 1)
  in
  go (M_naive.Space.initial ~n ~inputs:proposals) [] len

let apply_all moves =
  List.fold_left
    (fun acc mv ->
      match acc with
      | None -> None
      | Some cfg ->
        if M_naive.Space.applicable ~n cfg mv then
          Some (M_naive.Space.apply ~n cfg mv)
        else None)
    (Some (M_naive.Space.initial ~n ~inputs:proposals))
    moves

let swap_at i moves =
  let rec go k = function
    | a :: b :: tl when k = i -> b :: a :: tl
    | hd :: tl -> hd :: go (k + 1) tl
    | [] -> []
  in
  go 0 moves

(* Swapping an *applicable* independent adjacent pair yields a
   schedule that (a) reaches the Space-equal configuration, (b)
   concretizes to a run the replay certificate accepts, and (c) has
   the same canonical trace key. Label-independence does not imply
   the swap is applicable — the first move may causally enable the
   second (a step that sends the very message the next move
   delivers); the checker never needs those swaps (a slept move was
   enabled before the taken one by construction), so the property
   carries the same enabledness side condition. *)
let qtest_independent_swap_equivalent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"independent adjacent swaps commute" ~count:120
       QCheck.(pair small_nat (int_range 4 14))
       (fun (seed, len) ->
         let rng = Random.State.make [| 0x5DAB; seed |] in
         let moves = random_schedule rng ~len in
         let swappable =
           List.mapi (fun i _ -> i) moves
           |> List.filter (fun i ->
                  i < List.length moves - 1
                  && (not
                        (M_naive.move_dependent (List.nth moves i)
                           (List.nth moves (i + 1))))
                  && apply_all (swap_at i moves) <> None)
         in
         match swappable with
         | [] -> QCheck.assume_fail ()
         | _ ->
           let i =
             List.nth swappable
               (Random.State.int rng (List.length swappable))
           in
           let swapped = swap_at i moves in
           let certify ms =
             let steps, samples, states =
               M_naive.Space.concretize ~n ~inputs:proposals ms
             in
             let cx =
               {
                 M_naive.cx_property = "swap-certificate";
                 cx_detail = "";
                 cx_moves = ms;
                 cx_steps = steps;
                 cx_samples = samples;
                 cx_states = states;
               }
             in
             Result.is_ok
               (M_naive.replay_counterexample ~n ~inputs:proposals cx)
           in
           (match (apply_all moves, apply_all swapped) with
           | Some a, Some b -> M_naive.Space.equal a b
           | _ -> false)
           && M_naive.trace_key moves = M_naive.trace_key swapped
           && certify moves && certify swapped))

(* Dependent adjacent swaps must NOT be identified by the trace key
   when the moves differ — the canonicalization quotients by
   commutation only. (Equal adjacent moves swap to the same word.) *)
let qtest_dependent_swap_distinct =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"trace_key separates dependent-swap schedules" ~count:200
       QCheck.(pair arb_move arb_move)
       (fun (a, b) ->
         if M_naive.move_dependent a b && a <> b then
           M_naive.trace_key [ a; b ] <> M_naive.trace_key [ b; a ]
         else QCheck.assume_fail ()))

(* -------------------------------------------------------------- *)
(* Cover: the memo-coverage record                                 *)
(* -------------------------------------------------------------- *)

module Cov = Mc.Cover.Make (struct
  type t = int

  let equal = Int.equal
end)

let test_cover_absorbs_dominated () =
  let e = Cov.make ~remaining:5 ~drops:2 ~slept:[ 1 ] in
  (match Cov.revisit e ~remaining:4 ~drops:2 ~slept:[ 1; 3 ] with
  | `Absorbed -> ()
  | `Expand _ -> Alcotest.fail "dominated revisit must be absorbed");
  (* each budget axis independently breaks domination *)
  (match Cov.revisit e ~remaining:6 ~drops:0 ~slept:[ 1 ] with
  | `Absorbed -> Alcotest.fail "deeper budget must re-expand"
  | `Expand _ -> ());
  let e = Cov.make ~remaining:5 ~drops:2 ~slept:[ 1 ] in
  (match Cov.revisit e ~remaining:5 ~drops:3 ~slept:[ 1 ] with
  | `Absorbed -> Alcotest.fail "bigger loss budget must re-expand"
  | `Expand _ -> ());
  (* a stored sleep set NOT included in the revisit's breaks
     domination: the store pruned moves the revisit would explore *)
  let e = Cov.make ~remaining:5 ~drops:2 ~slept:[ 1 ] in
  match Cov.revisit e ~remaining:5 ~drops:2 ~slept:[ 2 ] with
  | `Absorbed -> Alcotest.fail "incomparable sleep set must re-expand"
  | `Expand slept' ->
    Alcotest.(check (list int)) "re-expansion under the intersection" []
      slept'

let test_cover_goal_absorbs_everything () =
  let e = Cov.goal () in
  match Cov.revisit e ~remaining:max_int ~drops:max_int ~slept:[] with
  | `Absorbed -> ()
  | `Expand _ -> Alcotest.fail "goal entries absorb every revisit"

(* The PR-2 regression: a revisit that dominates on one budget axis
   but not the other must NOT graft its budget onto the stored entry.
   The poisoned mixture (max remaining, max drops, intersected sleep
   set) would absorb a third visit whose schedules were never
   walked. *)
let test_cover_no_mixture_regression () =
  let e = Cov.make ~remaining:5 ~drops:0 ~slept:[ 1 ] in
  (match Cov.revisit e ~remaining:3 ~drops:5 ~slept:[ 2 ] with
  | `Absorbed -> Alcotest.fail "incomparable visit must re-expand"
  | `Expand slept' ->
    Alcotest.(check (list int)) "expands under the intersection" [] slept');
  (* the entry still describes the FIRST visit: remaining 5, drops 0 *)
  Alcotest.(check int) "remaining not mixed" 5 (Cov.remaining e);
  Alcotest.(check int) "drops not mixed" 0 (Cov.drops e);
  Alcotest.(check (list int)) "slept not mixed" [ 1 ] (Cov.slept e);
  (* the witness: (4, 4, []) is dominated by the mixture (5, 5, [])
     but by neither real visit — it must re-expand *)
  match Cov.revisit e ~remaining:4 ~drops:4 ~slept:[] with
  | `Absorbed ->
    Alcotest.fail
      "mixture absorption: this coverage was never actually walked"
  | `Expand _ -> ()

let test_cover_update_on_domination () =
  let e = Cov.make ~remaining:5 ~drops:0 ~slept:[ 1; 2 ] in
  (match Cov.revisit e ~remaining:6 ~drops:1 ~slept:[ 2; 3 ] with
  | `Absorbed -> Alcotest.fail "strictly deeper visit must re-expand"
  | `Expand slept' ->
    Alcotest.(check (list int)) "intersected sleep set" [ 2 ] slept');
  Alcotest.(check int) "remaining updated" 6 (Cov.remaining e);
  Alcotest.(check int) "drops updated" 1 (Cov.drops e);
  Alcotest.(check (list int)) "slept is the intersection" [ 2 ]
    (Cov.slept e);
  (* the updated entry describes the walk about to happen: it now
     absorbs what it dominates *)
  match Cov.revisit e ~remaining:6 ~drops:1 ~slept:[ 2; 9 ] with
  | `Absorbed -> ()
  | `Expand _ -> Alcotest.fail "updated entry must absorb dominated visits"

(* -------------------------------------------------------------- *)
(* qcheck: revisit ordering under the striped table                *)
(* -------------------------------------------------------------- *)

module Ikey = struct
  type t = int

  let equal = Int.equal
end

module Striped = Mc.Intern.Striped (Ikey)

let arb_visits =
  QCheck.list_of_size (QCheck.Gen.int_range 1 12)
    QCheck.(
      triple (int_bound 8) (int_bound 8)
        (list_of_size (Gen.int_range 0 3) (int_bound 4)))

(* The parallel checker applies revisits in whatever order the domains
   race to the stripe lock. Soundness must hold for EVERY order: a
   visit is absorbed only when some earlier visit dominated it, and
   after any prefix the entry still describes one walked exploration
   — its budgets are exactly some earlier visit's, with a sleep set
   included in that visit's. This is the no-mixture invariant under
   the exact with_key access pattern run_par uses. *)
let qtest_striped_revisit_ordering =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"striped revisits keep the no-mixture invariant"
       ~count:500 arb_visits (fun visits ->
         let tbl : Cov.entry Striped.t = Striped.create ~stripes:4 16 in
         let h = Mc.Intern.hashed Hashtbl.hash in
         let key = h 7 in
         let ok = ref true in
         (* every exploration actually performed: a fresh visit walks
            under its own sleep set, a re-expanded visit walks under
            the *intersected* sleep set that [revisit] hands back. *)
         let walked = ref [] in
         let subset xs ys = List.for_all (fun m -> List.mem m ys) xs in
         let entry_is_walked e ws =
           List.exists
             (fun (r, d, s) ->
               r = Cov.remaining e && d = Cov.drops e
               && subset s (Cov.slept e)
               && subset (Cov.slept e) s)
             ws
         in
         List.iter
           (fun (remaining, drops, slept) ->
             let decision =
               Striped.with_key tbl key (fun prev ->
                   match prev with
                   | None ->
                     (`Fresh, Some (Cov.make ~remaining ~drops ~slept))
                   | Some e -> (
                     match Cov.revisit e ~remaining ~drops ~slept with
                     | `Absorbed -> (`Absorbed e, None)
                     | `Expand slept' -> (`Expanded (e, slept'), None)))
             in
             match decision with
             | `Fresh -> walked := (remaining, drops, slept) :: !walked
             | `Absorbed e ->
               (* absorption only when some exploration already walked
                  dominates the current budgets with a smaller sleep
                  set — otherwise a schedule could be pruned that no
                  walk has covered (the PR-2 absorption bug). *)
               if
                 not
                   (List.exists
                      (fun (r, d, s) ->
                        r >= remaining && d >= drops && subset s slept)
                      !walked)
               then ok := false;
               if not (entry_is_walked e !walked) then ok := false
             | `Expanded (e, slept') ->
               walked := (remaining, drops, slept') :: !walked;
               (* the entry always describes exactly one walked
                  exploration — budgets and sleep set together, never
                  a mixture of two visits' fields *)
               if not (entry_is_walked e !walked) then ok := false)
           visits;
         !ok))

(* -------------------------------------------------------------- *)
(* Parallel dpor                                                   *)
(* -------------------------------------------------------------- *)

(* mc --reduction dpor --jobs 2 must agree with jobs=1 on every
   order-independent observable, exactly as the sleep-set checker
   does — the per-worker no-op caches and race counters may not leak
   into the verdict or the state count. *)
let test_dpor_parallel_matches_sequential () =
  let depth = 6 in
  let pattern = pattern ~depth in
  let menu = Mc.Menu.contamination ~plus:true ~n ~faulty () in
  let props =
    M_anuc.consensus_props ~decision:Core.Anuc.decision ~proposals
      ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    M_anuc.decided_stop ~decision:Core.Anuc.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  let run ~jobs =
    M_anuc.run ~reduction:Mc.Dpor ~jobs ~n ~menu ~depth ~inputs:proposals
      ~props ~stop ()
  in
  let seq = run ~jobs:1 and par = run ~jobs:2 in
  Alcotest.(check bool) "same verdict"
    (Option.is_none seq.M_anuc.violation)
    (Option.is_none par.M_anuc.violation);
  Alcotest.(check int) "same distinct states"
    seq.M_anuc.stats.Mc.distinct_states par.M_anuc.stats.Mc.distinct_states;
  Alcotest.(check int) "same decided leaves"
    seq.M_anuc.stats.Mc.decided_leaves par.M_anuc.stats.Mc.decided_leaves;
  Alcotest.(check bool) "neither truncated" false
    (seq.M_anuc.stats.Mc.truncated || par.M_anuc.stats.Mc.truncated)

(* The same under a loss budget: slept drops and the budget-aware
   memo record cross the striped table. *)
let test_dpor_parallel_lossy () =
  let depth = 5 in
  let pattern = pattern ~depth in
  let props =
    M_naive.consensus_props ~decision:Consensus.Mr.With_quorum.decision
      ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let run ~jobs =
    M_naive.run ~reduction:Mc.Dpor ~jobs ~n
      ~menu:(Mc.Menu.lossy ~n ~faulty ())
      ~depth ~max_drops:1 ~inputs:proposals ~props ()
  in
  let seq = run ~jobs:1 and par = run ~jobs:2 in
  Alcotest.(check bool) "same verdict"
    (Option.is_none seq.M_naive.violation)
    (Option.is_none par.M_naive.violation);
  Alcotest.(check int) "same distinct states"
    seq.M_naive.stats.Mc.distinct_states par.M_naive.stats.Mc.distinct_states

(* -------------------------------------------------------------- *)
(* E14 end to end, exactly as the experiments table runs it        *)
(* -------------------------------------------------------------- *)

let test_e14_quick_passes () =
  let row = Experiments.e14_dpor ~quick:true () in
  if not row.Experiments.pass then
    Alcotest.failf "E14 failed: %s" row.Experiments.measured

let test_b11_quick_consistent () =
  let rows = Experiments.b11_dpor_table ~quick:true () in
  Alcotest.(check int) "one row per reduction" 3 (List.length rows);
  List.iter
    (fun (r : Experiments.b11_row) ->
      if not r.Experiments.b11_pass then
        Alcotest.failf "b11 row %s must pass" r.Experiments.b11_reduction)
    rows;
  match rows with
  | [ none; sleep; dpor ] ->
    Alcotest.(check string) "row order" "none" none.Experiments.b11_reduction;
    Alcotest.(check string) "row order" "sleep"
      sleep.Experiments.b11_reduction;
    Alcotest.(check string) "row order" "dpor" dpor.Experiments.b11_reduction;
    Alcotest.(check bool) "dpor takes the fewest transitions" true
      (dpor.Experiments.b11_transitions <= sleep.Experiments.b11_transitions
      && sleep.Experiments.b11_transitions
         <= none.Experiments.b11_transitions)
  | _ -> assert false

let () =
  Alcotest.run "dpor"
    [
      ( "differential",
        [
          Alcotest.test_case "contamination, depths 3-7" `Quick
            test_differential_contamination;
          Alcotest.test_case "lossy budget 0, depths 3-7" `Quick
            test_differential_lossy_budget_0;
          Alcotest.test_case "lossy budget 1, depths 3-7" `Quick
            test_differential_lossy_budget_1;
          Alcotest.test_case "full class, depths 3-7" `Quick
            test_differential_full_class;
          Alcotest.test_case "omega-sigma, depths 3-7" `Quick
            test_differential_omega_sigma;
          Alcotest.test_case "contamination+ (A_nuc), depths 3-7" `Quick
            test_differential_anuc_plus;
          Alcotest.test_case "leader-only (majority), depths 3-7" `Quick
            test_differential_leader_only;
          Alcotest.test_case "family weighted:2,1,1, depths 3-7" `Quick
            test_differential_family_weighted;
          Alcotest.test_case "family super:1, depths 3-7" `Quick
            test_differential_family_super;
          Alcotest.test_case "family grid:2x2 (n=4), depths 3-5" `Quick
            test_differential_family_grid;
          Alcotest.test_case "family contamination+ (A_nuc), depths 3-7"
            `Quick test_differential_family_anuc_plus;
          Alcotest.test_case "suspects (CT), depths 3-7" `Quick
            test_differential_suspects;
          Alcotest.test_case "counterexamples certified equal" `Quick
            test_differential_cx_certified;
          Alcotest.test_case "Sec-6.3 cx survives dpor" `Quick
            test_naive_cx_under_dpor;
          Alcotest.test_case "reduction stats shape" `Quick
            test_reduction_stats_shape;
        ] );
      ( "independence",
        [
          qtest_dependent_symmetric;
          qtest_dependent_reflexive;
          qtest_same_channel_dependent;
          qtest_independent_swap_equivalent;
          qtest_dependent_swap_distinct;
        ] );
      ( "cover",
        [
          Alcotest.test_case "absorbs dominated revisits" `Quick
            test_cover_absorbs_dominated;
          Alcotest.test_case "goal absorbs everything" `Quick
            test_cover_goal_absorbs_everything;
          Alcotest.test_case "no-mixture regression (PR-2)" `Quick
            test_cover_no_mixture_regression;
          Alcotest.test_case "updates on dominating revisit" `Quick
            test_cover_update_on_domination;
          qtest_striped_revisit_ordering;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "dpor jobs=2 matches jobs=1 (A_nuc)" `Quick
            test_dpor_parallel_matches_sequential;
          Alcotest.test_case "dpor jobs=2 matches jobs=1 (lossy)" `Quick
            test_dpor_parallel_lossy;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "E14 (quick) passes" `Quick test_e14_quick_passes;
          Alcotest.test_case "B11 (quick) consistent" `Quick
            test_b11_quick_consistent;
        ] );
    ]
