(* Tests for the replicated-log library: multiplexed per-slot
   consensus instances over one simulated network. *)
open Procset
module R = Sim.Runner.Make (Smr.Over_anuc)

let commands_of p = List.init 10 (fun s -> (100 * (s + 1)) + p)

let run_smr ?(seed = 0) ?(n = 4) ?(crashes = []) ?(target_slots = 4)
    ?(max_steps = 30000) () =
  let pattern = Sim.Failure_pattern.make ~n ~crashes in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~seed pattern)
      (Fd.Oracle.sigma_nu_plus ~seed pattern)
  in
  let correct = Sim.Failure_pattern.correct pattern in
  let run =
    R.exec ~seed ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:commands_of ~max_steps
      ~stop:(fun st _ ->
        Pset.for_all
          (fun p -> Smr.Over_anuc.slots_decided (st p) >= target_slots)
          correct)
      ()
  in
  (pattern, run)

(* The fundamental SMR property: live replicas hold identical logs (one
   may trail the other; the shorter must be a prefix of the longer). *)
let check_prefix_consistency ~pattern (run : R.run) =
  let correct = Sim.Failure_pattern.correct pattern in
  let logs =
    Pset.fold
      (fun p acc -> (p, Smr.Over_anuc.log run.R.states.(p)) :: acc)
      correct []
  in
  List.iter
    (fun (p, lp) ->
      List.iter
        (fun (q, lq) ->
          let rec prefix a b =
            match a, b with
            | [], _ -> true
            | _, [] -> false
            | x :: a', y :: b' -> Consensus.Value.equal x y && prefix a' b'
          in
          let shorter, longer =
            if List.length lp <= List.length lq then (lp, lq) else (lq, lp)
          in
          Alcotest.(check bool)
            (Printf.sprintf "p%d and p%d logs prefix-consistent" p q)
            true (prefix shorter longer))
        logs)
    logs

let test_smr_no_crashes () =
  let pattern, run = run_smr ~target_slots:5 () in
  Alcotest.(check bool) "reached the slot target" true run.R.stopped_early;
  check_prefix_consistency ~pattern run;
  (* every decided command was submitted by somebody — the pending
     queue decouples slot numbers from submission order (a command
     lost to a competing proposal is re-queued for a later slot), so
     membership in the union of the streams is the right validity
     check, not positional agreement *)
  let submitted v =
    List.exists (fun p -> List.mem v (commands_of p)) (Pid.all ~n:4)
  in
  let some_log = Smr.Over_anuc.log run.R.states.(0) in
  List.iteri
    (fun s v ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d command %d was submitted" s v)
        true
        (Consensus.Value.equal v Smr.noop || submitted v))
    some_log;
  (* and nothing is applied twice *)
  let applied = List.filter (fun v -> v <> Smr.noop) some_log in
  Alcotest.(check int) "no duplicate application"
    (List.length applied)
    (List.length (List.sort_uniq compare applied))

let test_smr_with_crashes () =
  let pattern, run =
    run_smr ~seed:2 ~n:5 ~crashes:[ (4, 200); (3, 900) ] ~target_slots:4 ()
  in
  Alcotest.(check bool) "reached the slot target" true run.R.stopped_early;
  check_prefix_consistency ~pattern run

let test_smr_minority_correct () =
  (* three of five replicas crash: uniform replication would need a
     majority, nonuniform keeps going *)
  let pattern, run =
    run_smr ~seed:5 ~n:5
      ~crashes:[ (2, 150); (3, 400); (4, 700) ]
      ~target_slots:3 ~max_steps:40000 ()
  in
  Alcotest.(check bool) "reached the slot target" true run.R.stopped_early;
  check_prefix_consistency ~pattern run

let test_smr_seeds_sweep () =
  List.iter
    (fun seed ->
      let pattern, run =
        run_smr ~seed ~n:4 ~crashes:[ (3, 300) ] ~target_slots:3 ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d reached the target" seed)
        true run.R.stopped_early;
      check_prefix_consistency ~pattern run)
    [ 0; 1; 2; 3 ]

let test_smr_queue_exhaustion () =
  (* each replica submits one command; every submitted command is
     applied exactly once (losers of a slot are re-queued or
     forwarded to the leader, where the old positional lookup
     silently dropped them), and replication keeps deciding noops
     past the exhausted queues *)
  let n = 3 in
  let pattern = Sim.Failure_pattern.failure_free ~n in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~stab_time:0 pattern)
      (Fd.Oracle.sigma_nu_plus ~stab_time:0 pattern)
  in
  let target = 5 in
  let run =
    R.exec ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:(fun p -> [ 100 + p ])
      ~max_steps:30000
      ~stop:(fun st _ ->
        Pset.for_all
          (fun p -> Smr.Over_anuc.slots_decided (st p) >= target)
          (Pset.full ~n))
      ()
  in
  Alcotest.(check bool) "kept deciding past the queue" true
    run.R.stopped_early;
  List.iter
    (fun p ->
      let log = Smr.Over_anuc.log run.R.states.(p) in
      List.iter
        (fun v ->
          Alcotest.(check int)
            (Printf.sprintf "p%d applied command %d exactly once" p v)
            1
            (List.length (List.filter (Consensus.Value.equal v) log)))
        [ 100; 101; 102 ];
      Alcotest.(check bool)
        (Printf.sprintf "p%d decided noops past exhaustion" p)
        true
        (List.exists (Consensus.Value.equal Smr.noop) log))
    (Pid.all ~n)

(* Regression (pending-queue bug): the old positional lookup
   [List.nth_opt commands slot] re-proposed whatever command sat at
   the slot's index — a replica whose slot was won by a competing
   proposal skipped that index forever (loss), and a value appearing
   at two indexes was proposed and applied twice (duplication). The
   explicit pending queue dequeues on decision, re-queues losers, and
   filters already-applied values, so duplicated submissions apply
   once and no live replica's command is lost. *)
let test_smr_no_duplicate_application () =
  List.iter
    (fun seed ->
      let n = 4 in
      let pattern = Sim.Failure_pattern.make ~n ~crashes:[] in
      let oracle =
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed pattern)
          (Fd.Oracle.sigma_nu_plus ~seed pattern)
      in
      let run =
        R.exec ~seed ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
          ~inputs:(fun p -> [ 10 + p; 10 + p ])
          ~max_steps:30000
          ~stop:(fun st _ ->
            Pset.for_all
              (fun p -> Smr.Over_anuc.slots_decided (st p) >= 6)
              (Pset.full ~n))
          ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d reached the target" seed)
        true run.R.stopped_early;
      List.iter
        (fun p ->
          let applied =
            List.filter
              (fun v -> v <> Smr.noop)
              (Smr.Over_anuc.log run.R.states.(p))
          in
          Alcotest.(check int)
            (Printf.sprintf "seed %d p%d: no non-noop value applied twice"
               seed p)
            (List.length applied)
            (List.length (List.sort_uniq compare applied)))
        (Pid.all ~n))
    [ 0; 1; 2 ]

let test_smr_no_command_loss () =
  let n = 4 in
  let crashes = [ (3, 300) ] in
  let pattern = Sim.Failure_pattern.make ~n ~crashes in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~seed:0 pattern)
      (Fd.Oracle.sigma_nu_plus ~seed:0 pattern)
  in
  let correct = Sim.Failure_pattern.correct pattern in
  let inputs p = [ (10 * (p + 1)) + 1; (10 * (p + 1)) + 2 ] in
  let run =
    R.exec ~seed:0 ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs ~max_steps:30000
      ~stop:(fun st _ ->
        Pset.for_all
          (fun p -> Smr.Over_anuc.slots_decided (st p) >= 10)
          correct)
      ()
  in
  Alcotest.(check bool) "reached the slot target" true run.R.stopped_early;
  (* every command of every live replica made it into the log — the
     positional lookup lost a command whenever its index's slot was
     decided by someone else's proposal *)
  let log = Smr.Over_anuc.log run.R.states.(Pset.min_elt correct) in
  Pset.fold
    (fun p () ->
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Printf.sprintf "live p%d's command %d was applied" p v)
            true
            (List.exists (Consensus.Value.equal v) log))
        (inputs p))
    correct ()

(* Regression (unbounded observers): [slots_decided] is a counter,
   not a list length, so it survives compaction; [batches]/[log_base]
   expose the retained window. The old code had no compaction and
   recomputed the count by walking the whole log. *)
let test_smr_compaction_counts () =
  let module S =
    Smr.Make_tuned
      (struct
        let batch = 1
        let pipeline = 1
        let window = max_int
        let retain = 4
        let horizon = 8
      end)
      (struct
        include Core.Anuc

        let decision = Core.Anuc.decision
      end)
  in
  let module Rt = Sim.Runner.Make (S) in
  let n = 3 in
  let target = 12 in
  let pattern = Sim.Failure_pattern.failure_free ~n in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~seed:0 pattern)
      (Fd.Oracle.sigma_nu_plus ~seed:0 pattern)
  in
  let run =
    Rt.exec ~seed:0 ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:(fun p -> List.init 4 (fun i -> (10 * (p + 1)) + i))
      ~max_steps:30000
      ~stop:(fun st _ ->
        Pset.for_all (fun p -> S.slots_decided (st p) >= target)
          (Pset.full ~n))
      ()
  in
  Alcotest.(check bool) "reached the slot target" true run.Rt.stopped_early;
  let reference = run.Rt.states.(0) in
  List.iter
    (fun p ->
      let st = run.Rt.states.(p) in
      let decided = S.slots_decided st in
      let retained = List.length (S.batches st) in
      Alcotest.(check bool)
        (Printf.sprintf "p%d decided at least the target" p)
        true (decided >= target);
      Alcotest.(check bool)
        (Printf.sprintf "p%d retains at most 4 slots" p)
        true (retained <= 4);
      Alcotest.(check int)
        (Printf.sprintf "p%d count survives truncation" p)
        decided
        (S.log_base st + retained);
      Alcotest.(check bool)
        (Printf.sprintf "p%d compacted something" p)
        true
        (S.log_base st > 0);
      if S.log_base st = S.log_base reference then
        Alcotest.(check int)
          (Printf.sprintf "p%d digest matches p0 at equal base" p)
          (S.snapshot_digest reference) (S.snapshot_digest st))
    (Pid.all ~n)

(* Regression (unbounded instance map): decided instances retire once
   they fall below the horizon, so the map stays bounded over a
   1000-slot run where it used to grow with the log. A small horizon
   keeps the per-step pump cheap enough for a thousand slots in a
   test-sized step budget — the bound under the default horizon is
   exercised by test_serve's load runs. *)
let test_smr_bounded_instances () =
  let module S =
    Smr.Make_tuned
      (struct
        let batch = 1
        let pipeline = 1
        let window = max_int
        let retain = 16
        let horizon = 8
      end)
      (struct
        include Core.Anuc

        let decision = Core.Anuc.decision
      end)
  in
  let module Rt = Sim.Runner.Make (S) in
  let n = 3 in
  let target = 1000 in
  let pattern = Sim.Failure_pattern.failure_free ~n in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~seed:0 pattern)
      (Fd.Oracle.sigma_nu_plus ~seed:0 pattern)
  in
  let max_open = ref 0 in
  let bound = 8 + 1 + n + 1 in
  let run =
    Rt.exec ~seed:0 ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:(fun p -> [ 100 + p ])
      ~max_steps:1_000_000
      ~stop:(fun st _ ->
        List.iter
          (fun p -> max_open := max !max_open (S.open_instances (st p)))
          (Pid.all ~n);
        Pset.for_all
          (fun p -> S.slots_decided (st p) >= target)
          (Pset.full ~n))
      ()
  in
  Alcotest.(check bool) "decided 1000 slots" true run.Rt.stopped_early;
  List.iter
    (fun p -> max_open := max !max_open (S.open_instances run.Rt.states.(p)))
    (Pid.all ~n);
  Alcotest.(check bool)
    (Printf.sprintf "open instances bounded by the horizon (%d <= %d)"
       !max_open bound)
    true (!max_open <= bound)

(* Replication from the raw weakest detector: each slot runs the full
   Theorem 6.28 stack (emulation + A_nuc). Small target, generous
   budget — this is a composability check, not a throughput one. *)
let test_smr_over_stack () =
  let n = 4 in
  let module Rs = Sim.Runner.Make (Smr.Over_stack) in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (3, 400) ] in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~seed:1 pattern)
      (Fd.Oracle.sigma_nu ~seed:1 pattern)
  in
  let correct = Sim.Failure_pattern.correct pattern in
  let run =
    Rs.exec ~seed:1 ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:commands_of ~max_steps:30000
      ~stop:(fun st _ ->
        Pset.for_all (fun p -> Smr.Over_stack.slots_decided (st p) >= 2)
          correct)
      ()
  in
  Alcotest.(check bool) "two slots decided from raw (Omega, Sigma-nu)" true
    run.Rs.stopped_early;
  (* prefix consistency *)
  let logs =
    Pset.fold
      (fun p acc -> Smr.Over_stack.log run.Rs.states.(p) :: acc)
      correct []
  in
  match logs with
  | l0 :: rest ->
    let min_len =
      List.fold_left (fun acc l -> min acc (List.length l))
        (List.length l0) rest
    in
    let trunc l = List.filteri (fun i _ -> i < min_len) l in
    Alcotest.(check bool) "prefixes agree" true
      (List.for_all (fun l -> trunc l = trunc l0) rest)
  | [] -> Alcotest.fail "no live replicas"

let () =
  Alcotest.run "smr"
    [
      ( "replicated-log",
        [
          Alcotest.test_case "no crashes" `Quick test_smr_no_crashes;
          Alcotest.test_case "with crashes" `Quick test_smr_with_crashes;
          Alcotest.test_case "minority correct" `Quick
            test_smr_minority_correct;
          Alcotest.test_case "seed sweep" `Slow test_smr_seeds_sweep;
          Alcotest.test_case "queue exhaustion" `Quick
            test_smr_queue_exhaustion;
          Alcotest.test_case "no duplicate application" `Quick
            test_smr_no_duplicate_application;
          Alcotest.test_case "no command loss" `Quick test_smr_no_command_loss;
          Alcotest.test_case "compaction keeps counts" `Quick
            test_smr_compaction_counts;
          Alcotest.test_case "bounded instances" `Slow
            test_smr_bounded_instances;
          Alcotest.test_case "over the full stack" `Slow test_smr_over_stack;
        ] );
    ]
