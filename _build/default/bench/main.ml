(* The benchmark harness.

   The paper is a theory paper, so there are no tables or figures of
   measurements to replicate; its "evaluation" is a set of theorems.
   This harness regenerates, on every run:

   - the E-table: one row per theorem/proof-scenario experiment
     (E1-E9, see DESIGN.md), each validated by independent property
     checkers over randomized or scripted runs;
   - the B-tables: decision latency of the consensus algorithms
     across environments (B1), sensitivity to the detectors'
     stabilization time (B2), and the cost of the DAG-based
     transformation machinery (B3);
   - bechamel microbenchmarks of the substrate hot paths (B4).

   Run with: dune exec bench/main.exe *)
open Procset

let pf = Format.printf

let hr title =
  pf "@.===================================================================@.";
  pf "%s@." title;
  pf "===================================================================@."

(* ---------------------------------------------------------------- *)
(* E-table                                                           *)
(* ---------------------------------------------------------------- *)

let experiment_table () =
  hr "E-table: theorem validation (quick sweeps; full sweeps in `dune \
      runtest`)";
  let rows = Experiments.all ~quick:true () in
  List.iter (fun r -> pf "%a@.@." Experiments.pp_row r) rows;
  let failed = List.filter (fun r -> not r.Experiments.pass) rows in
  pf "E-table summary: %d/%d experiments PASS@."
    (List.length rows - List.length failed)
    (List.length rows)

(* ---------------------------------------------------------------- *)
(* B1: decision latency across environments                          *)
(* ---------------------------------------------------------------- *)

let b1_latency () =
  hr "B1: decision latency (avg over seeds; rounds = consensus rounds of \
      correct deciders)";
  pf "%s@." Experiments.latency_header;
  let seeds = [ 0; 1; 2; 3; 4 ] in
  List.iter
    (fun n ->
      List.iter
        (fun t ->
          if t < n then begin
            if 2 * t < n then begin
              pf "%a@." Experiments.pp_latency_row
                (Experiments.latency Experiments.Mr_majority ~n ~t ~seeds);
              pf "%a@." Experiments.pp_latency_row
                (Experiments.latency Experiments.Ct ~n ~t ~seeds)
            end;
            pf "%a@." Experiments.pp_latency_row
              (Experiments.latency Experiments.Mr_sigma ~n ~t ~seeds);
            pf "%a@." Experiments.pp_latency_row
              (Experiments.latency Experiments.Anuc ~n ~t ~seeds)
          end)
        [ 1; 2; 4 ])
    [ 3; 5; 7 ];
  pf "@.Stack (consensus from raw (Omega, Sigma-nu), incl. the emulation \
      layer):@.";
  List.iter
    (fun (n, t) ->
      pf "%a@." Experiments.pp_latency_row
        (Experiments.latency Experiments.Stack ~n ~t ~seeds:[ 0; 1; 2 ]))
    [ (4, 1); (4, 3) ]

(* ---------------------------------------------------------------- *)
(* B2: sensitivity to detector stabilization time                    *)
(* ---------------------------------------------------------------- *)

let b2_stabilization () =
  hr "B2: steps to full decision vs detector stabilization time (n=5, t=2)";
  pf "%-12s %10s %8s %12s@." "algorithm" "stab_time" "runs" "avg_steps";
  List.iter
    (fun (name, algo) ->
      let rows =
        Experiments.stabilization_series algo ~n:5 ~t:2
          ~stabs:[ 0; 50; 150; 300 ] ~seeds:[ 0; 1; 2 ]
      in
      List.iter
        (fun r ->
          pf "%-12s %10d %8d %12.1f@." name r.Experiments.stab_time
            r.Experiments.s_runs r.Experiments.s_avg_steps)
        rows)
    [ ("MR-Sigma", Experiments.Mr_sigma); ("A_nuc", Experiments.Anuc) ]

(* ---------------------------------------------------------------- *)
(* B3: transformation cost                                           *)
(* ---------------------------------------------------------------- *)

let b3_dag_growth () =
  hr "B3: T_{Sigma-nu -> Sigma-nu+} cost vs run length (n=4; DAG pruned to \
      a sliding window)";
  pf "%8s %10s %10s %12s %10s@." "steps" "dag_nodes" "weave_len"
    "extractions" "wall_ms";
  List.iter
    (fun r ->
      pf "%8d %10d %10d %12d %10.1f@." r.Experiments.d_steps
        r.Experiments.dag_nodes r.Experiments.spine_len
        r.Experiments.extractions_total r.Experiments.wall_ms)
    (Experiments.dag_growth ~n:4 ~steps_list:[ 200; 400; 800; 1600 ])

(* ---------------------------------------------------------------- *)
(* B5: the mechanism ablation                                        *)
(* ---------------------------------------------------------------- *)

let b5_ablation () =
  hr "B5: A_nuc mechanism ablation (scripted Sec-6.3 adversary + \
      randomized adversarial sweeps, n=4)";
  pf "%s@." Experiments.ablation_header;
  List.iter
    (fun r -> pf "%a@." Experiments.pp_ablation_row r)
    (Experiments.ablation ~quick:true ())

(* ---------------------------------------------------------------- *)
(* B4: bechamel microbenchmarks                                      *)
(* ---------------------------------------------------------------- *)

let bench_pset =
  let a = Pset.of_list [ 0; 2; 4; 6 ] and b = Pset.of_list [ 1; 2; 3 ] in
  Bechamel.Test.make ~name:"pset-inter-subset"
    (Bechamel.Staged.stage (fun () ->
         ignore (Pset.intersects a b);
         ignore (Pset.subset (Pset.inter a b) a)))

let bench_qhist_distrust =
  let h =
    List.fold_left
      (fun h (p, q) -> Core.Qhist.add h p (Pset.of_list q))
      Core.Qhist.empty
      [
        (0, [ 0; 1 ]);
        (0, [ 0; 2 ]);
        (1, [ 1; 2 ]);
        (2, [ 2; 3 ]);
        (3, [ 0; 3 ]);
        (3, [ 3 ]);
      ]
  in
  Bechamel.Test.make ~name:"qhist-distrusts"
    (Bechamel.Staged.stage (fun () ->
         ignore (Core.Qhist.distrusts ~self:0 ~n:4 h 3)))

let bench_dag_add =
  Bechamel.Test.make ~name:"dag-add-sample-100"
    (Bechamel.Staged.stage (fun () ->
         let g = ref Dagsim.Dag.empty in
         for i = 1 to 100 do
           g :=
             Dagsim.Dag.add_sample !g
               {
                 Dagsim.Node.owner = i mod 4;
                 index = 1 + (i / 4);
                 value = Sim.Fd_value.Quorum (Pset.singleton (i mod 4));
               }
         done))

let dag_200 =
  let g = ref Dagsim.Dag.empty in
  for i = 1 to 200 do
    g :=
      Dagsim.Dag.add_sample !g
        {
          Dagsim.Node.owner = i mod 4;
          index = 1 + (i / 4);
          value = Sim.Fd_value.Quorum (Pset.singleton (i mod 4));
        }
  done;
  !g

let bench_dag_weave =
  let from = List.hd (Dagsim.Dag.samples_of dag_200 0) in
  Bechamel.Test.make ~name:"dag-weave-200"
    (Bechamel.Staged.stage (fun () ->
         ignore (Dagsim.Dag.weave dag_200 ~from)))

let bench_anuc_consensus =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[] in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~stab_time:0 pattern)
      (Fd.Oracle.sigma_nu_plus ~stab_time:0 pattern)
  in
  let module R = Sim.Runner.Make (Core.Anuc) in
  Bechamel.Test.make ~name:"anuc-full-consensus-n4"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (R.exec ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
              ~inputs:(fun p -> p mod 2)
              ~max_steps:2000
              ~stop:(fun st _ ->
                Pset.for_all
                  (fun p -> Core.Anuc.decision (st p) <> None)
                  (Pset.full ~n:4))
              ())))

let b4_micro () =
  hr "B4: microbenchmarks (bechamel, ns per run)";
  let tests =
    Bechamel.Test.make_grouped ~name:"micro"
      [
        bench_pset;
        bench_qhist_distrust;
        bench_dag_add;
        bench_dag_weave;
        bench_anuc_consensus;
      ]
  in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:1000 ~quota:(Bechamel.Time.second 0.4) ()
  in
  let raw = Bechamel.Benchmark.all cfg instances tests in
  let analyzed =
    Bechamel.Analyze.all
      (Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Bechamel.Measure.run |])
      Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Bechamel.Analyze.OLS.estimates ols with
        | Some [ e ] -> e
        | Some _ | None -> nan
      in
      rows := (name, est) :: !rows)
    analyzed;
  List.iter
    (fun (name, est) -> pf "%-32s %14.1f ns/run@." name est)
    (List.sort compare !rows)

let () =
  pf "nonuniform-consensus benchmark harness@.";
  experiment_table ();
  b1_latency ();
  b2_stabilization ();
  b3_dag_growth ();
  b5_ablation ();
  b4_micro ()
