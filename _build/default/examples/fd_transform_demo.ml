(* Failure-detector transformations, live.

   Left side of the paper (necessity, Fig. 2): given ANY failure
   detector D that can solve nonuniform consensus — here
   D = (Omega, Sigma) with the Mostéfaoui–Raynal algorithm as the
   witness — the transformation T_{D -> Sigma-nu} extracts Sigma-nu
   quorums by simulating runs of the witness over a DAG of samples of
   D.

   Right side (sufficiency, Fig. 3): T_{Sigma-nu -> Sigma-nu+} boosts
   raw Sigma-nu to the self-including, conditionally-nonintersecting
   Sigma-nu+ that A_nuc consumes.

   Both emulated histories are re-validated by the independent
   property checkers.

   Run with: dune exec examples/fd_transform_demo.exe *)
open Procset

module Tx = Core.T_extract.Make (struct
  include Consensus.Mr.With_quorum

  type message = Consensus.Mr.message

  let pp_message = Consensus.Mr.pp_message
  let equal_message = Consensus.Mr.equal_message
  let step = Consensus.Mr.With_quorum.step
  let decision = Consensus.Mr.With_quorum.decision
end)

module Tx_runner = Sim.Runner.Make (Tx)
module Tsp_runner = Sim.Runner.Make (Core.T_sigma_plus)

let report_check name = function
  | Ok () -> Format.printf "  %s: OK@." name
  | Error v -> Format.printf "  %s: VIOLATED — %a@." name Fd.Check.pp_violation v

let () =
  let n = 4 in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (2, 40); (3, 70) ] in
  Format.printf "pattern: %a@.@." Sim.Failure_pattern.pp pattern;

  (* ---- Fig. 2: extract Sigma-nu from D = (Omega, Sigma) ---- *)
  Format.printf "T_{D -> Sigma-nu} with D = (Omega, Sigma), witness = \
                 MR-Sigma:@.";
  let d =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~seed:1 ~stab_time:90 pattern)
      (Fd.Oracle.sigma ~seed:1 ~stab_time:90 pattern)
  in
  let run =
    Tx_runner.exec ~seed:1 ~pattern ~fd:d.Fd.Oracle.query
      ~inputs:(fun _ -> ())
      ~max_steps:700 ()
  in
  (* timeline of emulated quorums at p0 *)
  let last = ref Pset.empty in
  Array.iter
    (fun s ->
      if s.Tx_runner.pid = 0 then begin
        let out = Tx.output s.Tx_runner.state_after in
        if not (Pset.equal out !last) then begin
          Format.printf "  t=%4d  p0 emulates quorum %a@." s.Tx_runner.time
            Pset.pp out;
          last := out
        end
      end)
    run.Tx_runner.steps;
  let extractions =
    Array.fold_left (fun acc st -> acc + Tx.extractions st) 0
      run.Tx_runner.states
  in
  Format.printf "  total quorum extractions across processes: %d@." extractions;
  let samples =
    Array.to_list run.Tx_runner.steps
    |> List.map (fun s ->
           ( s.Tx_runner.pid,
             s.Tx_runner.time,
             Sim.Fd_value.Quorum (Tx.output s.Tx_runner.state_after) ))
  in
  let h = Fd.History.of_samples ~n samples in
  report_check "emulated history satisfies Sigma-nu"
    (Fd.Check.sigma_nu ~max_stab:560 pattern h);
  report_check
    "emulated history satisfies full Sigma (witness solves UNIFORM \
     consensus, Thm 5.8)"
    (Fd.Check.sigma ~max_stab:560 pattern h);

  (* ---- Fig. 3: boost Sigma-nu to Sigma-nu+ ---- *)
  Format.printf "@.T_{Sigma-nu -> Sigma-nu+} from a raw (adversarial) \
                 Sigma-nu oracle:@.";
  let nu =
    Fd.Oracle.sigma_nu ~seed:2 ~stab_time:90
      ~faulty_mode:Fd.Oracle.Faulty_split pattern
  in
  let run' =
    Tsp_runner.exec ~seed:2 ~pattern ~fd:nu.Fd.Oracle.query
      ~inputs:(fun _ -> ())
      ~max_steps:700 ()
  in
  Array.iteri
    (fun p st ->
      Format.printf "  final Sigma-nu+ output at p%d: %a@." p Pset.pp
        (Core.T_sigma_plus.output st))
    run'.Tsp_runner.states;
  let samples' =
    Array.to_list run'.Tsp_runner.steps
    |> List.map (fun s ->
           ( s.Tsp_runner.pid,
             s.Tsp_runner.time,
             Sim.Fd_value.Quorum
               (Core.T_sigma_plus.output s.Tsp_runner.state_after) ))
  in
  let h' = Fd.History.of_samples ~n samples' in
  report_check "emulated history satisfies Sigma-nu+ (all four clauses)"
    (Fd.Check.sigma_nu_plus ~max_stab:560 pattern h');
  match Fd.Check.sigma ~max_stab:560 pattern h' with
  | Ok () ->
    Format.printf
      "  note: this particular run also satisfies uniform Sigma (the \
       adversary did not split it)@."
  | Error v ->
    Format.printf
      "  uniform Sigma fails on the same history, as Sigma-nu+ permits: \
       %a@."
      Fd.Check.pp_violation v
