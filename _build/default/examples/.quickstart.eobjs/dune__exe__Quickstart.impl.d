examples/quickstart.ml: Array Consensus Core Fd Format List Option Pid Procset Pset Sim
