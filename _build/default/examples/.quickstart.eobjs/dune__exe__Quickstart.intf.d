examples/quickstart.mli:
