examples/detector_tour.ml: Fd Format Sim
