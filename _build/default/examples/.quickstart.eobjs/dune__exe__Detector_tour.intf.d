examples/detector_tour.mli:
