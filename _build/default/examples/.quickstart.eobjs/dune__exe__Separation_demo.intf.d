examples/separation_demo.mli:
