examples/contamination_demo.mli:
