examples/fd_transform_demo.mli:
