examples/replicated_log.ml: Array Fd Format Hashtbl List Printf Procset Pset Sim Smr String
