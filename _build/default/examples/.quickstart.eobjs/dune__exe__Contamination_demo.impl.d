examples/contamination_demo.ml: Array Consensus Core Fd Format List Procset Pset Sim
