examples/separation_demo.ml: Array Core Fd Format List Procset Pset Sim
