(* The Theorem 7.1 crossover, live: (Omega, Sigma-nu) vs (Omega, Sigma)
   in E_t.

   Below half failures (t < n/2) Sigma is implementable from scratch —
   the round-based "wait for n-t" algorithm emulates it, and the
   two-run attack cannot even pick a partition. At half and above
   (t >= n/2), the attack builds two indistinguishable runs R and R'
   and harvests provably disjoint quorums: no algorithm can emulate
   Sigma, while the same pair of quorums is perfectly legal for
   Sigma-nu+ — the exact gap between uniform and nonuniform consensus.

   Run with: dune exec examples/separation_demo.exe *)
open Procset
module Scratch = Core.Separation.Sigma_scratch
module Scratch_runner = Sim.Runner.Make (Scratch)
module Attack_scratch = Core.Separation.Attack (Scratch)

module Attack_tsp = Core.Separation.Attack (struct
  include Core.T_sigma_plus

  type message = Core.T_sigma_plus.message

  let pp_message = Core.T_sigma_plus.pp_message
  let equal_message = Core.T_sigma_plus.equal_message
  let step = Core.T_sigma_plus.step
end)

let () =
  let n = 4 in
  Format.printf "=== n = %d, t = 1 (< n/2): Sigma from scratch works ===@." n;
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (3, 30) ] in
  let run =
    Scratch_runner.exec ~seed:0 ~pattern
      ~fd:(fun _ _ -> Sim.Fd_value.Unit)
      ~inputs:(fun _ -> 1)
      ~max_steps:500 ()
  in
  Array.iteri
    (fun p st ->
      Format.printf "  p%d completed %d rounds, final quorum %a@." p
        (Scratch.rounds_completed st)
        Pset.pp (Scratch.output st))
    run.Scratch_runner.states;
  let samples =
    Array.to_list run.Scratch_runner.steps
    |> List.map (fun s ->
           ( s.Scratch_runner.pid,
             s.Scratch_runner.time,
             Sim.Fd_value.Quorum
               (Scratch.output s.Scratch_runner.state_after) ))
  in
  (match
     Fd.Check.sigma ~max_stab:400 pattern (Fd.History.of_samples ~n samples)
   with
  | Ok () -> Format.printf "  emulated history satisfies Sigma: OK@."
  | Error v -> Format.printf "  Sigma VIOLATED: %a@." Fd.Check.pp_violation v);
  (match Attack_scratch.run ~n ~t:1 ~inputs:(fun _ -> 1) () with
  | Error e -> Format.printf "  two-run attack refuses: %s@." e
  | Ok _ -> Format.printf "  unexpected: attack ran below n/2@.");

  Format.printf "@.=== n = %d, t = 2 (>= n/2): the two-run attack ===@." n;
  (match Attack_scratch.run ~n ~t:2 ~inputs:(fun _ -> 2) () with
  | Ok o -> Format.printf "%a@." Attack_scratch.pp_outcome o
  | Error e -> Format.printf "attack failed: %s@." e);

  Format.printf
    "@.=== the same attack against T_(Sigma-nu -> Sigma-nu+) ===@.";
  match Attack_tsp.run ~n ~t:2 ~inputs:(fun _ -> ()) ~max_steps:4000 () with
  | Ok o ->
    Format.printf "%a@." Attack_tsp.pp_outcome o;
    Format.printf
      "but the nonintersecting quorum %a consists of processes that are \
       FAULTY in R', so Sigma-nu+'s conditional nonintersection holds — \
       nonuniform consensus survives where uniform consensus cannot.@."
      Pset.pp o.Attack_tsp.quorum_a
  | Error e -> Format.printf "attack failed: %s@." e
