(* Quickstart: solve nonuniform consensus from the weakest failure
   detector (Omega, Sigma-nu), exactly as Theorem 6.28 composes it.

   Five processes propose values; two of them crash mid-run. The
   composed stack — T_{Sigma-nu -> Sigma-nu+} feeding A_nuc — runs
   under a simulated asynchronous network and a generated
   (Omega, Sigma-nu) history, and every surviving process decides the
   same value.

   Run with: dune exec examples/quickstart.exe *)
open Procset
module Stack_runner = Sim.Runner.Make (Core.Stack)

let () =
  let n = 5 in
  (* processes 3 and 4 crash at (global clock) times 40 and 90 *)
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (3, 40); (4, 90) ] in
  let correct = Sim.Failure_pattern.correct pattern in
  (* the weakest failure detector for this problem: Omega paired with
     Sigma-nu; nothing stronger is assumed *)
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~seed:7 ~stab_time:120 pattern)
      (Fd.Oracle.sigma_nu ~seed:7 ~stab_time:120 pattern)
  in
  let proposals p = 10 + p in
  Format.printf "n = %d, pattern: %a@." n Sim.Failure_pattern.pp pattern;
  Format.printf "proposals: %a@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    (List.map proposals (Pid.all ~n));
  let run =
    Stack_runner.exec ~seed:7 ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:proposals ~max_steps:20000
      ~stop:(fun st _ ->
        Pset.for_all (fun p -> Core.Stack.decision (st p) <> None) correct)
      ()
  in
  Format.printf "run took %d steps (stopped early: %b)@."
    run.Stack_runner.step_count run.Stack_runner.stopped_early;
  Array.iteri
    (fun p st ->
      let status = if Pset.mem p correct then "correct" else "faulty " in
      match Core.Stack.decision st with
      | Some v ->
        Format.printf "  p%d (%s): decided %d in round %d; emulated \
                       Sigma-nu+ quorum %a@."
          p status v
          (Option.value ~default:0 (Core.Stack.decision_round st))
          Pset.pp
          (Core.Stack.emulated_quorum st)
      | None -> Format.printf "  p%d (%s): no decision (crashed early)@." p status)
    run.Stack_runner.states;
  (* verify the run against the problem spec *)
  let outcome =
    Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
        Core.Stack.decision run.Stack_runner.states.(p))
  in
  match Consensus.Spec.check Consensus.Spec.Nonuniform outcome with
  | Ok () ->
    Format.printf
      "nonuniform consensus: termination, agreement and validity hold@."
  | Error e -> Format.printf "VIOLATION: %s@." e
