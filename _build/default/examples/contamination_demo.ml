(* The contamination scenario of Section 6.3, narrated.

   Substituting Sigma-nu quorums naively into the Mostéfaoui–Raynal
   algorithm breaks nonuniform agreement: a scripted adversary makes
   two CORRECT processes decide 0 and 1 under a perfectly legal
   (Omega, Sigma-nu) history. A_nuc's distrust machinery and quorum
   awareness are then shown to survive the same adversary family.

   Run with: dune exec examples/contamination_demo.exe *)
open Procset

let () =
  Format.printf "=== naive MR + Sigma-nu quorums under the Section 6.3 \
                 adversary ===@.@.";
  let o = Core.Scenario.contamination_naive_mr () in
  List.iter (fun line -> Format.printf "  %s@." line) o.Core.Scenario.trace;
  Format.printf "@.decisions: ";
  Array.iteri
    (fun p d ->
      Format.printf "p%d=%a  " p Consensus.Value.pp_opt d)
    o.Core.Scenario.decisions;
  Format.printf "@.agreement violated among correct processes: %b@."
    o.Core.Scenario.agreement_violated;
  (match o.Core.Scenario.history_valid with
  | Ok () ->
    Format.printf
      "the adversary's history is a LEGAL (Omega, Sigma-nu) history — \
       the algorithm, not the detector, is at fault@."
  | Error v ->
    Format.printf "unexpected: invalid adversary history (%a)@."
      Fd.Check.pp_violation v);

  Format.printf
    "@.=== A_nuc under the same adversary family (split quorums, \
     faulty-first Omega) ===@.@.";
  let n = 4 in
  let violations = ref 0 and runs = ref 0 in
  List.iter
    (fun seed ->
      let pattern =
        Sim.Failure_pattern.make ~n ~crashes:[ (2, 150); (3, 150) ]
      in
      let oracle =
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed ~prestab:Fd.Oracle.Omega_faulty_first
             ~stab_time:120 pattern)
          (Fd.Oracle.sigma_nu_plus ~seed ~faulty_mode:Fd.Oracle.Faulty_split
             ~stab_time:120 pattern)
      in
      let module R = Sim.Runner.Make (Core.Anuc) in
      let correct = Sim.Failure_pattern.correct pattern in
      let proposals p = if p < 2 then 0 else 1 in
      let run =
        R.exec ~seed ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
          ~inputs:proposals ~max_steps:8000
          ~stop:(fun st _ ->
            Pset.for_all (fun p -> Core.Anuc.decision (st p) <> None) correct)
          ()
      in
      incr runs;
      let outcome =
        Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
            Core.Anuc.decision run.R.states.(p))
      in
      match Consensus.Spec.check Consensus.Spec.Nonuniform outcome with
      | Ok () -> ()
      | Error e ->
        incr violations;
        Format.printf "  seed %d: %s@." seed e)
    (List.init 20 (fun i -> i));
  Format.printf "  %d adversarial runs, %d violations@." !runs !violations;
  if !violations = 0 then
    Format.printf
      "A_nuc resists the adversary that breaks the naive algorithm.@."
