(* Replicated log (state-machine replication) on top of nonuniform
   consensus — using the Smr library.

   Five replicas replicate a key-value store. Each holds a queue of
   pending commands and proposes one per log slot; the per-slot
   consensus instances (A_nuc under an (Omega, Sigma-nu+) history) are
   multiplexed over one simulated network, so later slots start while
   stragglers are still catching up on earlier ones. Two replicas
   crash mid-stream — including, eventually, a majority-killing third
   — and the survivors keep extending identical logs: this is exactly
   the regime where nonuniform consensus (and its weaker detector) is
   the right tool, provided clients only consult live replicas.

   Run with: dune exec examples/replicated_log.exe *)
open Procset
module R = Sim.Runner.Make (Smr.Over_anuc)

(* Commands: [set k v] encoded as [k * 100 + v]. *)
let encode k v = (k * 100) + v
let decode c = (c / 100, c mod 100)

let () =
  let n = 5 in
  let target_slots = 6 in
  (* p4 crashes early, p3 later, p2 later still: only 2 of 5 remain *)
  let pattern =
    Sim.Failure_pattern.make ~n ~crashes:[ (4, 250); (3, 900); (2, 1600) ]
  in
  let correct = Sim.Failure_pattern.correct pattern in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~seed:1 pattern)
      (Fd.Oracle.sigma_nu_plus ~seed:1 pattern)
  in
  (* each replica wants to write its own values to keys 0..2 *)
  let commands p = List.init 10 (fun s -> encode (s mod 3) (10 + p + s)) in
  Format.printf "replicating over %d replicas, %a@." n
    Sim.Failure_pattern.pp pattern;
  let run =
    R.exec ~seed:1 ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:commands ~max_steps:60000
      ~stop:(fun st _ ->
        Pset.for_all
          (fun p -> Smr.Over_anuc.slots_decided (st p) >= target_slots)
          correct)
      ()
  in
  Format.printf "run: %d steps, %d messages, target of %d slots %s@.@."
    run.R.step_count run.R.messages_sent target_slots
    (if run.R.stopped_early then "reached" else "NOT reached");
  Array.iteri
    (fun p st ->
      let status = if Pset.mem p correct then "live   " else "crashed" in
      let log = Smr.Over_anuc.log st in
      Format.printf "  p%d (%s) log:" p status;
      List.iter (fun c -> Format.printf " %d" c) log;
      Format.printf "@.")
    run.R.states;
  (* apply every live replica's log to a fresh store and compare *)
  let stores =
    Pset.fold
      (fun p acc ->
        let store = Hashtbl.create 8 in
        List.iter
          (fun c ->
            if c <> Smr.noop then begin
              let k, v = decode c in
              Hashtbl.replace store k v
            end)
          (Smr.Over_anuc.log run.R.states.(p));
        (p, store) :: acc)
      correct []
  in
  Format.printf "@.final stores of live replicas:@.";
  List.iter
    (fun (p, store) ->
      let kv =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) store [])
      in
      Format.printf "  p%d: {%s}@." p
        (String.concat "; "
           (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) kv)))
    stores;
  let logs =
    Pset.fold
      (fun p acc -> Smr.Over_anuc.log run.R.states.(p) :: acc)
      correct []
  in
  let min_len =
    List.fold_left (fun acc l -> min acc (List.length l)) max_int logs
  in
  let truncated =
    List.map (fun l -> List.filteri (fun i _ -> i < min_len) l) logs
  in
  match truncated with
  | [] -> Format.printf "no live replicas?!@."
  | l0 :: rest ->
    if List.for_all (fun l -> l = l0) rest then
      Format.printf
        "all %d live replicas agree on the first %d slots — no divergence \
         despite losing a majority@."
        (List.length logs) min_len
    else Format.printf "DIVERGENCE among live replicas!@."
