(* A guided tour of the failure-detector hierarchy in this repository,
   with every claim checked live by the independent property checkers.

   The paper's landscape, for one failure pattern:

     Sigma  =>  Sigma-nu  <=>  Sigma-nu+        (quorum detectors)
     P(+)   =>  Sigma, Sigma-nu+                (perfect information)
     <>S                                        (suspect lists, CT-style)

   where "=>" is "every history of the left satisfies the right's
   specification" — checked below on sampled histories — and the
   Sigma-nu <=> Sigma-nu+ equivalence is algorithmic (Fig. 3 one way,
   trivial the other).

   Run with: dune exec examples/detector_tour.exe *)

let horizon = 200
let stab = 80

let verdict = function
  | Ok () -> "holds"
  | Error v -> Format.asprintf "FAILS (%a)" Fd.Check.pp_violation v

let () =
  let n = 5 in
  (* a minority-correct pattern: the regime that separates the
     uniform and nonuniform worlds *)
  let pattern =
    Sim.Failure_pattern.make ~n ~crashes:[ (2, 30); (3, 45); (4, 60) ]
  in
  Format.printf "pattern: %a  (only 2 of 5 processes are correct)@.@."
    Sim.Failure_pattern.pp pattern;
  let h o = Fd.Oracle.history ~horizon ~n o in
  let omega = Fd.Oracle.omega ~stab_time:stab pattern in
  let sigma = Fd.Oracle.sigma ~stab_time:stab pattern in
  let sigma_nu =
    Fd.Oracle.sigma_nu ~stab_time:stab ~faulty_mode:Fd.Oracle.Faulty_split
      pattern
  in
  let sigma_nu_plus =
    Fd.Oracle.sigma_nu_plus ~stab_time:stab
      ~faulty_mode:Fd.Oracle.Faulty_split pattern
  in
  let es = Fd.Oracle.eventually_strong ~stab_time:stab pattern in
  let p_plus = Fd.Oracle.perfect_plus pattern in

  Format.printf "each oracle satisfies its own specification:@.";
  Format.printf "  Omega      : %s@."
    (verdict (Fd.Check.omega ~max_stab:stab pattern (h omega)));
  Format.printf "  Sigma      : %s@."
    (verdict (Fd.Check.sigma ~max_stab:stab pattern (h sigma)));
  Format.printf "  Sigma-nu   : %s@."
    (verdict (Fd.Check.sigma_nu ~max_stab:stab pattern (h sigma_nu)));
  Format.printf "  Sigma-nu+  : %s@."
    (verdict (Fd.Check.sigma_nu_plus ~max_stab:stab pattern (h sigma_nu_plus)));
  Format.printf "  <>S        : %s@."
    (verdict (Fd.Check.eventually_strong ~max_stab:stab pattern (h es)));

  Format.printf "@.inclusions (a history of the stronger detector checked \
                 against the weaker spec):@.";
  Format.printf "  Sigma as Sigma-nu            : %s@."
    (verdict (Fd.Check.sigma_nu ~max_stab:stab pattern (h sigma)));
  Format.printf "  Perfect+ as Sigma-nu+        : %s@."
    (verdict (Fd.Check.sigma_nu_plus ~max_stab:stab pattern (h p_plus)));
  Format.printf "  Perfect+ as Sigma            : %s@."
    (verdict (Fd.Check.sigma ~max_stab:stab pattern (h p_plus)));

  Format.printf "@.strict separations (the weaker detector's history \
                 against the stronger spec):@.";
  Format.printf
    "  split Sigma-nu as uniform Sigma : %s  <- the gap Theorem 7.1 \
     separates@."
    (verdict (Fd.Check.sigma ~max_stab:stab pattern (h sigma_nu)));

  Format.printf
    "@.the algorithmic equivalence Sigma-nu <=> Sigma-nu+ (Thm 6.7) is \
     exercised by T_{Sigma-nu -> Sigma-nu+}: see \
     examples/fd_transform_demo.exe@."
