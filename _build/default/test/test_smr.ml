(* Tests for the replicated-log library: multiplexed per-slot
   consensus instances over one simulated network. *)
open Procset
module R = Sim.Runner.Make (Smr.Over_anuc)

let commands_of p = List.init 10 (fun s -> (100 * (s + 1)) + p)

let run_smr ?(seed = 0) ?(n = 4) ?(crashes = []) ?(target_slots = 4)
    ?(max_steps = 30000) () =
  let pattern = Sim.Failure_pattern.make ~n ~crashes in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~seed pattern)
      (Fd.Oracle.sigma_nu_plus ~seed pattern)
  in
  let correct = Sim.Failure_pattern.correct pattern in
  let run =
    R.exec ~seed ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:commands_of ~max_steps
      ~stop:(fun st _ ->
        Pset.for_all
          (fun p -> Smr.Over_anuc.slots_decided (st p) >= target_slots)
          correct)
      ()
  in
  (pattern, run)

(* The fundamental SMR property: live replicas hold identical logs (one
   may trail the other; the shorter must be a prefix of the longer). *)
let check_prefix_consistency ~pattern (run : R.run) =
  let correct = Sim.Failure_pattern.correct pattern in
  let logs =
    Pset.fold
      (fun p acc -> (p, Smr.Over_anuc.log run.R.states.(p)) :: acc)
      correct []
  in
  List.iter
    (fun (p, lp) ->
      List.iter
        (fun (q, lq) ->
          let rec prefix a b =
            match a, b with
            | [], _ -> true
            | _, [] -> false
            | x :: a', y :: b' -> Consensus.Value.equal x y && prefix a' b'
          in
          let shorter, longer =
            if List.length lp <= List.length lq then (lp, lq) else (lq, lp)
          in
          Alcotest.(check bool)
            (Printf.sprintf "p%d and p%d logs prefix-consistent" p q)
            true (prefix shorter longer))
        logs)
    logs

let test_smr_no_crashes () =
  let pattern, run = run_smr ~target_slots:5 () in
  Alcotest.(check bool) "reached the slot target" true run.R.stopped_early;
  check_prefix_consistency ~pattern run;
  (* every decided command was somebody's proposal for that slot *)
  let some_log = Smr.Over_anuc.log run.R.states.(0) in
  List.iteri
    (fun s v ->
      let proposed =
        Consensus.Value.equal v Smr.noop
        || List.exists
             (fun p -> List.nth_opt (commands_of p) s = Some v)
             (Pid.all ~n:4)
      in
      Alcotest.(check bool)
        (Printf.sprintf "slot %d command %d was proposed" s v)
        true proposed)
    some_log

let test_smr_with_crashes () =
  let pattern, run =
    run_smr ~seed:2 ~n:5 ~crashes:[ (4, 200); (3, 900) ] ~target_slots:4 ()
  in
  Alcotest.(check bool) "reached the slot target" true run.R.stopped_early;
  check_prefix_consistency ~pattern run

let test_smr_minority_correct () =
  (* three of five replicas crash: uniform replication would need a
     majority, nonuniform keeps going *)
  let pattern, run =
    run_smr ~seed:5 ~n:5
      ~crashes:[ (2, 150); (3, 400); (4, 700) ]
      ~target_slots:3 ~max_steps:40000 ()
  in
  Alcotest.(check bool) "reached the slot target" true run.R.stopped_early;
  check_prefix_consistency ~pattern run

let test_smr_seeds_sweep () =
  List.iter
    (fun seed ->
      let pattern, run =
        run_smr ~seed ~n:4 ~crashes:[ (3, 300) ] ~target_slots:3 ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d reached the target" seed)
        true run.R.stopped_early;
      check_prefix_consistency ~pattern run)
    [ 0; 1; 2; 3 ]

let test_smr_queue_exhaustion () =
  (* replicas with a single pending command propose noop afterwards *)
  let n = 3 in
  let pattern = Sim.Failure_pattern.failure_free ~n in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~stab_time:0 pattern)
      (Fd.Oracle.sigma_nu_plus ~stab_time:0 pattern)
  in
  let run =
    R.exec ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:(fun p -> [ 100 + p ])
      ~max_steps:30000
      ~stop:(fun st _ ->
        Pset.for_all
          (fun p -> Smr.Over_anuc.slots_decided (st p) >= 3)
          (Pset.full ~n))
      ()
  in
  Alcotest.(check bool) "kept deciding past the queue" true
    run.R.stopped_early;
  let log = Smr.Over_anuc.log run.R.states.(0) in
  List.iteri
    (fun s v ->
      if s >= 1 then
        Alcotest.(check int)
          (Printf.sprintf "slot %d is a noop" s)
          Smr.noop v)
    (List.filteri (fun i _ -> i < 3) log)

(* Replication from the raw weakest detector: each slot runs the full
   Theorem 6.28 stack (emulation + A_nuc). Small target, generous
   budget — this is a composability check, not a throughput one. *)
let test_smr_over_stack () =
  let n = 4 in
  let module Rs = Sim.Runner.Make (Smr.Over_stack) in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (3, 400) ] in
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~seed:1 pattern)
      (Fd.Oracle.sigma_nu ~seed:1 pattern)
  in
  let correct = Sim.Failure_pattern.correct pattern in
  let run =
    Rs.exec ~seed:1 ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:commands_of ~max_steps:30000
      ~stop:(fun st _ ->
        Pset.for_all (fun p -> Smr.Over_stack.slots_decided (st p) >= 2)
          correct)
      ()
  in
  Alcotest.(check bool) "two slots decided from raw (Omega, Sigma-nu)" true
    run.Rs.stopped_early;
  (* prefix consistency *)
  let logs =
    Pset.fold
      (fun p acc -> Smr.Over_stack.log run.Rs.states.(p) :: acc)
      correct []
  in
  match logs with
  | l0 :: rest ->
    let min_len =
      List.fold_left (fun acc l -> min acc (List.length l))
        (List.length l0) rest
    in
    let trunc l = List.filteri (fun i _ -> i < min_len) l in
    Alcotest.(check bool) "prefixes agree" true
      (List.for_all (fun l -> trunc l = trunc l0) rest)
  | [] -> Alcotest.fail "no live replicas"

let () =
  Alcotest.run "smr"
    [
      ( "replicated-log",
        [
          Alcotest.test_case "no crashes" `Quick test_smr_no_crashes;
          Alcotest.test_case "with crashes" `Quick test_smr_with_crashes;
          Alcotest.test_case "minority correct" `Quick
            test_smr_minority_correct;
          Alcotest.test_case "seed sweep" `Slow test_smr_seeds_sweep;
          Alcotest.test_case "queue exhaustion" `Quick
            test_smr_queue_exhaustion;
          Alcotest.test_case "over the full stack" `Slow test_smr_over_stack;
        ] );
    ]
