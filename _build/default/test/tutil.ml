(* Shared helpers for the consensus and core test suites: run a
   consensus automaton under a given oracle family over randomized
   patterns and seeds, and evaluate the problem's properties. *)
open Procset

module type CONSENSUS = sig
  include Sim.Automaton.S with type input = Consensus.Value.t

  val decision : state -> Consensus.Value.t option
end

(* Which (Omega, quorum) oracle pair drives a run. *)
type oracle_family = {
  family_name : string;
  make : seed:int -> Sim.Failure_pattern.t -> Fd.Oracle.t;
}

let benign_nu_plus =
  {
    family_name = "benign (omega-random, sigma-nu+-arbitrary)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed pattern)
          (Fd.Oracle.sigma_nu_plus ~seed pattern));
  }

let adversarial_nu_plus =
  {
    family_name = "adversarial (omega-faulty-first, sigma-nu+-split)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed ~prestab:Fd.Oracle.Omega_faulty_first pattern)
          (Fd.Oracle.sigma_nu_plus ~seed ~faulty_mode:Fd.Oracle.Faulty_split
             pattern));
  }

let benign_sigma =
  {
    family_name = "benign (omega-random, sigma-pivot)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed pattern)
          (Fd.Oracle.sigma ~seed pattern));
  }

let benign_nu =
  {
    family_name = "benign (omega-random, sigma-nu-arbitrary)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed pattern)
          (Fd.Oracle.sigma_nu ~seed pattern));
  }

let adversarial_nu =
  {
    family_name = "adversarial (omega-faulty-first, sigma-nu-split)";
    make =
      (fun ~seed pattern ->
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed ~prestab:Fd.Oracle.Omega_faulty_first pattern)
          (Fd.Oracle.sigma_nu ~seed ~faulty_mode:Fd.Oracle.Faulty_split
             pattern));
  }

type sweep_result = {
  runs : int;
  undecided_runs : int;  (** runs where some correct process never decided *)
  steps_total : int;
}

(* Run [A] once; return Ok (steps, outcome-check result). *)
let run_once (type st) (module A : CONSENSUS with type state = st) ~family
    ~flavour ~pattern ~seed ~max_steps () =
  let module R = Sim.Runner.Make (A) in
  let proposals p = (p + seed) mod 2 in
  let oracle = family.make ~seed pattern in
  let correct = Sim.Failure_pattern.correct pattern in
  let run =
    R.exec ~seed ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:proposals ~max_steps
      ~stop:(fun st _ ->
        Pset.for_all (fun p -> A.decision (st p) <> None) correct)
      ()
  in
  let outcome =
    Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
        A.decision run.R.states.(p))
  in
  let agreement_validity =
    (* check agreement and validity even on runs that timed out *)
    Result.bind (Consensus.Spec.check_validity outcome) (fun () ->
        Consensus.Spec.check_agreement flavour outcome)
  in
  (run.R.step_count, run.R.stopped_early, agreement_validity, outcome)

(* Sweep a consensus algorithm over patterns of E_t for every t in
   [t_range] and all [seeds]; fails the alcotest on any violation of
   agreement or validity, and on missed termination. *)
let sweep (module A : CONSENSUS) ~family ~flavour ~n ~t_range ~seeds
    ?(max_steps = 6000) () =
  let runs = ref 0 and undecided = ref 0 and steps = ref 0 in
  List.iter
    (fun t ->
      let env = Sim.Env.make ~n ~max_faulty:t in
      List.iter
        (fun seed ->
          let rng = Random.State.make [| seed; n; t |] in
          let pattern = Sim.Env.random_pattern rng ~crash_window:120 env in
          let step_count, decided, check, _ =
            run_once (module A) ~family ~flavour ~pattern ~seed ~max_steps ()
          in
          incr runs;
          steps := !steps + step_count;
          (match check with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s / %s / n=%d t=%d seed=%d (%a): %s" A.name
              family.family_name n t seed Sim.Failure_pattern.pp pattern e);
          if not decided then begin
            incr undecided;
            Alcotest.failf "%s / %s / n=%d t=%d seed=%d (%a): timed out \
                            after %d steps without full decision"
              A.name family.family_name n t seed Sim.Failure_pattern.pp
              pattern step_count
          end)
        seeds)
    t_range;
  { runs = !runs; undecided_runs = !undecided; steps_total = !steps }
