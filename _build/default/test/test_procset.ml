(* Tests for the process-set kernel: bitset algebra and quorum sets. *)
open Procset

let pset = Alcotest.testable Pset.pp Pset.equal

(* -------------------------------------------------------------- *)
(* Unit tests                                                     *)
(* -------------------------------------------------------------- *)

let test_empty_full () =
  Alcotest.(check int) "empty cardinal" 0 (Pset.cardinal Pset.empty);
  Alcotest.(check int) "full 5 cardinal" 5 (Pset.cardinal (Pset.full ~n:5));
  Alcotest.(check bool) "empty is_empty" true (Pset.is_empty Pset.empty);
  Alcotest.(check bool)
    "full not empty" false
    (Pset.is_empty (Pset.full ~n:3));
  Alcotest.(check (list int)) "full 3 elements" [ 0; 1; 2 ]
    (Pset.elements (Pset.full ~n:3))

let test_add_remove_mem () =
  let s = Pset.of_list [ 1; 3; 5 ] in
  Alcotest.(check bool) "mem 3" true (Pset.mem 3 s);
  Alcotest.(check bool) "not mem 2" false (Pset.mem 2 s);
  Alcotest.(check pset) "remove 3" (Pset.of_list [ 1; 5 ]) (Pset.remove 3 s);
  Alcotest.(check pset) "add 2" (Pset.of_list [ 1; 2; 3; 5 ]) (Pset.add 2 s);
  Alcotest.(check pset) "add idempotent" s (Pset.add 3 s);
  Alcotest.(check pset) "remove absent" s (Pset.remove 2 s)

let test_set_algebra () =
  let a = Pset.of_list [ 0; 1; 2 ] and b = Pset.of_list [ 2; 3 ] in
  Alcotest.(check pset) "union" (Pset.of_list [ 0; 1; 2; 3 ]) (Pset.union a b);
  Alcotest.(check pset) "inter" (Pset.singleton 2) (Pset.inter a b);
  Alcotest.(check pset) "diff" (Pset.of_list [ 0; 1 ]) (Pset.diff a b);
  Alcotest.(check bool) "intersects" true (Pset.intersects a b);
  Alcotest.(check bool)
    "disjoint" true
    (Pset.disjoint (Pset.of_list [ 0; 1 ]) (Pset.of_list [ 2; 3 ]));
  Alcotest.(check bool) "subset" true (Pset.subset (Pset.singleton 1) a);
  Alcotest.(check bool) "not subset" false (Pset.subset b a)

let test_min_elt () =
  Alcotest.(check int) "min of {3,5,7}" 3
    (Pset.min_elt (Pset.of_list [ 5; 3; 7 ]));
  Alcotest.(check int) "min singleton" 0 (Pset.min_elt (Pset.singleton 0));
  Alcotest.check_raises "min of empty" Not_found (fun () ->
      ignore (Pset.min_elt Pset.empty))

let test_majority_complement () =
  Alcotest.(check bool)
    "3 of 5 is majority" true
    (Pset.is_majority ~n:5 (Pset.of_list [ 0; 1; 2 ]));
  Alcotest.(check bool)
    "2 of 4 is not majority" false
    (Pset.is_majority ~n:4 (Pset.of_list [ 0; 1 ]));
  Alcotest.(check pset) "complement"
    (Pset.of_list [ 2; 3 ])
    (Pset.complement ~n:4 (Pset.of_list [ 0; 1 ]))

let test_subsets () =
  let subs = Pset.subsets (Pset.of_list [ 0; 1; 2 ]) in
  Alcotest.(check int) "2^3 subsets" 8 (List.length subs);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        "subset of universe" true
        (Pset.subset s (Pset.of_list [ 0; 1; 2 ])))
    subs

let test_bounds () =
  Alcotest.check_raises "full too large"
    (Invalid_argument "Pset.full: n = 63 out of [0, 62]") (fun () ->
      ignore (Pset.full ~n:63));
  Alcotest.check_raises "singleton negative"
    (Invalid_argument "Pset: process id -1 out of [0, 62)") (fun () ->
      ignore (Pset.singleton (-1)))

let test_qset_basics () =
  let q1 = Pset.of_list [ 0; 1 ] and q2 = Pset.of_list [ 2; 3 ] in
  let s = Qset.of_list [ q1; q2; q1 ] in
  Alcotest.(check int) "dedup" 2 (Qset.cardinal s);
  Alcotest.(check bool) "mem" true (Qset.mem q1 s);
  Alcotest.(check bool)
    "disjoint pair found" true
    (Qset.exists_disjoint_pair (Qset.singleton q1) (Qset.singleton q2));
  Alcotest.(check bool)
    "no disjoint pair" false
    (Qset.exists_disjoint_pair (Qset.singleton q1)
       (Qset.singleton (Pset.of_list [ 1; 2 ])))

(* -------------------------------------------------------------- *)
(* Property tests                                                 *)
(* -------------------------------------------------------------- *)

let gen_pset n =
  QCheck.map
    ~rev:(fun s ->
      List.fold_left (fun acc p -> acc lor (1 lsl p)) 0 (Pset.elements s))
    (fun bits ->
      List.fold_left
        (fun acc p -> if bits land (1 lsl p) <> 0 then Pset.add p acc else acc)
        Pset.empty
        (List.init n (fun i -> i)))
    QCheck.(int_bound ((1 lsl n) - 1))

let n_univ = 10

let props =
  let ps = gen_pset n_univ in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"union commutative" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) -> Pset.equal (Pset.union a b) (Pset.union b a)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"inter commutative" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) -> Pset.equal (Pset.inter a b) (Pset.inter b a)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"union associative" ~count:500
         QCheck.(triple ps ps ps)
         (fun (a, b, c) ->
           Pset.equal
             (Pset.union a (Pset.union b c))
             (Pset.union (Pset.union a b) c)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"inter distributes over union" ~count:500
         QCheck.(triple ps ps ps)
         (fun (a, b, c) ->
           Pset.equal
             (Pset.inter a (Pset.union b c))
             (Pset.union (Pset.inter a b) (Pset.inter a c))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"diff is inter with complement" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) ->
           Pset.equal (Pset.diff a b)
             (Pset.inter a (Pset.complement ~n:n_univ b))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"intersects iff inter nonempty" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) ->
           Bool.equal (Pset.intersects a b)
             (not (Pset.is_empty (Pset.inter a b)))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"subset iff diff empty" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) ->
           Bool.equal (Pset.subset a b) (Pset.is_empty (Pset.diff a b))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"cardinal union + cardinal inter" ~count:500
         QCheck.(pair ps ps)
         (fun (a, b) ->
           Pset.cardinal (Pset.union a b) + Pset.cardinal (Pset.inter a b)
           = Pset.cardinal a + Pset.cardinal b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"elements sorted and roundtrip" ~count:500 ps
         (fun a ->
           let elts = Pset.elements a in
           List.sort Int.compare elts = elts
           && Pset.equal (Pset.of_list elts) a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"fold counts cardinal" ~count:500 ps (fun a ->
           Pset.fold (fun _ acc -> acc + 1) a 0 = Pset.cardinal a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random_nonempty_subset is nonempty subset"
         ~count:500
         QCheck.(pair ps int)
         (fun (a, seed) ->
           QCheck.assume (not (Pset.is_empty a));
           let rng = Random.State.make [| seed |] in
           let sub = Pset.random_nonempty_subset rng a in
           (not (Pset.is_empty sub)) && Pset.subset sub a));
  ]

let () =
  Alcotest.run "procset"
    [
      ( "pset-unit",
        [
          Alcotest.test_case "empty and full" `Quick test_empty_full;
          Alcotest.test_case "add remove mem" `Quick test_add_remove_mem;
          Alcotest.test_case "set algebra" `Quick test_set_algebra;
          Alcotest.test_case "min_elt" `Quick test_min_elt;
          Alcotest.test_case "majority and complement" `Quick
            test_majority_complement;
          Alcotest.test_case "subsets" `Quick test_subsets;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "qset basics" `Quick test_qset_basics;
        ] );
      ("pset-properties", props);
    ]
