(* Tests for the paper's contribution: quorum histories and the
   distrust function, A_nuc (Thm 6.27), the composed stack
   (Thm 6.28), T_{Sigma-nu -> Sigma-nu+} (Thm 6.7), T_{D -> Sigma-nu}
   (Thms 5.4 and 5.8), the contamination scenario of Section 6.3, and
   the separation of Theorem 7.1. *)
open Procset
module Anuc = Core.Anuc
module Qhist = Core.Qhist

let q = Pset.of_list

(* -------------------------------------------------------------- *)
(* Quorum histories and distrust                                   *)
(* -------------------------------------------------------------- *)

let test_qhist_basics () =
  let h = Qhist.add Qhist.empty 0 (q [ 0; 1 ]) in
  let h = Qhist.add h 1 (q [ 1; 2 ]) in
  Alcotest.(check bool) "knows own" true (Qhist.knows h 0 (q [ 0; 1 ]));
  Alcotest.(check bool) "not knows other" false (Qhist.knows h 0 (q [ 1; 2 ]));
  let h' = Qhist.add Qhist.empty 2 (q [ 2; 3 ]) in
  let m = Qhist.import h h' in
  Alcotest.(check bool) "import keeps both" true
    (Qhist.knows m 1 (q [ 1; 2 ]) && Qhist.knows m 2 (q [ 2; 3 ]))

(* The scenario of the paper's informal description (Section 6.3):
   p = 0 saw P = {0,1}; q = 3 saw Q = {2,3}; r = 0 is not considered
   faulty by 0 (its own quorums intersect themselves), so 0 distrusts
   3. *)
let test_distrust_nonintersecting () =
  let h = Qhist.add Qhist.empty 0 (q [ 0; 1 ]) in
  let h = Qhist.add h 3 (q [ 2; 3 ]) in
  Alcotest.(check bool) "0 considers 3 faulty" true
    (Pset.mem 3 (Qhist.considered_faulty ~self:0 h));
  Alcotest.(check bool) "0 distrusts 3" true (Qhist.distrusts ~self:0 ~n:4 h 3);
  Alcotest.(check bool) "0 does not distrust itself" false
    (Qhist.distrusts ~self:0 ~n:4 h 0)

(* The subtle case behind Lemma 6.22: two processes q and r with
   mutually disjoint quorums, both disjoint from nobody else — the
   observer distrusts BOTH (each is the "r not considered faulty"
   witness for the other). *)
let test_distrust_symmetric_pair () =
  let h = Qhist.add Qhist.empty 0 (q [ 0; 1; 2; 3 ]) in
  let h = Qhist.add h 2 (q [ 1; 2 ]) in
  let h = Qhist.add h 3 (q [ 0; 3 ]) in
  (* neither 2 nor 3 conflicts with 0's own quorum, so F_0 is empty *)
  Alcotest.(check bool) "F_0 empty" true
    (Pset.is_empty (Qhist.considered_faulty ~self:0 h));
  Alcotest.(check bool) "0 distrusts 2" true (Qhist.distrusts ~self:0 ~n:4 h 2);
  Alcotest.(check bool) "0 distrusts 3" true (Qhist.distrusts ~self:0 ~n:4 h 3);
  Alcotest.(check bool) "0 trusts 1 (no quorums known)" false
    (Qhist.distrusts ~self:0 ~n:4 h 1)

(* Processes already considered faulty cannot serve as distrust
   witnesses: if 0's own quorum conflicts with 2's, then 2 lands in
   F_0 and a conflict between 2 and 3 alone does not make 0 distrust
   3. *)
let test_distrust_discounts_considered_faulty () =
  let h = Qhist.add Qhist.empty 0 (q [ 0; 1 ]) in
  let h = Qhist.add h 2 (q [ 2; 3 ]) in
  (* 2 in F_0 *)
  Alcotest.(check bool) "2 considered faulty" true
    (Pset.mem 2 (Qhist.considered_faulty ~self:0 h));
  (* 3's quorums conflict only with 2's *)
  let h = Qhist.add h 3 (q [ 0; 1; 3 ]) in
  Alcotest.(check bool) "3 not distrusted: only conflicts with F_0" false
    (Qhist.distrusts ~self:0 ~n:4 h 3);
  (* but 2 is distrusted (witnessed by 0 itself) *)
  Alcotest.(check bool) "2 distrusted" true (Qhist.distrusts ~self:0 ~n:4 h 2)

(* Observations 6.10/6.11 as properties: quorum histories and the
   considered-faulty set only grow. *)
let gen_quorum =
  QCheck.map
    (fun bits ->
      let qq =
        List.fold_left
          (fun acc p ->
            if bits land (1 lsl p) <> 0 then Pset.add p acc else acc)
          Pset.empty [ 0; 1; 2; 3 ]
      in
      if Pset.is_empty qq then Pset.singleton (bits mod 4) else qq)
    QCheck.(int_bound 15)

let gen_hist =
  QCheck.map
    (fun entries ->
      List.fold_left
        (fun h (owner, qq) -> Qhist.add h (owner mod 4) qq)
        Qhist.empty entries)
    QCheck.(small_list (pair (int_bound 3) gen_quorum))

let prop_qhist_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"Obs 6.10/6.11: knows and considered_faulty are monotone"
       ~count:300
       QCheck.(triple gen_hist (int_bound 3) gen_quorum)
       (fun (h, owner, qq) ->
         let h' = Qhist.add h owner qq in
         let knows_preserved =
           List.for_all
             (fun r ->
               Qset.for_all
                 (fun old -> Qhist.knows h' r old)
                 (Qhist.get h r))
             [ 0; 1; 2; 3 ]
         in
         let faulty_preserved =
           List.for_all
             (fun self ->
               Pset.subset
                 (Qhist.considered_faulty ~self h)
                 (Qhist.considered_faulty ~self h'))
             [ 0; 1; 2; 3 ]
         in
         knows_preserved && faulty_preserved))

let prop_qhist_import_union =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"import is a pointwise upper bound of both histories"
       ~count:300
       QCheck.(pair gen_hist gen_hist)
       (fun (a, b) ->
         let m = Qhist.import a b in
         List.for_all
           (fun r ->
             Qset.for_all (fun qq -> Qhist.knows m r qq) (Qhist.get a r)
             && Qset.for_all (fun qq -> Qhist.knows m r qq) (Qhist.get b r))
           [ 0; 1; 2; 3 ]))

(* Lemma 6.20 as a property: a process never considers itself faulty
   when its quorums are self-including. *)
let prop_qhist_never_self_faulty =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"Lemma 6.20: self-including quorums keep p out                              of F_p"
       ~count:300
       QCheck.(pair (int_bound 3) (small_list gen_quorum))
       (fun (self, quorums) ->
         let h =
           List.fold_left
             (fun h qq -> Qhist.add h self (Pset.add self qq))
             Qhist.empty quorums
         in
         not (Pset.mem self (Qhist.considered_faulty ~self h))))

(* -------------------------------------------------------------- *)
(* A_nuc sweeps (Theorem 6.27)                                     *)
(* -------------------------------------------------------------- *)

let seeds = [ 0; 1; 2; 3; 4; 5 ]

let anuc : (module Tutil.CONSENSUS) =
  (module struct
    include Anuc

    type message = Anuc.message

    let pp_message = Anuc.pp_message
    let equal_message = Anuc.equal_message

    let step = Anuc.step
  end)

let test_anuc_benign () =
  List.iter
    (fun n ->
      let r =
        Tutil.sweep anuc ~family:Tutil.benign_nu_plus
          ~flavour:Consensus.Spec.Nonuniform ~n
          ~t_range:(List.init (n - 1) (fun i -> i + 1))
          ~seeds ~max_steps:9000 ()
      in
      Alcotest.(check bool) "ran" true (r.Tutil.runs > 0))
    [ 3; 4; 5; 6; 7 ]

(* Exhaustive coverage of the small universe: every faulty set of
   E_2(3) (including none), with early and late crash timings. *)
let test_anuc_exhaustive_small () =
  let n = 3 in
  let module R = Sim.Runner.Make (Anuc) in
  let faulty_sets =
    List.filter
      (fun s -> Pset.cardinal s <= 2)
      (Pset.subsets (Pset.full ~n))
  in
  List.iter
    (fun faulty_set ->
      List.iter
        (fun crash_time ->
          let crashes =
            Pset.fold (fun p acc -> (p, crash_time) :: acc) faulty_set []
          in
          let pattern = Sim.Failure_pattern.make ~n ~crashes in
          let oracle = Tutil.benign_nu_plus.Tutil.make ~seed:1 pattern in
          let correct = Sim.Failure_pattern.correct pattern in
          let proposals p = p mod 2 in
          let run =
            R.exec ~seed:1 ~record:false ~pattern
              ~fd:oracle.Fd.Oracle.query ~inputs:proposals ~max_steps:6000
              ~stop:(fun st _ ->
                Pset.for_all (fun p -> Anuc.decision (st p) <> None) correct)
              ()
          in
          let outcome =
            Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
                Anuc.decision run.R.states.(p))
          in
          match Consensus.Spec.check Consensus.Spec.Nonuniform outcome with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "faulty=%a crash@%d: %s" Pset.pp faulty_set
              crash_time e)
        [ 5; 60 ])
    faulty_sets

let test_anuc_adversarial () =
  List.iter
    (fun n ->
      let r =
        Tutil.sweep anuc ~family:Tutil.adversarial_nu_plus
          ~flavour:Consensus.Spec.Nonuniform ~n
          ~t_range:(List.init (n - 1) (fun i -> i + 1))
          ~seeds ()
      in
      Alcotest.(check bool) "ran" true (r.Tutil.runs > 0))
    [ 3; 4; 5 ]

(* The quorum-awareness gate: seen_p[Q] is set no earlier than round
   1, and deciding needs seen_p[Q] < k_p, so no decision can happen in
   round 1. *)
let test_anuc_no_round_one_decision () =
  List.iter
    (fun seed ->
      let n = 4 in
      let pattern = Sim.Failure_pattern.make ~n ~crashes:[] in
      let oracle = Tutil.benign_nu_plus.Tutil.make ~seed pattern in
      let module R = Sim.Runner.Make (Anuc) in
      let run =
        R.exec ~seed ~pattern ~fd:oracle.Fd.Oracle.query
          ~inputs:(fun p -> p mod 2)
          ~max_steps:5000
          ~stop:(fun st _ ->
            Pset.for_all (fun p -> Anuc.decision (st p) <> None)
              (Pset.full ~n))
          ()
      in
      Array.iter
        (fun st ->
          match Anuc.decision_round st with
          | Some r ->
            Alcotest.(check bool) "decision round >= 2" true (r >= 2)
          | None -> ())
        run.R.states)
    seeds

(* The minimum system: n = 2 with up to one crash. *)
let test_anuc_n2 () =
  let r =
    Tutil.sweep anuc ~family:Tutil.benign_nu_plus
      ~flavour:Consensus.Spec.Nonuniform ~n:2 ~t_range:[ 1 ]
      ~seeds:[ 0; 1; 2; 3 ] ()
  in
  Alcotest.(check bool) "ran" true (r.Tutil.runs > 0)

(* Everyone except the pivot crashes early: quorums shrink to the
   singleton and the survivor decides alone. *)
let test_anuc_lone_survivor () =
  let n = 4 in
  let pattern =
    Sim.Failure_pattern.make ~n ~crashes:[ (1, 10); (2, 10); (3, 10) ]
  in
  let oracle = Tutil.benign_nu_plus.Tutil.make ~seed:4 pattern in
  let module R = Sim.Runner.Make (Anuc) in
  let run =
    R.exec ~seed:4 ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:(fun p -> p mod 2)
      ~max_steps:6000
      ~stop:(fun st _ -> Anuc.decision (st 0) <> None)
      ()
  in
  Alcotest.(check bool) "survivor decided" true run.R.stopped_early;
  match Anuc.decision run.R.states.(0) with
  | Some v ->
    Alcotest.(check bool) "decided a proposed value" true (v = 0 || v = 1)
  | None -> Alcotest.fail "no decision"

(* Unanimous proposals decide that value. *)
let test_anuc_validity_unanimous () =
  let n = 4 in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (3, 30) ] in
  let oracle = Tutil.benign_nu_plus.Tutil.make ~seed:2 pattern in
  let module R = Sim.Runner.Make (Anuc) in
  List.iter
    (fun v ->
      let run =
        R.exec ~seed:2 ~pattern ~fd:oracle.Fd.Oracle.query
          ~inputs:(fun _ -> v)
          ~max_steps:5000
          ~stop:(fun st _ ->
            Pset.for_all (fun p -> Anuc.decision (st p) <> None)
              (Sim.Failure_pattern.correct pattern))
          ()
      in
      Pset.iter
        (fun p ->
          Alcotest.(check (option int))
            (Printf.sprintf "p%d decides %d" p v)
            (Some v)
            (Anuc.decision run.R.states.(p)))
        (Sim.Failure_pattern.correct pattern))
    [ 0; 1 ]

(* Lemmas 6.20/6.21 as runtime invariants: at every step of a run
   under a valid Sigma-nu+ history, no process considers itself
   faulty, and no correct process considers another correct process
   faulty; and by the end (Lemma 6.12's consequence) correct processes
   do not distrust each other. *)
let test_anuc_lemma_invariants () =
  List.iter
    (fun seed ->
      let n = 4 in
      let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (3, 40) ] in
      let oracle = Tutil.adversarial_nu_plus.Tutil.make ~seed pattern in
      let correct = Sim.Failure_pattern.correct pattern in
      let module R = Sim.Runner.Make (Anuc) in
      let run =
        R.exec ~seed ~pattern ~fd:oracle.Fd.Oracle.query
          ~inputs:(fun p -> p mod 2)
          ~max_steps:3000
          ~stop:(fun st _ ->
            Pset.for_all (fun p -> Anuc.decision (st p) <> None) correct)
          ()
      in
      Array.iter
        (fun step ->
          let p = step.R.pid in
          let fp = Anuc.considered_faulty ~self:p step.R.state_after in
          Alcotest.(check bool)
            (Printf.sprintf "Lemma 6.20: p%d not in its own F_p (t=%d)" p
               step.R.time)
            false (Pset.mem p fp);
          if Pset.mem p correct then
            Alcotest.(check bool)
              (Printf.sprintf
                 "Lemma 6.21: correct p%d considers no correct process                   faulty (t=%d)"
                 p step.R.time)
              false
              (Pset.intersects fp correct))
        run.R.steps;
      (* Lemma 6.12's consequence at the end of the run *)
      Pset.iter
        (fun p ->
          Pset.iter
            (fun q ->
              Alcotest.(check bool)
                (Printf.sprintf "correct p%d does not distrust correct p%d"
                   p q)
                false
                (Core.Qhist.distrusts ~self:p ~n
                   (Anuc.history run.R.states.(p))
                   q))
            correct)
        correct)
    [ 0; 1; 2 ]

(* -------------------------------------------------------------- *)
(* The composed stack (Theorem 6.28)                               *)
(* -------------------------------------------------------------- *)

let stack : (module Tutil.CONSENSUS) =
  (module struct
    include Core.Stack

    type message = Core.Stack.message

    let pp_message = Core.Stack.pp_message
    let equal_message = Core.Stack.equal_message
    let step = Core.Stack.step
  end)

let test_stack_benign () =
  let r =
    Tutil.sweep stack ~family:Tutil.benign_nu
      ~flavour:Consensus.Spec.Nonuniform ~n:4 ~t_range:[ 1; 2; 3 ]
      ~seeds:[ 0; 1; 2 ] ~max_steps:9000 ()
  in
  Alcotest.(check bool) "ran" true (r.Tutil.runs > 0)

let test_stack_adversarial () =
  let r =
    Tutil.sweep stack ~family:Tutil.adversarial_nu
      ~flavour:Consensus.Spec.Nonuniform ~n:4 ~t_range:[ 2; 3 ]
      ~seeds:[ 0; 1 ] ~max_steps:9000 ()
  in
  Alcotest.(check bool) "ran" true (r.Tutil.runs > 0)

(* -------------------------------------------------------------- *)
(* T_{Sigma-nu -> Sigma-nu+} (Theorem 6.7)                         *)
(* -------------------------------------------------------------- *)

module Tsp_runner = Sim.Runner.Make (Core.T_sigma_plus)

let emulated_tsp_history run =
  let samples =
    Array.to_list run.Tsp_runner.steps
    |> List.map (fun s ->
           ( s.Tsp_runner.pid,
             s.Tsp_runner.time,
             Sim.Fd_value.Quorum
               (Core.T_sigma_plus.output s.Tsp_runner.state_after) ))
  in
  Fd.History.of_samples
    ~n:(Sim.Failure_pattern.n run.Tsp_runner.pattern)
    samples

let test_t_sigma_plus_emulation () =
  let cases =
    [
      (Sim.Failure_pattern.make ~n:4 ~crashes:[], Fd.Oracle.Faulty_arbitrary);
      ( Sim.Failure_pattern.make ~n:4 ~crashes:[ (3, 40) ],
        Fd.Oracle.Faulty_arbitrary );
      ( Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 30); (3, 60) ],
        Fd.Oracle.Faulty_split );
      ( Sim.Failure_pattern.make ~n:5 ~crashes:[ (2, 20); (3, 40); (4, 60) ],
        Fd.Oracle.Faulty_split );
    ]
  in
  List.iter
    (fun (pattern, mode) ->
      List.iter
        (fun seed ->
          let oracle =
            Fd.Oracle.sigma_nu ~seed ~stab_time:80 ~faulty_mode:mode pattern
          in
          let run =
            Tsp_runner.exec ~seed ~pattern ~fd:oracle.Fd.Oracle.query
              ~inputs:(fun _ -> ())
              ~max_steps:700 ()
          in
          let h = emulated_tsp_history run in
          match Fd.Check.sigma_nu_plus ~max_stab:500 pattern h with
          | Ok () -> ()
          | Error v ->
            Alcotest.failf "T_sigma_plus %a seed %d: %a"
              Sim.Failure_pattern.pp pattern seed Fd.Check.pp_violation v)
        [ 0; 1; 2 ])
    cases

(* -------------------------------------------------------------- *)
(* T_{D -> Sigma-nu} (Theorems 5.4 and 5.8)                        *)
(* -------------------------------------------------------------- *)

module Tx_mr = Core.T_extract.Make (struct
  include Consensus.Mr.With_quorum

  type message = Consensus.Mr.message

  let pp_message = Consensus.Mr.pp_message
  let equal_message = Consensus.Mr.equal_message
  let step = Consensus.Mr.With_quorum.step
  let decision = Consensus.Mr.With_quorum.decision
end)

module Tx_mr_runner = Sim.Runner.Make (Tx_mr)

module Tx_anuc = Core.T_extract.Make (struct
  include Anuc

  type message = Anuc.message

  let pp_message = Anuc.pp_message
  let equal_message = Anuc.equal_message
  let step = Anuc.step
  let decision = Anuc.decision
end)

module Tx_anuc_runner = Sim.Runner.Make (Tx_anuc)

(* D = (Omega, Sigma) with A = MR-Sigma solves UNIFORM consensus, so
   Fig. 2 extracts full Sigma (Thm 5.8) — which is in particular
   Sigma-nu (Thm 5.4). *)
let test_t_extract_uniform_gives_sigma () =
  let patterns =
    [
      Sim.Failure_pattern.make ~n:4 ~crashes:[ (3, 50) ];
      Sim.Failure_pattern.make ~n:4 ~crashes:[ (1, 30); (2, 30); (3, 30) ];
      Sim.Failure_pattern.make ~n:5 ~crashes:[ (0, 25); (4, 45) ];
    ]
  in
  List.iter
    (fun pattern ->
      List.iter
        (fun seed ->
          let oracle =
            Fd.Oracle.pair
              (Fd.Oracle.omega ~seed ~stab_time:60 pattern)
              (Fd.Oracle.sigma ~seed ~stab_time:60 pattern)
          in
          let run =
            Tx_mr_runner.exec ~seed ~pattern ~fd:oracle.Fd.Oracle.query
              ~inputs:(fun _ -> ())
              ~max_steps:700 ()
          in
          let extractions =
            Array.fold_left
              (fun acc st -> acc + Tx_mr.extractions st)
              0 run.Tx_mr_runner.states
          in
          Alcotest.(check bool) "made extractions" true (extractions > 0);
          let samples =
            Array.to_list run.Tx_mr_runner.steps
            |> List.map (fun s ->
                   ( s.Tx_mr_runner.pid,
                     s.Tx_mr_runner.time,
                     Sim.Fd_value.Quorum
                       (Tx_mr.output s.Tx_mr_runner.state_after) ))
          in
          let h =
            Fd.History.of_samples ~n:(Sim.Failure_pattern.n pattern) samples
          in
          (match Fd.Check.sigma ~max_stab:560 pattern h with
          | Ok () -> ()
          | Error v ->
            Alcotest.failf "T_extract(MR-Sigma) %a seed %d (Sigma): %a"
              Sim.Failure_pattern.pp pattern seed Fd.Check.pp_violation v);
          match Fd.Check.sigma_nu ~max_stab:560 pattern h with
          | Ok () -> ()
          | Error v ->
            Alcotest.failf "T_extract(MR-Sigma) %a seed %d (Sigma-nu): %a"
              Sim.Failure_pattern.pp pattern seed Fd.Check.pp_violation v)
        [ 0; 1 ])
    patterns

(* D = (Omega, Sigma-nu+) with A = A_nuc solves only NONUNIFORM
   consensus; Fig. 2 must still extract Sigma-nu (Thm 5.4). Also run
   with perfect information as the quorum component — any detector
   that solves the problem must be reducible. *)
let test_t_extract_nonuniform_gives_sigma_nu () =
  let pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 30); (3, 50) ] in
  List.iter
    (fun seed ->
      let quorum_part =
        if seed mod 2 = 0 then
          Fd.Oracle.sigma_nu_plus ~seed ~stab_time:60 pattern
        else Fd.Oracle.perfect_plus pattern
      in
      let oracle =
        Fd.Oracle.pair (Fd.Oracle.omega ~seed ~stab_time:60 pattern)
          quorum_part
      in
      let run =
        Tx_anuc_runner.exec ~seed ~pattern ~fd:oracle.Fd.Oracle.query
          ~inputs:(fun _ -> ())
          ~max_steps:2600 ()
      in
      let extractions =
        Array.fold_left
          (fun acc st -> acc + Tx_anuc.extractions st)
          0 run.Tx_anuc_runner.states
      in
      Alcotest.(check bool) "made extractions" true (extractions > 0);
      let samples =
        Array.to_list run.Tx_anuc_runner.steps
        |> List.map (fun s ->
               ( s.Tx_anuc_runner.pid,
                 s.Tx_anuc_runner.time,
                 Sim.Fd_value.Quorum
                   (Tx_anuc.output s.Tx_anuc_runner.state_after) ))
      in
      let h =
        Fd.History.of_samples ~n:(Sim.Failure_pattern.n pattern) samples
      in
      match Fd.Check.sigma_nu ~max_stab:2100 pattern h with
      | Ok () -> ()
      | Error v ->
        Alcotest.failf "T_extract(A_nuc) seed %d: %a" seed
          Fd.Check.pp_violation v)
    [ 0; 1 ]

(* -------------------------------------------------------------- *)
(* The contamination scenario (Section 6.3)                        *)
(* -------------------------------------------------------------- *)

(* The Section 6.3 scenario, via the shared scripted driver. *)
let test_contamination_naive_mr () =
  let o = Core.Scenario.contamination_naive_mr () in
  Alcotest.(check (option int)) "p0 decided 0" (Some 0) o.Core.Scenario.decisions.(0);
  Alcotest.(check (option int)) "p1 decided 1" (Some 1) o.Core.Scenario.decisions.(1);
  Alcotest.(check bool) "nonuniform agreement violated" true
    o.Core.Scenario.agreement_violated;
  match o.Core.Scenario.history_valid with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "adversary history is not a legal (Omega, Sigma-nu) \
                    history: %a" Fd.Check.pp_violation v

(* Cross-layer check: a recorded A_nuc consensus run passes the
   runner's independent model-conformance validator (run properties
   (1)-(7) of Section 2.6). *)
let test_anuc_run_conforms_to_model () =
  let n = 4 in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (3, 50) ] in
  let oracle = Tutil.benign_nu_plus.Tutil.make ~seed:6 pattern in
  let module R = Sim.Runner.Make (Anuc) in
  let run =
    R.exec ~seed:6 ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:(fun p -> p mod 2)
      ~max_steps:3000
      ~stop:(fun st _ ->
        Pset.for_all (fun p -> Anuc.decision (st p) <> None)
          (Sim.Failure_pattern.correct pattern))
      ()
  in
  match
    R.conformance ~fd:oracle.Fd.Oracle.query
      ~inputs:(fun p -> p mod 2)
      run
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* A_nuc is strictly nonuniform (experiment E10): a legal partitioned
   Sigma-nu+ history lets the faulty side decide differently. *)
let test_anuc_strictly_nonuniform () =
  let r = Experiments.e10_not_uniform () in
  Alcotest.(check bool) (r.Experiments.measured) true r.Experiments.pass

(* -------------------------------------------------------------- *)
(* The mechanism ablation                                           *)
(* -------------------------------------------------------------- *)

(* Both safety mechanisms disabled: the A_nuc skeleton falls to the
   very script that the full algorithm (and each single-mechanism
   variant) resists. *)
let test_ablation_unsafe_falls () =
  let o = Core.Scenario.contamination_anuc_unsafe () in
  Alcotest.(check (option int)) "p0 decided 0" (Some 0)
    o.Core.Scenario.decisions.(0);
  Alcotest.(check (option int)) "p1 decided 1" (Some 1)
    o.Core.Scenario.decisions.(1);
  Alcotest.(check bool) "violated" true o.Core.Scenario.agreement_violated;
  match o.Core.Scenario.history_valid with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "adversary history invalid: %a" Fd.Check.pp_violation v

let test_ablation_protected_variants_resist () =
  (* full algorithm: the distrust mechanism blocks the script *)
  let module C_full = Core.Scenario.Contaminate (Core.Anuc) in
  (match C_full.run () with
  | Error _ -> ()
  | Ok o ->
    Alcotest.(check bool)
      "if the script completes against A_nuc, agreement must hold" false
      o.Core.Scenario.agreement_violated);
  (* distrust alone also blocks it *)
  let module C_noaw = Core.Scenario.Contaminate (Core.Anuc.Without_awareness) in
  (match C_noaw.run () with
  | Error _ -> ()
  | Ok o ->
    Alcotest.(check bool)
      "without awareness, distrust must still prevent the violation" false
      o.Core.Scenario.agreement_violated);
  (* awareness alone defuses it (the script completes, but the delayed
     decision means contamination sweeps every correct process alike) *)
  let module C_nodis = Core.Scenario.Contaminate (Core.Anuc.Without_distrust) in
  match C_nodis.run () with
  | Error _ -> ()
  | Ok o ->
    Alcotest.(check bool)
      "without distrust, awareness must still prevent the violation" false
      o.Core.Scenario.agreement_violated

let test_ablation_sweep_shape () =
  let rows = Experiments.ablation ~quick:true () in
  (match rows with
  | [ full; noaw; nodis; noboth ] ->
    Alcotest.(check bool) "full resists script" false
      full.Experiments.script_violated;
    Alcotest.(check int) "full has no sweep violations" 0
      full.Experiments.sweep_violations;
    Alcotest.(check bool) "-awareness resists script" false
      noaw.Experiments.script_violated;
    Alcotest.(check bool) "-distrust resists script" false
      nodis.Experiments.script_violated;
    Alcotest.(check bool) "-both falls to the script" true
      noboth.Experiments.script_violated;
    (* the awareness gate costs rounds: the full algorithm needs
       strictly more rounds than the variant without it *)
    Alcotest.(check bool) "awareness costs rounds" true
      (full.Experiments.a_avg_rounds > noaw.Experiments.a_avg_rounds)
  | _ -> Alcotest.fail "expected four ablation rows")

(* -------------------------------------------------------------- *)
(* Separation (Theorem 7.1)                                        *)
(* -------------------------------------------------------------- *)

module Scratch_runner = Sim.Runner.Make (Core.Separation.Sigma_scratch)

(* IF direction: with t < n/2, the from-scratch algorithm emulates
   Sigma. *)
let test_sigma_scratch_is_sigma_when_majority () =
  let cases =
    [
      (3, 1, [ (2, 35) ]);
      (5, 2, [ (0, 20); (4, 50) ]);
      (7, 3, [ (1, 15); (3, 30); (6, 60) ]);
    ]
  in
  List.iter
    (fun (n, t, crashes) ->
      let pattern = Sim.Failure_pattern.make ~n ~crashes in
      List.iter
        (fun seed ->
          let run =
            Scratch_runner.exec ~seed ~pattern
              ~fd:(fun _ _ -> Sim.Fd_value.Unit)
              ~inputs:(fun _ -> t)
              ~max_steps:600 ()
          in
          let samples =
            Array.to_list run.Scratch_runner.steps
            |> List.map (fun s ->
                   ( s.Scratch_runner.pid,
                     s.Scratch_runner.time,
                     Sim.Fd_value.Quorum
                       (Core.Separation.Sigma_scratch.output
                          s.Scratch_runner.state_after) ))
          in
          let h = Fd.History.of_samples ~n samples in
          match Fd.Check.sigma ~max_stab:450 pattern h with
          | Ok () -> ()
          | Error v ->
            Alcotest.failf "sigma_scratch n=%d t=%d seed %d: %a" n t seed
              Fd.Check.pp_violation v)
        [ 0; 1 ])
    cases

(* Liveness of the from-scratch emulation: rounds keep completing. *)
let test_sigma_scratch_liveness () =
  let n = 5 and t = 2 in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (0, 30); (4, 60) ] in
  let run =
    Scratch_runner.exec ~seed:2 ~pattern
      ~fd:(fun _ _ -> Sim.Fd_value.Unit)
      ~inputs:(fun _ -> t)
      ~max_steps:600 ()
  in
  Pset.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p%d completed many rounds" p)
        true
        (Core.Separation.Sigma_scratch.rounds_completed
           run.Scratch_runner.states.(p)
        > 15))
    (Sim.Failure_pattern.correct pattern)

(* ONLY IF direction: with t >= n/2 the two-run construction yields
   disjoint quorums against the from-scratch candidate. *)
let test_attack_succeeds_at_half () =
  let module Atk = Core.Separation.Attack (Core.Separation.Sigma_scratch) in
  List.iter
    (fun (n, t) ->
      match Atk.run ~n ~t ~inputs:(fun _ -> t) () with
      | Ok o ->
        Alcotest.(check bool)
          (Printf.sprintf "disjoint quorums for n=%d t=%d" n t)
          true o.Atk.disjoint;
        Alcotest.(check bool) "A' inside A" true
          (Pset.subset o.Atk.quorum_a o.Atk.part_a);
        Alcotest.(check bool) "B' inside B" true
          (Pset.subset o.Atk.quorum_b o.Atk.part_b)
      | Error e -> Alcotest.failf "attack n=%d t=%d: %s" n t e)
    [ (4, 2); (4, 3); (5, 3); (6, 3); (6, 4); (8, 4) ]

(* The attack construction is inapplicable below n/2 — the regime
   where Sigma is implementable. *)
let test_attack_refuses_below_half () =
  let module Atk = Core.Separation.Attack (Core.Separation.Sigma_scratch) in
  List.iter
    (fun (n, t) ->
      match Atk.run ~n ~t ~inputs:(fun _ -> t) () with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "attack should refuse n=%d t=%d" n t)
    [ (4, 1); (5, 2); (9, 4) ]

(* Running the same attack against T_{Sigma-nu -> Sigma-nu+}: the
   emulated quorums may come out disjoint, but the nonintersecting
   one belongs to processes that are faulty in R' — exactly the
   weakening that keeps Sigma-nu+ alive where Sigma dies. *)
let test_attack_on_t_sigma_plus_is_nu_legal () =
  let module Atk = Core.Separation.Attack (struct
    include Core.T_sigma_plus

    type message = Core.T_sigma_plus.message

    let pp_message = Core.T_sigma_plus.pp_message
    let equal_message = Core.T_sigma_plus.equal_message
    let step = Core.T_sigma_plus.step
  end) in
  (* T_sigma_plus consumes the quorum component only *)
  match Atk.run ~n:4 ~t:2 ~inputs:(fun _ -> ()) ~max_steps:4000 () with
  | Ok o ->
    Alcotest.(check bool) "quorums disjoint" true o.Atk.disjoint;
    (* in R' the A side is faulty: the disjoint quorum A' is entirely
       faulty there, so conditional nonintersection holds *)
    Alcotest.(check bool) "A' subset of the crashed side" true
      (Pset.subset o.Atk.quorum_a o.Atk.part_a)
  | Error e -> Alcotest.failf "attack on T_sigma_plus: %s" e

let () =
  Alcotest.run "core"
    [
      ( "qhist-distrust",
        [
          Alcotest.test_case "history basics" `Quick test_qhist_basics;
          Alcotest.test_case "nonintersecting quorums" `Quick
            test_distrust_nonintersecting;
          Alcotest.test_case "symmetric distrust pair" `Quick
            test_distrust_symmetric_pair;
          Alcotest.test_case "considered-faulty discount" `Quick
            test_distrust_discounts_considered_faulty;
          prop_qhist_monotone;
          prop_qhist_import_union;
          prop_qhist_never_self_faulty;
        ] );
      ( "anuc",
        [
          Alcotest.test_case "benign sweeps (Thm 6.27)" `Slow test_anuc_benign;
          Alcotest.test_case "adversarial sweeps" `Slow test_anuc_adversarial;
          Alcotest.test_case "no round-1 decision (quorum awareness)" `Quick
            test_anuc_no_round_one_decision;
          Alcotest.test_case "n = 2" `Quick test_anuc_n2;
          Alcotest.test_case "exhaustive small universe" `Quick
            test_anuc_exhaustive_small;
          Alcotest.test_case "lone survivor" `Quick test_anuc_lone_survivor;
          Alcotest.test_case "unanimous validity" `Quick
            test_anuc_validity_unanimous;
          Alcotest.test_case "Lemma 6.20/6.21 runtime invariants" `Quick
            test_anuc_lemma_invariants;
          Alcotest.test_case "strictly nonuniform (E10)" `Quick
            test_anuc_strictly_nonuniform;
          Alcotest.test_case "runs conform to the Sec-2.6 model" `Quick
            test_anuc_run_conforms_to_model;
        ] );
      ( "stack",
        [
          Alcotest.test_case "benign (Thm 6.28)" `Slow test_stack_benign;
          Alcotest.test_case "adversarial" `Slow test_stack_adversarial;
        ] );
      ( "transformations",
        [
          Alcotest.test_case "T_sigma_plus emulates Sigma-nu+ (Thm 6.7)"
            `Slow test_t_sigma_plus_emulation;
          Alcotest.test_case "T_extract from uniform gives Sigma (Thm 5.8)"
            `Slow test_t_extract_uniform_gives_sigma;
          Alcotest.test_case
            "T_extract from nonuniform gives Sigma-nu (Thm 5.4)" `Slow
            test_t_extract_nonuniform_gives_sigma_nu;
        ] );
      ( "contamination",
        [
          Alcotest.test_case "naive MR violates NU agreement (Sec 6.3)"
            `Quick test_contamination_naive_mr;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "unsafe skeleton falls to Sec-6.3 script"
            `Quick test_ablation_unsafe_falls;
          Alcotest.test_case "protected variants resist" `Quick
            test_ablation_protected_variants_resist;
          Alcotest.test_case "sweep shape" `Slow test_ablation_sweep_shape;
        ] );
      ( "separation",
        [
          Alcotest.test_case "from-scratch Sigma below n/2 (Thm 7.1 IF)"
            `Quick test_sigma_scratch_is_sigma_when_majority;
          Alcotest.test_case "from-scratch emulation is live" `Quick
            test_sigma_scratch_liveness;
          Alcotest.test_case "attack succeeds at half (Thm 7.1 ONLY IF)"
            `Quick test_attack_succeeds_at_half;
          Alcotest.test_case "attack refuses below half" `Quick
            test_attack_refuses_below_half;
          Alcotest.test_case "attack on T_sigma_plus stays nu-legal" `Quick
            test_attack_on_t_sigma_plus_is_nu_legal;
        ] );
    ]
