test/tutil.ml: Alcotest Array Consensus Fd List Procset Pset Random Result Sim
