test/test_consensus.mli:
