test/test_procset.mli:
