test/test_core.ml: Alcotest Array Consensus Core Experiments Fd List Printf Procset Pset QCheck QCheck_alcotest Qset Sim Tutil
