test/test_dag.ml: Alcotest Array Consensus Dagsim Fd Format Int List Pid Printf Procset Pset QCheck QCheck_alcotest Sim
