test/test_procset.ml: Alcotest Bool Int List Procset Pset QCheck QCheck_alcotest Qset Random
