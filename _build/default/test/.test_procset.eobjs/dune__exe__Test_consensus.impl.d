test/test_consensus.ml: Alcotest Array Consensus Fd List Printf Procset Pset Sim Tutil
