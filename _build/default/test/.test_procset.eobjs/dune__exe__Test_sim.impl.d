test/test_sim.ml: Alcotest Array Format Int List Option Pid Printf Procset Pset QCheck QCheck_alcotest Random Sim
