test/test_smr.ml: Alcotest Array Consensus Fd List Pid Printf Procset Pset Sim Smr
