test/test_fd.ml: Alcotest Fd List Printf Procset Pset QCheck QCheck_alcotest Sim
