(* Tests for the DAG-of-samples machinery: Dag semantics, the A_DAG
   algorithm (the Section 4 observations as finite-run checks), and
   the canonical path simulation. *)
open Procset
module Dag = Dagsim.Dag
module Node = Dagsim.Node

let node owner index value = { Node.owner; index; value }
let q l = Sim.Fd_value.Quorum (Pset.of_list l)

(* -------------------------------------------------------------- *)
(* Dag container semantics                                         *)
(* -------------------------------------------------------------- *)

let test_dag_build () =
  let v1 = node 0 1 (q [ 0 ]) in
  let v2 = node 1 1 (q [ 1 ]) in
  let v3 = node 0 2 (q [ 0; 1 ]) in
  let g = Dag.add_sample Dag.empty v1 in
  let g = Dag.add_sample g v2 in
  let g = Dag.add_sample g v3 in
  Alcotest.(check int) "three nodes" 3 (Dag.size g);
  Alcotest.(check bool) "edge v1->v2" true (Dag.has_edge g v1 v2);
  Alcotest.(check bool) "edge v1->v3" true (Dag.has_edge g v1 v3);
  Alcotest.(check bool) "edge v2->v3" true (Dag.has_edge g v2 v3);
  Alcotest.(check bool) "no edge v3->v1" false (Dag.has_edge g v3 v1);
  Alcotest.(check bool) "no edge v2->v1" false (Dag.has_edge g v2 v1);
  Alcotest.(check int) "v3 has two ancestors" 2 (Dag.ancestor_count g v3);
  Alcotest.(check bool)
    "duplicate sample rejected" true
    (try
       ignore (Dag.add_sample g (node 0 2 (q [])));
       false
     with Invalid_argument _ -> true)

let test_dag_union_and_restrict () =
  let v1 = node 0 1 (q [ 0 ]) in
  let v2 = node 1 1 (q [ 1 ]) in
  let v3 = node 1 2 (q [ 1 ]) in
  (* two divergent copies built from a common prefix *)
  let base = Dag.add_sample Dag.empty v1 in
  let ga = Dag.add_sample base v2 in
  let gb = Dag.add_sample (Dag.add_sample base v2) v3 in
  let u = Dag.union ga gb in
  Alcotest.(check int) "union size" 3 (Dag.size u);
  Alcotest.(check bool) "union keeps edges" true (Dag.has_edge u v2 v3);
  (* restrict to v2: v1 is not a descendant *)
  let r = Dag.restrict u v2 in
  Alcotest.(check int) "restrict size" 2 (Dag.size r);
  Alcotest.(check bool) "v1 gone" false (Dag.mem r v1);
  Alcotest.(check bool) "v3 kept" true (Dag.mem r v3);
  Alcotest.(check bool) "restrict of absent node" true
    (Dag.is_empty (Dag.restrict Dag.empty v1))

let test_dag_spine_chain () =
  (* a pure chain: spine must recover all of it *)
  let vs = List.init 6 (fun i -> node (i mod 3) (1 + (i / 3)) (q [ i mod 3 ])) in
  let g = List.fold_left Dag.add_sample Dag.empty vs in
  let sp = Dag.spine g ~from:(List.hd vs) in
  Alcotest.(check int) "spine covers the chain" 6 (List.length sp);
  Alcotest.(check bool) "spine is a path" true (Dag.is_path g sp)

let test_dag_spine_diamond () =
  (* diamond: a; b,c concurrent; d sees all — longest path length 3 *)
  let a = node 0 1 (q [ 0 ]) in
  let b = node 1 1 (q [ 1 ]) in
  let c = node 2 1 (q [ 2 ]) in
  let d = node 0 2 (q [ 0 ]) in
  let g = Dag.add_sample Dag.empty a in
  (* b and c both extend only {a}: build as separate branches *)
  let branch_b = Dag.add_sample g b in
  let branch_c = Dag.add_sample g c in
  let merged = Dag.union branch_b branch_c in
  let g = Dag.add_sample merged d in
  let sp = Dag.spine g ~from:a in
  Alcotest.(check int) "longest path in diamond" 3 (List.length sp);
  Alcotest.(check bool) "spine is a path" true (Dag.is_path g sp);
  Alcotest.(check bool) "b and c not both in spine" true
    (not (List.exists (Node.equal b) sp && List.exists (Node.equal c) sp))

(* -------------------------------------------------------------- *)
(* A_DAG runs: the Section 4 observations on finite prefixes       *)
(* -------------------------------------------------------------- *)

module R = Sim.Runner.Make (Dagsim.Adag.Algorithm)

let adag_run ?(seed = 0) ?(max_steps = 400) pattern =
  let oracle = Fd.Oracle.sigma_nu_plus ~seed ~stab_time:40 pattern in
  R.exec ~seed ~pattern ~fd:oracle.Fd.Oracle.query
    ~inputs:(fun _ -> ())
    ~max_steps ()

let pattern44 = Sim.Failure_pattern.make ~n:4 ~crashes:[ (3, 60) ]

(* Observation 4.1: G_p is nondecreasing over p's steps. *)
let test_obs_4_1_monotone () =
  let run = adag_run pattern44 in
  let last_size = Array.make 4 0 in
  Array.iter
    (fun step ->
      let g = step.R.state_after.Dagsim.Adag.Core.g in
      let p = step.R.pid in
      Alcotest.(check bool)
        "dag never shrinks" true
        (Dag.size g >= last_size.(p));
      (* cheap proxy for subgraph: every previously known own sample
         is still present (nodes are never removed) *)
      last_size.(p) <- Dag.size g)
    run.R.steps

(* Observation 4.2: samples of the same process form a chain. *)
let test_obs_4_2_own_samples_chained () =
  let run = adag_run pattern44 in
  let g = run.R.states.(0).Dagsim.Adag.Core.g in
  List.iter
    (fun p ->
      let samples = Dag.samples_of g p in
      let rec chained = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool)
            (Printf.sprintf "p%d sample %d -> %d" p a.Node.index b.Node.index)
            true (Dag.has_edge g a b);
          chained rest
        | [ _ ] | [] -> ()
      in
      chained samples)
    [ 0; 1; 2; 3 ]

(* Observation 4.3-analogue: every sample's value equals the oracle
   history at its owner (the DAG stores genuine samples of D). *)
let test_obs_4_3_values_genuine () =
  let pattern = pattern44 in
  let oracle = Fd.Oracle.sigma_nu_plus ~seed:5 ~stab_time:40 pattern in
  let run =
    R.exec ~seed:5 ~pattern ~fd:oracle.Fd.Oracle.query
      ~inputs:(fun _ -> ())
      ~max_steps:300 ()
  in
  (* reconstruct per-owner sample values from the recorded steps *)
  Array.iter
    (fun step ->
      match step.R.state_after.Dagsim.Adag.Core.last with
      | Some v ->
        Alcotest.(check bool)
          "sample value is H(owner, step time)" true
          (Sim.Fd_value.equal v.Node.value
             (oracle.Fd.Oracle.query step.R.pid step.R.time))
      | None -> Alcotest.fail "a step must take a sample")
    run.R.steps

(* Lemma 4.7-analogue: the limit DAG of a correct process contains
   samples of every correct process, with ever-growing indices. *)
let test_lemma_4_7_gossip_reaches () =
  let run = adag_run ~max_steps:400 pattern44 in
  List.iter
    (fun p ->
      let g = run.R.states.(p).Dagsim.Adag.Core.g in
      List.iter
        (fun s ->
          let samples = Dag.samples_of g s in
          Alcotest.(check bool)
            (Printf.sprintf "p%d's dag has many samples of p%d" p s)
            true
            (List.length samples > 30))
        [ 0; 1; 2 ])
    [ 0; 1; 2 ]

(* Lemma 4.6-analogue: restricted to a fresh-enough own sample, the
   DAG contains only samples of correct processes. *)
let test_lemma_4_6_freshness_barrier () =
  let run = adag_run ~max_steps:500 pattern44 in
  let g = run.R.states.(0).Dagsim.Adag.Core.g in
  (* pick p0's sample taken well after p3's crash at 60: its
     descendants can only be post-crash samples *)
  let fresh =
    List.filter (fun v -> v.Node.index > 40) (Dag.samples_of g 0)
  in
  match fresh with
  | [] -> Alcotest.fail "expected a fresh sample of p0"
  | u :: _ ->
    let sub = Dag.restrict g u in
    List.iter
      (fun v ->
        Alcotest.(check bool)
          (Format.asprintf "no faulty sample below the barrier (%a)" Node.pp v)
          true
          (v.Node.owner <> 3))
      (Dag.nodes sub)

(* Spine quality on a real gossip DAG: the longest path covers a solid
   fraction of the nodes and is a genuine path. *)
let test_spine_quality () =
  let run = adag_run ~max_steps:400 pattern44 in
  let g = run.R.states.(1).Dagsim.Adag.Core.g in
  match Dag.samples_of g 1 with
  | [] -> Alcotest.fail "p1 has samples"
  | first :: _ ->
    let sp = Dag.spine g ~from:first in
    Alcotest.(check bool) "spine is a path" true (Dag.is_path g sp);
    Alcotest.(check bool)
      (Printf.sprintf "spine covers >= 40%% of the dag (%d of %d)"
         (List.length sp) (Dag.size g))
      true
      (List.length sp * 10 >= Dag.size g * 4);
    (* spine lives in G|first *)
    List.iter
      (fun v ->
        Alcotest.(check bool) "spine node is a descendant" true
          (Dag.is_descendant g ~of_:first v))
      sp

(* -------------------------------------------------------------- *)
(* Properties on DAGs produced by real gossip                      *)
(* -------------------------------------------------------------- *)

(* Snapshot a few DAGs out of an A_DAG run, for property tests. *)
let gossip_dags ~seed =
  let run = adag_run ~seed ~max_steps:250 pattern44 in
  Array.to_list run.R.states
  |> List.map (fun st -> st.Dagsim.Adag.Core.g)

let prop_union_laws =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"union is commutative/associative/idempotent"
       ~count:30 QCheck.(int_bound 1000)
       (fun seed ->
         match gossip_dags ~seed with
         | a :: b :: c :: _ ->
           let ( = ) x y =
             List.equal Node.equal (Dag.nodes x) (Dag.nodes y)
           in
           Dag.union a b = Dag.union b a
           && Dag.union a (Dag.union b c) = Dag.union (Dag.union a b) c
           && Dag.union a a = a
         | _ -> false))

let prop_weave_is_path =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"weave is a path of G|u for any block size"
       ~count:30
       QCheck.(pair (int_bound 1000) (int_range 1 6))
       (fun (seed, block) ->
         match gossip_dags ~seed with
         | g :: _ -> (
           match Dag.samples_of g 0 with
           | [] -> false
           | u :: _ ->
             let w = Dag.weave ~block g ~from:u in
             Dag.is_path g w
             && List.for_all (Dag.is_descendant g ~of_:u) w)
         | _ -> false))

let prop_prune_keeps_fresh =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"prune keeps exactly the per-owner window, newest first"
       ~count:30
       QCheck.(pair (int_bound 1000) (int_range 1 40))
       (fun (seed, window) ->
         match gossip_dags ~seed with
         | g :: _ ->
           let pruned = Dag.prune ~window g in
           let subset =
             List.for_all (Dag.mem g) (Dag.nodes pruned)
           in
           let windowed =
             List.for_all
               (fun p ->
                 let before = Dag.samples_of g p in
                 let after = Dag.samples_of pruned p in
                 let newest =
                   List.fold_left
                     (fun acc v -> max acc v.Node.index)
                     0 before
                 in
                 List.length after <= window
                 && List.for_all
                      (fun v -> v.Node.index > newest - window)
                      after
                 && (before = []
                    || List.exists (fun v -> v.Node.index = newest) after))
               [ 0; 1; 2; 3 ]
           in
           subset && windowed
         | _ -> false))

let prop_spine_still_path_after_prune =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"weave of a pruned DAG is still a path"
       ~count:30 QCheck.(int_bound 1000)
       (fun seed ->
         match gossip_dags ~seed with
         | g :: _ -> (
           let pruned = Dag.prune ~window:20 g in
           match List.rev (Dag.samples_of pruned 0) with
           | [] -> true
           | u :: _ ->
             let w = Dag.weave pruned ~from:u in
             Dag.is_path pruned w)
         | _ -> false))

(* -------------------------------------------------------------- *)
(* Canonical path simulation                                       *)
(* -------------------------------------------------------------- *)

(* An automaton that needs message flow to advance: each process
   repeatedly sends its counter to everyone and counts what it
   receives; canonical oldest-first delivery must deliver messages in
   send order. *)
module Probe = struct
  type input = Consensus.Value.t
  type message = int

  type state = { sent : int; got : (Pid.t * int) list }

  let name = "probe"
  let initial ~n:_ ~self:_ _ = { sent = 0; got = [] }

  let step ~n ~self:_ st received _d =
    let got =
      match received with
      | None -> st.got
      | Some e -> (e.Sim.Envelope.src, e.Sim.Envelope.payload) :: st.got
    in
    let sent = st.sent + 1 in
    ({ sent; got }, List.init n (fun dst -> (dst, sent)))

  let pp_message = Format.pp_print_int
  let equal_message = Int.equal

end

module PS = Dagsim.Path_sim.Make (Probe)

let test_path_sim_canonical_order () =
  (* path alternates p0, p1 *)
  let path =
    List.concat_map
      (fun _ -> [ (0, Sim.Fd_value.Unit); (1, Sim.Fd_value.Unit) ])
      (List.init 6 (fun i -> i))
  in
  let r = PS.run ~n:2 ~inputs:(fun _ -> 0) ~path () in
  Alcotest.(check int) "all steps executed" 12 r.PS.steps_executed;
  (* p1 received p0's messages oldest-first: payloads ascending *)
  let from0 =
    List.rev r.PS.states.(1).Probe.got
    |> List.filter_map (fun (src, v) -> if src = 0 then Some v else None)
  in
  let sorted = List.sort Int.compare from0 in
  Alcotest.(check (list int)) "oldest-first delivery" sorted from0

let test_path_sim_until () =
  let path = List.init 20 (fun i -> (i mod 2, Sim.Fd_value.Unit)) in
  let r =
    PS.run ~n:2
      ~inputs:(fun _ -> 0)
      ~path
      ~until:(fun states -> states.(0).Probe.sent >= 3)
      ()
  in
  Alcotest.(check bool) "stopped" true r.PS.stopped;
  Alcotest.(check int) "stopped right after p0's third step" 5
    r.PS.steps_executed;
  Alcotest.(check bool)
    "participants of the prefix" true
    (Pset.equal
       (PS.participants ~path ~prefix:r.PS.steps_executed)
       (Pset.of_list [ 0; 1 ]))

let () =
  Alcotest.run "dag"
    [
      ( "dag-container",
        [
          Alcotest.test_case "build and edges" `Quick test_dag_build;
          Alcotest.test_case "union and restrict" `Quick
            test_dag_union_and_restrict;
          Alcotest.test_case "spine on a chain" `Quick test_dag_spine_chain;
          Alcotest.test_case "spine on a diamond" `Quick
            test_dag_spine_diamond;
        ] );
      ( "adag-observations",
        [
          Alcotest.test_case "Obs 4.1: monotone DAGs" `Quick
            test_obs_4_1_monotone;
          Alcotest.test_case "Obs 4.2: own samples chained" `Quick
            test_obs_4_2_own_samples_chained;
          Alcotest.test_case "Obs 4.3: genuine samples" `Quick
            test_obs_4_3_values_genuine;
          Alcotest.test_case "Lemma 4.7: gossip reaches everyone" `Quick
            test_lemma_4_7_gossip_reaches;
          Alcotest.test_case "Lemma 4.6: freshness barrier" `Quick
            test_lemma_4_6_freshness_barrier;
          Alcotest.test_case "spine quality" `Quick test_spine_quality;
        ] );
      ( "gossip-properties",
        [
          prop_union_laws;
          prop_weave_is_path;
          prop_prune_keeps_fresh;
          prop_spine_still_path_after_prune;
        ] );
      ( "path-sim",
        [
          Alcotest.test_case "canonical oldest-first order" `Quick
            test_path_sim_canonical_order;
          Alcotest.test_case "until predicate and participants" `Quick
            test_path_sim_until;
        ] );
    ]
