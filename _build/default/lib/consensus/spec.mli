(** The consensus problem specification and run verdicts.

    Nonuniform consensus (Section 2.8): termination (every correct
    process decides), nonuniform agreement (no two {e correct}
    processes decide differently), validity (every decision was
    proposed). Uniform consensus strengthens agreement to all
    processes. This module checks those properties on the observable
    outcome of a finite run. *)

type flavour = Uniform | Nonuniform

val pp_flavour : Format.formatter -> flavour -> unit

type outcome = {
  pattern : Sim.Failure_pattern.t;
  proposals : Value.t array;  (** proposal of each process *)
  decisions : Value.t option array;
      (** final decision of each process, [None] = undecided *)
}

val outcome :
  pattern:Sim.Failure_pattern.t ->
  proposals:(Procset.Pid.t -> Value.t) ->
  decisions:(Procset.Pid.t -> Value.t option) ->
  outcome
(** Collects an observable outcome from accessors. *)

val check_termination : outcome -> (unit, string) result
(** Every correct process has decided. *)

val check_validity : outcome -> (unit, string) result
(** Every decision (by any process) is some process's proposal. *)

val check_agreement : flavour -> outcome -> (unit, string) result
(** No two processes in scope decide differently; the scope is the
    correct processes for [Nonuniform], everyone for [Uniform]. *)

val check : flavour -> outcome -> (unit, string) result
(** All three properties; the first violation is reported. *)

val decided_value : outcome -> Value.t option
(** The decision of the smallest decided correct process, if any. *)
