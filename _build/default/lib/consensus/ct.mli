(** The Chandra–Toueg rotating-coordinator consensus algorithm using
    the eventually-strong detector [<>S] [CT96, Fig. 6] — the other
    classical detector-based consensus, included as a baseline next to
    Mostéfaoui–Raynal.

    Rounds rotate the coordinator role ([c = (r-1) mod n]). Each round:

    + everyone sends its timestamped estimate to the coordinator;
    + the coordinator collects a majority of estimates and proposes
      the one with the highest timestamp;
    + everyone waits for the proposal {e or} for [<>S] to suspect the
      coordinator: on the proposal it adopts it (stamping it with the
      round) and acknowledges; on suspicion it refuses;
    + the coordinator collects a majority of replies; if all of them
      are acknowledgements it reliably broadcasts the decision
      (receivers re-broadcast DECIDE once before deciding).

    Requires a correct majority ([t < n/2]); the majority intersection
    through the timestamp locking gives {e uniform} agreement. Each
    step expects the failure-detector value [Suspects s] (or
    [Pair (_, Suspects s)]). *)

type message =
  | Est of { round : int; est : Value.t; ts : int }
  | Prop of { round : int; value : Value.t }
  | Ack of { round : int }
  | Nack of { round : int }
  | Decide of { value : Value.t }

include
  Sim.Automaton.S with type input = Value.t and type message := message

val decision : state -> Value.t option
(** The decided value, if any. *)

val decision_round : state -> int option
(** Round at which the decision was locked in at this process. *)

val round : state -> int
(** Current round number. *)

val estimate : state -> Value.t
(** Current timestamped estimate. *)
