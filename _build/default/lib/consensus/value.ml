type t = int

let equal = Int.equal
let compare = Int.compare
let pp = Format.pp_print_int
let unknown = None

let pp_opt fmt = function
  | Some v -> pp fmt v
  | None -> Format.pp_print_string fmt "?"
