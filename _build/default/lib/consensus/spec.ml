open Procset

type flavour = Uniform | Nonuniform

let pp_flavour fmt = function
  | Uniform -> Format.pp_print_string fmt "uniform"
  | Nonuniform -> Format.pp_print_string fmt "nonuniform"

type outcome = {
  pattern : Sim.Failure_pattern.t;
  proposals : Value.t array;
  decisions : Value.t option array;
}

let outcome ~pattern ~proposals ~decisions =
  let n = Sim.Failure_pattern.n pattern in
  {
    pattern;
    proposals = Array.init n proposals;
    decisions = Array.init n decisions;
  }

let check_termination o =
  let undecided =
    Pset.filter
      (fun p -> o.decisions.(p) = None)
      (Sim.Failure_pattern.correct o.pattern)
  in
  if Pset.is_empty undecided then Ok ()
  else
    Error
      (Format.asprintf "termination: correct processes %a did not decide"
         Pset.pp undecided)

let check_validity o =
  let proposed v = Array.exists (Value.equal v) o.proposals in
  let bad = ref None in
  Array.iteri
    (fun p -> function
      | Some v when not (proposed v) && !bad = None -> bad := Some (p, v)
      | Some _ | None -> ())
    o.decisions;
  match !bad with
  | None -> Ok ()
  | Some (p, v) ->
    Error
      (Format.asprintf "validity: p%d decided %a, which nobody proposed" p
         Value.pp v)

let check_agreement flavour o =
  let scope =
    match flavour with
    | Uniform -> Pset.full ~n:(Sim.Failure_pattern.n o.pattern)
    | Nonuniform -> Sim.Failure_pattern.correct o.pattern
  in
  let decided =
    Pset.fold
      (fun p acc ->
        match o.decisions.(p) with Some v -> (p, v) :: acc | None -> acc)
      scope []
  in
  match decided with
  | [] -> Ok ()
  | (p0, v0) :: rest -> (
    match List.find_opt (fun (_, v) -> not (Value.equal v v0)) rest with
    | None -> Ok ()
    | Some (p, v) ->
      Error
        (Format.asprintf "%a agreement: p%d decided %a but p%d decided %a"
           pp_flavour flavour p0 Value.pp v0 p Value.pp v))

let ( let* ) = Result.bind

let check flavour o =
  let* () = check_termination o in
  let* () = check_validity o in
  check_agreement flavour o

let decided_value o =
  let correct = Sim.Failure_pattern.correct o.pattern in
  Pset.fold
    (fun p acc ->
      match acc with
      | Some _ -> acc
      | None -> if Pset.mem p correct then o.decisions.(p) else None)
    correct None
