lib/consensus/value.ml: Format Int
