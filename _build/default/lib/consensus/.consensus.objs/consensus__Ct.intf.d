lib/consensus/ct.mli: Sim Value
