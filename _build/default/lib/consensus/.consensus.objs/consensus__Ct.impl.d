lib/consensus/ct.ml: Format Int List Map Option Pid Procset Pset Sim Value
