lib/consensus/mr.ml: Format Int List Map Option Pid Procset Pset Sim Value
