lib/consensus/spec.ml: Array Format List Procset Pset Result Sim Value
