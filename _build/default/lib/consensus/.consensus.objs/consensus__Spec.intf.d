lib/consensus/spec.mli: Format Procset Sim Value
