lib/consensus/mr.mli: Format Sim Value
