lib/consensus/value.mli: Format
