(** Consensus proposal/decision values.

    The paper works with binary consensus ([V = {0, 1}]) for the
    necessity proof and arbitrary [V] for the algorithms; plain
    integers cover both. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val unknown : t option
(** The special proposal value "?" of the third phase of the
    Mostéfaoui–Raynal algorithm and of [A_nuc], encoded as [None]. *)

val pp_opt : Format.formatter -> t option -> unit
(** Prints [Some v] as the value and [None] as ["?"]. *)
