open Procset

type message =
  | Est of { round : int; est : Value.t; ts : int }
  | Prop of { round : int; value : Value.t }
  | Ack of { round : int }
  | Nack of { round : int }
  | Decide of { value : Value.t }

module Imap = Map.Make (Int)

(* round -> sender -> payload *)
type 'a store = 'a Imap.t Imap.t

let store_add round sender v s =
  let inner = Option.value ~default:Imap.empty (Imap.find_opt round s) in
  Imap.add round (Imap.add sender v inner) s

let store_round round s =
  Option.value ~default:Imap.empty (Imap.find_opt round s)

type phase =
  | Start
  | Collect_estimates  (** coordinator, phase 2 *)
  | Await_proposal  (** everyone, phase 3 *)
  | Collect_replies  (** coordinator, phase 4 *)

type state = {
  x : Value.t;
  ts : int;  (** round in which [x] was last adopted from a proposal *)
  k : int;
  phase : phase;
  decided : (Value.t * int) option;
  decide_forwarded : bool;
  ests : (Value.t * int) store;
  props : Value.t store;
  replies : bool store;  (** true = ack, false = nack *)
}

type input = Value.t

let name = "CT-<>S"

let initial ~n:_ ~self:_ x =
  {
    x;
    ts = 0;
    k = 0;
    phase = Start;
    decided = None;
    decide_forwarded = false;
    ests = Imap.empty;
    props = Imap.empty;
    replies = Imap.empty;
  }

let coordinator ~n k = (k - 1) mod n

let suspects_of_fd = function
  | Sim.Fd_value.Suspects s -> s
  | Sim.Fd_value.Pair (_, Sim.Fd_value.Suspects s) -> s
  | v ->
    invalid_arg
      (Format.asprintf "CT-<>S: detector value %a has no suspect list"
         Sim.Fd_value.pp v)

let broadcast ~n msg = List.map (fun q -> (q, msg)) (Pid.all ~n)

let record st = function
  | None -> st
  | Some env -> (
    let src = env.Sim.Envelope.src in
    match env.Sim.Envelope.payload with
    | Est { round; est; ts } ->
      { st with ests = store_add round src (est, ts) st.ests }
    | Prop { round; value } ->
      { st with props = store_add round src value st.props }
    | Ack { round } -> { st with replies = store_add round src true st.replies }
    | Nack { round } ->
      { st with replies = store_add round src false st.replies }
    | Decide { value } -> (
      match st.decided with
      | Some _ -> st
      | None -> { st with decided = Some (value, st.k) }))

(* Begin round [k+1]: send the timestamped estimate to the new
   coordinator. *)
let begin_round ~n st sends =
  let k = st.k + 1 in
  let c = coordinator ~n k in
  let st = { st with k; phase = Collect_estimates } in
  (st, (c, Est { round = k; est = st.x; ts = st.ts }) :: sends)

let rec advance ~n ~self st d sends =
  (* forward a received decision exactly once (reliable broadcast) *)
  let st, sends =
    match st.decided with
    | Some (v, _) when not st.decide_forwarded ->
      ( { st with decide_forwarded = true },
        broadcast ~n (Decide { value = v }) @ sends )
    | Some _ | None -> (st, sends)
  in
  match st.phase with
  | Start ->
    let st, sends = begin_round ~n st sends in
    advance ~n ~self st d sends
  | Collect_estimates ->
    let c = coordinator ~n st.k in
    if not (Pid.equal self c) then begin
      let st = { st with phase = Await_proposal } in
      advance ~n ~self st d sends
    end
    else begin
      let inner = store_round st.k st.ests in
      if 2 * Imap.cardinal inner <= n then (st, sends)
      else begin
        (* propose the estimate with the highest timestamp *)
        let v, _ =
          Imap.fold
            (fun _ (est, ts) (best, best_ts) ->
              if ts > best_ts then (est, ts) else (best, best_ts))
            inner (st.x, -1)
        in
        let st = { st with phase = Await_proposal } in
        advance ~n ~self st d
          (broadcast ~n (Prop { round = st.k; value = v }) @ sends)
      end
    end
  | Await_proposal -> (
    let c = coordinator ~n st.k in
    match Imap.find_opt c (store_round st.k st.props) with
    | Some v ->
      (* adopt, stamp, acknowledge *)
      let st = { st with x = v; ts = st.k } in
      let sends = (c, Ack { round = st.k }) :: sends in
      if Pid.equal self c then begin
        let st = { st with phase = Collect_replies } in
        advance ~n ~self st d sends
      end
      else begin
        let st, sends = begin_round ~n st sends in
        advance ~n ~self st d sends
      end
    | None ->
      if Pset.mem c (suspects_of_fd d) && not (Pid.equal self c) then begin
        (* refuse and move on *)
        let sends = (c, Nack { round = st.k }) :: sends in
        let st, sends = begin_round ~n st sends in
        advance ~n ~self st d sends
      end
      else (st, sends))
  | Collect_replies ->
    let inner = store_round st.k st.replies in
    if 2 * Imap.cardinal inner <= n then (st, sends)
    else begin
      let all_acks = Imap.for_all (fun _ ack -> ack) inner in
      let st =
        if all_acks && st.decided = None then
          { st with decided = Some (st.x, st.k) }
        else st
      in
      let st, sends = begin_round ~n st sends in
      advance ~n ~self st d sends
    end

let step ~n ~self st received d =
  let st = record st received in
  let st, sends = advance ~n ~self st d [] in
  (st, List.rev sends)

let pp_message fmt = function
  | Est { round; est; ts } ->
    Format.fprintf fmt "EST(%d, %a, ts=%d)" round Value.pp est ts
  | Prop { round; value } ->
    Format.fprintf fmt "PROP(%d, %a)" round Value.pp value
  | Ack { round } -> Format.fprintf fmt "ACK(%d)" round
  | Nack { round } -> Format.fprintf fmt "NACK(%d)" round
  | Decide { value } -> Format.fprintf fmt "DECIDE(%a)" Value.pp value

let equal_message a b =
  match a, b with
  | Est x, Est y ->
    x.round = y.round && Value.equal x.est y.est && x.ts = y.ts
  | Prop x, Prop y -> x.round = y.round && Value.equal x.value y.value
  | Ack x, Ack y -> x.round = y.round
  | Nack x, Nack y -> x.round = y.round
  | Decide x, Decide y -> Value.equal x.value y.value
  | (Est _ | Prop _ | Ack _ | Nack _ | Decide _), _ -> false

let decision st = Option.map fst st.decided
let decision_round st = Option.map snd st.decided
let round st = st.k
let estimate st = st.x
