(** Property checkers for failure-detector histories.

    Each checker validates one clause of a detector's specification
    (Sections 3 and 6.1 of the paper) against a finite sampled
    {!History.t} under a given failure pattern. "There is a time after
    which ..." clauses cannot be decided from a finite prefix alone;
    those checkers instead return the latest sampled time at which the
    stable property is still violated, and the composed detector
    checks accept iff that time is at most a caller-chosen bound
    [max_stab] (well before the end of the run).

    Checkers are deliberately independent from the oracle constructions
    in {!Oracle}: they re-derive everything from the raw samples, so
    they validate both generated histories and the emulated [output_p]
    histories produced by the paper's transformation algorithms. *)

type violation = { property : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val omega_settles :
  Sim.Failure_pattern.t -> History.t -> (int, violation) result
(** Omega: there is a time after which every correct process outputs
    the same correct leader. [Ok s] means the common correct leader
    exists and [s] is the latest sampled time at which some correct
    process output something else. [Error _] if samples are not
    [Leader] values, or the correct processes' final samples disagree,
    or the eventual leader is faulty. *)

val intersection :
  uniform:bool -> Sim.Failure_pattern.t -> History.t -> (unit, violation) result
(** Quorum intersection. With [~uniform:true] this is Sigma's clause:
    any two sampled quorums, at any processes and times, intersect.
    With [~uniform:false] it is Sigma-nu's clause: quantification is
    restricted to quorums sampled at correct processes. Also fails on
    an empty quorum (it does not intersect itself) or a non-[Quorum]
    sample in scope. *)

val completeness :
  Sim.Failure_pattern.t -> History.t -> (int, violation) result
(** Completeness (shared by the whole Sigma family): there is a time
    after which the quorums of correct processes contain only correct
    processes. [Ok s]: [s] is the latest sampled time at which a
    correct process output a quorum containing a faulty process.
    [Error _] on a non-[Quorum] sample at a correct process. *)

val self_inclusion : History.t -> (unit, violation) result
(** Sigma-nu+ self-inclusion: every process (correct or faulty) is a
    member of each of its sampled quorums. *)

val conditional_nonintersection :
  Sim.Failure_pattern.t -> History.t -> (unit, violation) result
(** Sigma-nu+ conditional nonintersection: a sampled quorum (at any
    process) that fails to intersect some quorum sampled at a correct
    process contains only faulty processes. *)

val eventually_strong :
  max_stab:int -> Sim.Failure_pattern.t -> History.t ->
  (unit, violation) result
(** The eventually-strong detector [<>S]: strong completeness (after
    [max_stab], every sample at a correct process suspects every
    already-crashed faulty process) and eventual weak accuracy (some
    correct process appears in no correct process's samples after
    [max_stab]). *)

val omega : max_stab:int -> Sim.Failure_pattern.t -> History.t ->
  (unit, violation) result
(** Full Omega check: {!omega_settles} with stabilization by
    [max_stab]. *)

val sigma : max_stab:int -> Sim.Failure_pattern.t -> History.t ->
  (unit, violation) result
(** Full Sigma check: uniform {!intersection} and {!completeness}
    stabilized by [max_stab]. *)

val sigma_nu : max_stab:int -> Sim.Failure_pattern.t -> History.t ->
  (unit, violation) result
(** Full Sigma-nu check: nonuniform {!intersection} and
    {!completeness} stabilized by [max_stab]. *)

val sigma_nu_plus : max_stab:int -> Sim.Failure_pattern.t -> History.t ->
  (unit, violation) result
(** Full Sigma-nu+ check: {!sigma_nu} plus {!self_inclusion} and
    {!conditional_nonintersection}. *)
