open Procset

type t = { n : int; by_pid : (int * Sim.Fd_value.t) list array }

let of_samples ~n samples =
  if n < 1 || n > Pset.max_size then invalid_arg "History.of_samples: bad n";
  let by_pid = Array.make n [] in
  List.iter
    (fun (p, t, v) ->
      if not (Pid.valid ~n p) then
        invalid_arg (Printf.sprintf "History.of_samples: bad pid %d" p);
      if t < 0 then invalid_arg "History.of_samples: negative time";
      by_pid.(p) <- (t, v) :: by_pid.(p))
    samples;
  let sort_and_check p l =
    let sorted =
      List.stable_sort (fun (t1, _) (t2, _) -> Int.compare t1 t2) (List.rev l)
    in
    let rec dedup = function
      | (t1, v1) :: ((t2, v2) :: _ as rest) when t1 = t2 ->
        if not (Sim.Fd_value.equal v1 v2) then
          invalid_arg
            (Printf.sprintf
               "History.of_samples: conflicting samples for p%d at time %d" p
               t1);
        dedup rest
      | s :: rest -> s :: dedup rest
      | [] -> []
    in
    dedup sorted
  in
  Array.iteri (fun p l -> by_pid.(p) <- sort_and_check p l) by_pid;
  { n; by_pid }

let of_fun ~n ~horizon h =
  let samples =
    List.concat_map
      (fun p -> List.init (horizon + 1) (fun t -> (p, t, h p t)))
      (Pid.all ~n)
  in
  of_samples ~n samples

let n h = h.n
let samples_of h p = h.by_pid.(p)

let all_samples h =
  List.concat_map
    (fun p -> List.map (fun (t, v) -> (p, t, v)) h.by_pid.(p))
    (Pid.all ~n:h.n)

let last_time h =
  Array.fold_left
    (fun acc l -> List.fold_left (fun acc (t, _) -> max acc t) acc l)
    0 h.by_pid

let map f h =
  { h with by_pid = Array.map (List.map (fun (t, v) -> (t, f v))) h.by_pid }

let project_fst h = map Sim.Fd_value.fst_exn h
let project_snd h = map Sim.Fd_value.snd_exn h

let pp fmt h =
  Format.fprintf fmt "history(n=%d" h.n;
  Array.iteri
    (fun p l -> Format.fprintf fmt ",@ p%d:%d samples" p (List.length l))
    h.by_pid;
  Format.fprintf fmt ")"
