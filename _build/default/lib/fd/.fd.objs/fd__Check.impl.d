lib/fd/check.ml: Format History List Pid Procset Pset Result Sim
