lib/fd/check.mli: Format History Sim
