lib/fd/history.ml: Array Format Int List Pid Printf Procset Pset Sim
