lib/fd/oracle.mli: History Procset Sim
