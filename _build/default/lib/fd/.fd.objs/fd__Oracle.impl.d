lib/fd/oracle.ml: History List Pid Printf Procset Pset Random Sim
