lib/fd/history.mli: Format Procset Sim
