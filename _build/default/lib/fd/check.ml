open Procset

type violation = { property : string; detail : string }

let pp_violation fmt v =
  Format.fprintf fmt "@[<hov 2>%s:@ %s@]" v.property v.detail

let err property fmt = Format.kasprintf (fun detail -> Error { property; detail }) fmt

let ( let* ) = Result.bind

(* Distinct quorums sampled at [p], each with the first time it was
   seen. Errors on a non-Quorum sample. *)
let quorums_of ~property h p =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | (t, Sim.Fd_value.Quorum q) :: rest ->
      let acc = if List.exists (fun (_, q') -> Pset.equal q q') acc then acc else (t, q) :: acc in
      collect acc rest
    | (t, v) :: _ ->
      err property "p%d output non-quorum value %a at time %d" p
        Sim.Fd_value.pp v t
  in
  collect [] (History.samples_of h p)

(* All (pid, first-seen-time, quorum) triples for pids in [scope]. *)
let quorums_in_scope ~property h scope =
  Pset.fold
    (fun p acc ->
      let* acc = acc in
      let* qs = quorums_of ~property h p in
      Ok (List.rev_append (List.map (fun (t, q) -> (p, t, q)) qs) acc))
    scope (Ok [])

let omega_settles pattern h =
  let property = "omega" in
  let correct = Sim.Failure_pattern.correct pattern in
  (* Eventual leader candidate: final sample of each correct process. *)
  let* leader =
    Pset.fold
      (fun p acc ->
        let* acc = acc in
        match List.rev (History.samples_of h p) with
        | [] -> err property "correct p%d has no samples" p
        | (t, Sim.Fd_value.Leader l) :: _ -> (
          match acc with
          | None -> Ok (Some l)
          | Some l' when Pid.equal l l' -> Ok (Some l)
          | Some l' ->
            err property
              "correct processes end trusting different leaders (%a vs %a, \
               p%d at time %d)"
              Pid.pp l' Pid.pp l p t)
        | (t, v) :: _ ->
          err property "p%d output non-leader value %a at time %d" p
            Sim.Fd_value.pp v t)
      correct (Ok None)
  in
  match leader with
  | None -> err property "no correct process"
  | Some l ->
    if not (Pset.mem l correct) then
      err property "eventual leader %a is faulty" Pid.pp l
    else
      (* Latest sampled time at which a correct process trusts <> l. *)
      Pset.fold
        (fun p acc ->
          let* stab = acc in
          List.fold_left
            (fun acc (t, v) ->
              let* stab = acc in
              match v with
              | Sim.Fd_value.Leader l' when not (Pid.equal l l') ->
                Ok (max stab t)
              | Sim.Fd_value.Leader _ -> Ok stab
              | v ->
                err property "p%d output non-leader value %a at time %d" p
                  Sim.Fd_value.pp v t)
            (Ok stab) (History.samples_of h p))
        correct (Ok 0)

let intersection ~uniform pattern h =
  let property = if uniform then "intersection" else "nonuniform-intersection" in
  let scope =
    if uniform then Pset.full ~n:(History.n h)
    else Sim.Failure_pattern.correct pattern
  in
  let* quorums = quorums_in_scope ~property h scope in
  let rec pairwise = function
    | [] -> Ok ()
    | (p, t, q) :: rest ->
      if Pset.is_empty q then
        err property "p%d output the empty quorum at time %d" p t
      else (
        match
          List.find_opt (fun (_, _, q') -> Pset.disjoint q q') rest
        with
        | Some (p', t', q') ->
          err property
            "disjoint quorums: %a at p%d (time %d) and %a at p%d (time %d)"
            Pset.pp q p t Pset.pp q' p' t'
        | None -> pairwise rest)
  in
  pairwise quorums

let completeness pattern h =
  let property = "completeness" in
  let correct = Sim.Failure_pattern.correct pattern in
  Pset.fold
    (fun p acc ->
      let* stab = acc in
      List.fold_left
        (fun acc (t, v) ->
          let* stab = acc in
          match v with
          | Sim.Fd_value.Quorum q ->
            if Pset.subset q correct then Ok stab else Ok (max stab t)
          | v ->
            err property "p%d output non-quorum value %a at time %d" p
              Sim.Fd_value.pp v t)
        (Ok stab) (History.samples_of h p))
    correct (Ok 0)

let self_inclusion h =
  let property = "self-inclusion" in
  let n = History.n h in
  ignore (n : int);
  let rec check = function
    | [] -> Ok ()
    | (p, t, Sim.Fd_value.Quorum q) :: rest ->
      if Pset.mem p q then check rest
      else
        err property "p%d output quorum %a not containing itself at time %d"
          p Pset.pp q t
    | (p, t, v) :: _ ->
      err property "p%d output non-quorum value %a at time %d" p
        Sim.Fd_value.pp v t
  in
  check (History.all_samples h)

let conditional_nonintersection pattern h =
  let property = "conditional-nonintersection" in
  let n = History.n h in
  let correct = Sim.Failure_pattern.correct pattern in
  let faulty = Sim.Failure_pattern.faulty pattern in
  let* correct_quorums = quorums_in_scope ~property h correct in
  let* all_quorums = quorums_in_scope ~property h (Pset.full ~n) in
  let offending =
    List.find_opt
      (fun (_, _, q') ->
        (not (Pset.subset q' faulty))
        && List.exists (fun (_, _, q) -> Pset.disjoint q q') correct_quorums)
      all_quorums
  in
  match offending with
  | None -> Ok ()
  | Some (p', t', q') ->
    let p, t, q =
      List.find (fun (_, _, q) -> Pset.disjoint q q') correct_quorums
    in
    err property
      "quorum %a at p%d (time %d) misses correct p%d's quorum %a (time %d) \
       yet contains a correct process"
      Pset.pp q' p' t' p Pset.pp q t

let check_stab ~property ~max_stab = function
  | Error v -> Error v
  | Ok stab ->
    if stab <= max_stab then Ok ()
    else
      err property
        "property not stable: last violation at time %d > allowed \
         stabilization bound %d"
        stab max_stab

let omega ~max_stab pattern h =
  check_stab ~property:"omega" ~max_stab (omega_settles pattern h)

let sigma ~max_stab pattern h =
  let* () = intersection ~uniform:true pattern h in
  check_stab ~property:"completeness" ~max_stab (completeness pattern h)

let sigma_nu ~max_stab pattern h =
  let* () = intersection ~uniform:false pattern h in
  check_stab ~property:"completeness" ~max_stab (completeness pattern h)

let sigma_nu_plus ~max_stab pattern h =
  let* () = sigma_nu ~max_stab pattern h in
  let* () = self_inclusion h in
  conditional_nonintersection pattern h

let eventually_strong ~max_stab pattern h =
  let property = "eventually-strong" in
  let correct = Sim.Failure_pattern.correct pattern in
  let late p = List.filter (fun (t, _) -> t > max_stab) (History.samples_of h p) in
  (* strong completeness: late samples at correct processes suspect
     every faulty process that has already crashed *)
  let rec completeness = function
    | [] -> Ok ()
    | p :: rest ->
      let bad =
        List.find_opt
          (fun (t, v) ->
            match v with
            | Sim.Fd_value.Suspects s ->
              not
                (Pset.subset (Sim.Failure_pattern.crashed_set pattern t) s)
            | _ -> true)
          (late p)
      in
      (match bad with
      | Some (t, Sim.Fd_value.Suspects s) ->
        err property
          "p%d's suspicions %a at time %d miss a crashed process" p Pset.pp
          s t
      | Some (t, v) ->
        err property "p%d output non-suspects value %a at time %d" p
          Sim.Fd_value.pp v t
      | None -> completeness rest)
  in
  let* () = completeness (Pset.elements correct) in
  (* eventual weak accuracy: some correct process is suspected by
     nobody correct after max_stab *)
  let trusted_somewhere =
    Pset.filter
      (fun c ->
        Pset.for_all
          (fun p ->
            List.for_all
              (fun (_, v) ->
                match v with
                | Sim.Fd_value.Suspects s -> not (Pset.mem c s)
                | _ -> false)
              (late p))
          correct)
      correct
  in
  if Pset.is_empty trusted_somewhere then
    err property
      "no correct process escapes suspicion after time %d (eventual weak \
       accuracy fails)"
      max_stab
  else Ok ()
