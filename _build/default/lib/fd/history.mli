(** Sampled failure-detector histories.

    A failure-detector history is a function [H : Pi x N -> R]
    (Section 2.3). Experiments observe histories at finitely many
    points: either by querying an oracle at each simulation tick, or by
    recording the [output_p] emulation variables of a transformation
    algorithm at each of its steps. This module stores such a finite
    sample set; the checkers in {!Check} validate detector properties
    over it. *)

type t
(** A finite collection of samples [(p, t, v)] meaning [H(p, t) = v]. *)

val of_samples : n:int -> (Procset.Pid.t * int * Sim.Fd_value.t) list -> t
(** [of_samples ~n samples] builds a history from explicit samples.
    Raises [Invalid_argument] on an out-of-range pid or a negative
    time. Duplicate [(p, t)] pairs are allowed (the variable was
    observed twice at the same tick) as long as they agree; otherwise
    raises [Invalid_argument]. *)

val of_fun :
  n:int -> horizon:int -> (Procset.Pid.t -> int -> Sim.Fd_value.t) -> t
(** [of_fun ~n ~horizon h] densely samples [h p t] for every process
    and every [t] in [0..horizon]. *)

val n : t -> int
(** Universe size. *)

val samples_of : t -> Procset.Pid.t -> (int * Sim.Fd_value.t) list
(** [samples_of h p] is the time-sorted list of samples of process
    [p]. *)

val all_samples : t -> (Procset.Pid.t * int * Sim.Fd_value.t) list
(** Every sample, sorted by process then time. *)

val last_time : t -> int
(** The largest sampled time ([0] if there are no samples). *)

val map : (Sim.Fd_value.t -> Sim.Fd_value.t) -> t -> t
(** [map f h] applies [f] to every sampled value. *)

val project_fst : t -> t
(** Keeps the first component of every [Pair] sample; raises
    [Invalid_argument] on a non-pair sample. Projects a history of a
    product detector [(D, D')] onto [D]. *)

val project_snd : t -> t
(** Second-component analogue of {!project_fst}. *)

val pp : Format.formatter -> t -> unit
(** Diagnostic rendering (sample counts per process). *)
