(** Process identifiers.

    The paper's system is a set of [n >= 2] processes
    [Pi = {0, 1, ..., n-1}] (Section 2.1). A process identifier is a
    plain non-negative integer below [n]; all modules in this
    repository share this representation. *)

type t = int
(** A process identifier in [0 .. n-1]. *)

val compare : t -> t -> int
(** Total order on process identifiers. *)

val equal : t -> t -> bool
(** Equality on process identifiers. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt p] prints [p] as ["p<i>"], e.g. ["p3"]. *)

val to_string : t -> string
(** [to_string p] is the same rendering as {!pp}. *)

val valid : n:int -> t -> bool
(** [valid ~n p] is [true] iff [0 <= p < n]. *)

val all : n:int -> t list
(** [all ~n] is the list [[0; 1; ...; n-1]]. *)
