type t = int

let compare = Int.compare
let equal = Int.equal
let pp fmt p = Format.fprintf fmt "p%d" p
let to_string p = Format.asprintf "%a" pp p
let valid ~n p = 0 <= p && p < n
let all ~n = List.init n (fun i -> i)
