(** Sets of processes, represented as bitsets.

    Quorums, failure-detector outputs, participant sets and
    correct/faulty sets are all subsets of [Pi = {0..n-1}]. With
    [n <= 62] a set fits in one OCaml [int], which makes the
    intersection tests at the heart of the paper (Sigma's quorum
    intersection, A_nuc's distrust computation) a single [land]. *)

type t
(** An immutable set of process identifiers. *)

val max_size : int
(** Maximum supported universe size (62 on 64-bit platforms). *)

val empty : t
(** The empty set. *)

val full : n:int -> t
(** [full ~n] is [Pi = {0, ..., n-1}]. Raises [Invalid_argument] if
    [n < 0] or [n > max_size]. *)

val singleton : Pid.t -> t
(** [singleton p] is [{p}]. Raises [Invalid_argument] if [p] is
    negative or at least {!max_size}. *)

val mem : Pid.t -> t -> bool
(** [mem p s] is [true] iff [p] is in [s]. *)

val add : Pid.t -> t -> t
(** [add p s] is [s ∪ {p}]. *)

val remove : Pid.t -> t -> t
(** [remove p s] is [s - {p}]. *)

val union : t -> t -> t
(** Set union. *)

val inter : t -> t -> t
(** Set intersection. *)

val diff : t -> t -> t
(** [diff s s'] is [s - s']. *)

val is_empty : t -> bool
(** [is_empty s] is [true] iff [s] has no element. *)

val intersects : t -> t -> bool
(** [intersects s s'] is [true] iff [s ∩ s' <> ∅] — the intersection
    test of the Sigma family of failure detectors. *)

val disjoint : t -> t -> bool
(** [disjoint s s'] is [not (intersects s s')]. *)

val subset : t -> t -> bool
(** [subset s s'] is [true] iff [s ⊆ s']. *)

val equal : t -> t -> bool
(** Set equality. *)

val compare : t -> t -> int
(** A total order on sets (used to store sets of quorums). *)

val cardinal : t -> int
(** Number of elements. *)

val elements : t -> Pid.t list
(** Elements in increasing order. *)

val of_list : Pid.t list -> t
(** [of_list ps] is the set of all elements of [ps]. *)

val fold : (Pid.t -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f s init] folds [f] over the elements of [s] in increasing
    order. *)

val iter : (Pid.t -> unit) -> t -> unit
(** [iter f s] applies [f] to each element in increasing order. *)

val for_all : (Pid.t -> bool) -> t -> bool
(** [for_all pred s] is [true] iff every element satisfies [pred]. *)

val exists : (Pid.t -> bool) -> t -> bool
(** [exists pred s] is [true] iff some element satisfies [pred]. *)

val filter : (Pid.t -> bool) -> t -> t
(** [filter pred s] keeps the elements of [s] satisfying [pred]. *)

val min_elt : t -> Pid.t
(** Smallest element; raises [Not_found] on the empty set. This is
    the [min(A)] used in the two-run construction of Theorem 7.1. *)

val is_majority : n:int -> t -> bool
(** [is_majority ~n s] is [true] iff [2 * cardinal s > n]. *)

val complement : n:int -> t -> t
(** [complement ~n s] is [Pi - s] for the universe of size [n]. *)

val random_subset : Random.State.t -> t -> t
(** [random_subset rng s] draws a uniformly random subset of [s]
    (possibly empty). *)

val random_nonempty_subset : Random.State.t -> t -> t
(** Like {!random_subset} but never empty. Raises [Invalid_argument]
    if [s] is empty. *)

val subsets : t -> t list
(** All subsets of [s] (2^|s| of them) — used by exhaustive tests for
    small universes. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{p0, p2, p5}]. *)

val to_string : t -> string
(** Same rendering as {!pp}. *)
