lib/procset/pset.mli: Format Pid Random
