lib/procset/pid.mli: Format
