lib/procset/qset.mli: Format Pset
