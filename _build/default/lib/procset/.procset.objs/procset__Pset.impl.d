lib/procset/pset.ml: Format Int List Pid Printf Random
