lib/procset/pid.ml: Format Int List
