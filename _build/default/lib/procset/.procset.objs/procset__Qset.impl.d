lib/procset/qset.ml: Format List Pset Set
