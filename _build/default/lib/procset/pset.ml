type t = int

let max_size = 62

let check_elt p =
  if p < 0 || p >= max_size then
    invalid_arg (Printf.sprintf "Pset: process id %d out of [0, %d)" p max_size)

let empty = 0

let full ~n =
  if n < 0 || n > max_size then
    invalid_arg (Printf.sprintf "Pset.full: n = %d out of [0, %d]" n max_size);
  if n = 0 then 0 else (1 lsl n) - 1

let singleton p =
  check_elt p;
  1 lsl p

let mem p s = p >= 0 && p < max_size && s land (1 lsl p) <> 0
let add p s = s lor singleton p
let remove p s = s land lnot (singleton p)
let union s s' = s lor s'
let inter s s' = s land s'
let diff s s' = s land lnot s'
let is_empty s = s = 0
let intersects s s' = s land s' <> 0
let disjoint s s' = s land s' = 0
let subset s s' = s land lnot s' = 0
let equal = Int.equal
let compare = Int.compare

let cardinal s =
  let rec count acc s = if s = 0 then acc else count (acc + 1) (s land (s - 1)) in
  count 0 s

let fold f s init =
  let rec loop p s acc =
    if s = 0 then acc
    else if s land 1 <> 0 then loop (p + 1) (s lsr 1) (f p acc)
    else loop (p + 1) (s lsr 1) acc
  in
  loop 0 s init

let elements s = List.rev (fold (fun p acc -> p :: acc) s [])
let of_list ps = List.fold_left (fun s p -> add p s) empty ps
let iter f s = fold (fun p () -> f p) s ()
let for_all pred s = fold (fun p acc -> acc && pred p) s true
let exists pred s = fold (fun p acc -> acc || pred p) s false
let filter pred s = fold (fun p acc -> if pred p then add p acc else acc) s empty

let min_elt s =
  if s = 0 then raise Not_found;
  (* lowest set bit *)
  let low = s land -s in
  let rec position i m = if m = 1 then i else position (i + 1) (m lsr 1) in
  position 0 low

let is_majority ~n s = 2 * cardinal s > n
let complement ~n s = diff (full ~n) s

let random_subset rng s =
  fold (fun p acc -> if Random.State.bool rng then add p acc else acc) s empty

let random_nonempty_subset rng s =
  if is_empty s then invalid_arg "Pset.random_nonempty_subset: empty universe";
  let sub = random_subset rng s in
  if not (is_empty sub) then sub
  else
    let elts = elements s in
    singleton (List.nth elts (Random.State.int rng (List.length elts)))

let subsets s =
  let elts = elements s in
  List.fold_left
    (fun acc p -> List.concat_map (fun sub -> [ sub; add p sub ]) acc)
    [ empty ] elts

let pp fmt s =
  let pp_sep fmt () = Format.fprintf fmt ",@ " in
  Format.fprintf fmt "{@[%a@]}"
    (Format.pp_print_list ~pp_sep Pid.pp)
    (elements s)

let to_string s = Format.asprintf "%a" pp s
