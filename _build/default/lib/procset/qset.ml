module S = Set.Make (struct
  type t = Pset.t

  let compare = Pset.compare
end)

type t = S.t

let empty = S.empty
let singleton = S.singleton
let mem = S.mem
let add = S.add
let union = S.union
let is_empty = S.is_empty
let cardinal = S.cardinal
let elements = S.elements
let of_list qs = List.fold_left (fun s q -> S.add q s) S.empty qs
let exists = S.exists
let for_all = S.for_all
let fold = S.fold
let equal = S.equal

let exists_disjoint_pair a b =
  S.exists (fun qa -> S.exists (fun qb -> Pset.disjoint qa qb) b) a

let pp fmt s =
  let pp_sep fmt () = Format.fprintf fmt ";@ " in
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_list ~pp_sep Pset.pp)
    (elements s)
