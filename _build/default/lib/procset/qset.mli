(** Sets of quorums.

    The quorum-history variables of [A_nuc] (Figures 4–5 of the paper)
    map each process [q] to the set of quorums known to have been
    output at [q] by its failure detector. This module provides the
    set-of-{!Pset.t} container for those variables. *)

type t
(** An immutable set of quorums (each quorum a {!Pset.t}). *)

val empty : t
(** No quorums. *)

val singleton : Pset.t -> t
(** One quorum. *)

val mem : Pset.t -> t -> bool
(** Membership test. *)

val add : Pset.t -> t -> t
(** [add q s] is [s ∪ {q}]. *)

val union : t -> t -> t
(** Union of two quorum sets — the [import_history] merge of Fig. 5. *)

val is_empty : t -> bool
(** [true] iff the set is empty. *)

val cardinal : t -> int
(** Number of distinct quorums. *)

val elements : t -> Pset.t list
(** Quorums in increasing {!Pset.compare} order. *)

val of_list : Pset.t list -> t
(** Build from a list. *)

val exists : (Pset.t -> bool) -> t -> bool
(** [exists pred s] is [true] iff some quorum satisfies [pred]. *)

val for_all : (Pset.t -> bool) -> t -> bool
(** [for_all pred s] is [true] iff every quorum satisfies [pred]. *)

val fold : (Pset.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the quorums. *)

val equal : t -> t -> bool
(** Set equality. *)

val exists_disjoint_pair : t -> t -> bool
(** [exists_disjoint_pair a b] is [true] iff there are [qa] in [a] and
    [qb] in [b] with [qa ∩ qb = ∅] — the test at the heart of the
    [distrusts] function (Fig. 5, lines 52–53). *)

val pp : Format.formatter -> t -> unit
(** Prints as a list of quorums. *)
