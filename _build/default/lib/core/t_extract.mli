(** [T_{D -> Sigma-nu}]: extracting Sigma-nu from any failure detector
    that can be used to solve nonuniform consensus (Fig. 2 of the
    paper, Theorem 5.4).

    Parametric in the consensus algorithm [A] that uses [D]: each
    process runs [A_DAG] sampling its [D] module, and periodically
    simulates schedules of [A] over its DAG of samples. When it finds
    a schedule from the all-zeros initial configuration [I_0] and one
    from the all-ones configuration [I_1] — both drawn from
    [G_p|u_p], with [u_p] the freshness barrier — in which it decides,
    it outputs the union of their participant sets as a Sigma-nu
    quorum. The proof of Lemma 5.3 is exactly the merging argument:
    two disjoint such quorums at correct processes would merge into a
    run of [A] violating nonuniform agreement.

    The same algorithm extracts full Sigma when [A] solves {e uniform}
    consensus (Theorem 5.8): experiment E2 checks the uniform
    intersection property on the very same emulated outputs.

    Schedules are enumerated canonically: the {!Dagsim.Dag.spine} of
    [G_p|u_p] is simulated with oldest-pending-message-first delivery
    (the admissible schedule of Lemma 4.10), and the first deciding
    prefix is used. *)

(** The simulated consensus algorithm: an automaton proposing a value
    and exposing its decision. *)
module type SIMULATED = sig
  include Sim.Automaton.S with type input = Consensus.Value.t

  val decision : state -> Consensus.Value.t option
end

module Make (A : SIMULATED) : sig
  include
    Sim.Automaton.S with type input = unit and type message = Dagsim.Dag.t

  val output : state -> Procset.Pset.t
  (** The current [Sigma-nu-output_p]. *)

  val dag : state -> Dagsim.Dag.t
  (** The current DAG of samples [G_p] (diagnostics). *)

  val extractions : state -> int
  (** How many times a new quorum has been output. *)

  val simulation_window : int ref
  (** Maximum spine length simulated per extraction (default 400). *)

  val extract_every : int ref
  (** Run the (expensive) simulation only on every [k]-th step
      (default 4); intermediate steps only grow the DAG. Soundness is
      unaffected; liveness needs extraction infinitely often, which
      any positive period provides. *)

  val prune_window : int ref
  (** Per-owner sample window kept in the DAG (default 320) — see
      {!Dagsim.Adag.Core.step}. Must comfortably exceed
      [simulation_window] divided by the process count. *)

  val weave_block : int ref
  (** Consecutive same-owner samples per rotation step of the
      simulated path (default 4) — see {!Dagsim.Dag.weave}. *)
end
