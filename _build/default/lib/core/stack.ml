type message = Gossip of Dagsim.Dag.t | Cons of Anuc.message

type state = { t : T_sigma_plus.state; c : Anuc.state }
type input = Consensus.Value.t

let name = "Stack(T_{Sigma-nu->Sigma-nu+} || A_nuc)"

let initial ~n ~self v =
  { t = T_sigma_plus.initial ~n ~self (); c = Anuc.initial ~n ~self v }

let split_fd = function
  | Sim.Fd_value.Pair ((Sim.Fd_value.Leader _ as l), (Sim.Fd_value.Quorum _ as q))
    -> (l, q)
  | v ->
    invalid_arg
      (Format.asprintf "Stack: failure detector value %a is not \
                        (leader, quorum)" Sim.Fd_value.pp v)

let reroute env payload = { env with Sim.Envelope.payload }

let step ~n ~self st received d =
  let leader, sigma_nu = split_fd d in
  let t_in, c_in =
    match received with
    | None -> (None, None)
    | Some env -> (
      match env.Sim.Envelope.payload with
      | Gossip g -> (Some (reroute env g), None)
      | Cons m -> (None, Some (reroute env m)))
  in
  (* One step of the transformation layer, sampling Sigma-nu. *)
  let t, t_sends = T_sigma_plus.step ~n ~self st.t t_in sigma_nu in
  (* One step of A_nuc, seeing Omega paired with the emulated
     Sigma-nu+ output. *)
  let anuc_fd =
    Sim.Fd_value.Pair (leader, Sim.Fd_value.Quorum (T_sigma_plus.output t))
  in
  let c, c_sends = Anuc.step ~n ~self st.c c_in anuc_fd in
  let sends =
    List.map (fun (dst, g) -> (dst, Gossip g)) t_sends
    @ List.map (fun (dst, m) -> (dst, Cons m)) c_sends
  in
  ({ t; c }, sends)

let pp_message fmt = function
  | Gossip g -> Format.fprintf fmt "gossip %a" Dagsim.Dag.pp g
  | Cons m -> Anuc.pp_message fmt m

let equal_message a b =
  match a, b with
  | Gossip g, Gossip g' -> T_sigma_plus.equal_message g g'
  | Cons m, Cons m' -> Anuc.equal_message m m'
  | (Gossip _ | Cons _), _ -> false

let decision st = Anuc.decision st.c
let decision_round st = Anuc.decision_round st.c
let round st = Anuc.round st.c
let emulated_quorum st = T_sigma_plus.output st.t
let anuc_state st = st.c
let transform_state st = st.t
