(** [T_{Sigma-nu -> Sigma-nu+}]: boosting Sigma-nu to Sigma-nu+
    (Fig. 3 of the paper, Theorem 6.7).

    Each process runs [A_DAG] sampling its Sigma-nu module, and
    maintains a freshness barrier [u_p] (its own most recent sample at
    the time of its last output). To produce a new quorum it looks for
    a path [g] in [G_p|u_p] such that

    - [trusted(g) ⊆ participants(g)]: every quorum sampled along the
      path is covered by the processes taking samples on it, and
    - [p ∈ participants(g)],

    and outputs [participants(g)]. The emulated variable starts at
    [Pi].

    Each step expects the failure-detector value [Quorum q] (the
    Sigma-nu module being sampled). The emulated Sigma-nu+ value is
    exposed by {!output}.

    The path search walks the {!Dagsim.Dag.spine} of [G_p|u_p] and
    scans its contiguous subpaths; [search_window] bounds the suffix
    of the spine considered (soundness is unaffected — any found path
    is a genuine path of [G_p|u_p]; liveness is preserved because the
    good path of Lemma 6.1 consists of fresh samples). *)

include Sim.Automaton.S with type input = unit and type message = Dagsim.Dag.t

val output : state -> Procset.Pset.t
(** The current [Sigma-nu+-output_p]. *)

val dag : state -> Dagsim.Dag.t
(** The current DAG of samples [G_p] (diagnostics). *)

val sample_count : state -> int
(** The sample counter [k_p]. *)

val extractions : state -> int
(** How many quorums this process has output so far. *)

val search_window : int ref
(** Maximum spine suffix length scanned per extraction (default 120). *)

val extract_every : int ref
(** Run the path search only on every [k]-th step (default 2);
    intermediate steps only grow the DAG. Any positive period keeps
    the extraction attempted infinitely often, which is all liveness
    needs. *)

val prune_window : int ref
(** Per-owner sample window kept in the DAG (default 160) — see
    {!Dagsim.Adag.Core.step}. Must comfortably exceed
    [search_window]. *)
