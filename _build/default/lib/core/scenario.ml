open Procset
module Mrq = Consensus.Mr.With_quorum
module R = Sim.Runner.Make (Mrq)

type outcome = {
  decisions : Consensus.Value.t option array;
  estimates : Consensus.Value.t array;
  agreement_violated : bool;
  history_valid : (unit, Fd.Check.violation) result;
  trace : string list;
}

let q = Pset.of_list

let is_lead round src e =
  e.Sim.Envelope.src = src
  &&
  match e.Sim.Envelope.payload with
  | Consensus.Mr.Lead l -> l.round = round
  | Consensus.Mr.Rep _ | Consensus.Mr.Prop _ -> false

let is_rep round src e =
  e.Sim.Envelope.src = src
  &&
  match e.Sim.Envelope.payload with
  | Consensus.Mr.Rep r -> r.round = round
  | Consensus.Mr.Lead _ | Consensus.Mr.Prop _ -> false

let is_prop round src e =
  e.Sim.Envelope.src = src
  &&
  match e.Sim.Envelope.payload with
  | Consensus.Mr.Prop p -> p.round = round
  | Consensus.Mr.Lead _ | Consensus.Mr.Rep _ -> false

(* The adversary shared by both contamination scripts: four processes,
   p2/p3 faulty late, the mutable (Omega, Sigma-nu) oracle arrays. *)
let adversary () =
  let pattern =
    Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 200); (3, 200) ]
  in
  let omega = [| 0; 0; 2; 2 |] in
  let sigma = [| q [ 0; 1 ]; q [ 0; 1 ]; q [ 2; 3 ]; q [ 2; 3 ] |] in
  let fd p _t =
    Sim.Fd_value.Pair
      (Sim.Fd_value.Leader omega.(p), Sim.Fd_value.Quorum sigma.(p))
  in
  (pattern, omega, sigma, fd)

let contamination_naive_mr () =
  let n = 4 in
  let pattern, omega, sigma, fd = adversary () in
  let proposals p = if p < 2 then 0 else 1 in
  let s = R.Session.create ~pattern ~fd ~inputs:proposals () in
  let step p pred = R.Session.step ~choice:(R.Matching pred) s p in
  let trace = ref [] in
  let note fmt = Format.kasprintf (fun m -> trace := m :: !trace) fmt in
  (* round 1 begins: everybody broadcasts LEAD(1) *)
  List.iter (fun p -> R.Session.step ~choice:R.Lambda s p) [ 0; 1; 2; 3 ];
  note "round 1: all processes broadcast LEAD; Omega shows p0 to {p0,p1} \
        and the faulty p2 to {p2,p3}";
  (* leader deliveries *)
  step 0 (is_lead 1 0);
  step 1 (is_lead 1 0);
  step 2 (is_lead 1 2);
  step 3 (is_lead 1 2);
  (* reports within each side *)
  List.iter
    (fun (p, src) -> step p (is_rep 1 src))
    [ (0, 0); (0, 1); (1, 0); (1, 1); (2, 2); (2, 3); (3, 2); (3, 3) ];
  note "round 1 reports: {p0,p1} report 0 within quorum {p0,p1}; \
        {p2,p3} report 1 within quorum {p2,p3}";
  (* the adversary points p1's quorum at the faulty side *)
  sigma.(1) <- q [ 1; 2 ];
  note "adversary: Sigma-nu at p1 now outputs {p1,p2} (still intersects \
        every correct quorum)";
  (* proposal deliveries: p0 decides 0 *)
  step 0 (is_prop 1 0);
  step 0 (is_prop 1 1);
  note "p0 collects unanimous proposals for 0 from {p0,p1} and DECIDES 0";
  step 2 (is_prop 1 2);
  step 2 (is_prop 1 3);
  step 3 (is_prop 1 2);
  step 3 (is_prop 1 3);
  (* p1 collects from {1,2}: mixed proposals, adopts 1 *)
  step 1 (is_prop 1 1);
  step 1 (is_prop 1 2);
  note "p1 collects proposals from {p1,p2}: 0 from itself, 1 from the \
        faulty p2 — it adopts estimate 1 (contamination)";
  (* round 2: omega settles on the correct p1; quorums heal *)
  Array.iteri (fun i _ -> omega.(i) <- 1) omega;
  sigma.(1) <- q [ 0; 1 ];
  note "round 2: Omega settles on the correct p1, whose LEAD carries the \
        contaminated estimate 1";
  step 0 (is_lead 2 1);
  step 1 (is_lead 2 1);
  List.iter
    (fun (p, src) -> step p (is_rep 2 src))
    [ (0, 0); (0, 1); (1, 0); (1, 1) ];
  step 1 (is_prop 2 0);
  step 1 (is_prop 2 1);
  note "p1 collects unanimous proposals for 1 from {p0,p1} and DECIDES 1";
  let run = R.Session.finish s in
  let decisions = Array.map Mrq.decision run.R.states in
  let estimates = Array.map Mrq.estimate run.R.states in
  let outcome_spec =
    Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
        decisions.(p))
  in
  let agreement_violated =
    Result.is_error
      (Consensus.Spec.check_agreement Consensus.Spec.Nonuniform outcome_spec)
  in
  if agreement_violated then
    note "VIOLATION: correct p0 decided 0 but correct p1 decided 1";
  (* validate the adversary's history against (Omega, Sigma-nu) *)
  let samples =
    Array.to_list run.R.steps
    |> List.map (fun st -> (st.R.pid, st.R.time, st.R.fd))
  in
  let h = Fd.History.of_samples ~n samples in
  let last = Fd.History.last_time h in
  let history_valid =
    Result.bind
      (Fd.Check.sigma_nu ~max_stab:last pattern (Fd.History.project_snd h))
      (fun () ->
        Fd.Check.omega ~max_stab:last pattern (Fd.History.project_fst h))
  in
  {
    decisions;
    estimates;
    agreement_violated;
    history_valid;
    trace = List.rev !trace;
  }

let a_lead round src e =
  e.Sim.Envelope.src = src
  &&
  match e.Sim.Envelope.payload with
  | Anuc.Lead l -> l.round = round
  | Anuc.Rep _ | Anuc.Prop _ | Anuc.Saw _ | Anuc.Ack _ -> false

let a_rep round src e =
  e.Sim.Envelope.src = src
  &&
  match e.Sim.Envelope.payload with
  | Anuc.Rep r -> r.round = round
  | Anuc.Lead _ | Anuc.Prop _ | Anuc.Saw _ | Anuc.Ack _ -> false

let a_prop round src e =
  e.Sim.Envelope.src = src
  &&
  match e.Sim.Envelope.payload with
  | Anuc.Prop p -> p.round = round
  | Anuc.Lead _ | Anuc.Rep _ | Anuc.Saw _ | Anuc.Ack _ -> false

(* The very same two-round script as [contamination_naive_mr], against
   an A_nuc variant. Against [Anuc.Without_both] it reproduces the
   violation; against variants with a safety mechanism enabled some
   scripted wait never completes (distrust blocks p1's round-1
   proposal collection; the awareness gate blocks p0's round-1
   decision), which the driver reports as [Error]. SAW/ACK traffic is
   left undelivered — the script never relies on acknowledgements. *)
module Contaminate (V : Anuc.S) = struct
  module Rv = Sim.Runner.Make (V)

  let run () =
    let n = 4 in
    let pattern, omega, sigma, fd = adversary () in
    let proposals p = if p < 2 then 0 else 1 in
    let s = Rv.Session.create ~pattern ~fd ~inputs:proposals () in
    let step p pred = Rv.Session.step ~choice:(Rv.Matching pred) s p in
    let trace = ref [] in
    let note fmt = Format.kasprintf (fun m -> trace := m :: !trace) fmt in
    try
      List.iter
        (fun p -> Rv.Session.step ~choice:Rv.Lambda s p)
        [ 0; 1; 2; 3 ];
      note "round 1: all processes broadcast LEAD (%s)" V.name;
      step 0 (a_lead 1 0);
      step 1 (a_lead 1 0);
      step 2 (a_lead 1 2);
      step 3 (a_lead 1 2);
      List.iter
        (fun (p, src) -> step p (a_rep 1 src))
        [ (0, 0); (0, 1); (1, 0); (1, 1); (2, 2); (2, 3); (3, 2); (3, 3) ];
      sigma.(1) <- q [ 1; 2 ];
      note "adversary: Sigma-nu at p1 now outputs {p1,p2}";
      step 0 (a_prop 1 0);
      step 0 (a_prop 1 1);
      note "p0 finishes round-1 proposal collection (decision: %s)"
        (Format.asprintf "%a" Consensus.Value.pp_opt
           (V.decision (Rv.Session.state s 0)));
      step 2 (a_prop 1 2);
      step 2 (a_prop 1 3);
      step 3 (a_prop 1 2);
      step 3 (a_prop 1 3);
      step 1 (a_prop 1 1);
      step 1 (a_prop 1 2);
      note "p1 receives the round-1 proposals of {p1,p2}; estimate now %a"
        Consensus.Value.pp (V.estimate (Rv.Session.state s 1));
      Array.iteri (fun i _ -> omega.(i) <- 1) omega;
      sigma.(1) <- q [ 0; 1 ];
      note "round 2: Omega settles on the correct p1";
      step 0 (a_lead 2 1);
      step 1 (a_lead 2 1);
      List.iter
        (fun (p, src) -> step p (a_rep 2 src))
        [ (0, 0); (0, 1); (1, 0); (1, 1) ];
      step 1 (a_prop 2 0);
      step 1 (a_prop 2 1);
      let run = Rv.Session.finish s in
      let decisions = Array.map V.decision run.Rv.states in
      let estimates = Array.map V.estimate run.Rv.states in
      let outcome_spec =
        Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
            decisions.(p))
      in
      let agreement_violated =
        Result.is_error
          (Consensus.Spec.check_agreement Consensus.Spec.Nonuniform
             outcome_spec)
      in
      if agreement_violated then
        note "VIOLATION: correct p0 decided 0 but correct p1 decided 1";
      let samples =
        Array.to_list run.Rv.steps
        |> List.map (fun st -> (st.Rv.pid, st.Rv.time, st.Rv.fd))
      in
      let h = Fd.History.of_samples ~n samples in
      let last = Fd.History.last_time h in
      let history_valid =
        Result.bind
          (Fd.Check.sigma_nu ~max_stab:last pattern
             (Fd.History.project_snd h))
          (fun () ->
            Fd.Check.omega ~max_stab:last pattern (Fd.History.project_fst h))
      in
      Ok
        {
          decisions;
          estimates;
          agreement_violated;
          history_valid;
          trace = List.rev !trace;
        }
    with Rv.Script_error reason ->
      Error
        (Printf.sprintf
           "the adversary's script became inapplicable against %s: %s"
           V.name reason)
end

module Contaminate_unsafe = Contaminate (Anuc.Without_both)

let contamination_anuc_unsafe () =
  match Contaminate_unsafe.run () with
  | Ok o -> o
  | Error reason ->
    failwith
      ("contamination_anuc_unsafe: the script must apply to the fully \
        ablated variant, but: " ^ reason)
