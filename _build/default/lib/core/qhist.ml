open Procset

module Pmap = Map.Make (Int)

type t = Qset.t Pmap.t

let empty = Pmap.empty
let get h r = Option.value ~default:Qset.empty (Pmap.find_opt r h)
let add h r q = Pmap.add r (Qset.add q (get h r)) h
let knows h r q = Qset.mem q (get h r)

let import h h' =
  Pmap.union (fun _ a b -> Some (Qset.union a b)) h h'

let considered_faulty ~self h =
  let own = get h self in
  Pmap.fold
    (fun q' quorums acc ->
      if Qset.exists_disjoint_pair quorums own then Pset.add q' acc else acc)
    h Pset.empty

let distrusts ~self ~n h q =
  let fp = considered_faulty ~self h in
  let hq = get h q in
  if Qset.is_empty hq then false
  else
    List.exists
      (fun r ->
        (not (Pset.mem r fp)) && Qset.exists_disjoint_pair hq (get h r))
      (Pid.all ~n)

let equal = Pmap.equal Qset.equal

let pp fmt h =
  Format.fprintf fmt "{@[";
  Pmap.iter
    (fun r qs ->
      if not (Qset.is_empty qs) then
        Format.fprintf fmt "p%d:%a;@ " r Qset.pp qs)
    h;
  Format.fprintf fmt "@]}"
