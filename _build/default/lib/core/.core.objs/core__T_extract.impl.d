lib/core/t_extract.ml: Array Consensus Dagsim List Option Procset Pset Sim
