lib/core/separation.ml: Format Int List Map Option Pid Printf Procset Pset Sim
