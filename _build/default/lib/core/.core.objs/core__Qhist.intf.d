lib/core/qhist.mli: Format Procset
