lib/core/scenario.ml: Anuc Array Consensus Fd Format List Printf Procset Pset Result Sim
