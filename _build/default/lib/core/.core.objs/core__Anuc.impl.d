lib/core/anuc.ml: Consensus Format Int List Map Option Pid Procset Pset Qhist Qset Sim
