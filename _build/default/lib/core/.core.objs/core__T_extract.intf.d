lib/core/t_extract.mli: Consensus Dagsim Procset Sim
