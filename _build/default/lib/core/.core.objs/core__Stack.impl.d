lib/core/stack.ml: Anuc Consensus Dagsim Format List Sim T_sigma_plus
