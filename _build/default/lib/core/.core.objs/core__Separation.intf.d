lib/core/separation.mli: Format Procset Sim
