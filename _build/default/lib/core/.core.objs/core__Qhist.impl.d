lib/core/qhist.ml: Format Int List Map Option Pid Procset Pset Qset
