lib/core/t_sigma_plus.ml: Array Dagsim Format Option Procset Pset Sim
