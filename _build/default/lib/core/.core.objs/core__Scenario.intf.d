lib/core/scenario.mli: Anuc Consensus Fd
