lib/core/anuc.mli: Consensus Procset Qhist Sim
