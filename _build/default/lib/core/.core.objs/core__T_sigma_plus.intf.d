lib/core/t_sigma_plus.mli: Dagsim Procset Sim
