lib/core/stack.mli: Anuc Consensus Dagsim Procset Sim T_sigma_plus
