(** The composed stack of Theorem 6.28: nonuniform consensus from
    [(Omega, Sigma-nu)].

    Runs [T_{Sigma-nu -> Sigma-nu+}] (Fig. 3) and [A_nuc] (Figs. 4–5)
    concurrently in one automaton: each step performs one step of each
    component. The transformation consumes the raw Sigma-nu component
    of the ambient failure detector; [A_nuc] consumes the ambient
    Omega component paired with the {e emulated} Sigma-nu+ output. A
    received message is dispatched to the component it belongs to (the
    other component receives the empty message in that step).

    Each step expects the failure-detector value
    [Pair (Leader l, Quorum q)] with the quorum component satisfying
    only Sigma-nu. *)

type message = Gossip of Dagsim.Dag.t | Cons of Anuc.message

include
  Sim.Automaton.S
    with type input = Consensus.Value.t
     and type message := message

val decision : state -> Consensus.Value.t option
(** The decided value, if any. *)

val decision_round : state -> int option
(** Round of the decision. *)

val round : state -> int
(** Current [A_nuc] round. *)

val emulated_quorum : state -> Procset.Pset.t
(** The Sigma-nu+ quorum currently emulated by the transformation
    layer — what [A_nuc] sees as its quorum module. *)

val anuc_state : state -> Anuc.state
(** The consensus component's state (diagnostics). *)

val transform_state : state -> T_sigma_plus.state
(** The transformation component's state (diagnostics). *)
