(** Theorem 7.1: [(Omega, Sigma-nu)] and [(Omega, Sigma)] are
    equivalent in [E_t] iff [t < n/2].

    {!Sigma_scratch} is the IF direction: a round-based algorithm that
    implements Sigma from scratch (no failure detector) whenever a
    majority of processes is correct — each round every process
    broadcasts a tagged message, waits for [n - t] of them, and
    outputs the senders.

    {!Attack} is the ONLY-IF direction, executable: the two-run
    indistinguishability construction. Partition [Pi] into [A] and [B]
    with [|A|, |B| <= t] (possible exactly when [t >= n/2]). In run
    [R], all of [B] crashes at time 0 and the candidate emulator is
    driven on [A] until some [a ∈ A] outputs a quorum [A' ⊆ A] at
    time [tau]. Run [R'] replays the same [A]-schedule — the processes
    of [A] cannot distinguish [R'] from [R] through time [tau] because
    [B]'s messages are delayed past it — but in [R'] it is [A] that
    crashes (at [tau + 1]) and [B] that is correct; completeness then
    forces some [b ∈ B] to output a quorum [B' ⊆ B]. [A'] and [B']
    are disjoint, so no emulator can achieve Sigma's intersection
    property in [E_t] with [t >= n/2]. Run against {!Sigma_scratch}
    this exhibits the concrete violation; run against
    [T_{Sigma-nu -> Sigma-nu+}] the same pair of quorums is {e legal}
    for Sigma-nu+ (the nonintersecting quorum belongs to processes
    faulty in [R']), which is precisely why nonuniform consensus
    survives where uniform consensus does not. *)

module Sigma_scratch : sig
  include Sim.Automaton.S with type input = int and type message = int

  (** [input] is the resilience parameter [t]: the process waits for
      [n - t] round-[k] messages each round. [message] payloads are
      round numbers. *)

  val output : state -> Procset.Pset.t
  (** The emulated Sigma quorum (initially [Pi]). *)

  val rounds_completed : state -> int
end

(** Candidate emulator attacked by the two-run construction. *)
module type EMULATOR = sig
  include Sim.Automaton.S

  val output : state -> Procset.Pset.t
end

module Attack (E : EMULATOR) : sig
  type outcome = {
    part_a : Procset.Pset.t;  (** the partition class that crashes in R' *)
    part_b : Procset.Pset.t;  (** the partition class that is correct in R' *)
    quorum_a : Procset.Pset.t;  (** [A']: output at some [a ∈ A] at [tau] *)
    time_a : int;  (** [tau] *)
    quorum_b : Procset.Pset.t;  (** [B']: output at some [b ∈ B] in R' *)
    disjoint : bool;  (** [A' ∩ B' = ∅] — the Sigma violation *)
  }

  val pp_outcome : Format.formatter -> outcome -> unit

  val run :
    n:int ->
    t:int ->
    inputs:(Procset.Pid.t -> E.input) ->
    ?max_steps:int ->
    unit ->
    (outcome, string) result
  (** Executes both runs against [E]. Requires [t >= (n + 1) / 2]
      (otherwise no valid partition exists and [Error] is returned —
      which is the IF direction's regime). [Error] is also returned if
      either run fails to produce the expected quorum within
      [max_steps] (default 2000) — e.g. a candidate that sacrifices
      liveness to preserve intersection. *)
end
