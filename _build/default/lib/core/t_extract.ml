open Procset
module Dag = Dagsim.Dag
module Node = Dagsim.Node
module Adag = Dagsim.Adag

module type SIMULATED = sig
  include Sim.Automaton.S with type input = Consensus.Value.t

  val decision : state -> Consensus.Value.t option
end

module Make (A : SIMULATED) = struct
  module PS = Dagsim.Path_sim.Make (A)

  type input = unit
  type message = Dag.t

  type state = {
    core : Adag.Core.state;
    u : Node.t option;  (** the freshness barrier [u_p] *)
    out : Pset.t;  (** [Sigma-nu-output_p] *)
    extraction_count : int;
    steps_since_extract : int;
  }

  let name = "T_{D->Sigma-nu}(" ^ A.name ^ ")"
  let simulation_window = ref 400
  let extract_every = ref 4
  let prune_window = ref 320
  let weave_block = ref 4

  let initial ~n ~self:_ () =
    {
      core = Adag.Core.init;
      u = None;
      out = Pset.full ~n;
      extraction_count = 0;
      steps_since_extract = 0;
    }

  (* Simulate A along the canonical schedule of the path, from the
     initial configuration where everybody proposes [v]; return the
     participants of the first prefix in which [self] decides. *)
  let deciding_participants ~n ~self path v =
    let r =
      PS.run ~n
        ~inputs:(fun _ -> v)
        ~path
        ~until:(fun states -> A.decision states.(self) <> None)
        ()
    in
    if r.PS.stopped then
      Some (PS.participants ~path ~prefix:r.PS.steps_executed)
    else None

  let try_extract ~n ~self st u_node =
    let spine = Dag.weave ~block:!weave_block st.core.Adag.Core.g ~from:u_node in
    let spine =
      (* Simulation cost is linear in the path length; keep a bounded
         prefix. The prefix of a path is a path, so soundness holds. *)
      List.filteri (fun i _ -> i < !simulation_window) spine
    in
    let path =
      List.map (fun nd -> (nd.Node.owner, nd.Node.value)) spine
    in
    match deciding_participants ~n ~self path 0 with
    | None -> None
    | Some participants0 -> (
      match deciding_participants ~n ~self path 1 with
      | None -> None
      | Some participants1 -> Some (Pset.union participants0 participants1))

  let step ~n ~self st received d =
    let incoming = Option.map (fun e -> e.Sim.Envelope.payload) received in
    (* Lines 5-12 of Fig. 2: one A_DAG iteration sampling D. *)
    let core =
      Adag.Core.step ~prune_window:!prune_window ~self st.core incoming d
    in
    (* Line 13: initialize the freshness barrier with the first sample;
       re-anchor it to the newest own sample if pruning dropped it. *)
    let u =
      match st.u with
      | Some u_node when Dag.mem core.Adag.Core.g u_node -> Some u_node
      | Some _ -> core.Adag.Core.last
      | None -> core.Adag.Core.last
    in
    let st = { st with core; u; steps_since_extract = st.steps_since_extract + 1 } in
    (* Lines 14-19: simulate schedules of A over G_p|u_p. *)
    let st =
      match u with
      | Some u_node when st.steps_since_extract >= !extract_every -> (
        let st = { st with steps_since_extract = 0 } in
        match try_extract ~n ~self st u_node with
        | Some quorum ->
          {
            st with
            out = quorum;
            u = st.core.Adag.Core.last;
            extraction_count = st.extraction_count + 1;
          }
        | None -> st)
      | Some _ | None -> st
    in
    let dst = Adag.Algorithm.gossip_target ~n ~self st.core.Adag.Core.k in
    (st, [ (dst, st.core.Adag.Core.g) ])

  let pp_message = Dag.pp
  let equal_message = Adag.Algorithm.equal_message
  let output st = st.out
  let dag st = st.core.Adag.Core.g
  let extractions st = st.extraction_count
end
