open Procset

module Sigma_scratch = struct
  type input = int
  type message = int

  module Imap = Map.Make (Int)

  type state = {
    t_param : int;
    k : int;
    out : Pset.t;
    arrivals : Pid.t list Imap.t;  (** per round, senders in arrival order *)
    started : bool;
  }

  let name = "Sigma-from-scratch"

  let initial ~n ~self:_ t_param =
    {
      t_param;
      k = 1;
      out = Pset.full ~n;
      arrivals = Imap.empty;
      started = false;
    }

  let broadcast ~n k = List.map (fun q -> (q, k)) (Pid.all ~n)

  let record st = function
    | None -> st
    | Some env ->
      let round = env.Sim.Envelope.payload in
      let src = env.Sim.Envelope.src in
      let senders =
        Option.value ~default:[] (Imap.find_opt round st.arrivals)
      in
      if List.mem src senders then st
      else
        { st with arrivals = Imap.add round (senders @ [ src ]) st.arrivals }

  let rec advance ~n st sends =
    let senders = Option.value ~default:[] (Imap.find_opt st.k st.arrivals) in
    if List.length senders >= n - st.t_param then begin
      let quorum =
        List.filteri (fun i _ -> i < n - st.t_param) senders |> Pset.of_list
      in
      let k = st.k + 1 in
      let st = { st with out = quorum; k } in
      advance ~n st (broadcast ~n k @ sends)
    end
    else (st, sends)

  let step ~n ~self:_ st received _d =
    let st = record st received in
    let st, sends =
      if st.started then (st, [])
      else ({ st with started = true }, broadcast ~n st.k)
    in
    let st, more = advance ~n st [] in
    (st, sends @ List.rev more)

  let pp_message fmt k = Format.fprintf fmt "round(%d)" k
  let equal_message = Int.equal
  let output st = st.out
  let rounds_completed st = st.k - 1
end

module type EMULATOR = sig
  include Sim.Automaton.S

  val output : state -> Pset.t
end

module Attack (E : EMULATOR) = struct
  module R = Sim.Runner.Make (E)

  type outcome = {
    part_a : Pset.t;
    part_b : Pset.t;
    quorum_a : Pset.t;
    time_a : int;
    quorum_b : Pset.t;
    disjoint : bool;
  }

  let pp_outcome fmt o =
    Format.fprintf fmt
      "@[<v>partition A=%a B=%a@,\
       R : %a output at some a in A at time %d@,\
       R': %a output at some b in B@,\
       quorums %s@]"
      Pset.pp o.part_a Pset.pp o.part_b Pset.pp o.quorum_a o.time_a Pset.pp
      o.quorum_b
      (if o.disjoint then "are DISJOINT (Sigma intersection violated)"
       else "intersect")

  (* The (Omega, Sigma-nu) history of both runs: each side of the
     partition trusts its own minimum and quorums its own side. Legal
     for Sigma-nu whichever side is correct. *)
  let partition_fd ~part_a ~part_b p _t =
    let side = if Pset.mem p part_a then part_a else part_b in
    Sim.Fd_value.Pair
      (Sim.Fd_value.Leader (Pset.min_elt side), Sim.Fd_value.Quorum side)

  (* Drive the processes of [side] round-robin until some member
     outputs a nonempty quorum inside [side]; return it and the time. *)
  let drive_until_local_quorum session side ~deadline =
    let members = Pset.elements side in
    let result = ref None in
    (try
       while !result = None do
         List.iter
           (fun p ->
             if !result = None then begin
               if R.Session.time session > deadline then raise Exit;
               R.Session.step session p;
               let out = E.output (R.Session.state session p) in
               if (not (Pset.is_empty out)) && Pset.subset out side then
                 result := Some (out, R.Session.time session - 1)
             end)
           members
       done
     with Exit -> ());
    !result

  let run ~n ~t ~inputs ?(max_steps = 2000) () =
    if t < (n + 1) / 2 then
      Error
        (Printf.sprintf
           "t = %d < ceil(n/2) = %d: Pi cannot be partitioned into two \
            classes of at most t processes (the regime where Sigma is \
            implementable from scratch)"
           t ((n + 1) / 2))
    else begin
      let size_a = (n + 1) / 2 in
      let part_a = Pset.of_list (List.init size_a (fun i -> i)) in
      let part_b = Pset.complement ~n part_a in
      let fd = partition_fd ~part_a ~part_b in
      (* Run R: B crashes at time 0; only A ever takes steps. *)
      let pattern_r =
        Sim.Failure_pattern.make ~n
          ~crashes:(List.map (fun b -> (b, 0)) (Pset.elements part_b))
      in
      let session_r = R.Session.create ~pattern:pattern_r ~fd ~inputs () in
      match
        drive_until_local_quorum session_r part_a ~deadline:max_steps
      with
      | None ->
        Error
          (Printf.sprintf
             "run R: no member of A output a quorum inside A within %d \
              steps (the candidate is not live in E_t)"
             max_steps)
      | Some (quorum_a, time_a) -> (
        (* Run R': same deterministic A-schedule, but now A crashes
           just after [time_a] and B is correct (B's steps and
           messages are simply delayed past [time_a]). *)
        let pattern_r' =
          Sim.Failure_pattern.make ~n
            ~crashes:(List.map (fun a -> (a, time_a + 1)) (Pset.elements part_a))
        in
        let session_r' = R.Session.create ~pattern:pattern_r' ~fd ~inputs () in
        match
          drive_until_local_quorum session_r' part_a ~deadline:time_a
        with
        | None ->
          Error "run R': replay diverged from R (no quorum inside A)"
        | Some (quorum_a', time_a') ->
          if not (Pset.equal quorum_a quorum_a' && time_a = time_a') then
            Error "run R': replay diverged from R (different quorum or time)"
          else (
            match
              drive_until_local_quorum session_r' part_b
                ~deadline:(time_a + max_steps)
            with
            | None ->
              Error
                (Printf.sprintf
                   "run R': no member of B output a quorum inside B within \
                    %d steps (completeness violated instead)"
                   max_steps)
            | Some (quorum_b, _) ->
              Ok
                {
                  part_a;
                  part_b;
                  quorum_a;
                  time_a;
                  quorum_b;
                  disjoint = Pset.disjoint quorum_a quorum_b;
                }))
    end
end
