(** The contamination scenario of Section 6.3, executable.

    Four processes; [p0, p1] are correct and propose 0; [p2, p3] are
    faulty (they crash only after the interesting prefix) and propose
    1. The adversary drives the {e naive} substitution of Sigma-nu
    quorums into the Mostéfaoui–Raynal algorithm
    ({!Consensus.Mr.With_quorum}):

    + round 1: Omega shows [p0] to the correct side and the faulty
      [p2] to the faulty side; each side's quorums stay on its side,
      so [p0] receives unanimous proposals for 0 from [{p0, p1}] and
      {e decides 0} — while the adversary points [p1]'s
      proposal-collection quorum at [{p1, p2}] (legal for Sigma-nu:
      it still intersects every correct quorum at [p1]), so [p1] sees
      mixed proposals and {e adopts the faulty estimate 1};
    + round 2: Omega settles on the correct [p1], whose LEAD message
      spreads the contaminated estimate; the correct side now reports
      and proposes 1 unanimously, and [p1] {e decides 1}.

    Two correct processes decide differently — a nonuniform-agreement
    violation — under a failure-detector history that provably
    satisfies (Omega, Sigma-nu) (the run re-checks it). This is the
    behaviour [A_nuc]'s distrust and quorum-awareness machinery
    exists to prevent. *)

type outcome = {
  decisions : Consensus.Value.t option array;
      (** final decision of each of the four processes *)
  estimates : Consensus.Value.t array;  (** final estimates *)
  agreement_violated : bool;
      (** nonuniform agreement violated among correct processes *)
  history_valid : (unit, Fd.Check.violation) result;
      (** the adversary's sampled history checked against
          (Omega, Sigma-nu) *)
  trace : string list;  (** human-readable narration of the key events *)
}

val contamination_naive_mr : unit -> outcome
(** Runs the scripted scenario against the naive algorithm. The run is
    fully deterministic. *)

module Contaminate (V : Anuc.S) : sig
  val run : unit -> (outcome, string) result
  (** Drives the Section 6.3 script against any [A_nuc] variant.
      [Error reason] means some scripted wait never completed — which
      is precisely what happens when a safety mechanism blocks the
      adversary (the ablation experiment reports this as the variant
      resisting the script). *)
end

val contamination_anuc_unsafe : unit -> outcome
(** The same adversary driven against {!Anuc.Without_both} — the
    [A_nuc] skeleton with both safety mechanisms disabled. It falls to
    the identical two-round script, demonstrating that the quorum
    histories alone (which it still gossips) do not help: the
    {e distrust} checks and the {e quorum-awareness} gate are what
    make Figs. 4–5 safe. The full [A_nuc] under this adversary family
    is exercised (and survives) in experiment E6. *)
