(** Quorum histories — the [H_p] variables of [A_nuc] (Figs. 4–5).

    [H_p] maps each process [r] to the set of quorums that [p] knows
    were output at [r] by its failure detector. Histories travel
    inside LEAD and PROP messages and are merged pointwise by
    [import_history] (Fig. 5, lines 44–46). *)

type t
(** An immutable quorum history. *)

val empty : t
(** [H_p[q] = ∅] for all [q] — the initialize clause. *)

val get : t -> Procset.Pid.t -> Procset.Qset.t
(** [get h r] is [H_p[r]]. *)

val add : t -> Procset.Pid.t -> Procset.Pset.t -> t
(** [add h r q] is [h] with [H_p[r] := H_p[r] ∪ {q}]. *)

val knows : t -> Procset.Pid.t -> Procset.Pset.t -> bool
(** [knows h r q] is [true] iff [q ∈ H_p[r]]. *)

val import : t -> t -> t
(** [import h h'] is the pointwise union — [import_history]. *)

val considered_faulty : self:Procset.Pid.t -> t -> Procset.Pset.t
(** The set [F_p] computed on Fig. 5, line 52: processes [q'] such
    that some quorum in [H_p[q']] is disjoint from some quorum in
    [H_p[self]]. *)

val distrusts : self:Procset.Pid.t -> n:int -> t -> Procset.Pid.t -> bool
(** The [distrusts] function (Fig. 5, lines 51–53): [p] distrusts [q]
    iff there is a process [r] outside [F_p] such that [H_p[q]] and
    [H_p[r]] contain nonintersecting quorums. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
