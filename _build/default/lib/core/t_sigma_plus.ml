open Procset
module Dag = Dagsim.Dag
module Node = Dagsim.Node
module Adag = Dagsim.Adag

type input = unit
type message = Dag.t

type state = {
  core : Adag.Core.state;
  u : Node.t option;  (** the freshness barrier [u_p] *)
  out : Pset.t;  (** [Sigma-nu+-output_p] *)
  steps_since_extract : int;
  extraction_count : int;  (** how many quorums have been output *)
}

let name = "T_{Sigma-nu->Sigma-nu+}"
let search_window = ref 120
let extract_every = ref 2
let prune_window = ref 160

let initial ~n ~self:_ () =
  {
    core = Adag.Core.init;
    u = None;
    out = Pset.full ~n;
    steps_since_extract = 0;
    extraction_count = 0;
  }

let quorum_of_node v =
  match v.Node.value with
  | Sim.Fd_value.Quorum q -> q
  | d ->
    invalid_arg
      (Format.asprintf "%s: sampled non-quorum value %a" "T_sigma_plus"
         Sim.Fd_value.pp d)

(* Find a contiguous subpath [g] of [spine] with
   [trusted(g) ⊆ participants(g)] and [self ∈ participants(g)];
   returns [participants(g)]. *)
let find_good_path ~self spine =
  let arr = Array.of_list spine in
  let len = Array.length arr in
  let first = max 0 (len - !search_window) in
  let rec from_start i =
    if i >= len then None
    else begin
      let rec extend j participants trusted =
        if j >= len then None
        else begin
          let v = arr.(j) in
          let participants = Pset.add v.Node.owner participants in
          let trusted = Pset.union (quorum_of_node v) trusted in
          if Pset.mem self participants && Pset.subset trusted participants
          then Some participants
          else extend (j + 1) participants trusted
        end
      in
      match extend i Pset.empty Pset.empty with
      | Some participants -> Some participants
      | None -> from_start (i + 1)
    end
  in
  from_start first

(* The module being sampled is Sigma-nu; accept it bare or as the
   second component of a product detector. *)
let sigma_nu_component = function
  | Sim.Fd_value.Quorum _ as q -> q
  | Sim.Fd_value.Pair (_, (Sim.Fd_value.Quorum _ as q)) -> q
  | v ->
    invalid_arg
      (Format.asprintf "%s: detector value %a has no Sigma-nu component"
         "T_sigma_plus" Sim.Fd_value.pp v)

let step ~n ~self st received d =
  let d = sigma_nu_component d in
  let incoming = Option.map (fun e -> e.Sim.Envelope.payload) received in
  (* Lines 6-12 of Fig. 3: one A_DAG iteration sampling Sigma-nu. *)
  let core =
    Adag.Core.step ~prune_window:!prune_window ~self st.core incoming d
  in
  (* Line 13: initialize the freshness barrier with the first sample;
     re-anchor it to the newest own sample if pruning dropped it. *)
  let u =
    match st.u with
    | Some u_node when Dag.mem core.Adag.Core.g u_node -> Some u_node
    | Some _ -> core.Adag.Core.last
    | None -> core.Adag.Core.last
  in
  (* Lines 14-17: look for a good path in G_p|u_p. *)
  let st = { st with steps_since_extract = st.steps_since_extract + 1 } in
  let st =
    match u with
    | Some u_node when st.steps_since_extract >= !extract_every -> (
      let st = { st with steps_since_extract = 0 } in
      let spine = Dag.weave core.Adag.Core.g ~from:u_node in
      match find_good_path ~self spine with
      | Some participants ->
        {
          st with
          core;
          out = participants;
          u = core.Adag.Core.last;
          extraction_count = st.extraction_count + 1;
        }
      | None -> { st with core; u })
    | Some _ | None -> { st with core; u }
  in
  let dst = Adag.Algorithm.gossip_target ~n ~self st.core.Adag.Core.k in
  (st, [ (dst, st.core.Adag.Core.g) ])

let pp_message = Dag.pp
let equal_message = Adag.Algorithm.equal_message
let output st = st.out
let dag st = st.core.Adag.Core.g
let sample_count st = st.core.Adag.Core.k
let extractions st = st.extraction_count
