open Procset

type t = { n : int; crash : int option array }

let make ~n ~crashes =
  if n < 2 then invalid_arg "Failure_pattern.make: need n >= 2";
  if n > Pset.max_size then invalid_arg "Failure_pattern.make: n too large";
  let crash = Array.make n None in
  List.iter
    (fun (p, tc) ->
      if not (Pid.valid ~n p) then
        invalid_arg (Printf.sprintf "Failure_pattern.make: bad pid %d" p);
      if tc < 0 then invalid_arg "Failure_pattern.make: negative crash time";
      if crash.(p) <> None then
        invalid_arg (Printf.sprintf "Failure_pattern.make: duplicate pid %d" p);
      crash.(p) <- Some tc)
    crashes;
  { n; crash }

let failure_free ~n = make ~n ~crashes:[]
let n f = f.n
let crash_time f p = f.crash.(p)

let crashed f p t =
  match f.crash.(p) with None -> false | Some tc -> t >= tc

let crashed_set f t =
  Array.to_seq f.crash
  |> Seq.fold_lefti
       (fun acc p -> function
         | Some tc when t >= tc -> Pset.add p acc
         | Some _ | None -> acc)
       Pset.empty

let faulty f =
  Array.to_seq f.crash
  |> Seq.fold_lefti
       (fun acc p -> function Some _ -> Pset.add p acc | None -> acc)
       Pset.empty

let correct f = Pset.complement ~n:f.n (faulty f)
let num_faulty f = Pset.cardinal (faulty f)

let last_crash_time f =
  Array.fold_left
    (fun acc -> function Some tc -> max acc tc | None -> acc)
    0 f.crash

let equal a b = a.n = b.n && a.crash = b.crash

let pp fmt f =
  let crashes =
    List.filter_map
      (fun p -> Option.map (fun tc -> (p, tc)) f.crash.(p))
      (Pid.all ~n:f.n)
  in
  let pp_crash fmt (p, tc) = Format.fprintf fmt "%a@@%d" Pid.pp p tc in
  let pp_sep fmt () = Format.fprintf fmt ",@ " in
  Format.fprintf fmt "n=%d crashes:[@[%a@]]" f.n
    (Format.pp_print_list ~pp_sep pp_crash)
    crashes
