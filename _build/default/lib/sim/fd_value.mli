(** Failure-detector output values.

    The model (Section 2.3 of the paper) lets a failure detector have
    an arbitrary range [R]. This repository uses one closed universe
    of values so that the DAG-of-samples machinery (Section 4) can
    store and replay samples of {e any} detector without knowing which
    detector produced them:

    - [Leader p] — range of Omega (a single trusted process);
    - [Quorum q] — range of the Sigma family (a set of processes);
    - [Suspects s] — range of the suspicion-list detectors of
      Chandra–Toueg (P, eventually-P, eventually-S, ...);
    - [Pair (d, d')] — the product detector [(D, D')] of Section 2.3;
    - [Unit] — the trivial detector, for algorithms that use none. *)

type t =
  | Unit
  | Leader of Procset.Pid.t
  | Quorum of Procset.Pset.t
  | Suspects of Procset.Pset.t
  | Pair of t * t

val equal : t -> t -> bool
(** Structural equality. *)

val compare : t -> t -> int
(** A total order (used to deduplicate DAG samples). *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering. *)

val leader_exn : t -> Procset.Pid.t
(** Projects [Leader p]; raises [Invalid_argument] otherwise. *)

val quorum_exn : t -> Procset.Pset.t
(** Projects [Quorum q]; raises [Invalid_argument] otherwise. *)

val suspects_exn : t -> Procset.Pset.t
(** Projects [Suspects s]; raises [Invalid_argument] otherwise. *)

val pair_exn : t -> t * t
(** Projects [Pair (d, d')]; raises [Invalid_argument] otherwise. *)

val fst_exn : t -> t
(** First component of a [Pair]; raises [Invalid_argument] otherwise. *)

val snd_exn : t -> t
(** Second component of a [Pair]; raises [Invalid_argument] otherwise. *)
