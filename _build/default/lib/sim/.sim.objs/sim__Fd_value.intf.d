lib/sim/fd_value.mli: Format Procset
