lib/sim/envelope.mli: Format Procset
