lib/sim/env.mli: Failure_pattern Format Random
