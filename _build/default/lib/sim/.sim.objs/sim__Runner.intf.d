lib/sim/runner.mli: Automaton Envelope Failure_pattern Fd_value Procset
