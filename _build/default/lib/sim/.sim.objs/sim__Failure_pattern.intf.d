lib/sim/failure_pattern.mli: Format Procset
