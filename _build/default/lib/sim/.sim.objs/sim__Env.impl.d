lib/sim/env.ml: Array Failure_pattern Format List Random
