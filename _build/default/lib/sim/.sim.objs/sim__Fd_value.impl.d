lib/sim/fd_value.ml: Format Int Procset
