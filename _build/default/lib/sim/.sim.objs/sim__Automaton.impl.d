lib/sim/automaton.ml: Envelope Fd_value Format Procset
