lib/sim/runner.ml: Array Automaton Envelope Failure_pattern Fd_value Format List Pid Printf Procset Random Result
