lib/sim/envelope.ml: Format Int Procset
