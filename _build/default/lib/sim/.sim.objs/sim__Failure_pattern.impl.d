lib/sim/failure_pattern.ml: Array Format List Option Pid Printf Procset Pset Seq
