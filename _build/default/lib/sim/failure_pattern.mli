(** Failure patterns (Section 2.2 of the paper).

    A failure pattern is a function [F : N -> 2^Pi] with [F(t)] the set
    of processes that have crashed through time [t], monotone in [t].
    Since crashes are permanent, a pattern is fully described by the
    crash time of each faulty process, which is the representation used
    here. *)

type t
(** An immutable failure pattern over a universe of [n] processes. *)

val make : n:int -> crashes:(Procset.Pid.t * int) list -> t
(** [make ~n ~crashes] is the pattern in which each [(p, tc)] of
    [crashes] has process [p] crash at time [tc] (that is, [p ∈ F(t)]
    iff [t >= tc]) and all other processes are correct.

    Raises [Invalid_argument] if [n < 2], some pid is out of range or
    duplicated, or some crash time is negative. *)

val failure_free : n:int -> t
(** [failure_free ~n] is the pattern with no crashes. *)

val n : t -> int
(** Universe size. *)

val crash_time : t -> Procset.Pid.t -> int option
(** [crash_time f p] is [Some tc] if [p] crashes at time [tc], [None]
    if [p] is correct. *)

val crashed : t -> Procset.Pid.t -> int -> bool
(** [crashed f p t] is [true] iff [p ∈ F(t)]. *)

val crashed_set : t -> int -> Procset.Pset.t
(** [crashed_set f t] is [F(t)]. *)

val faulty : t -> Procset.Pset.t
(** [faulty f] is the set of processes that crash at some time. *)

val correct : t -> Procset.Pset.t
(** [correct f] is [Pi - faulty f]. *)

val num_faulty : t -> int
(** [num_faulty f] is [|faulty f|]. *)

val last_crash_time : t -> int
(** Time by which all faulty processes have crashed ([0] if none). *)

val equal : t -> t -> bool
(** Structural equality of patterns. *)

val pp : Format.formatter -> t -> unit
(** Prints as [n=5 crashes:[p1@3, p4@10]]. *)
