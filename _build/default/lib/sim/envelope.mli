(** Message envelopes.

    The message buffer [M] of the model (Section 2.1) contains triples
    [(p, data, q)]: [p] sent [data] to [q], not yet received. The paper
    assumes every message is unique ("this can be guaranteed by having
    the sender include a counter with each message"); the [seq] field
    is exactly that counter, assigned per sender in send order. *)

type 'a t = {
  src : Procset.Pid.t;  (** sender *)
  dst : Procset.Pid.t;  (** destination *)
  seq : int;  (** per-sender send counter, makes the message unique *)
  sent_at : int;  (** global time of the sending step *)
  payload : 'a;  (** the [data] field of the model's triple *)
}

val same_identity : 'a t -> 'a t -> bool
(** [same_identity e e'] is [true] iff [e] and [e'] denote the same
    unique message: equal [src], [dst] and [seq]. *)

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
(** [pp pp_payload fmt e] prints the envelope with its payload. *)
