(** Environments (Section 2.2 of the paper).

    An environment is a set of failure patterns. The paper's results
    hold in {e any} environment; its Section 7 compares detectors in
    the canonical environments [E_t = { F : |faulty F| <= t }]. This
    module represents exactly those [E_t] environments, which suffice
    to drive every experiment: a result validated for all [t <= n-1]
    is validated for arbitrary numbers of failures. *)

type t
(** The environment [E_t] over [n] processes. *)

val make : n:int -> max_faulty:int -> t
(** [make ~n ~max_faulty] is [E_t] with [t = max_faulty]. Raises
    [Invalid_argument] unless [2 <= n] and [0 <= max_faulty < n]
    (at least one correct process, as failure detectors such as Omega
    require). *)

val n : t -> int
(** Universe size. *)

val max_faulty : t -> int
(** The bound [t]. *)

val mem : t -> Failure_pattern.t -> bool
(** [mem e f] is [true] iff [f] is a pattern of [e]'s universe with at
    most [max_faulty e] faulty processes. *)

val majority_correct : t -> bool
(** [true] iff every pattern of the environment has a correct
    majority, i.e. [max_faulty < n/2] — the regime where Theorem 7.1
    makes [(Omega, Sigma-nu)] and [(Omega, Sigma)] equivalent. *)

val random_pattern :
  Random.State.t -> ?crash_window:int -> t -> Failure_pattern.t
(** [random_pattern rng ~crash_window e] draws a pattern of [e]: a
    uniformly random number of faulty processes in [0..max_faulty], a
    uniformly random faulty set of that size, and independent crash
    times uniform in [0..crash_window-1] (default window 200). *)

val worst_pattern : ?crash_window:int -> t -> Failure_pattern.t
(** [worst_pattern e] crashes exactly [max_faulty e] processes — the
    highest pids — at staggered times inside the window. *)

val pp : Format.formatter -> t -> unit
(** Prints as [E_t(n=..)]. *)
