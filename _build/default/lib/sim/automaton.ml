(** Algorithm automata (Section 2.4 of the paper).

    An algorithm is a collection of [n] deterministic automata, one per
    process. In each step a process atomically: receives one message
    (or the empty message), queries its failure detector, changes
    state, and sends messages. The runner ({!Runner.Make}) drives any
    module of this signature under a failure pattern and a failure
    detector history. *)

module type S = sig
  type input
  (** Per-process initial input (e.g. the proposed value for
      consensus; [unit] for failure-detector transformations). *)

  type state
  (** Local state of one process. *)

  type message
  (** The algorithm's message payload type. *)

  val name : string
  (** Algorithm name, used in logs and error messages. *)

  val initial : n:int -> self:Procset.Pid.t -> input -> state
  (** [initial ~n ~self input] is the initial state of process [self]
      in a system of [n] processes. *)

  val step :
    n:int ->
    self:Procset.Pid.t ->
    state ->
    message Envelope.t option ->
    Fd_value.t ->
    state * (Procset.Pid.t * message) list
  (** [step ~n ~self st received d] performs one atomic step: [received]
      is the message delivered in this step ([None] is the empty
      message lambda), [d] is the value obtained from the local failure
      detector module. Returns the new state and the messages to send,
      as [(destination, payload)] pairs. Must be deterministic. *)

  val pp_message : Format.formatter -> message -> unit
  (** Renders a message payload (diagnostics). *)

  val equal_message : message -> message -> bool
  (** Payload equality, used by trace replay to cross-check message
      identity. *)
end
