type t =
  | Unit
  | Leader of Procset.Pid.t
  | Quorum of Procset.Pset.t
  | Suspects of Procset.Pset.t
  | Pair of t * t

let rec equal a b =
  match a, b with
  | Unit, Unit -> true
  | Leader p, Leader q -> Procset.Pid.equal p q
  | Quorum s, Quorum s' -> Procset.Pset.equal s s'
  | Suspects s, Suspects s' -> Procset.Pset.equal s s'
  | Pair (a1, a2), Pair (b1, b2) -> equal a1 b1 && equal a2 b2
  | (Unit | Leader _ | Quorum _ | Suspects _ | Pair _), _ -> false

let tag = function
  | Unit -> 0
  | Leader _ -> 1
  | Quorum _ -> 2
  | Suspects _ -> 3
  | Pair _ -> 4

let rec compare a b =
  match a, b with
  | Unit, Unit -> 0
  | Leader p, Leader q -> Procset.Pid.compare p q
  | Quorum s, Quorum s' -> Procset.Pset.compare s s'
  | Suspects s, Suspects s' -> Procset.Pset.compare s s'
  | Pair (a1, a2), Pair (b1, b2) ->
    let c = compare a1 b1 in
    if c <> 0 then c else compare a2 b2
  | _ -> Int.compare (tag a) (tag b)

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Leader p -> Format.fprintf fmt "leader=%a" Procset.Pid.pp p
  | Quorum s -> Format.fprintf fmt "quorum=%a" Procset.Pset.pp s
  | Suspects s -> Format.fprintf fmt "suspects=%a" Procset.Pset.pp s
  | Pair (a, b) -> Format.fprintf fmt "(%a, %a)" pp a pp b

let leader_exn = function
  | Leader p -> p
  | v -> invalid_arg (Format.asprintf "Fd_value.leader_exn: %a" pp v)

let quorum_exn = function
  | Quorum s -> s
  | v -> invalid_arg (Format.asprintf "Fd_value.quorum_exn: %a" pp v)

let suspects_exn = function
  | Suspects s -> s
  | v -> invalid_arg (Format.asprintf "Fd_value.suspects_exn: %a" pp v)

let pair_exn = function
  | Pair (a, b) -> a, b
  | v -> invalid_arg (Format.asprintf "Fd_value.pair_exn: %a" pp v)

let fst_exn v = fst (pair_exn v)
let snd_exn v = snd (pair_exn v)
