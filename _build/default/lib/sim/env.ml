type t = { n : int; max_faulty : int }

let make ~n ~max_faulty =
  if n < 2 then invalid_arg "Env.make: need n >= 2";
  if max_faulty < 0 || max_faulty >= n then
    invalid_arg "Env.make: need 0 <= max_faulty < n";
  { n; max_faulty }

let n e = e.n
let max_faulty e = e.max_faulty

let mem e f =
  Failure_pattern.n f = e.n && Failure_pattern.num_faulty f <= e.max_faulty

let majority_correct e = 2 * e.max_faulty < e.n

(* Uniformly random size-[k] subset of [0..n-1] via partial shuffle. *)
let random_pids rng ~n ~k =
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Random.State.int rng (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 k)

let random_pattern rng ?(crash_window = 200) e =
  let k = Random.State.int rng (e.max_faulty + 1) in
  let pids = random_pids rng ~n:e.n ~k in
  let crashes =
    List.map (fun p -> (p, Random.State.int rng (max 1 crash_window))) pids
  in
  Failure_pattern.make ~n:e.n ~crashes

let worst_pattern ?(crash_window = 200) e =
  let k = e.max_faulty in
  let crashes =
    List.init k (fun i ->
        (e.n - 1 - i, (i + 1) * max 1 (crash_window / (k + 1))))
  in
  Failure_pattern.make ~n:e.n ~crashes

let pp fmt e = Format.fprintf fmt "E_%d(n=%d)" e.max_faulty e.n
