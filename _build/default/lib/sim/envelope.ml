type 'a t = {
  src : Procset.Pid.t;
  dst : Procset.Pid.t;
  seq : int;
  sent_at : int;
  payload : 'a;
}

let same_identity e e' =
  Procset.Pid.equal e.src e'.src
  && Procset.Pid.equal e.dst e'.dst
  && Int.equal e.seq e'.seq

let pp pp_payload fmt e =
  Format.fprintf fmt "@[<h>%a->%a#%d@@%d: %a@]" Procset.Pid.pp e.src
    Procset.Pid.pp e.dst e.seq e.sent_at pp_payload e.payload
