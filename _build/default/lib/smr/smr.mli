(** State-machine replication on top of nonuniform consensus.

    The classical application of consensus, built as one automaton:
    replicas agree on a command per log slot by running one consensus
    instance per slot, all multiplexed over the same simulated network
    (messages are tagged with their slot). A replica proposes its own
    pending command for a slot, starts the next slot as soon as it has
    decided the current one, and joins instances started by faster
    replicas lazily when their messages arrive.

    Nonuniform consensus is the right tool when clients only talk to
    live replicas: a replica that crashes may have applied a divergent
    command to its copy, but no two live replicas ever diverge — and
    the detector this needs, [(Omega, Sigma-nu)], is strictly weaker
    than what uniform replication requires when half the replicas can
    fail. *)

val noop : Consensus.Value.t
(** The command ([-1]) proposed by a replica whose queue is exhausted. *)

(** The per-slot consensus algorithm. *)
module type CONSENSUS = sig
  include Sim.Automaton.S with type input = Consensus.Value.t

  val decision : state -> Consensus.Value.t option
end

(** A replicated log. *)
module type S = sig
  type message
  (** The slot-tagged per-instance message. *)

  include
    Sim.Automaton.S
      with type input = Consensus.Value.t list
       and type message := message
  (** [input] is the replica's queue of pending commands, proposed one
      per slot; {!noop} once exhausted. *)

  val log : state -> Consensus.Value.t list
  (** The decided commands, in slot order, up to the first undecided
      slot — the replica's applied prefix. *)

  val slots_decided : state -> int
  (** Length of {!log}. *)

  val current_slot : state -> int
  (** The slot this replica is currently working on. *)

  val pp_message : Format.formatter -> message -> unit
  val equal_message : message -> message -> bool
end

module Make (C : CONSENSUS) : S
(** Build a replicated log over any consensus automaton. The ambient
    failure-detector value is passed through to every instance. *)

module Over_anuc : S
(** SMR over [A_nuc] — drive it with an [(Omega, Sigma-nu+)] history. *)

module Over_stack : S
(** SMR over the full Theorem 6.28 stack: every slot runs its own
    [T_{Sigma-nu -> Sigma-nu+}] emulation and [A_nuc] — replication
    from the raw weakest detector [(Omega, Sigma-nu)]. Substantially
    heavier than {!Over_anuc} (one DAG gossip per open slot); meant to
    demonstrate composability, not throughput. *)
