let noop : Consensus.Value.t = -1

module type CONSENSUS = sig
  include Sim.Automaton.S with type input = Consensus.Value.t

  val decision : state -> Consensus.Value.t option
end

module type S = sig
  type message

  include
    Sim.Automaton.S
      with type input = Consensus.Value.t list
       and type message := message

  val log : state -> Consensus.Value.t list
  val slots_decided : state -> int
  val current_slot : state -> int
  val pp_message : Format.formatter -> message -> unit
  val equal_message : message -> message -> bool
end

module Make (C : CONSENSUS) : S = struct
  module Imap = Map.Make (Int)

  type message = { slot : int; inner : C.message }
  type input = Consensus.Value.t list

  type state = {
    commands : Consensus.Value.t list;  (** pending command queue *)
    instances : C.state Imap.t;  (** per-slot consensus states *)
    applied : Consensus.Value.t list;  (** decided prefix, newest first *)
    slot : int;  (** the slot this replica currently runs *)
    rotate : int;  (** round-robin cursor over older instances *)
  }

  let name = "SMR(" ^ C.name ^ ")"

  (* A replica's proposal for a slot: its next pending command. The
     queue is indexed by slot so that a command is not lost when a
     competing proposal wins a slot — it is simply proposed again for
     the next one in a real system; here, keeping the mapping
     deterministic (slot s gets command s) is enough for the
     experiments and keeps validity easy to state. *)
  let proposal_for st s =
    match List.nth_opt st.commands s with Some c -> c | None -> noop

  let initial ~n:_ ~self:_ commands =
    { commands; instances = Imap.empty; applied = []; slot = 0; rotate = 0 }

  let instance ~n ~self st s =
    match Imap.find_opt s st.instances with
    | Some inst -> inst
    | None -> C.initial ~n ~self (proposal_for st s)

  (* Step the consensus instance of slot [s] with the given delivery,
     tagging its sends. *)
  let step_instance ~n ~self st s received d =
    let inst = instance ~n ~self st s in
    let inst, sends = C.step ~n ~self inst received d in
    let st = { st with instances = Imap.add s inst st.instances } in
    let sends =
      List.map (fun (dst, inner) -> (dst, { slot = s; inner })) sends
    in
    (st, sends)

  (* Advance the applied prefix: append decisions of consecutive slots
     starting at [st.slot]. *)
  let rec harvest ~n ~self st =
    match Imap.find_opt st.slot st.instances with
    | None -> st
    | Some inst -> (
      match C.decision inst with
      | None -> st
      | Some v ->
        harvest ~n ~self
          { st with applied = v :: st.applied; slot = st.slot + 1 })

  let step ~n ~self st received d =
    (* route the delivery to its instance; lambda goes to the current
       slot's instance so it keeps making local progress *)
    let st, sends =
      match received with
      | Some env ->
        let { slot; inner } = env.Sim.Envelope.payload in
        let inner_env = { env with Sim.Envelope.payload = inner } in
        step_instance ~n ~self st slot (Some inner_env) d
      | None -> step_instance ~n ~self st st.slot None d
    in
    let before = st.slot in
    let st = harvest ~n ~self st in
    (* a freshly opened slot must announce itself: give it one lambda
       step so its instance broadcasts its first-round messages *)
    let st, extra_sends =
      if st.slot > before then step_instance ~n ~self st st.slot None d
      else (st, [])
    in
    (* keep OLDER instances alive: a replica that has decided a slot
       must keep serving it (its consensus instance keeps running, as
       the model prescribes) or slower replicas would starve — so each
       host step also gives one lambda step to a rotating previously
       opened instance *)
    let st, pump_sends =
      if st.slot = 0 then (st, [])
      else begin
        let old_slot = st.rotate mod st.slot in
        let st = { st with rotate = st.rotate + 1 } in
        if Imap.mem old_slot st.instances then
          step_instance ~n ~self st old_slot None d
        else (st, [])
      end
    in
    (st, sends @ extra_sends @ pump_sends)

  let log st = List.rev st.applied
  let slots_decided st = List.length st.applied
  let current_slot st = st.slot

  let pp_message fmt (m : message) =
    Format.fprintf fmt "[slot %d] %a" m.slot C.pp_message m.inner

  let equal_message (a : message) (b : message) =
    a.slot = b.slot && C.equal_message a.inner b.inner
end

module Over_anuc : S = Make (struct
  include Core.Anuc

  let decision = Core.Anuc.decision
end)

module Over_stack : S = Make (struct
  include Core.Stack

  type message = Core.Stack.message

  let pp_message = Core.Stack.pp_message
  let equal_message = Core.Stack.equal_message
  let step = Core.Stack.step
  let decision = Core.Stack.decision
end)
