(** DAGs of failure-detector samples (Section 4.1).

    The DAG built by algorithm [A_DAG] has a special shape: whenever a
    process adds a new sample it adds edges {e from every node it
    currently knows} to the new node (Fig. 1, line 10), and DAGs are
    exchanged and unioned wholesale. Consequently a node's in-edge set
    equals its full ancestor set, the edge relation is transitively
    closed, and a node's ancestor set is identical in every copy of
    the DAG it appears in. This module exploits that invariant: a DAG
    is a map from node identity to (node, ancestor set), so

    - [union] is a pointwise map union (gossip is cheap),
    - [has_edge u v] is an ancestor-set membership test, and
    - [restrict g v] (the paper's [G|v]) is a filter.

    Paths of the DAG (sequences of nodes linked by edges) feed the
    simulated schedules of Section 4.2; {!spine} extracts a long path
    greedily, which implements the constructive core of Lemma 4.8. *)

type t
(** An immutable DAG of samples. *)

val empty : t
(** The empty graph. *)

val is_empty : t -> bool
(** [true] iff the graph has no nodes. *)

val size : t -> int
(** Number of nodes. *)

val mem : t -> Node.t -> bool
(** Membership by node identity. *)

val find : t -> Node.key -> Node.t option
(** Look a node up by identity. *)

val add_sample : t -> Node.t -> t
(** [add_sample g v] adds node [v] with edges from every node of [g]
    to [v] — exactly lines 9–10 of Fig. 1. Raises [Invalid_argument]
    if a node with [v]'s identity is already present. *)

val union : t -> t -> t
(** Union of two DAGs (nodes and edges) — the [G_p ∪ m] of Fig. 1
    line 7. *)

val has_edge : t -> Node.t -> Node.t -> bool
(** [has_edge g u v] is [true] iff [(u, v)] is an edge, i.e. [u] is an
    ancestor of [v]. *)

val is_descendant : t -> of_:Node.t -> Node.t -> bool
(** [is_descendant g ~of_:u v]: [v] is [u] itself or has [u] among its
    ancestors. *)

val restrict : t -> Node.t -> t
(** [restrict g v] is [G|v]: the subgraph induced by [v] and its
    descendants. Returns {!empty} if [v] is not a node of [g]. *)

val nodes : t -> Node.t list
(** All nodes, sorted by identity. *)

val prune : window:int -> t -> t
(** [prune ~window g] drops every sample more than [window] indices
    behind its owner's newest sample in [g]. Ancestor sets keep their
    (now dangling) references to dropped nodes; {!has_edge} and
    {!spine} only consider present nodes, and the A_DAG invariants are
    preserved on the remaining graph. Used by the transformation
    algorithms to bound state growth — see {!Adag.Core.step}. *)

val samples_of : t -> Procset.Pid.t -> Node.t list
(** The samples of one process, sorted by index. *)

val owners : t -> Procset.Pset.t
(** The set of processes owning at least one node. *)

val ancestor_count : t -> Node.t -> int
(** Number of ancestors of a node within the graph. *)

val spine : t -> from:Node.t -> Node.t list
(** [spine g ~from:u] is a {e longest} path of [G|u], computed exactly
    by dynamic programming over the topological order: under the A_DAG
    invariant every ancestor of a node has a direct edge to it, so the
    longest path ending at [v] extends the longest path ending at any
    ancestor of [v] inside [G|u]. Returns [[]] if [u] is not in
    [g]. *)

val weave : ?block:int -> t -> from:Node.t -> Node.t list
(** [weave g ~from:u] is a path of [G|u] built the way Lemma 4.8
    builds its infinite path: starting at [u], repeatedly append the
    earliest unused sample of the next owner in rotation that the
    current path end has an edge to, skipping owners with no such
    sample. The result visits every owner that keeps taking samples
    reachable from [u] — the shape the emulations of Figs. 2–3 need —
    whereas {!spine} maximizes length (and in gossip DAGs degenerates
    to one owner's chain, since switching owners forfeits the gossip
    lag). [block] (default 1) takes that many consecutive samples of
    each owner before rotating, trading owner-alternation granularity
    for path length. *)

val is_path : t -> Node.t list -> bool
(** [is_path g ns] checks that consecutive elements of [ns] are linked
    by edges of [g] (a single node is a path; the empty list is not). *)

val pp : Format.formatter -> t -> unit
(** Diagnostic summary (node and edge counts). *)
