module Core = struct
  type state = { k : int; g : Dag.t; last : Node.t option }

  let init = { k = 0; g = Dag.empty; last = None }

  let step ?prune_window ~self st incoming d =
    let g = match incoming with None -> st.g | Some g' -> Dag.union st.g g' in
    let k = st.k + 1 in
    let node = { Node.owner = self; index = k; value = d } in
    let g = Dag.add_sample g node in
    let g =
      match prune_window with
      | None -> g
      | Some w -> Dag.prune ~window:w g
    in
    { k; g; last = Some node }
end

module Algorithm = struct
  type input = unit
  type state = Core.state
  type message = Dag.t

  let name = "A_DAG"
  let initial ~n:_ ~self:_ () = Core.init

  (* Fig. 1 line 11 sends G_p to every process in every step; with the
     model's one-receipt-per-step budget that floods the buffers and
     makes every received DAG arbitrarily stale. Rotating through the
     peers one per step delivers the same DAGs (every peer still
     receives updated DAGs infinitely often, which is all the
     Section 4 lemmas use) without the queue growth. *)
  let gossip_target ~n ~self k = (self + 1 + ((k - 1) mod (n - 1))) mod n

  let step ~n ~self st received d =
    let incoming = Option.map (fun e -> e.Sim.Envelope.payload) received in
    let st = Core.step ~self st incoming d in
    let dst = gossip_target ~n ~self st.Core.k in
    (st, [ (dst, st.Core.g) ])

  let pp_message = Dag.pp

  let equal_message g g' =
    (* Structural comparison by node identities suffices: equal node
       sets imply equal edge sets under the A_DAG invariant. *)
    List.equal Node.equal (Dag.nodes g) (Dag.nodes g')
end
