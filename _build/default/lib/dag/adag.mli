(** The DAG-building algorithm [A_DAG] (Fig. 1).

    {!Core} is the reusable loop body (lines 5–12): both
    transformation algorithms of the paper ([T_{D->Sigma-nu}], Fig. 2,
    and [T_{Sigma-nu->Sigma-nu+}], Fig. 3) incorporate it verbatim and
    then post-process the DAG. {!Algorithm} packages it as a
    standalone {!Sim.Automaton.S} used to validate the Section 4
    observations and lemmas in the test suite. *)

module Core : sig
  type state = {
    k : int;  (** the sample counter [k_p] *)
    g : Dag.t;  (** the DAG [G_p] *)
    last : Node.t option;  (** the node variable [v_p] (lines 9–10) *)
  }

  val init : state
  (** [k_p = 0], empty graph — the initialize clause. *)

  val step :
    ?prune_window:int ->
    self:Procset.Pid.t ->
    state ->
    Dag.t option ->
    Sim.Fd_value.t ->
    state
  (** [step ~self st incoming d] performs lines 6–10 of one loop
      iteration: union the received DAG (if any) into [G_p], increment
      [k_p], take sample [(self, d, k_p)] and add it with edges from
      every other node. The caller is responsible for line 11 (sending
      the updated [g] to every process).

      [prune_window], if given, drops each owner's samples more than
      that many indices behind the owner's newest sample. The
      transformation algorithms of Figs. 2–3 only ever look at
      [G_p|u_p] with a freshness barrier [u_p] that keeps advancing,
      so old samples can never contribute to an output again; pruning
      them bounds the per-step cost without affecting what is
      emitted. *)
end

module Algorithm : sig
  include
    Sim.Automaton.S
      with type input = unit
       and type state = Core.state
       and type message = Dag.t

  val gossip_target : n:int -> self:Procset.Pid.t -> int -> Procset.Pid.t
  (** [gossip_target ~n ~self k] is the peer that receives the DAG
      after the [k]-th sample. Fig. 1 line 11 sends to every process
      every step; under the model's one-receipt-per-step budget that
      grows the message buffers without bound, so the implementation
      rotates through the peers — every peer still receives updated
      DAGs infinitely often, which is all the Section 4 lemmas
      require. *)
end
(** [A_DAG] itself: each step receives an optional DAG, samples the
    ambient failure detector, updates the local DAG and gossips it to
    a rotating peer. *)
