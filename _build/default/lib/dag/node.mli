(** DAG nodes: failure-detector samples.

    A node [(q, d, k)] records that process [q] obtained value [d] from
    its failure-detector module the [k]-th time it queried it
    (Section 4.1). The pair [(q, k)] uniquely identifies a sample
    within a run. *)

type t = {
  owner : Procset.Pid.t;  (** the process that took the sample *)
  index : int;  (** the owner's query counter [k] (1-based) *)
  value : Sim.Fd_value.t;  (** the sampled failure-detector value *)
}

type key = Procset.Pid.t * int
(** The unique identity [(q, k)] of a sample. *)

val key : t -> key
(** [key v] is [(v.owner, v.index)]. *)

val compare_key : key -> key -> int
(** Lexicographic order on identities. *)

val equal : t -> t -> bool
(** Identity equality (owners and indices agree); values of equal
    identities are equal by construction within one run. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(p2, quorum={..}, 5)]. *)
