type t = {
  owner : Procset.Pid.t;
  index : int;
  value : Sim.Fd_value.t;
}

type key = Procset.Pid.t * int

let key v = (v.owner, v.index)

let compare_key (p, k) (p', k') =
  let c = Procset.Pid.compare p p' in
  if c <> 0 then c else Int.compare k k'

let equal v v' = compare_key (key v) (key v') = 0

let pp fmt v =
  Format.fprintf fmt "(%a, %a, %d)" Procset.Pid.pp v.owner Sim.Fd_value.pp
    v.value v.index
