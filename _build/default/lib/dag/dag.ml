module Kmap = Map.Make (struct
  type t = Node.key

  let compare = Node.compare_key
end)

module Kset = Set.Make (struct
  type t = Node.key

  let compare = Node.compare_key
end)

type entry = {
  node : Node.t;
  ancestors : Kset.t;
  anc_count : int;
  depth : int;
      (* 1 + max depth of all nodes known at creation: a causal rank
         that is strictly increasing along edges and — unlike the
         ancestor count — stays a valid topological key after
         pruning *)
}

type t = entry Kmap.t

let empty = Kmap.empty
let is_empty = Kmap.is_empty
let size = Kmap.cardinal
let mem g v = Kmap.mem (Node.key v) g
let find g k = Option.map (fun e -> e.node) (Kmap.find_opt k g)

let add_sample g v =
  let k = Node.key v in
  if Kmap.mem k g then
    invalid_arg
      (Format.asprintf "Dag.add_sample: node %a already present" Node.pp v);
  let ancestors = Kmap.fold (fun k' _ acc -> Kset.add k' acc) g Kset.empty in
  let depth = 1 + Kmap.fold (fun _ e acc -> max acc e.depth) g 0 in
  Kmap.add k
    { node = v; ancestors; anc_count = Kset.cardinal ancestors; depth }
    g

(* A node created once has the same ancestor set in every DAG copy, so
   taking either entry on collision is sound. [Kmap.union] shares
   structure when one side is a sub-map of the other, which is the
   common case under gossip. *)
let union g g' = Kmap.union (fun _ e _ -> Some e) g g'

let has_edge g u v =
  match Kmap.find_opt (Node.key v) g with
  | None -> false
  | Some e -> Kmap.mem (Node.key u) g && Kset.mem (Node.key u) e.ancestors

let is_descendant g ~of_:u v =
  Node.equal u v || has_edge g u v

let restrict g v =
  if not (mem g v) then empty
  else begin
    let ku = Node.key v in
    let kept =
      Kmap.filter
        (fun k e -> Node.compare_key k ku = 0 || Kset.mem ku e.ancestors)
        g
    in
    let keys = Kmap.fold (fun k _ acc -> Kset.add k acc) kept Kset.empty in
    Kmap.map
      (fun e ->
        let ancestors = Kset.inter e.ancestors keys in
        { e with ancestors; anc_count = Kset.cardinal ancestors })
      kept
  end

let nodes g = Kmap.fold (fun _ e acc -> e.node :: acc) g [] |> List.rev

let prune ~window g =
  (* newest index per owner *)
  let newest = Hashtbl.create 8 in
  Kmap.iter
    (fun (owner, index) _ ->
      match Hashtbl.find_opt newest owner with
      | Some i when i >= index -> ()
      | Some _ | None -> Hashtbl.replace newest owner index)
    g;
  Kmap.filter
    (fun (owner, index) _ ->
      match Hashtbl.find_opt newest owner with
      | Some top -> index > top - window
      | None -> true)
    g

let samples_of g p =
  nodes g |> List.filter (fun v -> Procset.Pid.equal v.Node.owner p)

let owners g =
  Kmap.fold (fun (p, _) _ acc -> Procset.Pset.add p acc) g Procset.Pset.empty

let ancestor_count g v =
  match Kmap.find_opt (Node.key v) g with
  | None -> 0
  | Some e -> Kset.cardinal (Kset.filter (fun k -> Kmap.mem k g) e.ancestors)

(* Longest path of [G|from], computed exactly. A node is in [G|from]
   iff [from] is among its (transitively closed) ancestors, sorting by
   full ancestor count is a topological order ([u ∈ A(v)] implies
   [A(u) ⊊ A(v)]), and — the A_DAG invariant again — every ancestor of
   [v] has a direct edge to [v], so the longest path ending at [v] is
   one node longer than the longest path ending at any member of
   [A(v) ∩ G|from]. *)
let spine g ~from =
  if not (mem g from) then []
  else begin
    let ku = Node.key from in
    let members =
      Kmap.fold
        (fun k e acc ->
          if Node.compare_key k ku = 0 || Kset.mem ku e.ancestors then
            (e.depth, k, e) :: acc
          else acc)
        g []
      |> List.sort (fun (c, k, _) (c', k', _) ->
             let cc = Int.compare c c' in
             if cc <> 0 then cc else Node.compare_key k k')
    in
    (* lp: node key -> (longest path length ending there, predecessor).
       The best predecessor of [v] is the processed member with the
       highest path length that is an ancestor of [v]; scanning the
       processed members in decreasing path length and stopping at the
       first ancestor makes this O(1) amortized in the dense DAGs
       A_DAG produces. *)
    let lp = Hashtbl.create 64 in
    let by_lp = ref [] (* (len, key), sorted by len descending *) in
    let best = ref None in
    List.iter
      (fun (_, k, e) ->
        let best_pred =
          List.find_opt (fun (_, a) -> Kset.mem a e.ancestors) !by_lp
        in
        let entry =
          match best_pred with
          | Some (len, a) -> (len + 1, Some a)
          | None -> (1, None)
        in
        Hashtbl.replace lp k entry;
        (* insert into the descending list *)
        let rec insert = function
          | (len', _) :: _ as rest when len' <= fst entry ->
            (fst entry, k) :: rest
          | hd :: rest -> hd :: insert rest
          | [] -> [ (fst entry, k) ]
        in
        by_lp := insert !by_lp;
        (match !best with
        | Some (len', _) when len' >= fst entry -> ()
        | _ -> best := Some (fst entry, k)))
      members;
    match !best with
    | None -> []
    | Some (_, last) ->
      let rec backtrack acc k =
        let node =
          match Kmap.find_opt k g with
          | Some e -> e.node
          | None -> assert false
        in
        match Hashtbl.find_opt lp k with
        | Some (_, Some prev) -> backtrack (node :: acc) prev
        | Some (_, None) | None -> node :: acc
      in
      backtrack [] last
  end

(* The Lemma 4.8-style path: starting from [from], repeatedly extend
   with the earliest not-yet-used sample of the next owner (in
   rotation) that the current path end has an edge to. This yields a
   path that keeps visiting every live owner — which is what the
   emulations of Figs. 2-3 need: participants(path) must cover the
   trusted quorums, and a simulated schedule must give steps to every
   correct process. Per-owner cursors only move forward (as the path
   end deepens, fewer old nodes remain its descendants), so the
   construction is linear. *)
let weave ?(block = 1) g ~from =
  if not (mem g from) then []
  else begin
    let owner_samples = Hashtbl.create 8 in
    Kmap.iter
      (fun (owner, _) e ->
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt owner_samples owner)
        in
        Hashtbl.replace owner_samples owner (e :: existing))
      g;
    (* per-owner arrays sorted by index ascending, with a cursor *)
    let owners = ref [] in
    Hashtbl.iter
      (fun owner entries ->
        let arr =
          Array.of_list
            (List.sort
               (fun e e' -> Int.compare e.node.Node.index e'.node.Node.index)
               entries)
        in
        owners := (owner, arr, ref 0) :: !owners)
      owner_samples;
    let owners =
      List.sort (fun (o, _, _) (o', _, _) -> Int.compare o o') !owners
    in
    let n_owners = List.length owners in
    let owner_array = Array.of_list owners in
    let rec find_descendant last arr cursor =
      if !cursor >= Array.length arr then None
      else begin
        let e = arr.(!cursor) in
        if Kset.mem (Node.key last) e.ancestors then Some e.node
        else begin
          incr cursor;
          find_descendant last arr cursor
        end
      end
    in
    (* Take up to [block] consecutive samples of one owner before
       rotating: every owner switch forfeits the gossip lag (the next
       owner's first sample knowing the current path end is several
       indices ahead), so longer blocks yield more simulated steps per
       unit of global time while still visiting every owner. *)
    let rec take_block acc last arr cursor remaining =
      if remaining = 0 then (acc, last, true)
      else
        match find_descendant last arr cursor with
        | Some w ->
          incr cursor;
          take_block (w :: acc) w arr cursor (remaining - 1)
        | None -> (acc, last, remaining < block)
    in
    let rec extend acc last start_slot tried =
      if tried >= n_owners then List.rev acc
      else begin
        let slot = (start_slot + tried) mod n_owners in
        let _, arr, cursor = owner_array.(slot) in
        let acc', last', progressed = take_block acc last arr cursor block in
        if progressed then
          extend acc' last' ((slot + 1) mod n_owners) 0
        else extend acc last start_slot (tried + 1)
      end
    in
    (* start the rotation just after from's owner; mark from used *)
    let start_slot =
      let rec find i = function
        | [] -> 0
        | (o, arr, cursor) :: rest ->
          if o = from.Node.owner then begin
            (* advance this owner's cursor past [from] *)
            let rec skip () =
              if
                !cursor < Array.length arr
                && arr.(!cursor).node.Node.index <= from.Node.index
              then begin
                incr cursor;
                skip ()
              end
            in
            skip ();
            (i + 1) mod n_owners
          end
          else find (i + 1) rest
      in
      find 0 owners
    in
    extend [ from ] from start_slot 0
  end

let is_path g = function
  | [] -> false
  | first :: rest ->
    mem g first
    && fst
         (List.fold_left
            (fun (ok, prev) v -> (ok && has_edge g prev v, v))
            (true, first) rest)

let pp fmt g =
  let edges = Kmap.fold (fun _ e acc -> acc + Kset.cardinal e.ancestors) g 0 in
  Format.fprintf fmt "dag(%d nodes, %d edges)" (size g) edges
