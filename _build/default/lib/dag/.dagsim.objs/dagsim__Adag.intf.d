lib/dag/adag.mli: Dag Node Procset Sim
