lib/dag/adag.ml: Dag List Node Option Sim
