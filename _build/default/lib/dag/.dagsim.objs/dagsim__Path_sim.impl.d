lib/dag/path_sim.ml: Array List Pid Printf Procset Pset Sim
