lib/dag/dag.ml: Array Format Hashtbl Int List Map Node Option Procset Set
