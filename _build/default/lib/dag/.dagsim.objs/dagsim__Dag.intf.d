lib/dag/dag.mli: Format Node Procset
