lib/dag/node.mli: Format Procset Sim
