lib/dag/node.ml: Format Int Procset Sim
