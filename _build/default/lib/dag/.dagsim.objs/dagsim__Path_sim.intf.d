lib/dag/path_sim.mli: Procset Sim
