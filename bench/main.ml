(* The benchmark harness.

   The paper is a theory paper, so there are no tables or figures of
   measurements to replicate; its "evaluation" is a set of theorems.
   This harness regenerates, on every run:

   - the E-table: one row per theorem/proof-scenario experiment
     (E1-E9, see DESIGN.md), each validated by independent property
     checkers over randomized or scripted runs;
   - the B-tables: decision latency of the consensus algorithms
     across environments (B1), sensitivity to the detectors'
     stabilization time (B2), the cost of the DAG-based
     transformation machinery (B3), model-checker throughput (B6),
     liveness degradation under injected message loss (B7), and
     randomized-explorer throughput and coverage saturation (B8);
   - bechamel microbenchmarks of the substrate hot paths (B4).

   Run with: dune exec bench/main.exe
   With --json [FILE] every table is also serialized to FILE
   (default BENCH_<date>.json), establishing the perf trajectory;
   see DESIGN.md for the schema (lib/report holds the printer and
   the authoritative top-level key list). With --smoke every sweep
   is cut to a few seconds' worth — for CI, where the point is that
   the harness runs and the E-table passes, not the numbers. *)
open Procset

let pf = Format.printf

let hr title =
  pf "@.===================================================================@.";
  pf "%s@." title;
  pf "===================================================================@."

module Json = Report

(* ---------------------------------------------------------------- *)
(* E-table                                                           *)
(* ---------------------------------------------------------------- *)

let experiment_table () =
  hr "E-table: theorem validation (quick sweeps; full sweeps in `dune \
      runtest`)";
  let rows = Experiments.all ~quick:true () in
  List.iter (fun r -> pf "%a@.@." Experiments.pp_row r) rows;
  let failed = List.filter (fun r -> not r.Experiments.pass) rows in
  pf "E-table summary: %d/%d experiments PASS@."
    (List.length rows - List.length failed)
    (List.length rows);
  rows

let json_of_e_rows rows =
  Json.List
    (List.map
       (fun (r : Experiments.row) ->
         Json.Obj
           [
             ("id", Json.Str r.id);
             ("theorem", Json.Str r.theorem);
             ("expected", Json.Str r.expected);
             ("measured", Json.Str r.measured);
             ("pass", Json.Bool r.pass);
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* B1: decision latency across environments                          *)
(* ---------------------------------------------------------------- *)

let b1_latency ~smoke () =
  hr "B1: decision latency (avg over seeds; rounds = consensus rounds of \
      correct deciders)";
  pf "%s@." Experiments.latency_header;
  let seeds = if smoke then [ 0 ] else [ 0; 1; 2; 3; 4 ] in
  let acc = ref [] in
  let emit r =
    acc := r :: !acc;
    pf "%a@." Experiments.pp_latency_row r
  in
  List.iter
    (fun n ->
      List.iter
        (fun t ->
          if t < n then begin
            if 2 * t < n then begin
              emit (Experiments.latency Experiments.Mr_majority ~n ~t ~seeds);
              emit (Experiments.latency Experiments.Ct ~n ~t ~seeds)
            end;
            emit (Experiments.latency Experiments.Mr_sigma ~n ~t ~seeds);
            emit (Experiments.latency Experiments.Anuc ~n ~t ~seeds)
          end)
        (if smoke then [ 1 ] else [ 1; 2; 4 ]))
    (if smoke then [ 3 ] else [ 3; 5; 7 ]);
  pf "@.Stack (consensus from raw (Omega, Sigma-nu), incl. the emulation \
      layer):@.";
  List.iter
    (fun (n, t) ->
      emit
        (Experiments.latency Experiments.Stack ~n ~t
           ~seeds:(if smoke then [ 0 ] else [ 0; 1; 2 ])))
    (if smoke then [ (4, 1) ] else [ (4, 1); (4, 3) ]);
  List.rev !acc

let json_of_latency_rows rows =
  Json.List
    (List.map
       (fun (r : Experiments.latency_row) ->
         Json.Obj
           [
             ("algorithm", Json.Str r.algorithm);
             ("n", Json.Int r.n);
             ("t", Json.Int r.t);
             ("runs", Json.Int r.runs);
             ("decided", Json.Int r.decided);
             ("avg_rounds", Json.Float r.avg_rounds);
             ("avg_steps", Json.Float r.avg_steps);
             ("avg_msgs", Json.Float r.avg_msgs);
             ("avg_mailbox_hwm", Json.Float r.avg_hwm);
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* B2: sensitivity to detector stabilization time                    *)
(* ---------------------------------------------------------------- *)

let b2_stabilization ~smoke () =
  hr "B2: steps to full decision vs detector stabilization time (n=5, t=2)";
  pf "%-12s %10s %8s %12s@." "algorithm" "stab_time" "runs" "avg_steps";
  List.map
    (fun (name, algo) ->
      let rows =
        Experiments.stabilization_series algo ~n:5 ~t:2
          ~stabs:(if smoke then [ 0; 150 ] else [ 0; 50; 150; 300 ])
          ~seeds:(if smoke then [ 0 ] else [ 0; 1; 2 ])
      in
      List.iter
        (fun r ->
          pf "%-12s %10d %8d %12.1f@." name r.Experiments.stab_time
            r.Experiments.s_runs r.Experiments.s_avg_steps)
        rows;
      (name, rows))
    [ ("MR-Sigma", Experiments.Mr_sigma); ("A_nuc", Experiments.Anuc) ]

let json_of_stab_series series =
  Json.List
    (List.concat_map
       (fun (name, rows) ->
         List.map
           (fun (r : Experiments.stab_row) ->
             Json.Obj
               [
                 ("algorithm", Json.Str name);
                 ("stab_time", Json.Int r.stab_time);
                 ("runs", Json.Int r.s_runs);
                 ("avg_steps", Json.Float r.s_avg_steps);
               ])
           rows)
       series)

(* ---------------------------------------------------------------- *)
(* B3: transformation cost                                           *)
(* ---------------------------------------------------------------- *)

let b3_dag_growth ~smoke () =
  hr "B3: T_{Sigma-nu -> Sigma-nu+} cost vs run length (n=4; DAG pruned to \
      a sliding window)";
  pf "%8s %10s %10s %12s %10s %9s %10s@." "steps" "dag_nodes" "weave_len"
    "extractions" "messages" "mbox_hwm" "wall_ms";
  let rows =
    Experiments.dag_growth ~n:4
      ~steps_list:(if smoke then [ 200; 400 ] else [ 200; 400; 800; 1600 ])
  in
  List.iter
    (fun r ->
      pf "%8d %10d %10d %12d %10d %9d %10.1f@." r.Experiments.d_steps
        r.Experiments.dag_nodes r.Experiments.spine_len
        r.Experiments.extractions_total r.Experiments.d_msgs
        r.Experiments.d_hwm r.Experiments.wall_ms)
    rows;
  rows

let json_of_dag_rows rows =
  Json.List
    (List.map
       (fun (r : Experiments.dag_row) ->
         Json.Obj
           [
             ("steps", Json.Int r.d_steps);
             ("dag_nodes", Json.Int r.dag_nodes);
             ("weave_len", Json.Int r.spine_len);
             ("extractions", Json.Int r.extractions_total);
             ("messages_sent", Json.Int r.d_msgs);
             ("mailbox_hwm", Json.Int r.d_hwm);
             ("wall_ms", Json.Float r.wall_ms);
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* B5: the mechanism ablation                                        *)
(* ---------------------------------------------------------------- *)

let b5_ablation () =
  hr "B5: A_nuc mechanism ablation (scripted Sec-6.3 adversary + \
      randomized adversarial sweeps, n=4)";
  pf "%s@." Experiments.ablation_header;
  let rows = Experiments.ablation ~quick:true () in
  List.iter (fun r -> pf "%a@." Experiments.pp_ablation_row r) rows;
  rows

let json_of_ablation_rows rows =
  Json.List
    (List.map
       (fun (r : Experiments.ablation_row) ->
         Json.Obj
           [
             ("variant", Json.Str r.variant);
             ("script_outcome", Json.Str r.script_outcome);
             ("script_violated", Json.Bool r.script_violated);
             ("sweep_runs", Json.Int r.sweep_runs);
             ("sweep_violations", Json.Int r.sweep_violations);
             ("avg_rounds", Json.Float r.a_avg_rounds);
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* B6: model-checker throughput                                      *)
(* ---------------------------------------------------------------- *)

let b6_model_check ~smoke () =
  hr "B6: bounded model checker (lib/mc) — the two E11 explorations on \
      E_1(3)";
  pf "%s@." Experiments.mc_header;
  let rows = Experiments.mc_table ~quick:smoke () in
  List.iter (fun r -> pf "%a@." Experiments.pp_mc_row r) rows;
  rows

let json_of_mc_rows rows =
  Json.List
    (List.map
       (fun (r : Experiments.mc_row) ->
         let s = r.mc_stats in
         Json.Obj
           [
             ("algorithm", Json.Str r.mc_algorithm);
             ("menu", Json.Str r.mc_menu);
             ("depth", Json.Int r.mc_depth);
             ("transitions", Json.Int s.Mc.transitions);
             ("distinct_states", Json.Int s.Mc.distinct_states);
             ("dedup_hits", Json.Int s.Mc.dedup_hits);
             ("self_loops", Json.Int s.Mc.self_loops);
             ("sleep_skipped", Json.Int s.Mc.sleep_skipped);
             ("races", Json.Int s.Mc.races);
             ("backtracks", Json.Int s.Mc.backtracks);
             ("decided_leaves", Json.Int s.Mc.decided_leaves);
             ("depth_leaves", Json.Int s.Mc.depth_leaves);
             ("truncated", Json.Bool s.Mc.truncated);
             ("wall_seconds", Json.Float s.Mc.wall_seconds);
             ("states_per_sec", Json.Float (Mc.states_per_sec s));
             ("outcome", Json.Str r.mc_outcome);
             ("pass", Json.Bool r.mc_pass);
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* B7: liveness degradation under message loss                       *)
(* ---------------------------------------------------------------- *)

let b7_fault_latency ~smoke () =
  hr "B7: A_nuc decision latency vs message-drop rate (n=4, t=1; \
      non-deciders hit the step budget — nothing retransmits a dropped \
      message)";
  pf "%s@." Experiments.fault_header;
  let rows = Experiments.fault_table ~quick:smoke () in
  List.iter (fun r -> pf "%a@." Experiments.pp_fault_row r) rows;
  rows

let json_of_fault_rows rows =
  Json.List
    (List.map
       (fun (r : Experiments.fault_row) ->
         Json.Obj
           [
             ("algorithm", Json.Str r.f_algorithm);
             ("drop_rate", Json.Float r.f_drop);
             ("runs", Json.Int r.f_runs);
             ("decided", Json.Int r.f_decided);
             ("step_budget", Json.Int r.f_budget);
             ("avg_steps_decided", Json.Float r.f_avg_steps);
             ("avg_net_dropped", Json.Float r.f_avg_dropped);
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* B8: randomized-explorer throughput                                *)
(* ---------------------------------------------------------------- *)

let b8_fuzz ~smoke () =
  hr "B8: randomized schedule explorer (lib/explore) — the two E13 \
      campaigns on E_2(5)";
  pf "%s@." Experiments.fuzz_header;
  let rows = Experiments.fuzz_table ~quick:smoke () in
  List.iter (fun r -> pf "%a@." Experiments.pp_fuzz_row r) rows;
  rows

let json_of_fuzz_rows rows =
  Json.List
    (List.map
       (fun (r : Experiments.fuzz_row) ->
         Json.Obj
           [
             ("algorithm", Json.Str r.fz_algorithm);
             ("mode", Json.Str r.fz_mode);
             ("runs", Json.Int r.fz_runs);
             ("steps", Json.Int r.fz_steps);
             ("runs_per_sec", Json.Float r.fz_runs_per_sec);
             ("distinct_states", Json.Int r.fz_states);
             ("last_batch_new_states", Json.Int r.fz_last_new_states);
             ("shrink_ratio", Json.Float r.fz_shrink_ratio);
             ("outcome", Json.Str r.fz_outcome);
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* B9: parallel exploration scaling                                  *)
(* ---------------------------------------------------------------- *)

let b9_parallel ~smoke () =
  hr "B9: multicore scaling of the exploration engines (mc ~jobs over \
      the striped table; fuzz ~jobs batch sharding) — speedups are \
      honest host measurements, ~1x on single-core containers";
  pf "%s@." Experiments.b9_header;
  let rows = Experiments.b9_parallel_table ~quick:smoke () in
  List.iter (fun r -> pf "%a@." Experiments.pp_b9_row r) rows;
  rows

let json_of_b9_rows rows =
  Json.List
    (List.map
       (fun (r : Experiments.b9_row) ->
         Json.Obj
           [
             ("workload", Json.Str r.b9_workload);
             ("jobs", Json.Int r.b9_jobs);
             ("wall_seconds", Json.Float r.b9_wall);
             ("throughput", Json.Float r.b9_throughput);
             ("speedup", Json.Float r.b9_speedup);
             ("sequential_equivalent", Json.Bool r.b9_equal);
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* B10: served replication throughput                                *)
(* ---------------------------------------------------------------- *)

let b10_serve ~smoke () =
  hr "B10: closed-loop replicated-log serving (Smr over A_nuc), clients x \
      batch, on the deterministic simulator and the concurrent executor — \
      latencies are logical ticks; executor wall times on single-core \
      containers include domain scheduling overhead";
  pf "%s@." Experiments.b10_header;
  let rows = Experiments.b10_serve_table ~quick:smoke () in
  List.iter (fun r -> pf "%a@." Experiments.pp_b10_row r) rows;
  rows

(* ---------------------------------------------------------------- *)
(* B11: partial-order reduction                                      *)
(* ---------------------------------------------------------------- *)

let b11_dpor ~smoke () =
  hr "B11: the E11 A_nuc verification under each reduction (none / sleep \
      sets / happens-before DPOR) — pass re-checks verdict and \
      distinct-state equality against the unreduced row";
  pf "%s@." Experiments.b11_header;
  let rows = Experiments.b11_dpor_table ~quick:smoke () in
  List.iter (fun r -> pf "%a@." Experiments.pp_b11_row r) rows;
  rows

(* ---------------------------------------------------------------- *)
(* B12: packed canonical-state codec                                 *)
(* ---------------------------------------------------------------- *)

let b12_codec ~smoke () =
  hr "B12: packed canonical-state codec — retained bytes per state of the \
      config-keyed memo vs the packed bytes + interning pools over the \
      same distinct-state set (pass needs equal counts and >= 5x)";
  pf "%s@." Experiments.b12_header;
  let rows = Experiments.b12_codec_table ~quick:smoke () in
  List.iter (fun r -> pf "%a@." Experiments.pp_b12_row r) rows;
  rows

(* ---------------------------------------------------------------- *)
(* B13: quorum-family latency / resilience trade-off                 *)
(* ---------------------------------------------------------------- *)

let b13_quorum ~smoke () =
  hr "B13: MR over pluggable quorum families — decision latency vs \
      structural resilience (crashes at time 0; pass checks decided = \
      live run by run, where live means the surviving set is itself a \
      quorum)";
  pf "%s@." Experiments.b13_header;
  let rows = Experiments.b13_quorum_table ~quick:smoke () in
  List.iter (fun r -> pf "%a@." Experiments.pp_b13_row r) rows;
  rows

(* ---------------------------------------------------------------- *)
(* B14: ring transport + snapshot-served reads                       *)
(* ---------------------------------------------------------------- *)

let b14_ring ~smoke () =
  hr "B14: the serving workload across {mutex, ring} transports x {log, \
      snapshot} read modes on the concurrent executor — lock_ops / \
      cas_retries / sync_ops are the contention story (the ring locks \
      only on overflow spills; sharded counters sync per round, not per \
      step); ok needs no divergence and stale_max within the declared \
      bound";
  pf "%s@." Experiments.b14_header;
  let rows = Experiments.b14_ring_table ~quick:smoke () in
  List.iter (fun r -> pf "%a@." Experiments.pp_b14_row r) rows;
  rows

(* ---------------------------------------------------------------- *)
(* Substrate run metrics: one instrumented reference run             *)
(* ---------------------------------------------------------------- *)

module Anuc_runner = Sim.Runner.Make (Core.Anuc)

let reference_pattern = Sim.Failure_pattern.make ~n:4 ~crashes:[]

let reference_run () =
  let oracle =
    Fd.Oracle.pair
      (Fd.Oracle.omega ~stab_time:0 reference_pattern)
      (Fd.Oracle.sigma_nu_plus ~stab_time:0 reference_pattern)
  in
  Anuc_runner.exec ~record:false ~pattern:reference_pattern
    ~fd:oracle.Fd.Oracle.query
    ~inputs:(fun p -> p mod 2)
    ~max_steps:2000
    ~stop:(fun st _ ->
      Pset.for_all
        (fun p -> Core.Anuc.decision (st p) <> None)
        (Pset.full ~n:4))
    ()

let run_metrics () =
  hr "Run metrics: reference A_nuc consensus run (n=4, failure-free)";
  let m = (reference_run ()).Anuc_runner.metrics in
  pf "%a@." Sim.Runner.pp_metrics m;
  pf "steps per process: %s@."
    (String.concat " "
       (Array.to_list (Array.map string_of_int m.Sim.Runner.steps_per_process)));
  m

let json_of_metrics (m : Sim.Runner.metrics) =
  Json.Obj
    [
      ( "steps_per_process",
        Json.List
          (Array.to_list
             (Array.map (fun s -> Json.Int s) m.steps_per_process)) );
      ("messages_sent", Json.Int m.sent);
      ("messages_delivered", Json.Int m.delivered);
      ("messages_dropped", Json.Int m.dropped);
      ("messages_duplicated", Json.Int m.duplicated);
      ("messages_reordered", Json.Int m.reordered);
      ("messages_undelivered_at_stop", Json.Int m.undelivered_at_stop);
      ("mailbox_hwm", Json.Int m.mailbox_hwm);
      ("wall_seconds", Json.Float m.wall_seconds);
    ]

(* ---------------------------------------------------------------- *)
(* B4: bechamel microbenchmarks                                      *)
(* ---------------------------------------------------------------- *)

let bench_pset =
  let a = Pset.of_list [ 0; 2; 4; 6 ] and b = Pset.of_list [ 1; 2; 3 ] in
  Bechamel.Test.make ~name:"pset-inter-subset"
    (Bechamel.Staged.stage (fun () ->
         ignore (Pset.intersects a b);
         ignore (Pset.subset (Pset.inter a b) a)))

let bench_qhist_distrust =
  let h =
    List.fold_left
      (fun h (p, q) -> Core.Qhist.add h p (Pset.of_list q))
      Core.Qhist.empty
      [
        (0, [ 0; 1 ]);
        (0, [ 0; 2 ]);
        (1, [ 1; 2 ]);
        (2, [ 2; 3 ]);
        (3, [ 0; 3 ]);
        (3, [ 3 ]);
      ]
  in
  Bechamel.Test.make ~name:"qhist-distrusts"
    (Bechamel.Staged.stage (fun () ->
         ignore (Core.Qhist.distrusts ~self:0 ~n:4 h 3)))

let bench_dag_add =
  Bechamel.Test.make ~name:"dag-add-sample-100"
    (Bechamel.Staged.stage (fun () ->
         let g = ref Dagsim.Dag.empty in
         for i = 1 to 100 do
           g :=
             Dagsim.Dag.add_sample !g
               {
                 Dagsim.Node.owner = i mod 4;
                 index = 1 + (i / 4);
                 value = Sim.Fd_value.Quorum (Pset.singleton (i mod 4));
               }
         done))

let dag_200 =
  let g = ref Dagsim.Dag.empty in
  for i = 1 to 200 do
    g :=
      Dagsim.Dag.add_sample !g
        {
          Dagsim.Node.owner = i mod 4;
          index = 1 + (i / 4);
          value = Sim.Fd_value.Quorum (Pset.singleton (i mod 4));
        }
  done;
  !g

let bench_dag_weave =
  let from = List.hd (Dagsim.Dag.samples_of dag_200 0) in
  Bechamel.Test.make ~name:"dag-weave-200"
    (Bechamel.Staged.stage (fun () ->
         ignore (Dagsim.Dag.weave dag_200 ~from)))

let bench_anuc_consensus =
  Bechamel.Test.make ~name:"anuc-full-consensus-n4"
    (Bechamel.Staged.stage (fun () -> ignore (reference_run ())))

let b4_micro ~smoke () =
  hr "B4: microbenchmarks (bechamel, ns per run)";
  let tests =
    Bechamel.Test.make_grouped ~name:"micro"
      [
        bench_pset;
        bench_qhist_distrust;
        bench_dag_add;
        bench_dag_weave;
        bench_anuc_consensus;
      ]
  in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Bechamel.Benchmark.cfg
      ~limit:(if smoke then 100 else 1000)
      ~quota:(Bechamel.Time.second (if smoke then 0.05 else 0.4))
      ()
  in
  let raw = Bechamel.Benchmark.all cfg instances tests in
  let analyzed =
    Bechamel.Analyze.all
      (Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Bechamel.Measure.run |])
      Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Bechamel.Analyze.OLS.estimates ols with
        | Some [ e ] -> Some e
        | Some _ | None ->
          pf
            "WARNING: benchmark %s: OLS estimates had an unexpected shape; \
             no ns/run figure@."
            name;
          None
      in
      rows := (name, est) :: !rows)
    analyzed;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, est) ->
      match est with
      | Some e -> pf "%-32s %14.1f ns/run@." name e
      | None -> pf "%-32s %14s@." name "(no estimate)")
    rows;
  rows

let json_of_micro_rows rows =
  Json.List
    (List.map
       (fun (name, est) ->
         Json.Obj
           [
             ("name", Json.Str name);
             ( "ns_per_run",
               match est with Some e -> Json.Float e | None -> Json.Null );
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* Entry point                                                       *)
(* ---------------------------------------------------------------- *)

let default_json_file () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "BENCH_%04d-%02d-%02d.json" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday

(* Recognizes [--json FILE], [--json] (default file name), [--smoke]
   and [--only KEY] (run one B-table and emit only its document
   fragment — what the CI smoke jobs validate without paying for the
   whole harness; KEY is b11, b12 or b13). *)
let parse_args () =
  let rec scan json smoke only = function
    | [] -> (json, smoke, only)
    | "--smoke" :: rest -> scan json true only rest
    | "--only" :: key :: rest -> scan json smoke (Some key) rest
    | "--json" :: file :: rest when String.length file > 0 && file.[0] <> '-'
      ->
      scan (Some file) smoke only rest
    | "--json" :: rest -> scan (Some (default_json_file ())) smoke only rest
    | _ :: rest -> scan json smoke only rest
  in
  scan None false None (List.tl (Array.to_list Sys.argv))

let write_json file doc =
  let oc = open_out file in
  Json.to_channel oc doc;
  close_out oc;
  pf "@.wrote %s@." file

let run_only ~smoke ~json_file key =
  let fragment =
    match key with
    | "b11" | "b11_dpor" ->
      Some ("b11_dpor", Experiments.json_of_b11_rows (b11_dpor ~smoke ()))
    | "b12" | "b12_codec" ->
      Some ("b12_codec", Experiments.json_of_b12_rows (b12_codec ~smoke ()))
    | "b10" | "b10_serve" ->
      Some ("b10_serve", Experiments.json_of_b10_rows (b10_serve ~smoke ()))
    | "b13" | "b13_quorum" ->
      Some ("b13_quorum", Experiments.json_of_b13_rows (b13_quorum ~smoke ()))
    | "b14" | "b14_ring" ->
      Some ("b14_ring", Experiments.json_of_b14_rows (b14_ring ~smoke ()))
    | k ->
      pf "unknown --only key %S (expected b10 | b11 | b12 | b13 | b14)@." k;
      exit 2
  in
  match (fragment, json_file) with
  | Some frag, Some file -> write_json file (Json.Obj [ frag ])
  | _ -> ()

let () =
  let json_file, smoke, only = parse_args () in
  pf "nonuniform-consensus benchmark harness%s@."
    (if smoke then " (smoke: reduced sweeps)" else "");
  match only with
  | Some key -> run_only ~smoke ~json_file key
  | None ->
  let e_rows = experiment_table () in
  let b1 = b1_latency ~smoke () in
  let b2 = b2_stabilization ~smoke () in
  let b3 = b3_dag_growth ~smoke () in
  let b5 = b5_ablation () in
  let b6 = b6_model_check ~smoke () in
  let b7 = b7_fault_latency ~smoke () in
  let b8 = b8_fuzz ~smoke () in
  let b9 = b9_parallel ~smoke () in
  let b10 = b10_serve ~smoke () in
  let b11 = b11_dpor ~smoke () in
  let b12 = b12_codec ~smoke () in
  let b13 = b13_quorum ~smoke () in
  let b14 = b14_ring ~smoke () in
  let metrics = run_metrics () in
  let b4 = b4_micro ~smoke () in
  match json_file with
  | None -> ()
  | Some file ->
    (* Values in the order of [Report.schema_keys]; [List.map2] fails
       loudly if the document and the documented schema drift. *)
    let values =
      [
        Json.Int 1;
        Json.Float (Unix.time ());
        json_of_e_rows e_rows;
        json_of_latency_rows b1;
        json_of_stab_series b2;
        json_of_dag_rows b3;
        json_of_ablation_rows b5;
        json_of_mc_rows b6;
        json_of_fault_rows b7;
        json_of_fuzz_rows b8;
        json_of_b9_rows b9;
        Experiments.json_of_b10_rows b10;
        Experiments.json_of_b11_rows b11;
        Experiments.json_of_b12_rows b12;
        Experiments.json_of_b13_rows b13;
        Experiments.json_of_b14_rows b14;
        json_of_micro_rows b4;
        json_of_metrics metrics;
      ]
    in
    let doc = Json.Obj (List.map2 (fun k v -> (k, v)) Report.schema_keys values) in
    write_json file doc
