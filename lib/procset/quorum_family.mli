(** Pluggable quorum families.

    The paper's separation result (Section 7) rests on quorum
    {e intersection structure} — Sigma's pairwise intersection versus
    Sigma-nu's weaker, correct-only guarantee — not on any particular
    threshold. This module makes the quorum structure a first-class
    value: a family decides which process sets count as quorums of a
    universe of size [n], and the detector oracles ([Fd.Oracle]), the
    quorum-driven consensus algorithms ([Consensus.Mr], [Core.Anuc])
    and the model-checking menus ([Mc.Menu]) are parameterized over
    it. Classic majority is one instance among four.

    Every shipped family is {e monotone}: a superset of a quorum is a
    quorum. The oracles rely on this (Sigma-nu+ adds the owner to its
    quorums), and so does {!validate}'s liveness test.

    The intersection algebra each consumer needs is pinned by the
    qcheck law suite in [test/test_procset.ml]:
    any-two-quorums-intersect (all four shipped families are uniform,
    so Sigma legality holds), min-quorum minimality, monotonicity, and
    the degeneracy laws (all-ones weighted votes = majority; 1xN and
    Nx1 grids = unanimity). *)

(** A quorum family, as a first-class module. [is_quorum] is the
    primitive — grid quorums are a coterie with no single threshold,
    so families are predicates, not weights. *)
module type S = sig
  val name : string
  (** Rendered name, including parameters — e.g. ["super:1"],
      ["grid:2x2"]. *)

  val shape : n:int -> (unit, string) result
  (** Structural validity of the family's parameters at universe size
      [n] (e.g. a weight vector must have length [n]; a grid must
      tile [n] exactly — a ragged grid breaks the row-column
      intersection argument). *)

  val is_quorum : n:int -> Pset.t -> bool
  (** Whether the set is a quorum of the [n]-process universe. Only
      meaningful when [shape ~n] holds. Must be monotone. *)
end

type t = (module S)

(** Typed validation errors ({!validate}); these replace the
    [Invalid_argument] that [Oracle.sigma_majority] used to let escape
    to the CLI. *)
type error =
  | Bad_shape of { family : string; n : int; reason : string }
      (** The family's parameters do not fit a universe of size [n]. *)
  | No_live_quorum of { family : string; n : int; live : Pset.t }
      (** No quorum survives inside [live] — the family cannot be a
          live quorum source (e.g. majority with a minority of correct
          processes). *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val name : t -> string
val pp : Format.formatter -> t -> unit

val validate : t -> n:int -> live:Pset.t -> (unit, error) result
(** [validate f ~n ~live] certifies that the family is usable as a
    quorum source for universe size [n] when the processes of [live]
    stay up: the shape fits, and some quorum is contained in [live]
    (by monotonicity, iff [live] itself is a quorum). Pass
    [live = Pset.full ~n] for a pure shape check. *)

val is_quorum : t -> n:int -> Pset.t -> bool

val is_min_quorum : t -> n:int -> Pset.t -> bool
(** A quorum none of whose proper subsets is a quorum (equivalently,
    for any family: removing any single member breaks it). *)

val min_quorums : t -> n:int -> within:Pset.t -> Pset.t list
(** All minimal quorums contained in [within], sorted by cardinality
    then {!Pset.compare}. Enumerates the [2^|within|] subsets — small
    universes only (the model-checking menus and the law suite). *)

val min_quorum_size : t -> n:int -> int option
(** Cardinality of the smallest quorum of the full universe; [None]
    when the family has no quorum at all. *)

val resilience : t -> n:int -> int
(** The largest [f] such that {e every} crash set of size [f] leaves
    a quorum intact ([-1] when even the full universe is no quorum) —
    the structural resilience column of the B13 trade-off table. *)

val grow_quorum :
  t -> n:int -> Random.State.t -> pool:Pset.t -> Pset.t option
(** Grow a quorum by drawing uniformly random members of [pool]
    without replacement until the accumulated set is a quorum; [None]
    if [pool] is exhausted first. For the majority family this
    consumes the RNG exactly like the historical
    [Oracle.sigma_majority] grow loop, which keeps seeded majority
    runs byte-identical. *)

(** {1 The shipped instances} *)

val majority : t
(** Classic majority: [2 * |s| > n]. *)

val supermajority : f:int -> t
(** Fast/supermajority threshold [ceil ((n + f + 1) / 2)]: two
    quorums intersect in more than [f] processes, so the intersection
    survives [f] further crashes — the fast-quorum regime. [shape]
    requires [0 <= f] and the threshold to fit in [n]. *)

val weighted : weights:int list -> t
(** Strict weighted majority: [2 * weight s > total]. [shape]
    requires [length weights = n], all weights non-negative, total
    positive. With all-ones weights this is exactly {!majority} (the
    degenerate case pinned by the law suite). *)

val grid : ?rows:int -> ?cols:int -> unit -> t
(** Grid coterie on an [rows x cols] tiling of the universe (process
    [p] sits at row [p / cols], column [p mod cols]): a quorum must
    contain a full row and a full column, so two quorums meet at the
    crossing cell. Omitted dimensions are derived from [n] at use
    time (the most square tiling); [shape] rejects ragged grids
    ([rows * cols <> n]), whose quorums need not intersect. *)

val of_string : string -> (t, string) result
(** Parse a [--quorum] spelling: ["majority"], ["super:F"],
    ["weighted:W0,W1,..."], ["grid"] or ["grid:RxC"]. *)

val spellings : string
(** One-line help text for {!of_string}. *)
