module type S = sig
  val name : string
  val shape : n:int -> (unit, string) result
  val is_quorum : n:int -> Pset.t -> bool
end

type t = (module S)

type error =
  | Bad_shape of { family : string; n : int; reason : string }
  | No_live_quorum of { family : string; n : int; live : Pset.t }

let error_to_string = function
  | Bad_shape { family; n; reason } ->
    Printf.sprintf "quorum family %s does not fit n=%d: %s" family n reason
  | No_live_quorum { family; n; live } ->
    Printf.sprintf "quorum family %s has no quorum inside %s (n=%d)" family
      (Pset.to_string live) n

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)
let name (module F : S) = F.name
let pp fmt f = Format.pp_print_string fmt (name f)
let is_quorum (module F : S) ~n s = F.is_quorum ~n s

let validate (module F : S) ~n ~live =
  match F.shape ~n with
  | Error reason -> Error (Bad_shape { family = F.name; n; reason })
  | Ok () ->
    (* monotone family: some quorum fits inside [live] iff [live]
       itself is one *)
    if F.is_quorum ~n live then Ok ()
    else Error (No_live_quorum { family = F.name; n; live })

let is_min_quorum (module F : S) ~n s =
  F.is_quorum ~n s
  && Pset.for_all (fun p -> not (F.is_quorum ~n (Pset.remove p s))) s

let min_quorums f ~n ~within =
  Pset.subsets within
  |> List.filter (is_min_quorum f ~n)
  |> List.sort (fun a b ->
         match Int.compare (Pset.cardinal a) (Pset.cardinal b) with
         | 0 -> Pset.compare a b
         | c -> c)

let min_quorum_size f ~n =
  match min_quorums f ~n ~within:(Pset.full ~n) with
  | [] -> None
  | q :: _ -> Some (Pset.cardinal q)

let resilience (module F : S) ~n =
  (* the cheapest crash set that kills every quorum leaves the largest
     non-quorum survivor set *)
  let largest_non_quorum =
    List.fold_left
      (fun acc s -> if F.is_quorum ~n s then acc else max acc (Pset.cardinal s))
      (-1)
      (Pset.subsets (Pset.full ~n))
  in
  if largest_non_quorum < 0 then n (* everything is a quorum *)
  else n - largest_non_quorum - 1

(* Mirrors the historical [Oracle.sigma_majority] grow loop exactly:
   one [Random.State.int] draw per added member, candidates listed in
   increasing pid order. Byte-identity of seeded majority oracles
   depends on this. *)
let grow_quorum (module F : S) ~n rng ~pool =
  let rec grow q candidates =
    if F.is_quorum ~n q then Some q
    else if Pset.is_empty candidates then None
    else
      let elts = Pset.elements candidates in
      let pick = List.nth elts (Random.State.int rng (List.length elts)) in
      grow (Pset.add pick q) (Pset.remove pick candidates)
  in
  grow Pset.empty pool

(* ---------------------------------------------------------------- *)
(* Instances                                                         *)
(* ---------------------------------------------------------------- *)

let majority : t =
  (module struct
    let name = "majority"
    let shape ~n = if n >= 1 then Ok () else Error "need n >= 1"
    let is_quorum ~n s = Pset.is_majority ~n s
  end)

let super_threshold ~n ~f = (n + f + 2) / 2 (* = ceil ((n + f + 1) / 2) *)

let supermajority ~f : t =
  (module struct
    let name = Printf.sprintf "super:%d" f

    let shape ~n =
      if f < 0 then Error "need f >= 0"
      else if super_threshold ~n ~f > n then
        Error
          (Printf.sprintf "threshold %d exceeds n" (super_threshold ~n ~f))
      else Ok ()

    let is_quorum ~n s = Pset.cardinal s >= super_threshold ~n ~f
  end)

let weighted ~weights : t =
  (module struct
    let name =
      Printf.sprintf "weighted:%s"
        (String.concat "," (List.map string_of_int weights))

    let total = List.fold_left ( + ) 0 weights
    let warr = Array.of_list weights

    let shape ~n =
      if List.length weights <> n then
        Error
          (Printf.sprintf "%d weights for %d processes"
             (List.length weights) n)
      else if List.exists (fun w -> w < 0) weights then
        Error "negative weight"
      else if total <= 0 then Error "zero total weight"
      else Ok ()

    let is_quorum ~n s =
      ignore n;
      2 * Pset.fold (fun p acc -> acc + warr.(p)) s 0 > total
  end)

(* the most square tiling of [n], as the default grid *)
let square_rows n =
  let rec down r = if r >= 1 && n mod r <> 0 then down (r - 1) else max r 1 in
  down (int_of_float (sqrt (float_of_int n)))

let grid ?rows ?cols () : t =
  (module struct
    let name =
      match (rows, cols) with
      | None, None -> "grid"
      | r, c ->
        let s = function None -> "?" | Some v -> string_of_int v in
        Printf.sprintf "grid:%sx%s" (s r) (s c)

    let dims ~n =
      match (rows, cols) with
      | Some r, Some c -> (r, c)
      | Some r, None -> (r, if r >= 1 && n mod r = 0 then n / r else -1)
      | None, Some c -> ((if c >= 1 && n mod c = 0 then n / c else -1), c)
      | None, None ->
        let r = square_rows n in
        (r, n / r)

    let shape ~n =
      let r, c = dims ~n in
      if r < 1 || c < 1 || r * c <> n then
        Error
          (Printf.sprintf
             "a %s grid does not tile %d processes (quorums of a ragged \
              grid need not intersect)"
             (match (rows, cols) with
             | Some r, Some c -> Printf.sprintf "%dx%d" r c
             | _ -> "derived")
             n)
      else Ok ()

    let is_quorum ~n s =
      let r, c = dims ~n in
      r >= 1 && c >= 1
      && List.exists
           (fun row ->
             Pset.subset
               (Pset.of_list (List.init c (fun j -> (row * c) + j)))
               s)
           (List.init r (fun i -> i))
      && List.exists
           (fun col ->
             Pset.subset
               (Pset.of_list (List.init r (fun i -> (i * c) + col)))
               s)
           (List.init c (fun j -> j))
  end)

(* ---------------------------------------------------------------- *)
(* Parsing                                                           *)
(* ---------------------------------------------------------------- *)

let spellings = "majority | super:F | weighted:W0,W1,... | grid[:RxC]"

let of_string s =
  let err () =
    Error (Printf.sprintf "unknown quorum family %S (expected %s)" s spellings)
  in
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "majority" ] -> Ok majority
  | [ "super"; f ] -> (
    match int_of_string_opt f with
    | Some f when f >= 0 -> Ok (supermajority ~f)
    | _ -> err ())
  | [ "weighted"; ws ] -> (
    let parsed =
      List.map
        (fun w -> int_of_string_opt (String.trim w))
        (String.split_on_char ',' ws)
    in
    if List.exists Option.is_none parsed || parsed = [] then err ()
    else Ok (weighted ~weights:(List.map Option.get parsed)))
  | [ "grid" ] -> Ok (grid ())
  | [ "grid"; dims ] -> (
    match String.split_on_char 'x' dims with
    | [ r; c ] -> (
      match (int_of_string_opt r, int_of_string_opt c) with
      | Some r, Some c when r >= 1 && c >= 1 -> Ok (grid ~rows:r ~cols:c ())
      | _ -> err ())
    | _ -> err ())
  | _ -> err ()
