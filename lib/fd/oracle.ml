open Procset

type t = {
  name : string;
  query : Pid.t -> int -> Sim.Fd_value.t;
  stab_time : int;
}

let of_fun ~name ~stab_time query = { name; query; stab_time }

let history ~horizon ~n o = History.of_fun ~n ~horizon o.query

(* Deterministic per-(seed, p, t) randomness. *)
let rng_at ~seed p t = Random.State.make [| seed; (p * 0x9e3779b9) lxor t; t |]

let clamp_stab pattern = function
  | None -> Sim.Failure_pattern.last_crash_time pattern + 1
  | Some s -> max s (Sim.Failure_pattern.last_crash_time pattern + 1)

let pivot pattern =
  let correct = Sim.Failure_pattern.correct pattern in
  if Pset.is_empty correct then
    invalid_arg "Oracle: failure pattern with no correct process";
  Pset.min_elt correct

type omega_prestab = Omega_random | Omega_faulty_first

let omega ?(seed = 0) ?stab_time ?(prestab = Omega_random) pattern =
  let n = Sim.Failure_pattern.n pattern in
  let stab_time = clamp_stab pattern stab_time in
  let leader = pivot pattern in
  let faulty = Sim.Failure_pattern.faulty pattern in
  let prestab_value p t =
    match prestab with
    | Omega_random -> Random.State.int (rng_at ~seed p t) n
    | Omega_faulty_first ->
      if Pset.is_empty faulty then leader
      else Pset.fold (fun q acc -> max q acc) faulty 0
  in
  let query p t =
    if t >= stab_time then Sim.Fd_value.Leader leader
    else Sim.Fd_value.Leader (prestab_value p t)
  in
  { name = "Omega"; query; stab_time }

(* Pivot construction shared by Sigma and the correct side of the
   Sigma-nu family: quorum = {pivot} (∪ {self} if [self_include])
   ∪ a random subset of [pool]. *)
let pivot_quorum ~seed ~self_include pattern p t ~pool =
  let rng = rng_at ~seed p t in
  let base = Pset.singleton (pivot pattern) in
  let base = if self_include then Pset.add p base else base in
  Pset.union base (Pset.random_subset rng pool)

let sigma ?(seed = 0) ?stab_time pattern =
  let n = Sim.Failure_pattern.n pattern in
  let stab_time = clamp_stab pattern stab_time in
  let correct = Sim.Failure_pattern.correct pattern in
  let all = Pset.full ~n in
  let query p t =
    let pool = if t >= stab_time then correct else all in
    Sim.Fd_value.Quorum
      (pivot_quorum ~seed ~self_include:false pattern p t ~pool)
  in
  { name = "Sigma"; query; stab_time }

(* A family quorum grown inside [pool]. [validate]d callers never see
   [None]; the guard is for direct misuse. *)
let family_quorum family ~n rng ~pool =
  match Quorum_family.grow_quorum family ~n rng ~pool with
  | Some q -> q
  | None ->
    invalid_arg
      (Printf.sprintf "Oracle: no %s quorum inside %s"
         (Quorum_family.name family) (Pset.to_string pool))

let sigma_family ?(seed = 0) ?stab_time family pattern =
  let n = Sim.Failure_pattern.n pattern in
  let correct = Sim.Failure_pattern.correct pattern in
  match Quorum_family.validate family ~n ~live:correct with
  | Error _ as e -> e
  | Ok () ->
    let stab_time = clamp_stab pattern stab_time in
    let all = Pset.full ~n in
    let query p t =
      let rng = rng_at ~seed p t in
      let pool = if t >= stab_time then correct else all in
      Sim.Fd_value.Quorum (family_quorum family ~n rng ~pool)
    in
    Ok
      {
        name = Printf.sprintf "Sigma[%s]" (Quorum_family.name family);
        query;
        stab_time;
      }

let sigma_majority ?(seed = 0) ?stab_time pattern =
  (* the historical majority oracle, now the majority instance of the
     family construction — same grow loop, same RNG consumption, so
     seeded histories are unchanged *)
  match sigma_family ~seed ?stab_time Quorum_family.majority pattern with
  | Ok o -> { o with name = "Sigma-majority" }
  | Error _ -> invalid_arg "Oracle.sigma_majority: needs a correct majority"

type faulty_mode = Faulty_arbitrary | Faulty_split

let faulty_quorum ~seed ~mode ~self_include pattern p t =
  let n = Sim.Failure_pattern.n pattern in
  let faulty = Sim.Failure_pattern.faulty pattern in
  let rng = rng_at ~seed p t in
  let base = if self_include then Pset.singleton p else Pset.empty in
  match mode with
  | Faulty_arbitrary -> Pset.union base (Pset.random_subset rng (Pset.full ~n))
  | Faulty_split ->
    if Pset.is_empty faulty then
      (* no faulty side to split to; fall back to the pivot side *)
      Pset.add (pivot pattern) base
    else Pset.union base (Pset.add p (Pset.random_subset rng faulty))

let sigma_nu ?(seed = 0) ?stab_time ?(faulty_mode = Faulty_arbitrary) pattern =
  let n = Sim.Failure_pattern.n pattern in
  let stab_time = clamp_stab pattern stab_time in
  let correct = Sim.Failure_pattern.correct pattern in
  let all = Pset.full ~n in
  let faulty = Sim.Failure_pattern.faulty pattern in
  let query p t =
    if Pset.mem p faulty then
      Sim.Fd_value.Quorum
        (faulty_quorum ~seed ~mode:faulty_mode ~self_include:false pattern p t)
    else
      let pool = if t >= stab_time then correct else all in
      Sim.Fd_value.Quorum
        (pivot_quorum ~seed ~self_include:false pattern p t ~pool)
  in
  { name = "Sigma-nu"; query; stab_time }

let sigma_nu_plus ?(seed = 0) ?stab_time ?(faulty_mode = Faulty_arbitrary)
    pattern =
  let n = Sim.Failure_pattern.n pattern in
  let stab_time = clamp_stab pattern stab_time in
  let correct = Sim.Failure_pattern.correct pattern in
  let all = Pset.full ~n in
  let faulty = Sim.Failure_pattern.faulty pattern in
  let query p t =
    if Pset.mem p faulty then
      (* Self-including, and either pivot-anchored (intersects every
         correct quorum) or faulty-only (conditional nonintersection
         holds). *)
      let quorum =
        match faulty_mode with
        | Faulty_split ->
          faulty_quorum ~seed ~mode:Faulty_split ~self_include:true pattern p
            t
        | Faulty_arbitrary ->
          if Random.State.bool (rng_at ~seed (p + 101) t) then
            faulty_quorum ~seed ~mode:Faulty_split ~self_include:true pattern
              p t
          else
            Pset.add p
              (pivot_quorum ~seed ~self_include:true pattern p t ~pool:all)
      in
      Sim.Fd_value.Quorum quorum
    else
      let pool = if t >= stab_time then correct else all in
      Sim.Fd_value.Quorum
        (pivot_quorum ~seed ~self_include:true pattern p t ~pool)
  in
  { name = "Sigma-nu+"; query; stab_time }

(* Family-parameterized Sigma-nu: correct processes output family
   quorums (grown inside [correct] after stabilization, inside [Pi]
   before); any two family quorums intersect, so the correct-only
   intersection clause holds a fortiori, and post-stabilization
   quorums are all-correct (completeness). Faulty processes take the
   split escape — subsets of [faulty(F)] around themselves — which
   Sigma-nu leaves unconstrained. *)
let sigma_nu_family ?(seed = 0) ?stab_time family pattern =
  let n = Sim.Failure_pattern.n pattern in
  let correct = Sim.Failure_pattern.correct pattern in
  match Quorum_family.validate family ~n ~live:correct with
  | Error _ as e -> e
  | Ok () ->
    let stab_time = clamp_stab pattern stab_time in
    let all = Pset.full ~n in
    let faulty = Sim.Failure_pattern.faulty pattern in
    let query p t =
      if Pset.mem p faulty then
        Sim.Fd_value.Quorum
          (faulty_quorum ~seed ~mode:Faulty_split ~self_include:false pattern
             p t)
      else
        let pool = if t >= stab_time then correct else all in
        Sim.Fd_value.Quorum (family_quorum family ~n (rng_at ~seed p t) ~pool)
    in
    Ok
      {
        name = Printf.sprintf "Sigma-nu[%s]" (Quorum_family.name family);
        query;
        stab_time;
      }

(* Family-parameterized Sigma-nu+. Correct quorums are family quorums
   with the owner added (monotonicity keeps them quorums) —
   self-inclusion. Faulty quorums are always the faulty-only escape
   [{p} ∪ subset(faulty)]: unlike the pivot construction, family
   quorums of correct processes share no fixed anchor, so a faulty
   quorum touching the correct side could miss one of them — only the
   no-correct-member branch keeps conditional nonintersection sound
   for every family. *)
let sigma_nu_plus_family ?(seed = 0) ?stab_time family pattern =
  let n = Sim.Failure_pattern.n pattern in
  let correct = Sim.Failure_pattern.correct pattern in
  match Quorum_family.validate family ~n ~live:correct with
  | Error _ as e -> e
  | Ok () ->
    let stab_time = clamp_stab pattern stab_time in
    let all = Pset.full ~n in
    let faulty = Sim.Failure_pattern.faulty pattern in
    let query p t =
      if Pset.mem p faulty then
        Sim.Fd_value.Quorum
          (faulty_quorum ~seed ~mode:Faulty_split ~self_include:true pattern
             p t)
      else
        let pool = if t >= stab_time then correct else all in
        Sim.Fd_value.Quorum
          (Pset.add p (family_quorum family ~n (rng_at ~seed p t) ~pool))
    in
    Ok
      {
        name = Printf.sprintf "Sigma-nu+[%s]" (Quorum_family.name family);
        query;
        stab_time;
      }

let perfect pattern =
  let n = Sim.Failure_pattern.n pattern in
  let stab_time = Sim.Failure_pattern.last_crash_time pattern + 1 in
  let query _p t =
    Sim.Fd_value.Quorum
      (Pset.diff (Pset.full ~n) (Sim.Failure_pattern.crashed_set pattern t))
  in
  { name = "Perfect"; query; stab_time }

let perfect_plus pattern =
  let n = Sim.Failure_pattern.n pattern in
  let stab_time = Sim.Failure_pattern.last_crash_time pattern + 1 in
  let query p t =
    Sim.Fd_value.Quorum
      (Pset.add p
         (Pset.diff (Pset.full ~n)
            (Sim.Failure_pattern.crashed_set pattern t)))
  in
  { name = "Perfect+"; query; stab_time }

let eventually_strong ?(seed = 0) ?stab_time pattern =
  let n = Sim.Failure_pattern.n pattern in
  let stab_time = clamp_stab pattern stab_time in
  let query p t =
    if t >= stab_time then
      Sim.Fd_value.Suspects (Sim.Failure_pattern.crashed_set pattern t)
    else
      (* arbitrary early suspicions — but never everybody at once, so a
         coordinator-based algorithm is not starved of all peers *)
      let rng = rng_at ~seed (p + 57) t in
      Sim.Fd_value.Suspects
        (Pset.remove
           (Random.State.int rng n)
           (Pset.random_subset rng (Pset.full ~n)))
  in
  { name = "<>S"; query; stab_time }

let pair d d' =
  {
    name = Printf.sprintf "(%s, %s)" d.name d'.name;
    query = (fun p t -> Sim.Fd_value.Pair (d.query p t, d'.query p t));
    stab_time = max d.stab_time d'.stab_time;
  }
