(** Failure-detector oracles: history generators.

    An oracle produces, for a given failure pattern [F], one history
    [H ∈ D(F)] of a detector [D], presented as a deterministic query
    function [H(p, t)]. Constructions are by-design correct (each
    documents why it satisfies its detector's specification) and every
    oracle is additionally re-validated by the independent checkers of
    {!Check} in the test suite.

    All oracles are deterministic functions of [(seed, p, t)], so runs
    using them are reproducible. Each oracle declares a stabilization
    time [stab_time]: after it, the "eventually" clauses of its
    detector hold permanently. It is always at least one tick past the
    pattern's last crash. *)

type t = {
  name : string;
  query : Procset.Pid.t -> int -> Sim.Fd_value.t;  (** [H(p, t)] *)
  stab_time : int;
      (** all "eventually" clauses hold from this time onwards *)
}

val of_fun :
  name:string ->
  stab_time:int ->
  (Procset.Pid.t -> int -> Sim.Fd_value.t) ->
  t
(** Wrap an arbitrary query function. *)

val history : horizon:int -> n:int -> t -> History.t
(** Densely sample the oracle up to [horizon]. *)

(** Pre-stabilization behaviour of {!omega}. *)
type omega_prestab =
  | Omega_random  (** trust pseudo-random processes before stabilizing *)
  | Omega_faulty_first
      (** trust the highest faulty process before stabilizing (the
          adversarial behaviour behind the contamination scenario of
          Section 6.3); falls back to the leader if no process is
          faulty *)

val omega :
  ?seed:int -> ?stab_time:int -> ?prestab:omega_prestab ->
  Sim.Failure_pattern.t -> t
(** The leader detector. After stabilization every process trusts the
    smallest correct process. [stab_time] is clamped to be after the
    last crash. *)

val sigma : ?seed:int -> ?stab_time:int -> Sim.Failure_pattern.t -> t
(** The quorum detector Sigma, pivot construction: every quorum output
    anywhere, at any time, contains the smallest correct process, so
    any two intersect; after stabilization the quorums of correct
    processes are subsets of [correct(F)] containing the pivot. *)

val sigma_family :
  ?seed:int ->
  ?stab_time:int ->
  Procset.Quorum_family.t ->
  Sim.Failure_pattern.t ->
  (t, Procset.Quorum_family.error) result
(** Sigma over an arbitrary {!Procset.Quorum_family}: every quorum
    output anywhere is a family quorum (any two intersect — the
    uniform intersection law of the family algebra); after
    stabilization the quorums of correct processes are grown inside
    [correct(F)]. Returns the typed {!Procset.Quorum_family.error}
    when the family's shape does not fit [n] or no quorum survives in
    [correct(F)] — the condition {!sigma_majority} used to turn into
    an uncaught [Invalid_argument]. *)

val sigma_majority :
  ?seed:int -> ?stab_time:int -> Sim.Failure_pattern.t -> t
(** Sigma by majorities — [sigma_family Quorum_family.majority] with
    the historical name and RNG consumption, so seeded histories are
    byte-identical to pre-family releases: every quorum is a majority
    of [Pi] (any two majorities intersect); after stabilization the
    quorums of correct processes are majorities consisting of correct
    processes — which requires a correct majority. Raises
    [Invalid_argument] otherwise (prefer {!sigma_family}, which
    returns the typed error instead). This mirrors the from-scratch
    construction of Theorem 7.1 (IF). *)

(** Behaviour of faulty processes' quorums under Sigma-nu family
    oracles — the clause Sigma-nu leaves unconstrained. *)
type faulty_mode =
  | Faulty_arbitrary
      (** pseudo-random subsets of [Pi], occasionally empty: anything
          goes *)
  | Faulty_split
      (** subsets of [faulty(F)] only — maximally disjoint from the
          correct side; this is the adversary of the contamination
          scenario (Section 6.3) and of Theorem 7.1 (ONLY IF) *)

val sigma_nu :
  ?seed:int -> ?stab_time:int -> ?faulty_mode:faulty_mode ->
  Sim.Failure_pattern.t -> t
(** The nonuniform quorum detector Sigma-nu: correct processes use the
    pivot construction of {!sigma}; faulty processes behave per
    [faulty_mode] (default [Faulty_arbitrary]). *)

val sigma_nu_plus :
  ?seed:int -> ?stab_time:int -> ?faulty_mode:faulty_mode ->
  Sim.Failure_pattern.t -> t
(** Sigma-nu+ (Section 6.1): like {!sigma_nu} but additionally
    self-including (every quorum contains its owner), and quorums of
    faulty processes either contain the pivot (hence intersect all
    correct quorums) or consist of faulty processes only (satisfying
    conditional nonintersection). With [Faulty_split], faulty
    processes always take the faulty-only branch when [faulty(F)] is
    nonempty. *)

val sigma_nu_family :
  ?seed:int ->
  ?stab_time:int ->
  Procset.Quorum_family.t ->
  Sim.Failure_pattern.t ->
  (t, Procset.Quorum_family.error) result
(** Sigma-nu over a quorum family: correct processes output family
    quorums (inside [correct(F)] after stabilization), which pairwise
    intersect by the family's uniform intersection law — so the
    correct-only clause of Sigma-nu holds a fortiori; faulty
    processes take the [Faulty_split] escape (subsets of [faulty(F)]
    around themselves), which Sigma-nu leaves unconstrained. Typed
    error as for {!sigma_family}. *)

val sigma_nu_plus_family :
  ?seed:int ->
  ?stab_time:int ->
  Procset.Quorum_family.t ->
  Sim.Failure_pattern.t ->
  (t, Procset.Quorum_family.error) result
(** Sigma-nu+ over a quorum family: like {!sigma_nu_family} but
    self-including (the owner is added to each family quorum —
    monotonicity keeps it a quorum), and faulty processes always
    output faulty-only quorums: family quorums share no fixed pivot,
    so only the no-correct-member branch of conditional
    nonintersection is sound for every family. *)

val perfect : Sim.Failure_pattern.t -> t
(** Perfect information as a quorum detector: [H(p, t) = Pi - F(t)].
    Satisfies Sigma (hence Sigma-nu). *)

val perfect_plus : Sim.Failure_pattern.t -> t
(** [H(p, t) = (Pi - F(t)) ∪ {p}] — perfect information made
    self-including; satisfies Sigma-nu+ (every quorum contains all of
    [correct(F)], so all quorums intersect). *)

val eventually_strong :
  ?seed:int -> ?stab_time:int -> Sim.Failure_pattern.t -> t
(** The eventually-strong detector [<>S] of Chandra–Toueg [CT96],
    with [Suspects] range: strong completeness (eventually every
    faulty process is permanently suspected by every correct process)
    and eventual weak accuracy (there is a time after which some
    correct process is never suspected by any correct process). Before
    stabilization, arbitrary suspicions; afterwards, exactly the
    crashed set. *)

val pair : t -> t -> t
(** [pair d d'] is the product detector [(D, D')] of Section 2.3:
    queries both and outputs [Pair]. *)
