(** The Mostéfaoui–Raynal leader-based consensus algorithm and its
    quorum-driven generalization (Section 6.3 of the paper, after
    [MR01]).

    Processes run asynchronous rounds of three phases. Phase 1: send a
    LEAD message with the current estimate, wait for the LEAD message
    of the process currently output by Omega and adopt its estimate.
    Phase 2: send a REPORT, collect reports from a {e quorum}; if they
    unanimously carry [v], the phase-3 proposal is [v], otherwise "?".
    Phase 3: send the proposal, collect proposals from a quorum; adopt
    any non-"?" value seen and decide if the quorum unanimously
    proposed a non-"?" value.

    The instances differ only in what "quorum" means:

    - {!Majority} waits for any majority of processes (the original
      [MR01] algorithm, correct for uniform consensus when a majority
      of processes are correct);
    - {!family} waits for any set of senders that is a quorum of the
      given {!Procset.Quorum_family} — {!Majority} is exactly the
      majority-family instance, kept as a separate module for
      byte-compatibility of seeded runs;
    - {!With_quorum} waits for all members of the set currently output
      by the quorum component of its failure detector, re-read at
      every step. Driven by a Sigma oracle this solves uniform
      consensus in any environment (footnote 5 of the paper). Driven
      by a Sigma-nu oracle it is exactly the {e naive substitution}
      whose contamination scenario (Section 6.3) motivates [A_nuc] —
      and our experiment E6 exhibits its nonuniform-agreement
      violation.

    The failure detector value supplied to each step must be
    [Leader l] or [Pair (Leader l, Quorum q)]; {!With_quorum} requires
    the pair form. *)

type message =
  | Lead of { round : int; est : Value.t }
  | Rep of { round : int; est : Value.t }
  | Prop of { round : int; value : Value.t option }

val pp_message : Format.formatter -> message -> unit
val equal_message : message -> message -> bool

(** Observable position of a process inside its round (used by
    scripted adversaries to time oracle changes). *)
type phase_view = Phase_start | Phase_lead | Phase_rep | Phase_prop

module type S = sig
  include
    Sim.Automaton.S with type input = Value.t and type message = message

  val decision : state -> Value.t option
  (** The decided value, if this process has decided. *)

  val decision_round : state -> int option
  (** The round in which the decision was taken. *)

  val round : state -> int
  (** The current round number [k_p]. *)

  val estimate : state -> Value.t
  (** The current estimate [x_p]. *)

  val phase : state -> phase_view
  (** Which wait the process is currently in. *)
end

module Majority : S
(** Quorums are majorities of [Pi]. *)

module With_quorum : S
(** Quorums are read from the failure detector at every step. *)

val family : Procset.Quorum_family.t -> (module S)
(** MR over an arbitrary quorum family: each wait is satisfied by any
    set of distinct senders that [is_quorum], and the decision rule
    requires a family quorum of identical non-"?" proposals.
    Uniform agreement needs the family's pairwise intersection law
    (any two quorums meet in a process that reported/proposed a single
    value per round) — the law the qcheck suite pins for every shipped
    family. [family Quorum_family.majority] computes the same
    histories as {!Majority} (a set is a majority iff it is a
    majority-family quorum), but the algorithm name differs. *)
