open Procset

type message =
  | Lead of { round : int; est : Value.t }
  | Rep of { round : int; est : Value.t }
  | Prop of { round : int; value : Value.t option }

let pp_message fmt = function
  | Lead { round; est } -> Format.fprintf fmt "LEAD(%d, %a)" round Value.pp est
  | Rep { round; est } -> Format.fprintf fmt "REP(%d, %a)" round Value.pp est
  | Prop { round; value } ->
    Format.fprintf fmt "PROP(%d, %a)" round Value.pp_opt value

let equal_message a b =
  match a, b with
  | Lead x, Lead y -> x.round = y.round && Value.equal x.est y.est
  | Rep x, Rep y -> x.round = y.round && Value.equal x.est y.est
  | Prop x, Prop y ->
    x.round = y.round && Option.equal Value.equal x.value y.value
  | (Lead _ | Rep _ | Prop _), _ -> false

type phase_view = Phase_start | Phase_lead | Phase_rep | Phase_prop

module type S = sig
  include
    Sim.Automaton.S with type input = Value.t and type message = message

  val decision : state -> Value.t option
  val decision_round : state -> int option
  val round : state -> int
  val estimate : state -> Value.t
  val phase : state -> phase_view
end

module Imap = Map.Make (Int)

(* Per-round, per-sender message stores. *)
type 'a store = 'a Imap.t Imap.t

let store_add round sender v s =
  let inner = Option.value ~default:Imap.empty (Imap.find_opt round s) in
  Imap.add round (Imap.add sender v inner) s

let store_round round s =
  Option.value ~default:Imap.empty (Imap.find_opt round s)

type phase = Start | Wait_lead | Wait_rep | Wait_prop

type state = {
  x : Value.t;
  k : int;
  phase : phase;
  decided : (Value.t * int) option;
  leads : Value.t store;
  reps : Value.t store;
  props : Value.t option store;
}

let leader_of_fd name = function
  | Sim.Fd_value.Leader l -> l
  | Sim.Fd_value.Pair (Sim.Fd_value.Leader l, _) -> l
  | v ->
    invalid_arg
      (Format.asprintf "%s: failure detector value %a has no leader" name
         Sim.Fd_value.pp v)

let quorum_of_fd name = function
  | Sim.Fd_value.Pair (_, Sim.Fd_value.Quorum q) -> q
  | Sim.Fd_value.Quorum q -> q
  | v ->
    invalid_arg
      (Format.asprintf "%s: failure detector value %a has no quorum" name
         Sim.Fd_value.pp v)

module type CONFIG = sig
  val algorithm_name : string
  val mode : [ `Majority | `Fd_quorum | `Family of Quorum_family.t ]
end

module Make (C : CONFIG) : S = struct
  type input = Value.t
  type nonrec message = message
  type nonrec state = state

  let name = C.algorithm_name

  let initial ~n:_ ~self:_ x =
    {
      x;
      k = 0;
      phase = Start;
      decided = None;
      leads = Imap.empty;
      reps = Imap.empty;
      props = Imap.empty;
    }

  let broadcast ~n msg = List.map (fun q -> (q, msg)) (Pid.all ~n)

  let record st = function
    | None -> st
    | Some env -> (
      match env.Sim.Envelope.payload with
      | Lead { round; est } ->
        { st with leads = store_add round env.Sim.Envelope.src est st.leads }
      | Rep { round; est } ->
        { st with reps = store_add round env.Sim.Envelope.src est st.reps }
      | Prop { round; value } ->
        { st with props = store_add round env.Sim.Envelope.src value st.props })

  (* [collected ~n st round store d] decides whether the wait of the
     current phase is satisfied: under `Majority, a majority of
     distinct senders; under `Family, a family quorum of distinct
     senders; under `Fd_quorum, every member of the quorum currently
     output by the detector. Returns the bindings to consider. *)
  let collected ~n round store d =
    let inner = store_round round store in
    match C.mode with
    | `Majority ->
      if 2 * Imap.cardinal inner > n then Some (Imap.bindings inner)
      else None
    | `Family fam ->
      let senders =
        Imap.fold (fun sender _ acc -> Pset.add sender acc) inner Pset.empty
      in
      if Quorum_family.is_quorum fam ~n senders then
        Some (Imap.bindings inner)
      else None
    | `Fd_quorum ->
      let q = quorum_of_fd C.algorithm_name d in
      if Pset.is_empty q then None
      else if Pset.for_all (fun m -> Imap.mem m inner) q then
        Some
          (List.filter
             (fun (sender, _) -> Pset.mem sender q)
             (Imap.bindings inner))
      else None

  (* Decision rule on the collected phase-3 proposals. *)
  let decide_on ~n collected_props =
    let non_unknown =
      List.filter_map
        (fun (sender, v) -> Option.map (fun v -> (sender, v)) v)
        collected_props
    in
    (* Adopt the non-"?" value carried by the largest sender id; under
       Sigma(-like) quorums all non-"?" values coincide (property (A)),
       so the tie-break is only observable under a Sigma-nu oracle. *)
    let adopt =
      List.fold_left
        (fun acc (sender, v) ->
          match acc with
          | Some (s, _) when s > sender -> acc
          | _ -> Some (sender, v))
        None non_unknown
      |> Option.map snd
    in
    let decide =
      match C.mode with
      | `Majority -> (
        (* a majority of proposals for the same v <> ? *)
        match non_unknown with
        | (_, v) :: _ ->
          let count =
            List.length
              (List.filter (fun (_, v') -> Value.equal v v') non_unknown)
          in
          if 2 * count > n then Some v else None
        | [] -> None)
      | `Family fam ->
        (* a family quorum of proposals for the same v <> ?; at most
           one value can be quorum-supported (any two family quorums
           intersect and each sender proposes once per round), so the
           scan order is immaterial *)
        let support v =
          List.fold_left
            (fun acc (sender, v') ->
              if Value.equal v v' then Pset.add sender acc else acc)
            Pset.empty non_unknown
        in
        List.find_map
          (fun (_, v) ->
            if Quorum_family.is_quorum fam ~n (support v) then Some v
            else None)
          non_unknown
      | `Fd_quorum -> (
        (* the same v <> ? from every member of the collected quorum *)
        match non_unknown with
        | (_, v) :: rest
          when List.length non_unknown = List.length collected_props
               && List.for_all (fun (_, v') -> Value.equal v v') rest ->
          Some v
        | _ -> None)
    in
    (adopt, decide)

  (* Advance the phase machine as far as the received messages allow,
     accumulating sends. *)
  let rec advance ~n ~self st d sends =
    match st.phase with
    | Start ->
      let k = 1 in
      let st = { st with k; phase = Wait_lead } in
      advance ~n ~self st d (broadcast ~n (Lead { round = k; est = st.x }) @ sends)
    | Wait_lead -> (
      let l = leader_of_fd C.algorithm_name d in
      match Imap.find_opt l (store_round st.k st.leads) with
      | None -> (st, sends)
      | Some v ->
        let st = { st with x = v; phase = Wait_rep } in
        advance ~n ~self st d
          (broadcast ~n (Rep { round = st.k; est = st.x }) @ sends))
    | Wait_rep -> (
      match collected ~n st.k st.reps d with
      | None -> (st, sends)
      | Some reports ->
        let proposal =
          match reports with
          | [] -> None
          | (_, v0) :: rest ->
            if List.for_all (fun (_, v) -> Value.equal v v0) rest then
              Some v0
            else None
        in
        let st = { st with phase = Wait_prop } in
        advance ~n ~self st d
          (broadcast ~n (Prop { round = st.k; value = proposal }) @ sends))
    | Wait_prop -> (
      match collected ~n st.k st.props d with
      | None -> (st, sends)
      | Some proposals ->
        let adopt, decide = decide_on ~n proposals in
        let x = Option.value ~default:st.x adopt in
        let decided =
          match st.decided, decide with
          | None, Some v -> Some (v, st.k)
          | already, _ -> already
        in
        let k = st.k + 1 in
        let st = { st with x; decided; k; phase = Wait_lead } in
        advance ~n ~self st d
          (broadcast ~n (Lead { round = k; est = x }) @ sends))

  let step ~n ~self st received d =
    let st = record st received in
    let st, sends = advance ~n ~self st d [] in
    (st, List.rev sends)

  let pp_message = pp_message
  let equal_message = equal_message
  let decision st = Option.map fst st.decided
  let decision_round st = Option.map snd st.decided
  let round st = st.k
  let estimate st = st.x

  let phase st =
    match st.phase with
    | Start -> Phase_start
    | Wait_lead -> Phase_lead
    | Wait_rep -> Phase_rep
    | Wait_prop -> Phase_prop
end

module Majority = Make (struct
  let algorithm_name = "MR-majority"
  let mode = `Majority
end)

module With_quorum = Make (struct
  let algorithm_name = "MR-quorum"
  let mode = `Fd_quorum
end)

let family fam : (module S) =
  (module Make (struct
    let algorithm_name = Printf.sprintf "MR[%s]" (Quorum_family.name fam)
    let mode = `Family fam
  end))
