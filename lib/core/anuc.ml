open Procset

type message =
  | Lead of { round : int; est : Consensus.Value.t; hist : Qhist.t }
  | Rep of { round : int; est : Consensus.Value.t }
  | Prop of { round : int; value : Consensus.Value.t option; hist : Qhist.t }
  | Saw of { quorum : Pset.t }
  | Ack of { quorum : Pset.t; round : int }

type phase_view = Phase_start | Phase_lead | Phase_rep | Phase_prop

let pp_message fmt = function
  | Lead { round; est; _ } ->
    Format.fprintf fmt "LEAD(%d, %a, H)" round Consensus.Value.pp est
  | Rep { round; est } -> Format.fprintf fmt "REP(%d, %a)" round Consensus.Value.pp est
  | Prop { round; value; _ } ->
    Format.fprintf fmt "PROP(%d, %a, H)" round Consensus.Value.pp_opt value
  | Saw { quorum } -> Format.fprintf fmt "SAW(%a)" Pset.pp quorum
  | Ack { quorum; round } ->
    Format.fprintf fmt "ACK(%a, %d)" Pset.pp quorum round

let equal_message a b =
  match a, b with
  | Lead x, Lead y ->
    x.round = y.round && Consensus.Value.equal x.est y.est && Qhist.equal x.hist y.hist
  | Rep x, Rep y -> x.round = y.round && Consensus.Value.equal x.est y.est
  | Prop x, Prop y ->
    x.round = y.round
    && Option.equal Consensus.Value.equal x.value y.value
    && Qhist.equal x.hist y.hist
  | Saw x, Saw y -> Pset.equal x.quorum y.quorum
  | Ack x, Ack y -> Pset.equal x.quorum y.quorum && x.round = y.round
  | (Lead _ | Rep _ | Prop _ | Saw _ | Ack _), _ -> false

module Imap = Map.Make (Int)

module Qmap = Map.Make (struct
  type t = Pset.t

  let compare = Pset.compare
end)

(* round -> sender -> payload *)
type 'a store = 'a Imap.t Imap.t

let store_add round sender v s =
  let inner = Option.value ~default:Imap.empty (Imap.find_opt round s) in
  Imap.add round (Imap.add sender v inner) s

let store_round round s =
  Option.value ~default:Imap.empty (Imap.find_opt round s)

module type S = sig
  include
    Sim.Automaton.S
      with type input = Consensus.Value.t
       and type message = message

  val decision : state -> Consensus.Value.t option
  val decision_round : state -> int option
  val round : state -> int
  val estimate : state -> Consensus.Value.t
  val phase : state -> phase_view
  val history : state -> Qhist.t
  val considered_faulty : self:Procset.Pid.t -> state -> Procset.Pset.t
end

(* Mechanism switches, for the ablation study: the full algorithm
   enables both. Disabling either loses the corresponding safety
   guarantee (Section 6.3 / Lemmas 6.24-6.25) and exists purely so the
   experiments can demonstrate that loss. [quorum_guard] optionally
   restricts which detector-supplied quorums a process will use to a
   structural quorum family; [None] (all named instances) is the
   paper's algorithm, byte-identical to pre-family releases. *)
module type CONFIG = sig
  val use_distrust : bool
  val use_awareness : bool
  val quorum_guard : Quorum_family.t option
  val variant_name : string
end

module Make (C : CONFIG) = struct
  type nonrec message = message

  let pp_message = pp_message
  let equal_message = equal_message

  type phase = Start | Wait_lead | Wait_rep | Wait_prop

  type state = {
    x : Consensus.Value.t;
    k : int;
    hist : Qhist.t;
    phase : phase;
    decided : (Consensus.Value.t * int) option;
    leads : (Consensus.Value.t * Qhist.t) store;
    reps : Consensus.Value.t store;
    props : (Consensus.Value.t option * Qhist.t) store;
    sent_saw : Qset.t;  (** the [sent_p] flags (Fig. 4, line 8) *)
    acks : Pset.t Qmap.t;  (** [Acks_p] *)
    ack_round : int Qmap.t;  (** [round_p] *)
    seen : int Qmap.t;  (** [seen_p]; absence encodes infinity *)
  }

  type input = Consensus.Value.t

  let name = C.variant_name

  let initial ~n:_ ~self:_ x =
    {
      x;
      k = 0;
      hist = Qhist.empty;
      phase = Start;
      decided = None;
      leads = Imap.empty;
      reps = Imap.empty;
      props = Imap.empty;
      sent_saw = Qset.empty;
      acks = Qmap.empty;
      ack_round = Qmap.empty;
      seen = Qmap.empty;
    }

  let fd_components = function
    | Sim.Fd_value.Pair (Sim.Fd_value.Leader l, Sim.Fd_value.Quorum q) -> (l, q)
    | v ->
      invalid_arg
        (Format.asprintf
           "A_nuc: failure detector value %a is not (leader, quorum)"
           Sim.Fd_value.pp v)

  let broadcast ~n msg = List.map (fun q -> (q, msg)) (Pid.all ~n)

  (* The upon-receipt handlers of Fig. 4 (lines 35-42) run as soon as a
     message is delivered; receipt of a SAW message answers with an ACK
     carrying the current round. *)
  let record st = function
    | None -> (st, [])
    | Some env -> (
      let src = env.Sim.Envelope.src in
      match env.Sim.Envelope.payload with
      | Lead { round; est; hist } ->
        ({ st with leads = store_add round src (est, hist) st.leads }, [])
      | Rep { round; est } ->
        ({ st with reps = store_add round src est st.reps }, [])
      | Prop { round; value; hist } ->
        ({ st with props = store_add round src (value, hist) st.props }, [])
      | Saw { quorum } ->
        let st = { st with hist = Qhist.add st.hist src quorum } in
        (st, [ (src, Ack { quorum; round = st.k }) ])
      | Ack { quorum; round } ->
        let acks =
          Pset.add src
            (Option.value ~default:Pset.empty (Qmap.find_opt quorum st.acks))
        in
        let rmax =
          max round
            (Option.value ~default:0 (Qmap.find_opt quorum st.ack_round))
        in
        let seen =
          if Pset.equal acks quorum then Qmap.add quorum rmax st.seen
          else st.seen
        in
        ( {
            st with
            acks = Qmap.add quorum acks st.acks;
            ack_round = Qmap.add quorum rmax st.ack_round;
            seen;
          },
          [] ))

  (* get_quorum (Fig. 5, lines 47-50): read the Sigma-nu+ component and
     record the quorum in the process's own history. *)
  let get_quorum ~self st d =
    let _, q = fd_components d in
    ({ st with hist = Qhist.add st.hist self q }, q)

  let distrusts ~self ~n st q = Qhist.distrusts ~self ~n st.hist q

  (* Guarded waits refuse non-family quorums exactly as they refuse
     empty ones: stay in the loop and re-read the detector. Safety is
     unaffected (a skipped wait decides nothing); liveness is kept by
     family-matched oracles, whose post-stabilization quorums at
     correct processes are family quorums (Sigma-nu+ adds the owner,
     and families are monotone). *)
  let guard_ok ~n q =
    match C.quorum_guard with
    | None -> true
    | Some fam -> Quorum_family.is_quorum fam ~n q

  (* Advance the round machine as far as received messages allow. *)
  let rec advance ~n ~self st d sends =
    match st.phase with
    | Start ->
      let k = 1 in
      let st = { st with k; phase = Wait_lead } in
      advance ~n ~self st d
        (broadcast ~n (Lead { round = k; est = st.x; hist = st.hist }) @ sends)
    | Wait_lead -> (
      let l, _ = fd_components d in
      match Imap.find_opt l (store_round st.k st.leads) with
      | None -> (st, sends)
      | Some (v, hist_l) ->
        let st = { st with hist = Qhist.import st.hist hist_l } in
        let st =
          if C.use_distrust && distrusts ~self ~n st l then st
          else { st with x = v }
        in
        let st = { st with phase = Wait_rep } in
        advance ~n ~self st d
          (broadcast ~n (Rep { round = st.k; est = st.x }) @ sends))
    | Wait_rep -> (
      let st, q = get_quorum ~self st d in
      let inner = store_round st.k st.reps in
      if
        Pset.is_empty q
        || (not (guard_ok ~n q))
        || not (Pset.for_all (fun m -> Imap.mem m inner) q)
      then (st, sends)
      else
        let values = Pset.fold (fun m acc -> Imap.find m inner :: acc) q [] in
        let proposal =
          match values with
          | [] -> None
          | v0 :: rest ->
            if List.for_all (Consensus.Value.equal v0) rest then Some v0 else None
        in
        let st = { st with phase = Wait_prop } in
        advance ~n ~self st d
          (broadcast ~n
             (Prop { round = st.k; value = proposal; hist = st.hist })
          @ sends))
    | Wait_prop -> (
      let st, q = get_quorum ~self st d in
      let inner = store_round st.k st.props in
      if
        Pset.is_empty q
        || (not (guard_ok ~n q))
        || not (Pset.for_all (fun m -> Imap.mem m inner) q)
      then (st, sends)
      else begin
        (* line 27: import the histories carried by the proposals *)
        let st =
          Pset.fold
            (fun m st ->
              let _, hist_m = Imap.find m inner in
              { st with hist = Qhist.import st.hist hist_m })
            q st
        in
        (* line 28: the until-clause; on failure stay in the loop *)
        if C.use_distrust && Pset.exists (fun m -> distrusts ~self ~n st m) q
        then (st, sends)
        else begin
          let members =
            Pset.fold (fun m acc -> (m, fst (Imap.find m inner)) :: acc) q []
          in
          let non_unknown =
            List.filter_map
              (fun (m, v) -> Option.map (fun v -> (m, v)) v)
              members
          in
          (* line 29: adopt a non-"?" value (largest sender as the
             deterministic tie-break; under valid histories all non-"?"
             proposals agree, Lemma 6.23) *)
          let adopt =
            List.fold_left
              (fun acc (m, v) ->
                match acc with
                | Some (m', _) when m' > m -> acc
                | _ -> Some (m, v))
              None non_unknown
            |> Option.map snd
          in
          let x = Option.value ~default:st.x adopt in
          (* line 30: unanimous non-"?" value and seen_p[Q] < k_p *)
          let unanimous =
            match non_unknown with
            | (_, v) :: rest
              when List.length non_unknown = List.length members
                   && List.for_all (fun (_, v') -> Consensus.Value.equal v v') rest ->
              Some v
            | _ -> None
          in
          let seen_ok =
            (not C.use_awareness)
            ||
            match Qmap.find_opt q st.seen with
            | Some s -> s < st.k
            | None -> false
          in
          let decided =
            match st.decided, unanimous with
            | None, Some _ when seen_ok -> Some (x, st.k)
            | already, _ -> already
          in
          (* lines 31-33: first use of this quorum to collect proposals *)
          let saw_sends, sent_saw =
            if Qset.mem q st.sent_saw then ([], st.sent_saw)
            else
              ( Pset.fold (fun m acc -> (m, Saw { quorum = q }) :: acc) q [],
                Qset.add q st.sent_saw )
          in
          let k = st.k + 1 in
          let st = { st with x; decided; sent_saw; k; phase = Wait_lead } in
          advance ~n ~self st d
            (broadcast ~n (Lead { round = k; est = x; hist = st.hist })
            @ saw_sends @ sends)
        end
      end)

  let step ~n ~self st received d =
    let st, ack_sends = record st received in
    let st, sends = advance ~n ~self st d [] in
    (st, ack_sends @ List.rev sends)

  let decision st = Option.map fst st.decided
  let decision_round st = Option.map snd st.decided
  let round st = st.k
  let estimate st = st.x

  let phase st =
    match st.phase with
    | Start -> Phase_start
    | Wait_lead -> Phase_lead
    | Wait_rep -> Phase_rep
    | Wait_prop -> Phase_prop

  let history st = st.hist
  let considered_faulty ~self st = Qhist.considered_faulty ~self st.hist

end

module Full = Make (struct
  let use_distrust = true
  let use_awareness = true
  let quorum_guard = None
  let variant_name = "A_nuc"
end)

include (Full : S with type message := message)

module Without_distrust = Make (struct
  let use_distrust = false
  let use_awareness = true
  let quorum_guard = None
  let variant_name = "A_nuc[-distrust]"
end)

module Without_awareness = Make (struct
  let use_distrust = true
  let use_awareness = false
  let quorum_guard = None
  let variant_name = "A_nuc[-awareness]"
end)

module Without_both = Make (struct
  let use_distrust = false
  let use_awareness = false
  let quorum_guard = None
  let variant_name = "A_nuc[-distrust,-awareness]"
end)

let with_family fam : (module S) =
  (module Make (struct
    let use_distrust = true
    let use_awareness = true
    let quorum_guard = Some fam
    let variant_name = Printf.sprintf "A_nuc[%s]" (Quorum_family.name fam)
  end))
