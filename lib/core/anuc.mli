(** [A_nuc]: nonuniform consensus from [(Omega, Sigma-nu+)]
    (Figs. 4–5 of the paper, Theorem 6.27).

    The skeleton is the Mostéfaoui–Raynal round structure
    (LEAD / REPORT / PROPOSE), with quorums supplied by the Sigma-nu+
    component of the failure detector, hardened by two mechanisms that
    defeat contamination (Section 6.3):

    - {b distrust}: each process accumulates a quorum history [H_p]
      (its own quorums and every quorum it hears about in LEAD, PROP
      and SAW messages); [p] refuses to adopt a leader estimate from,
      or to finish a proposal-collection round containing, a process
      [q] whose known quorums miss the quorums of some process [p]
      does not itself consider faulty;
    - {b quorum awareness}: before a quorum [Q] may support a
      decision, [p] must have sent [(SAW, p, Q)] to its members and
      collected acknowledgements from all of them, tagged with rounds
      strictly below the deciding round ([seen_p[Q] < k_p]) — which
      guarantees every correct process learns [Q ∈ H[p]] by the end of
      the deciding round.

    Each step expects the failure-detector value
    [Pair (Leader l, Quorum q)] where the quorum component satisfies
    Sigma-nu+. *)

type message =
  | Lead of { round : int; est : Consensus.Value.t; hist : Qhist.t }
  | Rep of { round : int; est : Consensus.Value.t }
  | Prop of { round : int; value : Consensus.Value.t option; hist : Qhist.t }
  | Saw of { quorum : Procset.Pset.t }
  | Ack of { quorum : Procset.Pset.t; round : int }

type phase_view = Phase_start | Phase_lead | Phase_rep | Phase_prop

(** The full interface of one [A_nuc] variant. *)
module type S = sig
  include
    Sim.Automaton.S
      with type input = Consensus.Value.t
       and type message = message

  val decision : state -> Consensus.Value.t option
  (** The decided value, if any. Decisions are irrevocable. *)

  val decision_round : state -> int option
  (** Round in which the decision was taken. *)

  val round : state -> int
  (** Current round [k_p]. *)

  val estimate : state -> Consensus.Value.t
  (** Current estimate [x_p]. *)

  val phase : state -> phase_view
  (** Which wait the process is currently in. *)

  val history : state -> Qhist.t
  (** The quorum history [H_p]. *)

  val considered_faulty : self:Procset.Pid.t -> state -> Procset.Pset.t
  (** The current [F_p] (Fig. 5, line 52). *)
end

include S with type message := message
(** The algorithm of Figs. 4-5, both safety mechanisms enabled. *)

(** {2 Ablated variants}

    Strictly for the mechanism-necessity experiments: each variant
    disables one (or both) of the safety mechanisms and is therefore
    {e not} a correct nonuniform-consensus algorithm. [Without_both]
    is broken by the Section 6.3 adversary
    ({!Scenario.contamination_anuc_unsafe}). *)

module Without_distrust : S
(** Leader estimates are always adopted and proposal-collection rounds
    always complete (Fig. 4 lines 18 and 28 unguarded). *)

module Without_awareness : S
(** Decisions skip the [seen_p[Q] < k_p] gate (Fig. 4 line 30), so a
    quorum may support a decision before its members have acknowledged
    it. *)

module Without_both : S
(** Both mechanisms off — the naive Sigma-nu substitution expressed in
    the [A_nuc] skeleton. *)

val with_family : Procset.Quorum_family.t -> (module S)
(** The full algorithm with a structural quorum guard: a wait only
    completes on a detector quorum that is also a quorum of the given
    {!Procset.Quorum_family} (non-family quorums are treated like
    empty ones — the process stays in the wait and re-reads the
    detector). Safety is that of [A_nuc] regardless of family;
    liveness requires a family-matched oracle
    ([Fd.Oracle.sigma_nu_plus_family] with the same family), whose
    post-stabilization quorums at correct processes pass the guard by
    monotonicity. The unguarded instances correspond to
    [quorum_guard = None] and are byte-identical to pre-family
    releases. *)
