let noop : Consensus.Value.t = -1

module Batch = struct
  let bits = 14
  let max_command = (1 lsl bits) - 1
  let max_len = 4

  (* [len] in the top bits, then the commands: a batch of k commands
     occupies 14k + ceil(log2 max_len) bits, well inside a 63-bit
     int. The empty batch is [noop]. *)
  let encode = function
    | [] -> noop
    | cmds ->
      let len = List.length cmds in
      if len > max_len then
        invalid_arg
          (Printf.sprintf "Smr.Batch.encode: %d commands > max %d" len
             max_len);
      List.fold_left
        (fun acc c ->
          if c < 0 || c > max_command then
            invalid_arg
              (Printf.sprintf
                 "Smr.Batch.encode: command %d outside [0, %d]" c
                 max_command);
          (acc lsl bits) lor c)
        len cmds

  let decode v =
    if Consensus.Value.equal v noop then []
    else begin
      (* the length field of the true k sits exactly at bit 14k; for
         any smaller shift the quotient still contains command bits
         and exceeds [max_len], so the ascending scan is unambiguous *)
      let rec find_len k =
        if k > max_len then
          invalid_arg (Printf.sprintf "Smr.Batch.decode: %d is not a batch" v)
        else if v lsr (bits * k) = k then k
        else find_len (k + 1)
      in
      let k = find_len 1 in
      List.init k (fun i -> (v lsr (bits * (k - 1 - i))) land max_command)
    end
end

module type CONSENSUS = sig
  include Sim.Automaton.S with type input = Consensus.Value.t

  val decision : state -> Consensus.Value.t option
end

module type TUNING = sig
  val batch : int
  val pipeline : int
  val window : int
  val retain : int
  val horizon : int
end

module Defaults : TUNING = struct
  let batch = 1
  let pipeline = 1
  let window = max_int
  let retain = max_int
  let horizon = 64
end

module type S = sig
  type message

  include
    Sim.Automaton.S
      with type input = Consensus.Value.t list
       and type message := message

  val log : state -> Consensus.Value.t list
  val batches : state -> Consensus.Value.t list list
  val log_base : state -> int
  val snapshot_digest : state -> int
  val log_digest : state -> int
  val snapshot : state -> tick:int -> Snapshot.t
  val slots_decided : state -> int
  val commands_applied : state -> int
  val current_slot : state -> int
  val open_instances : state -> int
  val pending_len : state -> int
  val pp_message : Format.formatter -> message -> unit
  val equal_message : message -> message -> bool
end

module Make_tuned (T : TUNING) (C : CONSENSUS) : S = struct
  module Imap = Map.Make (Int)
  module Vset = Set.Make (Int)

  let () =
    if T.batch < 1 || T.batch > Batch.max_len then
      invalid_arg
        (Printf.sprintf "Smr: batch must be in [1, %d]" Batch.max_len);
    if T.pipeline < 1 then invalid_arg "Smr: pipeline must be >= 1";
    if T.window < 1 then invalid_arg "Smr: window must be >= 1";
    if T.retain < 1 then invalid_arg "Smr: retain must be >= 1";
    (* instances for the whole pipeline window must be admissible:
       a peer's messages for slot [st.slot + pipeline - 1] arrive
       while we may still be at [st.slot] *)
    if T.horizon < T.pipeline then
      invalid_arg "Smr: horizon must be >= pipeline"

  type message =
    | Slot of { slot : int; inner : C.message }
    | Forward of Consensus.Value.t list
        (** a non-leader routing pending commands to the leader *)

  type input = Consensus.Value.t list

  type state = {
    (* the pending-command queue: an amortized-O(1) two-list FIFO.
       Fixes the [List.nth_opt commands slot] bug — commands are
       dequeued when proposed and re-queued at the front when a
       competing proposal wins their slot, so nothing is lost and
       nothing is silently re-proposed by position. *)
    pending_f : Consensus.Value.t list; (* front, oldest first *)
    pending_b : Consensus.Value.t list; (* back, newest first *)
    pending_n : int;
    pending_set : Vset.t; (* values pending or in flight (dedup gate) *)
    inflight : Consensus.Value.t list Imap.t; (* slot -> our proposal *)
    inflight_n : int; (* total commands across [inflight] *)
    instances : C.state Imap.t; (* per-slot consensus states *)
    (* the retained applied suffix, as an amortized-O(1) functional
       queue of per-slot batches; slots below [base] are compacted
       into [digest] *)
    app_f : Consensus.Value.t list list; (* oldest first *)
    app_b : Consensus.Value.t list list; (* newest first *)
    app_n : int; (* retained batch (slot) count *)
    applied_set : Vset.t; (* non-noop values in the retained suffix *)
    decided_count : int; (* slots decided locally; survives compaction *)
    applied_cmds : int; (* non-noop commands applied; survives compaction *)
    base : int; (* first retained slot *)
    digest : int; (* rolling digest of the compacted prefix *)
    slot : int; (* first undecided slot *)
    rotate : int; (* round-robin cursor over open instances *)
    fwd_slot : int; (* slot at the last leader forward *)
    fwd_leader : Procset.Pid.t; (* addressee of the last forward *)
  }

  let name = "SMR(" ^ C.name ^ ")"

  let encode_batch cmds =
    if T.batch = 1 then match cmds with [] -> noop | [ c ] -> c | _ -> assert false
    else Batch.encode cmds

  let decode_batch v =
    if T.batch = 1 then (if Consensus.Value.equal v noop then [] else [ v ])
    else Batch.decode v

  let initial ~n:_ ~self:_ commands =
    {
      pending_f = commands;
      pending_b = [];
      pending_n = List.length commands;
      pending_set =
        List.fold_left (fun s c -> Vset.add c s) Vset.empty commands;
      inflight = Imap.empty;
      inflight_n = 0;
      instances = Imap.empty;
      app_f = [];
      app_b = [];
      app_n = 0;
      applied_set = Vset.empty;
      decided_count = 0;
      applied_cmds = 0;
      base = 0;
      digest = 0;
      slot = 0;
      rotate = 0;
      fwd_slot = -1;
      fwd_leader = -1;
    }

  (* ---------------- pending-queue primitives ---------------- *)

  let pending_push_back st c =
    {
      st with
      pending_b = c :: st.pending_b;
      pending_n = st.pending_n + 1;
      pending_set = Vset.add c st.pending_set;
    }

  (* re-queue lost commands ahead of everything else, preserving their
     order; their values are already members of [pending_set] *)
  let pending_push_front_list st cs =
    {
      st with
      pending_f = cs @ st.pending_f;
      pending_n = st.pending_n + List.length cs;
    }

  let rec pending_pop st =
    match st.pending_f with
    | c :: rest ->
      Some (c, { st with pending_f = rest; pending_n = st.pending_n - 1 })
    | [] -> (
      match st.pending_b with
      | [] -> None
      | b -> pending_pop { st with pending_f = List.rev b; pending_b = [] })

  let normalize st =
    if st.pending_f = [] && st.pending_b <> [] then
      { st with pending_f = List.rev st.pending_b; pending_b = [] }
    else st

  (* Dequeue the next proposal batch: up to [T.batch] commands, capped
     by the in-flight window. Values already applied (they reached the
     log through another replica's slot) are discarded on the way. *)
  let take_batch st =
    let budget = min T.batch (T.window - st.inflight_n) in
    let rec take acc k st =
      if k = 0 then (List.rev acc, st)
      else
        match pending_pop st with
        | None -> (List.rev acc, st)
        | Some (c, st') ->
          if Vset.mem c st'.applied_set then
            take acc k
              { st' with pending_set = Vset.remove c st'.pending_set }
          else take (c :: acc) (k - 1) st'
    in
    if budget <= 0 then ([], st) else take [] budget st

  (* ---------------- instance management ---------------- *)

  let retire_floor st = max 0 (st.slot - T.horizon)

  let ensure ~n ~self st s =
    if Imap.mem s st.instances then st
    else begin
      let batch, st = take_batch st in
      let inst = C.initial ~n ~self (encode_batch batch) in
      let st =
        if batch = [] then st
        else
          {
            st with
            inflight = Imap.add s batch st.inflight;
            inflight_n = st.inflight_n + List.length batch;
          }
      in
      { st with instances = Imap.add s inst st.instances }
    end

  let step_instance ~n ~self st s received d =
    let st = ensure ~n ~self st s in
    let inst = Imap.find s st.instances in
    let inst, sends = C.step ~n ~self inst received d in
    let st = { st with instances = Imap.add s inst st.instances } in
    ( st,
      List.map (fun (dst, inner) -> (dst, Slot { slot = s; inner })) sends )

  (* ---------------- harvest / compaction / retirement ---------------- *)

  (* shared with the read path: Snapshot.digest_of must extend this
     very function for log-read and snapshot-read digests to agree *)
  let mix = Snapshot.mix

  let apply_decided st v =
    let decided = decode_batch v in
    (* exactly-once application: a value already in the retained
       suffix is filtered out. Decisions are agreed and every replica
       runs the same tuning, so the filter is identical everywhere
       and live logs stay consistent. *)
    let fresh =
      List.filter (fun c -> not (Vset.mem c st.applied_set)) decided
    in
    let stored = if fresh = [] then [ noop ] else fresh in
    let st =
      {
        st with
        app_b = stored :: st.app_b;
        app_n = st.app_n + 1;
        applied_set =
          List.fold_left (fun s c -> Vset.add c s) st.applied_set fresh;
        applied_cmds = st.applied_cmds + List.length fresh;
      }
    in
    (* settle our own proposal for this slot: applied commands leave
       the dedup gate, lost ones go back to the front of the queue *)
    let st =
      match Imap.find_opt st.slot st.inflight with
      | None -> st
      | Some mine ->
        let st =
          {
            st with
            inflight = Imap.remove st.slot st.inflight;
            inflight_n = st.inflight_n - List.length mine;
          }
        in
        let settled, lost =
          List.partition (fun c -> Vset.mem c st.applied_set) mine
        in
        let st =
          {
            st with
            pending_set =
              List.fold_left
                (fun s c -> Vset.remove c s)
                st.pending_set settled;
          }
        in
        pending_push_front_list st lost
    in
    { st with decided_count = st.decided_count + 1; slot = st.slot + 1 }

  let rec compact st =
    if st.app_n <= T.retain then st
    else
      match st.app_f with
      | batch :: rest ->
        compact
          {
            st with
            app_f = rest;
            app_n = st.app_n - 1;
            base = st.base + 1;
            digest = List.fold_left mix st.digest batch;
            applied_set =
              List.fold_left
                (fun s c ->
                  if Consensus.Value.equal c noop then s else Vset.remove c s)
                st.applied_set batch;
          }
      | [] -> compact { st with app_f = List.rev st.app_b; app_b = [] }

  (* Retire decided instances that fell below the horizon — without
     this every instance ever opened stays in [instances] forever.
     Only the slots that just crossed the floor are removed, so the
     walk is O(slots advanced), not O(instances). *)
  let retire ~from_slot st =
    let old_floor = max 0 (from_slot - T.horizon) in
    let new_floor = retire_floor st in
    let rec drop s st =
      if s >= new_floor then st
      else drop (s + 1) { st with instances = Imap.remove s st.instances }
    in
    drop old_floor st

  let rec harvest st =
    match Imap.find_opt st.slot st.instances with
    | None -> st
    | Some inst -> (
      match C.decision inst with
      | None -> st
      | Some v -> harvest (apply_decided st v))

  let harvest_and_gc st =
    let from_slot = st.slot in
    let st = harvest st in
    if st.slot = from_slot then st else compact (retire ~from_slot st)

  (* ---------------- scheduling within one host step ---------------- *)

  (* Open (and announce) every missing instance of the pipeline
     window [slot, slot + pipeline). *)
  let open_window ~n ~self st d =
    let rec go s st acc =
      if s >= st.slot + T.pipeline then (st, List.concat (List.rev acc))
      else if Imap.mem s st.instances then go (s + 1) st acc
      else
        let st, sends = step_instance ~n ~self st s None d in
        go (s + 1) st (sends :: acc)
    in
    go st.slot st []

  (* One lambda step for a rotating open instance other than the
     current slot (which already gets every lambda delivery):
     replicas that have decided a slot keep serving it (within the
     horizon) so slower replicas can still assemble quorums for it,
     and pipelined future instances keep making local progress. *)
  let pump ~n ~self st d =
    let m =
      Imap.cardinal st.instances
      - if Imap.mem st.slot st.instances then 1 else 0
    in
    if m = 0 then (st, [])
    else begin
      let idx = st.rotate mod m in
      let st = { st with rotate = st.rotate + 1 } in
      let s =
        let i = ref idx and found = ref (-1) in
        (try
           Imap.iter
             (fun k _ ->
               if k <> st.slot then
                 if !i = 0 then begin
                   found := k;
                   raise Exit
                 end
                 else decr i)
             st.instances
         with Exit -> ());
        !found
      in
      if s < 0 then (st, []) else step_instance ~n ~self st s None d
    end

  let rec leader_of = function
    | Sim.Fd_value.Leader l -> Some l
    | Sim.Fd_value.Pair (a, b) -> (
      match leader_of a with Some _ as r -> r | None -> leader_of b)
    | _ -> None

  (* Route pending commands to the leader: only the leader's proposals
     win slots once the detector has stabilized, so a non-leader that
     merely re-proposes its own commands would starve them forever.
     Throttled to one forward per (slot, leader) — an unthrottled
     forward on every lambda step floods the leader's mailbox faster
     than it can drain it and starves the consensus traffic. *)
  let forward ~self st d =
    match leader_of d with
    | Some l
      when (not (Procset.Pid.equal l self))
           && (st.slot > st.fwd_slot || not (Procset.Pid.equal l st.fwd_leader))
      ->
      let rec peek acc k = function
        | [] -> List.rev acc
        | _ when k = 0 -> List.rev acc
        | c :: rest ->
          if Vset.mem c st.applied_set then peek acc k rest
          else peek (c :: acc) (k - 1) rest
      in
      let cmds = peek [] T.batch st.pending_f in
      if cmds = [] then (st, [])
      else ({ st with fwd_slot = st.slot; fwd_leader = l }, [ (l, Forward cmds) ])
    | _ -> (st, [])

  let step ~n ~self st received d =
    let st, sends =
      match received with
      | Some env -> (
        match env.Sim.Envelope.payload with
        | Forward cmds ->
          let st =
            List.fold_left
              (fun st c ->
                if Vset.mem c st.pending_set || Vset.mem c st.applied_set
                then st
                else pending_push_back st c)
              st cmds
          in
          (st, [])
        | Slot { slot; inner } ->
          (* retired below the floor, refused above the join ceiling:
             both bound [instances]; the sender's pump re-offers the
             slot while it stays within its own horizon *)
          if slot < retire_floor st || slot > st.slot + T.horizon then
            (st, [])
          else
            let inner_env = { env with Sim.Envelope.payload = inner } in
            step_instance ~n ~self st slot (Some inner_env) d)
      | None ->
        let st = normalize st in
        let st, sends = step_instance ~n ~self st st.slot None d in
        let st, fwd_sends = forward ~self st d in
        (st, sends @ fwd_sends)
    in
    let st = harvest_and_gc st in
    let st, open_sends = open_window ~n ~self st d in
    let st, pump_sends = pump ~n ~self st d in
    (st, sends @ open_sends @ pump_sends)

  (* ---------------- observers ---------------- *)

  let batches st = st.app_f @ List.rev st.app_b
  let log st = List.concat (batches st)
  let log_base st = st.base
  let snapshot_digest st = st.digest

  (* the log-mode read primitive: recomputes the full-log digest from
     the live state on every call — O(retained suffix) *)
  let log_digest st = Snapshot.digest_of ~prefix_digest:st.digest (batches st)

  let snapshot st ~tick =
    Snapshot.build ~version:st.decided_count ~base:st.base
      ~ops:st.applied_cmds ~prefix_digest:st.digest ~batches:(batches st)
      ~tick
  let slots_decided st = st.decided_count
  let commands_applied st = st.applied_cmds
  let current_slot st = st.slot
  let open_instances st = Imap.cardinal st.instances
  let pending_len st = st.pending_n

  let pp_message fmt = function
    | Slot { slot; inner } ->
      Format.fprintf fmt "[slot %d] %a" slot C.pp_message inner
    | Forward cmds ->
      Format.fprintf fmt "[forward %a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           Format.pp_print_int)
        cmds

  let equal_message a b =
    match a, b with
    | Slot a, Slot b -> a.slot = b.slot && C.equal_message a.inner b.inner
    | Forward a, Forward b -> (
      try List.for_all2 Consensus.Value.equal a b
      with Invalid_argument _ -> false)
    | _ -> false
end

module Make (C : CONSENSUS) : S = Make_tuned (Defaults) (C)

module Over_anuc : S = Make (struct
  include Core.Anuc

  let decision = Core.Anuc.decision
end)

module Over_stack : S = Make (struct
  include Core.Stack

  type message = Core.Stack.message

  let pp_message = Core.Stack.pp_message
  let equal_message = Core.Stack.equal_message
  let step = Core.Stack.step
  let decision = Core.Stack.decision
end)
