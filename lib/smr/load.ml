open Procset

type config = {
  n : int;
  clients : int;
  commands_per_client : int;
  batch : int;
  pipeline : int;
  window : int;
  retain : int;
  horizon : int;
  target_slots : int;
  max_steps : int;
  seed : int;
  faults : Sim.Faults.t;
  crashes : (Pid.t * int) list;
  continuous_check : bool;
}

let default =
  {
    n = 3;
    clients = 100;
    commands_per_client = 4;
    batch = 1;
    pipeline = 1;
    window = 64;
    retain = 128;
    horizon = 64;
    target_slots = 50;
    max_steps = 1_000_000;
    seed = 0;
    faults = Sim.Faults.none;
    crashes = [];
    continuous_check = false;
  }

type outcome = {
  o_reached : bool;
  o_slots : int;
  o_ops : int;
  o_steps : int;
  o_ticks : int;
  o_wall : float;
  o_p50 : float;
  o_p99 : float;
  o_divergent : bool;
  o_max_open : int;
  o_log : Consensus.Value.t list;
  o_log_base : int;
  o_sent : int;
}

let validate cfg =
  if cfg.n < 2 then invalid_arg "Load: n must be >= 2";
  if cfg.clients < 1 then invalid_arg "Load: clients must be >= 1";
  if cfg.commands_per_client < 1 then
    invalid_arg "Load: commands_per_client must be >= 1";
  if cfg.target_slots < 1 then invalid_arg "Load: target_slots must be >= 1";
  (* command values are 1 + k*clients + c, so the largest is exactly
     clients * commands_per_client *)
  if cfg.batch > 1 && cfg.clients * cfg.commands_per_client > Smr.Batch.max_command
  then
    invalid_arg
      (Printf.sprintf
         "Load: %d clients x %d commands exceeds Batch.max_command (%d); \
          shrink the workload or use batch = 1"
         cfg.clients cfg.commands_per_client Smr.Batch.max_command)

(* Request rounds outer, clients (ascending) inner: the stream
   interleaves one request per client per round, like a closed-loop
   pool where every client keeps one request outstanding. *)
let commands_for cfg p =
  validate cfg;
  let buf = ref [] in
  for k = cfg.commands_per_client - 1 downto 0 do
    for c = cfg.clients - 1 downto 0 do
      if c mod cfg.n = p then buf := (1 + (k * cfg.clients) + c) :: !buf
    done
  done;
  !buf

let make_smr cfg : (module Smr.S) =
  (module Smr.Make_tuned
            (struct
              let batch = cfg.batch
              let pipeline = cfg.pipeline
              let window = cfg.window
              let retain = cfg.retain
              let horizon = cfg.horizon
            end)
            (struct
              include Core.Anuc

              let decision = Core.Anuc.decision
            end))

module Driver (S : Smr.S) = struct
  module R = Sim.Runner.Make (S)
  module E = Sim.Executor.Make (S)

  let rec drop k l =
    if k = 0 then Some l
    else match l with [] -> None | _ :: tl -> drop (k - 1) tl

  let rec prefix_eq a b =
    match (a, b) with
    | [], _ | _, [] -> true
    | x :: a, y :: b -> x = y && prefix_eq a b

  (* Two replicas are consistent when their retained logs agree on the
     overlap of their windows, aligned by compaction base, and their
     digests agree whenever the bases coincide. Non-overlapping
     windows are vacuously consistent: the slower replica has not yet
     decided any slot the faster one still retains. *)
  let consistent sa sb =
    let base_a = S.log_base sa and base_b = S.log_base sb in
    let digest_ok =
      base_a <> base_b || S.snapshot_digest sa = S.snapshot_digest sb
    in
    let overlap_ok =
      if base_a <= base_b then
        match drop (base_b - base_a) (S.batches sa) with
        | None -> true
        | Some tail -> prefix_eq tail (S.batches sb)
      else
        match drop (base_a - base_b) (S.batches sb) with
        | None -> true
        | Some tail -> prefix_eq tail (S.batches sa)
    in
    digest_ok && overlap_ok

  type tracker = {
    comp : int array;  (* comp.(i) = tick when the i-th slot completed *)
    mutable recorded : int;
    mutable max_open : int;
    mutable divergent : bool;
    mutable last_t : int;
  }

  let check_pairwise tr st live =
    let rec go = function
      | [] -> ()
      | p :: rest ->
          List.iter
            (fun q -> if not (consistent (st p) (st q)) then tr.divergent <- true)
            rest;
          go rest
    in
    go live

  (* The stop predicate doubles as the run's observer: it records slot
     completion times at the reference replica, the open-instance
     high-water mark, and (optionally) pairwise consistency — both
     substrates call it at round boundaries, where all states are
     safely readable. *)
  let observe cfg pattern tr st t =
    tr.last_t <- max tr.last_t t;
    let correct = Sim.Failure_pattern.correct pattern in
    let live =
      List.filter
        (fun p -> not (Sim.Failure_pattern.crashed pattern p t))
        (Pid.all ~n:cfg.n)
    in
    List.iter
      (fun p -> tr.max_open <- max tr.max_open (S.open_instances (st p)))
      live;
    if cfg.continuous_check then check_pairwise tr st live;
    let d = min (S.slots_decided (st (Pset.min_elt correct))) cfg.target_slots in
    while tr.recorded < d do
      tr.recorded <- tr.recorded + 1;
      tr.comp.(tr.recorded) <- t
    done;
    Pset.for_all (fun p -> S.slots_decided (st p) >= cfg.target_slots) correct

  let percentile gaps q =
    let m = Array.length gaps in
    if m = 0 then 0.
    else
      let rank = int_of_float (ceil (q *. float_of_int m)) - 1 in
      float_of_int gaps.(max 0 (min (m - 1) rank))

  let finish cfg ~pattern ~tr ~states ~steps ~ticks ~wall ~sent =
    let correct = Sim.Failure_pattern.correct pattern in
    let live = Pset.elements correct in
    check_pairwise tr (fun p -> states.(p)) live;
    let sref = states.(Pset.min_elt correct) in
    let gaps =
      Array.init tr.recorded (fun i -> tr.comp.(i + 1) - tr.comp.(i))
    in
    Array.sort compare gaps;
    {
      o_reached =
        Pset.for_all
          (fun p -> S.slots_decided states.(p) >= cfg.target_slots)
          correct;
      o_slots = S.slots_decided sref;
      o_ops = S.commands_applied sref;
      o_steps = steps;
      o_ticks = max ticks tr.last_t;
      o_wall = wall;
      o_p50 = percentile gaps 0.50;
      o_p99 = percentile gaps 0.99;
      o_divergent = tr.divergent;
      o_max_open = tr.max_open;
      o_log = S.log sref;
      o_log_base = S.log_base sref;
      o_sent = sent;
    }

  let setup cfg =
    let pattern = Sim.Failure_pattern.make ~n:cfg.n ~crashes:cfg.crashes in
    let oracle =
      Fd.Oracle.pair
        (Fd.Oracle.omega ~seed:cfg.seed pattern)
        (Fd.Oracle.sigma_nu_plus ~seed:cfg.seed pattern)
    in
    let tr =
      {
        comp = Array.make (cfg.target_slots + 1) 0;
        recorded = 0;
        max_open = 0;
        divergent = false;
        last_t = 0;
      }
    in
    (pattern, oracle, tr)

  let sim cfg =
    let pattern, oracle, tr = setup cfg in
    let run =
      R.exec ~seed:cfg.seed ~faults:cfg.faults ~record:false
        ~stop:(observe cfg pattern tr) ~pattern ~fd:oracle.Fd.Oracle.query
        ~inputs:(commands_for cfg) ~max_steps:cfg.max_steps ()
    in
    finish cfg ~pattern ~tr ~states:run.R.states ~steps:run.R.step_count
      ~ticks:run.R.step_count ~wall:run.R.metrics.Sim.Runner.wall_seconds
      ~sent:run.R.messages_sent

  let exec ~jobs cfg =
    let pattern, oracle, tr = setup cfg in
    let out =
      E.exec ~jobs ~faults:cfg.faults ~stop:(observe cfg pattern tr) ~pattern
        ~fd:oracle.Fd.Oracle.query ~inputs:(commands_for cfg)
        ~max_steps:cfg.max_steps ()
    in
    finish cfg ~pattern ~tr ~states:out.E.states ~steps:out.E.step_count
      ~ticks:out.E.final_time ~wall:out.E.wall_seconds
      ~sent:out.E.stats.Sim.Transport.sent
end

let run_sim cfg =
  validate cfg;
  let (module S : Smr.S) = make_smr cfg in
  let module D = Driver (S) in
  D.sim cfg

let run_exec ~jobs cfg =
  validate cfg;
  let (module S : Smr.S) = make_smr cfg in
  let module D = Driver (S) in
  D.exec ~jobs cfg
