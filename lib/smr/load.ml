open Procset

type read_mode = Read_log | Read_snapshot

let read_mode_name = function Read_log -> "log" | Read_snapshot -> "snapshot"

let read_mode_of_string = function
  | "log" -> Some Read_log
  | "snapshot" | "snap" -> Some Read_snapshot
  | _ -> None

type config = {
  n : int;
  clients : int;
  commands_per_client : int;
  batch : int;
  pipeline : int;
  window : int;
  retain : int;
  horizon : int;
  target_slots : int;
  max_steps : int;
  seed : int;
  faults : Sim.Faults.t;
  crashes : (Pid.t * int) list;
  continuous_check : bool;
  transport : Sim.Executor.transport;
  shards : int;
  ring_capacity : int;
  reads : int;
  read_mode : read_mode;
  publish_every : int;
}

let default =
  {
    n = 3;
    clients = 100;
    commands_per_client = 4;
    batch = 1;
    pipeline = 1;
    window = 64;
    retain = 128;
    horizon = 64;
    target_slots = 50;
    max_steps = 1_000_000;
    seed = 0;
    faults = Sim.Faults.none;
    crashes = [];
    continuous_check = false;
    transport = Sim.Executor.Mutex;
    shards = 0;
    ring_capacity = 1024;
    reads = 0;
    read_mode = Read_log;
    publish_every = 8;
  }

type outcome = {
  o_reached : bool;
  o_slots : int;
  o_ops : int;
  o_steps : int;
  o_ticks : int;
  o_wall : float;
  o_p50 : float;
  o_p99 : float;
  o_divergent : bool;
  o_max_open : int;
  o_log : Consensus.Value.t list;
  o_log_base : int;
  o_sent : int;
  o_reads : int;
  o_reads_per_sec : float;
  o_read_p50_us : float;
  o_read_p99_us : float;
  o_read_digest : int;
  o_stale_max : int;
  o_stale_bound : int;
  o_snapshots : int;
  o_lock_ops : int;
  o_cas_retries : int;
  o_sync_ops : int;
}

let validate cfg =
  if cfg.n < 2 then invalid_arg "Load: n must be >= 2";
  if cfg.clients < 1 then invalid_arg "Load: clients must be >= 1";
  if cfg.commands_per_client < 1 then
    invalid_arg "Load: commands_per_client must be >= 1";
  if cfg.target_slots < 1 then invalid_arg "Load: target_slots must be >= 1";
  if cfg.reads < 0 then invalid_arg "Load: reads must be >= 0";
  if cfg.publish_every < 1 then
    invalid_arg "Load: publish_every must be >= 1";
  if cfg.shards < 0 then invalid_arg "Load: shards must be >= 0";
  if cfg.ring_capacity < 1 then
    invalid_arg "Load: ring_capacity must be >= 1";
  (* command values are 1 + k*clients + c, so the largest is exactly
     clients * commands_per_client *)
  if cfg.batch > 1 && cfg.clients * cfg.commands_per_client > Smr.Batch.max_command
  then
    invalid_arg
      (Printf.sprintf
         "Load: %d clients x %d commands exceeds Batch.max_command (%d); \
          shrink the workload or use batch = 1"
         cfg.clients cfg.commands_per_client Smr.Batch.max_command)

(* Request rounds outer, clients (ascending) inner: the stream
   interleaves one request per client per round, like a closed-loop
   pool where every client keeps one request outstanding. *)
let commands_for cfg p =
  validate cfg;
  let buf = ref [] in
  for k = cfg.commands_per_client - 1 downto 0 do
    for c = cfg.clients - 1 downto 0 do
      if c mod cfg.n = p then buf := (1 + (k * cfg.clients) + c) :: !buf
    done
  done;
  !buf

let make_smr cfg : (module Smr.S) =
  (module Smr.Make_tuned
            (struct
              let batch = cfg.batch
              let pipeline = cfg.pipeline
              let window = cfg.window
              let retain = cfg.retain
              let horizon = cfg.horizon
            end)
            (struct
              include Core.Anuc

              let decision = Core.Anuc.decision
            end))

module Driver (S : Smr.S) = struct
  module R = Sim.Runner.Make (S)
  module E = Sim.Executor.Make (S)

  let rec drop k l =
    if k = 0 then Some l
    else match l with [] -> None | _ :: tl -> drop (k - 1) tl

  let rec prefix_eq a b =
    match (a, b) with
    | [], _ | _, [] -> true
    | x :: a, y :: b -> x = y && prefix_eq a b

  (* Two replicas are consistent when their retained logs agree on the
     overlap of their windows, aligned by compaction base, and their
     digests agree whenever the bases coincide. Non-overlapping
     windows are vacuously consistent: the slower replica has not yet
     decided any slot the faster one still retains. *)
  let consistent sa sb =
    let base_a = S.log_base sa and base_b = S.log_base sb in
    let digest_ok =
      base_a <> base_b || S.snapshot_digest sa = S.snapshot_digest sb
    in
    let overlap_ok =
      if base_a <= base_b then
        match drop (base_b - base_a) (S.batches sa) with
        | None -> true
        | Some tail -> prefix_eq tail (S.batches sb)
      else
        match drop (base_a - base_b) (S.batches sb) with
        | None -> true
        | Some tail -> prefix_eq tail (S.batches sa)
    in
    digest_ok && overlap_ok

  type tracker = {
    comp : int array;  (* comp.(i) = tick when the i-th slot completed *)
    mutable recorded : int;
    mutable max_open : int;
    mutable divergent : bool;
    mutable last_t : int;
    (* read-serving state: the coordinator serves reads at round
       boundaries, interleaved with the replicated write workload *)
    store : Snapshot.Store.t;
    read_lat : float array;  (* per-read latency estimates, seconds *)
    mutable reads_done : int;
    mutable read_wall : float;
    mutable read_digest : int;
    mutable stale_max : int;
    mutable last_pub : int;  (* decided count at the last publish *)
  }

  let check_pairwise tr st live =
    let rec go = function
      | [] -> ()
      | p :: rest ->
          List.iter
            (fun q -> if not (consistent (st p) (st q)) then tr.divergent <- true)
            rest;
          go rest
    in
    go live

  (* Read service, interleaved with the write workload at round
     boundaries. Reads are paced by decided-slot progress (the whole
     budget is due by the time the target is reached), so staleness is
     sampled across the run, not at one instant. In snapshot mode the
     publisher runs first — publish-before-reads is what bounds every
     read's staleness by [publish_every - 1] decided slots. Latencies
     are chunk-timed: one clock read per chunk, divided out, because a
     single snapshot read is far below the clock's resolution. *)
  let serve_reads cfg tr sref t =
    if cfg.reads > 0 then begin
      let dec = S.slots_decided sref in
      (match cfg.read_mode with
      | Read_snapshot
        when tr.last_pub < 0 || dec - tr.last_pub >= cfg.publish_every ->
          ignore (Snapshot.Store.publish tr.store (S.snapshot sref ~tick:t));
          tr.last_pub <- dec
      | _ -> ());
      let due = cfg.reads * min dec cfg.target_slots / cfg.target_slots in
      let chunk = min due cfg.reads - tr.reads_done in
      if chunk > 0 then begin
        let t0 = Sim.Clock.now () in
        (match cfg.read_mode with
        | Read_log ->
            for _ = 1 to chunk do
              tr.read_digest <-
                tr.read_digest lxor S.log_digest sref lxor S.slots_decided sref
            done
        | Read_snapshot ->
            for _ = 1 to chunk do
              match Snapshot.Store.current tr.store with
              | None -> ()
              | Some snap ->
                  tr.read_digest <-
                    tr.read_digest lxor snap.Snapshot.digest
                    lxor snap.Snapshot.version;
                  let stale = dec - snap.Snapshot.version in
                  if stale > tr.stale_max then tr.stale_max <- stale
            done);
        let el = Sim.Clock.elapsed t0 in
        tr.read_wall <- tr.read_wall +. el;
        let per = el /. float_of_int chunk in
        for i = tr.reads_done to tr.reads_done + chunk - 1 do
          tr.read_lat.(i) <- per
        done;
        tr.reads_done <- tr.reads_done + chunk
      end
    end

  (* The stop predicate doubles as the run's observer: it records slot
     completion times at the reference replica, the open-instance
     high-water mark, (optionally) pairwise consistency, and serves
     the read workload — both substrates call it at round boundaries,
     where all states are safely readable. *)
  let observe cfg pattern tr st t =
    tr.last_t <- max tr.last_t t;
    let correct = Sim.Failure_pattern.correct pattern in
    let live =
      List.filter
        (fun p -> not (Sim.Failure_pattern.crashed pattern p t))
        (Pid.all ~n:cfg.n)
    in
    List.iter
      (fun p -> tr.max_open <- max tr.max_open (S.open_instances (st p)))
      live;
    if cfg.continuous_check then check_pairwise tr st live;
    let sref = st (Pset.min_elt correct) in
    let d = min (S.slots_decided sref) cfg.target_slots in
    while tr.recorded < d do
      tr.recorded <- tr.recorded + 1;
      tr.comp.(tr.recorded) <- t
    done;
    serve_reads cfg tr sref t;
    Pset.for_all (fun p -> S.slots_decided (st p) >= cfg.target_slots) correct

  let percentile gaps q =
    let m = Array.length gaps in
    if m = 0 then 0.
    else
      let rank = int_of_float (ceil (q *. float_of_int m)) - 1 in
      float_of_int gaps.(max 0 (min (m - 1) rank))

  let finish cfg ~pattern ~tr ~states ~steps ~ticks ~wall ~sent ~lock_ops
      ~cas_retries ~sync_ops =
    let correct = Sim.Failure_pattern.correct pattern in
    let live = Pset.elements correct in
    check_pairwise tr (fun p -> states.(p)) live;
    let sref = states.(Pset.min_elt correct) in
    let gaps =
      Array.init tr.recorded (fun i -> tr.comp.(i + 1) - tr.comp.(i))
    in
    Array.sort compare gaps;
    let rl = Array.sub tr.read_lat 0 tr.reads_done in
    Array.sort compare rl;
    let read_pct q =
      let m = Array.length rl in
      if m = 0 then 0.
      else
        let rank = int_of_float (ceil (q *. float_of_int m)) - 1 in
        rl.(max 0 (min (m - 1) rank)) *. 1e6
    in
    {
      o_reached =
        Pset.for_all
          (fun p -> S.slots_decided states.(p) >= cfg.target_slots)
          correct;
      o_slots = S.slots_decided sref;
      o_ops = S.commands_applied sref;
      o_steps = steps;
      o_ticks = max ticks tr.last_t;
      o_wall = wall;
      o_p50 = percentile gaps 0.50;
      o_p99 = percentile gaps 0.99;
      o_divergent = tr.divergent;
      o_max_open = tr.max_open;
      o_log = S.log sref;
      o_log_base = S.log_base sref;
      o_sent = sent;
      o_reads = tr.reads_done;
      o_reads_per_sec =
        (if tr.read_wall > 0. then float_of_int tr.reads_done /. tr.read_wall
         else 0.);
      o_read_p50_us = read_pct 0.50;
      o_read_p99_us = read_pct 0.99;
      o_read_digest = tr.read_digest;
      o_stale_max = tr.stale_max;
      o_stale_bound =
        (match cfg.read_mode with
        | Read_snapshot when cfg.reads > 0 -> cfg.publish_every - 1
        | _ -> 0);
      o_snapshots = Snapshot.Store.published tr.store;
      o_lock_ops = lock_ops;
      o_cas_retries = cas_retries;
      o_sync_ops = sync_ops;
    }

  let setup cfg =
    let pattern = Sim.Failure_pattern.make ~n:cfg.n ~crashes:cfg.crashes in
    let oracle =
      Fd.Oracle.pair
        (Fd.Oracle.omega ~seed:cfg.seed pattern)
        (Fd.Oracle.sigma_nu_plus ~seed:cfg.seed pattern)
    in
    let tr =
      {
        comp = Array.make (cfg.target_slots + 1) 0;
        recorded = 0;
        max_open = 0;
        divergent = false;
        last_t = 0;
        store = Snapshot.Store.make ();
        read_lat = Array.make cfg.reads 0.;
        reads_done = 0;
        read_wall = 0.;
        read_digest = 0;
        stale_max = -1;
        last_pub = -1;
      }
    in
    (pattern, oracle, tr)

  let sim cfg =
    let pattern, oracle, tr = setup cfg in
    let run =
      R.exec ~seed:cfg.seed ~faults:cfg.faults ~record:false
        ~stop:(observe cfg pattern tr) ~pattern ~fd:oracle.Fd.Oracle.query
        ~inputs:(commands_for cfg) ~max_steps:cfg.max_steps ()
    in
    finish cfg ~pattern ~tr ~states:run.R.states ~steps:run.R.step_count
      ~ticks:run.R.step_count ~wall:run.R.metrics.Sim.Runner.wall_seconds
      ~sent:run.R.messages_sent ~lock_ops:0 ~cas_retries:0 ~sync_ops:0

  let exec ~jobs cfg =
    let pattern, oracle, tr = setup cfg in
    let out =
      E.exec ~jobs
        ?shards:(if cfg.shards > 0 then Some cfg.shards else None)
        ~transport:cfg.transport ~capacity:cfg.ring_capacity
        ~faults:cfg.faults ~stop:(observe cfg pattern tr) ~pattern
        ~fd:oracle.Fd.Oracle.query ~inputs:(commands_for cfg)
        ~max_steps:cfg.max_steps ()
    in
    finish cfg ~pattern ~tr ~states:out.E.states ~steps:out.E.step_count
      ~ticks:out.E.final_time ~wall:out.E.wall_seconds
      ~sent:out.E.stats.Sim.Transport.sent
      ~lock_ops:out.E.stats.Sim.Transport.lock_ops
      ~cas_retries:out.E.stats.Sim.Transport.cas_retries
      ~sync_ops:out.E.sync_ops
end

let run_sim cfg =
  validate cfg;
  let (module S : Smr.S) = make_smr cfg in
  let module D = Driver (S) in
  D.sim cfg

let run_exec ~jobs cfg =
  validate cfg;
  let (module S : Smr.S) = make_smr cfg in
  let module D = Driver (S) in
  D.exec ~jobs cfg
