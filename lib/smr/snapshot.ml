type t = {
  version : int;
  base : int;
  ops : int;
  digest : int;
  log_len : int;
  batches : Consensus.Value.t list list;
  built_at : int;
}

let mix h c = (h * 1000003) lxor c

let digest_of ~prefix_digest batches =
  List.fold_left (fun h batch -> List.fold_left mix h batch) prefix_digest
    batches

let build ~version ~base ~ops ~prefix_digest ~batches ~tick =
  {
    version;
    base;
    ops;
    digest = digest_of ~prefix_digest batches;
    log_len = List.length batches;
    batches;
    built_at = tick;
  }

module Store = struct
  type snapshot = t

  type nonrec t = {
    cell : snapshot option Atomic.t;
    pubs : int Atomic.t;
  }

  let make () = { cell = Atomic.make None; pubs = Atomic.make 0 }

  let rec publish s snap =
    let cur = Atomic.get s.cell in
    match cur with
    | Some c when c.version >= snap.version -> false
    | _ ->
      if Atomic.compare_and_set s.cell cur (Some snap) then begin
        Atomic.incr s.pubs;
        true
      end
      else publish s snap

  let current s = Atomic.get s.cell
  let published s = Atomic.get s.pubs
end
