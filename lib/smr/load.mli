(** Closed-loop client load over the replicated log.

    Thousands of simulated clients, each homed on a replica, submit
    fixed command streams; the replica's in-flight window ([window])
    caps how many of its clients' commands may sit in undecided
    proposals at once, which is exactly a closed-loop client pool
    with that many outstanding requests. The same workload runs on
    either substrate:

    - {!run_sim} — the deterministic {!Sim.Runner} (seeded,
      replayable, one step per tick);
    - {!run_exec} — the concurrent {!Sim.Executor} over real domains
      (wall-clock throughput, interleaving chosen by the OS).

    Because an automaton's input is fixed at [initial], client
    streams are preloaded into each replica's pending queue; a
    command counts as {e submitted} when it leaves the queue for a
    slot proposal, and {e applied} when its slot's decision is
    harvested. Decision latency is measured at the reference replica
    (the smallest correct pid) as the gap, in logical ticks, between
    consecutive slot completions. *)

type config = {
  n : int;  (** replicas *)
  clients : int;  (** simulated clients, homed round-robin *)
  commands_per_client : int;  (** length of each client's stream *)
  batch : int;  (** commands packed per slot (see {!Smr.TUNING}) *)
  pipeline : int;  (** consensus instances open ahead *)
  window : int;  (** per-replica in-flight command cap *)
  retain : int;  (** applied-log slots kept before compaction *)
  horizon : int;  (** instance retirement depth *)
  target_slots : int;  (** stop once every correct replica decided this many *)
  max_steps : int;  (** step budget *)
  seed : int;  (** scheduler / oracle / fault seed *)
  faults : Sim.Faults.t;
  crashes : (Procset.Pid.t * int) list;
  continuous_check : bool;
      (** check pairwise live-log consistency at every round boundary
          (not just at the end) — O(n² · retained) per round, meant
          for tests, not throughput measurement *)
}

val default : config
(** [n 3; clients 100; commands_per_client 4; batch 1; pipeline 1;
    window 64; retain 128; horizon 64; target_slots 50;
    max_steps 1_000_000; seed 0; no faults; no crashes;
    no continuous check]. *)

type outcome = {
  o_reached : bool;  (** every correct replica hit [target_slots] *)
  o_slots : int;  (** slots decided at the reference replica *)
  o_ops : int;  (** commands applied at the reference replica *)
  o_steps : int;  (** total steps taken *)
  o_ticks : int;  (** final logical time *)
  o_wall : float;  (** wall-clock seconds *)
  o_p50 : float;  (** median slot-completion gap, logical ticks *)
  o_p99 : float;  (** 99th-percentile slot-completion gap *)
  o_divergent : bool;
      (** some pair of live replicas had inconsistent logs — with
          [continuous_check], at any observed round; always also
          checked on the final states *)
  o_max_open : int;  (** high-water mark of open consensus instances *)
  o_log : Consensus.Value.t list;  (** reference replica's retained log *)
  o_log_base : int;  (** its compaction base *)
  o_sent : int;  (** transport-level messages sent *)
}

val commands_for : config -> Procset.Pid.t -> Consensus.Value.t list
(** The command stream preloaded at one replica: its clients' streams
    interleaved round-robin, one request per client per round. Values
    are unique across the whole workload (and within
    [Smr.Batch.max_command] when [batch > 1]).
    @raise Invalid_argument if the workload cannot be encoded. *)

val run_sim : config -> outcome
(** The workload under the deterministic simulator. Pure function of
    the config. *)

val run_exec : jobs:int -> config -> outcome
(** The workload under the concurrent executor with [jobs] domains.
    Safety observables ([o_divergent]) hold on every interleaving;
    throughput and latency vary run to run. *)
