(** Closed-loop client load over the replicated log.

    Thousands of simulated clients, each homed on a replica, submit
    fixed command streams; the replica's in-flight window ([window])
    caps how many of its clients' commands may sit in undecided
    proposals at once, which is exactly a closed-loop client pool
    with that many outstanding requests. The same workload runs on
    either substrate:

    - {!run_sim} — the deterministic {!Sim.Runner} (seeded,
      replayable, one step per tick);
    - {!run_exec} — the concurrent {!Sim.Executor} over real domains
      (wall-clock throughput, interleaving chosen by the OS).

    Because an automaton's input is fixed at [initial], client
    streams are preloaded into each replica's pending queue; a
    command counts as {e submitted} when it leaves the queue for a
    slot proposal, and {e applied} when its slot's decision is
    harvested. Decision latency is measured at the reference replica
    (the smallest correct pid) as the gap, in logical ticks, between
    consecutive slot completions.

    A read workload can ride along ([reads > 0]): the coordinator
    serves read-only queries against the reference replica at round
    boundaries, paced by decided-slot progress. [Read_log] recomputes
    the full-log digest from live state per read ([O(retained)]);
    [Read_snapshot] reads the newest {!Snapshot.t} from a lock-free
    {!Snapshot.Store} (an atomic load), republished every
    [publish_every] decided slots {e before} the boundary's reads —
    which bounds every read's staleness by [publish_every - 1] slots
    (checked: [o_stale_max <= o_stale_bound]). *)

type read_mode = Read_log | Read_snapshot

val read_mode_name : read_mode -> string
(** ["log"] / ["snapshot"] — the CLI spellings. *)

val read_mode_of_string : string -> read_mode option
(** Accepts ["log"], ["snapshot"], and ["snap"]. *)

type config = {
  n : int;  (** replicas *)
  clients : int;  (** simulated clients, homed round-robin *)
  commands_per_client : int;  (** length of each client's stream *)
  batch : int;  (** commands packed per slot (see {!Smr.TUNING}) *)
  pipeline : int;  (** consensus instances open ahead *)
  window : int;  (** per-replica in-flight command cap *)
  retain : int;  (** applied-log slots kept before compaction *)
  horizon : int;  (** instance retirement depth *)
  target_slots : int;  (** stop once every correct replica decided this many *)
  max_steps : int;  (** step budget *)
  seed : int;  (** scheduler / oracle / fault seed *)
  faults : Sim.Faults.t;
  crashes : (Procset.Pid.t * int) list;
  continuous_check : bool;
      (** check pairwise live-log consistency at every round boundary
          (not just at the end) — O(n² · retained) per round, meant
          for tests, not throughput measurement *)
  transport : Sim.Executor.transport;
      (** executor backend ({!run_exec} only): mutex-per-mailbox
          oracle or lock-free ring *)
  shards : int;  (** executor shard count; 0 means "match jobs" *)
  ring_capacity : int;  (** per-mailbox ring slots (ring transport) *)
  reads : int;  (** read-only queries to serve across the run *)
  read_mode : read_mode;
  publish_every : int;
      (** snapshot republish cadence, in decided slots ([>= 1]) *)
}

val default : config
(** [n 3; clients 100; commands_per_client 4; batch 1; pipeline 1;
    window 64; retain 128; horizon 64; target_slots 50;
    max_steps 1_000_000; seed 0; no faults; no crashes;
    no continuous check; transport Mutex; shards 0;
    ring_capacity 1024; reads 0; read_mode Read_log;
    publish_every 8]. *)

type outcome = {
  o_reached : bool;  (** every correct replica hit [target_slots] *)
  o_slots : int;  (** slots decided at the reference replica *)
  o_ops : int;  (** commands applied at the reference replica *)
  o_steps : int;  (** total steps taken *)
  o_ticks : int;  (** final logical time *)
  o_wall : float;  (** wall-clock seconds *)
  o_p50 : float;  (** median slot-completion gap, logical ticks *)
  o_p99 : float;  (** 99th-percentile slot-completion gap *)
  o_divergent : bool;
      (** some pair of live replicas had inconsistent logs — with
          [continuous_check], at any observed round; always also
          checked on the final states *)
  o_max_open : int;  (** high-water mark of open consensus instances *)
  o_log : Consensus.Value.t list;  (** reference replica's retained log *)
  o_log_base : int;  (** its compaction base *)
  o_sent : int;  (** transport-level messages sent *)
  o_reads : int;  (** read queries actually served *)
  o_reads_per_sec : float;
      (** reads over the wall time spent inside read chunks only (the
          write workload's time is excluded) *)
  o_read_p50_us : float;  (** median per-read latency, microseconds *)
  o_read_p99_us : float;
      (** 99th-percentile per-read latency, microseconds. Chunk-timed:
          reads are served in chunks of one clock read each, so
          percentiles resolve chunk-level, not single-read, noise. *)
  o_read_digest : int;
      (** XOR-fold of every read's [(digest, version)] — consumed so
          reads cannot be optimized away, and equal across runs with
          equal schedules *)
  o_stale_max : int;
      (** worst staleness any read observed, in decided slots; [-1] if
          no snapshot read was served *)
  o_stale_bound : int;
      (** the declared bound [publish_every - 1] (snapshot mode with
          reads; 0 otherwise) — a run is correct only if
          [o_stale_max <= o_stale_bound] *)
  o_snapshots : int;  (** snapshots published to the store *)
  o_lock_ops : int;
      (** transport mutex acquisitions ({!run_exec}; 0 under
          {!run_sim}) — the mutex backend pays one per send/recv
          probe, the ring only on overflow spills *)
  o_cas_retries : int;  (** failed transport CAS attempts (ring) *)
  o_sync_ops : int;  (** executor coordination ops (pool claims + joins) *)
}

val commands_for : config -> Procset.Pid.t -> Consensus.Value.t list
(** The command stream preloaded at one replica: its clients' streams
    interleaved round-robin, one request per client per round. Values
    are unique across the whole workload (and within
    [Smr.Batch.max_command] when [batch > 1]).
    @raise Invalid_argument if the workload cannot be encoded. *)

val run_sim : config -> outcome
(** The workload under the deterministic simulator. Pure function of
    the config. *)

val run_exec : jobs:int -> config -> outcome
(** The workload under the concurrent executor with [jobs] domains.
    Safety observables ([o_divergent]) hold on every interleaving;
    throughput and latency vary run to run. *)
