(** Versioned, immutable read snapshots of a replicated log, and the
    lock-free store that serves them.

    The write path of {!Smr} answers queries from the full replica
    state; a query that tolerates a bounded divergence window does
    not need that. A {!t} freezes everything the read path serves —
    the decided-slot count, the applied-command count, and the
    {e full-log digest} (the compacted-prefix digest folded over the
    retained suffix with the same {!mix} the compactor uses) — as
    plain immutable fields, so serving a read is a pointer load plus
    field reads, independent of log length. Snapshots are built at
    compaction-boundary cadence (every [publish_every] decided slots
    in {!Load}), which amortizes the one [O(retained)] digest fold
    over the window.

    Staleness is measured in decided slots: a snapshot at [version]
    [v] read while the live replica has decided [d] slots is [d - v]
    stale. A publisher that re-publishes whenever the live replica
    has advanced [publish_every] slots past the stored version — and
    does so before serving the boundary's reads — bounds every read's
    staleness by [publish_every - 1] (DESIGN.md §5i). *)

type t = {
  version : int;  (** slots decided when the snapshot was built *)
  base : int;  (** compaction base: slots digested below the suffix *)
  ops : int;  (** non-noop commands applied *)
  digest : int;
      (** full-log digest: prefix digest folded over the retained
          suffix — equals {!Smr.S.log_digest} of the state it was
          built from *)
  log_len : int;  (** retained slots represented ([version - base]) *)
  batches : Consensus.Value.t list list;
      (** the retained suffix at build time, one batch per slot,
          oldest first — shared immutable structure, not a copy *)
  built_at : int;  (** logical tick of the build *)
}

val mix : int -> int -> int
(** The digest step shared with {!Smr}'s compactor:
    [mix h c = (h * 1000003) lxor c]. *)

val digest_of : prefix_digest:int -> Consensus.Value.t list list -> int
(** Fold the prefix digest over retained batches, oldest first — the
    [O(retained)] walk the log-mode read path pays per read and the
    snapshot build pays once. *)

val build :
  version:int ->
  base:int ->
  ops:int ->
  prefix_digest:int ->
  batches:Consensus.Value.t list list ->
  tick:int ->
  t

(** One-cell snapshot store with a lock-free keep-newest swap: any
    number of reading domains, any number of publishing domains. *)
module Store : sig
  type snapshot = t
  type t

  val make : unit -> t
  (** Empty store — {!current} is [None] until the first publish. *)

  val publish : t -> snapshot -> bool
  (** Swap in the snapshot iff it is strictly newer (by [version])
      than the stored one — a CAS loop, never a lock. Returns whether
      the swap happened; a concurrent publish of an even newer
      snapshot wins, and losing is not an error. *)

  val current : t -> snapshot option
  (** The newest published snapshot: one atomic load. *)

  val published : t -> int
  (** Successful publishes so far. *)
end
