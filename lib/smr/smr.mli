(** State-machine replication on top of nonuniform consensus.

    The classical application of consensus, built as one automaton:
    replicas agree on a command batch per log slot by running one
    consensus instance per slot, all multiplexed over the same
    network (messages are tagged with their slot). A replica proposes
    the head of its pending-command queue for each slot it opens,
    keeps up to [pipeline] instances open at once, forwards pending
    commands to the detector's current leader (whose proposals are
    the ones that win once the detector stabilizes), retires decided
    instances that fall below a horizon, and compacts the applied log
    beyond a retention bound into a digest — so replica state stays
    bounded however long the log grows.

    Nonuniform consensus is the right tool when clients only talk to
    live replicas: a replica that crashes may have applied a divergent
    command to its copy, but no two live replicas ever diverge — and
    the detector this needs, [(Omega, Sigma-nu)], is strictly weaker
    than what uniform replication requires when half the replicas can
    fail. *)

val noop : Consensus.Value.t
(** The command ([-1]) decided by a slot whose winning proposal was
    the empty batch. *)

(** Packing a batch of commands into one consensus value, so per-slot
    batching needs no change to the consensus layer ([Value.t] stays
    [int]). *)
module Batch : sig
  val max_command : int
  (** Commands must lie in [[0, max_command]] ([2^14 - 1]) to be
      batchable. Unbatched replication ([batch = 1]) has no such
      limit: values travel raw. *)

  val max_len : int
  (** At most this many commands per batch (4). *)

  val encode : Consensus.Value.t list -> Consensus.Value.t
  (** [encode []] is {!noop}.
      @raise Invalid_argument on an over-long batch or an
      out-of-range command. *)

  val decode : Consensus.Value.t -> Consensus.Value.t list
  (** Left inverse of {!encode}; [decode noop = []]. *)
end

(** The per-slot consensus algorithm. *)
module type CONSENSUS = sig
  include Sim.Automaton.S with type input = Consensus.Value.t

  val decision : state -> Consensus.Value.t option
end

(** Replication throughput/footprint knobs, fixed per functor
    application so every replica of a system agrees on them (the
    exactly-once filter and the compaction schedule must be identical
    everywhere for live logs to stay comparable). *)
module type TUNING = sig
  val batch : int
  (** Commands packed per slot proposal, in [[1, Batch.max_len]].
      With [batch = 1] proposals travel raw (no encoding). *)

  val pipeline : int
  (** Consensus instances kept open ahead of the first undecided
      slot, [>= 1]. *)

  val window : int
  (** Own-command in-flight cap: at most this many of the replica's
      commands may sit in undecided proposals at once — the
      closed-loop client window of the load driver. *)

  val retain : int
  (** Applied-log slots kept in state; older slots are compacted
      away into [snapshot_digest]/[log_base]. *)

  val horizon : int
  (** Instance retirement depth, [>= pipeline]: an instance decided
      locally is dropped once it falls this many slots behind, and
      messages for slots further than this ahead are refused (the
      sender's pump re-offers them). A replica more than [horizon]
      slots behind every peer can no longer assemble quorums for its
      next slot, so the horizon bounds the tolerated lag. *)
end

module Defaults : TUNING
(** [batch 1, pipeline 1, window unbounded, retain unbounded,
    horizon 64] — the backwards-compatible configuration of
    {!Make}. *)

(** A replicated log. *)
module type S = sig
  type message
  (** Slot-tagged per-instance messages, plus command forwarding. *)

  include
    Sim.Automaton.S
      with type input = Consensus.Value.t list
       and type message := message
  (** [input] is the replica's queue of pending commands (the
      commands its own clients submit), proposed in batches as slots
      open; the empty batch ({!noop}) once exhausted or while the
      in-flight window is full. *)

  val log : state -> Consensus.Value.t list
  (** The retained applied suffix, flattened in slot order: slots
      [log_base .. log_base + length (batches st) - 1]. With
      unbounded retention this is the full applied prefix. A slot
      whose batch applied no fresh command contributes one {!noop}
      entry. *)

  val batches : state -> Consensus.Value.t list list
  (** The retained applied suffix, one batch per slot, oldest
      first. *)

  val log_base : state -> int
  (** Slots compacted away below the retained suffix (0 without
      compaction). *)

  val snapshot_digest : state -> int
  (** Order-sensitive digest of the compacted prefix: two replicas
      with equal [log_base] must have equal digests. *)

  val log_digest : state -> int
  (** Full-log digest: {!snapshot_digest} folded over the retained
      suffix with {!Snapshot.mix}. Recomputed from the live state on
      every call — the [O(retained)] log-mode read path the snapshot
      store exists to shortcut. Equal to [(snapshot st ~tick).digest]
      for any [tick]. *)

  val snapshot : state -> tick:int -> Snapshot.t
  (** Freeze the applied log into an immutable read snapshot
      ([version] = {!slots_decided}, [digest] = {!log_digest}),
      stamped with the build tick. One [O(retained)] digest fold;
      the retained batches are shared, not copied. *)

  val slots_decided : state -> int
  (** Slots this replica has decided and applied — O(1) and immune
      to compaction (the count of a truncated list would not be). *)

  val commands_applied : state -> int
  (** Non-{!noop} commands applied, across all decided slots. O(1). *)

  val current_slot : state -> int
  (** The first undecided slot. *)

  val open_instances : state -> int
  (** Live consensus instances — bounded by the horizon (plus the
      pipeline window), where it used to grow with the log. *)

  val pending_len : state -> int
  (** Commands still queued (submitted, not yet proposed). *)

  val pp_message : Format.formatter -> message -> unit
  val equal_message : message -> message -> bool
end

module Make_tuned (_ : TUNING) (_ : CONSENSUS) : S
(** Build a replicated log over any consensus automaton, with
    explicit tuning. The ambient failure-detector value is passed
    through to every instance (and consulted for the current
    leader when forwarding).
    @raise Invalid_argument at application time on invalid tuning. *)

module Make (_ : CONSENSUS) : S
(** [Make_tuned (Defaults)]. *)

module Over_anuc : S
(** SMR over [A_nuc] — drive it with an [(Omega, Sigma-nu+)] history. *)

module Over_stack : S
(** SMR over the full Theorem 6.28 stack: every slot runs its own
    [T_{Sigma-nu -> Sigma-nu+}] emulation and [A_nuc] — replication
    from the raw weakest detector [(Omega, Sigma-nu)]. Substantially
    heavier than {!Over_anuc} (one DAG gossip per open slot); meant to
    demonstrate composability, not throughput. *)
