(* A mutable FIFO of pending messages: the classic two-list queue with
   a tracked size, so the runner's hot path never appends to the tail
   of a list or calls [List.length].

   [front] holds the oldest elements in delivery order, [back] the
   newest in reverse order; [front_len] caches [List.length front].
   Each element crosses from [back] to [front] at most once, so
   enqueue and dequeue-oldest are amortized O(1); removal at FIFO
   index [k] (or of the first element satisfying a predicate at
   position [k]) is amortized O(k). *)

type 'a t = {
  mutable front : 'a list;
  mutable back : 'a list;
  mutable front_len : int;
  mutable size : int;
}

let create () = { front = []; back = []; front_len = 0; size = 0 }

let of_list xs =
  let len = List.length xs in
  { front = xs; back = []; front_len = len; size = len }

let length t = t.size
let is_empty t = t.size = 0

let enqueue t x =
  t.back <- x :: t.back;
  t.size <- t.size + 1

(* Ensure the oldest element, if any, heads [front]. *)
let normalize t =
  if t.front = [] && t.back <> [] then begin
    t.front <- List.rev t.back;
    t.back <- [];
    t.front_len <- t.size
  end

(* Pull everything into [front], in delivery order. *)
let consolidate t =
  if t.back <> [] then begin
    t.front <- t.front @ List.rev t.back;
    t.back <- [];
    t.front_len <- t.size
  end

let peek_oldest t =
  normalize t;
  match t.front with [] -> None | x :: _ -> Some x

let dequeue_oldest t =
  normalize t;
  match t.front with
  | [] -> None
  | x :: rest ->
    t.front <- rest;
    t.front_len <- t.front_len - 1;
    t.size <- t.size - 1;
    Some x

let remove_nth t i =
  if i < 0 || i >= t.size then
    invalid_arg
      (Printf.sprintf "Mailbox.remove_nth: index %d, size %d" i t.size);
  if i >= t.front_len then consolidate t;
  let rec split acc j = function
    | [] -> assert false
    | x :: rest when j = 0 ->
      t.front <- List.rev_append acc rest;
      x
    | x :: rest -> split (x :: acc) (j - 1) rest
  in
  let x = split [] i t.front in
  t.front_len <- t.front_len - 1;
  t.size <- t.size - 1;
  x

let insert_nth t i x =
  if i < 0 || i > t.size then
    invalid_arg
      (Printf.sprintf "Mailbox.insert_nth: index %d, size %d" i t.size);
  if i > t.front_len then consolidate t;
  let rec ins j = function
    | rest when j = 0 -> x :: rest
    | [] -> assert false
    | y :: rest -> y :: ins (j - 1) rest
  in
  t.front <- ins i t.front;
  t.front_len <- t.front_len + 1;
  t.size <- t.size + 1

let remove_first t pred =
  let rec scan acc = function
    | [] -> None
    | x :: rest when pred x -> Some (x, List.rev_append acc rest)
    | x :: rest -> scan (x :: acc) rest
  in
  match scan [] t.front with
  | Some (x, front') ->
    t.front <- front';
    t.front_len <- t.front_len - 1;
    t.size <- t.size - 1;
    Some x
  | None -> (
    match scan [] (List.rev t.back) with
    | None -> None
    | Some (x, tail') ->
      t.front <- t.front @ tail';
      t.back <- [];
      t.size <- t.size - 1;
      t.front_len <- t.size;
      Some x)

let to_list t = t.front @ List.rev t.back
let iter f t = List.iter f (to_list t)
let fold f init t = List.fold_left f init (to_list t)
