(** Running automata on real domains: the concurrent counterpart of
    {!Runner.Make}.

    [Executor.Make (A)] drives the {e same} deterministic automata as
    the simulator, but over a multi-domain transport and a {!Pool} of
    domains. Replicas are pinned to {e shards} ([p mod shards]); each
    round, every shard is claimed by some worker domain and its
    processes are stepped for a slice of consecutive steps. Work
    steals only across shards — a domain that drains its shard claims
    the next unclaimed shard off the pool counter, but a process
    never migrates mid-round, so each mailbox has a single consumer
    per round (the invariant the lock-free ring transport requires).
    Steps are counted in per-shard counters merged at round joins —
    not the former global atomic incremented on every step — so the
    executor's own bookkeeping adds no shared-cache contention to the
    hot path ({!outcome.sync_ops} counts what remains).

    Two transports are available behind {!Transport.CONCURRENT}:
    the mutex-per-mailbox {!Transport.Concurrent} (the differential
    oracle; supports every fault spec) and the lock-free
    {!Transport.Ring} (CAS producers into bounded MPSC rings;
    rejects reorder specs). With [jobs = 1] both yield the same
    deterministic schedule, which is what the transport-equivalence
    battery pins.

    Determinism boundary (DESIGN.md §5e): per-message fault verdicts
    are pure hashes of [(seed, src, dst, seq, time)] exactly as in the
    simulator, so the fault {e mechanism} adds no nondeterminism of
    its own — but [seq] and [time] depend on the interleaving, so a
    seeded executor run at [jobs > 1] is statistically, not bitwise,
    reproducible. Safety properties must hold on every interleaving;
    replaying a specific trace is the simulator's job.

    The [stop] predicate is evaluated between rounds, after all
    workers have joined — at that point every state in [states] is
    published and safe to read. A zero-step round is re-checked a
    bounded number of times under exponential backoff
    ([Domain.cpu_relax], then short sleeps capped at 1 ms) before the
    executor concludes every process has crashed — an idle executor
    neither spins a core nor miscounts: its [step_count] stays
    exact. *)

type transport = Mutex | Ring  (** which {!Transport.CONCURRENT} backend *)

val transport_name : transport -> string
(** ["mutex"] / ["ring"] — the CLI spellings. *)

val transport_of_string : string -> transport option

module Make (A : Automaton.S) : sig
  type outcome = {
    states : A.state array;  (** last state of each process *)
    step_count : int;  (** total steps taken by all processes *)
    final_time : int;  (** last value of the global clock *)
    stopped_early : bool;  (** [stop] fired before [max_steps] *)
    stats : Transport.stats;  (** transport traffic counters *)
    wall_seconds : float;  (** wall-clock duration *)
    sync_ops : int;
        (** global synchronizations performed by the executor's own
            coordination (pool task claims + joins) — excludes the
            transport's. The pre-shard design paid one atomic
            read-modify-write {e per step}; this counts rounds, and
            is 0 in a [jobs = 1] run. *)
  }

  val exec :
    ?jobs:int ->
    ?shards:int ->
    ?transport:transport ->
    ?capacity:int ->
    ?faults:Faults.t ->
    ?slice:int ->
    ?lambda_every:int ->
    ?stop:((Procset.Pid.t -> A.state) -> int -> bool) ->
    pattern:Failure_pattern.t ->
    fd:(Procset.Pid.t -> int -> Fd_value.t) ->
    inputs:(Procset.Pid.t -> A.input) ->
    max_steps:int ->
    unit ->
    outcome
  (** [exec ~pattern ~fd ~inputs ~max_steps ()] runs all processes
      until [max_steps] total steps or until [stop states time] holds
      at a round boundary. [step_count <= max_steps] always: rounds
      that could overshoot fall back to an exactly-budgeted
      sequential finishing round.

      [jobs] (default {!Pool.default_jobs}) is the domain count;
      [jobs <= 1] runs every slice inline on the calling domain — a
      sequential but still slice-interleaved schedule, identical for
      both transports on fault specs both support. [shards] (default
      [jobs], clamped to [\[1, n\]]) is the number of replica groups
      domains claim as units. [transport] (default [Mutex]) selects
      the backend; [capacity] is the ring's per-mailbox capacity.
      [slice] (default 64) is how many consecutive steps one process
      takes per round; smaller slices interleave more finely at more
      synchronization cost. [lambda_every] (default 8) forces every
      k-th step of a slice to receive lambda even when messages are
      pending, so a flooded process still takes the spontaneous steps
      protocols need for timeouts and retransmissions. Crashed
      processes ([pattern]) take no further steps from their crash
      tick onward. [fd p t] must be safe to call from any domain
      ({!Fd.Oracle} queries are pure, so oracles qualify).
      @raise Invalid_argument on a bad [slice]/[lambda_every], or a
      fault spec the chosen transport rejects. *)
end
