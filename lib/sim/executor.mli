(** Running automata on real domains: the concurrent counterpart of
    {!Runner.Make}.

    [Executor.Make (A)] drives the {e same} deterministic automata as
    the simulator, but over {!Transport.Concurrent} and a {!Pool} of
    domains: each round, every live process is claimed by some worker
    domain and stepped for a slice of consecutive steps; sends go
    through mutex-guarded mailboxes; every step consumes one tick of a
    global atomic clock, so times remain strictly increasing across
    the whole system (though no longer one-step-per-tick: concurrent
    steps own distinct ticks in an interleaving the OS chooses).

    Determinism boundary (DESIGN.md §5e): per-message fault verdicts
    are pure hashes of [(seed, src, dst, seq, time)] exactly as in the
    simulator, so the fault {e mechanism} adds no nondeterminism of
    its own — but [seq] and [time] depend on the interleaving, so a
    seeded executor run is statistically, not bitwise, reproducible.
    Safety properties must hold on every interleaving; replaying a
    specific trace is the simulator's job.

    The [stop] predicate is evaluated between rounds, after all
    workers have joined — at that point every state in [states] is
    published and safe to read. *)

module Make (A : Automaton.S) : sig
  type outcome = {
    states : A.state array;  (** last state of each process *)
    step_count : int;  (** total steps taken by all processes *)
    final_time : int;  (** last value of the global clock *)
    stopped_early : bool;  (** [stop] fired before [max_steps] *)
    stats : Transport.stats;  (** transport traffic counters *)
    wall_seconds : float;  (** wall-clock duration *)
  }

  val exec :
    ?jobs:int ->
    ?faults:Faults.t ->
    ?slice:int ->
    ?lambda_every:int ->
    ?stop:((Procset.Pid.t -> A.state) -> int -> bool) ->
    pattern:Failure_pattern.t ->
    fd:(Procset.Pid.t -> int -> Fd_value.t) ->
    inputs:(Procset.Pid.t -> A.input) ->
    max_steps:int ->
    unit ->
    outcome
  (** [exec ~pattern ~fd ~inputs ~max_steps ()] runs all processes
      until [max_steps] total steps or until [stop states time] holds
      at a round boundary.

      [jobs] (default {!Pool.default_jobs}) is the domain count;
      [jobs <= 1] runs every slice inline on the calling domain — a
      sequential but still slice-interleaved schedule. [slice]
      (default 64) is how many consecutive steps one process takes
      per round; smaller slices interleave more finely at more
      synchronization cost. [lambda_every] (default 8) forces every
      k-th step of a slice to receive lambda even when messages are
      pending, so a flooded process still takes the spontaneous steps
      protocols need for timeouts and retransmissions. Crashed
      processes ([pattern]) take no further steps from their crash
      tick onward. [fd p t] must be safe to call from any domain
      ({!Fd.Oracle} queries are pure, so oracles qualify). *)
end
