(** Mutable FIFO message buffers for the simulation hot path.

    A two-list queue with a tracked size: [enqueue] and
    {!dequeue_oldest} are amortized O(1), {!length} is O(1), and
    removing the element at FIFO index [k] — or the first element
    satisfying a predicate at FIFO position [k] — is amortized O(k).
    This replaces the [buffer @ [env]] appends and [List.length]
    scans that made every simulated send and randomized receive
    linear in the mailbox depth. *)

type 'a t

val create : unit -> 'a t
(** A fresh empty mailbox. *)

val of_list : 'a list -> 'a t
(** [of_list xs] holds the elements of [xs], oldest first. *)

val length : 'a t -> int
(** O(1). *)

val is_empty : 'a t -> bool

val enqueue : 'a t -> 'a -> unit
(** Append at the newest end. O(1). *)

val peek_oldest : 'a t -> 'a option
(** The oldest element, without removing it. Amortized O(1). *)

val dequeue_oldest : 'a t -> 'a option
(** Remove and return the oldest element. Amortized O(1). *)

val remove_nth : 'a t -> int -> 'a
(** [remove_nth t k] removes and returns the element at FIFO index
    [k] (0 = oldest), preserving the order of the rest. Amortized
    O(k). @raise Invalid_argument if [k] is out of bounds. *)

val insert_nth : 'a t -> int -> 'a -> unit
(** [insert_nth t k x] inserts [x] at FIFO index [k] (0 = oldest,
    [length t] = newest end), shifting later elements back by one.
    Used by the fault layer to deliver a reordered message ahead of
    already-queued ones; O(k) worst case, which only ever runs on the
    fault path. @raise Invalid_argument if [k < 0] or
    [k > length t]. *)

val remove_first : 'a t -> ('a -> bool) -> 'a option
(** Remove and return the oldest element satisfying the predicate,
    preserving the order of the rest; [None] if no element matches.
    Amortized O(position of the match), O(n) on a miss. *)

val to_list : 'a t -> 'a list
(** Contents, oldest first. Does not modify the mailbox. O(n). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest-first iteration. *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
(** Oldest-first fold. *)
