(** Monotonic wall-clock readings for metrics.

    All [wall_seconds]-style metrics in the repository must be
    computed from this module, never from raw [Unix.gettimeofday]
    deltas: a wall-clock step (e.g. NTP) between two raw readings
    can make a duration negative or wildly wrong. *)

val now : unit -> float
(** The current time in seconds, monotonically nondecreasing across
    calls within a process: a backwards wall-clock step is absorbed
    by returning the largest value seen so far. The high-water mark
    is maintained atomically, so readings stay monotonic across
    domains too.

    Discipline under parallelism: a [wall_seconds] metric is one
    {!elapsed} read on the coordinating domain after workers join —
    never a sum of per-domain spans, which would report CPU time
    inflated by the job count instead of wall time. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0] clamped at [0.0]. [t0] should be a
    previous result of {!now}. *)
