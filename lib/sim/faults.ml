(* Declarative per-link network faults (drop / duplicate / reorder /
   partition), applied deterministically from a spec-local seed.

   Determinism is load-bearing in two ways:

   - Fault decisions are pure hashes of (spec seed, src, dst, seq,
     time, salt), NOT draws from the scheduler's RNG. A spec with all
     rates zero therefore leaves the scheduler's random stream — and
     hence every pre-existing seeded run — completely untouched, and
     two runs with the same seed and the same spec make identical
     fault decisions message for message.

   - The same verdict can be recomputed from the recorded trace alone:
     [Runner.replay] re-derives each message's (src, dst, seq,
     send time) while re-executing the schedule, so a faulty run
     round-trips exactly.

   A process's messages to itself are exempt from every fault: they
   model local delivery, not the network (and severing them would
   break algorithms in uninteresting ways). *)

open Procset

type partition = {
  from_t : int;
  until_t : int;
  groups : Pset.t list;
}

type t = {
  drop : float;
  dup : float;
  reorder : int;
  partitions : partition list;
  seed : int;
}

let none = { drop = 0.0; dup = 0.0; reorder = 0; partitions = []; seed = 0 }

let make ?(drop = 0.0) ?(dup = 0.0) ?(reorder = 0) ?(partitions = [])
    ?(seed = 0) () =
  let check_rate name r =
    if not (r >= 0.0 && r <= 1.0) then
      invalid_arg (Printf.sprintf "Faults.make: %s = %g not in [0, 1]" name r)
  in
  check_rate "drop" drop;
  check_rate "dup" dup;
  if reorder < 0 then
    invalid_arg (Printf.sprintf "Faults.make: reorder = %d < 0" reorder);
  List.iter
    (fun pt ->
      if pt.from_t > pt.until_t then
        invalid_arg
          (Printf.sprintf "Faults.make: partition window [%d, %d] is empty"
             pt.from_t pt.until_t))
    partitions;
  { drop; dup; reorder; partitions; seed }

let is_none f =
  f.drop = 0.0 && f.dup = 0.0 && f.reorder = 0 && f.partitions = []

(* [Hashtbl.hash] of a small int tuple is a full deterministic mix of
   every component into [0, 2^30); dividing by 2^30 gives a uniform
   enough unit float for fault sampling. *)
let unit_float f ~src ~dst ~seq ~time ~salt =
  let h = Hashtbl.hash (f.seed, src, dst, seq, time, salt) in
  float_of_int (h land 0x3FFFFFFF) /. 1073741824.0

let severed f ~src ~dst ~time =
  (not (Pid.equal src dst))
  && List.exists
       (fun pt ->
         time >= pt.from_t && time <= pt.until_t
         && not
              (List.exists
                 (fun g -> Pset.mem src g && Pset.mem dst g)
                 pt.groups))
       f.partitions

type verdict = { copies : int; displace : int }

let pass = { copies = 1; displace = 0 }

let verdict f ~src ~dst ~seq ~time =
  if is_none f || Pid.equal src dst then pass
  else if severed f ~src ~dst ~time then { copies = 0; displace = 0 }
  else begin
    let copies =
      if f.drop > 0.0 && unit_float f ~src ~dst ~seq ~time ~salt:1 < f.drop
      then 0
      else if f.dup > 0.0 && unit_float f ~src ~dst ~seq ~time ~salt:2 < f.dup
      then 2
      else 1
    in
    let displace =
      if copies = 0 || f.reorder = 0 then 0
      else
        int_of_float
          (unit_float f ~src ~dst ~seq ~time ~salt:3
          *. float_of_int (f.reorder + 1))
    in
    { copies; displace }
  end

let pp_partition fmt pt =
  Format.fprintf fmt "[%d,%d]:%a" pt.from_t pt.until_t
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "|")
       Pset.pp)
    pt.groups

let pp fmt f =
  if is_none f then Format.pp_print_string fmt "no faults"
  else
    Format.fprintf fmt "@[<h>drop %.3g, dup %.3g, reorder %d%a, seed %d@]"
      f.drop f.dup f.reorder
      (fun fmt -> function
        | [] -> ()
        | pts ->
          Format.fprintf fmt ", partitions %a"
            (Format.pp_print_list
               ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ";")
               pp_partition)
            pts)
      f.partitions f.seed
