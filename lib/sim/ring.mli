(** A bounded lock-free MPSC ring buffer with a lossless overflow
    side-queue — the fast mailbox under {!Transport.Ring}.

    The ring is a power-of-two array of cells guarded by {e per-slot
    sequence numbers} (Vyukov's bounded-queue discipline, specialized
    to a single consumer): a producer claims the tail position with
    one CAS, writes its payload into the claimed cell, and {e then}
    publishes the cell by storing [position + 1] into the slot's
    sequence number; the consumer reads the head slot's sequence
    number first and touches the cell only after observing the
    published value. Every payload write is therefore ordered before
    its publication and every payload read after it, with OCaml's SC
    atomics carrying the happens-before edge — the cells themselves
    need no atomicity.

    Why ABA cannot happen here (DESIGN.md §5i): a slot's sequence
    number only ever grows — [pos] (free for the producer whose claim
    lands on [pos]), then [pos + 1] (published), then
    [pos + capacity] (consumed, free for the next lap) — and the
    single consumer is the only writer of the third transition, so no
    producer can observe a stale sequence value that aliases a future
    lap.

    When the ring is full — or whenever earlier messages are already
    waiting in the side-queue — a push falls back to a small
    mutex-guarded overflow queue instead of failing or dropping: no
    message is ever lost, so the transport conservation law
    [sent - dropped + duplicated = delivered + undelivered_at_stop]
    is preserved by construction. Per-producer FIFO is preserved
    across the fallback because (a) a producer's pushes are
    sequential, (b) a producer routes to the overflow queue whenever
    the queue is non-empty, and (c) the consumer serves the overflow
    queue only when the ring is completely drained — so a producer's
    ring-resident message can never be overtaken by a later message
    it diverted to the overflow queue, nor vice versa.

    Single-consumer contract: [pop], [length]'s exactness, and
    [to_list] assume one popping domain (the executor pins each
    mailbox's consumer to the domain stepping that process). Pushes
    are safe from any number of domains. *)

type 'a t

val create : capacity:int -> 'a t
(** A fresh ring holding up to [capacity] messages before pushes
    spill to the overflow queue. [capacity] is rounded up to a power
    of two, minimum 2. @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
(** The rounded ring capacity. *)

val push : 'a t -> 'a -> unit
(** Enqueue from any domain. Lock-free while the ring has space;
    takes the overflow mutex (and counts it in {!lock_ops}) only when
    the ring is full or older messages already sit in the overflow
    queue. Never blocks on the consumer, never loses the message. *)

val pop : 'a t -> 'a option
(** Dequeue the oldest message (single consumer only). Drains the
    ring before the overflow queue — ring entries always predate
    overflow entries — and returns [None] if the mailbox is empty or
    the head claim is still being published by a slow producer (a
    transient state; the message is not lost). *)

val length : 'a t -> int
(** Pushed minus popped. Exact when no push is concurrently in
    flight; otherwise a snapshot that may lag by the in-flight
    pushes. *)

val is_empty : 'a t -> bool

val to_list : 'a t -> 'a list
(** Contents oldest-first {e per producer} (ring first, then
    overflow). Call only when no producer is active — a post-join
    drain, exactly like {!Transport.Concurrent.undelivered}. Does not
    modify the ring. *)

val cas_retries : 'a t -> int
(** Failed tail-CAS attempts plus stale-tail re-reads — the ring's
    contention counter. 0 in any single-domain run. *)

val lock_ops : 'a t -> int
(** Overflow-mutex acquisitions (push and pop sides). The mutex
    backend pays one of these per send {e and} per receive; the ring
    pays them only on overflow — the contention gap B14 measures. *)

val overflows : 'a t -> int
(** Pushes that spilled to the overflow queue. *)
