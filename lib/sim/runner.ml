open Procset

type metrics = {
  steps_per_process : int array;
  sent : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  reordered : int;
  undelivered_at_stop : int;
  mailbox_hwm : int;
  wall_seconds : float;
}

let pp_metrics fmt m =
  Format.fprintf fmt
    "@[<h>sent %d, delivered %d, dropped %d, duplicated %d, reordered %d, \
     undelivered %d, mailbox hwm %d, %.3f s@]"
    m.sent m.delivered m.dropped m.duplicated m.reordered
    m.undelivered_at_stop m.mailbox_hwm m.wall_seconds

module Make (A : Automaton.S) = struct
  type recorded_step = {
    time : int;
    pid : Pid.t;
    received : A.message Envelope.t option;
    fd : Fd_value.t;
    state_after : A.state;
  }

  type run = {
    pattern : Failure_pattern.t;
    faults : Faults.t;
    states : A.state array;
    steps : recorded_step array;
    step_count : int;
    messages_sent : int;
    undelivered : A.message Envelope.t list;
    stopped_early : bool;
    metrics : metrics;
  }

  type msg_choice =
    | Lambda
    | Oldest
    | Oldest_from of Pid.t
    | Matching of (A.message Envelope.t -> bool)

  type action = { actor : Pid.t; choice : msg_choice }

  exception Script_error of string

  (* Mutable execution context shared by the fair and scripted modes.
     The network itself — mailboxes, send sequencing, fault verdicts,
     traffic counters, the clock — lives in [Transport.Simulated]; the
     ctx keeps what is the scheduler's own: states, the trace, and
     per-process step counters. *)
  type ctx = {
    n : int;
    c_pattern : Failure_pattern.t;
    c_faults : Faults.t;
    fd : Pid.t -> int -> Fd_value.t;
    states : A.state array;
    net : A.message Transport.Simulated.t;
    steps_of : int array; (* per-process step counter *)
    mutable rev_steps : recorded_step list;
    mutable step_count : int;
    wall_start : float;
    record : bool;
  }

  let make_ctx ~pattern ~faults ~fd ~inputs ~record =
    let n = Failure_pattern.n pattern in
    {
      n;
      c_pattern = pattern;
      c_faults = faults;
      fd;
      states = Array.init n (fun p -> A.initial ~n ~self:p (inputs p));
      net = Transport.Simulated.create ~who:A.name ~n ~faults ();
      steps_of = Array.make n 0;
      rev_steps = [];
      step_count = 0;
      wall_start = Clock.now ();
      record;
    }

  let time ctx = Transport.Simulated.now ctx.net

  (* Remove and return the first buffered message for [p] satisfying
     [pred], preserving the order of the others. *)
  let take_matching ctx p pred = Transport.Simulated.take_first ctx.net p pred
  let take_nth ctx p i = Transport.Simulated.take_nth ctx.net p i

  (* One atomic step of process [p] receiving [received] at the current
     time. Advances the clock. *)
  let do_step ctx p received =
    let d = ctx.fd p (time ctx) in
    let state, sends = A.step ~n:ctx.n ~self:p ctx.states.(p) received d in
    ctx.states.(p) <- state;
    Transport.Simulated.send ctx.net ~src:p sends;
    if received <> None then Transport.Simulated.note_delivered ctx.net;
    if ctx.record then
      ctx.rev_steps <-
        { time = time ctx; pid = p; received; fd = d; state_after = state }
        :: ctx.rev_steps;
    ctx.steps_of.(p) <- ctx.steps_of.(p) + 1;
    ctx.step_count <- ctx.step_count + 1;
    Transport.Simulated.tick ctx.net

  let finish ctx ~stopped_early =
    let undelivered = Transport.Simulated.undelivered ctx.net in
    let s = Transport.Simulated.stats ctx.net in
    let metrics =
      {
        steps_per_process = Array.copy ctx.steps_of;
        sent = s.Transport.sent;
        delivered = s.Transport.delivered;
        dropped = s.Transport.dropped;
        duplicated = s.Transport.duplicated;
        reordered = s.Transport.reordered;
        undelivered_at_stop = List.length undelivered;
        mailbox_hwm = s.Transport.mailbox_hwm;
        wall_seconds = Clock.elapsed ctx.wall_start;
      }
    in
    {
      pattern = ctx.c_pattern;
      faults = ctx.c_faults;
      states = Array.copy ctx.states;
      steps = Array.of_list (List.rev ctx.rev_steps);
      step_count = ctx.step_count;
      messages_sent = s.Transport.sent;
      undelivered;
      stopped_early;
      metrics;
    }

  let shuffle rng a =
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done

  let exec ?(seed = 0) ?(faults = Faults.none) ?max_msg_age
      ?(lambda_prob = 0.15) ?(stop = fun _ _ -> false) ?(record = true)
      ~pattern ~fd ~inputs ~max_steps () =
    let ctx = make_ctx ~pattern ~faults ~fd ~inputs ~record in
    let n = ctx.n in
    let max_msg_age =
      match max_msg_age with Some a -> max 1 a | None -> 4 * n
    in
    let rng = Random.State.make [| seed; 0x5eed |] in
    let order = Array.init n (fun i -> i) in
    let stopped = ref false in
    let states_accessor p = ctx.states.(p) in
    while (not !stopped) && ctx.step_count < max_steps do
      shuffle rng order;
      Array.iter
        (fun p ->
          if
            (not !stopped)
            && ctx.step_count < max_steps
            && not (Failure_pattern.crashed ctx.c_pattern p (time ctx))
          then begin
            let received =
              match Transport.Simulated.peek_oldest ctx.net p with
              | None -> None
              | Some oldest ->
                if time ctx - oldest.Envelope.sent_at >= max_msg_age then
                  Transport.Simulated.recv ctx.net p
                else if Random.State.float rng 1.0 < lambda_prob then None
                else
                  Some (take_nth ctx p
                          (Random.State.int rng
                             (Transport.Simulated.depth ctx.net p)))
            in
            do_step ctx p received
          end)
        order;
      if stop states_accessor (time ctx) then stopped := true
    done;
    finish ctx ~stopped_early:!stopped

  let exec_script ?(record = true) ?(faults = Faults.none) ~pattern ~fd
      ~inputs ~script () =
    let ctx = make_ctx ~pattern ~faults ~fd ~inputs ~record in
    List.iter
      (fun { actor = p; choice } ->
        if not (Pid.valid ~n:ctx.n p) then
          raise (Script_error (Printf.sprintf "invalid actor pid %d" p));
        if Failure_pattern.crashed ctx.c_pattern p (time ctx) then
          raise
            (Script_error
               (Printf.sprintf "actor p%d is crashed at time %d" p (time ctx)));
        let received =
          match choice with
          | Lambda -> None
          | Oldest -> (
            match take_matching ctx p (fun _ -> true) with
            | Some e -> Some e
            | None ->
              raise
                (Script_error
                   (Printf.sprintf "no pending message for p%d at time %d" p
                      (time ctx))))
          | Oldest_from src -> (
            match
              take_matching ctx p (fun e -> Pid.equal e.Envelope.src src)
            with
            | Some e -> Some e
            | None ->
              raise
                (Script_error
                   (Printf.sprintf
                      "no pending message from p%d for p%d at time %d" src p
                      (time ctx))))
          | Matching pred -> (
            match take_matching ctx p pred with
            | Some e -> Some e
            | None ->
              raise
                (Script_error
                   (Printf.sprintf
                      "no pending message matching predicate for p%d at \
                       time %d"
                      p (time ctx))))
        in
        do_step ctx p received)
      script;
    finish ctx ~stopped_early:false

  module Session = struct
    type t = ctx

    let create ?(record = true) ?(faults = Faults.none) ~pattern ~fd ~inputs
        () =
      make_ctx ~pattern ~faults ~fd ~inputs ~record

    let take_choice ctx p choice =
      match choice with
      | Some Lambda -> None
      | Some Oldest -> (
        match take_matching ctx p (fun _ -> true) with
        | Some e -> Some e
        | None ->
          raise
            (Script_error
               (Printf.sprintf "no pending message for p%d at time %d" p
                  (time ctx))))
      | Some (Oldest_from src) -> (
        match take_matching ctx p (fun e -> Pid.equal e.Envelope.src src) with
        | Some e -> Some e
        | None ->
          raise
            (Script_error
               (Printf.sprintf "no pending message from p%d for p%d at time %d"
                  src p (time ctx))))
      | Some (Matching pred) -> (
        match take_matching ctx p pred with
        | Some e -> Some e
        | None ->
          raise
            (Script_error
               (Printf.sprintf
                  "no pending message matching predicate for p%d at time %d" p
                  (time ctx))))
      | None -> take_matching ctx p (fun _ -> true)

    let step ?choice ctx p =
      if not (Pid.valid ~n:ctx.n p) then
        raise (Script_error (Printf.sprintf "invalid actor pid %d" p));
      if Failure_pattern.crashed ctx.c_pattern p (time ctx) then
        raise
          (Script_error
             (Printf.sprintf "actor p%d is crashed at time %d" p (time ctx)));
      let received = take_choice ctx p choice in
      do_step ctx p received

    let state ctx p = ctx.states.(p)
    let time = time
    let pending ctx p = Transport.Simulated.pending ctx.net p
    let finish ctx = finish ctx ~stopped_early:false
  end

  type replay_step = {
    r_pid : Pid.t;
    r_received : A.message Envelope.t option;
    r_fd : Fd_value.t;
  }

  let to_replay steps =
    List.map
      (fun s -> { r_pid = s.pid; r_received = s.received; r_fd = s.fd })
      steps

  let merge_traces (s0 : recorded_step list) (s1 : recorded_step list) =
    let rec interleave acc (s0 : recorded_step list)
        (s1 : recorded_step list) =
      match s0, s1 with
      | [], rest -> List.rev acc @ rest
      | rest, [] -> List.rev acc @ rest
      | a :: s0', b :: s1' ->
        if a.time <= b.time then interleave (a :: acc) s0' s1
        else interleave (b :: acc) s0 s1'
    in
    to_replay (interleave [] s0 s1)

  let replay ~n ?(faults = Faults.none) ~inputs steps =
    let states = Array.init n (fun p -> A.initial ~n ~self:p (inputs p)) in
    let buffers = Array.init n (fun _ -> Mailbox.create ()) in
    let send_seq = Array.make n 0 in
    let error = ref None in
    let fail msg = error := Some msg in
    let take_identity p env =
      Mailbox.remove_first buffers.(p) (fun e ->
          Envelope.same_identity e env
          && A.equal_message e.Envelope.payload env.Envelope.payload)
    in
    let time = ref 1 in
    List.iter
      (fun { r_pid = p; r_received; r_fd } ->
        if !error = None then begin
          (match r_received with
          | None -> ()
          | Some env -> (
            match take_identity env.Envelope.dst env with
            | Some _ -> ()
            | None ->
              fail
                (Printf.sprintf
                   "step of p%d at replay position %d: received message \
                    p%d->p%d#%d not in buffer"
                   p !time env.Envelope.src env.Envelope.dst
                   env.Envelope.seq)));
          if !error = None then begin
            let state, sends = A.step ~n ~self:p states.(p) r_received r_fd in
            states.(p) <- state;
            List.iter
              (fun (dst, payload) ->
                let seq = send_seq.(p) in
                send_seq.(p) <- seq + 1;
                (* Same identity, same send time, same spec: the
                   verdict recomputed here is the one the original
                   execution applied. Displacement only permutes the
                   buffer, which identity matching ignores. *)
                let v = Faults.verdict faults ~src:p ~dst ~seq ~time:!time in
                if v.Faults.copies > 0 then begin
                  let env =
                    { Envelope.src = p; dst; seq; sent_at = !time; payload }
                  in
                  Mailbox.enqueue buffers.(dst) env;
                  if v.Faults.copies = 2 then Mailbox.enqueue buffers.(dst) env
                end)
              sends
          end;
          incr time
        end)
      steps;
    match !error with None -> Ok states | Some msg -> Error msg

  let conformance ?fairness_window ?delivery_bound ~fd ~inputs (run : run) =
    if run.step_count = 0 then
      (* an empty run has no steps to violate any property; Ok by
         definition rather than by a vacuous delivery check *)
      Ok ()
    else if Array.length run.steps = 0 then
      Error
        (Printf.sprintf
           "conformance: run took %d steps but recorded none (executed \
            with ~record:false?); nothing to validate"
           run.step_count)
    else begin
    let n = Failure_pattern.n run.pattern in
    let fairness_window =
      match fairness_window with Some w -> w | None -> 4 * n
    in
    let steps = Array.to_list run.steps in
    let ( let* ) = Result.bind in
    let err fmt = Format.kasprintf (fun m -> Error m) fmt in
    (* (3) crash respect and detector consistency *)
    let* () =
      List.fold_left
        (fun acc (s : recorded_step) ->
          let* () = acc in
          if Failure_pattern.crashed run.pattern s.pid s.time then
            err "p%d stepped at time %d, at or after its crash" s.pid s.time
          else if not (Fd_value.equal s.fd (fd s.pid s.time)) then
            err "p%d saw a detector value differing from H(p, %d)" s.pid
              s.time
          else Ok ())
        (Ok ()) steps
    in
    (* (4)/(5) strictly increasing times *)
    let* _ =
      List.fold_left
        (fun acc (s : recorded_step) ->
          let* prev = acc in
          if s.time > prev then Ok s.time
          else err "times not strictly increasing at step of p%d (%d)" s.pid
            s.time)
        (Ok 0) steps
    in
    (* (6) fairness surrogate on full windows *)
    let last_time =
      List.fold_left (fun acc (s : recorded_step) -> max acc s.time) 0 steps
    in
    let* () =
      Procset.Pset.fold
        (fun p acc ->
          let* () = acc in
          let step_times =
            List.filter_map
              (fun (s : recorded_step) ->
                if Pid.equal s.pid p then Some s.time else None)
              steps
          in
          let rec gaps prev = function
            | [] ->
              (* allow the trailing partial window *)
              if last_time - prev > fairness_window + n then
                err "correct p%d silent from %d to the end (%d)" p prev
                  last_time
              else Ok ()
            | t :: rest ->
              if t - prev > fairness_window + n then
                err "correct p%d took no step between %d and %d" p prev t
              else gaps t rest
          in
          gaps 0 step_times)
        (Failure_pattern.correct run.pattern)
        (Ok ())
    in
    (* (7) delivery surrogate: leftovers to correct processes are
       recent. Skipped for faulty runs: property (7) is an
       infinite-run promise, and under injected faults the finite
       surrogate is simply false — a reordered head can starve an old
       message past any bound, and a partitioned sender's messages
       are legally read as deliveries delayed past the horizon. *)
    let bound =
      match delivery_bound with Some b -> b | None -> 40 * n
    in
    let* () =
      if not (Faults.is_none run.faults) then Ok ()
      else
        List.fold_left
          (fun acc e ->
            let* () = acc in
            if
              Procset.Pset.mem e.Envelope.dst
                (Failure_pattern.correct run.pattern)
              && last_time - e.Envelope.sent_at > bound
            then
              err "message %a->%a sent at %d still undelivered at %d"
                Pid.pp e.Envelope.src Pid.pp e.Envelope.dst e.Envelope.sent_at
                last_time
            else Ok ())
          (Ok ()) run.undelivered
    in
    (* (1) applicability, via replay under the run's own fault spec *)
    match replay ~n ~faults:run.faults ~inputs (to_replay steps) with
    | Ok _ -> Ok ()
    | Error e -> Error e
    end
end
