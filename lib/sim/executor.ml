module Make (A : Automaton.S) = struct
  module T = Transport.Concurrent

  type outcome = {
    states : A.state array;
    step_count : int;
    final_time : int;
    stopped_early : bool;
    stats : Transport.stats;
    wall_seconds : float;
  }

  let exec ?jobs ?(faults = Faults.none) ?(slice = 64) ?(lambda_every = 8)
      ?(stop = fun _ _ -> false) ~pattern ~fd ~inputs ~max_steps () =
    let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
    if slice < 1 then invalid_arg "Executor.exec: slice must be >= 1";
    if lambda_every < 2 then
      invalid_arg "Executor.exec: lambda_every must be >= 2";
    let n = Failure_pattern.n pattern in
    let net : A.message T.t = T.create ~who:A.name ~n ~faults () in
    let states = Array.init n (fun p -> A.initial ~n ~self:p (inputs p)) in
    let steps_done = Atomic.make 0 in
    let wall_start = Clock.now () in
    (* One slice of process [p] on whichever domain claimed it. Only
       this domain touches [states.(p)] until the round's join, which
       publishes the write before [stop] or the next round reads it. *)
    let run_slice p =
      let continue = ref true in
      let k = ref 0 in
      while !continue && !k < slice && Atomic.get steps_done < max_steps do
        let t = T.tick net in
        if Failure_pattern.crashed pattern p t then continue := false
        else begin
          let received =
            if (!k + 1) mod lambda_every = 0 then None else T.recv net p
          in
          let d = fd p t in
          let st, sends = A.step ~n ~self:p states.(p) received d in
          states.(p) <- st;
          T.send net ~src:p sends;
          if received <> None then T.note_delivered net;
          Atomic.incr steps_done;
          incr k
        end
      done
    in
    let stopped = ref false in
    let live = ref true in
    while !live && (not !stopped) && Atomic.get steps_done < max_steps do
      let before = Atomic.get steps_done in
      Pool.run ~jobs n (fun ~worker:_ p ->
          if not (Failure_pattern.crashed pattern p (T.now net)) then
            run_slice p);
      (* every live process makes progress each round (lambda steps
         need no messages), so a zero-step round means everyone has
         crashed — without this the loop would spin forever *)
      if Atomic.get steps_done = before then live := false
      else if stop (fun p -> states.(p)) (T.now net) then stopped := true
    done;
    {
      states = Array.copy states;
      step_count = Atomic.get steps_done;
      final_time = T.now net;
      stopped_early = !stopped;
      stats = T.stats net;
      wall_seconds = Clock.elapsed wall_start;
    }
end
