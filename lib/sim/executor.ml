type transport = Mutex | Ring

let transport_name = function Mutex -> "mutex" | Ring -> "ring"

let transport_of_string = function
  | "mutex" -> Some Mutex
  | "ring" -> Some Ring
  | _ -> None

(* Bounded exponential backoff for the liveness re-check: spin with
   [Domain.cpu_relax] first (attempt 1), then sleep doubling spans
   capped at 1 ms — so a transiently idle executor neither burns a
   core nor oversleeps a wakeup. *)
let backoff attempt =
  if attempt <= 1 then
    for _ = 1 to 64 do
      Domain.cpu_relax ()
    done
  else
    let span = 1e-6 *. Float.of_int (1 lsl min 10 (attempt - 1)) in
    Unix.sleepf (Float.min 1e-3 span)

(* Rounds an idle executor re-checks for progress before concluding
   every process has crashed. Bounded, so termination stays prompt;
   > 1, so a slow domain finishing its published writes late cannot
   be mistaken for global death by one unlucky zero-step round. *)
let idle_rechecks = 3

module Make (A : Automaton.S) = struct
  type outcome = {
    states : A.state array;
    step_count : int;
    final_time : int;
    stopped_early : bool;
    stats : Transport.stats;
    wall_seconds : float;
    sync_ops : int;
  }

  (* The engine is generic in the transport backend; [exec] below
     instantiates it per [transport] value. *)
  module Engine (T : Transport.CONCURRENT) = struct
    let exec ~jobs ~shards ~capacity ~faults ~slice ~lambda_every ~stop
        ~pattern ~fd ~inputs ~max_steps () =
      let n = Failure_pattern.n pattern in
      let shards = max 1 (min shards n) in
      let net : A.message T.t =
        T.create ~who:A.name ?capacity ~n ~faults ()
      in
      let states = Array.init n (fun p -> A.initial ~n ~self:p (inputs p)) in
      (* Per-shard step counters: shard [s] owns processes
         [p with p mod shards = s], and only the domain that claimed
         shard [s] this round writes [shard_steps.(s)] — merged at
         the round join instead of contending on one global atomic
         per step (the old [steps_done] hot spot). *)
      let shard_steps = Array.make shards 0 in
      let total () = Array.fold_left ( + ) 0 shard_steps in
      let sync_ops = ref 0 in
      let wall_start = Clock.now () in
      (* One slice of process [p] on whichever domain claimed its
         shard. Only this domain touches [states.(p)] until the
         round's join, which publishes the write before [stop] or the
         next round reads it. Returns the steps actually taken, which
         the caller credits to the process's shard. *)
      let run_slice p budget =
        let continue = ref true in
        let k = ref 0 in
        while !continue && !k < budget do
          let t = T.tick net in
          if Failure_pattern.crashed pattern p t then continue := false
          else begin
            let received =
              if (!k + 1) mod lambda_every = 0 then None else T.recv net p
            in
            let d = fd p t in
            let st, sends = A.step ~n ~self:p states.(p) received d in
            states.(p) <- st;
            T.send net ~src:p sends;
            if received <> None then T.note_delivered net;
            incr k
          end
        done;
        !k
      in
      (* Step every live process of shard [s] for up to [slice] steps
         each. The shard is the unit of work-stealing: a domain that
         drains its own shard claims the next unclaimed one off the
         pool counter, but processes never migrate within a round, so
         each ring mailbox keeps a single consumer per round. *)
      let run_shard s =
        let local = ref 0 in
        let p = ref s in
        while !p < n do
          if not (Failure_pattern.crashed pattern !p (T.now net)) then
            local := !local + run_slice !p slice;
          p := !p + shards
        done;
        shard_steps.(s) <- shard_steps.(s) + !local
      in
      (* Endgame (or jobs = 1): step processes in pid order on this
         domain with an exact step budget, so [step_count] can never
         exceed [max_steps]. The parallel path only runs full rounds
         ([rem >= n * slice]), which cannot overshoot either. *)
      let run_round_seq rem =
        let budget = ref rem in
        for p = 0 to n - 1 do
          if
            !budget > 0
            && not (Failure_pattern.crashed pattern p (T.now net))
          then begin
            let took = run_slice p (min slice !budget) in
            budget := !budget - took;
            shard_steps.(p mod shards) <- shard_steps.(p mod shards) + took
          end
        done
      in
      let stopped = ref false in
      let live = ref true in
      let idle = ref 0 in
      while !live && (not !stopped) && total () < max_steps do
        let before = total () in
        let rem = max_steps - before in
        if jobs <= 1 || rem < n * slice then run_round_seq rem
        else begin
          Pool.run ~jobs shards (fun ~worker:_ s -> run_shard s);
          (* the pool's shared counter is the round's only global
             synchronization: one claim per shard plus the join *)
          sync_ops := !sync_ops + shards + 1
        end;
        if total () = before then begin
          (* a zero-step round normally means every process has
             crashed (live processes always take lambda steps); relax
             then re-check a bounded number of times instead of
             spinning on the transport *)
          incr idle;
          if !idle > idle_rechecks then live := false else backoff !idle
        end
        else begin
          idle := 0;
          if stop (fun p -> states.(p)) (T.now net) then stopped := true
        end
      done;
      {
        states = Array.copy states;
        step_count = total ();
        final_time = T.now net;
        stopped_early = !stopped;
        stats = T.stats net;
        wall_seconds = Clock.elapsed wall_start;
        sync_ops = !sync_ops;
      }
  end

  module Engine_mutex = Engine (Transport.Concurrent)
  module Engine_ring = Engine (Transport.Ring)

  let exec ?jobs ?shards ?(transport = Mutex) ?capacity
      ?(faults = Faults.none) ?(slice = 64) ?(lambda_every = 8)
      ?(stop = fun _ _ -> false) ~pattern ~fd ~inputs ~max_steps () =
    let jobs =
      match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
    in
    let shards = match shards with Some s -> max 1 s | None -> jobs in
    if slice < 1 then invalid_arg "Executor.exec: slice must be >= 1";
    if lambda_every < 2 then
      invalid_arg "Executor.exec: lambda_every must be >= 2";
    match transport with
    | Mutex ->
      Engine_mutex.exec ~jobs ~shards ~capacity ~faults ~slice ~lambda_every
        ~stop ~pattern ~fd ~inputs ~max_steps ()
    | Ring ->
      Engine_ring.exec ~jobs ~shards ~capacity ~faults ~slice ~lambda_every
        ~stop ~pattern ~fd ~inputs ~max_steps ()
end
