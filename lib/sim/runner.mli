(** Executing algorithms under failure patterns and detector histories.

    [Runner.Make (A)] produces finite prefixes of {e admissible runs}
    (Section 2.6 of the paper) of algorithm [A]:

    - exactly one step per global clock tick, so the time list is
      strictly increasing (run properties (4)–(5));
    - a process takes no step at or after its crash time and the
      failure-detector value of each step is [H(p, t)] (property (3));
    - the fair scheduler works in shuffled rounds over the live
      processes, so every correct process takes a step in every window
      of [n] ticks (the finite-run surrogate of property (6));
    - messages older than [max_msg_age] are force-delivered, so every
      message to a correct process is received within a bounded delay
      (the finite-run surrogate of property (7)).

    A scripted mode gives experiments full adversarial control of the
    interleaving and of message delays — it checks model conformance
    (no step after crash) but deliberately does not enforce fairness,
    exactly as the proof constructions of Theorem 7.1 and Section 6.3
    require. *)

type metrics = {
  steps_per_process : int array;
      (** steps taken by each process, indexed by pid *)
  sent : int;  (** messages sent by all processes (logical sends) *)
  delivered : int;  (** steps that received a (non-lambda) message *)
  dropped : int;
      (** messages lost by injected faults (random drops and severed
          partition links); always 0 without a fault spec *)
  duplicated : int;
      (** extra copies enqueued by injected duplication faults *)
  reordered : int;
      (** messages the fault layer inserted ahead of already-queued
          ones at their destination *)
  undelivered_at_stop : int;
      (** messages still buffered when the run ended — end-of-run
          leftovers, including sends to crashed processes (this is
          what the pre-fault-layer [dropped] counted) *)
  mailbox_hwm : int;
      (** high-water mark of any single process's mailbox depth *)
  wall_seconds : float;  (** wall-clock duration of the execution *)
}
(** Per-run observability counters, shared by every instantiation of
    {!Make} (and mirrored by [Dagsim.Path_sim]). The conservation law
    [sent - dropped + duplicated = delivered + undelivered_at_stop]
    holds for every run. *)

val pp_metrics : Format.formatter -> metrics -> unit

module Make (A : Automaton.S) : sig
  type recorded_step = {
    time : int;  (** the global tick [T(i)] of this step *)
    pid : Procset.Pid.t;  (** the process taking the step *)
    received : A.message Envelope.t option;  (** [None] = lambda *)
    fd : Fd_value.t;  (** the detector value seen in the step *)
    state_after : A.state;  (** the process state after the step *)
  }

  type run = {
    pattern : Failure_pattern.t;
    faults : Faults.t;  (** the fault spec the run executed under *)
    states : A.state array;  (** last state of each process *)
    steps : recorded_step array;  (** full trace, empty if unrecorded *)
    step_count : int;  (** number of steps taken *)
    messages_sent : int;  (** total messages sent by all processes *)
    undelivered : A.message Envelope.t list;  (** still in the buffer *)
    stopped_early : bool;  (** [stop] fired before [max_steps] *)
    metrics : metrics;  (** observability counters for this run *)
  }

  val exec :
    ?seed:int ->
    ?faults:Faults.t ->
    ?max_msg_age:int ->
    ?lambda_prob:float ->
    ?stop:((Procset.Pid.t -> A.state) -> int -> bool) ->
    ?record:bool ->
    pattern:Failure_pattern.t ->
    fd:(Procset.Pid.t -> int -> Fd_value.t) ->
    inputs:(Procset.Pid.t -> A.input) ->
    max_steps:int ->
    unit ->
    run
  (** [exec ~pattern ~fd ~inputs ~max_steps ()] runs [A] to completion
      of [max_steps] ticks or until [stop states time] holds (checked
      at round boundaries). [fd p t] is the history value [H(p, t)].
      [seed] (default 0) fixes the scheduler's randomness; runs are
      fully deterministic given their arguments. [faults] (default
      {!Faults.none}) injects link faults at send time; fault
      decisions are pure hashes of the spec and the message identity,
      never scheduler RNG draws, so a zero-rate spec leaves the run
      byte-identical to one executed without the fault layer.
      [max_msg_age] (default [4 * n]) bounds message delay;
      [lambda_prob] (default 0.15) is the chance a step receives
      lambda while messages are pending. [record] (default true)
      keeps the full trace. *)

  (** How a scripted step picks the message to receive. *)
  type msg_choice =
    | Lambda  (** receive the empty message *)
    | Oldest  (** oldest pending message for the actor *)
    | Oldest_from of Procset.Pid.t
        (** oldest pending message from a given sender *)
    | Matching of (A.message Envelope.t -> bool)
        (** oldest pending message satisfying a predicate *)

  type action = { actor : Procset.Pid.t; choice : msg_choice }

  exception Script_error of string
  (** Raised when a scripted action is inapplicable: the actor has
      crashed at the current time, or no pending message matches a
      non-[Lambda] choice. *)

  val exec_script :
    ?record:bool ->
    ?faults:Faults.t ->
    pattern:Failure_pattern.t ->
    fd:(Procset.Pid.t -> int -> Fd_value.t) ->
    inputs:(Procset.Pid.t -> A.input) ->
    script:action list ->
    unit ->
    run
  (** [exec_script ~script ()] executes exactly the scripted steps, in
      order, one tick each, starting at time 1. [faults] applies to
      sends exactly as in {!exec}; a scripted [Oldest]/[Matching]
      choice over a faulted buffer sees the post-fault contents. *)

  (** Step-by-step execution with feedback, for adaptive adversaries:
      the proof-scenario drivers (the contamination scenario of
      Section 6.3, the two-run construction of Theorem 7.1) inspect
      process states between steps and adjust their oracle or their
      schedule accordingly. *)
  module Session : sig
    type t

    val create :
      ?record:bool ->
      ?faults:Faults.t ->
      pattern:Failure_pattern.t ->
      fd:(Procset.Pid.t -> int -> Fd_value.t) ->
      inputs:(Procset.Pid.t -> A.input) ->
      unit ->
      t

    val step : ?choice:msg_choice -> t -> Procset.Pid.t -> unit
    (** Executes one step of the given process at the current time
        (default choice [Oldest] if a message is pending, else
        lambda). Raises {!Script_error} on an inapplicable step. *)

    val state : t -> Procset.Pid.t -> A.state
    val time : t -> int
    val pending : t -> Procset.Pid.t -> A.message Envelope.t list
    val finish : t -> run
    (** Snapshot the session as a {!run} (the session stays usable). *)
  end

  type replay_step = {
    r_pid : Procset.Pid.t;
    r_received : A.message Envelope.t option;
    r_fd : Fd_value.t;
  }

  val to_replay : recorded_step list -> replay_step list
  (** Forgets times and state snapshots, keeping what {!replay}
      needs. *)

  val merge_traces :
    recorded_step list -> recorded_step list -> replay_step list
  (** [merge_traces s0 s1] interleaves two traces by their recorded
      times, nondecreasing, as in the merging of two mergeable runs
      (Section 2.10). The traces must be time-sorted; ties resolve in
      favour of [s0]. *)

  val conformance :
    ?fairness_window:int ->
    ?delivery_bound:int ->
    fd:(Procset.Pid.t -> int -> Fd_value.t) ->
    inputs:(Procset.Pid.t -> A.input) ->
    run ->
    (unit, string) result
  (** Independent validation of a recorded run against the run
      properties of Section 2.6 — a check on the {e runner itself},
      not on the algorithm:

      (1) applicability: every received message was genuinely pending
      (via {!replay}); (3) no process steps at or after its crash
      time, and every step's detector value equals [fd p t]; (4)/(5)
      times are strictly increasing (which subsumes causal
      precedence); (6) fairness surrogate: every correct process takes
      at least one step in every [fairness_window] ticks (default
      [4 * n]; skipped if the run stopped early on its final partial
      window); (7) delivery surrogate: no message addressed to a
      correct process stays undelivered longer than [delivery_bound]
      ticks while the run continues (default checks only that
      undelivered leftovers at the end are recent). Runs produced by
      {!exec_script} generally fail (6)/(7) by design — pass large
      windows to check only the hard model constraints.

      For a run executed under a nonempty fault spec the delivery
      surrogate (7) is skipped — reordering can legally starve an old
      message past any finite bound, and a drop is, on a finite
      prefix, indistinguishable from a delivery delayed past the
      horizon — while (1)/(3)–(6) are checked unchanged; replay runs
      under the run's own recorded spec.

      A run with [step_count = 0] conforms trivially and yields
      [Ok ()] — there is nothing to check, and in particular the
      delivery surrogate is not consulted. A run that took steps but
      recorded none (executed with [~record:false]) yields an
      explicit [Error]: validating it would be vacuous, which
      silently hid runner bugs before this was made an error. *)

  val replay :
    n:int ->
    ?faults:Faults.t ->
    inputs:(Procset.Pid.t -> A.input) ->
    replay_step list ->
    (A.state array, string) result
  (** [replay ~n ~inputs steps] re-applies a schedule to the initial
      configuration determined by [inputs], checking applicability:
      each received message must be present in the reconstructed
      message buffer (matched by unique identity and payload
      equality). Returns the final states, or [Error reason] if some
      step is inapplicable — the executable core of Lemma 2.2.

      [faults] (default {!Faults.none}) must be the spec the original
      run executed under: replay re-derives each send's (src, dst,
      seq, time) identity, so it recomputes the exact drop/duplicate
      verdicts the execution applied and a faulty run round-trips
      exactly. Reorder displacement needs no reapplication — identity
      matching is order-insensitive. *)
end
