(** Declarative per-link network faults with deterministic seeded
    application.

    The paper's admissibility model (run properties (6)–(7) of
    Section 2.6) only promises that messages to {e correct} processes
    are {e eventually} delivered; the base simulator implements a
    strictly stronger network (reliable, loss-free, un-duplicated
    FIFO links). A fault spec selectively weakens that network back
    towards the model:

    - {b drop}: each cross-process message is lost with probability
      [drop];
    - {b dup}: a surviving message is delivered twice with probability
      [dup] (same identity, two buffer entries);
    - {b reorder}: a surviving message may jump ahead of up to
      [reorder] already-queued messages at its destination (uniform
      displacement in [0, reorder]);
    - {b partitions}: during each window [[from_t, until_t]] a message
      is severed (permanently lost) unless some group of the window
      contains both endpoints.

    Partition-window semantics, pinned by the test suite (changing
    any of these silently reinterprets every recorded faulty trace):
    - the window is inclusive at {e both} ends — a message sent at
      exactly [from_t] or exactly [until_t] is subject to the cut;
    - overlapping windows compose {e conjunctively}: a message
      survives an instant iff {e every} window active at that instant
      has a group containing both endpoints — one failing window
      severs regardless of the others;
    - a pid in no group of an active window is isolated from
      everyone for the window's duration (two ungrouped pids cannot
      talk to each other either: only co-membership connects);
    - severing takes priority over the probabilistic dimensions — a
      severed message is dropped even when [drop = 0] and [dup = 1].

    Mapping onto the paper: a finite run prefix with [drop < 1] and
    healing partitions is always a prefix of an admissible run — every
    lost message can be read as a delivery delayed past the observed
    horizon, and retransmitting senders restore liveness after a
    partition heals. Faults therefore never violate properties
    (6)–(7) of the {e infinite} model; what they break is the bounded
    delivery {e surrogate} the runner's conformance check uses on
    finite prefixes, which is why that surrogate is skipped for faulty
    runs.

    Fault decisions are pure hashes of
    [(seed, src, dst, seq, send time, salt)] — never draws from the
    scheduler's RNG — so a zero-rate spec leaves pre-existing seeded
    runs byte-identical, and replay re-derives the exact same verdicts
    from the trace. Messages a process sends to itself are exempt from
    all faults (they model local delivery, not the network). *)

type partition = {
  from_t : int;  (** first simulated time of the window, inclusive *)
  until_t : int;  (** last simulated time of the window, inclusive *)
  groups : Procset.Pset.t list;
      (** connectivity groups: a message survives the window iff some
          group contains both its source and its destination *)
}

type t = private {
  drop : float;
  dup : float;
  reorder : int;
  partitions : partition list;
  seed : int;
}

val none : t
(** The empty spec: no faults, [is_none none = true]. *)

val make :
  ?drop:float ->
  ?dup:float ->
  ?reorder:int ->
  ?partitions:partition list ->
  ?seed:int ->
  unit ->
  t
(** Build a validated spec (defaults: all fault-free, seed 0).
    @raise Invalid_argument if a rate is outside [0, 1], [reorder]
    is negative, or a partition window has [from_t > until_t]. *)

val is_none : t -> bool
(** No drops, no dups, no reordering, no partitions — the spec cannot
    affect any run. (The seed is ignored: a zero-rate spec makes no
    decisions.) *)

val severed : t -> src:Procset.Pid.t -> dst:Procset.Pid.t -> time:int -> bool
(** Is the [src -> dst] link cut by an active partition window at
    [time]? Always false for [src = dst]. *)

type verdict = {
  copies : int;  (** 0 = dropped, 1 = delivered, 2 = duplicated *)
  displace : int;
      (** forward displacement of the delivered copy: it is inserted
          ahead of up to [displace] already-queued messages *)
}

val verdict :
  t -> src:Procset.Pid.t -> dst:Procset.Pid.t -> seq:int -> time:int -> verdict
(** The fault decision for one message send, a pure function of the
    spec and the message identity — identical whenever recomputed,
    e.g. by {!Runner.Make.replay}. Severed messages are dropped
    regardless of [drop]. *)

val pp : Format.formatter -> t -> unit
val pp_partition : Format.formatter -> partition -> unit
