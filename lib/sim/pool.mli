(** A hand-rolled domain pool (stdlib [Domain] + [Atomic] only): the
    execution substrate of the parallel model checker, the fuzzer and
    the concurrent executor ({!Executor.Make}). It lives in [sim] so
    both the verification layer ([mc], which re-exports it as
    [Mc.Pool]) and the execution layer can share one pool.

    Tasks are indices [0 .. count-1] drawn from one atomic counter,
    so workers claim them in increasing order — which is what the
    fuzzer's earliest-violating-batch cutoff relies on: every batch
    below a claimed index has already been claimed by some worker. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1 — the [--jobs]
    default a CLI may offer. *)

val run : jobs:int -> int -> (worker:int -> int -> unit) -> unit
(** [run ~jobs count f] executes [f ~worker i] for every
    [i < count]. With [jobs <= 1] (or [count <= 1]) everything runs
    inline on the calling domain with [worker = 0] — no domain is
    spawned. Otherwise [min jobs count] domains each loop on the
    shared counter; [worker] is the domain's index (from 0), usable
    to index per-worker accumulator slots. All domains are joined
    before [run] returns, so workers' writes are published to the
    caller. If any [f] raises, the pool stops claiming further tasks
    and the first exception recorded (by wall-clock order, not task
    index) is re-raised on the caller once every domain has joined.
    Cooperative early exit (a violation found, a cutoff passed)
    should instead use a halt flag consulted by [f] itself — tasks
    then drain cheaply without tearing down the pool. *)
