(* The single wall-clock source for every timing site in the
   repository (runner, model checker, fuzzer, bench drivers).

   [Unix.gettimeofday] can step backwards under NTP adjustment, which
   turned benchmark rows negative. There is no monotonic clock in the
   stdlib/unix surface we depend on, so we enforce monotonicity
   ourselves: [now] never returns a value smaller than one it has
   already returned, and [elapsed] clamps at zero as a last resort.

   The high-water mark is an [Atomic] maintained by compare-and-set:
   the parallel checker and fuzzer read the clock from more than one
   domain, and a plain [ref] race could publish a stale maximum and
   un-monotonize readings across domains. Timing discipline under
   parallelism is coordinator-reads-only — [wall_seconds] is one
   [elapsed] on the coordinating domain, never a per-domain sum — but
   the clock itself must stay safe for any caller. *)

let last = Atomic.make neg_infinity

let rec note t =
  let cur = Atomic.get last in
  if t <= cur then cur
  else if Atomic.compare_and_set last cur t then t
  else note t

let now () = note (Unix.gettimeofday ())
let elapsed t0 = Float.max 0.0 (now () -. t0)
