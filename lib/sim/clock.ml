(* The single wall-clock source for every timing site in the
   repository (runner, model checker, bench drivers).

   [Unix.gettimeofday] can step backwards under NTP adjustment, which
   turned benchmark rows negative. There is no monotonic clock in the
   stdlib/unix surface we depend on, so we enforce monotonicity
   ourselves: [now] never returns a value smaller than one it has
   already returned, and [elapsed] clamps at zero as a last resort. *)

let last = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let elapsed t0 = Float.max 0.0 (now () -. t0)
