(** Message transports: the network under an automaton.

    A transport owns the in-flight messages of a system of [n]
    processes and the clock their send times are stamped with. The
    core signature {!S} is deliberately small — [send], [recv], [now]
    over {!Envelope.t} — because that is all an {!Automaton.S} step
    loop needs; everything else (scheduling policy, fault injection
    bookkeeping, trace recording) belongs to the loop driving it.

    Three instances ship:

    - {!Simulated} — the deterministic single-domain transport behind
      {!Runner.Make}. It exposes, beyond {!S}, the surgical mailbox
      operations (indexed removal, predicate removal, peeking) that
      the fair scheduler's randomized delivery and the scripted mode's
      adversarial delivery need. Every run over it is a pure function
      of its arguments.
    - {!Concurrent} — the mutex multi-domain transport behind
      {!Executor.Make}: per-destination mailboxes behind mutexes,
      send/receive counters in atomics, and a global logical clock
      advanced by {!Concurrent.tick}. Same fault semantics, real
      parallelism, no determinism of interleaving (see DESIGN.md §5e
      for the exact boundary).
    - {!Ring} — the lock-free multi-domain transport: one bounded
      MPSC {!Sim.Ring} per destination (CAS producers, single
      consumer, lossless overflow side-queue), same counters and
      clock discipline as {!Concurrent} but no mutex on the message
      hot path (DESIGN.md §5i). Reordering fault specs are rejected —
      displacement is mailbox surgery the ring cannot express — so
      the mutex backend stays the differential-testing oracle.

    {!Concurrent} and {!Ring} implement the common {!CONCURRENT}
    signature, which is what {!Executor.Make} is parameterized
    over.

    Both instances apply {!Faults} verdicts at send time from the pure
    hash of the message identity [(src, dst, seq, send time)] — never
    from a shared RNG — so the fault layer itself cannot introduce
    cross-domain nondeterminism beyond what the interleaving already
    did to [seq] and the clock. *)

(** The minimal transport interface an automaton step loop needs. *)
module type S = sig
  type 'a t

  val send : 'a t -> src:Procset.Pid.t -> (Procset.Pid.t * 'a) list -> unit
  (** Stamp, fault-filter and enqueue the payloads at their
      destinations. @raise Invalid_argument on an out-of-range pid. *)

  val recv : 'a t -> Procset.Pid.t -> 'a Envelope.t option
  (** Remove and return the oldest pending message for the process,
      [None] if its mailbox is empty. *)

  val now : 'a t -> int
  (** The transport's current logical time. *)
end

type stats = {
  sent : int;  (** logical sends (before fault filtering) *)
  dropped : int;  (** lost to drop faults or severed partition links *)
  duplicated : int;  (** extra copies enqueued by duplication faults *)
  reordered : int;  (** messages inserted ahead of queued ones *)
  delivered : int;  (** receives acknowledged via [note_delivered] *)
  mailbox_hwm : int;  (** deepest any single mailbox ever got *)
  lock_ops : int;
      (** mutex acquisitions on the message path: one per send,
          receive and depth probe for {!Concurrent}; overflow-spill
          acquisitions only for {!Ring}; 0 for {!Simulated} *)
  cas_retries : int;
      (** failed/stale CAS attempts in {!Ring} producers — the
          lock-free backend's contention measure; 0 elsewhere *)
}
(** Counter snapshot, shared by all instances. The conservation law
    [sent - dropped + duplicated = delivered + pending-at-stop] holds
    whenever every delivery was acknowledged. *)

(** The interface shared by the multi-domain transports — what
    {!Executor.Make} needs, with construction included so the
    executor can be instantiated per backend. *)
module type CONCURRENT = sig
  type 'a t

  val create :
    ?who:string ->
    ?capacity:int ->
    n:int ->
    faults:Faults.t ->
    unit ->
    'a t
  (** [capacity] is the per-mailbox ring capacity for {!Ring}
      (default 1024, rounded up to a power of two); ignored by
      {!Concurrent}, whose mailboxes are unbounded.
      @raise Invalid_argument on a fault spec the backend cannot
      express (reordering, for {!Ring}). *)

  val send : 'a t -> src:Procset.Pid.t -> (Procset.Pid.t * 'a) list -> unit
  (** Safe from any domain. The per-sender sequence number is drawn
      atomically. Callers stepping one process from one domain at a
      time (the executor's invariant) get per-sender FIFO [seq]
      order. *)

  val recv : 'a t -> Procset.Pid.t -> 'a Envelope.t option
  (** For {!Ring}, only the domain currently driving process [p] may
      call [recv t p] — the single-consumer side of the MPSC ring.
      The executor's shard pinning guarantees this. *)

  val now : 'a t -> int

  val tick : 'a t -> int
  (** Atomically advance the global clock and return the {e new} time
      — each executor step owns a distinct tick. *)

  val n : 'a t -> int
  val depth : 'a t -> Procset.Pid.t -> int
  val note_delivered : 'a t -> unit

  val undelivered : 'a t -> 'a Envelope.t list
  (** Call only when no other domain is active (after a join). *)

  val stats : 'a t -> stats
end

(** The deterministic transport: single-domain, mutable, owned by one
    scheduler loop. Time starts at 1 and advances only via {!tick}. *)
module Simulated : sig
  type 'a t

  val create : ?who:string -> n:int -> faults:Faults.t -> unit -> 'a t
  (** [who] names the automaton in error messages. *)

  val send : 'a t -> src:Procset.Pid.t -> (Procset.Pid.t * 'a) list -> unit
  val recv : 'a t -> Procset.Pid.t -> 'a Envelope.t option
  val now : 'a t -> int

  val tick : 'a t -> unit
  (** Advance the clock by one. The runner calls this once per step. *)

  val n : 'a t -> int

  val depth : 'a t -> Procset.Pid.t -> int
  (** Pending-message count for one process. O(1). *)

  val peek_oldest : 'a t -> Procset.Pid.t -> 'a Envelope.t option
  (** The oldest pending message, not removed. *)

  val take_nth : 'a t -> Procset.Pid.t -> int -> 'a Envelope.t
  (** Remove the pending message at FIFO index [k] (0 = oldest) — the
      fair scheduler's randomized delivery.
      @raise Invalid_argument if out of bounds. *)

  val take_first :
    'a t -> Procset.Pid.t -> ('a Envelope.t -> bool) -> 'a Envelope.t option
  (** Remove the oldest pending message satisfying the predicate —
      scripted/adversarial delivery. *)

  val note_delivered : 'a t -> unit
  (** Count one delivery (the loop, not [recv], decides what counts:
      force-delivered, randomly chosen and scripted receives all do). *)

  val pending : 'a t -> Procset.Pid.t -> 'a Envelope.t list
  (** Snapshot of one mailbox, oldest first. *)

  val undelivered : 'a t -> 'a Envelope.t list
  (** Every pending message of every process. *)

  val stats : 'a t -> stats
end

module Concurrent : CONCURRENT
(** The mutex transport: any domain may send to or receive for any
    process; each destination mailbox is guarded by its own mutex.
    Time is a global atomic tick. Supports every fault spec —
    including reorder displacement — which makes it the equivalence
    oracle the ring backend is differentially tested against. *)

module Ring : CONCURRENT
(** The lock-free transport: one bounded MPSC {!Sim.Ring} per
    destination. Sends are CAS claims on the destination ring (no
    mutex unless the ring overflows to its lossless side-queue);
    receives are single-consumer pops by whichever domain is driving
    the destination process. Per-link FIFO and the conservation law
    are preserved by construction (see ring.mli); [create] rejects
    reordering fault specs. *)
