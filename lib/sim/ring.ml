(* Bounded lock-free MPSC ring with per-slot sequence numbers and a
   mutex-guarded overflow side-queue. See ring.mli and DESIGN.md §5i
   for the ordering argument; the invariants relied on below:

   - seq.(i) cycles pos -> pos+1 -> pos+capacity for each lap's
     position [pos] landing on slot [i]; producers write the first
     transition's successor (publish), the consumer the second
     (consume). A slot's sequence never decreases.
   - [tail] is the next claimable position (producers CAS it),
     [head] the next consumable one (single consumer, plain field).
   - Overflow routing: a producer goes to the overflow queue iff the
     ring is full or [ovf_count > 0]; the consumer takes from the
     overflow queue only when the ring is drained ([head = tail]).
     Hence while the overflow queue is non-empty no younger message
     enters the ring, and every ring entry predates every overflow
     entry — FIFO per producer survives the spill. *)

type 'a t = {
  mask : int;
  cap : int;
  cells : 'a option array;
  seq : int Atomic.t array;
  tail : int Atomic.t;
  mutable head : int; (* single consumer *)
  pushed : int Atomic.t; (* total accepted (ring + overflow) *)
  popped : int Atomic.t; (* total removed (ring + overflow) *)
  ovf_lock : Mutex.t;
  ovf : 'a Mailbox.t;
  ovf_count : int Atomic.t;
  retries : int Atomic.t;
  locks : int Atomic.t;
  spills : int Atomic.t;
}

let rec pow2 k n = if k >= n then k else pow2 (k * 2) n

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be > 0";
  let cap = pow2 2 capacity in
  {
    mask = cap - 1;
    cap;
    cells = Array.make cap None;
    seq = Array.init cap Atomic.make;
    tail = Atomic.make 0;
    head = 0;
    pushed = Atomic.make 0;
    popped = Atomic.make 0;
    ovf_lock = Mutex.create ();
    ovf = Mailbox.create ();
    ovf_count = Atomic.make 0;
    retries = Atomic.make 0;
    locks = Atomic.make 0;
    spills = Atomic.make 0;
  }

let capacity t = t.cap

let push_overflow t x =
  Atomic.incr t.locks;
  Mutex.lock t.ovf_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.ovf_lock)
    (fun () ->
      Mailbox.enqueue t.ovf x;
      (* made visible to producers only once the message is really
         queued, so a positive count always means "older messages
         exist" *)
      Atomic.incr t.ovf_count);
  Atomic.incr t.spills;
  Atomic.incr t.pushed

let rec push t x =
  if Atomic.get t.ovf_count > 0 then push_overflow t x
  else begin
    let tail = Atomic.get t.tail in
    let i = tail land t.mask in
    let s = Atomic.get t.seq.(i) in
    if s = tail then begin
      if Atomic.compare_and_set t.tail tail (tail + 1) then begin
        (* the claim is ours: the cell write below races with nothing
           (the consumer waits for the publish, other producers own
           other positions) *)
        t.cells.(i) <- Some x;
        Atomic.set t.seq.(i) (tail + 1);
        Atomic.incr t.pushed
      end
      else begin
        (* another producer won the position; take the next one *)
        Atomic.incr t.retries;
        Domain.cpu_relax ();
        push t x
      end
    end
    else if s < tail then
      (* a full lap behind: the consumer has not freed this slot, the
         ring is full — spill, never block on the consumer *)
      push_overflow t x
    else begin
      (* s > tail: our tail read is stale; re-read and retry *)
      Atomic.incr t.retries;
      Domain.cpu_relax ();
      push t x
    end
  end

let pop_overflow t =
  Atomic.incr t.locks;
  Mutex.lock t.ovf_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.ovf_lock)
    (fun () ->
      match Mailbox.dequeue_oldest t.ovf with
      | None -> None
      | Some x ->
        (* decremented only after the removal, so producers can only
           over-estimate the overflow population — routing a message
           to the overflow queue spuriously costs order preservation
           nothing, routing it to the ring spuriously would *)
        Atomic.decr t.ovf_count;
        Atomic.incr t.popped;
        Some x)

let pop t =
  let i = t.head land t.mask in
  let s = Atomic.get t.seq.(i) in
  if s = t.head + 1 then begin
    let x = t.cells.(i) in
    t.cells.(i) <- None;
    (* free the slot for the lap [head + cap] *)
    Atomic.set t.seq.(i) (t.head + t.cap);
    t.head <- t.head + 1;
    Atomic.incr t.popped;
    x
  end
  else if t.head = Atomic.get t.tail && Atomic.get t.ovf_count > 0 then
    (* ring fully drained (no outstanding claims): overflow entries
       are now the oldest messages *)
    pop_overflow t
  else
    (* empty, or the head claim is still unpublished by a slow
       producer — report empty; the message is delivered on a later
       pop once published *)
    None

let length t = max 0 (Atomic.get t.pushed - Atomic.get t.popped)
let is_empty t = length t = 0

let to_list t =
  let acc = ref [] in
  let h = ref t.head and tl = Atomic.get t.tail in
  while !h < tl do
    (match t.cells.(!h land t.mask) with
    | Some x -> acc := x :: !acc
    | None -> ());
    incr h
  done;
  List.rev !acc @ Mailbox.to_list t.ovf

let cas_retries t = Atomic.get t.retries
let lock_ops t = Atomic.get t.locks
let overflows t = Atomic.get t.spills
