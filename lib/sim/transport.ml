open Procset

module type S = sig
  type 'a t

  val send : 'a t -> src:Pid.t -> (Pid.t * 'a) list -> unit
  val recv : 'a t -> Pid.t -> 'a Envelope.t option
  val now : 'a t -> int
end

type stats = {
  sent : int;
  dropped : int;
  duplicated : int;
  reordered : int;
  delivered : int;
  mailbox_hwm : int;
  lock_ops : int;
  cas_retries : int;
}

module type CONCURRENT = sig
  type 'a t

  val create :
    ?who:string -> ?capacity:int -> n:int -> faults:Faults.t -> unit -> 'a t

  val send : 'a t -> src:Pid.t -> (Pid.t * 'a) list -> unit
  val recv : 'a t -> Pid.t -> 'a Envelope.t option
  val now : 'a t -> int
  val tick : 'a t -> int
  val n : 'a t -> int
  val depth : 'a t -> Pid.t -> int
  val note_delivered : 'a t -> unit
  val undelivered : 'a t -> 'a Envelope.t list
  val stats : 'a t -> stats
end

module Simulated = struct
  type 'a t = {
    s_n : int;
    s_faults : Faults.t;
    s_who : string;
    buffers : 'a Envelope.t Mailbox.t array;
        (* per-destination pending messages, oldest first *)
    send_seq : int array; (* per-sender message counter *)
    mutable s_time : int;
    mutable s_sent : int;
    mutable s_delivered : int;
    mutable s_dropped : int;
    mutable s_duplicated : int;
    mutable s_reordered : int;
    mutable s_hwm : int; (* mailbox depth high-water mark *)
  }

  let create ?(who = "sim") ~n ~faults () =
    {
      s_n = n;
      s_faults = faults;
      s_who = who;
      buffers = Array.init n (fun _ -> Mailbox.create ());
      send_seq = Array.make n 0;
      s_time = 1;
      s_sent = 0;
      s_delivered = 0;
      s_dropped = 0;
      s_duplicated = 0;
      s_reordered = 0;
      s_hwm = 0;
    }

  let now t = t.s_time
  let tick t = t.s_time <- t.s_time + 1
  let n t = t.s_n

  let send t ~src payloads =
    List.iter
      (fun (dst, payload) ->
        if not (Pid.valid ~n:t.s_n dst) then
          invalid_arg
            (Printf.sprintf "%s: send to invalid pid %d" t.s_who dst);
        let seq = t.send_seq.(src) in
        t.send_seq.(src) <- seq + 1;
        let env = { Envelope.src; dst; seq; sent_at = t.s_time; payload } in
        t.s_sent <- t.s_sent + 1;
        let v = Faults.verdict t.s_faults ~src ~dst ~seq ~time:t.s_time in
        if v.Faults.copies = 0 then t.s_dropped <- t.s_dropped + 1
        else begin
          let buf = t.buffers.(dst) in
          let len = Mailbox.length buf in
          let at = max 0 (len - v.Faults.displace) in
          if at < len then begin
            t.s_reordered <- t.s_reordered + 1;
            Mailbox.insert_nth buf at env
          end
          else Mailbox.enqueue buf env;
          if v.Faults.copies = 2 then begin
            t.s_duplicated <- t.s_duplicated + 1;
            Mailbox.enqueue buf env
          end;
          let depth = Mailbox.length buf in
          if depth > t.s_hwm then t.s_hwm <- depth
        end)
      payloads

  let recv t p = Mailbox.dequeue_oldest t.buffers.(p)
  let depth t p = Mailbox.length t.buffers.(p)
  let peek_oldest t p = Mailbox.peek_oldest t.buffers.(p)
  let take_nth t p i = Mailbox.remove_nth t.buffers.(p) i
  let take_first t p pred = Mailbox.remove_first t.buffers.(p) pred
  let note_delivered t = t.s_delivered <- t.s_delivered + 1
  let pending t p = Mailbox.to_list t.buffers.(p)

  let undelivered t =
    Array.to_list t.buffers |> List.concat_map Mailbox.to_list

  let stats t =
    {
      sent = t.s_sent;
      dropped = t.s_dropped;
      duplicated = t.s_duplicated;
      reordered = t.s_reordered;
      delivered = t.s_delivered;
      mailbox_hwm = t.s_hwm;
      lock_ops = 0;
      cas_retries = 0;
    }
end

module Concurrent = struct
  type 'a t = {
    c_n : int;
    c_faults : Faults.t;
    c_who : string;
    locks : Mutex.t array;
    boxes : 'a Envelope.t Mailbox.t array;
    lock_counts : int array;
        (* per-mailbox lock acquisitions, incremented while holding
           that mailbox's lock — exact and free of extra contention *)
    seqs : int Atomic.t array; (* per-sender message counter *)
    time : int Atomic.t;
    c_sent : int Atomic.t;
    c_delivered : int Atomic.t;
    c_dropped : int Atomic.t;
    c_duplicated : int Atomic.t;
    c_reordered : int Atomic.t;
    c_hwm : int Atomic.t;
  }

  let create ?(who = "exec") ?capacity:_ ~n ~faults () =
    {
      c_n = n;
      c_faults = faults;
      c_who = who;
      locks = Array.init n (fun _ -> Mutex.create ());
      boxes = Array.init n (fun _ -> Mailbox.create ());
      lock_counts = Array.make n 0;
      seqs = Array.init n (fun _ -> Atomic.make 0);
      time = Atomic.make 0;
      c_sent = Atomic.make 0;
      c_delivered = Atomic.make 0;
      c_dropped = Atomic.make 0;
      c_duplicated = Atomic.make 0;
      c_reordered = Atomic.make 0;
      c_hwm = Atomic.make 0;
    }

  let now t = Atomic.get t.time
  let tick t = Atomic.fetch_and_add t.time 1 + 1
  let n t = t.c_n

  let rec bump_max a v =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then bump_max a v

  let send t ~src payloads =
    List.iter
      (fun (dst, payload) ->
        if not (Pid.valid ~n:t.c_n dst) then
          invalid_arg
            (Printf.sprintf "%s: send to invalid pid %d" t.c_who dst);
        let seq = Atomic.fetch_and_add t.seqs.(src) 1 in
        let time = Atomic.get t.time in
        let env = { Envelope.src; dst; seq; sent_at = time; payload } in
        Atomic.incr t.c_sent;
        let v = Faults.verdict t.c_faults ~src ~dst ~seq ~time in
        if v.Faults.copies = 0 then Atomic.incr t.c_dropped
        else begin
          let lock = t.locks.(dst) in
          Mutex.lock lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock lock)
            (fun () ->
              t.lock_counts.(dst) <- t.lock_counts.(dst) + 1;
              let buf = t.boxes.(dst) in
              let len = Mailbox.length buf in
              let at = max 0 (len - v.Faults.displace) in
              if at < len then begin
                Atomic.incr t.c_reordered;
                Mailbox.insert_nth buf at env
              end
              else Mailbox.enqueue buf env;
              if v.Faults.copies = 2 then begin
                Atomic.incr t.c_duplicated;
                Mailbox.enqueue buf env
              end;
              bump_max t.c_hwm (Mailbox.length buf))
        end)
      payloads

  let recv t p =
    let lock = t.locks.(p) in
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        t.lock_counts.(p) <- t.lock_counts.(p) + 1;
        Mailbox.dequeue_oldest t.boxes.(p))

  let depth t p =
    let lock = t.locks.(p) in
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        t.lock_counts.(p) <- t.lock_counts.(p) + 1;
        Mailbox.length t.boxes.(p))

  let note_delivered t = Atomic.incr t.c_delivered

  let undelivered t =
    Array.to_list t.boxes |> List.concat_map Mailbox.to_list

  let stats t =
    {
      sent = Atomic.get t.c_sent;
      dropped = Atomic.get t.c_dropped;
      duplicated = Atomic.get t.c_duplicated;
      reordered = Atomic.get t.c_reordered;
      delivered = Atomic.get t.c_delivered;
      mailbox_hwm = Atomic.get t.c_hwm;
      lock_ops = Array.fold_left ( + ) 0 t.lock_counts;
      cas_retries = 0;
    }
end

(* The lock-free backend: one {!Ring} per destination. Same fault
   semantics as [Concurrent] for drops, duplication and partitions
   (verdicts are the same pure hashes); reorder displacement is a
   mailbox-surgery operation the ring cannot express, so reordering
   specs are rejected at [create] — the mutex backend remains the
   oracle for those. *)
module Ring_ = struct
  type 'a t = {
    r_n : int;
    r_faults : Faults.t;
    r_who : string;
    rings : 'a Envelope.t Ring.t array;
    seqs : int Atomic.t array; (* per-sender message counter *)
    time : int Atomic.t;
    r_sent : int Atomic.t;
    r_delivered : int Atomic.t;
    r_dropped : int Atomic.t;
    r_duplicated : int Atomic.t;
    r_hwm : int Atomic.t;
  }

  let default_capacity = 1024

  let create ?(who = "ring") ?(capacity = default_capacity) ~n ~faults () =
    if faults.Faults.reorder > 0 then
      invalid_arg
        (Printf.sprintf
           "%s: reorder faults need indexed mailbox insertion; use the \
            mutex transport"
           who);
    {
      r_n = n;
      r_faults = faults;
      r_who = who;
      rings = Array.init n (fun _ -> Ring.create ~capacity);
      seqs = Array.init n (fun _ -> Atomic.make 0);
      time = Atomic.make 0;
      r_sent = Atomic.make 0;
      r_delivered = Atomic.make 0;
      r_dropped = Atomic.make 0;
      r_duplicated = Atomic.make 0;
      r_hwm = Atomic.make 0;
    }

  let now t = Atomic.get t.time
  let tick t = Atomic.fetch_and_add t.time 1 + 1
  let n t = t.r_n

  let rec bump_max a v =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then bump_max a v

  let send t ~src payloads =
    List.iter
      (fun (dst, payload) ->
        if not (Pid.valid ~n:t.r_n dst) then
          invalid_arg
            (Printf.sprintf "%s: send to invalid pid %d" t.r_who dst);
        let seq = Atomic.fetch_and_add t.seqs.(src) 1 in
        let time = Atomic.get t.time in
        let env = { Envelope.src; dst; seq; sent_at = time; payload } in
        Atomic.incr t.r_sent;
        let v = Faults.verdict t.r_faults ~src ~dst ~seq ~time in
        if v.Faults.copies = 0 then Atomic.incr t.r_dropped
        else begin
          let ring = t.rings.(dst) in
          Ring.push ring env;
          if v.Faults.copies = 2 then begin
            Atomic.incr t.r_duplicated;
            Ring.push ring env
          end;
          bump_max t.r_hwm (Ring.length ring)
        end)
      payloads

  let recv t p = Ring.pop t.rings.(p)
  let depth t p = Ring.length t.rings.(p)
  let note_delivered t = Atomic.incr t.r_delivered
  let undelivered t = Array.to_list t.rings |> List.concat_map Ring.to_list

  let stats t =
    {
      sent = Atomic.get t.r_sent;
      dropped = Atomic.get t.r_dropped;
      duplicated = Atomic.get t.r_duplicated;
      reordered = 0;
      delivered = Atomic.get t.r_delivered;
      mailbox_hwm = Atomic.get t.r_hwm;
      lock_ops =
        Array.fold_left (fun acc r -> acc + Ring.lock_ops r) 0 t.rings;
      cas_retries =
        Array.fold_left (fun acc r -> acc + Ring.cas_retries r) 0 t.rings;
    }
end

module Ring = Ring_
