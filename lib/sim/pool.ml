(* A hand-rolled domain pool over the stdlib multicore primitives —
   no dependency beyond [Domain] and [Atomic].

   The work queue is an atomic task counter over [0 .. count-1]:
   workers fetch-and-add until the range is exhausted. That is enough
   for both parallel consumers in this repository — the checker's
   root-frontier tasks and the fuzzer's batches — because tasks
   communicate through their own shared state (striped visited table,
   per-batch result slots) and self-skip when a halt/cutoff flag is
   already set, so the pool never needs a blocking queue or condition
   variables.

   [jobs <= 1] (or a single task) runs inline on the calling domain:
   the sequential paths of the checker and fuzzer must not pay a
   domain spawn, and — for the fuzzer's byte-determinism guarantee —
   must remain the exact same code as the parallel merge, differing
   only in where tasks execute. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let run ~jobs count f =
  if count > 0 then begin
    let jobs = max 1 (min jobs count) in
    if jobs = 1 then
      for i = 0 to count - 1 do
        f ~worker:0 i
      done
    else begin
      let next = Atomic.make 0 in
      let failed = Atomic.make None in
      let work worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < count && Atomic.get failed = None then begin
            (try f ~worker i
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               (* first failure wins; the rest of the pool drains *)
               ignore (Atomic.compare_and_set failed None (Some (e, bt))));
            loop ()
          end
        in
        loop ()
      in
      let domains = Array.init jobs (fun w -> Domain.spawn (work w)) in
      Array.iter Domain.join domains;
      (* [Domain.join] publishes every worker's writes to this domain
         before we read any shared result. *)
      match Atomic.get failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end
