open Procset

type row = {
  id : string;
  theorem : string;
  expected : string;
  measured : string;
  pass : bool;
}

let pp_row fmt r =
  Format.fprintf fmt "@[<v>%-3s %-34s@,    expected: %s@,    measured: %s  [%s]@]"
    r.id r.theorem r.expected r.measured
    (if r.pass then "PASS" else "FAIL")

(* ---------------------------------------------------------------- *)
(* Shared plumbing                                                   *)
(* ---------------------------------------------------------------- *)

module Anuc_runner = Sim.Runner.Make (Core.Anuc)
module Stack_runner = Sim.Runner.Make (Core.Stack)
module Mrm_runner = Sim.Runner.Make (Consensus.Mr.Majority)
module Mrq_runner = Sim.Runner.Make (Consensus.Mr.With_quorum)
module Tsp_runner = Sim.Runner.Make (Core.T_sigma_plus)
module Scratch_runner = Sim.Runner.Make (Core.Separation.Sigma_scratch)
module Ct_runner = Sim.Runner.Make (Consensus.Ct)

module Tx_mr = Core.T_extract.Make (struct
  include Consensus.Mr.With_quorum

  type message = Consensus.Mr.message

  let pp_message = Consensus.Mr.pp_message
  let equal_message = Consensus.Mr.equal_message
  let step = Consensus.Mr.With_quorum.step
  let decision = Consensus.Mr.With_quorum.decision
end)

module Tx_mr_runner = Sim.Runner.Make (Tx_mr)

module Tx_anuc = Core.T_extract.Make (struct
  include Core.Anuc

  type message = Core.Anuc.message

  let pp_message = Core.Anuc.pp_message
  let equal_message = Core.Anuc.equal_message
  let step = Core.Anuc.step
  let decision = Core.Anuc.decision
end)

module Tx_anuc_runner = Sim.Runner.Make (Tx_anuc)

let random_pattern ~seed ~n ~t =
  let env = Sim.Env.make ~n ~max_faulty:t in
  let rng = Random.State.make [| seed; n; t |] in
  Sim.Env.random_pattern rng ~crash_window:120 env

(* Tally of pass/fail over a parameter sweep. *)
type tally = { mutable total : int; mutable failed : int; mutable note : string }

let tally () = { total = 0; failed = 0; note = "" }

let record t ok note =
  t.total <- t.total + 1;
  if not ok then begin
    t.failed <- t.failed + 1;
    if t.note = "" then t.note <- note
  end

let finish_row ~id ~theorem ~expected t =
  let measured =
    if t.failed = 0 then Printf.sprintf "%d/%d runs conform" t.total t.total
    else
      Printf.sprintf "%d/%d runs FAILED (first: %s)" t.failed t.total t.note
  in
  { id; theorem; expected; measured; pass = t.failed = 0 }

(* Every randomized experiment derives its seed list from [seed_base]
   so the CLI's [--seed] is honored uniformly; the default (0)
   reproduces the historical sweeps. *)
let seeds_of ?(seed_base = 0) ~quick () =
  List.map (( + ) seed_base) (if quick then [ 0; 1 ] else [ 0; 1; 2; 3 ])

(* ---------------------------------------------------------------- *)
(* E1 / E2: T_{D -> Sigma-nu}                                        *)
(* ---------------------------------------------------------------- *)

let e1_extract_sigma_nu ?(quick = false) ?(seed_base = 0) () =
  let t = tally () in
  let patterns =
    [
      Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 30); (3, 50) ];
      Sim.Failure_pattern.make ~n:4 ~crashes:[ (3, 40) ];
    ]
  in
  List.iter
    (fun pattern ->
      List.iter
        (fun seed ->
          let n = Sim.Failure_pattern.n pattern in
          let oracle =
            Fd.Oracle.pair
              (Fd.Oracle.omega ~seed ~stab_time:60 pattern)
              (Fd.Oracle.sigma_nu_plus ~seed ~stab_time:60 pattern)
          in
          let run =
            Tx_anuc_runner.exec ~seed ~pattern ~fd:oracle.Fd.Oracle.query
              ~inputs:(fun _ -> ())
              ~max_steps:2600 ()
          in
          let samples =
            Array.to_list run.Tx_anuc_runner.steps
            |> List.map (fun s ->
                   ( s.Tx_anuc_runner.pid,
                     s.Tx_anuc_runner.time,
                     Sim.Fd_value.Quorum
                       (Tx_anuc.output s.Tx_anuc_runner.state_after) ))
          in
          let h = Fd.History.of_samples ~n samples in
          match Fd.Check.sigma_nu ~max_stab:2100 pattern h with
          | Ok () -> record t true ""
          | Error v ->
            record t false (Format.asprintf "%a" Fd.Check.pp_violation v))
        (seeds_of ~seed_base ~quick ()))
    patterns;
  finish_row ~id:"E1"
    ~theorem:"Thm 5.4: T_{D->Sigma-nu} necessity"
    ~expected:"emulated quorums satisfy Sigma-nu" t

let e2_extract_sigma ?(quick = false) ?(seed_base = 0) () =
  let t = tally () in
  let patterns =
    [
      Sim.Failure_pattern.make ~n:4 ~crashes:[ (1, 30); (2, 30); (3, 30) ];
      Sim.Failure_pattern.make ~n:5 ~crashes:[ (0, 25); (4, 45) ];
    ]
  in
  List.iter
    (fun pattern ->
      List.iter
        (fun seed ->
          let n = Sim.Failure_pattern.n pattern in
          let oracle =
            Fd.Oracle.pair
              (Fd.Oracle.omega ~seed ~stab_time:60 pattern)
              (Fd.Oracle.sigma ~seed ~stab_time:60 pattern)
          in
          let run =
            Tx_mr_runner.exec ~seed ~pattern ~fd:oracle.Fd.Oracle.query
              ~inputs:(fun _ -> ())
              ~max_steps:700 ()
          in
          let samples =
            Array.to_list run.Tx_mr_runner.steps
            |> List.map (fun s ->
                   ( s.Tx_mr_runner.pid,
                     s.Tx_mr_runner.time,
                     Sim.Fd_value.Quorum
                       (Tx_mr.output s.Tx_mr_runner.state_after) ))
          in
          let h = Fd.History.of_samples ~n samples in
          match Fd.Check.sigma ~max_stab:560 pattern h with
          | Ok () -> record t true ""
          | Error v ->
            record t false (Format.asprintf "%a" Fd.Check.pp_violation v))
        (seeds_of ~seed_base ~quick ()))
    patterns;
  finish_row ~id:"E2"
    ~theorem:"Thm 5.8: same algorithm yields Sigma"
    ~expected:"uniform-consensus witness gives full Sigma" t

let e3_boost ?(quick = false) ?(seed_base = 0) () =
  let t = tally () in
  let cases =
    [
      ( Sim.Failure_pattern.make ~n:4 ~crashes:[ (2, 30); (3, 60) ],
        Fd.Oracle.Faulty_split );
      ( Sim.Failure_pattern.make ~n:5 ~crashes:[ (3, 40); (4, 60) ],
        Fd.Oracle.Faulty_arbitrary );
    ]
  in
  List.iter
    (fun (pattern, mode) ->
      List.iter
        (fun seed ->
          let n = Sim.Failure_pattern.n pattern in
          let oracle =
            Fd.Oracle.sigma_nu ~seed ~stab_time:80 ~faulty_mode:mode pattern
          in
          let run =
            Tsp_runner.exec ~seed ~pattern ~fd:oracle.Fd.Oracle.query
              ~inputs:(fun _ -> ())
              ~max_steps:700 ()
          in
          let samples =
            Array.to_list run.Tsp_runner.steps
            |> List.map (fun s ->
                   ( s.Tsp_runner.pid,
                     s.Tsp_runner.time,
                     Sim.Fd_value.Quorum
                       (Core.T_sigma_plus.output s.Tsp_runner.state_after) ))
          in
          let h = Fd.History.of_samples ~n samples in
          match Fd.Check.sigma_nu_plus ~max_stab:500 pattern h with
          | Ok () -> record t true ""
          | Error v ->
            record t false (Format.asprintf "%a" Fd.Check.pp_violation v))
        (seeds_of ~seed_base ~quick ()))
    cases;
  finish_row ~id:"E3"
    ~theorem:"Thm 6.7: T_{Sigma-nu -> Sigma-nu+}"
    ~expected:"all four Sigma-nu+ clauses hold on emulated output" t

(* ---------------------------------------------------------------- *)
(* E4 / E5: consensus sweeps                                         *)
(* ---------------------------------------------------------------- *)

let consensus_sweep (type st) ~id ~theorem ~expected
    (module A : Sim.Automaton.S
      with type input = Consensus.Value.t
       and type state = st) ~(decision : st -> Consensus.Value.t option)
    ~oracle ~ns ~seeds ~max_steps () =
  let module R = Sim.Runner.Make (A) in
  let t = tally () in
  List.iter
    (fun n ->
      List.iter
        (fun tt ->
          List.iter
            (fun seed ->
              let pattern = random_pattern ~seed ~n ~t:tt in
              let correct = Sim.Failure_pattern.correct pattern in
              let proposals p = (p + seed) mod 2 in
              let o = oracle ~seed pattern in
              let run =
                R.exec ~seed ~record:false ~pattern
                  ~fd:o.Fd.Oracle.query ~inputs:proposals ~max_steps
                  ~stop:(fun st _ ->
                    Pset.for_all (fun p -> decision (st p) <> None) correct)
                  ()
              in
              let outcome =
                Consensus.Spec.outcome ~pattern ~proposals
                  ~decisions:(fun p -> decision run.R.states.(p))
              in
              match Consensus.Spec.check Consensus.Spec.Nonuniform outcome with
              | Ok () -> record t true ""
              | Error e ->
                record t false
                  (Printf.sprintf "n=%d t=%d seed=%d: %s" n tt seed e))
            seeds)
        (List.init (n - 1) (fun i -> i + 1)))
    ns;
  finish_row ~id ~theorem ~expected t

let e4_anuc ?(quick = false) ?(seed_base = 0) () =
  consensus_sweep ~id:"E4" ~theorem:"Thm 6.27: A_nuc with (Omega, Sigma-nu+)"
    ~expected:"termination, validity, NU agreement in every E_t"
    (module Core.Anuc)
    ~decision:Core.Anuc.decision
    ~oracle:(fun ~seed pattern ->
      Fd.Oracle.pair
        (Fd.Oracle.omega ~seed pattern)
        (Fd.Oracle.sigma_nu_plus ~seed pattern))
    ~ns:(if quick then [ 4 ] else [ 3; 4; 5 ])
    ~seeds:(seeds_of ~seed_base ~quick ()) ~max_steps:6000 ()

let e5_stack ?(quick = false) ?(seed_base = 0) () =
  consensus_sweep ~id:"E5"
    ~theorem:"Thm 6.28: stack solves NU consensus from (Omega, Sigma-nu)"
    ~expected:"termination, validity, NU agreement in every E_t"
    (module Core.Stack)
    ~decision:Core.Stack.decision
    ~oracle:(fun ~seed pattern ->
      Fd.Oracle.pair
        (Fd.Oracle.omega ~seed pattern)
        (Fd.Oracle.sigma_nu ~seed pattern))
    ~ns:[ 4 ]
    ~seeds:(seeds_of ~seed_base ~quick ()) ~max_steps:9000 ()

(* ---------------------------------------------------------------- *)
(* E6: contamination                                                 *)
(* ---------------------------------------------------------------- *)

let e6_contamination ?(quick = false) ?(seed_base = 0) () =
  let o = Core.Scenario.contamination_naive_mr () in
  let naive_broken =
    o.Core.Scenario.agreement_violated
    && Result.is_ok o.Core.Scenario.history_valid
  in
  (* A_nuc under the adversary family *)
  let anuc_violations = ref 0 in
  let runs = if quick then 6 else 20 in
  List.iter
    (fun seed ->
      let n = 4 in
      let pattern =
        Sim.Failure_pattern.make ~n ~crashes:[ (2, 150); (3, 150) ]
      in
      let oracle =
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed ~prestab:Fd.Oracle.Omega_faulty_first
             ~stab_time:120 pattern)
          (Fd.Oracle.sigma_nu_plus ~seed ~faulty_mode:Fd.Oracle.Faulty_split
             ~stab_time:120 pattern)
      in
      let correct = Sim.Failure_pattern.correct pattern in
      let proposals p = if p < 2 then 0 else 1 in
      let run =
        Anuc_runner.exec ~seed ~record:false ~pattern
          ~fd:oracle.Fd.Oracle.query ~inputs:proposals ~max_steps:8000
          ~stop:(fun st _ ->
            Pset.for_all (fun p -> Core.Anuc.decision (st p) <> None) correct)
          ()
      in
      let outcome =
        Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
            Core.Anuc.decision run.Anuc_runner.states.(p))
      in
      if
        Result.is_error
          (Consensus.Spec.check Consensus.Spec.Nonuniform outcome)
      then incr anuc_violations)
    (List.init runs (fun i -> seed_base + i));
  {
    id = "E6";
    theorem = "Sec 6.3: contamination scenario";
    expected = "naive MR+Sigma-nu violates NU agreement; A_nuc does not";
    measured =
      Printf.sprintf
        "naive: correct p0/p1 decided %s/%s under a legal history; A_nuc: \
         %d/%d adversarial runs violated"
        (Format.asprintf "%a" Consensus.Value.pp_opt
           o.Core.Scenario.decisions.(0))
        (Format.asprintf "%a" Consensus.Value.pp_opt
           o.Core.Scenario.decisions.(1))
        !anuc_violations runs;
    pass = naive_broken && !anuc_violations = 0;
  }

(* ---------------------------------------------------------------- *)
(* E7 / E8: separation                                               *)
(* ---------------------------------------------------------------- *)

let e7_sigma_scratch ?(quick = false) ?(seed_base = 0) () =
  let t = tally () in
  let cases =
    if quick then [ (5, 2, [ (0, 20); (4, 50) ]) ]
    else
      [
        (3, 1, [ (2, 35) ]);
        (5, 2, [ (0, 20); (4, 50) ]);
        (7, 3, [ (1, 15); (3, 30); (6, 60) ]);
      ]
  in
  List.iter
    (fun (n, tt, crashes) ->
      let pattern = Sim.Failure_pattern.make ~n ~crashes in
      List.iter
        (fun seed ->
          let run =
            Scratch_runner.exec ~seed ~pattern
              ~fd:(fun _ _ -> Sim.Fd_value.Unit)
              ~inputs:(fun _ -> tt)
              ~max_steps:600 ()
          in
          let samples =
            Array.to_list run.Scratch_runner.steps
            |> List.map (fun s ->
                   ( s.Scratch_runner.pid,
                     s.Scratch_runner.time,
                     Sim.Fd_value.Quorum
                       (Core.Separation.Sigma_scratch.output
                          s.Scratch_runner.state_after) ))
          in
          let h = Fd.History.of_samples ~n samples in
          match Fd.Check.sigma ~max_stab:450 pattern h with
          | Ok () -> record t true ""
          | Error v ->
            record t false (Format.asprintf "%a" Fd.Check.pp_violation v))
        (seeds_of ~seed_base ~quick ()))
    cases;
  finish_row ~id:"E7" ~theorem:"Thm 7.1 IF: Sigma from scratch, t < n/2"
    ~expected:"round-based n-t algorithm emulates Sigma" t

let e8_attack ?(quick = false) () =
  let module Atk = Core.Separation.Attack (Core.Separation.Sigma_scratch) in
  let t = tally () in
  let cases = if quick then [ (4, 2); (6, 3) ] else [ (4, 2); (4, 3); (5, 3); (6, 3); (8, 4) ] in
  List.iter
    (fun (n, tt) ->
      match Atk.run ~n ~t:tt ~inputs:(fun _ -> tt) () with
      | Ok o ->
        record t
          (o.Atk.disjoint
          && Pset.subset o.Atk.quorum_a o.Atk.part_a
          && Pset.subset o.Atk.quorum_b o.Atk.part_b)
          (Printf.sprintf "n=%d t=%d quorums intersect" n tt)
      | Error e -> record t false (Printf.sprintf "n=%d t=%d: %s" n tt e))
    cases;
  (* below n/2 the construction must refuse *)
  (match Atk.run ~n:4 ~t:1 ~inputs:(fun _ -> 1) () with
  | Error _ -> record t true ""
  | Ok _ -> record t false "attack ran below n/2");
  finish_row ~id:"E8"
    ~theorem:"Thm 7.1 ONLY IF: two-run attack, t >= n/2"
    ~expected:"disjoint quorums inside A and B; inapplicable below n/2" t

(* ---------------------------------------------------------------- *)
(* E9: run merging                                                   *)
(* ---------------------------------------------------------------- *)

(* Lemma 2.2 applied as in Lemma 5.3: drive two deciding runs of the
   quorum-driven MR algorithm with disjoint participants (each side's
   quorums stay on its side), merge them, replay the merged schedule,
   and observe a single run in which processes of the two sides have
   decided differently. *)
let e9_merge ?quick:_ ?(step_budget = 400) () =
  let n = 4 in
  let part_a = Pset.of_list [ 0; 1 ] and part_b = Pset.of_list [ 2; 3 ] in
  let pattern = Sim.Failure_pattern.failure_free ~n in
  let fd p _ =
    let side = if Pset.mem p part_a then part_a else part_b in
    Sim.Fd_value.Pair
      (Sim.Fd_value.Leader (Pset.min_elt side), Sim.Fd_value.Quorum side)
  in
  let inputs p = if Pset.mem p part_a then 0 else 1 in
  (* A side that fails to decide within the budget is reported as a
     failed row, never as an exception: one bad row must not kill the
     whole experiment table (or the CI bench job) the way the old
     [failwith "side did not decide"] did. *)
  let drive side =
    let s = Mrq_runner.Session.create ~pattern ~fd ~inputs () in
    let members = Pset.elements side in
    let rec go i =
      if i > step_budget then
        Error
          (Format.asprintf "side %a did not decide within %d steps" Pset.pp
             side step_budget)
      else if
        List.for_all
          (fun p ->
            Consensus.Mr.With_quorum.decision (Mrq_runner.Session.state s p)
            <> None)
          members
      then Ok (Mrq_runner.Session.finish s)
      else begin
        Mrq_runner.Session.step s (List.nth members (i mod List.length members));
        go (i + 1)
      end
    in
    go 0
  in
  match (drive part_a, drive part_b) with
  | Error e, _ | _, Error e ->
    {
      id = "E9";
      theorem = "Lemma 2.2: run merging (as used by Lemma 5.3)";
      expected =
        "merged run applicable, per-process states preserved, and the two \
         sides decide differently in one run";
      measured = "no merge attempted: " ^ e;
      pass = false;
    }
  | Ok run_a, Ok run_b ->
  let merged =
    Mrq_runner.merge_traces
      (Array.to_list run_a.Mrq_runner.steps)
      (Array.to_list run_b.Mrq_runner.steps)
  in
  match Mrq_runner.replay ~n ~inputs merged with
  | Error e ->
    {
      id = "E9";
      theorem = "Lemma 2.2: run merging";
      expected = "merged schedule applicable; states preserved";
      measured = "replay failed: " ^ e;
      pass = false;
    }
  | Ok states ->
    let d p = Consensus.Mr.With_quorum.decision states.(p) in
    let states_match =
      List.for_all
        (fun p ->
          d p
          = Consensus.Mr.With_quorum.decision
              (if Pset.mem p part_a then run_a.Mrq_runner.states.(p)
               else run_b.Mrq_runner.states.(p)))
        (Pid.all ~n)
    in
    let split = d 0 = Some 0 && d 2 = Some 1 in
    {
      id = "E9";
      theorem = "Lemma 2.2: run merging (as used by Lemma 5.3)";
      expected =
        "merged run applicable, per-process states preserved, and the two \
         sides decide differently in one run";
      measured =
        Printf.sprintf
          "replay ok; states preserved: %b; decisions p0=%s p2=%s"
          states_match
          (Format.asprintf "%a" Consensus.Value.pp_opt (d 0))
          (Format.asprintf "%a" Consensus.Value.pp_opt (d 2));
      pass = states_match && split;
    }

(* A legal partitioned (Omega, Sigma-nu+) history: each side's leaders
   and quorums stay on its side. Valid because the faulty side's
   quorums consist of faulty processes only. *)
let e10_not_uniform ?quick:_ () =
  let n = 4 in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (2, 400); (3, 400) ] in
  let side p = if p < 2 then Pset.of_list [ 0; 1 ] else Pset.of_list [ 2; 3 ] in
  let fd p _t =
    Sim.Fd_value.Pair
      ( Sim.Fd_value.Leader (Pset.min_elt (side p)),
        Sim.Fd_value.Quorum (side p) )
  in
  let proposals p = if p < 2 then 0 else 1 in
  let run =
    Anuc_runner.exec ~seed:0 ~pattern ~fd ~inputs:proposals ~max_steps:3000
      ~stop:(fun st _ ->
        List.for_all (fun p -> Core.Anuc.decision (st p) <> None)
          [ 0; 1; 2; 3 ])
      ()
  in
  let outcome =
    Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
        Core.Anuc.decision run.Anuc_runner.states.(p))
  in
  let nonuniform_ok =
    Result.is_ok (Consensus.Spec.check Consensus.Spec.Nonuniform outcome)
  in
  let uniform_violated =
    Result.is_error
      (Consensus.Spec.check_agreement Consensus.Spec.Uniform outcome)
  in
  (* the driving history must be a legal Sigma-nu+ history *)
  let samples =
    Array.to_list run.Anuc_runner.steps
    |> List.map (fun s ->
           (s.Anuc_runner.pid, s.Anuc_runner.time, s.Anuc_runner.fd))
  in
  let h = Fd.History.of_samples ~n samples in
  let history_ok =
    Result.is_ok
      (Fd.Check.sigma_nu_plus
         ~max_stab:(Fd.History.last_time h)
         pattern
         (Fd.History.project_snd h))
  in
  let d p =
    Format.asprintf "%a" Consensus.Value.pp_opt
      (Core.Anuc.decision run.Anuc_runner.states.(p))
  in
  {
    id = "E10";
    theorem = "A_nuc is strictly nonuniform";
    expected =
      "under a legal partitioned Sigma-nu+ history the faulty side        decides differently: uniform agreement fails, nonuniform holds";
    measured =
      Printf.sprintf
        "decisions %s/%s (correct) vs %s/%s (faulty); nonuniform ok: %b;          uniform violated: %b; history legal: %b"
        (d 0) (d 1) (d 2) (d 3) nonuniform_ok uniform_violated history_ok;
    pass = nonuniform_ok && uniform_violated && history_ok;
  }

(* ---------------------------------------------------------------- *)
(* E11: bounded model checking (lib/mc)                               *)
(* ---------------------------------------------------------------- *)

module Mc_naive = Mc.Make (Consensus.Mr.With_quorum)
module Mc_anuc = Mc.Make (Core.Anuc)

(* The E_1(3) universe of the Section 6.3 argument: p2 faulty,
   proposing the contaminating value. *)
(* The E_1(n) universe of the model-checking experiments: the highest
   process is faulty but crashes only past the explored window, and
   proposes the minority value. [n = 3] everywhere except the grid
   rows of E16, which need a 2x2 tiling. *)
let mc_universe_n ~n ~depth =
  let faulty = Pset.singleton (n - 1) in
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (n - 1, depth + 1) ] in
  let proposals p = if Pset.mem p faulty then 1 else 0 in
  (n, faulty, pattern, proposals)

let mc_universe ~depth = mc_universe_n ~n:3 ~depth

(* Exhaustive bounded verification of A_nuc on E_1(n) under the
   Sigma-nu+ contamination family (optionally generalized over a
   quorum family; [None] is the pre-family construction verbatim). *)
let mc_verify_anuc ?reduction ?(n = 3) ?quorum ~depth () =
  let n, faulty, pattern, proposals = mc_universe_n ~n ~depth in
  let menu = Mc.Menu.contamination ~plus:true ?quorum ~n ~faulty () in
  let report =
    Mc_anuc.run ?reduction ~n ~menu ~depth ~inputs:proposals
      ~props:
        (Mc_anuc.consensus_props ~decision:Core.Anuc.decision ~proposals
           ~flavour:Consensus.Spec.Nonuniform ~pattern)
      ~stop:
        (Mc_anuc.decided_stop ~decision:Core.Anuc.decision
           ~scope:(Sim.Failure_pattern.correct pattern))
      ()
  in
  (Mc.Menu.validate ~pattern menu, report)

(* Exhaustive search for the naive-Sigma-nu contamination violation:
   MR with detector-supplied quorums driven by a legal Sigma-nu menu.
   Returns the report plus the independent certificates of any found
   counterexample (replay applicability, history legality). *)
let mc_attack_naive ?reduction ?(n = 3) ?quorum ~depth () =
  let n, faulty, pattern, proposals = mc_universe_n ~n ~depth in
  let menu = Mc.Menu.contamination ?quorum ~n ~faulty () in
  let report =
    Mc_naive.run ?reduction ~n ~menu ~depth ~inputs:proposals
      ~props:
        (Mc_naive.consensus_props
           ~decision:Consensus.Mr.With_quorum.decision ~proposals
           ~flavour:Consensus.Spec.Nonuniform ~pattern)
      ~stop:
        (Mc_naive.decided_stop ~decision:Consensus.Mr.With_quorum.decision
           ~scope:(Sim.Failure_pattern.correct pattern))
      ()
  in
  let certified =
    Option.map
      (fun cx ->
        ( Mc_naive.replay_counterexample ~n ~inputs:proposals cx,
          Mc.history_legal ~kind:menu.Mc.Menu.kind ~pattern
            cx.Mc_naive.cx_samples ))
      report.Mc_naive.violation
  in
  (Mc.Menu.validate ~pattern menu, report, certified)

let anuc_mc_depth ~quick = if quick then 9 else 11
let naive_mc_depth ~quick = if quick then 32 else 34

let e11_model_check ?(quick = false) () =
  let anuc_legal, anuc_r = mc_verify_anuc ~depth:(anuc_mc_depth ~quick) () in
  let naive_legal, naive_r, certified =
    mc_attack_naive ~depth:(naive_mc_depth ~quick) ()
  in
  let anuc_ok =
    Result.is_ok anuc_legal
    && anuc_r.Mc_anuc.violation = None
    && not anuc_r.Mc_anuc.stats.Mc.truncated
    (* deduplication must be load-bearing for the claim of exhaustion *)
    && anuc_r.Mc_anuc.stats.Mc.distinct_states
       < anuc_r.Mc_anuc.stats.Mc.transitions
  in
  let naive_ok =
    Result.is_ok naive_legal
    &&
    match (naive_r.Mc_naive.violation, certified) with
    | Some cx, Some (replay, history) ->
      cx.Mc_naive.cx_property = "nonuniform agreement"
      && Result.is_ok replay && Result.is_ok history
    | _ -> false
  in
  let measured =
    match naive_r.Mc_naive.violation with
    | None -> "naive baseline: no violation found (UNEXPECTED)"
    | Some cx ->
      Printf.sprintf
        "A_nuc: %d states / %d transitions exhausted to depth %d, 0 \
         violations; naive: %d-step NU-agreement counterexample found \
         (%d states), replay + Sigma-nu legality certified"
        anuc_r.Mc_anuc.stats.Mc.distinct_states
        anuc_r.Mc_anuc.stats.Mc.transitions (anuc_mc_depth ~quick)
        (List.length cx.Mc_naive.cx_steps)
        naive_r.Mc_naive.stats.Mc.distinct_states
  in
  {
    id = "E11";
    theorem = "Sec 6.3 via bounded model checking";
    expected =
      "exhaustive schedule exploration verifies A_nuc and finds the naive \
       Sigma-nu violation";
    measured;
    pass = anuc_ok && naive_ok;
  }

(* ---------------------------------------------------------------- *)
(* E12: adversarial network faults (Sim.Faults)                      *)
(* ---------------------------------------------------------------- *)

(* The lossy-link variants of the two E11 explorations: identical
   detector menus, plus a network adversary that may drop any
   deliverable cross-process message. Drop moves consume depth, so
   the A_nuc bound sits lower than E11's for comparable run time. *)
let anuc_lossy_mc_depth ~quick = if quick then 7 else 8
let naive_lossy_mc_depth ~quick = if quick then 32 else 33

let mc_verify_anuc_lossy ~depth =
  let n, faulty, pattern, proposals = mc_universe ~depth in
  let menu = Mc.Menu.lossy ~plus:true ~n ~faulty () in
  let report =
    Mc_anuc.run ~n ~menu ~depth ~inputs:proposals
      ~props:
        (Mc_anuc.consensus_props ~decision:Core.Anuc.decision ~proposals
           ~flavour:Consensus.Spec.Nonuniform ~pattern)
      ~stop:
        (Mc_anuc.decided_stop ~decision:Core.Anuc.decision
           ~scope:(Sim.Failure_pattern.correct pattern))
      ()
  in
  (Mc.Menu.validate ~pattern menu, report)

(* Unlike the A_nuc verification, the depth-32+ attack cannot afford
   the unbounded drop alphabet (the lossy state space at that depth
   dwarfs [max_states]); a loss budget of one keeps the exploration
   exhaustive for every schedule with at most one network drop —
   which still strictly contains the loss-free space the Section 6.3
   counterexample lives in. *)
let naive_lossy_drop_budget = 1

let mc_attack_naive_lossy ~depth =
  let n, faulty, pattern, proposals = mc_universe ~depth in
  let menu = Mc.Menu.lossy ~n ~faulty () in
  let report =
    Mc_naive.run ~n ~menu ~depth ~max_drops:naive_lossy_drop_budget
      ~inputs:proposals
      ~props:
        (Mc_naive.consensus_props
           ~decision:Consensus.Mr.With_quorum.decision ~proposals
           ~flavour:Consensus.Spec.Nonuniform ~pattern)
      ~stop:
        (Mc_naive.decided_stop ~decision:Consensus.Mr.With_quorum.decision
           ~scope:(Sim.Failure_pattern.correct pattern))
      ()
  in
  let certified =
    Option.map
      (fun cx ->
        ( Mc_naive.replay_counterexample ~n ~inputs:proposals cx,
          Mc.history_legal ~kind:menu.Mc.Menu.kind ~pattern
            cx.Mc_naive.cx_samples ))
      report.Mc_naive.violation
  in
  (Mc.Menu.validate ~pattern menu, report, certified)

let e12_faults ?(quick = false) ?(seed_base = 0) () =
  (* (a) randomized A_nuc runs under the full fault menu — drops,
     duplication, reordering, and a partition that heals before the
     detectors stabilize: consensus must hold end to end and the
     recorded trace must still pass conformance (replayed under the
     run's own fault spec). *)
  let t = tally () in
  let n = 4 in
  let runs = if quick then 6 else 16 in
  List.iter
    (fun seed ->
      let pattern = random_pattern ~seed ~n ~t:1 in
      let correct = Sim.Failure_pattern.correct pattern in
      let proposals p = (p + seed) mod 2 in
      let oracle =
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed ~stab_time:60 pattern)
          (Fd.Oracle.sigma_nu_plus ~seed ~stab_time:60 pattern)
      in
      let faults =
        Sim.Faults.make ~drop:0.1 ~dup:0.1 ~reorder:3
          ~partitions:
            [
              {
                Sim.Faults.from_t = 20;
                until_t = 55;
                groups = [ Pset.of_list [ 0; 1 ]; Pset.of_list [ 2; 3 ] ];
              };
            ]
          ~seed ()
      in
      let run =
        Anuc_runner.exec ~seed ~faults ~pattern ~fd:oracle.Fd.Oracle.query
          ~inputs:proposals ~max_steps:8000
          ~stop:(fun st _ ->
            Pset.for_all (fun p -> Core.Anuc.decision (st p) <> None) correct)
          ()
      in
      let outcome =
        Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
            Core.Anuc.decision run.Anuc_runner.states.(p))
      in
      (* Safety only: a dropped message is never retransmitted, so a
         loss on the critical path legitimately stalls liveness (the
         degradation B7 quantifies) — but no fault may ever induce a
         validity or NU-agreement violation. *)
      (match
         (match Consensus.Spec.check_validity outcome with
         | Error _ as e -> e
         | Ok () ->
           Consensus.Spec.check_agreement Consensus.Spec.Nonuniform outcome)
       with
      | Ok () -> record t true ""
      | Error e ->
        record t false (Printf.sprintf "seed %d: %s" seed e));
      match
        Anuc_runner.conformance ~fd:oracle.Fd.Oracle.query ~inputs:proposals
          run
      with
      | Ok () -> record t true ""
      | Error e ->
        record t false (Printf.sprintf "seed %d: conformance: %s" seed e))
    (List.init runs (fun i -> seed_base + i));
  (* (b) the Section 6.3 dichotomy survives the lossy network model:
     exhaustive exploration still clears A_nuc and still convicts the
     naive baseline, counterexample certified as in E11. *)
  let anuc_legal, anuc_r =
    mc_verify_anuc_lossy ~depth:(anuc_lossy_mc_depth ~quick)
  in
  let naive_legal, naive_r, certified =
    mc_attack_naive_lossy ~depth:(naive_lossy_mc_depth ~quick)
  in
  let anuc_ok =
    Result.is_ok anuc_legal
    && anuc_r.Mc_anuc.violation = None
    && not anuc_r.Mc_anuc.stats.Mc.truncated
  in
  let naive_ok =
    Result.is_ok naive_legal
    &&
    match (naive_r.Mc_naive.violation, certified) with
    | Some cx, Some (replay, history) ->
      cx.Mc_naive.cx_property = "nonuniform agreement"
      && Result.is_ok replay && Result.is_ok history
    | _ -> false
  in
  let measured =
    Printf.sprintf
      "A_nuc: %d/%d faulty runs safe+conformant%s; lossy mc: A_nuc %d states \
       exhausted to depth %d, 0 violations; naive: %s"
      (t.total - t.failed) t.total
      (if t.failed = 0 then "" else Printf.sprintf " (first: %s)" t.note)
      anuc_r.Mc_anuc.stats.Mc.distinct_states
      (anuc_lossy_mc_depth ~quick)
      (match naive_r.Mc_naive.violation with
      | None -> "no violation found (UNEXPECTED)"
      | Some cx ->
        Printf.sprintf "%d-step certified NU-agreement counterexample"
          (List.length cx.Mc_naive.cx_steps))
  in
  {
    id = "E12";
    theorem = "Sim.Faults: consensus under an adversarial network";
    expected =
      "A_nuc keeps validity + NU agreement under drops/dups/reordering and \
       healed partitions; the naive Sigma-nu baseline still falls over \
       lossy links";
    measured;
    pass = t.failed = 0 && anuc_ok && naive_ok;
  }

(* ---------------------------------------------------------------- *)
(* E13: randomized exploration beyond the checker's horizon          *)
(* ---------------------------------------------------------------- *)

module Ex_naive = Explore.Make (Consensus.Mr.With_quorum)
module Ex_anuc = Explore.Make (Core.Anuc)

(* The E_2(5) universe the model checker cannot close: E11's
   exhaustive horizon is E_1(3) around depth 34, and at n = 5 the
   per-step branching factor puts every interesting depth far out of
   reach — so the Section 6.3 dichotomy at this size is sampled
   (lib/explore), not enumerated. The faulty processes are the top
   [t] ids, proposing the contaminating value, never crashing within
   the step bound (contamination needs them alive and deciding). *)
let fuzz_universe ~n ~t ~max_steps =
  let faulty = Pset.of_list (List.init t (fun i -> n - 1 - i)) in
  let crashes = Pset.fold (fun p l -> (p, max_steps + 1) :: l) faulty [] in
  let pattern = Sim.Failure_pattern.make ~n ~crashes in
  let proposals p = if Pset.mem p faulty then 1 else 0 in
  (faulty, pattern, proposals)

let fuzz_max_steps ~n = 18 * n

let fuzz_attack_naive ?quorum ~seed ~runs ~n ~t () =
  let max_steps = fuzz_max_steps ~n in
  let faulty, pattern, proposals = fuzz_universe ~n ~t ~max_steps in
  let menu = Mc.Menu.contamination ?quorum ~n ~faulty () in
  let props =
    Ex_naive.M.consensus_props ~decision:Consensus.Mr.With_quorum.decision
      ~proposals ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    Ex_naive.M.decided_stop ~decision:Consensus.Mr.With_quorum.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  ( Mc.Menu.validate ~pattern menu,
    Ex_naive.fuzz ~algo:"naive-sn" ~max_steps ~stop
      ~decided:(fun st -> Consensus.Mr.With_quorum.decision st <> None)
      ~seed ~runs ~n ~menu ~pattern ~inputs:proposals ~props () )

(* A_nuc under the same sampler, swarm mode: menus, loss budgets,
   stabilization points and samplers all rotate per batch. *)
let fuzz_survive_anuc ~seed ~runs ~n ~t =
  let max_steps = fuzz_max_steps ~n in
  let faulty, pattern, proposals = fuzz_universe ~n ~t ~max_steps in
  let menu = Mc.Menu.contamination ~plus:true ~n ~faulty () in
  let swarm =
    {
      Explore.sw_menus =
        [
          menu;
          Mc.Menu.lossy ~plus:true ~n ~faulty ();
          Mc.Menu.omega_sigma_nu_plus ~n ~faulty;
        ];
      sw_budgets = [ 0; 1; 2 ];
      sw_stabs = [ max_steps / 3; 2 * max_steps / 3; max_steps ];
      sw_samplers = [ Explore.Uniform; Pct 2; Pct 3; Pct 4 ];
    }
  in
  let props =
    Ex_anuc.M.consensus_props ~decision:Core.Anuc.decision ~proposals
      ~flavour:Consensus.Spec.Nonuniform ~pattern
  in
  let stop =
    Ex_anuc.M.decided_stop ~decision:Core.Anuc.decision
      ~scope:(Sim.Failure_pattern.correct pattern)
  in
  ( Mc.Menu.validate ~pattern menu,
    Ex_anuc.fuzz ~algo:"anuc" ~swarm ~max_steps ~stop
      ~decided:(fun st -> Core.Anuc.decision st <> None)
      ~seed ~runs ~n ~menu ~pattern ~inputs:proposals ~props () )

(* Seed 7 lands the n = 5 naive violation within about 800 uniform
   runs; EXPERIMENTS.md E13 records the cross-seed robustness sweep
   (every seed 1..12 finds and shrinks it to <= 40 moves). *)
let e13_fuzz_seed = 7
let e13_naive_runs ~quick = if quick then 1_000 else 10_000
let e13_anuc_runs ~quick = if quick then 1_000 else 50_000

let e13_fuzz ?(quick = false) ?(seed_base = 0) () =
  let seed = e13_fuzz_seed + seed_base in
  let naive_legal, naive_r =
    fuzz_attack_naive ~seed ~runs:(e13_naive_runs ~quick) ~n:5 ~t:2 ()
  in
  let anuc_legal, anuc_r =
    fuzz_survive_anuc ~seed ~runs:(e13_anuc_runs ~quick) ~n:5 ~t:2
  in
  let naive_ok =
    Result.is_ok naive_legal
    &&
    match naive_r.Ex_naive.violation with
    | None -> false
    | Some v ->
      v.Ex_naive.v_property = "nonuniform agreement"
      && v.Ex_naive.v_replay_ok && v.Ex_naive.v_history_ok
      && List.length v.Ex_naive.v_shrunk <= 40
      && List.length v.Ex_naive.v_shrunk < List.length v.Ex_naive.v_moves
  in
  let anuc_ok =
    Result.is_ok anuc_legal && anuc_r.Ex_anuc.violation = None
  in
  let measured =
    Printf.sprintf
      "naive: %s; A_nuc: no violation in %d swarm runs (%d distinct \
       states, %d decision depths)"
      (match naive_r.Ex_naive.violation with
      | None -> "no violation found (UNEXPECTED)"
      | Some v ->
        Printf.sprintf
          "NU-agreement violation at n=5 run %d, shrunk %d -> %d moves, \
           replay %s, Sigma-nu legality %s"
          v.Ex_naive.v_run
          (List.length v.Ex_naive.v_moves)
          (List.length v.Ex_naive.v_shrunk)
          (if v.Ex_naive.v_replay_ok then "OK" else "FAILED")
          (if v.Ex_naive.v_history_ok then "OK" else "FAILED"))
      anuc_r.Ex_anuc.runs anuc_r.Ex_anuc.totals.Explore.distinct_states
      anuc_r.Ex_anuc.totals.Explore.decision_depths
  in
  {
    id = "E13";
    theorem = "Sec 6.3 beyond the mc horizon (randomized exploration)";
    expected =
      "fuzzing finds + shrinks + certifies the naive Sigma-nu violation at \
       n=5 where mc cannot reach; A_nuc survives the same swarm budget";
    measured;
    pass = naive_ok && anuc_ok;
  }

(* ---------------------------------------------------------------- *)
(* E14: happens-before DPOR (Mc reduction = Dpor)                    *)
(* ---------------------------------------------------------------- *)

(* The reduction is state-preserving: it prunes redundant transitions
   (swaps of independent adjacent moves), never states or verdicts.
   That makes three checks meaningful: (a) the E11 exhaustion pushed
   deeper than the unreduced checker affords, (b) a differential pin
   at a depth both can reach — verdict and distinct-state counts must
   be equal, with the reduced run taking no more transitions — and
   (c) the Section 6.3 counterexample still found and certified with
   the reduction on. *)
let dpor_mc_depth ~quick = if quick then 11 else 13
let dpor_diff_depth ~quick = if quick then 7 else 9

let e14_dpor ?(quick = false) () =
  let deep_depth = dpor_mc_depth ~quick in
  let dpor_legal, dpor_r = mc_verify_anuc ~reduction:Mc.Dpor ~depth:deep_depth () in
  let deep_ok =
    Result.is_ok dpor_legal
    && dpor_r.Mc_anuc.violation = None
    && not dpor_r.Mc_anuc.stats.Mc.truncated
  in
  let d = dpor_diff_depth ~quick in
  let _, none_r = mc_verify_anuc ~reduction:Mc.No_reduction ~depth:d () in
  let _, dpor_d = mc_verify_anuc ~reduction:Mc.Dpor ~depth:d () in
  let diff_ok =
    none_r.Mc_anuc.violation = None
    && dpor_d.Mc_anuc.violation = None
    && none_r.Mc_anuc.stats.Mc.distinct_states
       = dpor_d.Mc_anuc.stats.Mc.distinct_states
    && dpor_d.Mc_anuc.stats.Mc.transitions
       <= none_r.Mc_anuc.stats.Mc.transitions
  in
  let naive_legal, naive_r, certified =
    mc_attack_naive ~reduction:Mc.Dpor ~depth:(naive_mc_depth ~quick) ()
  in
  let naive_ok =
    Result.is_ok naive_legal
    &&
    match (naive_r.Mc_naive.violation, certified) with
    | Some cx, Some (replay, history) ->
      cx.Mc_naive.cx_property = "nonuniform agreement"
      && Result.is_ok replay && Result.is_ok history
    | _ -> false
  in
  let measured =
    Printf.sprintf
      "A_nuc dpor: %d states / %d transitions exhausted to depth %d (%d \
       races, %d backtracks, %d self-loops); differential depth %d: %d = %d \
       states, %d <= %d transitions; naive cx under dpor: %s"
      dpor_r.Mc_anuc.stats.Mc.distinct_states
      dpor_r.Mc_anuc.stats.Mc.transitions deep_depth
      dpor_r.Mc_anuc.stats.Mc.races dpor_r.Mc_anuc.stats.Mc.backtracks
      dpor_r.Mc_anuc.stats.Mc.self_loops d
      dpor_d.Mc_anuc.stats.Mc.distinct_states
      none_r.Mc_anuc.stats.Mc.distinct_states
      dpor_d.Mc_anuc.stats.Mc.transitions
      none_r.Mc_anuc.stats.Mc.transitions
      (if naive_ok then "found + certified" else "MISSING")
  in
  {
    id = "E14";
    theorem = "Sec 6.3 exhaustion under happens-before DPOR";
    expected =
      "dpor reduction reaches a deeper A_nuc exhaustion, preserves verdicts \
       and distinct states at shared depth, and keeps the naive \
       counterexample certified";
    measured;
    pass = deep_ok && diff_ok && naive_ok;
  }

(* ---------------------------------------------------------------- *)
(* E16: the Section 6.3 differential across quorum families          *)
(* ---------------------------------------------------------------- *)

(* One configuration per shipped family, each chosen so the
   contamination channel is open: majority and the weighted votes at
   n = 3 (their menus offer two-member quorums avoiding the faulty
   process), supermajority f = 1 and the 2x2 grid at n = 4 — at
   n = 3, t = 1 every Sigma-nu-legal super:1 quorum contains the
   faulty process (threshold n, and the escapes carry F), which
   closes the channel entirely; see the E16 narrative in
   EXPERIMENTS.md. *)
let e16_families =
  [
    (Quorum_family.majority, 3);
    (Quorum_family.weighted ~weights:[ 2; 1; 1 ], 3);
    (Quorum_family.supermajority ~f:1, 4);
    (Quorum_family.grid ~rows:2 ~cols:2 (), 4);
  ]

let e16_fuzz_runs ~quick = if quick then 500 else 2000

let e16_anuc_depth ~n ~quick =
  if n <= 3 then if quick then 7 else 9 else if quick then 5 else 7

(* The E11/E13 differential, per family: the naive substitution falls
   under the family's contamination menu (randomized search, shrunk
   and certified by replay + Sigma-nu legality), while A_nuc exhausts
   the same adversary's schedule space clean. *)
let e16_quorum ?(quick = false) ?(seed_base = 0) () =
  let t = tally () in
  List.iter
    (fun (fam, n) ->
      let label = Printf.sprintf "%s(n=%d)" (Quorum_family.name fam) n in
      let naive_legal, naive_r =
        fuzz_attack_naive ~quorum:fam ~seed:(e13_fuzz_seed + seed_base)
          ~runs:(e16_fuzz_runs ~quick) ~n ~t:1 ()
      in
      let naive_ok =
        Result.is_ok naive_legal
        &&
        match naive_r.Ex_naive.violation with
        | Some v ->
          v.Ex_naive.v_property = "nonuniform agreement"
          && v.Ex_naive.v_replay_ok && v.Ex_naive.v_history_ok
        | None -> false
      in
      record t naive_ok
        (Printf.sprintf "%s: naive did not fall (certified)" label);
      let depth = e16_anuc_depth ~n ~quick in
      let anuc_legal, anuc_r = mc_verify_anuc ~n ~quorum:fam ~depth () in
      let anuc_ok =
        Result.is_ok anuc_legal
        && anuc_r.Mc_anuc.violation = None
        && not anuc_r.Mc_anuc.stats.Mc.truncated
      in
      record t anuc_ok
        (Printf.sprintf "%s: A_nuc not exhausted clean at depth %d" label
           depth))
    e16_families;
  finish_row ~id:"E16" ~theorem:"Sec 6.3 across quorum families"
    ~expected:
      "under every family's contamination menu the naive substitution \
       falls (shrunk + certified) and A_nuc exhausts clean"
    t

let all ?(quick = false) ?(seed_base = 0) () =
  [
    e1_extract_sigma_nu ~quick ~seed_base ();
    e2_extract_sigma ~quick ~seed_base ();
    e3_boost ~quick ~seed_base ();
    e4_anuc ~quick ~seed_base ();
    e5_stack ~quick ~seed_base ();
    e6_contamination ~quick ~seed_base ();
    e7_sigma_scratch ~quick ~seed_base ();
    e8_attack ~quick ();
    e9_merge ~quick ();
    e10_not_uniform ~quick ();
    e11_model_check ~quick ();
    e12_faults ~quick ~seed_base ();
    e13_fuzz ~quick ~seed_base ();
    e14_dpor ~quick ();
    e16_quorum ~quick ~seed_base ();
  ]

(* ---------------------------------------------------------------- *)
(* B-tables                                                          *)
(* ---------------------------------------------------------------- *)

type latency_row = {
  algorithm : string;
  n : int;
  t : int;
  runs : int;
  decided : int;
  avg_rounds : float;
  avg_steps : float;
  avg_msgs : float;
  avg_hwm : float;
}

let latency_header =
  Printf.sprintf "%-12s %3s %3s %5s %8s %8s %10s %10s %9s" "algorithm" "n"
    "t" "runs" "decided" "rounds" "steps" "messages" "mbox_hwm"

let pp_latency_row fmt r =
  Format.fprintf fmt "%-12s %3d %3d %5d %8d %8.2f %10.1f %10.1f %9.1f"
    r.algorithm r.n r.t r.runs r.decided r.avg_rounds r.avg_steps r.avg_msgs
    r.avg_hwm

type algo = Anuc | Mr_majority | Mr_sigma | Stack | Ct

let algo_name = function
  | Anuc -> "A_nuc"
  | Mr_majority -> "MR-majority"
  | Mr_sigma -> "MR-Sigma"
  | Stack -> "Stack"
  | Ct -> "CT-<>S"

(* One measured consensus run: (decided?, decision rounds of correct
   deciders, steps, messages, mailbox high-water mark, messages the
   fault spec dropped). *)
let measure_one ?(faults = Sim.Faults.none) ~algo ~pattern ~seed ~stab_time
    ~max_steps () : bool * int list * int * int * int * int =
  let proposals p = (p + seed) mod 2 in
  let correct = Sim.Failure_pattern.correct pattern in
  let omega = Fd.Oracle.omega ~seed ~stab_time pattern in
  match algo with
  | Anuc ->
    let oracle =
      Fd.Oracle.pair omega (Fd.Oracle.sigma_nu_plus ~seed ~stab_time pattern)
    in
    let run =
      Anuc_runner.exec ~seed ~faults ~record:false ~pattern
        ~fd:oracle.Fd.Oracle.query ~inputs:proposals ~max_steps
        ~stop:(fun st _ ->
          Pset.for_all (fun p -> Core.Anuc.decision (st p) <> None) correct)
        ()
    in
    let rounds =
      Pset.fold
        (fun p acc ->
          match Core.Anuc.decision_round run.Anuc_runner.states.(p) with
          | Some r -> r :: acc
          | None -> acc)
        correct []
    in
    ( run.Anuc_runner.stopped_early,
      rounds,
      run.Anuc_runner.step_count,
      run.Anuc_runner.messages_sent,
      run.Anuc_runner.metrics.Sim.Runner.mailbox_hwm,
      run.Anuc_runner.metrics.Sim.Runner.dropped )
  | Stack ->
    let oracle =
      Fd.Oracle.pair omega (Fd.Oracle.sigma_nu ~seed ~stab_time pattern)
    in
    let run =
      Stack_runner.exec ~seed ~faults ~record:false ~pattern
        ~fd:oracle.Fd.Oracle.query ~inputs:proposals ~max_steps
        ~stop:(fun st _ ->
          Pset.for_all (fun p -> Core.Stack.decision (st p) <> None) correct)
        ()
    in
    let rounds =
      Pset.fold
        (fun p acc ->
          match Core.Stack.decision_round run.Stack_runner.states.(p) with
          | Some r -> r :: acc
          | None -> acc)
        correct []
    in
    ( run.Stack_runner.stopped_early,
      rounds,
      run.Stack_runner.step_count,
      run.Stack_runner.messages_sent,
      run.Stack_runner.metrics.Sim.Runner.mailbox_hwm,
      run.Stack_runner.metrics.Sim.Runner.dropped )
  | Mr_majority ->
    let oracle =
      Fd.Oracle.pair omega (Fd.Oracle.sigma ~seed ~stab_time pattern)
    in
    let run =
      Mrm_runner.exec ~seed ~faults ~record:false ~pattern
        ~fd:oracle.Fd.Oracle.query ~inputs:proposals ~max_steps
        ~stop:(fun st _ ->
          Pset.for_all
            (fun p -> Consensus.Mr.Majority.decision (st p) <> None)
            correct)
        ()
    in
    let rounds =
      Pset.fold
        (fun p acc ->
          match
            Consensus.Mr.Majority.decision_round run.Mrm_runner.states.(p)
          with
          | Some r -> r :: acc
          | None -> acc)
        correct []
    in
    ( run.Mrm_runner.stopped_early,
      rounds,
      run.Mrm_runner.step_count,
      run.Mrm_runner.messages_sent,
      run.Mrm_runner.metrics.Sim.Runner.mailbox_hwm,
      run.Mrm_runner.metrics.Sim.Runner.dropped )
  | Ct ->
    let oracle = Fd.Oracle.eventually_strong ~seed ~stab_time pattern in
    let run =
      Ct_runner.exec ~seed ~faults ~record:false ~pattern
        ~fd:oracle.Fd.Oracle.query ~inputs:proposals ~max_steps
        ~stop:(fun st _ ->
          Pset.for_all
            (fun p -> Consensus.Ct.decision (st p) <> None)
            correct)
        ()
    in
    let rounds =
      Pset.fold
        (fun p acc ->
          match Consensus.Ct.decision_round run.Ct_runner.states.(p) with
          | Some r -> r :: acc
          | None -> acc)
        correct []
    in
    ( run.Ct_runner.stopped_early,
      rounds,
      run.Ct_runner.step_count,
      run.Ct_runner.messages_sent,
      run.Ct_runner.metrics.Sim.Runner.mailbox_hwm,
      run.Ct_runner.metrics.Sim.Runner.dropped )
  | Mr_sigma ->
    let oracle =
      Fd.Oracle.pair omega (Fd.Oracle.sigma ~seed ~stab_time pattern)
    in
    let run =
      Mrq_runner.exec ~seed ~faults ~record:false ~pattern
        ~fd:oracle.Fd.Oracle.query ~inputs:proposals ~max_steps
        ~stop:(fun st _ ->
          Pset.for_all
            (fun p -> Consensus.Mr.With_quorum.decision (st p) <> None)
            correct)
        ()
    in
    let rounds =
      Pset.fold
        (fun p acc ->
          match
            Consensus.Mr.With_quorum.decision_round run.Mrq_runner.states.(p)
          with
          | Some r -> r :: acc
          | None -> acc)
        correct []
    in
    ( run.Mrq_runner.stopped_early,
      rounds,
      run.Mrq_runner.step_count,
      run.Mrq_runner.messages_sent,
      run.Mrq_runner.metrics.Sim.Runner.mailbox_hwm,
      run.Mrq_runner.metrics.Sim.Runner.dropped )

let latency ?(faults = Sim.Faults.none) algo ~n ~t ~seeds =
  let decided = ref 0 in
  let rounds_sum = ref 0 and rounds_n = ref 0 in
  let steps_sum = ref 0 and msgs_sum = ref 0 and hwm_sum = ref 0 in
  List.iter
    (fun seed ->
      let pattern = random_pattern ~seed ~n ~t in
      let ok, rounds, steps, msgs, hwm, _dropped =
        measure_one ~faults ~algo ~pattern ~seed ~stab_time:60
          ~max_steps:(if algo = Stack then 9000 else 6000)
          ()
      in
      if ok then incr decided;
      List.iter
        (fun r ->
          rounds_sum := !rounds_sum + r;
          incr rounds_n)
        rounds;
      steps_sum := !steps_sum + steps;
      msgs_sum := !msgs_sum + msgs;
      hwm_sum := !hwm_sum + hwm)
    seeds;
  let runs = List.length seeds in
  {
    algorithm = algo_name algo;
    n;
    t;
    runs;
    decided = !decided;
    avg_rounds =
      (if !rounds_n = 0 then nan
       else float_of_int !rounds_sum /. float_of_int !rounds_n);
    avg_steps = float_of_int !steps_sum /. float_of_int runs;
    avg_msgs = float_of_int !msgs_sum /. float_of_int runs;
    avg_hwm = float_of_int !hwm_sum /. float_of_int runs;
  }

(* The B1 measurement for MR over a pluggable quorum family
   ({!Consensus.Mr.family}): same sweep shape as [latency], omega-only
   oracle (the Family waits never read the detector's quorum
   component). Callers should surface [Quorum_family.validate]
   failures first — a family whose shape does not fit [n] or whose
   quorums a crash pattern can starve yields honest non-decisions
   here, not errors. *)
let latency_family ?(faults = Sim.Faults.none) fam ~n ~t ~seeds =
  let module A = (val Consensus.Mr.family fam) in
  let module R = Sim.Runner.Make (A) in
  let decided = ref 0 in
  let rounds_sum = ref 0 and rounds_n = ref 0 in
  let steps_sum = ref 0 and msgs_sum = ref 0 and hwm_sum = ref 0 in
  List.iter
    (fun seed ->
      let pattern = random_pattern ~seed ~n ~t in
      let correct = Sim.Failure_pattern.correct pattern in
      let proposals p = (p + seed) mod 2 in
      let omega = Fd.Oracle.omega ~seed ~stab_time:60 pattern in
      let run =
        R.exec ~seed ~faults ~record:false ~pattern
          ~fd:omega.Fd.Oracle.query ~inputs:proposals ~max_steps:6000
          ~stop:(fun st _ ->
            Pset.for_all (fun p -> A.decision (st p) <> None) correct)
          ()
      in
      if run.R.stopped_early then incr decided;
      Pset.iter
        (fun p ->
          match A.decision_round run.R.states.(p) with
          | Some r ->
            rounds_sum := !rounds_sum + r;
            incr rounds_n
          | None -> ())
        correct;
      steps_sum := !steps_sum + run.R.step_count;
      msgs_sum := !msgs_sum + run.R.messages_sent;
      hwm_sum := !hwm_sum + run.R.metrics.Sim.Runner.mailbox_hwm)
    seeds;
  let runs = List.length seeds in
  {
    algorithm = Printf.sprintf "MR[%s]" (Quorum_family.name fam);
    n;
    t;
    runs;
    decided = !decided;
    avg_rounds =
      (if !rounds_n = 0 then nan
       else float_of_int !rounds_sum /. float_of_int !rounds_n);
    avg_steps = float_of_int !steps_sum /. float_of_int runs;
    avg_msgs = float_of_int !msgs_sum /. float_of_int runs;
    avg_hwm = float_of_int !hwm_sum /. float_of_int runs;
  }

type stab_row = { stab_time : int; s_runs : int; s_avg_steps : float }

let stabilization_series algo ~n ~t ~stabs ~seeds =
  List.map
    (fun stab_time ->
      let steps_sum = ref 0 in
      List.iter
        (fun seed ->
          let pattern = random_pattern ~seed ~n ~t in
          let _, _, steps, _, _, _ =
            measure_one ~algo ~pattern ~seed ~stab_time
              ~max_steps:(if algo = Stack then 12000 else 8000)
              ()
          in
          steps_sum := !steps_sum + steps)
        seeds;
      {
        stab_time;
        s_runs = List.length seeds;
        s_avg_steps =
          float_of_int !steps_sum /. float_of_int (List.length seeds);
      })
    stabs

(* B7: liveness degradation under message loss. Each run gets a step
   budget (the same one B1 uses); a run that has not fully decided
   when the budget runs out is counted as non-terminating — the
   documented cutoff — and excluded from the latency mean. *)
type fault_row = {
  f_algorithm : string;
  f_drop : float;  (** injected per-message drop probability *)
  f_runs : int;
  f_decided : int;  (** runs fully decided within the step budget *)
  f_budget : int;  (** the non-termination cutoff, in steps *)
  f_avg_steps : float;  (** mean steps to full decision, decided runs only *)
  f_avg_dropped : float;  (** mean messages dropped by the network per run *)
}

let fault_header =
  Printf.sprintf "%-12s %6s %5s %8s %8s %11s %12s" "algorithm" "drop" "runs"
    "decided" "budget" "steps_dec" "net_dropped"

let pp_fault_row fmt r =
  Format.fprintf fmt "%-12s %6.2f %5d %8d %8d %11.1f %12.1f" r.f_algorithm
    r.f_drop r.f_runs r.f_decided r.f_budget r.f_avg_steps r.f_avg_dropped

let fault_latency algo ~n ~t ~drops ~seeds =
  let budget = if algo = Stack then 9000 else 6000 in
  List.map
    (fun drop ->
      let decided = ref 0 and dec_steps = ref 0 and dropped_sum = ref 0 in
      List.iter
        (fun seed ->
          let pattern = random_pattern ~seed ~n ~t in
          let faults =
            if drop = 0.0 then Sim.Faults.none
            else Sim.Faults.make ~drop ~seed ()
          in
          let ok, _, steps, _, _, ndropped =
            measure_one ~faults ~algo ~pattern ~seed ~stab_time:60
              ~max_steps:budget ()
          in
          if ok then begin
            incr decided;
            dec_steps := !dec_steps + steps
          end;
          dropped_sum := !dropped_sum + ndropped)
        seeds;
      let runs = List.length seeds in
      {
        f_algorithm = algo_name algo;
        f_drop = drop;
        f_runs = runs;
        f_decided = !decided;
        f_budget = budget;
        f_avg_steps =
          (if !decided = 0 then nan
           else float_of_int !dec_steps /. float_of_int !decided);
        f_avg_dropped = float_of_int !dropped_sum /. float_of_int runs;
      })
    drops

let fault_table ?(quick = false) () =
  let seeds = List.init (if quick then 10 else 30) Fun.id in
  fault_latency Anuc ~n:4 ~t:1 ~drops:[ 0.0; 0.05; 0.2 ] ~seeds

type dag_row = {
  d_steps : int;
  dag_nodes : int;
  spine_len : int;
  extractions_total : int;
  d_msgs : int;
  d_hwm : int;
  wall_ms : float;
}

let dag_growth ~n ~steps_list =
  let pattern = Sim.Failure_pattern.make ~n ~crashes:[ (n - 1, 40) ] in
  let oracle = Fd.Oracle.sigma_nu ~stab_time:60 pattern in
  List.map
    (fun max_steps ->
      let t0 = Sim.Clock.now () in
      let run =
        Tsp_runner.exec ~pattern ~record:false ~fd:oracle.Fd.Oracle.query
          ~inputs:(fun _ -> ())
          ~max_steps ()
      in
      let wall_ms = 1000.0 *. Sim.Clock.elapsed t0 in
      let st = run.Tsp_runner.states.(0) in
      let g = Core.T_sigma_plus.dag st in
      let spine_len =
        match Dagsim.Dag.samples_of g 0 with
        | [] -> 0
        | first :: _ -> List.length (Dagsim.Dag.weave g ~from:first)
      in
      let extractions_total =
        Array.fold_left
          (fun acc s -> acc + Core.T_sigma_plus.extractions s)
          0 run.Tsp_runner.states
      in
      {
        d_steps = max_steps;
        dag_nodes = Dagsim.Dag.size g;
        spine_len;
        extractions_total;
        d_msgs = run.Tsp_runner.metrics.Sim.Runner.sent;
        d_hwm = run.Tsp_runner.metrics.Sim.Runner.mailbox_hwm;
        wall_ms;
      })
    steps_list

(* ---------------------------------------------------------------- *)
(* B5: the mechanism ablation                                        *)
(* ---------------------------------------------------------------- *)

type ablation_row = {
  variant : string;
  script_outcome : string;
  script_violated : bool;
  sweep_runs : int;
  sweep_violations : int;
  a_avg_rounds : float;
}

let ablation_header =
  Printf.sprintf "%-28s %-44s %6s %6s %7s" "variant" "scripted Sec-6.3 adversary"
    "runs" "viols" "rounds"

let pp_ablation_row fmt r =
  Format.fprintf fmt "%-28s %-44s %6d %6d %7.2f" r.variant r.script_outcome
    r.sweep_runs r.sweep_violations r.a_avg_rounds

(* Randomized adversarial sweep for one A_nuc variant: count NU
   agreement/validity violations and decision rounds. *)
let ablation_sweep (module V : Core.Anuc.S)
    ~seeds =
  let module R = Sim.Runner.Make (V) in
  let n = 4 in
  let violations = ref 0 and runs = ref 0 in
  let rounds_sum = ref 0 and rounds_n = ref 0 in
  List.iter
    (fun seed ->
      let pattern =
        Sim.Failure_pattern.make ~n ~crashes:[ (2, 150); (3, 150) ]
      in
      let oracle =
        Fd.Oracle.pair
          (Fd.Oracle.omega ~seed ~prestab:Fd.Oracle.Omega_faulty_first
             ~stab_time:120 pattern)
          (Fd.Oracle.sigma_nu_plus ~seed ~faulty_mode:Fd.Oracle.Faulty_split
             ~stab_time:120 pattern)
      in
      let correct = Sim.Failure_pattern.correct pattern in
      let proposals p = if p < 2 then 0 else 1 in
      let run =
        R.exec ~seed ~record:false ~pattern ~fd:oracle.Fd.Oracle.query
          ~inputs:proposals ~max_steps:8000
          ~stop:(fun st _ ->
            Pset.for_all (fun p -> V.decision (st p) <> None) correct)
          ()
      in
      incr runs;
      Pset.iter
        (fun p ->
          match V.decision_round run.R.states.(p) with
          | Some r ->
            rounds_sum := !rounds_sum + r;
            incr rounds_n
          | None -> ())
        correct;
      let outcome =
        Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
            V.decision run.R.states.(p))
      in
      let ok =
        Result.bind (Consensus.Spec.check_validity outcome) (fun () ->
            Consensus.Spec.check_agreement Consensus.Spec.Nonuniform outcome)
      in
      if Result.is_error ok then incr violations)
    seeds;
  ( !runs,
    !violations,
    if !rounds_n = 0 then nan
    else float_of_int !rounds_sum /. float_of_int !rounds_n )

let ablation_variant (module V : Core.Anuc.S)
    ~seeds =
  let module C = Core.Scenario.Contaminate (V) in
  let script_outcome, script_violated =
    match C.run () with
    | Ok o ->
      if o.Core.Scenario.agreement_violated then
        ("VIOLATED nonuniform agreement", true)
      else ("script completed, agreement held", false)
    | Error _ -> ("script blocked (mechanism engaged)", false)
  in
  let sweep_runs, sweep_violations, a_avg_rounds =
    ablation_sweep (module V) ~seeds
  in
  {
    variant = V.name;
    script_outcome;
    script_violated;
    sweep_runs;
    sweep_violations;
    a_avg_rounds;
  }

let ablation ?(quick = false) ?(seed_base = 0) () =
  let seeds = List.init (if quick then 6 else 20) (fun i -> seed_base + i) in
  [
    ablation_variant (module Core.Anuc) ~seeds;
    ablation_variant (module Core.Anuc.Without_awareness) ~seeds;
    ablation_variant (module Core.Anuc.Without_distrust) ~seeds;
    ablation_variant (module Core.Anuc.Without_both) ~seeds;
  ]

(* ---------------------------------------------------------------- *)
(* B6: model-checker throughput                                      *)
(* ---------------------------------------------------------------- *)

type mc_row = {
  mc_algorithm : string;
  mc_menu : string;
  mc_depth : int;
  mc_stats : Mc.stats;
  mc_outcome : string;
      (** "exhausted, no violation" or the certified counterexample *)
  mc_pass : bool;  (** the run matched its expected verdict *)
}

let mc_header =
  Printf.sprintf "%-12s %-38s %5s %12s %9s %10s %9s %-24s" "algorithm"
    "menu" "depth" "transitions" "states" "dedup" "states/s" "outcome"

let pp_mc_row fmt r =
  Format.fprintf fmt "%-12s %-38s %5d %12d %9d %10d %9.0f %-24s"
    r.mc_algorithm r.mc_menu r.mc_depth r.mc_stats.Mc.transitions
    r.mc_stats.Mc.distinct_states r.mc_stats.Mc.dedup_hits
    (Mc.states_per_sec r.mc_stats) r.mc_outcome

let mc_table ?(quick = false) () =
  let _, anuc_r = mc_verify_anuc ~depth:(anuc_mc_depth ~quick) () in
  let _, naive_r, certified =
    mc_attack_naive ~depth:(naive_mc_depth ~quick) ()
  in
  let anuc_row =
    {
      mc_algorithm = "A_nuc";
      mc_menu = "Sigma-nu+ contamination family";
      mc_depth = anuc_mc_depth ~quick;
      mc_stats = anuc_r.Mc_anuc.stats;
      mc_outcome =
        (match anuc_r.Mc_anuc.violation with
        | None ->
          if anuc_r.Mc_anuc.stats.Mc.truncated then "TRUNCATED"
          else "exhausted, no violation"
        | Some cx -> "VIOLATION: " ^ cx.Mc_anuc.cx_property);
      mc_pass =
        anuc_r.Mc_anuc.violation = None
        && not anuc_r.Mc_anuc.stats.Mc.truncated;
    }
  in
  let naive_row =
    let outcome, pass =
      match (naive_r.Mc_naive.violation, certified) with
      | Some cx, Some (replay, history) ->
        ( Printf.sprintf "%d-step cx, replay %s, history %s"
            (List.length cx.Mc_naive.cx_steps)
            (if Result.is_ok replay then "ok" else "REJECTED")
            (if Result.is_ok history then "legal" else "ILLEGAL"),
          Result.is_ok replay && Result.is_ok history )
      | _ -> ("no violation (UNEXPECTED)", false)
    in
    {
      mc_algorithm = "naive-Sn";
      mc_menu = "Sigma-nu contamination family";
      mc_depth = naive_mc_depth ~quick;
      mc_stats = naive_r.Mc_naive.stats;
      mc_outcome = outcome;
      mc_pass = pass;
    }
  in
  [ anuc_row; naive_row ]

(* ---------------------------------------------------------------- *)
(* B8: randomized-explorer throughput                                *)
(* ---------------------------------------------------------------- *)

type fuzz_row = {
  fz_algorithm : string;
  fz_mode : string;
  fz_runs : int;
  fz_steps : int;
  fz_runs_per_sec : float;
  fz_states : int;
  fz_last_new_states : int;
  fz_shrink_ratio : float;
  fz_outcome : string;
}

let fuzz_header =
  Printf.sprintf "%-10s %-16s %8s %10s %9s %9s %10s %7s %-28s" "algorithm"
    "mode" "runs" "steps" "runs/s" "states" "last+new" "shrink" "outcome"

let pp_fuzz_row fmt r =
  Format.fprintf fmt "%-10s %-16s %8d %10d %9.0f %9d %10d %7s %-28s"
    r.fz_algorithm r.fz_mode r.fz_runs r.fz_steps r.fz_runs_per_sec
    r.fz_states r.fz_last_new_states
    (if Float.is_nan r.fz_shrink_ratio then "-"
     else Printf.sprintf "%.2f" r.fz_shrink_ratio)
    r.fz_outcome

let fuzz_table ?(quick = false) () =
  let last_new (r : _ list) =
    match List.rev r with
    | [] -> 0
    | bp :: _ -> bp.Explore.bp_new_states
  in
  let naive_runs = if quick then 1_000 else 10_000 in
  let anuc_runs = if quick then 1_000 else 20_000 in
  let _, naive_r = fuzz_attack_naive ~seed:e13_fuzz_seed ~runs:naive_runs ~n:5 ~t:2 () in
  let _, anuc_r = fuzz_survive_anuc ~seed:e13_fuzz_seed ~runs:anuc_runs ~n:5 ~t:2 in
  let naive_row =
    let shrink_ratio, outcome =
      match naive_r.Ex_naive.violation with
      | None -> (Float.nan, "no violation (UNEXPECTED)")
      | Some v ->
        let raw = List.length v.Ex_naive.v_moves in
        let shrunk = List.length v.Ex_naive.v_shrunk in
        ( float_of_int shrunk /. float_of_int raw,
          Printf.sprintf "cx@run %d, %d -> %d moves%s" v.Ex_naive.v_run raw
            shrunk
            (if v.Ex_naive.v_replay_ok && v.Ex_naive.v_history_ok then
               ", certified"
             else ", UNCERTIFIED") )
    in
    {
      fz_algorithm = "naive-Sn";
      fz_mode = "uniform";
      fz_runs = naive_r.Ex_naive.runs;
      fz_steps = naive_r.Ex_naive.steps_total;
      fz_runs_per_sec =
        float_of_int naive_r.Ex_naive.runs
        /. Float.max 1e-9 naive_r.Ex_naive.wall_seconds;
      fz_states = naive_r.Ex_naive.totals.Explore.distinct_states;
      fz_last_new_states = last_new naive_r.Ex_naive.curve;
      fz_shrink_ratio = shrink_ratio;
      fz_outcome = outcome;
    }
  in
  let anuc_row =
    {
      fz_algorithm = "A_nuc";
      fz_mode = "swarm";
      fz_runs = anuc_r.Ex_anuc.runs;
      fz_steps = anuc_r.Ex_anuc.steps_total;
      fz_runs_per_sec =
        float_of_int anuc_r.Ex_anuc.runs
        /. Float.max 1e-9 anuc_r.Ex_anuc.wall_seconds;
      fz_states = anuc_r.Ex_anuc.totals.Explore.distinct_states;
      fz_last_new_states = last_new anuc_r.Ex_anuc.curve;
      fz_shrink_ratio = Float.nan;
      fz_outcome =
        (match anuc_r.Ex_anuc.violation with
        | None -> "no violation"
        | Some v -> "VIOLATION: " ^ v.Ex_anuc.v_property);
    }
  in
  [ naive_row; anuc_row ]

(* ---------------------------------------------------------------- *)
(* B9: parallel exploration scaling                                  *)
(* ---------------------------------------------------------------- *)

type b9_row = {
  b9_workload : string;
  b9_jobs : int;
  b9_wall : float;
  b9_throughput : float;  (** states/s for the mc workload, runs/s for fuzz *)
  b9_speedup : float;  (** throughput relative to the jobs=1 row *)
  b9_equal : bool;
      (** sequential equivalence held: same verdict and distinct-state
          count (mc), byte-identical JSON report (fuzz) *)
}

let b9_header =
  Printf.sprintf "%-30s %4s %9s %12s %8s %6s" "workload" "jobs" "wall(s)"
    "throughput" "speedup" "equal"

let pp_b9_row fmt r =
  Format.fprintf fmt "%-30s %4d %9.3f %12.0f %7.2fx %6b" r.b9_workload
    r.b9_jobs r.b9_wall r.b9_throughput r.b9_speedup r.b9_equal

let b9_jobs = [ 1; 2; 4; 8 ]

(* The mc workload: exhaustive A_nuc verification on E_1(3), the E11
   'verify' half, at the quick depth — enough states (tens of
   thousands) for the sharded table to matter, small enough to run
   four times per bench invocation. *)
let b9_mc_run ~jobs ~depth =
  let n, faulty, pattern, proposals = mc_universe ~depth in
  let menu = Mc.Menu.contamination ~plus:true ~n ~faulty () in
  Mc_anuc.run ~jobs ~n ~menu ~depth ~inputs:proposals
    ~props:
      (Mc_anuc.consensus_props ~decision:Core.Anuc.decision ~proposals
         ~flavour:Consensus.Spec.Nonuniform ~pattern)
    ~stop:
      (Mc_anuc.decided_stop ~decision:Core.Anuc.decision
         ~scope:(Sim.Failure_pattern.correct pattern))
    ()

(* The fuzz workload: property-free sampling of the E_1(3) naive
   universe, so every run executes (no early violation stop) and the
   per-jobs reports are comparable byte for byte. *)
let b9_fuzz_run ~jobs ~runs =
  let n = 3 and t = 1 in
  let max_steps = fuzz_max_steps ~n in
  let faulty, pattern, proposals = fuzz_universe ~n ~t ~max_steps in
  let menu = Mc.Menu.contamination ~n ~faulty () in
  Ex_naive.fuzz ~algo:"naive-sn" ~max_steps ~jobs ~shrink:false
    ~decided:(fun st -> Consensus.Mr.With_quorum.decision st <> None)
    ~seed:e13_fuzz_seed ~runs ~n ~menu ~pattern ~inputs:proposals ~props:[]
    ()

let b9_parallel_table ?(quick = false) () =
  let depth = if quick then 7 else anuc_mc_depth ~quick:true in
  let runs = if quick then 500 else 5_000 in
  let speedup ~base tp = tp /. Float.max 1e-9 base in
  let mc_rows =
    let workload = Printf.sprintf "mc A_nuc E_1(3) depth %d" depth in
    let rows =
      List.map
        (fun jobs ->
          let r = b9_mc_run ~jobs ~depth in
          (jobs, r))
        b9_jobs
    in
    let _, base = List.hd rows in
    let base_tp = Mc.states_per_sec base.Mc_anuc.stats in
    List.map
      (fun (jobs, (r : Mc_anuc.report)) ->
        let tp = Mc.states_per_sec r.Mc_anuc.stats in
        {
          b9_workload = workload;
          b9_jobs = jobs;
          b9_wall = r.Mc_anuc.stats.Mc.wall_seconds;
          b9_throughput = tp;
          b9_speedup = speedup ~base:base_tp tp;
          b9_equal =
            Option.is_none r.Mc_anuc.violation
            = Option.is_none base.Mc_anuc.violation
            && r.Mc_anuc.stats.Mc.distinct_states
               = base.Mc_anuc.stats.Mc.distinct_states
            && (not r.Mc_anuc.stats.Mc.truncated)
            && not base.Mc_anuc.stats.Mc.truncated;
        })
      rows
  in
  let fuzz_rows =
    let workload = Printf.sprintf "fuzz naive-Sn E_1(3) %d runs" runs in
    let rows =
      List.map
        (fun jobs ->
          let r = b9_fuzz_run ~jobs ~runs in
          (jobs, r, Report.to_string (Ex_naive.json_of_report r)))
        b9_jobs
    in
    let _, base, base_json = List.hd rows in
    let base_tp =
      float_of_int base.Ex_naive.runs
      /. Float.max 1e-9 base.Ex_naive.wall_seconds
    in
    List.map
      (fun (jobs, (r : Ex_naive.report), json) ->
        let tp =
          float_of_int r.Ex_naive.runs /. Float.max 1e-9 r.Ex_naive.wall_seconds
        in
        {
          b9_workload = workload;
          b9_jobs = jobs;
          b9_wall = r.Ex_naive.wall_seconds;
          b9_throughput = tp;
          b9_speedup = speedup ~base:base_tp tp;
          b9_equal = String.equal json base_json;
        })
      rows
  in
  mc_rows @ fuzz_rows

(* ---------------------------------------------------------------- *)
(* B10: served replication throughput                                *)
(* ---------------------------------------------------------------- *)

type b10_row = {
  b10_substrate : string;
  b10_clients : int;
  b10_batch : int;
  b10_window : int;
  b10_slots : int;
  b10_ops : int;
  b10_steps : int;
  b10_wall : float;
  b10_ops_per_sec : float;
  b10_p50 : float;
  b10_p99 : float;
  b10_divergent : bool;
}

let b10_header =
  Printf.sprintf "%-12s %7s %5s %6s %5s %6s %9s %8s %9s %8s %8s %5s"
    "substrate" "clients" "batch" "window" "slots" "ops" "steps" "wall(s)"
    "ops/s" "p50(tk)" "p99(tk)" "div"

let pp_b10_row fmt r =
  Format.fprintf fmt "%-12s %7d %5d %6d %5d %6d %9d %8.3f %9.0f %8.0f %8.0f %5b"
    r.b10_substrate r.b10_clients r.b10_batch r.b10_window r.b10_slots
    r.b10_ops r.b10_steps r.b10_wall r.b10_ops_per_sec r.b10_p50 r.b10_p99
    r.b10_divergent

let b10_row ~substrate cfg (o : Load.outcome) =
  {
    b10_substrate = substrate;
    b10_clients = cfg.Load.clients;
    b10_batch = cfg.Load.batch;
    b10_window = cfg.Load.window;
    b10_slots = o.Load.o_slots;
    b10_ops = o.Load.o_ops;
    b10_steps = o.Load.o_steps;
    b10_wall = o.Load.o_wall;
    b10_ops_per_sec = float_of_int o.Load.o_ops /. Float.max 1e-9 o.Load.o_wall;
    b10_p50 = o.Load.o_p50;
    b10_p99 = o.Load.o_p99;
    b10_divergent = o.Load.o_divergent;
  }

(* Enough commands to feed [target_slots] full batches twice over, so
   the closed loop never drains before the run stops. *)
let b10_commands_per_client ~clients ~batch ~target_slots =
  max 2 (((2 * batch * target_slots) + clients - 1) / clients)

let b10_config ~clients ~batch ~target_slots ~max_steps =
  {
    Load.default with
    n = 4;
    clients;
    commands_per_client =
      b10_commands_per_client ~clients ~batch ~target_slots;
    batch;
    pipeline = 2;
    window = 4 * batch;
    retain = 128;
    horizon = 64;
    target_slots;
    max_steps;
    seed = 11;
  }

let b10_serve_table ?(quick = false) ?(jobs = 2) () =
  let grid_clients = if quick then [ 16; 64 ] else [ 16; 64; 256 ] in
  let batches = [ 1; 4 ] in
  let target_slots = if quick then 40 else 120 in
  let max_steps = if quick then 400_000 else 2_000_000 in
  List.concat_map
    (fun clients ->
      List.concat_map
        (fun batch ->
          let cfg = b10_config ~clients ~batch ~target_slots ~max_steps in
          let s = Load.run_sim cfg in
          let e = Load.run_exec ~jobs cfg in
          [
            b10_row ~substrate:"sim" cfg s;
            b10_row ~substrate:(Printf.sprintf "exec(j=%d)" jobs) cfg e;
          ])
        batches)
    grid_clients

(* Shared by bench/main.ml and [nuc_cli serve] so the two emitters of
   the [b10_serve] key cannot drift apart. *)
let json_of_b10_rows rows =
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           [
             ("substrate", Report.Str r.b10_substrate);
             ("clients", Report.Int r.b10_clients);
             ("batch", Report.Int r.b10_batch);
             ("window", Report.Int r.b10_window);
             ("slots", Report.Int r.b10_slots);
             ("ops", Report.Int r.b10_ops);
             ("steps", Report.Int r.b10_steps);
             ("wall_seconds", Report.Float r.b10_wall);
             ("ops_per_sec", Report.Float r.b10_ops_per_sec);
             ("p50_ticks", Report.Float r.b10_p50);
             ("p99_ticks", Report.Float r.b10_p99);
             ("divergent", Report.Bool r.b10_divergent);
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* B11: partial-order reduction (mc --reduction)                     *)
(* ---------------------------------------------------------------- *)

type b11_row = {
  b11_algorithm : string;
  b11_reduction : string;
  b11_depth : int;
  b11_transitions : int;
  b11_states : int;
  b11_dedup : int;
  b11_self_loops : int;
  b11_sleep_skipped : int;
  b11_races : int;
  b11_backtracks : int;
  b11_wall : float;
  b11_outcome : string;
  b11_pass : bool;
}

let b11_header =
  Printf.sprintf "%-10s %-6s %5s %11s %9s %9s %10s %9s %7s %7s %8s %-10s %5s"
    "algorithm" "red" "depth" "transitions" "states" "dedup" "self-loop"
    "slept" "races" "backtr" "wall(s)" "outcome" "pass"

let pp_b11_row fmt r =
  Format.fprintf fmt
    "%-10s %-6s %5d %11d %9d %9d %10d %9d %7d %7d %8.3f %-10s %5b"
    r.b11_algorithm r.b11_reduction r.b11_depth r.b11_transitions r.b11_states
    r.b11_dedup r.b11_self_loops r.b11_sleep_skipped r.b11_races
    r.b11_backtracks r.b11_wall r.b11_outcome r.b11_pass

let b11_row_of_stats ~algorithm ~reduction ~depth ~outcome ~pass
    (s : Mc.stats) =
  {
    b11_algorithm = algorithm;
    b11_reduction = Format.asprintf "%a" Mc.pp_reduction reduction;
    b11_depth = depth;
    b11_transitions = s.Mc.transitions;
    b11_states = s.Mc.distinct_states;
    b11_dedup = s.Mc.dedup_hits;
    b11_self_loops = s.Mc.self_loops;
    b11_sleep_skipped = s.Mc.sleep_skipped;
    b11_races = s.Mc.races;
    b11_backtracks = s.Mc.backtracks;
    b11_wall = s.Mc.wall_seconds;
    b11_outcome = outcome;
    b11_pass = pass;
  }

let b11_depth ~quick = if quick then 7 else 11

(* Three runs of the E11 A_nuc verification at one depth, one per
   reduction. The pass column re-checks the state-preservation
   contract against the unreduced row: identical verdict (exhausted,
   no violation) and identical distinct-state count. *)
let b11_dpor_table ?(quick = false) () =
  let depth = b11_depth ~quick in
  let explore reduction = snd (mc_verify_anuc ~reduction ~depth ()) in
  let none_r = explore Mc.No_reduction in
  let baseline = none_r.Mc_anuc.stats.Mc.distinct_states in
  let row reduction r =
    let s = r.Mc_anuc.stats in
    let outcome =
      if s.Mc.truncated then "TRUNCATED"
      else
        match r.Mc_anuc.violation with
        | Some cx -> "VIOLATION: " ^ cx.Mc_anuc.cx_property
        | None -> "exhausted"
    in
    let pass =
      (not s.Mc.truncated)
      && r.Mc_anuc.violation = None
      && s.Mc.distinct_states = baseline
    in
    b11_row_of_stats ~algorithm:"A_nuc" ~reduction ~depth ~outcome ~pass s
  in
  [
    row Mc.No_reduction none_r;
    row Mc.Sleep_sets (explore Mc.Sleep_sets);
    row Mc.Dpor (explore Mc.Dpor);
  ]

(* ---------------------------------------------------------------- *)
(* B12: packed canonical-state codec (per-state retained memory)     *)
(* ---------------------------------------------------------------- *)

type b12_row = {
  b12_depth : int;
  b12_states : int;
  b12_heap_bytes : float;
  b12_packed_bytes : float;
  b12_ratio : float;
  b12_pass : bool;
}

let b12_header =
  Printf.sprintf "%5s %9s %12s %14s %7s %5s" "depth" "states" "heap(B/st)"
    "packed(B/st)" "ratio" "pass"

let pp_b12_row fmt r =
  Format.fprintf fmt "%5d %9d %12.1f %14.1f %6.1fx %5b" r.b12_depth
    r.b12_states r.b12_heap_bytes r.b12_packed_bytes r.b12_ratio r.b12_pass

module B12_cfg_key = struct
  type t = Mc_anuc.Space.config

  let equal = Mc_anuc.Space.equal
end

module B12_cfg_tbl = Mc.Intern.Table (B12_cfg_key)

module B12_bytes_key = struct
  type t = Bytes.t

  let equal = Bytes.equal
end

module B12_bytes_tbl = Mc.Intern.Table (B12_bytes_key)

(* DFS over the E_1(3) universe, deduplicating through the pipeline
   under measurement ([visit] returns whether the config was new) —
   the same role the memo table plays inside the checker. *)
let b12_walk ~depth ~visit =
  let n, faulty, _pattern, proposals = mc_universe ~depth in
  let menu = Mc.Menu.contamination ~plus:true ~n ~faulty () in
  let menus = Array.init n (fun p -> menu.Mc.Menu.values p) in
  let count = ref 0 in
  let rec go cfg d =
    if visit cfg then begin
      incr count;
      if d < depth then
        List.iter
          (fun mv -> go (Mc_anuc.Space.apply ~n cfg mv) (d + 1))
          (Mc_anuc.Space.enabled ~n ~delivery:`Fifo ~lossy:false ~menus cfg)
    end
  in
  go (Mc_anuc.Space.initial ~n ~inputs:proposals) 0;
  !count

let b12_live_words () =
  Gc.compact ();
  (Gc.stat ()).Gc.live_words

(* [run ()] builds one pipeline and returns only what that pipeline
   retains per state — the dedup table driving the walk is NOT
   returned, so the closing [Gc.compact] collects it along with the
   walk's intermediate configs, and the live-word delta isolates the
   state representation the codec changes (the hashed-key wrapper,
   hashtable bindings and coverage entries are identical in both memo
   layouts and would only dilute the comparison). *)
let b12_measure run =
  let before = b12_live_words () in
  let retained, states = run () in
  let after = b12_live_words () in
  ignore (Sys.opaque_identity retained);
  (states, after - before)

(* Pipeline A — the pre-codec memo's state representation: every
   distinct config retained as its heap graph (configs produced by
   [apply] share unchanged per-process states and channels, exactly
   as the exploration's memo retained them). *)
let b12_heap_pipeline ~depth () =
  let tbl = B12_cfg_tbl.create 1024 in
  let acc = ref [] in
  let visit cfg =
    let k = Mc.Intern.hashed Mc_anuc.Space.key cfg in
    if B12_cfg_tbl.mem tbl k then false
    else begin
      B12_cfg_tbl.add tbl k ();
      acc := cfg :: !acc;
      true
    end
  in
  let states = b12_walk ~depth ~visit in
  (Obj.repr (Array.of_list !acc), states)

(* Pipeline B — the codec's state representation: one packed byte
   string per distinct config plus the two interning pools; the
   configs themselves become garbage after encoding. *)
let b12_packed_pipeline ~depth () =
  let pool = Mc_anuc.Packed.create ~n:3 in
  let tbl = B12_bytes_tbl.create 1024 in
  let acc = ref [] in
  let visit cfg =
    let b = Mc_anuc.Packed.encode pool cfg in
    let k = Mc.Intern.hashed Mc.Codec.bytes_hash b in
    if B12_bytes_tbl.mem tbl k then false
    else begin
      B12_bytes_tbl.add tbl k ();
      acc := b :: !acc;
      true
    end
  in
  let states = b12_walk ~depth ~visit in
  (Obj.repr (pool, Array.of_list !acc), states)

let b12_codec_table ?(quick = false) () =
  let word = Sys.word_size / 8 in
  List.map
    (fun depth ->
      let states_a, words_a = b12_measure (b12_heap_pipeline ~depth) in
      let states_b, words_b = b12_measure (b12_packed_pipeline ~depth) in
      let per n w = float_of_int (max 0 w * word) /. float_of_int (max 1 n) in
      let heap = per states_a words_a and packed = per states_b words_b in
      let ratio = heap /. Float.max 1e-9 packed in
      {
        b12_depth = depth;
        b12_states = states_a;
        b12_heap_bytes = heap;
        b12_packed_bytes = packed;
        b12_ratio = ratio;
        b12_pass = states_a = states_b && ratio >= 5.0;
      })
    (* below ~5k states the pools' fixed cost (two hashtables and
       their dense arrays) dominates the per-state bytes, so the
       smallest depth with a meaningful amortized figure is 7 *)
    (if quick then [ 7 ] else [ 7; 9 ])

let json_of_b12_rows rows =
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           [
             ("depth", Report.Int r.b12_depth);
             ("distinct_states", Report.Int r.b12_states);
             ("heap_bytes_per_state", Report.Float r.b12_heap_bytes);
             ("packed_bytes_per_state", Report.Float r.b12_packed_bytes);
             ("ratio", Report.Float r.b12_ratio);
             ("pass", Report.Bool r.b12_pass);
           ])
       rows)

(* Shared by bench/main.ml and [nuc_cli mc --json] so the two
   emitters of the [b11_dpor] key cannot drift apart. *)
let json_of_b11_rows rows =
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           [
             ("algorithm", Report.Str r.b11_algorithm);
             ("reduction", Report.Str r.b11_reduction);
             ("depth", Report.Int r.b11_depth);
             ("transitions", Report.Int r.b11_transitions);
             ("distinct_states", Report.Int r.b11_states);
             ("dedup_hits", Report.Int r.b11_dedup);
             ("self_loops", Report.Int r.b11_self_loops);
             ("sleep_skipped", Report.Int r.b11_sleep_skipped);
             ("races", Report.Int r.b11_races);
             ("backtracks", Report.Int r.b11_backtracks);
             ("wall_seconds", Report.Float r.b11_wall);
             ("outcome", Report.Str r.b11_outcome);
             ("pass", Report.Bool r.b11_pass);
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* B13: quorum-family latency / resilience trade-off                 *)
(* ---------------------------------------------------------------- *)

type b13_row = {
  b13_family : string;
  b13_n : int;
  b13_t : int;
  b13_minq : int;
  b13_resilience : int;
  b13_runs : int;
  b13_live : int;
  b13_decided : int;
  b13_avg_rounds : float;
  b13_avg_steps : float;
  b13_pass : bool;
}

let b13_header =
  Printf.sprintf "%-20s %3s %3s %5s %6s %5s %5s %8s %8s %10s %5s" "family"
    "n" "t" "minq" "resil" "runs" "live" "decided" "rounds" "steps" "pass"

let pp_b13_row fmt r =
  Format.fprintf fmt "%-20s %3d %3d %5d %6d %5d %5d %8d %8.2f %10.1f %5b"
    r.b13_family r.b13_n r.b13_t r.b13_minq r.b13_resilience r.b13_runs
    r.b13_live r.b13_decided r.b13_avg_rounds r.b13_avg_steps r.b13_pass

(* MR over the family: the waits are satisfied by any family quorum of
   distinct senders, so the detector only supplies Omega. Crashes land
   at time 0 (a random [t]-subset per seed, never the whole universe),
   so no transient quorum can assemble before a crash: the run decides
   iff the surviving set is itself a family quorum — exactly the
   structural question [validate] answers. The pass column pins that
   equivalence operationally: decided = live, run by run, with the
   blocked runs really executed against their step budget (not
   skipped). *)
let b13_pattern ~seed ~n ~t =
  let rng = Random.State.make [| 0xb13; seed; n; t |] in
  let rec pick chosen k =
    if k = 0 then chosen
    else
      let p = Random.State.int rng n in
      if Pset.mem p chosen then pick chosen k
      else pick (Pset.add p chosen) (k - 1)
  in
  let faulty = pick Pset.empty (min t (n - 1)) in
  Sim.Failure_pattern.make ~n
    ~crashes:(List.map (fun p -> (p, 0)) (Pset.elements faulty))

let b13_measure fam ~n ~t ~seeds =
  let module A = (val Consensus.Mr.family fam) in
  let module R = Sim.Runner.Make (A) in
  let live = ref 0 and decided = ref 0 and all_conform = ref true in
  let rounds_sum = ref 0 and rounds_n = ref 0 in
  let steps_sum = ref 0 and steps_n = ref 0 in
  List.iter
    (fun seed ->
      let pattern = b13_pattern ~seed ~n ~t in
      let correct = Sim.Failure_pattern.correct pattern in
      let is_live =
        Result.is_ok (Quorum_family.validate fam ~n ~live:correct)
      in
      if is_live then incr live;
      let proposals p = (p + seed) mod 2 in
      let omega = Fd.Oracle.omega ~seed ~stab_time:60 pattern in
      let run =
        R.exec ~seed ~record:false ~pattern ~fd:omega.Fd.Oracle.query
          ~inputs:proposals ~max_steps:4000
          ~stop:(fun st _ ->
            Pset.for_all (fun p -> A.decision (st p) <> None) correct)
          ()
      in
      let ok = run.R.stopped_early in
      if ok then begin
        incr decided;
        Pset.iter
          (fun p ->
            match A.decision_round run.R.states.(p) with
            | Some r ->
              rounds_sum := !rounds_sum + r;
              incr rounds_n
            | None -> ())
          correct;
        steps_sum := !steps_sum + run.R.step_count;
        incr steps_n
      end;
      if ok <> is_live then all_conform := false)
    seeds;
  let runs = List.length seeds in
  {
    b13_family = Quorum_family.name fam;
    b13_n = n;
    b13_t = t;
    b13_minq =
      Option.value ~default:(-1) (Quorum_family.min_quorum_size fam ~n);
    b13_resilience = Quorum_family.resilience fam ~n;
    b13_runs = runs;
    b13_live = !live;
    b13_decided = !decided;
    b13_avg_rounds =
      (if !rounds_n = 0 then nan
       else float_of_int !rounds_sum /. float_of_int !rounds_n);
    b13_avg_steps =
      (if !steps_n = 0 then nan
       else float_of_int !steps_sum /. float_of_int !steps_n);
    b13_pass = !all_conform;
  }

(* The trade-off sweep: same MR skeleton, five quorum structures.
   majority(5) tolerates t = 2 and decides everywhere; super:1(5) buys
   fast-quorum intersection margin at resilience 1; the weighted votes
   concentrate power on p0 (quorums of two, but a dead p0 plus one
   more blocks the structure — decided tracks live, not runs); the
   2x2 grid at t = 1 always survives, and at t = 2 no pair of
   survivors holds a full row and column, so nothing ever decides. *)
let b13_configs =
  [
    (Quorum_family.majority, 5, 2);
    (Quorum_family.supermajority ~f:1, 5, 1);
    (Quorum_family.weighted ~weights:[ 3; 1; 1; 1; 1 ], 5, 2);
    (Quorum_family.grid ~rows:2 ~cols:2 (), 4, 1);
    (Quorum_family.grid ~rows:2 ~cols:2 (), 4, 2);
  ]

let b13_quorum_table ?(quick = false) ?(seed_base = 0) () =
  let seeds =
    List.map (( + ) seed_base)
      (List.init (if quick then 6 else 20) (fun i -> i))
  in
  List.map (fun (fam, n, t) -> b13_measure fam ~n ~t ~seeds) b13_configs

let json_of_b13_rows rows =
  let float_or_null f =
    if Float.is_nan f then Report.Null else Report.Float f
  in
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           [
             ("family", Report.Str r.b13_family);
             ("n", Report.Int r.b13_n);
             ("t", Report.Int r.b13_t);
             ("min_quorum", Report.Int r.b13_minq);
             ("resilience", Report.Int r.b13_resilience);
             ("runs", Report.Int r.b13_runs);
             ("live", Report.Int r.b13_live);
             ("decided", Report.Int r.b13_decided);
             ("avg_rounds", float_or_null r.b13_avg_rounds);
             ("avg_steps", float_or_null r.b13_avg_steps);
             ("pass", Report.Bool r.b13_pass);
           ])
       rows)

(* ---------------------------------------------------------------- *)
(* B14: ring transport + snapshot reads                              *)
(* ---------------------------------------------------------------- *)

type b14_row = {
  b14_transport : string;
  b14_read_mode : string;
  b14_jobs : int;
  b14_slots : int;
  b14_ops : int;
  b14_ops_per_sec : float;
  b14_reads : int;
  b14_reads_per_sec : float;
  b14_read_p50_us : float;
  b14_read_p99_us : float;
  b14_stale_max : int;
  b14_stale_bound : int;
  b14_snapshots : int;
  b14_lock_ops : int;
  b14_cas_retries : int;
  b14_sync_ops : int;
  b14_divergent : bool;
  b14_stale_ok : bool;
}

let b14_header =
  Printf.sprintf "%-6s %-8s %4s %5s %6s %9s %6s %10s %8s %8s %5s %5s %9s %7s %8s %5s"
    "transp" "reads" "jobs" "slots" "ops" "ops/s" "reads" "reads/s"
    "rp50(us)" "rp99(us)" "stale" "bound" "lock_ops" "cas_rt" "sync_ops" "ok"

let pp_b14_row fmt r =
  Format.fprintf fmt
    "%-6s %-8s %4d %5d %6d %9.0f %6d %10.0f %8.3f %8.3f %5d %5d %9d %7d %8d %5b"
    r.b14_transport r.b14_read_mode r.b14_jobs r.b14_slots r.b14_ops
    r.b14_ops_per_sec r.b14_reads r.b14_reads_per_sec r.b14_read_p50_us
    r.b14_read_p99_us r.b14_stale_max r.b14_stale_bound r.b14_lock_ops
    r.b14_cas_retries r.b14_sync_ops (r.b14_stale_ok && not r.b14_divergent)

let b14_row ~jobs cfg (o : Load.outcome) =
  {
    b14_transport = Sim.Executor.transport_name cfg.Load.transport;
    b14_read_mode = Load.read_mode_name cfg.Load.read_mode;
    b14_jobs = jobs;
    b14_slots = o.Load.o_slots;
    b14_ops = o.Load.o_ops;
    b14_ops_per_sec = float_of_int o.Load.o_ops /. Float.max 1e-9 o.Load.o_wall;
    b14_reads = o.Load.o_reads;
    b14_reads_per_sec = o.Load.o_reads_per_sec;
    b14_read_p50_us = o.Load.o_read_p50_us;
    b14_read_p99_us = o.Load.o_read_p99_us;
    b14_stale_max = o.Load.o_stale_max;
    b14_stale_bound = o.Load.o_stale_bound;
    b14_snapshots = o.Load.o_snapshots;
    b14_lock_ops = o.Load.o_lock_ops;
    b14_cas_retries = o.Load.o_cas_retries;
    b14_sync_ops = o.Load.o_sync_ops;
    b14_divergent = o.Load.o_divergent;
    b14_stale_ok = o.Load.o_stale_max <= o.Load.o_stale_bound;
  }

let b14_config ~transport ~read_mode ~reads ~target_slots ~max_steps =
  let base =
    b10_config ~clients:64 ~batch:1 ~target_slots ~max_steps
  in
  { base with Load.transport; read_mode; reads; publish_every = 8 }

let b14_ring_table ?(quick = false) () =
  let jobs_grid = if quick then [ 1 ] else [ 1; 2 ] in
  let target_slots = if quick then 40 else 120 in
  let max_steps = if quick then 400_000 else 2_000_000 in
  let reads = if quick then 2_000 else 20_000 in
  List.concat_map
    (fun jobs ->
      List.concat_map
        (fun transport ->
          List.map
            (fun read_mode ->
              let cfg =
                b14_config ~transport ~read_mode ~reads ~target_slots
                  ~max_steps
              in
              b14_row ~jobs cfg (Load.run_exec ~jobs cfg))
            [ Load.Read_log; Load.Read_snapshot ])
        [ Sim.Executor.Mutex; Sim.Executor.Ring ])
    jobs_grid

(* Shared by bench/main.ml and [nuc_cli serve] so the two emitters of
   the [b14_ring] key cannot drift apart. *)
let json_of_b14_rows rows =
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           [
             ("transport", Report.Str r.b14_transport);
             ("read_mode", Report.Str r.b14_read_mode);
             ("jobs", Report.Int r.b14_jobs);
             ("slots", Report.Int r.b14_slots);
             ("ops", Report.Int r.b14_ops);
             ("ops_per_sec", Report.Float r.b14_ops_per_sec);
             ("reads", Report.Int r.b14_reads);
             ("reads_per_sec", Report.Float r.b14_reads_per_sec);
             ("read_p50_us", Report.Float r.b14_read_p50_us);
             ("read_p99_us", Report.Float r.b14_read_p99_us);
             ("stale_max", Report.Int r.b14_stale_max);
             ("stale_bound", Report.Int r.b14_stale_bound);
             ("snapshots", Report.Int r.b14_snapshots);
             ("lock_ops", Report.Int r.b14_lock_ops);
             ("cas_retries", Report.Int r.b14_cas_retries);
             ("sync_ops", Report.Int r.b14_sync_ops);
             ("divergent", Report.Bool r.b14_divergent);
             ("stale_ok", Report.Bool r.b14_stale_ok);
           ])
       rows)
