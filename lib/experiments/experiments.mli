(** The experiment suite: one entry point per row of the DESIGN.md
    per-experiment index (E1–E9), plus the measurement sweeps behind
    the B1–B3 tables. The bench harness ([bench/main.exe]) and the CLI
    ([bin/nuc_cli.exe]) both drive these.

    The paper is a theory paper — its "evaluation" is a set of
    theorems. Each E-row validates one theorem empirically: randomized
    admissible runs for the algorithmic results, deterministic scripted
    constructions for the proof scenarios. [quick] runs a reduced sweep
    (for the bench executable); the full sweeps run in the test
    suite. *)

type row = {
  id : string;  (** experiment id, e.g. "E4" *)
  theorem : string;  (** the paper result it validates *)
  expected : string;  (** what the paper predicts *)
  measured : string;  (** what this run measured *)
  pass : bool;
}

val pp_row : Format.formatter -> row -> unit

val e1_extract_sigma_nu : ?quick:bool -> ?seed_base:int -> unit -> row
(** Thm 5.4: [T_{D->Sigma-nu}] emulates Sigma-nu from a detector that
    solves nonuniform consensus (witness: [A_nuc] with
    [(Omega, Sigma-nu+)]). *)

val e2_extract_sigma : ?quick:bool -> ?seed_base:int -> unit -> row
(** Thm 5.8: the same algorithm emulates full Sigma when the witness
    solves uniform consensus (MR with Sigma quorums). *)

val e3_boost : ?quick:bool -> ?seed_base:int -> unit -> row
(** Thm 6.7: [T_{Sigma-nu -> Sigma-nu+}] emulates Sigma-nu+. *)

val e4_anuc : ?quick:bool -> ?seed_base:int -> unit -> row
(** Thm 6.27: [A_nuc] solves nonuniform consensus with
    [(Omega, Sigma-nu+)] in every [E_t]. *)

val e5_stack : ?quick:bool -> ?seed_base:int -> unit -> row
(** Thm 6.28: the composed stack solves nonuniform consensus from raw
    [(Omega, Sigma-nu)]. *)

val e6_contamination : ?quick:bool -> ?seed_base:int -> unit -> row
(** Section 6.3: the naive substitution violates nonuniform agreement
    under a legal Sigma-nu history; [A_nuc] survives the same
    adversary family. *)

val e7_sigma_scratch : ?quick:bool -> ?seed_base:int -> unit -> row
(** Thm 7.1 (IF): Sigma is implementable from scratch when [t < n/2]. *)

val e8_attack : ?quick:bool -> unit -> row
(** Thm 7.1 (ONLY IF): the two-run construction defeats any live
    emulator when [t >= n/2]; the harvested quorums are disjoint. *)

val e9_merge : ?quick:bool -> ?step_budget:int -> unit -> row
(** Lemma 2.2 / Lemma 5.3: two deciding runs with disjoint
    participants merge into one run in which correct processes
    disagree — the heart of the necessity proof. [step_budget]
    (default 400) bounds each partitioned side; a side that does not
    decide within it yields a failed row ("no merge attempted"), never
    an exception. *)

val e10_not_uniform : ?quick:bool -> unit -> row
(** [A_nuc] solves strictly nonuniform consensus: under a legal
    partitioned Sigma-nu+ history (the faulty side's quorums stay on
    the faulty side, which conditional nonintersection permits), the
    faulty processes decide their own value before crashing — uniform
    agreement is violated while nonuniform agreement holds. This
    certifies the implementation does not secretly solve the stronger
    problem its detector cannot pay for. *)

val e11_model_check : ?quick:bool -> unit -> row
(** Section 6.3 via exhaustive bounded model checking ([lib/mc]): the
    checker verifies every admissible schedule of [A_nuc] on [E_1(3)]
    under the Sigma-nu+ contamination family up to its depth bound
    with zero violations, and {e discovers} the naive Sigma-nu
    baseline's nonuniform-agreement counterexample — certified by
    [Runner.replay] applicability and perpetual-clause legality of the
    sampled detector history — without any hand-written script. *)

val e12_faults : ?quick:bool -> ?seed_base:int -> unit -> row
(** [Sim.Faults] end to end: (a) randomized [A_nuc] runs under the
    full fault menu — message drops, duplication, reordering, and a
    partition that heals before detector stabilization — must keep
    validity and NU agreement (liveness may legitimately degrade —
    nothing retransmits a dropped message; B7 quantifies that), and
    their recorded traces must pass {!Sim.Runner.Make.conformance}
    (replay under the run's own fault spec); (b) the Section 6.3
    dichotomy survives the lossy network model: bounded exploration
    over {!Mc.Menu.lossy} clears [A_nuc] exhaustively while still
    convicting the naive Sigma-nu baseline with a certified
    counterexample (under a loss-budget bound that keeps the deep
    exploration tractable; see [Mc.Make.run]'s [max_drops]). *)

val e13_fuzz : ?quick:bool -> ?seed_base:int -> unit -> row
(** Section 6.3 beyond the model checker's horizon ([lib/explore]):
    randomized schedule exploration on [E_2(5)] — a universe whose
    state space E11's exhaustive search cannot close — finds the
    naive-Sigma-nu nonuniform-agreement violation, shrinks it to at
    most 40 moves, and certifies the shrunk schedule with the same
    replay-applicability + history-legality certificate [lib/mc]
    issues; [A_nuc] survives the identical sampling budget in swarm
    mode (menus, loss budgets, stabilization points and samplers
    rotating per batch). [quick] cuts both budgets to about a
    thousand runs — still enough for the pinned seed to land the
    violation. *)

val e14_dpor : ?quick:bool -> unit -> row
(** Section 6.3 exhaustion under happens-before DPOR
    ([Mc.Make.run ~reduction:Dpor]): (a) the E11 [A_nuc]
    verification pushed deeper (depth 13; [quick] 11) than the
    unreduced checker affords at comparable cost; (b) a differential
    pin at a depth both reductions reach — the reduction is
    state-preserving, so verdict and distinct-state count must match
    the unreduced run exactly, with no more transitions taken; (c)
    the naive Sigma-nu counterexample still found, replayed and
    history-certified with the reduction on. *)

val e16_quorum : ?quick:bool -> ?seed_base:int -> unit -> row
(** Section 6.3 across quorum families ({!Procset.Quorum_family}): for
    each shipped family (majority and weighted on [E_1(3)];
    supermajority [f = 1] and the 2x2 grid on [E_1(4)]), (a) the
    naive Sigma-nu substitution falls to a certified
    nonuniform-agreement violation under the family-shaped
    contamination menu ({!Mc.Menu.contamination} with [?quorum]),
    found by randomized exploration with shrinking, replay and
    history-legality certificates; and (b) [A_nuc] exhausts the same
    menu clean under bounded model checking. One structural finding
    rides along: supermajority at [n = 3, t = 1] has {e no} legal
    contamination channel — every Sigma-nu-legal quorum of its shape
    contains the faulty process — which is why its row runs at
    [n = 4] (see EXPERIMENTS.md, E16). *)

val all : ?quick:bool -> ?seed_base:int -> unit -> row list
(** Every E-row, in order. [seed_base] offsets the seed lists of the
    randomized rows (default 0 reproduces the historical sweeps). *)

(** {1 Measurement sweeps (B-tables)} *)

type latency_row = {
  algorithm : string;
  n : int;
  t : int;
  runs : int;
  decided : int;  (** runs where all correct processes decided *)
  avg_rounds : float;  (** mean decision round over correct deciders *)
  avg_steps : float;  (** mean simulation steps until full decision *)
  avg_msgs : float;  (** mean messages sent until full decision *)
  avg_hwm : float;
      (** mean per-run mailbox depth high-water mark
          ({!Sim.Runner.metrics}) *)
}

val pp_latency_row : Format.formatter -> latency_row -> unit

val latency_header : string

(** Which algorithm a latency sweep measures. *)
type algo = Anuc | Mr_majority | Mr_sigma | Stack | Ct

val latency :
  ?faults:Sim.Faults.t -> algo -> n:int -> t:int -> seeds:int list ->
  latency_row
(** B1: decision latency of one algorithm in [E_t] over random
    patterns. [Mr_majority] and [Ct] require [t < n/2]. [faults]
    (default {!Sim.Faults.none}) runs every sweep under a network
    fault spec. *)

val latency_family :
  ?faults:Sim.Faults.t ->
  Procset.Quorum_family.t -> n:int -> t:int -> seeds:int list -> latency_row
(** The B1 measurement for {!Consensus.Mr.family} over a pluggable
    quorum family (the [run --quorum] path). Omega-only oracle: the
    Family-mode waits count distinct senders against the family, never
    the detector's quorum component. Surface
    {!Procset.Quorum_family.validate} failures before calling — an
    ill-fitting family yields honest non-decisions, not errors. *)

type stab_row = {
  stab_time : int;
  s_runs : int;
  s_avg_steps : float;  (** steps to full decision *)
}

val stabilization_series :
  algo -> n:int -> t:int -> stabs:int list -> seeds:int list -> stab_row list
(** B2: decision latency as a function of the detectors' stabilization
    time. *)

type fault_row = {
  f_algorithm : string;
  f_drop : float;  (** injected per-message drop probability *)
  f_runs : int;
  f_decided : int;  (** runs fully decided within the step budget *)
  f_budget : int;  (** the non-termination cutoff, in steps *)
  f_avg_steps : float;
      (** mean steps to full decision over decided runs only ([nan]
          when none decided) *)
  f_avg_dropped : float;  (** mean messages dropped by the network per run *)
}

val pp_fault_row : Format.formatter -> fault_row -> unit

val fault_header : string

val fault_latency :
  algo -> n:int -> t:int -> drops:float list -> seeds:int list -> fault_row list
(** B7: liveness degradation under message loss — one row per drop
    probability, same random patterns and oracles as B1. The step
    budget (B1's [max_steps]) is the documented non-termination
    cutoff: a run that has not fully decided within it counts as
    non-terminating ([f_decided] excludes it) and is excluded from
    [f_avg_steps]; no exception escapes. *)

val fault_table : ?quick:bool -> unit -> fault_row list
(** The canonical B7 sweep: [A_nuc] on [E_1(4)] at drop rates
    {0, 0.05, 0.2}. *)

type dag_row = {
  d_steps : int;  (** run length *)
  dag_nodes : int;  (** final DAG size at p0 (after pruning) *)
  spine_len : int;  (** spine length at p0's barrier *)
  extractions_total : int;
  d_msgs : int;  (** messages sent over the run *)
  d_hwm : int;  (** mailbox depth high-water mark over the run *)
  wall_ms : float;  (** wall-clock for the whole run *)
}

val dag_growth : n:int -> steps_list:int list -> dag_row list
(** B3: transformation cost — DAG size, spine length, extraction count
    and wall time of [T_{Sigma-nu -> Sigma-nu+}] runs of increasing
    length. *)

type ablation_row = {
  variant : string;  (** which [A_nuc] mechanisms are enabled *)
  script_outcome : string;
      (** what the scripted Section 6.3 adversary achieved *)
  script_violated : bool;  (** the script produced a NU-agreement violation *)
  sweep_runs : int;  (** randomized adversarial runs executed *)
  sweep_violations : int;  (** NU-agreement/validity violations among them *)
  a_avg_rounds : float;
      (** mean decision round of correct deciders — the latency cost of
          the enabled mechanisms *)
}

val pp_ablation_row : Format.formatter -> ablation_row -> unit

val ablation_header : string

val ablation : ?quick:bool -> ?seed_base:int -> unit -> ablation_row list
(** B5 / mechanism-necessity study: the full [A_nuc] and its three
    ablated variants, each (a) attacked by the scripted Section 6.3
    adversary, and (b) swept over randomized adversarial oracles. The
    paper's claim: both mechanisms are needed for safety in general,
    and they cost extra rounds. Expected shape: the full algorithm and
    single-mechanism variants resist the script (each mechanism blocks
    a different step of it); the doubly-ablated variant falls to it. *)

type mc_row = {
  mc_algorithm : string;
  mc_menu : string;  (** detector-menu family driving the exploration *)
  mc_depth : int;  (** exploration depth bound *)
  mc_stats : Mc.stats;
  mc_outcome : string;
      (** "exhausted, no violation" or the certified counterexample *)
  mc_pass : bool;  (** the run matched its expected verdict *)
}

val pp_mc_row : Format.formatter -> mc_row -> unit

val mc_header : string

val mc_table : ?quick:bool -> unit -> mc_row list
(** B6: model-checker throughput — the two E11 explorations
    (exhaustive [A_nuc] verification; naive-Sigma-nu counterexample
    discovery) with explored/deduplicated state counts and
    states-per-second. *)

type fuzz_row = {
  fz_algorithm : string;
  fz_mode : string;  (** sampler discipline: "uniform" or "swarm" *)
  fz_runs : int;
  fz_steps : int;  (** total simulation steps executed *)
  fz_runs_per_sec : float;
  fz_states : int;  (** distinct canonical states covered *)
  fz_last_new_states : int;
      (** new states in the final batch — the saturation signal *)
  fz_shrink_ratio : float;  (** shrunk/raw move count; [nan] if no cx *)
  fz_outcome : string;
}

val pp_fuzz_row : Format.formatter -> fuzz_row -> unit

val fuzz_header : string

val fuzz_table : ?quick:bool -> unit -> fuzz_row list
(** B8: randomized-explorer throughput — the two E13 campaigns on
    [E_2(5)] (naive-Sigma-nu violation hunt; [A_nuc] swarm survival)
    with sampling rate, coverage saturation and shrink ratio. *)

type b9_row = {
  b9_workload : string;
  b9_jobs : int;
  b9_wall : float;  (** one coordinating-domain wall-clock read *)
  b9_throughput : float;  (** states/s for the mc workload, runs/s for fuzz *)
  b9_speedup : float;  (** throughput relative to the jobs=1 row *)
  b9_equal : bool;
      (** the sequential-equivalence contract held on this run: same
          verdict and distinct-state count as jobs=1 (mc), or
          byte-identical JSON report (fuzz) *)
}

val pp_b9_row : Format.formatter -> b9_row -> unit

val b9_header : string

val b9_parallel_table : ?quick:bool -> unit -> b9_row list
(** B9: multicore scaling of both exploration engines
    ([Mc.Make.run ~jobs] over the striped shared table;
    [Explore.Make.fuzz ~jobs] batch sharding) at jobs 1/2/4/8 —
    exhaustive [A_nuc] verification on [E_1(3)] measured in states/s,
    property-free fuzz sampling measured in runs/s. Wall times come
    from one monotonic-clock read on the coordinating domain (never a
    per-domain sum), and the [b9_equal] column re-checks the
    determinism contract on every row. Speedups are honest
    measurements of the host: on a single-core container the parallel
    rows report ~1x or below (domain scheduling overhead), which is
    the expected shape there, not a regression. *)

type b10_row = {
  b10_substrate : string;  (** ["sim"] or ["exec(j=<jobs>)"] *)
  b10_clients : int;
  b10_batch : int;
  b10_window : int;  (** per-replica in-flight command cap *)
  b10_slots : int;  (** slots decided at the reference replica *)
  b10_ops : int;  (** commands applied at the reference replica *)
  b10_steps : int;
  b10_wall : float;
  b10_ops_per_sec : float;
  b10_p50 : float;  (** median slot-completion gap, logical ticks *)
  b10_p99 : float;
  b10_divergent : bool;  (** live-replica log divergence (must be false) *)
}

val pp_b10_row : Format.formatter -> b10_row -> unit

val b10_header : string

val b10_row : substrate:string -> Load.config -> Load.outcome -> b10_row
(** One table row from one {!Load} run — exposed so [nuc_cli serve]
    renders the same shape. *)

val b10_serve_table : ?quick:bool -> ?jobs:int -> unit -> b10_row list
(** B10: closed-loop replicated-log serving throughput over
    [Smr.Make_tuned] on [A_nuc], client count x batch size, each
    config run on both substrates — the deterministic {!Sim.Runner}
    and the concurrent {!Sim.Executor} with [jobs] (default 2)
    domains. Latencies are logical-tick slot-completion gaps at the
    reference replica, so the sim rows are load-comparable even
    though its wall-clock means nothing physical; executor wall times
    on a single-core container include domain scheduling overhead,
    the same caveat as B9. *)

val json_of_b10_rows : b10_row list -> Report.t
(** The [b10_serve] document fragment, shared by [bench --json] and
    [nuc_cli serve --json]. *)

type b11_row = {
  b11_algorithm : string;
  b11_reduction : string;  (** ["none"], ["sleep"] or ["dpor"] *)
  b11_depth : int;
  b11_transitions : int;
  b11_states : int;  (** distinct canonical states (reduction-invariant) *)
  b11_dedup : int;
  b11_self_loops : int;
      (** includes the Dpor no-op cache skips, which take no transition *)
  b11_sleep_skipped : int;
  b11_races : int;
  b11_backtracks : int;
  b11_wall : float;
  b11_outcome : string;
  b11_pass : bool;
      (** exhausted with no violation, and distinct states equal to
          the unreduced baseline row *)
}

val pp_b11_row : Format.formatter -> b11_row -> unit

val b11_header : string

val b11_row_of_stats :
  algorithm:string ->
  reduction:Mc.reduction ->
  depth:int ->
  outcome:string ->
  pass:bool ->
  Mc.stats ->
  b11_row
(** One table row from one checker run — exposed so [nuc_cli mc
    --json] renders the same shape. *)

val b11_dpor_table : ?quick:bool -> unit -> b11_row list
(** B11: the E11 [A_nuc] verification at one depth (11; [quick] 7)
    under each reduction — none, sleep sets, happens-before DPOR.
    The pass column re-checks the state-preservation contract
    against the unreduced row: same verdict, same distinct-state
    count; the reductions may only differ in transitions taken. *)

val json_of_b11_rows : b11_row list -> Report.t
(** The [b11_dpor] document fragment, shared by [bench --json] and
    [nuc_cli mc --json]. *)

type b12_row = {
  b12_depth : int;
  b12_states : int;  (** distinct configs retained (equal in both pipelines) *)
  b12_heap_bytes : float;
      (** retained bytes per state, config-keyed memo (heap graphs) *)
  b12_packed_bytes : float;
      (** retained bytes per state, packed codec (bytes keys + pools) *)
  b12_ratio : float;  (** heap / packed *)
  b12_pass : bool;  (** same state count and ratio >= 5.0 *)
}

val pp_b12_row : Format.formatter -> b12_row -> unit

val b12_header : string

val b12_codec_table : ?quick:bool -> unit -> b12_row list
(** B12: per-state retained memory of the two canonical-state
    representations over the same distinct-state set (a dedup walk of
    the E_1(3) universe at depths 7 and 9; [quick] 7 only). Pipeline
    A retains each distinct config as its heap graph (the pre-codec
    memo layout, substructure sharing included); pipeline B retains
    one packed byte string per config plus the two interning pools
    ({!Mc.Make.Packed}). Footprints are [Gc.live_words] deltas with
    the dedup table dropped before measuring, so the numbers isolate
    exactly the representation the codec changes — the hashed-key
    wrappers, hashtable bindings and coverage entries are identical
    in both memo layouts. The acceptance bar is a >= 5x reduction. *)

val json_of_b12_rows : b12_row list -> Report.t
(** The [b12_codec] document fragment ([bench --json]). *)

type b13_row = {
  b13_family : string;
  b13_n : int;
  b13_t : int;
  b13_minq : int;  (** smallest quorum cardinality, [-1] if none *)
  b13_resilience : int;  (** {!Procset.Quorum_family.resilience} *)
  b13_runs : int;
  b13_live : int;  (** runs whose correct set is itself a quorum *)
  b13_decided : int;  (** runs where every correct process decided *)
  b13_avg_rounds : float;  (** mean deciding round over decided runs *)
  b13_avg_steps : float;  (** mean steps to global decision *)
  b13_pass : bool;  (** decided = live, run by run *)
}
(** One row of the quorum-family latency / resilience trade-off. *)

val pp_b13_row : Format.formatter -> b13_row -> unit

val b13_header : string

val b13_quorum_table : ?quick:bool -> ?seed_base:int -> unit -> b13_row list
(** B13: {!Consensus.Mr.family} under random crash patterns, one row
    per (family, n, t) point. Liveness is structural: a run decides
    iff its correct set is a quorum of the family
    ({!Procset.Quorum_family.validate}), and the pass column checks
    that equivalence on every run — blocked runs are executed against
    their full step budget, not predicted. The sweep exhibits the
    trade-off: majority maximizes resilience at [n = 5]; weighted
    votes buy smaller quorums (latency) at the price of a power
    concentration that dies with its pivot; the 2x2 grid survives any
    single crash but no double crash leaves a full row and column.
    [quick] cuts the seed list from 20 to 6. *)

val json_of_b13_rows : b13_row list -> Report.t
(** The [b13_quorum] document fragment ([bench --json]). *)

type b14_row = {
  b14_transport : string;  (** ["mutex"] or ["ring"] *)
  b14_read_mode : string;  (** ["log"] or ["snapshot"] *)
  b14_jobs : int;
  b14_slots : int;  (** slots decided at the reference replica *)
  b14_ops : int;  (** commands applied (write path) *)
  b14_ops_per_sec : float;
  b14_reads : int;  (** read queries served *)
  b14_reads_per_sec : float;
  b14_read_p50_us : float;  (** median per-read latency, microseconds *)
  b14_read_p99_us : float;
  b14_stale_max : int;
      (** worst read staleness in decided slots ([-1]: no snapshot
          read served) *)
  b14_stale_bound : int;  (** declared bound, [publish_every - 1] *)
  b14_snapshots : int;  (** snapshots published *)
  b14_lock_ops : int;  (** transport mutex acquisitions *)
  b14_cas_retries : int;  (** failed ring CAS attempts *)
  b14_sync_ops : int;  (** executor pool claims + joins *)
  b14_divergent : bool;  (** must be false *)
  b14_stale_ok : bool;  (** [stale_max <= stale_bound] — must be true *)
}
(** One row of the ring-vs-mutex / snapshot-vs-log serving matrix. *)

val pp_b14_row : Format.formatter -> b14_row -> unit

val b14_header : string

val b14_row : jobs:int -> Load.config -> Load.outcome -> b14_row
(** Project a {!Load} outcome onto a B14 row (shared with
    [nuc_cli serve] so CLI rows match bench rows). *)

val b14_config :
  transport:Sim.Executor.transport ->
  read_mode:Load.read_mode ->
  reads:int ->
  target_slots:int ->
  max_steps:int ->
  Load.config
(** The {!b10_config} write workload (64 clients, batch 1) with a
    read workload riding along. *)

val b14_ring_table : ?quick:bool -> unit -> b14_row list
(** B14: the serving workload on the concurrent executor across
    \{mutex, ring\} transports x \{log, snapshot\} read modes x jobs
    (\[1\] quick, \[1; 2\] full). The contention columns are the
    point: at any job count the ring's [lock_ops] collapses to its
    overflow spills (the mutex backend pays one per send/recv probe)
    and [sync_ops] counts rounds, not steps — honest single-core
    evidence that the hot path gave up its shared atomics. Snapshot
    rows must show [stale_ok] under the declared bound. *)

val json_of_b14_rows : b14_row list -> Report.t
(** The [b14_ring] document fragment, shared by [bench --json] and
    [nuc_cli serve --json]. *)
