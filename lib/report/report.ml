(* Hand-rolled JSON serialization (no new dependencies) for the
   benchmark reports. See DESIGN.md for the document schema. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec emit b ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    (* JSON has no nan/infinity; map them to null *)
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.12g" f)
    else Buffer.add_string b "null"
  | Str s ->
    Buffer.add_char b '"';
    add_escaped b s;
    Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
    Buffer.add_string b "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b (pad (indent + 2));
        emit b ~indent:(indent + 2) x)
      xs;
    Buffer.add_char b '\n';
    Buffer.add_string b (pad indent);
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b (pad (indent + 2));
        Buffer.add_char b '"';
        add_escaped b k;
        Buffer.add_string b "\": ";
        emit b ~indent:(indent + 2) x)
      kvs;
    Buffer.add_char b '\n';
    Buffer.add_string b (pad indent);
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  emit b ~indent:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_channel oc v = output_string oc (to_string v)

let schema_keys =
  [
    "schema_version";
    "generated_at_unix";
    "e_table";
    "b1_latency";
    "b2_stabilization";
    "b3_dag_growth";
    "b5_ablation";
    "b6_model_check";
    "b7_fault_latency";
    "b8_fuzz";
    "b9_parallel";
    "b10_serve";
    "b11_dpor";
    "b12_codec";
    "b13_quorum";
    "b14_ring";
    "b4_micro";
    "run_metrics";
  ]
