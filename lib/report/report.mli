(** Hand-rolled JSON serialization for the benchmark reports
    ([bench/main.exe --json]); no external JSON dependency.

    Emission rules the schema's consumers may rely on: non-finite
    floats serialize as [null] (JSON has no nan/infinity); strings are
    escaped with the two-character sequences for quote, backslash,
    newline, tab and carriage return, and [\uXXXX] for the remaining
    control characters; objects and nonempty lists are emitted
    multi-line with two-space indentation. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Serialize, followed by one trailing newline. *)

val to_channel : out_channel -> t -> unit
(** [to_channel oc v] writes [to_string v] to [oc]. *)

val schema_keys : string list
(** The top-level keys of the BENCH_*.json document, in emission
    order. [bench/main.exe] constructs its document from this list, so
    the printer, the documented schema and the golden test cannot
    drift apart. *)
