open Procset

module Make (A : Sim.Automaton.S) = struct
  type result = {
    states : A.state array;
    steps_executed : int;
    stopped : bool;
    messages_sent : int;
    messages_delivered : int;
    messages_dropped : int;
    mailbox_hwm : int;
  }

  let run ~n ~inputs ~path ?(faults = Sim.Faults.none)
      ?(until = fun _ -> false) () =
    let states = Array.init n (fun p -> A.initial ~n ~self:p (inputs p)) in
    let buffers = Array.init n (fun _ -> Sim.Mailbox.create ()) in
    let send_seq = Array.make n 0 in
    let time = ref 1 in
    let executed = ref 0 in
    let stopped = ref false in
    let sent = ref 0 in
    let delivered = ref 0 in
    let dropped = ref 0 in
    let hwm = ref 0 in
    let rec exec = function
      | [] -> ()
      | (p, d) :: rest ->
        if not (Pid.valid ~n p) then
          invalid_arg (Printf.sprintf "Path_sim.run: pid %d out of range" p);
        let received = Sim.Mailbox.dequeue_oldest buffers.(p) in
        if received <> None then incr delivered;
        let state, sends = A.step ~n ~self:p states.(p) received d in
        states.(p) <- state;
        List.iter
          (fun (dst, payload) ->
            let seq = send_seq.(p) in
            send_seq.(p) <- seq + 1;
            incr sent;
            let v = Sim.Faults.verdict faults ~src:p ~dst ~seq ~time:!time in
            if v.Sim.Faults.copies = 0 then incr dropped
            else begin
              let env =
                { Sim.Envelope.src = p; dst; seq; sent_at = !time; payload }
              in
              let buf = buffers.(dst) in
              let len = Sim.Mailbox.length buf in
              let at = max 0 (len - v.Sim.Faults.displace) in
              if at < len then Sim.Mailbox.insert_nth buf at env
              else Sim.Mailbox.enqueue buf env;
              if v.Sim.Faults.copies = 2 then Sim.Mailbox.enqueue buf env;
              let depth = Sim.Mailbox.length buf in
              if depth > !hwm then hwm := depth
            end)
          sends;
        incr time;
        incr executed;
        if until states then stopped := true else exec rest
    in
    exec path;
    {
      states;
      steps_executed = !executed;
      stopped = !stopped;
      messages_sent = !sent;
      messages_delivered = !delivered;
      messages_dropped = !dropped;
      mailbox_hwm = !hwm;
    }

  let participants ~path ~prefix =
    List.filteri (fun i _ -> i < prefix) path
    |> List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty
end
