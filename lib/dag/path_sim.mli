(** Simulated schedules along a DAG path (Section 4.2).

    A path [g = (p1,d1,k1), (p2,d2,k2), ...] of a DAG of samples
    determines simulated schedules of any algorithm [A]: step [i] is
    taken by [p_i], which sees failure-detector value [d_i]; the
    message received in each step is the free choice. [Path_sim]
    builds the {e canonical} compatible schedule of Lemma 4.10 — each
    step receives the {e oldest} message pending for the stepping
    process, or the empty message if there is none — which is exactly
    the schedule whose infinite extension the paper proves admissible,
    and hence the one whose prefixes make the emulations of Figs. 2–3
    live. *)

module Make (A : Sim.Automaton.S) : sig
  type result = {
    states : A.state array;  (** configuration after the executed prefix *)
    steps_executed : int;
        (** length of the executed prefix of the path *)
    stopped : bool;  (** the [until] predicate fired *)
    messages_sent : int;  (** messages enqueued along the prefix *)
    messages_delivered : int;
        (** steps of the prefix that received a message *)
    messages_dropped : int;
        (** sends lost to the fault spec; 0 without one *)
    mailbox_hwm : int;
        (** high-water mark of any single mailbox depth *)
  }

  val run :
    n:int ->
    inputs:(Procset.Pid.t -> A.input) ->
    path:(Procset.Pid.t * Sim.Fd_value.t) list ->
    ?faults:Sim.Faults.t ->
    ?until:(A.state array -> bool) ->
    unit ->
    result
  (** [run ~n ~inputs ~path ()] applies the canonical schedule
      compatible with [path] to the initial configuration given by
      [inputs]. If [until] is supplied, execution stops after the
      first step whose resulting configuration satisfies it; the
      executed prefix length identifies the deciding schedule prefix
      (and hence its participants). [faults] (default
      {!Sim.Faults.none}) applies the same deterministic per-send
      fault verdicts as [Sim.Runner]: the canonical schedule then
      delivers the oldest {e surviving} message of each step. *)

  val participants : path:(Procset.Pid.t * Sim.Fd_value.t) list ->
    prefix:int -> Procset.Pset.t
  (** Owners of the first [prefix] steps of [path] — the
      [participants(S)] of the corresponding schedule prefix. *)
end
