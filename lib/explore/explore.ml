(* Randomized schedule exploration over [Mc.Make.Space]. See
   explore.mli and DESIGN.md §5c for the sampler math (PCT detection
   bound, split-seed determinism) and the shrink-certification
   argument. *)

open Procset

type sampler = Uniform | Pct of int

let sampler_name = function
  | Uniform -> "uniform"
  | Pct d -> Printf.sprintf "pct%d" d

let pp_sampler fmt s = Format.pp_print_string fmt (sampler_name s)

type swarm = {
  sw_menus : Mc.Menu.t list;
  sw_budgets : int list;
  sw_stabs : int list;
  sw_samplers : sampler list;
}

type batch_point = {
  bp_batch : int;
  bp_runs : int;
  bp_menu : string;
  bp_sampler : string;
  bp_budget : int;
  bp_stab : int;
  bp_states : int;
  bp_new_states : int;
  bp_new_depths : int;
  bp_new_shapes : int;
  bp_new_sigs : int;
  bp_new_traces : int;
}

type totals = {
  distinct_states : int;
  decision_depths : int;
  quorum_shapes : int;
  fault_signatures : int;
  canonical_traces : int;
}

(* Seed-stream salts: the root seed is combined with one of these and
   the batch/run indices, so the batch draw, the run streams and any
   future stream family never collide. *)
let salt_batch = 0x5347 (* "SG" — swarm generation *)

let salt_run = 0x52 (* "R" *)

(* Coverage keys are already deep hashes; [Key_set] stores them with
   identity hashing and a single probe per insertion attempt. *)
module Kset = Mc.Intern.Key_set

module Make (A : Sim.Automaton.S) = struct
  module M = Mc.Make (A)
  module S = M.Space

  type violation = {
    v_run : int;
    v_batch : int;
    v_property : string;
    v_detail : string;
    v_menu : string;
    v_sampler : string;
    v_budget : int;
    v_stab : int;
    v_moves : M.move list;
    v_shrunk : M.move list;
    v_candidates : int;
    v_cx : M.counterexample;
    v_replay_ok : bool;
    v_history_ok : bool;
  }

  type report = {
    algorithm : string;
    seed : int;
    sampler : string;
    swarm : bool;
    runs : int;
    max_steps : int;
    steps_total : int;
    decided_runs : int;
    quiesced_runs : int;
    curve : batch_point list;
    totals : totals;
    violation : violation option;
    wall_seconds : float;
  }

  (* ------------------------------------------------------------------ *)
  (* Schedule re-execution                                              *)
  (* ------------------------------------------------------------------ *)

  let check_props props getter =
    let rec go = function
      | [] -> None
      | (p : M.property) :: rest -> (
        match p.prop_check getter with
        | Ok () -> go rest
        | Error detail -> Some (p.prop_name, detail))
    in
    go props

  (* Re-executes [moves] from the initial configuration. Returns the
     length of the shortest violating prefix together with the
     violated property, or [None] — also when some move is not
     applicable, so shrink candidates that break FIFO indices are
     rejected rather than misapplied. *)
  let violates ~n ~inputs ~props moves =
    let rec go cfg i = function
      | [] -> None
      | mv :: rest ->
        if not (S.applicable ~n cfg mv) then None
        else
          let cfg = S.apply ~n cfg mv in
          (match check_props props (S.state cfg) with
          | Some (name, detail) -> Some (i + 1, name, detail)
          | None -> go cfg (i + 1) rest)
    in
    go (S.initial ~n ~inputs) 0 moves

  let take k l = List.filteri (fun i _ -> i < k) l

  (* ------------------------------------------------------------------ *)
  (* Certified shrinking (ddmin over the recorded schedule)             *)
  (* ------------------------------------------------------------------ *)

  let shrink_schedule ?(max_candidates = 20_000) ~n ~inputs ~props moves =
    let spent = ref 0 in
    let try_ ms =
      if !spent >= max_candidates then None
      else (
        incr spent;
        violates ~n ~inputs ~props ms)
    in
    match try_ moves with
    | None -> Error "schedule does not reach a property violation"
    | Some (len, _, _) ->
      let best = ref (take len moves) in
      let remove ms lo k =
        List.filteri (fun i _ -> i < lo || i >= lo + k) ms
      in
      (* One sweep at chunk size [k]: try deleting every aligned chunk
         of the current best schedule; an accepted deletion re-truncates
         to the new shortest violating prefix. Returns whether any
         deletion was accepted. *)
      let sweep k =
        let progress = ref false in
        let i = ref 0 in
        while !i < List.length !best && !spent < max_candidates do
          match try_ (remove !best !i k) with
          | Some (len, _, _) ->
            best := take len (remove !best !i k);
            progress := true
          | None -> i := !i + k
        done;
        !progress
      in
      (* ddmin deletion to a fixed point: halving granularities, then
         single moves until 1-minimal (no single move deletable). *)
      let delete_fixpoint () =
        let k = ref (max 1 (List.length !best / 2)) in
        while !k > 1 do
          ignore (sweep !k);
          k := max 1 (!k / 2)
        done;
        while sweep 1 && !spent < max_candidates do
          ()
        done
      in
      delete_fixpoint ();
      (* Drain skipping. A FIFO-sampled schedule pays for every needed
         message by first receiving everything sent before it on the
         same channel, and plain deletion cannot remove those drain
         steps: deleting a receive re-aims every later index-0 receive
         on the channel at the wrong envelope. The paper's message
         buffer is a set (§2.1), the move alphabet indexes the whole
         pending list, and the replay certificate names envelopes
         explicitly — so instead {e park} the skipped message: delete
         the receive and shift every later same-channel receive (or
         drop) at an index not below the skipped one up by one, which
         keeps each of them aimed at the same envelope. This is the
         pass that lets FIFO-sampled counterexamples shrink past the
         FIFO-minimal length. *)
      let skip_drain i =
        match List.nth_opt !best i with
        | None | Some { M.m_drop = true; _ } -> None
        | Some (mv : M.move) ->
          (match mv.m_recv with
          | None -> None
          | Some (src, k) ->
            Some
              (!best
              |> List.mapi (fun j m -> (j, m))
              |> List.filter_map (fun (j, (m : M.move)) ->
                     if j = i then None
                     else if j > i && m.m_pid = mv.m_pid then
                       match m.m_recv with
                       | Some (s, k') when s = src && k' >= k ->
                         Some { m with M.m_recv = Some (s, k' + 1) }
                       | _ -> Some m
                     else Some m)))
      in
      let drain_sweep () =
        let progress = ref false in
        let i = ref 0 in
        while !i < List.length !best && !spent < max_candidates do
          match skip_drain !i with
          | None -> incr i
          | Some cand ->
            (match try_ cand with
            | Some (len, _, _) ->
              best := take len cand;
              progress := true
            | None -> incr i)
        done;
        !progress
      in
      while drain_sweep () && !spent < max_candidates do
        delete_fixpoint ()
      done;
      (* Loss-budget reduction: drop moves only reduce what the network
         delivers, so try discarding all of them at once (the sweeps
         above already tried them one by one). *)
      (match
         try_ (List.filter (fun (mv : M.move) -> not mv.m_drop) !best)
       with
      | Some (len, _, _) ->
        best :=
          take len (List.filter (fun (mv : M.move) -> not mv.m_drop) !best)
      | None -> ());
      (* Deletion alone stalls in local minima created by detector
         choices: a step that sampled a wasteful quorum cannot be
         deleted when the process's participation is load-bearing, yet
         resampling its value would let several other steps go.
         Coordinate descent over fd values: replace one move's value
         with another value the same process used elsewhere in the raw
         schedule (so the replacement stays inside the sampled menu),
         keep the rewrite only if a deletion pass then strictly
         shortens the schedule. *)
      let alts_of =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (mv : M.move) ->
            if not mv.m_drop then begin
              let vs =
                Option.value ~default:[] (Hashtbl.find_opt tbl mv.m_pid)
              in
              if not (List.exists (Sim.Fd_value.equal mv.m_fd) vs) then
                Hashtbl.replace tbl mv.m_pid (mv.m_fd :: vs)
            end)
          moves;
        fun pid -> Option.value ~default:[] (Hashtbl.find_opt tbl pid)
      in
      (* [attempt cand]: adopt the rewritten schedule iff it still
         violates and a deletion pass then strictly shortens. *)
      let attempt cand =
        let len0 = List.length !best in
        match try_ cand with
        | None -> false
        | Some (len, _, _) ->
          let saved = !best in
          best := take len cand;
          delete_fixpoint ();
          if List.length !best < len0 then true
          else (
            best := saved;
            false)
      in
      let rewrite_all pid v =
        List.map
          (fun (mv : M.move) ->
            if mv.m_pid = pid && not mv.m_drop then { mv with m_fd = v }
            else mv)
          !best
      in
      let rewrite_suffix pid j v =
        List.mapi
          (fun i (mv : M.move) ->
            if i >= j && mv.m_pid = pid && not mv.m_drop then
              { mv with m_fd = v }
            else mv)
          !best
      in
      let rewrite_one i v =
        List.mapi
          (fun j (mv : M.move) -> if j = i then { mv with m_fd = v } else mv)
          !best
      in
      let pids ms =
        List.sort_uniq compare
          (List.filter_map
             (fun (mv : M.move) -> if mv.m_drop then None else Some mv.m_pid)
             ms)
      in
      (* The process's value-switch points: a schedule that switches
         quorum families mid-run (the contamination shape) canonicalizes
         by rewriting whole suffixes, which single-step replacement
         cannot reach. *)
      let switch_points pid =
        let rec go i prev = function
          | [] -> []
          | (mv : M.move) :: rest ->
            if mv.m_drop || mv.m_pid <> pid then go (i + 1) prev rest
            else if
              match prev with
              | None -> false
              | Some v -> not (Sim.Fd_value.equal v mv.m_fd)
            then i :: go (i + 1) (Some mv.m_fd) rest
            else go (i + 1) (Some mv.m_fd) rest
        in
        go 0 None !best
      in
      let improved = ref true in
      while !improved && !spent < max_candidates do
        improved := false;
        (* Whole-process canonicalization. *)
        List.iter
          (fun pid ->
            List.iter
              (fun v ->
                if (not !improved) && attempt (rewrite_all pid v) then
                  improved := true)
              (alts_of pid))
          (pids !best);
        (* Suffix canonicalization from each value-switch point. *)
        if not !improved then
          List.iter
            (fun pid ->
              List.iter
                (fun j ->
                  List.iter
                    (fun v ->
                      if (not !improved) && attempt (rewrite_suffix pid j v)
                      then improved := true)
                    (alts_of pid))
                (switch_points pid))
            (pids !best);
        (* Single-move replacement, the finest grain. *)
        if not !improved then begin
          let i = ref 0 in
          while !i < List.length !best && !spent < max_candidates do
            let mv_i = List.nth !best !i in
            if not mv_i.m_drop then
              List.iter
                (fun v ->
                  if
                    (not (Sim.Fd_value.equal v mv_i.m_fd))
                    && (not !improved)
                    && attempt (rewrite_one !i v)
                  then improved := true)
                (alts_of mv_i.m_pid);
            incr i
          done
        end;
        (* Value rewrites can unlock fresh drains and vice versa. *)
        if (not !improved) && drain_sweep () then begin
          delete_fixpoint ();
          improved := true
        end
      done;
      Ok (!best, !spent)

  (* ------------------------------------------------------------------ *)
  (* Samplers                                                           *)
  (* ------------------------------------------------------------------ *)

  (* Delivery moves outweigh lambda and network drops, and the process
     scheduled last keeps an inertia bonus: protocol-level progress
     (complete a phase, finish a round) takes bursts of consecutive
     same-process steps that a memoryless uniform draw almost never
     produces — the minimal §6.3 contamination schedules are made of
     exactly such bursts (a faulty process solo-deciding, a decider
     draining its quorum's messages). *)
  let inertia = 5.0

  let move_weight ~prev (mv : M.move) =
    let base =
      if mv.m_drop then 1.0
      else match mv.m_recv with Some _ -> 3.0 | None -> 1.0
    in
    if prev = mv.m_pid then base *. inertia else base

  (* Weighted choice among [cands]; total weight is positive because
     every move weighs at least 1. *)
  let weighted_pick ~prev rng cands =
    let total =
      List.fold_left (fun a (mv, _) -> a +. move_weight ~prev mv) 0.0 cands
    in
    let x = Random.State.float rng total in
    let rec go acc = function
      | [ last ] -> last
      | (mv, cfg') :: rest ->
        let acc = acc +. move_weight ~prev mv in
        if x < acc then (mv, cfg') else go acc rest
      | [] -> assert false
    in
    go 0.0 cands

  (* PCT per-run scheduler state: distinct per-process priorities and
     d-1 priority-change points. [pct_next] is the index of the next
     unused change point; demoted processes get distinct negative
     priorities so the order among demoted processes is the demotion
     order, as in the PCT construction. *)
  type pct = {
    prio : float array;
    change_at : int array; (* sorted step indices, d-1 of them *)
    mutable pct_next : int;
  }

  let pct_init rng ~n ~d ~max_steps =
    let perm = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    done;
    let prio = Array.make n 0.0 in
    Array.iteri (fun rank p -> prio.(p) <- float_of_int (n - rank)) perm;
    let change_at =
      Array.init (max 0 (d - 1)) (fun _ ->
          1 + Random.State.int rng (max 1 (max_steps - 1)))
    in
    Array.sort compare change_at;
    { prio; change_at; pct_next = 0 }

  let pct_pick pct rng ~step cands =
    (* Fire every change point scheduled at or before this step: demote
       the currently top-priority process among all processes. *)
    while
      pct.pct_next < Array.length pct.change_at
      && pct.change_at.(pct.pct_next) <= step
    do
      let top = ref 0 in
      Array.iteri
        (fun p pr -> if pr > pct.prio.(!top) then top := p)
        pct.prio;
      pct.prio.(!top) <- -.float_of_int (pct.pct_next + 1);
      pct.pct_next <- pct.pct_next + 1
    done;
    (* Highest-priority process owning a candidate move runs; its move
       is a weighted draw among that process's candidates. *)
    let best_pid = ref (-1) in
    List.iter
      (fun ((mv : M.move), _) ->
        if !best_pid < 0 || pct.prio.(mv.m_pid) > pct.prio.(!best_pid) then
          best_pid := mv.m_pid)
      cands;
    let mine =
      List.filter (fun ((mv : M.move), _) -> mv.m_pid = !best_pid) cands
    in
    weighted_pick ~prev:!best_pid rng mine

  (* ------------------------------------------------------------------ *)
  (* Coverage                                                           *)
  (* ------------------------------------------------------------------ *)

  type coverage = {
    states : Kset.t;
    depths : Kset.t;
    shapes : Kset.t;
    sigs : Kset.t;
    traces : Kset.t;
  }

  let cov_create () =
    {
      states = Kset.create 4096;
      depths = Kset.create 64;
      shapes = Kset.create 1024;
      sigs = Kset.create 64;
      traces = Kset.create 1024;
    }

  let cov_add tbl key = ignore (Kset.add_new tbl key : bool)

  let cov_totals cov =
    {
      distinct_states = Kset.length cov.states;
      decision_depths = Kset.length cov.depths;
      quorum_shapes = Kset.length cov.shapes;
      fault_signatures = Kset.length cov.sigs;
      canonical_traces = Kset.length cov.traces;
    }

  (* Deep structural hash (same spirit as [Space.key]): a coverage
     bucket, not an identity. *)
  let deep_hash v = Hashtbl.hash_param 200 800 v

  (* ------------------------------------------------------------------ *)
  (* The fuzz loop                                                      *)
  (* ------------------------------------------------------------------ *)

  type batch_cfg = {
    c_menu : Mc.Menu.t;
    c_menus : Sim.Fd_value.t list array;
    c_sampler : sampler;
    c_budget : int;
    c_stab : int;
  }

  let menus_of ~n (menu : Mc.Menu.t) = Array.init n (fun p -> menu.values p)

  let draw rng base = function
    | [] -> base
    | l -> List.nth l (Random.State.int rng (List.length l))

  (* After the stabilization step only each process's first menu value
     remains on offer — the detector has converged; network moves are
     unaffected. *)
  let stabilize (bc : batch_cfg) step moves =
    if step < bc.c_stab then moves
    else
      List.filter
        (fun (mv : M.move) ->
          mv.m_drop
          ||
          match bc.c_menus.(mv.m_pid) with
          | [] -> true
          | v :: _ -> Sim.Fd_value.equal mv.m_fd v)
        moves

  type run_outcome =
    | Violation of M.move list * string * string
    | Decided
    | Quiesced
    | Bound

  let exec_run ~n ~inputs ~props ~(bc : batch_cfg) ~delivery ~max_steps ~rng
      ~cov ~stop ~decided =
    let pct =
      match bc.c_sampler with
      | Uniform -> None
      | Pct d -> Some (pct_init rng ~n ~d ~max_steps)
    in
    let cfg = ref (S.initial ~n ~inputs) in
    let moves = ref [] in
    let drops = ref 0 in
    let first_decision = ref None in
    let steps = ref 0 in
    let prev = ref (-1) in
    let outcome = ref Bound in
    (try
       for step = 0 to max_steps - 1 do
         let lossy = bc.c_menu.lossy && !drops < bc.c_budget in
         let enabled =
           S.enabled ~n ~delivery ~lossy ~menus:bc.c_menus !cfg
           |> stabilize bc step
         in
         (* Self-loop moves neither change state nor coverage; a run
            with only self-loop moves left has quiesced. *)
         let cands =
           List.filter_map
             (fun mv ->
               let cfg' = S.apply ~n !cfg mv in
               if S.equal cfg' !cfg then None else Some (mv, cfg'))
             enabled
         in
         if cands = [] then (
           outcome := Quiesced;
           raise Exit);
         let mv, cfg' =
           match pct with
           | None -> weighted_pick ~prev:!prev rng cands
           | Some pct -> pct_pick pct rng ~step cands
         in
         cfg := cfg';
         prev := mv.m_pid;
         moves := mv :: !moves;
         incr steps;
         if mv.m_drop then incr drops;
         cov_add cov.states (S.key !cfg);
         (if !first_decision = None then
            match decided with
            | Some d when List.exists (fun p -> d (S.state !cfg p)) (Pid.all ~n)
              ->
              first_decision := Some step;
              cov_add cov.depths step
            | _ -> ());
         (match check_props props (S.state !cfg) with
         | Some (name, detail) ->
           outcome := Violation (List.rev !moves, name, detail);
           raise Exit
         | None -> ());
         match stop with
         | Some st when st (S.state !cfg) ->
           outcome := Decided;
           raise Exit
         | _ -> ()
       done
     with Exit -> ());
    (* Run-shape coverage: the (process, detector value) sequence of
       the schedule, and the placement of its network drops. *)
    let ms = List.rev !moves in
    cov_add cov.shapes
      (deep_hash
         (List.filter_map
            (fun (mv : M.move) ->
              if mv.m_drop then None else Some (mv.m_pid, mv.m_fd))
            ms));
    cov_add cov.sigs
      (deep_hash
         (List.mapi (fun i (mv : M.move) -> (i, mv)) ms
         |> List.filter_map (fun (i, (mv : M.move)) ->
                if mv.m_drop then Some (i, mv.m_pid, mv.m_recv) else None)));
    (* Mazurkiewicz-class coverage: the checker's happens-before
       independence relation canonicalises the schedule, so two runs
       differing only in swaps of independent adjacent moves count as
       one trace. A flat trace count against [runs] measures how much
       of the fuzz budget re-samples equivalent interleavings. *)
    cov_add cov.traces (M.trace_key ms);
    (!steps, !outcome, ms)

  (* One fuzz batch, self-contained: its configuration comes from the
     batch's own seed stream, each run from the split seed
     [(seed, salt_run, batch, run)], and coverage goes to a private
     per-batch tracker recording the keys the batch touched.
     [exec_run] writes to the tracker but never reads it, so running a
     batch against a private tracker and merging the key sets in batch
     order afterwards reproduces the sequential tracker's counts
     exactly — which is what makes batches the unit of parallelism
     without giving up byte-determinism. *)
  type batch_result = {
    r_bc : batch_cfg;
    r_runs : int;  (* executed — below plan when a violation stops the batch *)
    r_steps : int;
    r_decided : int;
    r_quiesced : int;
    r_cov : coverage;
    r_violation : (int * M.move list * string * string) option;
        (* (run offset within the batch, raw schedule, property, detail) *)
  }

  let bc_of ~n ~seed ~base ~swarm b =
    match swarm with
    | None -> base
    | Some sw ->
      let rng_b = Random.State.make [| seed; salt_batch; b |] in
      let menu = draw rng_b base.c_menu sw.sw_menus in
      {
        c_menu = menu;
        c_menus = menus_of ~n menu;
        c_budget = draw rng_b base.c_budget sw.sw_budgets;
        c_stab = draw rng_b base.c_stab sw.sw_stabs;
        c_sampler = draw rng_b base.c_sampler sw.sw_samplers;
      }

  let run_batch ~n ~inputs ~props ~delivery ~max_steps ~seed ~base ~swarm
      ~batch_size ~runs ~stop ~decided b =
    let bc = bc_of ~n ~seed ~base ~swarm b in
    let start = b * batch_size in
    let in_batch = min batch_size (runs - start) in
    let cov = cov_create () in
    let steps_total = ref 0 in
    let decided_runs = ref 0 in
    let quiesced_runs = ref 0 in
    let violation = ref None in
    let r = ref 0 in
    while !violation = None && !r < in_batch do
      let run_ix = start + !r in
      let rng = Random.State.make [| seed; salt_run; b; run_ix |] in
      let steps, outcome, _moves =
        exec_run ~n ~inputs ~props ~bc ~delivery ~max_steps ~rng ~cov ~stop
          ~decided
      in
      steps_total := !steps_total + steps;
      (match outcome with
      | Violation (moves, name, detail) ->
        violation := Some (!r, moves, name, detail)
      | Decided -> incr decided_runs
      | Quiesced -> incr quiesced_runs
      | Bound -> ());
      incr r
    done;
    {
      r_bc = bc;
      r_runs = !r;
      r_steps = !steps_total;
      r_decided = !decided_runs;
      r_quiesced = !quiesced_runs;
      r_cov = cov;
      r_violation = !violation;
    }

  (* ------------------------------------------------------------------ *)
  (* Campaign checkpoints                                                *)
  (* ------------------------------------------------------------------ *)

  (* Fuzz checkpoints share [Mc.Codec]'s container with the checker's
     but use a distinct schema version, so resuming a fuzz campaign
     from an mc checkpoint (or vice versa) fails as [Bad_version]
     before any unmarshalling. *)
  let ckpt_version = 2

  (* The campaign shape that must match for a resume to be meaningful:
     everything the batch seed streams and the merge are functions
     of. [runs] is included — a fuzz campaign's batch grid is fixed up
     front, unlike the checker's state budget. *)
  type fingerprint = {
    fp_algo : string;
    fp_seed : int;
    fp_sampler : string;
    fp_swarm : bool;
    fp_runs : int;
    fp_batch : int;
    fp_max_steps : int;
    fp_max_drops : int;
    fp_n : int;
    fp_menu : string;
    fp_delivery : string;
  }

  let fp_describe fp =
    Printf.sprintf
      "algo=%S seed=%d sampler=%s swarm=%b runs=%d batch=%d max_steps=%d \
       max_drops=%d n=%d menu=%S delivery=%s"
      fp.fp_algo fp.fp_seed fp.fp_sampler fp.fp_swarm fp.fp_runs fp.fp_batch
      fp.fp_max_steps fp.fp_max_drops fp.fp_n fp.fp_menu fp.fp_delivery

  (* The merged campaign state at a batch boundary: coverage key sets
     (as raw int arrays), the curve so far, the counters, and the
     first unmerged batch. Restoring it and merging the remaining
     batches reproduces the straight-through campaign byte for byte —
     per-batch results depend only on (seed, batch index), and merged
     novelty counts depend only on set membership, not insertion
     order (pinned in test_explore.ml). *)
  type ckpt = {
    ck_fp : fingerprint;
    ck_next : int;
    ck_states : int array;
    ck_depths : int array;
    ck_shapes : int array;
    ck_sigs : int array;
    ck_traces : int array;
    ck_curve : batch_point list;  (* reversed: merge order, newest first *)
    ck_counts : int array;  (* runs_done, steps_total, decided, quiesced *)
  }

  let kset_export s =
    let acc = ref [] in
    Kset.iter (fun k -> acc := k :: !acc) s;
    Array.of_list !acc

  let fuzz ?(algo = "unnamed") ?(sampler = Uniform) ?swarm ?(batch_size = 1000)
      ?(delivery = `Fifo) ?max_steps ?(max_drops = 1) ?(shrink = true)
      ?(jobs = 1) ?checkpoint ?resume ?max_batches ?stop ?decided ~seed ~runs
      ~n ~menu ~pattern ~inputs ~props () =
    let t0 = Sim.Clock.now () in
    let max_steps =
      match max_steps with Some m -> m | None -> 18 * n
    in
    let base =
      {
        c_menu = menu;
        c_menus = menus_of ~n menu;
        c_sampler = sampler;
        c_budget = max_drops;
        c_stab = max_steps;
      }
    in
    let nbatches = if runs <= 0 then 0 else ((runs - 1) / batch_size) + 1 in
    let fp =
      {
        fp_algo = algo;
        fp_seed = seed;
        fp_sampler = sampler_name sampler;
        fp_swarm = swarm <> None;
        fp_runs = runs;
        fp_batch = batch_size;
        fp_max_steps = max_steps;
        fp_max_drops = max_drops;
        fp_n = n;
        fp_menu = menu.Mc.Menu.name;
        fp_delivery = (match delivery with `Fifo -> "fifo" | `Any -> "any");
      }
    in
    let cov = cov_create () in
    let curve = ref [] in
    let raw_violation = ref None in
    let runs_done = ref 0 in
    let steps_total = ref 0 in
    let decided_runs = ref 0 in
    let quiesced_runs = ref 0 in
    let start =
      match resume with
      | None -> 0
      | Some path -> (
        match
          (Mc.Codec.read_file ~path ~version:ckpt_version
            : (ckpt, Mc.Codec.error) result)
        with
        | Error e -> raise (Mc.Resume_rejected e)
        | Ok c ->
          if c.ck_fp <> fp then
            raise
              (Mc.Resume_rejected
                 (Mc.Codec.Params_mismatch
                    (Printf.sprintf "checkpoint {%s} vs campaign {%s}"
                       (fp_describe c.ck_fp) (fp_describe fp))));
          Array.iter (cov_add cov.states) c.ck_states;
          Array.iter (cov_add cov.depths) c.ck_depths;
          Array.iter (cov_add cov.shapes) c.ck_shapes;
          Array.iter (cov_add cov.sigs) c.ck_sigs;
          Array.iter (cov_add cov.traces) c.ck_traces;
          curve := c.ck_curve;
          runs_done := c.ck_counts.(0);
          steps_total := c.ck_counts.(1);
          decided_runs := c.ck_counts.(2);
          quiesced_runs := c.ck_counts.(3);
          c.ck_next)
    in
    let last_ckpt = ref start in
    let write_ckpt next =
      match checkpoint with
      | None -> ()
      | Some (path, _) ->
        Mc.Codec.write_file ~path ~version:ckpt_version
          {
            ck_fp = fp;
            ck_next = next;
            ck_states = kset_export cov.states;
            ck_depths = kset_export cov.depths;
            ck_shapes = kset_export cov.shapes;
            ck_sigs = kset_export cov.sigs;
            ck_traces = kset_export cov.traces;
            ck_curve = !curve;
            ck_counts =
              [| !runs_done; !steps_total; !decided_runs; !quiesced_runs |];
          };
        last_ckpt := next
    in
    (* Batches are independent given their index, so they are the unit
       of parallel dispatch over the domain pool — in one sweep for a
       plain campaign, in bounded chunks when checkpointing (so the
       boundary where a snapshot is consistent recurs) or when
       [max_batches] caps the segment. [cutoff] is the earliest batch
       known to hold a violation: workers skip later batches outright
       (results past the cutoff are discarded by the merge anyway).
       Every batch below the final cutoff is computed: the pool hands
       out indices in increasing order, and the cutoff only ever
       decreases to an index that was actually computed. Chunking is
       invisible to the merged result — each batch result is a
       function of (seed, index) alone, and the merge always runs in
       batch order — which is what keeps the report byte-identical
       across straight-through, chunked and resumed campaigns at any
       [jobs] (pinned in test_explore.ml). *)
    let seg_limit =
      match max_batches with None -> max_int | Some m -> max 0 m
    in
    let chunk =
      if checkpoint = None && resume = None && max_batches = None then
        max 1 nbatches
      else max 1 (2 * jobs)
    in
    let b = ref start in
    let seg_done = ref 0 in
    while !raw_violation = None && !b < nbatches && !seg_done < seg_limit do
      let lo = !b in
      let hi = min nbatches (lo + min chunk (seg_limit - !seg_done)) in
      let results = Array.make (hi - lo) None in
      let cutoff = Atomic.make max_int in
      let rec lower b' =
        let c = Atomic.get cutoff in
        if b' < c && not (Atomic.compare_and_set cutoff c b') then lower b'
      in
      Mc.Pool.run ~jobs (hi - lo) (fun ~worker:_ j ->
          let bb = lo + j in
          if bb <= Atomic.get cutoff then begin
            let res =
              run_batch ~n ~inputs ~props ~delivery ~max_steps ~seed ~base
                ~swarm ~batch_size ~runs ~stop ~decided bb
            in
            if res.r_violation <> None then lower bb;
            results.(j) <- Some res
          end);
      (* Merge in batch order: curve, totals, counters and the
         earliest violation all replay the sequential loop byte for
         byte, for any [jobs]. *)
      let j = ref 0 in
      while !raw_violation = None && !j < hi - lo do
        let bb = lo + !j in
        (match results.(!j) with
        | None ->
          (* unreachable: batches up to the earliest violation are
             always computed *)
          assert false
        | Some res ->
          let states0 = Kset.length cov.states in
          let depths0 = Kset.length cov.depths in
          let shapes0 = Kset.length cov.shapes in
          let sigs0 = Kset.length cov.sigs in
          let traces0 = Kset.length cov.traces in
          Kset.iter (cov_add cov.states) res.r_cov.states;
          Kset.iter (cov_add cov.depths) res.r_cov.depths;
          Kset.iter (cov_add cov.shapes) res.r_cov.shapes;
          Kset.iter (cov_add cov.sigs) res.r_cov.sigs;
          Kset.iter (cov_add cov.traces) res.r_cov.traces;
          runs_done := !runs_done + res.r_runs;
          steps_total := !steps_total + res.r_steps;
          decided_runs := !decided_runs + res.r_decided;
          quiesced_runs := !quiesced_runs + res.r_quiesced;
          let bc = res.r_bc in
          curve :=
            {
              bp_batch = bb;
              bp_runs = !runs_done;
              bp_menu = bc.c_menu.name;
              bp_sampler = sampler_name bc.c_sampler;
              bp_budget = (if bc.c_menu.lossy then bc.c_budget else 0);
              bp_stab = bc.c_stab;
              bp_states = Kset.length cov.states;
              bp_new_states = Kset.length cov.states - states0;
              bp_new_depths = Kset.length cov.depths - depths0;
              bp_new_shapes = Kset.length cov.shapes - shapes0;
              bp_new_sigs = Kset.length cov.sigs - sigs0;
              bp_new_traces = Kset.length cov.traces - traces0;
            }
            :: !curve;
          (match res.r_violation with
          | Some (local_r, moves, name, detail) ->
            raw_violation :=
              Some ((bb * batch_size) + local_r, bb, bc, moves, name, detail)
          | None -> ()));
        incr j
      done;
      b := lo + !j;
      seg_done := !seg_done + (hi - lo);
      if !raw_violation = None then
        match checkpoint with
        | Some (_, every) when !b - !last_ckpt >= every -> write_ckpt !b
        | _ -> ()
    done;
    (* Segment boundary (or completion) without a violation: persist
       the cursor so a later [?resume] continues — or, when complete,
       reports completion. A violating campaign is final; it writes no
       checkpoint. *)
    if !raw_violation = None && checkpoint <> None && !last_ckpt <> !b then
      write_ckpt !b;
    let violation =
      match !raw_violation with
      | None -> None
      | Some (run_ix, batch, bc, moves, name0, detail0) ->
        let shrunk, candidates =
          if not shrink then (moves, 0)
          else
            match shrink_schedule ~n ~inputs ~props moves with
            | Ok (ms, spent) -> (ms, spent)
            | Error _ -> (moves, 0)
        in
        (* The shrunk schedule may violate a different property than
           the raw one did — re-derive, then certify. *)
        let prop_name, detail =
          match violates ~n ~inputs ~props shrunk with
          | Some (_, name, detail) -> (name, detail)
          | None -> (name0, detail0)
        in
        let steps, samples, states = S.concretize ~n ~inputs shrunk in
        let cx =
          {
            M.cx_property = prop_name;
            cx_detail = detail;
            cx_moves = shrunk;
            cx_steps = steps;
            cx_samples = samples;
            cx_states = states;
          }
        in
        let replay_ok =
          match M.replay_counterexample ~n ~inputs cx with
          | Error _ -> false
          | Ok replayed -> (
            match
              check_props
                (List.filter
                   (fun (p : M.property) -> p.prop_name = prop_name)
                   props)
                (fun p -> replayed.(p))
            with
            | Some _ -> true (* independently re-violates *)
            | None -> false)
        in
        let history_ok =
          match
            Mc.history_legal ~kind:bc.c_menu.kind ~pattern samples
          with
          | Ok () -> true
          | Error _ -> false
        in
        Some
          {
            v_run = run_ix;
            v_batch = batch;
            v_property = prop_name;
            v_detail = detail;
            v_menu = bc.c_menu.name;
            v_sampler = sampler_name bc.c_sampler;
            v_budget = (if bc.c_menu.lossy then bc.c_budget else 0);
            v_stab = bc.c_stab;
            v_moves = moves;
            v_shrunk = shrunk;
            v_candidates = candidates;
            v_cx = cx;
            v_replay_ok = replay_ok;
            v_history_ok = history_ok;
          }
    in
    {
      algorithm = algo;
      seed;
      sampler = sampler_name sampler;
      swarm = swarm <> None;
      runs = !runs_done;
      max_steps;
      steps_total = !steps_total;
      decided_runs = !decided_runs;
      quiesced_runs = !quiesced_runs;
      curve = List.rev !curve;
      totals = cov_totals cov;
      violation;
      wall_seconds = Sim.Clock.elapsed t0;
    }

  (* ------------------------------------------------------------------ *)
  (* Reporting                                                          *)
  (* ------------------------------------------------------------------ *)

  let str_of_move (mv : M.move) =
    let recv =
      match mv.m_recv with
      | None -> "lambda"
      | Some (src, i) -> Printf.sprintf "p%d#%d" src i
    in
    if mv.m_drop then Printf.sprintf "drop %s->p%d" recv mv.m_pid
    else
      Format.asprintf "p%d recv=%s fd=%a" mv.m_pid recv Sim.Fd_value.pp
        mv.m_fd

  let json_of_totals t =
    Report.Obj
      [
        ("distinct_states", Report.Int t.distinct_states);
        ("decision_depths", Report.Int t.decision_depths);
        ("quorum_shapes", Report.Int t.quorum_shapes);
        ("fault_signatures", Report.Int t.fault_signatures);
        ("canonical_traces", Report.Int t.canonical_traces);
      ]

  let json_of_batch_point bp =
    Report.Obj
      [
        ("batch", Report.Int bp.bp_batch);
        ("runs", Report.Int bp.bp_runs);
        ("menu", Report.Str bp.bp_menu);
        ("sampler", Report.Str bp.bp_sampler);
        ("budget", Report.Int bp.bp_budget);
        ("stab", Report.Int bp.bp_stab);
        ("states", Report.Int bp.bp_states);
        ("new_states", Report.Int bp.bp_new_states);
        ("new_depths", Report.Int bp.bp_new_depths);
        ("new_shapes", Report.Int bp.bp_new_shapes);
        ("new_sigs", Report.Int bp.bp_new_sigs);
        ("new_traces", Report.Int bp.bp_new_traces);
      ]

  let json_of_violation v =
    Report.Obj
      [
        ("run", Report.Int v.v_run);
        ("batch", Report.Int v.v_batch);
        ("property", Report.Str v.v_property);
        ("detail", Report.Str v.v_detail);
        ("menu", Report.Str v.v_menu);
        ("sampler", Report.Str v.v_sampler);
        ("budget", Report.Int v.v_budget);
        ("stab", Report.Int v.v_stab);
        ("raw_steps", Report.Int (List.length v.v_moves));
        ("shrunk_steps", Report.Int (List.length v.v_shrunk));
        ("shrink_candidates", Report.Int v.v_candidates);
        ("replay_ok", Report.Bool v.v_replay_ok);
        ("history_ok", Report.Bool v.v_history_ok);
        ( "schedule",
          Report.List
            (List.map (fun mv -> Report.Str (str_of_move mv)) v.v_shrunk) );
      ]

  (* Deliberately excludes [wall_seconds]: the document must be
     byte-deterministic in the fuzz arguments. *)
  let json_of_report r =
    Report.Obj
      [
        ("algorithm", Report.Str r.algorithm);
        ("seed", Report.Int r.seed);
        ("sampler", Report.Str r.sampler);
        ("swarm", Report.Bool r.swarm);
        ("runs", Report.Int r.runs);
        ("max_steps", Report.Int r.max_steps);
        ("steps_total", Report.Int r.steps_total);
        ("decided_runs", Report.Int r.decided_runs);
        ("quiesced_runs", Report.Int r.quiesced_runs);
        ("totals", json_of_totals r.totals);
        ("curve", Report.List (List.map json_of_batch_point r.curve));
        ( "violation",
          match r.violation with
          | None -> Report.Null
          | Some v -> json_of_violation v );
      ]

  let pp_report fmt r =
    Format.fprintf fmt
      "@[<v>fuzz %s: %d runs (%d steps), sampler=%s%s, %d decided, %d \
       quiesced, %.2fs@,\
       coverage: %d states, %d decision depths, %d shapes, %d fault sigs, \
       %d traces@]"
      r.algorithm r.runs r.steps_total r.sampler
      (if r.swarm then "+swarm" else "")
      r.decided_runs r.quiesced_runs r.wall_seconds r.totals.distinct_states
      r.totals.decision_depths r.totals.quorum_shapes
      r.totals.fault_signatures r.totals.canonical_traces;
    match r.violation with
    | None -> Format.fprintf fmt "@.no violation found@."
    | Some v ->
      Format.fprintf fmt
        "@.VIOLATION of %s at run %d (batch %d, menu %s, sampler %s): %s@.\
         shrunk %d -> %d moves (%d candidates); replay %s; history %s@."
        v.v_property v.v_run v.v_batch v.v_menu v.v_sampler v.v_detail
        (List.length v.v_moves)
        (List.length v.v_shrunk)
        v.v_candidates
        (if v.v_replay_ok then "OK" else "FAILED")
        (if v.v_history_ok then "OK" else "FAILED");
      List.iteri
        (fun i mv -> Format.fprintf fmt "  %2d. %s@." i (str_of_move mv))
        v.v_shrunk
end
